/**
 * @file
 * The paper's Section 5.3.2 case study: instrumenting code with a
 * consistency check of arbitrary energy cost using energy guards.
 *
 * The Fibonacci app's debug build walks and re-verifies its whole
 * non-volatile list before every iteration. Unguarded, the check
 * eventually eats an entire charge-discharge cycle and the app
 * stops making progress; wrapped in edb_energy_guard_begin/end it
 * runs on tethered power and costs the application nothing.
 */

#include <cstdio>

#include "apps/fibonacci.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

namespace lay = apps::fibonacci_layout;

std::uint32_t
runFor10s(bool with_guards, std::uint64_t seed,
          std::uint64_t *guard_count = nullptr)
{
    sim::Simulator simulator(seed);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    edbdbg::EdbBoard edb(simulator, "edb", wisp);

    apps::FibonacciOptions options;
    options.withCheck = true;
    options.withGuards = with_guards;
    wisp.flash(apps::buildFibonacciApp(options));

    // Pre-seed a long list so the check is already expensive (cf.
    // bench/fig9_energy_guard_trace for the organic starvation run).
    auto &core = wisp.mcu();
    std::uint32_t a = 1, b = 1, prev = lay::headAddr;
    constexpr unsigned n = 500;
    core.debugWrite32(lay::headAddr, 0);
    core.debugWrite32(lay::headAddr + 4, 0);
    for (unsigned i = 1; i <= n; ++i) {
        std::uint32_t node = lay::poolAddr + (i - 1) * 16;
        std::uint32_t fib = i <= 2 ? 1 : a + b;
        if (i > 2) {
            a = b;
            b = fib;
        }
        core.debugWrite32(node + 0, 0);
        core.debugWrite32(node + 4, prev);
        core.debugWrite32(node + 8, fib);
        core.debugWrite32(prev + 0, node);
        prev = node;
    }
    core.debugWrite32(lay::tailPtrAddr, prev);
    core.debugWrite32(lay::countAddr, n);
    core.debugWrite32(lay::violationsAddr, 0);
    core.debugWrite32(lay::magicAddr, lay::magicValue);

    wisp.start();
    simulator.runFor(10 * sim::oneSec);
    if (guard_count)
        *guard_count = edb.guardCount();
    return core.debugRead32(lay::countAddr) - n;
}

} // namespace

int
main()
{
    std::printf("Fibonacci app, debug build, list pre-seeded to 500 "
                "nodes, 10 s harvested power\n\n");

    std::uint32_t unguarded = runFor10s(false, 11);
    std::printf("without energy guards: %u new numbers appended\n",
                unguarded);
    std::printf("  the consistency check re-verifies ~500 nodes "
                "(quadratic work) every\n  iteration and drains the "
                "capacitor before the main loop can run.\n\n");

    std::uint64_t guards = 0;
    std::uint32_t guarded = runFor10s(true, 12, &guards);
    std::printf("with energy guards:    %u new numbers appended "
                "(%llu guard episodes)\n",
                guarded, (unsigned long long)guards);
    std::printf("  the check runs between edb_energy_guard_begin/"
                "end on tethered power;\n  EDB restores the saved "
                "energy level afterwards, so \"code on either side\n"
                "  of an energy-guarded region experiences an "
                "illusion of continuity\".\n");
    return 0;
}
