/**
 * @file
 * Quickstart: assemble a guest program, run it on a simulated
 * energy-harvesting WISP, attach EDB, and watch the intermittent
 * execution through the passive monitors.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "edb/board.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

int
main()
{
    // 1. A simulation, an ambient RF energy source (a 30 dBm reader
    //    at 1 m), and the target device.
    sim::Simulator simulator(/*seed=*/2024);
    energy::RfHarvester harvester(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &harvester, nullptr);

    // 2. A guest program in EH32 assembly: count iterations into
    //    non-volatile memory, mark each thousand with a watchpoint.
    auto program = isa::assemble(runtime::programHeader() + R"(
.equ COUNTER, 0x5000       ; non-volatile (survives reboots)

main:
    la   r5, COUNTER
loop:
    ldw  r1, [r5]
    addi r1, r1, 1
    stw  r1, [r5]
    ; watchpoint every 4096 iterations
    andi r2, r1, 0x0FFF
    cmpi r2, 0
    bne  loop
    li   r1, 1
    call edb_watchpoint
    br   loop
)" + runtime::libedbSource());

    wisp.flash(program);

    // 3. Attach EDB and enable the passive streams.
    edbdbg::EdbBoard edb(simulator, "edb", wisp);
    edb.setStream("energy", true);
    edb.setStream("watchpoints", true);

    // 4. Run five seconds of harvested-power execution.
    wisp.start();
    simulator.runFor(5 * sim::oneSec);

    // 5. What happened?
    std::printf("after 5 s of harvested power:\n");
    std::printf("  reboots: %llu (the program made progress anyway "
                "-- the counter is in FRAM)\n",
                (unsigned long long)wisp.power().bootCount());
    std::printf("  iterations: %u\n",
                wisp.mcu().debugRead32(0x5000));
    std::printf("  instructions executed: %llu\n",
                (unsigned long long)wisp.mcu().instrCount());

    auto energy =
        edb.traceBuffer().ofKind(trace::Kind::EnergySample);
    auto wps = edb.traceBuffer().ofKind(trace::Kind::Watchpoint);
    std::printf("  energy samples: %zu, watchpoint events: %zu\n",
                energy.size(), wps.size());
    if (!wps.empty()) {
        std::printf("  last watchpoint: t=%.1f ms at Vcap=%.3f V\n",
                    sim::millisFromTicks(wps.back().when),
                    wps.back().a);
    }

    std::printf("\nsawtooth excerpt (Vcap every 100 ms):\n");
    for (std::size_t i = 0; i < energy.size(); i += 100) {
        std::printf("  t=%7.1f ms  Vcap=%.3f V\n",
                    sim::millisFromTicks(energy[i].when),
                    energy[i].a);
    }
    return 0;
}
