/**
 * @file
 * The paper's Section 5.3.3 case study: tracing events and profiling
 * energy cost in a machine-learning-based activity-recognition
 * application, using EDB's energy-interference-free printf and
 * watchpoints.
 */

#include <cstdio>

#include "apps/activity.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"
#include "trace/stats.hh"

using namespace edb;

int
main()
{
    namespace lay = apps::activity_layout;
    sim::Simulator simulator(33);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    edbdbg::EdbBoard edb(simulator, "edb", wisp);
    edb.setStream("watchpoints", true);
    edb.setStream("iobus", true);

    apps::ActivityOptions options;
    options.output = apps::ActivityOutput::EdbPrintf;
    wisp.flash(apps::buildActivityApp(options));

    // Stream the target's printf output live, like the console does.
    int shown = 0;
    edb.setPrintfSink([&shown](const std::string &text) {
        if (shown < 8) {
            std::printf("  [target printf] %s", text.c_str());
            ++shown;
        }
    });

    std::printf("running the activity-recognition app for 8 s on "
                "harvested power...\n");
    wisp.start();
    simulator.runFor(8 * sim::oneSec);

    std::uint32_t total = wisp.mcu().debugRead32(lay::totalAddr);
    std::uint32_t moving = wisp.mcu().debugRead32(lay::movingAddr);
    std::uint32_t still = wisp.mcu().debugRead32(lay::stillAddr);
    std::printf("\nclassification statistics (non-volatile):\n");
    std::printf("  windows: %u  moving: %u  stationary: %u\n", total,
                moving, still);

    // Ground truth from the sensor model: how good is the classifier?
    auto &accel = wisp.accelerometer();
    std::printf("  sensor ground truth: %llu of %llu samples taken "
                "while moving (%.0f%%)\n",
                (unsigned long long)accel.movingSamples(),
                (unsigned long long)accel.sampleCount(),
                accel.sampleCount()
                    ? 100.0 * accel.movingSamples() /
                          accel.sampleCount()
                    : 0.0);
    if (total > 0) {
        std::printf("  classifier says %.0f%% moving\n",
                    100.0 * moving / total);
    }

    // Watchpoint-based time & energy profile (paper Fig 11 inputs):
    // wp1 = iteration start, wp2 = stationary, wp3 = moving.
    auto wps = edb.traceBuffer().ofKind(trace::Kind::Watchpoint);
    const double cap = wisp.power().config().capacitanceF;
    const double e_max = wisp.power().maxEnergy();
    trace::SampleSet classify_ms, classify_pct;
    const trace::Record *start = nullptr;
    for (const auto &wp : wps) {
        if (wp.id == apps::activity_ids::wpIterStart) {
            start = &wp;
        } else if (start) {
            double dt = sim::millisFromTicks(wp.when - start->when);
            double de = 0.5 * cap *
                        (start->a * start->a - wp.a * wp.a);
            if (dt > 0 && dt < 50 && de > 0) {
                classify_ms.add(dt);
                classify_pct.add(de / e_max * 100.0);
            }
            start = nullptr;
        }
    }
    std::printf("\nwatchpoint profile of one sample+classify phase "
                "(wp1 -> wp2/wp3):\n");
    std::printf("  time:   mean %.2f ms (p10 %.2f, p90 %.2f)\n",
                classify_ms.summary().mean(), classify_ms.quantile(0.1),
                classify_ms.quantile(0.9));
    std::printf("  energy: mean %.2f%% of capacity (p10 %.2f, p90 "
                "%.2f)\n",
                classify_pct.summary().mean(),
                classify_pct.quantile(0.1),
                classify_pct.quantile(0.9));
    std::printf("\nthis is the profile the paper says is needed to "
                "\"tune the application\nto the size of the storage "
                "capacitor\" -- see bench/ablation_capacitor_sweep.\n");
    return 0;
}
