/**
 * @file
 * The paper's Section 5.3.1 case study as a walkthrough: detecting
 * memory corruption early with a keep-alive assertion and the
 * interactive console.
 *
 * Act 1 — the symptom: the app runs fine on continuous power, then
 * dies mysteriously on harvested power.
 * Act 2 — the JTAG dead end: a conventional debugger powers the
 * target and the bug never reproduces.
 * Act 3 — the diagnosis: EDB's assert halts the target at the exact
 * moment the list invariant breaks and keeps it alive for
 * inspection through the Table 1 console.
 * Act 4 — no assert needed: the NV consistency auditor flags the
 * write-after-read violation automatically, naming the offending
 * store and the reboot interval it executed in.
 */

#include <cstdio>

#include "apps/linked_list.hh"
#include "baseline/jtag.hh"
#include "console/console.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "mem/nv_audit.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

void
runConsole(console::Console &con, const char *cmd)
{
    std::printf("(edb) %s\n%s\n", cmd, con.execute(cmd).c_str());
}

} // namespace

int
main()
{
    namespace lay = apps::linked_list_layout;

    std::printf("== Act 1: the symptom ==\n");
    {
        sim::Simulator simulator(1);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        wisp.flash(apps::buildLinkedListApp());
        wisp.start();
        simulator.runFor(10 * sim::oneSec);
        std::printf("harvested power, 10 s: %llu reboots, %llu "
                    "faults, state now '%s'\n",
                    (unsigned long long)wisp.power().bootCount(),
                    (unsigned long long)wisp.mcu().faultCount(),
                    mcu::mcuStateName(wisp.state()));
        std::printf("the main loop stopped and stays dead across "
                    "reboots; only a re-flash recovers it.\n\n");
    }

    std::printf("== Act 2: the JTAG dead end ==\n");
    {
        sim::Simulator simulator(2);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        baseline::JtagDebugger jtag(simulator, "jtag", wisp);
        jtag.attach(); // powers the DUT, masking intermittence
        wisp.flash(apps::buildLinkedListApp());
        wisp.start();
        simulator.runFor(10 * sim::oneSec);
        std::printf("JTAG attached (continuous power), 10 s: %llu "
                    "reboots, %llu faults\n",
                    (unsigned long long)wisp.power().bootCount() - 1,
                    (unsigned long long)wisp.mcu().faultCount());
        std::printf("iterations completed: %u -- the bug never "
                    "manifests while observed this way.\n\n",
                    wisp.mcu().debugRead32(lay::iterCountAddr));
    }

    std::printf("== Act 3: EDB's keep-alive assert ==\n");
    {
        sim::Simulator simulator(3);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        edbdbg::EdbBoard edb(simulator, "edb", wisp);
        console::Console con(edb);

        apps::LinkedListOptions options;
        options.withAssert = true;
        wisp.flash(apps::buildLinkedListApp(options));
        wisp.start();

        if (!edb.waitForSession(60 * sim::oneSec)) {
            std::printf("assert did not fire; try another seed\n");
            return 1;
        }
        std::printf("assert fired at t=%.1f ms -- target halted on "
                    "tethered power.\n\n",
                    sim::millisFromTicks(simulator.now()));
        runConsole(con, "status");
        std::printf("\ninspecting the live list through the "
                    "console:\n");
        char cmd[64];
        std::snprintf(cmd, sizeof cmd, "read 0x%x 4",
                      lay::tailPtrAddr);
        runConsole(con, cmd);
        auto tail = edb.session()->read32(lay::tailPtrAddr);
        if (tail) {
            std::snprintf(cmd, sizeof cmd, "read 0x%x 16", *tail);
            runConsole(con, cmd);
            auto next = edb.session()->read32(*tail);
            std::printf("tail = 0x%04x but tail->next = 0x%04x: the "
                        "tail pointer is stale.\n"
                        "An append was interrupted after linking the "
                        "node but before updating\nthe tail -- the "
                        "next remove would have written through a "
                        "NULL next pointer.\n\n",
                        *tail, next.value_or(0));
        }
        runConsole(con, "vcap");
        runConsole(con, "resume");
        edb.waitPassive(sim::oneSec);
        std::printf("\ntarget resumed with its energy state "
                    "restored (saved %.3f V, restored %.3f V).\n\n",
                    edb.lastSavedVolts(), edb.lastRestoredVolts());
    }

    std::printf("== Act 4: the NV consistency auditor ==\n");
    {
        sim::Simulator simulator(4);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        edbdbg::EdbBoard edb(simulator, "edb", wisp);

        mem::NvAuditConfig acfg;
        acfg.checkpointBase = wisp.config().mcu.checkpointBase;
        acfg.checkpointSpan = 2 * wisp.config().mcu.checkpointSlotSize;
        mem::NvAuditor audit(acfg, wisp.framRegion());
        edb.attachAuditor(&audit);

        // The unmodified buggy app: no assert, no instrumentation.
        wisp.flash(apps::buildLinkedListApp());
        wisp.start();

        if (!edb.waitForSession(60 * sim::oneSec)) {
            std::printf("no violation surfaced; try another seed\n");
            return 1;
        }
        auto *session = edb.session();
        std::printf("session opened at t=%.1f ms, reason '%s' -- no "
                    "assert was needed.\n",
                    sim::millisFromTicks(simulator.now()),
                    edbdbg::sessionReasonName(session->reason()));
        for (const mem::NvFinding &f : session->findings())
            std::printf("  %s\n", mem::nvFindingText(f).c_str());
        std::printf("the guide address is the FRAM tail pointer the "
                    "interrupted append had\nread: the exact "
                    "time-travel window Acts 1-3 chased by hand.\n");
        session->resume();
        edb.waitPassive(sim::oneSec);
    }
    return 0;
}
