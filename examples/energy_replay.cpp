/**
 * @file
 * Record-and-replay debugging: capture a problematic energy
 * environment with the Ekho-style recorder, then replay it
 * deterministically while debugging with EDB.
 *
 * The paper's related work (Section 6.1) positions Ekho as
 * complementary: "Ekho can reproduce problematic program behavior,
 * but it cannot offer insight into this behavior. Complementary to
 * Ekho's features, EDB offers debugging mechanisms for inspecting
 * the program state." This example does exactly that composition:
 * the field environment is recorded once, the bug reproduces under
 * replay, and EDB diagnoses it.
 */

#include <cstdio>
#include <sstream>

#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "energy/ekho.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

int
main()
{
    // ---- Phase 1: in the "field": record the energy environment
    // while the bug manifests.
    energy::HarvestTrace trace;
    {
        sim::Simulator simulator(501);
        // A harsh, time-varying environment: the reader-to-tag
        // distance drifts as the tag moves.
        energy::ProfileHarvester field({
            {0.0, 3.2, 3000.0},
            {2.0, 3.2, 5200.0},
            {4.0, 3.2, 3600.0},
            {6.0, 3.2, 6500.0},
            {8.0, 3.2, 4000.0},
        });
        target::Wisp wisp(simulator, "wisp", &field, nullptr);
        wisp.flash(apps::buildLinkedListApp());
        energy::HarvestRecorder recorder(simulator, "ekho", field,
                                         20 * sim::oneMs);
        recorder.start();
        wisp.start();
        simulator.runFor(8 * sim::oneSec);
        trace = recorder.trace();
        std::printf("field run: %llu reboots, %llu faults -- the bug "
                    "showed up; recorded %zu energy samples "
                    "(%.1f s)\n",
                    (unsigned long long)wisp.power().bootCount(),
                    (unsigned long long)wisp.mcu().faultCount(),
                    trace.size(), trace.durationSeconds());
    }

    // The trace round-trips through CSV, as a file would.
    std::stringstream csv;
    trace.writeCsv(csv);
    auto loaded = energy::HarvestTrace::readCsv(csv);
    std::printf("trace serialized and reloaded: %zu samples\n\n",
                loaded.size());

    // ---- Phase 2: on the bench: replay the recorded environment
    // with EDB attached and the assert compiled in.
    {
        sim::Simulator simulator(502);
        energy::RecordedHarvester replay(loaded, /*loop=*/true);
        target::Wisp wisp(simulator, "wisp", &replay, nullptr);
        edbdbg::EdbBoard edb(simulator, "edb", wisp);
        apps::LinkedListOptions options;
        options.withAssert = true;
        wisp.flash(apps::buildLinkedListApp(options));
        wisp.start();
        if (!edb.waitForSession(60 * sim::oneSec)) {
            std::printf("bug did not reproduce under replay\n");
            return 1;
        }
        std::printf("replay run: assert id %u fired at t=%.1f ms "
                    "under the *recorded* environment\n",
                    edb.session()->id(),
                    sim::millisFromTicks(simulator.now()));
        auto tail = edb.session()->read32(
            apps::linked_list_layout::tailPtrAddr);
        auto tail_next = tail ? edb.session()->read32(*tail)
                              : std::nullopt;
        std::printf("diagnosis over the live session: tailptr=0x%04x "
                    "tail->next=0x%04x (stale tail after an "
                    "interrupted append)\n",
                    tail.value_or(0), tail_next.value_or(0));
        edb.session()->resume();
        edb.waitPassive(sim::oneSec);
        std::printf("\nEkho reproduces the behaviour; EDB explains "
                    "it. (Paper Section 6.1.)\n");
    }
    return 0;
}
