/**
 * @file
 * The EDB debug console (paper Table 1), either as an interactive
 * REPL (when stdin is a TTY) or as a scripted demo session.
 *
 * The target runs the linked-list app with the keep-alive assert on
 * harvested power; when the assert fires, the console drops into an
 * interactive session.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include <unistd.h>

#include "apps/linked_list.hh"
#include "console/console.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

int
main()
{
    sim::Simulator simulator(55);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    edbdbg::EdbBoard edb(simulator, "edb", wisp);
    console::Console con(edb);

    edb.setPrintfSink([](const std::string &text) {
        std::printf("[printf] %s", text.c_str());
    });
    edb.setSessionHook([&simulator](edbdbg::DebugSession &session) {
        std::printf("\n*** debug session: %s (id %u) at t=%.1f ms, "
                    "saved %.3f V ***\n",
                    edbdbg::sessionReasonName(session.reason()),
                    session.id(),
                    sim::millisFromTicks(simulator.now()),
                    session.savedVolts());
    });

    apps::LinkedListOptions options;
    options.withAssert = true;
    wisp.flash(apps::buildLinkedListApp(options));
    wisp.start();

    std::printf("EDB console -- target: linked-list app on harvested "
                "power.\nType 'help' for commands; 'run <ms>' "
                "advances simulated time; 'quit' exits.\n\n");

    const bool interactive = isatty(STDIN_FILENO);
    // Scripted session used when stdin is not a TTY (CI, tee).
    const char *script[] = {
        "status",        "trace energy on", "run 600",
        "vcap",          "break-in",        "status",
        "read 0x5000 16", "resume",          "run 200",
        "status",        "quit",
    };
    std::size_t script_pos = 0;

    std::string line;
    while (true) {
        if (interactive) {
            std::printf("(edb) ");
            std::fflush(stdout);
            if (!std::getline(std::cin, line))
                break;
        } else {
            if (script_pos >=
                sizeof(script) / sizeof(script[0])) {
                break;
            }
            line = script[script_pos++];
            std::printf("(edb) %s\n", line.c_str());
        }
        if (line == "quit" || line == "exit")
            break;
        if (line.rfind("run ", 0) == 0) {
            long ms = std::strtol(line.c_str() + 4, nullptr, 10);
            if (ms > 0 && ms <= 60000) {
                simulator.runFor(ms * sim::oneMs);
                std::printf("advanced %ld ms (t = %.1f ms)\n", ms,
                            sim::millisFromTicks(simulator.now()));
            } else {
                std::printf("usage: run <ms 1..60000>\n");
            }
            continue;
        }
        std::string out = con.execute(line);
        if (!out.empty())
            std::printf("%s\n", out.c_str());
    }
    return 0;
}
