/**
 * @file
 * The paper's Section 5.3.4 case study: debugging and tuning RFID
 * applications by monitoring the air interface externally and
 * correlating it with the target's energy level.
 */

#include <cstdio>

#include "apps/rfid_firmware.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "rfid/channel.hh"
#include "rfid/reader.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

int
main()
{
    sim::Simulator simulator(44);
    // Tag at 0.85 m from a 30 dBm reader: marginal harvesting, so
    // the tag visibly cycles between charging and answering.
    energy::RfHarvester harvester(30.0, 0.85);
    rfid::RfChannel channel(simulator, "air");
    rfid::RfidReader reader(simulator, "reader", channel);
    target::Wisp wisp(simulator, "wisp", &harvester, &channel);
    edbdbg::EdbBoard edb(simulator, "edb", wisp, &channel);
    edb.setStream("rfid", true);
    edb.setStream("energy", true);

    apps::RfidFirmwareOptions options;
    options.withWatchpoints = true;
    wisp.flash(apps::buildRfidFirmware(options));

    reader.start();
    wisp.start();
    simulator.runFor(15 * sim::oneSec);

    std::printf("15 s of continuous inventorying at 0.85 m:\n");
    std::printf("  queries sent: %llu, replies received: %llu "
                "(response rate %.0f%%)\n",
                (unsigned long long)reader.queriesSent(),
                (unsigned long long)reader.repliesReceived(),
                reader.responseRate() * 100.0);
    std::printf("  corrupted in flight: %llu\n",
                (unsigned long long)channel.framesCorrupted());
    std::printf("  firmware decoded %u commands and sent %u replies "
                "-- every decoded\n  query was answered, so the "
                "losses are energy (charging gaps) and RF\n  "
                "corruption, not firmware bugs.\n",
                wisp.mcu().debugRead32(apps::rfid_layout::decodedAddr),
                wisp.mcu().debugRead32(
                    apps::rfid_layout::repliedAddr));

    // The correlated view of Fig 12: commands, replies and Vcap.
    std::printf("\ncorrelated air/energy trace (one charging gap "
                "visible as missing replies):\n");
    double vcap = 0.0;
    int rows = 0;
    bool was_gap = false;
    const trace::Record *last_cmd = nullptr;
    for (const auto &r : edb.traceBuffer().all()) {
        if (r.kind == trace::Kind::EnergySample) {
            vcap = r.a;
            continue;
        }
        if (r.kind != trace::Kind::RfidMessage)
            continue;
        bool is_cmd = r.b < 0.5;
        if (is_cmd) {
            if (last_cmd)
                was_gap = true; // previous command got no reply
            last_cmd = &r;
        } else {
            last_cmd = nullptr;
        }
        if (rows < 24) {
            std::printf("  t=%8.1f ms  Vcap=%.3f V  %-4s %s%s\n",
                        sim::millisFromTicks(r.when), vcap,
                        is_cmd ? "rx" : "tx", r.text.c_str(),
                        r.a > 0.5 ? "  [corrupted]" : "");
            ++rows;
        }
    }
    if (was_gap) {
        std::printf("\nnote: queries without a following reply line "
                    "up with low-Vcap intervals --\nthe tag was "
                    "recharging. EDB's external decoder still logged "
                    "them, which an\non-target logger could never "
                    "do.\n");
    }
    return 0;
}
