#!/usr/bin/env python3
"""Gate the static-analyzer cross-validation (bench/etap_validate).

The harness prints one JSON summary as its last ``{...}`` line. This
script reads that output (a file or stdin), extracts the summary and
enforces the analyzer contract independently of the harness's own
exit code, so a CI wiring mistake (e.g. a pipe swallowing the
status) cannot silently pass:

  * ``soundness_violations`` must be 0 — no simulated
    power-on→persist drain may ever exceed the static bound;
  * ``starvation_false_positives`` and
    ``starvation_false_negatives`` must be 0 — a must-starve verdict
    with observed progress, or a completes verdict on a world that
    demonstrably stalls, are both analyzer bugs;
  * the soundness half must actually have been exercised
    (``conclusive > 0`` and ``windows_measured > 0``);
  * the Fig 9 bug must be found statically
    (``fig9_debug_starves``) while the release build, the activity
    app and the quickstart guest analyze clean;
  * the harness's own verdict (``ok``) must be true.

Usage:
  etap_validate --cases 300 | check_etap.py -
  check_etap.py etap_output.txt

Stdlib only -- runs on a bare CI python3.
"""

import json
import sys

ZERO_FIELDS = (
    "soundness_violations",
    "starvation_false_positives",
    "starvation_false_negatives",
    "other_failures",
)

TRUE_FIELDS = (
    "fig9_debug_starves",
    "fib_release_clean",
    "activity_clean",
    "quickstart_clean",
    "ok",
)

POSITIVE_FIELDS = (
    "conclusive",
    "windows_measured",
)


def last_json_line(text):
    """The harness prints the summary as its last JSON object line."""
    summary = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("{") and line.endswith("}"):
            try:
                summary = json.loads(line)
            except json.JSONDecodeError:
                continue
    return summary


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(sys.argv[1]) as f:
            text = f.read()

    summary = last_json_line(text)
    if summary is None:
        print("check_etap: no JSON summary found", file=sys.stderr)
        return 1

    failures = []
    for key in ZERO_FIELDS:
        if summary.get(key) != 0:
            failures.append(
                "%s = %r (want 0)" % (key, summary.get(key)))
    for key in TRUE_FIELDS:
        if summary.get(key) is not True:
            failures.append(
                "%s = %r (want true)" % (key, summary.get(key)))
    for key in POSITIVE_FIELDS:
        if not isinstance(summary.get(key), int) or summary[key] <= 0:
            failures.append(
                "%s = %r (want > 0)" % (key, summary.get(key)))

    if failures:
        for f in failures:
            print("check_etap: FAIL: " + f, file=sys.stderr)
        return 1
    print(
        "check_etap: OK (%d conclusive cases, %d windows, median "
        "tightness %.3g)"
        % (
            summary.get("conclusive", 0),
            summary.get("windows_measured", 0),
            summary.get("median_tightness", 0.0),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
