#!/usr/bin/env python3
"""Gate the debug-server chaos soak (bench/soak_debug_server).

The soak prints one JSON summary as its last ``{...}`` line. This
script reads that output (a file or stdin), extracts the summary and
enforces the robustness gates independently of the soak's own exit
code, so a CI wiring mistake (e.g. a pipe swallowing the status)
cannot silently pass:

  * ``stuck_sessions``, ``interference_violations``,
    ``oversize_replies`` and ``digest_mismatches`` must all be 0;
  * every shed/aborted session must be accounted for by a
    SessionReport (``reported_sheds == sessions_shed``,
    ``reported_aborts == sessions_aborted``);
  * the chaos must actually have run (``faults_injected > 0``) and
    the well-behaved clients must have been served
    (``good_responses > 0``);
  * the soak's own verdict (``ok``) must be true.

Usage:
  soak_debug_server --episodes 30 | check_debug_server.py -
  check_debug_server.py soak_output.txt

Stdlib only -- runs on a bare CI python3.
"""

import json
import sys

ZERO_FIELDS = (
    "stuck_sessions",
    "interference_violations",
    "oversize_replies",
    "digest_mismatches",
)


def last_json_line(text):
    """The soak prints the summary as its last JSON object line."""
    summary = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("{") and line.endswith("}"):
            try:
                summary = json.loads(line)
            except json.JSONDecodeError:
                continue
    return summary


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    source = sys.argv[1]
    text = (
        sys.stdin.read()
        if source == "-"
        else open(source).read()
    )
    summary = last_json_line(text)
    if summary is None:
        sys.exit("no JSON summary line found in soak output")

    failures = []
    for field in ZERO_FIELDS:
        if summary.get(field) != 0:
            failures.append(f"{field}={summary.get(field)!r} != 0")
    for reported, total in (
        ("reported_sheds", "sessions_shed"),
        ("reported_aborts", "sessions_aborted"),
    ):
        if summary.get(reported) != summary.get(total):
            failures.append(
                f"{reported}={summary.get(reported)!r} != "
                f"{total}={summary.get(total)!r} "
                "(silent shed/abort)"
            )
    if not summary.get("faults_injected", 0) > 0:
        failures.append("faults_injected=0: chaos never ran")
    if not summary.get("good_responses", 0) > 0:
        failures.append("good_responses=0: no client was served")
    if summary.get("ok") is not True:
        failures.append(f"soak verdict ok={summary.get('ok')!r}")

    if failures:
        for f in failures:
            print(f"GATE FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print(
        "debug-server soak gate ok: "
        f"{summary.get('epochs_run')} epochs, "
        f"{summary.get('commands_served')} commands, "
        f"{summary.get('faults_injected')} faults injected, "
        f"{summary.get('reports')} session reports"
    )


if __name__ == "__main__":
    main()
