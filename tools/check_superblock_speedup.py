#!/usr/bin/env python3
"""Distill the perf_microbench throughput tier matrix into a
speedup report and gate on it.

Reads a google-benchmark ``--benchmark_out_format=json`` file
containing the ``BM_Throughput_*`` benchmarks (Reference / FastPath /
Superblock, each in a noisy and a NoiseFree flavor), computes the
superblock tier's speedup over the other two tiers from the
``instr/s`` rate counters, writes a compact report (BENCH_PR6.json
schema), and exits nonzero when the speedup floor is not met.

Usage:
  check_superblock_speedup.py IN.json OUT.json
      [--min-vs-reference X] [--min-vs-fastpath Y]

Stdlib only -- runs on a bare CI python3.
"""

import argparse
import json
import sys

TIERS = ("Reference", "FastPath", "Superblock")


def load_rates(path):
    """Map tier name -> instr/s for both noise flavors."""
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if not name.startswith("BM_Throughput_"):
            continue
        if b.get("run_type") == "aggregate":
            continue
        rates[name[len("BM_Throughput_"):]] = float(b["instr/s"])
    return rates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("out_json")
    ap.add_argument("--min-vs-reference", type=float, default=1.4)
    ap.add_argument("--min-vs-fastpath", type=float, default=0.85)
    args = ap.parse_args()

    rates = load_rates(args.bench_json)
    missing = [t for t in TIERS if t not in rates]
    if missing:
        sys.exit(f"missing benchmarks in {args.bench_json}: {missing}")

    report = {
        "description": (
            "PR 6 superblock engine: instruction throughput of the "
            "three execution tiers on bench/perf_microbench "
            "(linked-list app, Thevenin bench supply). 'noisy' is "
            "the default analog model (harvest noise sigma 0.05); "
            "'noise_free' sets sigma to 0 to isolate instruction "
            "dispatch from the per-sub-step gaussian draw. All "
            "tiers integrate the same bit-identical per-instruction "
            "forward-Euler sub-step sequence, whose loop-carried "
            "divide chain through the capacitor voltage is a hard "
            "per-instruction latency floor; once a tier's dispatch "
            "work fits under that chain, end-to-end throughput "
            "saturates, so the gate below is a regression guard on "
            "that saturated figure, not a dispatch-cost measurement "
            "(see EXPERIMENTS.md for the ablation that isolates "
            "dispatch cost)."
        ),
        "tiers_instr_per_s": {},
        "speedups": {},
        "gate": {
            "min_superblock_vs_reference": args.min_vs_reference,
            "min_superblock_vs_fastpath": args.min_vs_fastpath,
        },
    }

    ok = True
    for flavor, suffix in (("noisy", ""), ("noise_free", "NoiseFree")):
        tier_rates = {t: rates.get(t + suffix) for t in TIERS}
        if any(v is None for v in tier_rates.values()):
            continue
        vs_ref = tier_rates["Superblock"] / tier_rates["Reference"]
        vs_fast = tier_rates["Superblock"] / tier_rates["FastPath"]
        report["tiers_instr_per_s"][flavor] = {
            t: round(v) for t, v in tier_rates.items()
        }
        report["speedups"][flavor] = {
            "superblock_vs_reference": round(vs_ref, 2),
            "superblock_vs_fastpath": round(vs_fast, 2),
        }
        # Gate on the noisy (default-config) flavor: that is the
        # configuration everything else in the repo actually runs.
        if flavor == "noisy":
            if vs_ref < args.min_vs_reference:
                print(
                    f"FAIL: superblock vs reference {vs_ref:.2f}x "
                    f"< {args.min_vs_reference}x"
                )
                ok = False
            if vs_fast < args.min_vs_fastpath:
                print(
                    f"FAIL: superblock vs fastpath {vs_fast:.2f}x "
                    f"< {args.min_vs_fastpath}x"
                )
                ok = False

    report["gate"]["pass"] = ok
    with open(args.out_json, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report["speedups"], indent=2))
    print(f"wrote {args.out_json}: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
