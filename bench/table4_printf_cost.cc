/**
 * @file
 * Regenerates paper Table 4: cost of debug output and its impact on
 * the behaviour of the activity-recognition application.
 *
 * Three builds run on harvested power: no print, UART printf
 * (on-target formatting + console UART wire time and energy), and
 * EDB printf (shipped to the debugger inside an implicit energy
 * guard). Reported per variant:
 *   - iteration success rate: completed / attempted iterations
 *     (from the app's non-volatile counters);
 *   - iteration cost in energy (% of the 47 uF capacity) and time,
 *     from EDB's watchpoint-energy trace (wp1 -> wp1 deltas within
 *     one discharge cycle);
 *   - print cost: the difference from the no-print baseline.
 */

#include <cstdio>
#include <vector>

#include "apps/activity.hh"
#include "bench/common.hh"
#include "trace/stats.hh"

using namespace edb;

namespace {

struct VariantResult
{
    const char *name;
    double successRate = 0.0;
    double iterEnergyPct = 0.0;
    /** Energy the *target* spent per iteration: the raw capacitor
     *  delta corrected by whatever energy EDB injected back during
     *  restore episodes inside the window. */
    double iterTargetEnergyPct = 0.0;
    double iterTimeMs = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t attempted = 0;
};

VariantResult
runVariant(const char *variant_name, apps::ActivityOutput output,
           std::uint64_t seed, sim::Tick duration)
{
    namespace lay = apps::activity_layout;
    apps::ActivityOptions options;
    options.output = output;
    bench::Rig rig(seed);
    rig.wisp.flash(apps::buildActivityApp(options));
    rig.board.setStream("watchpoints", true);
    rig.wisp.start();
    rig.sim.runFor(duration);

    VariantResult result;
    result.name = variant_name;
    result.attempted = rig.wisp.mcu().debugRead32(lay::startedAddr);
    result.completed = rig.wisp.mcu().debugRead32(lay::totalAddr);
    if (result.attempted > 0) {
        result.successRate = double(result.completed) /
                             double(result.attempted);
    }

    // Iteration cost: wp1 -> wp1 deltas with no reboot in between.
    const double e_max = rig.wisp.power().maxEnergy();
    const double cap = rig.wisp.power().config().capacitanceF;
    auto power_events =
        rig.board.traceBuffer().ofKind(trace::Kind::PowerEvent);
    auto wps = rig.board.traceBuffer().ofKind(trace::Kind::Watchpoint);
    auto restores =
        rig.board.traceBuffer().ofKind(trace::Kind::Generic);
    auto reboot_between = [&power_events](sim::Tick a, sim::Tick b) {
        for (const auto &ev : power_events) {
            if (ev.when > a && ev.when < b)
                return true;
        }
        return false;
    };
    // Energy EDB injected back (restored above saved) inside (a, b).
    auto compensation_in = [&restores, cap](sim::Tick a, sim::Tick b) {
        double joules = 0.0;
        for (const auto &ev : restores) {
            if (ev.text == "restore" && ev.when > a && ev.when < b)
                joules += 0.5 * cap * (ev.b * ev.b - ev.a * ev.a);
        }
        return joules;
    };
    trace::SampleSet energy_pct, target_pct, time_ms;
    const trace::Record *prev = nullptr;
    for (const auto &wp : wps) {
        if (wp.id != apps::activity_ids::wpIterStart)
            continue;
        if (prev && !reboot_between(prev->when, wp.when)) {
            double de =
                0.5 * cap * (prev->a * prev->a - wp.a * wp.a);
            double dt = sim::millisFromTicks(wp.when - prev->when);
            if (dt > 0 && dt < 100.0) {
                energy_pct.add(de / e_max * 100.0);
                target_pct.add(
                    (de + compensation_in(prev->when, wp.when)) /
                    e_max * 100.0);
                time_ms.add(dt);
            }
        }
        prev = &wp;
    }
    result.iterEnergyPct = energy_pct.summary().mean();
    result.iterTargetEnergyPct = target_pct.summary().mean();
    result.iterTimeMs = time_ms.summary().mean();
    return result;
}

} // namespace

int
main()
{
    bench::banner("Table 4: cost of debug output in the "
                  "activity-recognition application");
    constexpr sim::Tick duration = 12 * sim::oneSec;

    std::vector<VariantResult> rows;
    rows.push_back(runVariant("No print", apps::ActivityOutput::None,
                              41, duration));
    rows.push_back(runVariant("UART printf",
                              apps::ActivityOutput::UartPrintf, 42,
                              duration));
    rows.push_back(runVariant("EDB printf",
                              apps::ActivityOutput::EdbPrintf, 43,
                              duration));

    const VariantResult &base = rows[0];
    std::printf("\n%-12s %9s %11s %11s %9s %11s %10s %14s\n", "",
                "Success", "IterEnergy", "TargetCost", "IterTime",
                "PrintCost", "PrintTime", "iters");
    std::printf("%-12s %9s %11s %11s %9s %11s %10s %14s\n", "",
                "Rate(%)", "(% cap)", "(% cap)", "(ms)", "(% cap)",
                "(ms)", "(done/try)");
    for (const auto &r : rows) {
        double print_e =
            r.iterTargetEnergyPct - base.iterTargetEnergyPct;
        double print_t = r.iterTimeMs - base.iterTimeMs;
        std::printf("%-12s %8.0f%% %11.2f %11.2f %9.2f", r.name,
                    r.successRate * 100.0, r.iterEnergyPct,
                    r.iterTargetEnergyPct, r.iterTimeMs);
        if (&r == &base)
            std::printf(" %11s %10s", "-", "-");
        else
            std::printf(" %11.2f %10.2f", print_e, print_t);
        std::printf(" %8llu/%llu\n",
                    (unsigned long long)r.completed,
                    (unsigned long long)r.attempted);
    }
    std::printf(
        "\nIterEnergy = raw capacitor drop between iteration starts;"
        "\nTargetCost = the same corrected for energy EDB injected "
        "during restore\n(the paper's per-iteration cost metric "
        "excludes debugger compensation).\n"
        "\npaper: No print 87%% / 3.0%% / 1.1 ms; UART printf 74%% / "
        "5.3%% / 2.1 ms\n       (print 2.5%% / 1.1 ms); EDB printf "
        "82%% / 3.4%% / 4.7 ms (print 0.11%% / 3.1 ms)\n"
        "shape: UART printf costs real energy and depresses the "
        "success rate;\nEDB printf adds wall-clock time while its "
        "target-side energy cost stays\nnear zero (the pre-tether "
        "request spin), so behaviour stays close to the\nrelease "
        "build. Our prototype's conservative restore margin "
        "over-restores\nslightly (Table 3), which nudges the EDB "
        "success rate up rather than down;\nsee "
        "ablation_control_loop for the margin sweep.\n");
    return 0;
}
