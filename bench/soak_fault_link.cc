/**
 * @file
 * Fault-injection soak of the EDB<->target debug link.
 *
 * Runs the linked-list application on harvested power under hundreds
 * of randomized fault plans (UART corruption/drops/duplication, ADC
 * glitches, RF fade windows, forced brown-outs) with an energy
 * breakpoint generating continuous debug-session traffic.
 *
 * Pass criteria, checked per plan and in aggregate:
 *  - the run terminates (no deadlock: every host-side wait is
 *    bounded, so wall progress is guaranteed by construction);
 *  - every opened session either completes its resume or is aborted
 *    with a recorded reason -- a session left open at the horizon
 *    counts as stuck and fails the soak;
 *  - the host parser never desyncs permanently (frames keep parsing
 *    until the horizon whenever the plan leaves the link usable).
 *
 * Usage: soak_fault_link [--plans N | plan-count]   (default 200)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/linked_list.hh"
#include "bench/common.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

struct Outcome
{
    std::uint64_t sessions = 0;
    std::uint64_t completed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t stuck = 0;
    std::uint64_t readFailures = 0;
    std::uint64_t framesOk = 0;
    std::uint64_t crcErrors = 0;
    std::uint64_t resyncs = 0;
    std::uint64_t probes = 0;
    std::uint64_t degraded = 0;
    std::uint64_t abortedEpisodes = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t brownOutsForced = 0;
    bool missingAbortReason = false;
    mcu::Mcu::SuperblockStats sb{};
    std::uint64_t instrs = 0;
    /** NV backend counters (mem/nv_region.hh): FRAM write traffic,
     *  per-word wear peak and torn commit bursts. */
    std::uint64_t nvWrites = 0;
    std::uint64_t nvMaxWear = 0;
    std::uint64_t nvTornBursts = 0;
    std::uint64_t tornCommits = 0;
};

/** Draw a randomized fault plan; roughly a third of the plans get
 *  RF fades and a third get a forced brown-out. */
sim::FaultPlan
drawPlan(std::uint64_t index, sim::Tick horizon)
{
    sim::Rng meta(9000 + index);
    sim::FaultPlan plan;
    plan.seed = 31 * index + 7;
    plan.uartCorruptProb = meta.uniform(0.0, 0.08);
    plan.uartDropProb = meta.uniform(0.0, 0.08);
    plan.uartDupProb = meta.uniform(0.0, 0.04);
    plan.adcGlitchProb = meta.uniform(0.0, 0.02);
    plan.adcGlitchMagnitudeVolts = meta.uniform(0.05, 0.4);
    if (meta.chance(0.3)) {
        int fades = static_cast<int>(meta.uniformInt(1, 3));
        for (int i = 0; i < fades; ++i) {
            sim::Tick start = meta.uniformInt(0, horizon);
            sim::Tick len =
                meta.uniformInt(5 * sim::oneMs, 40 * sim::oneMs);
            plan.fades.push_back({start, len});
        }
    }
    if (meta.chance(0.3))
        plan.brownOutAtTick.push_back(
            meta.uniformInt(100 * sim::oneMs, horizon));
    return plan;
}

Outcome
runPlan(std::uint64_t index, const target::WispConfig &wisp_config)
{
    const sim::Tick horizon = 1500 * sim::oneMs;
    sim::Simulator simulator(1000 + index);
    energy::RfHarvester rf(30.0, 1.0);
    sim::FaultInjector inj(simulator, "inj",
                           drawPlan(index, horizon));
    energy::FadedHarvester faded(rf, inj);
    target::Wisp wisp(simulator, "wisp", &faded, nullptr,
                      wisp_config);
    edbdbg::EdbBoard board(simulator, "edb", wisp);
    board.injectFaults(&inj);
    inj.armBrownOuts([&wisp] {
        wisp.power().capacitor().setVoltage(0.5);
    });

    apps::LinkedListOptions options;
    options.withAssert = true;
    wisp.flash(apps::buildLinkedListApp(options));
    wisp.start();
    // Continuous session traffic: stop at every discharge cycle.
    board.enableEnergyBreakpoint(2.0);

    Outcome out;
    edbdbg::DebugSession *last = nullptr;
    while (simulator.now() < horizon) {
        if (!board.waitForSession(100 * sim::oneMs))
            continue;
        auto *session = board.session();
        if (session == last && !session->open())
            continue;
        if (session != last)
            ++out.sessions;
        last = session;
        if (!session
                 ->read32(apps::linked_list_layout::iterCountAddr,
                          100 * sim::oneMs)
                 .has_value())
            ++out.readFailures;
        session->resume();
        board.pumpUntil([&board] { return board.passive(); },
                        2 * sim::oneSec);
        if (!session->open()) {
            if (session->aborted()) {
                ++out.aborted;
                if (session->abortReason().empty())
                    out.missingAbortReason = true;
            } else {
                ++out.completed;
            }
        }
    }
    if (last != nullptr && last->open()) {
        ++out.stuck;
        if (std::getenv("SOAK_DEBUG") != nullptr)
            std::printf("  stuck: pc=0x%04X passive=%d tethered=%d "
                        "wisp=%d "
                        "req=%d charger=%d reason=%s resumeRetries="
                        "%llu abortedEp=%llu\n",
                        unsigned(wisp.mcu().pc()),
                        int(board.passive()), int(board.tethered()),
                        int(wisp.state()),
                        int(wisp.debugPort().reqLevel()),
                        int(board.chargeCircuit().active()),
                        board.lastAbortReason().c_str(),
                        static_cast<unsigned long long>(
                            board.linkStats().resumeRetries),
                        static_cast<unsigned long long>(
                            board.linkStats().abortedEpisodes));
    }

    out.framesOk = board.protocolEngine().stats().framesOk;
    out.crcErrors = board.protocolEngine().stats().crcErrors;
    out.resyncs = board.protocolEngine().stats().resyncs;
    out.probes = board.linkStats().probes;
    out.degraded = board.linkStats().degradedEpisodes;
    out.abortedEpisodes = board.linkStats().abortedEpisodes;
    out.faultsInjected = inj.stats().corrupted +
                         inj.stats().dropped +
                         inj.stats().duplicated +
                         inj.stats().adcGlitches;
    out.brownOutsForced = inj.stats().brownOutsForced;
    out.sb = wisp.mcu().superblockStats();
    out.instrs = wisp.mcu().instrCount();
    const mem::NvRegion &fram = wisp.framRegion();
    out.nvWrites = fram.writeCount();
    out.nvMaxWear = fram.maxWear();
    out.nvTornBursts = fram.tornWrites();
    out.tornCommits = wisp.mcu().tornCommitCount();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    const int plans = static_cast<int>(cli.count("plans", 200));
    bench::banner("Debug-link soak: " + std::to_string(plans) +
                  " randomized fault plans, linked-list app, energy "
                  "breakpoint at 2.0 V, 1.5 s horizon each");

    const target::WispConfig wispConfig =
        bench::applyEngineFlags(cli);
    Outcome total;
    int failedPlans = 0;
    for (int i = 0; i < plans; ++i) {
        Outcome o =
            runPlan(static_cast<std::uint64_t>(i), wispConfig);
        bool ok = o.stuck == 0 && !o.missingAbortReason;
        if (!ok) {
            ++failedPlans;
            std::printf("plan %4d FAIL: stuck=%llu "
                        "missing-abort-reason=%d\n",
                        i, static_cast<unsigned long long>(o.stuck),
                        int(o.missingAbortReason));
        }
        total.sessions += o.sessions;
        total.completed += o.completed;
        total.aborted += o.aborted;
        total.stuck += o.stuck;
        total.readFailures += o.readFailures;
        total.framesOk += o.framesOk;
        total.crcErrors += o.crcErrors;
        total.resyncs += o.resyncs;
        total.probes += o.probes;
        total.degraded += o.degraded;
        total.abortedEpisodes += o.abortedEpisodes;
        total.faultsInjected += o.faultsInjected;
        total.brownOutsForced += o.brownOutsForced;
        bench::accumulate(total.sb, o.sb);
        total.instrs += o.instrs;
        total.nvWrites += o.nvWrites;
        if (o.nvMaxWear > total.nvMaxWear)
            total.nvMaxWear = o.nvMaxWear;
        total.nvTornBursts += o.nvTornBursts;
        total.tornCommits += o.tornCommits;
        if ((i + 1) % 50 == 0)
            std::printf("... %d/%d plans\n", i + 1, plans);
    }

    auto u = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    std::printf("\nplans            %d (%d failed)\n", plans,
                failedPlans);
    std::printf("sessions         %llu (completed %llu, aborted "
                "%llu, stuck %llu)\n",
                u(total.sessions), u(total.completed),
                u(total.aborted), u(total.stuck));
    std::printf("read failures    %llu\n", u(total.readFailures));
    std::printf("frames parsed    %llu (crc errors %llu, resyncs "
                "%llu)\n",
                u(total.framesOk), u(total.crcErrors),
                u(total.resyncs));
    std::printf("link recovery    %llu probes, %llu degraded, %llu "
                "aborted episodes\n",
                u(total.probes), u(total.degraded),
                u(total.abortedEpisodes));
    std::printf("faults injected  %llu wire/adc, %llu forced "
                "brown-outs\n",
                u(total.faultsInjected), u(total.brownOutsForced));

    // Machine-readable summary for CI log scrapers. A "leaked" (still
    // open at the horizon) or hung session fails the soak below.
    bench::Json episodes;
    episodes.field("run", total.sessions)
        .field("degraded", total.degraded)
        .field("aborted", total.abortedEpisodes);
    bench::Json sessions;
    sessions.field("opened", total.sessions)
        .field("completed", total.completed)
        .field("aborted", total.aborted)
        .field("leaked", total.stuck);
    bench::Json summary;
    bench::runConfigFields(summary, cli);
    summary.field("plans", plans)
        .field("failed_plans", failedPlans)
        .object("episodes", episodes)
        .object("sessions", sessions)
        .field("frames_ok", total.framesOk)
        .field("crc_errors", total.crcErrors)
        .field("resyncs", total.resyncs)
        .object("superblocks",
                bench::superblockJson(total.sb, total.instrs));
    bench::Json nv;
    nv.field("writes", total.nvWrites)
        .field("max_wear", total.nvMaxWear)
        .field("torn_bursts", total.nvTornBursts)
        .field("torn_commits", total.tornCommits);
    summary.object("nv", nv);
    summary.print();

    if (failedPlans == 0 && total.sessions > 0) {
        std::printf("\nSOAK PASS\n");
        return 0;
    }
    std::printf("\nSOAK FAIL\n");
    return 1;
}
