/**
 * @file
 * Regenerates paper Figure 12 (Section 5.3.4): incoming and outgoing
 * RFID messages correlated with the target's energy level.
 *
 * The WISP RFID firmware decodes reader queries in software and
 * backscatters its EPC. EDB monitors the RF data lines externally —
 * its decoder sees every frame, including ones the target missed
 * while charging — and pairs the message stream with the energy
 * trace. Reported: response rate and replies/second (paper: "the
 * application responded 86% of the time for an average of 13
 * replies per second"), plus a distance sweep for tuning in
 * different RF environments.
 */

#include <cstdio>

#include "apps/rfid_firmware.hh"
#include "bench/common.hh"

using namespace edb;

namespace {

struct RfidRun
{
    double responseRate = 0.0;
    double repliesPerSec = 0.0;
    std::uint64_t queries = 0;
    std::uint64_t replies = 0;
    std::uint64_t corrupt = 0;
};

RfidRun
runAt(double distance_m, sim::Tick duration, std::uint64_t seed,
      bench::Rig **keep_rig = nullptr)
{
    static std::unique_ptr<bench::Rig> kept;
    auto rig = std::make_unique<bench::Rig>(seed, 30.0, distance_m,
                                            /*with_rfid=*/true);
    rig->wisp.flash(apps::buildRfidFirmware());
    rig->board.setStream("rfid", true);
    rig->board.setStream("energy", true);
    rig->reader->start();
    rig->wisp.start();
    rig->sim.runFor(duration);

    RfidRun out;
    out.queries = rig->reader->queriesSent();
    out.replies = rig->reader->repliesReceived();
    out.corrupt = rig->channel->framesCorrupted();
    out.responseRate = rig->reader->responseRate();
    out.repliesPerSec =
        double(out.replies) / sim::secondsFromTicks(duration);
    if (keep_rig) {
        kept = std::move(rig);
        *keep_rig = kept.get();
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Figure 12: RFID messages correlated with energy "
                  "level");

    bench::Rig *rig = nullptr;
    auto main_run = runAt(0.84, 20 * sim::oneSec, 1201, &rig);
    std::printf("reader queries: %llu, tag replies: %llu, corrupted "
                "frames: %llu\n",
                (unsigned long long)main_run.queries,
                (unsigned long long)main_run.replies,
                (unsigned long long)main_run.corrupt);
    std::printf("response rate: %.0f%%   replies/second: %.1f\n",
                main_run.responseRate * 100.0,
                main_run.repliesPerSec);
    std::printf("(paper: 86%% response rate, ~13 replies per "
                "second)\n");

    // Correlated message/energy stream: what EDB's external decoder
    // delivers (Fig 12's dot rows + energy curve).
    bench::note("message stream excerpt with concurrent Vcap");
    std::printf("%10s %8s %6s %-14s %s\n", "time_ms", "vcap_V", "dir",
                "message", "corrupt");
    const auto &records = rig->board.traceBuffer().all();
    // Find the energy sample nearest each RFID record.
    int printed = 0;
    double last_vcap = 0.0;
    for (const auto &r : records) {
        if (r.kind == trace::Kind::EnergySample) {
            last_vcap = r.a;
            continue;
        }
        if (r.kind != trace::Kind::RfidMessage)
            continue;
        if (r.when < 5 * sim::oneSec)
            continue;
        std::printf("%10.1f %8.3f %6s %-14s %s\n",
                    sim::millisFromTicks(r.when), last_vcap,
                    r.b > 0.5 ? "tx" : "rx", r.text.c_str(),
                    r.a > 0.5 ? "yes" : "");
        if (++printed >= 30)
            break;
    }

    // Firmware-side counters: every decoded query was answered.
    std::printf("\nfirmware counters: decoded %u commands, sent %u "
                "replies\n",
                rig->wisp.mcu().debugRead32(
                    apps::rfid_layout::decodedAddr),
                rig->wisp.mcu().debugRead32(
                    apps::rfid_layout::repliedAddr));

    bench::banner("RF-environment sweep (response rate vs reader "
                  "distance)");
    std::printf("%12s %12s %14s\n", "distance_m", "resp_rate",
                "replies_per_s");
    for (double d : {0.6, 0.7, 0.8, 0.82, 0.85, 0.9, 1.0, 1.2}) {
        auto run = runAt(d, 8 * sim::oneSec, 1300 + int(d * 10));
        std::printf("%12.1f %11.0f%% %14.1f\n", d,
                    run.responseRate * 100.0, run.repliesPerSec);
    }
    std::printf("\nharvestable energy falls with distance (paper "
                "Section 5.1), so the tag\nspends more time "
                "recharging and the response rate drops.\n");
    return 0;
}
