/**
 * @file
 * Regenerates paper Figure 11: the CDF of the per-iteration energy
 * cost of the activity-recognition application under the three
 * output mechanisms (no print / UART printf / EDB printf).
 *
 * The profile is computed exactly as the paper describes
 * (Section 5.3.3): "the energy profile was calculated from the
 * difference between energy level snapshots taken by watchpoints" —
 * here, consecutive iteration-start watchpoints (id 1), with the
 * energy the debugger injected during restores added back so the
 * curve reflects the target's own expenditure.
 */

#include <cstdio>
#include <vector>

#include "apps/activity.hh"
#include "bench/common.hh"
#include "trace/stats.hh"

using namespace edb;

namespace {

trace::SampleSet
profileVariant(apps::ActivityOutput output, std::uint64_t seed,
               sim::Tick duration)
{
    apps::ActivityOptions options;
    options.output = output;
    bench::Rig rig(seed);
    rig.wisp.flash(apps::buildActivityApp(options));
    rig.board.setStream("watchpoints", true);
    rig.wisp.start();
    rig.sim.runFor(duration);

    const double e_max = rig.wisp.power().maxEnergy();
    const double cap = rig.wisp.power().config().capacitanceF;
    auto power_events =
        rig.board.traceBuffer().ofKind(trace::Kind::PowerEvent);
    auto restores =
        rig.board.traceBuffer().ofKind(trace::Kind::Generic);
    auto wps = rig.board.traceBuffer().ofKind(trace::Kind::Watchpoint);

    auto reboot_between = [&power_events](sim::Tick a, sim::Tick b) {
        for (const auto &ev : power_events) {
            if (ev.when > a && ev.when < b)
                return true;
        }
        return false;
    };
    auto compensation_in = [&restores, cap](sim::Tick a, sim::Tick b) {
        double joules = 0.0;
        for (const auto &ev : restores) {
            if (ev.text == "restore" && ev.when > a && ev.when < b)
                joules += 0.5 * cap * (ev.b * ev.b - ev.a * ev.a);
        }
        return joules;
    };

    trace::SampleSet samples;
    const trace::Record *prev = nullptr;
    for (const auto &wp : wps) {
        if (wp.id != apps::activity_ids::wpIterStart)
            continue;
        if (prev && !reboot_between(prev->when, wp.when)) {
            double de =
                0.5 * cap * (prev->a * prev->a - wp.a * wp.a) +
                compensation_in(prev->when, wp.when);
            double dt = sim::millisFromTicks(wp.when - prev->when);
            if (dt > 0 && dt < 100.0)
                samples.add(de / e_max * 100.0);
        }
        prev = &wp;
    }
    return samples;
}

} // namespace

int
main()
{
    bench::banner("Figure 11: CDF of per-iteration energy cost "
                  "(% of 47 uF capacity)");
    constexpr sim::Tick duration = 10 * sim::oneSec;

    auto none = profileVariant(apps::ActivityOutput::None, 51,
                               duration);
    auto uart = profileVariant(apps::ActivityOutput::UartPrintf, 52,
                               duration);
    auto edbp = profileVariant(apps::ActivityOutput::EdbPrintf, 53,
                               duration);

    std::printf("samples: no-print %zu, uart %zu, edb %zu\n",
                none.count(), uart.count(), edbp.count());
    std::printf("medians: no-print %.2f%%, uart %.2f%%, edb %.2f%%\n",
                none.median(), uart.median(), edbp.median());

    std::printf("\n%12s %10s %10s %10s\n", "energy_pct",
                "P(no_print)", "P(uart)", "P(edb)");
    // Common x-axis spanning all three distributions.
    double lo = std::min({none.quantile(0.0), uart.quantile(0.0),
                          edbp.quantile(0.0)});
    double hi = std::max({none.quantile(1.0), uart.quantile(1.0),
                          edbp.quantile(1.0)});
    constexpr int points = 40;
    for (int i = 0; i <= points; ++i) {
        double x = lo + (hi - lo) * i / points;
        std::printf("%12.2f %10.3f %10.3f %10.3f\n", x,
                    none.cdfAt(x), uart.cdfAt(x), edbp.cdfAt(x));
    }
    std::printf("\npaper shape (Fig 11): the UART-printf curve sits "
                "clearly to the right of\nno-print (each iteration "
                "costs more energy); the EDB-printf curve hugs the\n"
                "no-print curve because the debugger hides the "
                "output's energy cost.\n");
    return 0;
}
