/**
 * @file
 * Torn-write NV soak: commit disciplines × NV technologies × fault
 * plans (DESIGN.md §11).
 *
 * Each matrix cell runs a batch of generated checkpointing programs
 * (the fuzzer's constrained generator, with checkpoint elements
 * forced in) on a Wisp whose FRAM is a parameterized NvRegion
 * (fram / flash / STT-MRAM technology tables) under a chosen commit
 * discipline, with interruptible commits and a fault injector that
 * forces a brown-out at a seed-derived NV word inside a commit
 * burst. The NV auditor's seal check counts restores of frames no
 * completed commit sealed — hybrid pre/post-checkpoint states.
 *
 * The gates have teeth in both directions:
 *  - the naive discipline (sequence number written before the
 *    payload) must demonstrably corrupt: at least one auditor-flagged
 *    unsealed restore across its cells;
 *  - the sealed discipline (CRC seal + seq written last, verified
 *    recovery scan with fallback) must stay auditor-clean everywhere;
 *  - a crash-anywhere oracle sweep (--sweep-cases, deterministic
 *    seeds) must report zero hybrid restores.
 *
 * Usage: soak_nv [--episodes N] [--sweep-cases N] [--seed S]
 *        (defaults: 12 episodes per cell, 1000 sweep cases)
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "energy/harvester.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "isa/assembler.hh"
#include "mem/nv_audit.hh"
#include "mem/nv_region.hh"
#include "sim/fault.hh"
#include "sim/replay.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

constexpr sim::Tick quantum = sim::oneMs;
constexpr std::uint32_t opBrownOut = 1;

struct CellStats
{
    std::uint64_t episodes = 0;
    std::uint64_t commits = 0;
    std::uint64_t restores = 0;
    std::uint64_t reboots = 0;
    std::uint64_t tears = 0;
    std::uint64_t tornBursts = 0;
    std::uint64_t tornWordsCorrupted = 0;
    std::uint64_t unsealedRestores = 0;
    std::uint64_t maxWear = 0;
    std::uint64_t totalWear = 0;
    std::uint64_t wornWords = 0;
};

mem::NvAuditConfig
auditConfigFor(const target::Wisp &wisp)
{
    mem::NvAuditConfig cfg;
    cfg.checkpointBase = wisp.config().mcu.checkpointBase;
    cfg.checkpointSpan = 2 * wisp.config().mcu.checkpointSlotSize;
    return cfg;
}

/** A generated checkpointing case: the fuzzer's constrained
 *  generator with checkpoint elements forced in so commit bursts
 *  actually happen. */
fuzz::OracleCase
makeCase(std::uint64_t seed)
{
    fuzz::GeneratorOptions small;
    small.minElements = 3;
    small.maxElements = 8;
    fuzz::CaseSpec spec = fuzz::generateCase(seed, small);
    spec.checkpointing = true;
    fuzz::Element ck;
    ck.kind = fuzz::Element::Kind::Chkpt;
    spec.elements.push_back(ck);
    spec.elements.push_back(ck);
    return fuzz::makeOracleCase(spec);
}

/** One episode: world with the cell's discipline + technology, a
 *  seed-derived tear point, run to the case horizon. */
void
runEpisode(mcu::CommitDiscipline discipline,
           const mem::NvTechConfig &tech, std::uint64_t seed,
           CellStats &cell)
{
    fuzz::OracleCase c = makeCase(seed);

    target::WispConfig config;
    config.power.capacitanceF = c.capacitanceF;
    config.power.initialVolts = c.initialVolts;
    config.mcu.checkpointingEnabled = true;
    config.mcu.commitDiscipline = discipline;
    config.mcu.interruptibleCommit = true;
    config.nvTech = tech;

    sim::Simulator simulator(c.seed);
    energy::TheveninHarvester src(3.1, 900.0);
    target::Wisp wisp(simulator, "wisp", &src, nullptr, config);

    sim::FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed ^ 0x6E767470ULL; // "nvtp"
    {
        sim::Rng rng(plan.seed);
        plan.nvTearAtCommitWord =
            static_cast<std::uint64_t>(rng.uniformInt(1, 120));
        plan.nvTornCorruptProb = 0.5;
    }
    sim::FaultInjector fault(simulator, "fault", plan);
    fault.armBrownOuts([&wisp] {
        wisp.power().capacitor().setVoltage(0.5);
    });
    mcu::Mcu::NvCommitHooks hooks;
    hooks.onCommitWord = [&fault] { fault.onNvCommitWord(); };
    hooks.onTornWord = [&fault](std::uint32_t &word) {
        return fault.onTornWord(word);
    };
    wisp.mcu().setNvCommitHooks(hooks);

    mem::NvAuditor aud(auditConfigFor(wisp), wisp.framRegion());
    wisp.mcu().setAuditor(&aud);
    wisp.memoryMap().setWriteHook(&mem::NvAuditor::rawWriteHook,
                                  &aud);

    sim::ScheduleLog log;
    for (const fuzz::BrownOut &b : c.schedule)
        log.record(b.at, opBrownOut, b.volts);
    sim::SchedulePlayer player(simulator);
    player.arm(log, 0, [&wisp](const sim::ScheduleEntry &e) {
        if (e.op == opBrownOut)
            wisp.power().capacitor().setVoltage(e.arg);
    });

    wisp.flash(isa::assemble(c.program));
    wisp.start();
    while (simulator.now() < c.horizon)
        simulator.runFor(quantum);

    ++cell.episodes;
    cell.commits += wisp.mcu().checkpointCount();
    cell.restores += wisp.mcu().restoreCount();
    cell.reboots += wisp.mcu().rebootCount();
    cell.tears += fault.stats().nvTears;
    cell.tornWordsCorrupted += fault.stats().nvTornWordsCorrupted;
    cell.unsealedRestores += aud.unsealedRestoreCount();
    const mem::NvRegion &fram = wisp.framRegion();
    cell.tornBursts += fram.tornWrites();
    cell.totalWear += fram.totalWear();
    cell.wornWords += fram.wornWords();
    if (fram.maxWear() > cell.maxWear)
        cell.maxWear = fram.maxWear();
}

bench::Json
cellJson(const CellStats &cell)
{
    bench::Json wear;
    wear.field("max", cell.maxWear)
        .field("total", cell.totalWear)
        .field("worn_words", cell.wornWords);
    bench::Json j;
    j.field("episodes", cell.episodes)
        .field("commits", cell.commits)
        .field("restores", cell.restores)
        .field("reboots", cell.reboots)
        .field("tears", cell.tears)
        .field("torn_bursts", cell.tornBursts)
        .field("torn_words_corrupted", cell.tornWordsCorrupted)
        .field("unsealed_restores", cell.unsealedRestores)
        .object("wear", wear);
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    const int episodes = static_cast<int>(cli.count("episodes", 12));
    const int sweepCases =
        static_cast<int>(cli.count("sweep-cases", 1000));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.intOption("seed", 11));

    bench::banner(
        "NV torn-write soak: {naive, seqlast, sealed} x {fram, "
        "flash, sttmram}, " +
        std::to_string(episodes) +
        " episodes per cell, interruptible commits, seed-derived "
        "tear points, then a " +
        std::to_string(sweepCases) +
        "-case crash-anywhere oracle sweep");

    const struct
    {
        mcu::CommitDiscipline id;
        const char *name;
    } disciplines[] = {
        {mcu::CommitDiscipline::Naive, "naive"},
        {mcu::CommitDiscipline::SeqLast, "seqlast"},
        {mcu::CommitDiscipline::Sealed, "sealed"},
    };
    const mem::NvTechConfig techs[] = {
        mem::framTech(),
        mem::flashTech(),
        mem::sttMramTech(),
    };

    bench::Json matrix;
    std::uint64_t naiveUnsealed = 0;
    std::uint64_t sealedUnsealed = 0;
    std::uint64_t totalTears = 0;
    std::uint64_t episodeSeed = seed * 10000;
    for (const auto &d : disciplines) {
        for (const mem::NvTechConfig &tech : techs) {
            CellStats cell;
            for (int e = 0; e < episodes; ++e)
                runEpisode(d.id, tech, ++episodeSeed, cell);
            totalTears += cell.tears;
            if (d.id == mcu::CommitDiscipline::Naive)
                naiveUnsealed += cell.unsealedRestores;
            if (d.id == mcu::CommitDiscipline::Sealed)
                sealedUnsealed += cell.unsealedRestores;
            std::string key =
                std::string(d.name) + "_" + tech.name;
            matrix.object(key, cellJson(cell));
            std::printf("cell %-16s episodes=%llu commits=%llu "
                        "tears=%llu unsealed_restores=%llu\n",
                        key.c_str(),
                        static_cast<unsigned long long>(
                            cell.episodes),
                        static_cast<unsigned long long>(
                            cell.commits),
                        static_cast<unsigned long long>(cell.tears),
                        static_cast<unsigned long long>(
                            cell.unsealedRestores));
        }
    }

    // Crash-anywhere oracle sweep: sealed discipline, deterministic
    // seeds, zero hybrid restores allowed.
    std::uint64_t sweepFailed = 0, sweepInconclusive = 0;
    for (int i = 0; i < sweepCases; ++i) {
        fuzz::OracleCase c =
            makeCase(seed * 1000003ULL + static_cast<unsigned>(i));
        fuzz::OracleOutcome out =
            fuzz::runOracle(fuzz::OracleId::CrashAnywhere, c);
        if (out.failed) {
            ++sweepFailed;
            std::printf("sweep case %d FAIL: %s\n", i,
                        out.detail.c_str());
        } else if (out.inconclusive) {
            ++sweepInconclusive;
        }
        if ((i + 1) % 250 == 0)
            std::printf("... sweep %d/%d cases\n", i + 1,
                        sweepCases);
    }

    bench::Json sweep;
    sweep.field("cases", sweepCases)
        .field("failed", sweepFailed)
        .field("inconclusive", sweepInconclusive);
    bench::Json summary;
    bench::runConfigFields(summary, cli);
    summary.field("episodes_per_cell", episodes)
        .field("seed", seed)
        .object("matrix", matrix)
        .object("sweep", sweep)
        .print();

    // Teeth in both directions: the fault model must actually tear,
    // the naive discipline must demonstrably corrupt, and the sealed
    // discipline must never restore an unsealed frame -- in the
    // matrix or anywhere in the sweep.
    bool ok = totalTears > 0 && sealedUnsealed == 0 &&
              sweepFailed == 0;
    if (episodes >= 4)
        ok = ok && naiveUnsealed > 0;
    std::printf(ok ? "\nSOAK PASS\n" : "\nSOAK FAIL\n");
    return ok ? 0 : 1;
}
