/**
 * @file
 * Fleet-scale soak: thousands of independent tags on the
 * work-stealing pool (DESIGN.md §12).
 *
 * Modes (composable; the default run always happens):
 *
 *  - default: one fleet of `--tags` worlds for `--episodes` epochs
 *    on `--threads` workers, with a determinism cross-check — the
 *    same fleet re-run at 1, 2 and 8 shards must produce
 *    bit-identical per-world digests (skip with `--no-check`);
 *  - `--sweep`: tag-count scaling sweep (10 → 5000) at `--threads`
 *    plus a single-thread baseline at the largest sweep point, so
 *    the JSON records the aggregate speedup CI gates on;
 *  - `--audit-sweep N`: N firmware variants (quickstart-derived,
 *    clean generated, and seeded-WAR mutants) under the NV auditor.
 *    Clean worlds must audit clean (zero false positives); mutants
 *    that demonstrably lost power after the gadget must be flagged.
 *
 * Exit code is the gate: determinism mismatch, an audit false
 * positive / missed mutant, or a sub-threshold sweep speedup all
 * fail the soak.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "fleet/fleet.hh"
#include "fuzz/generator.hh"

using namespace edb;

namespace {

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct RunResult
{
    double wallSec = 0.0;
    std::uint64_t instrs = 0;
    std::uint64_t migrations = 0;
    std::uint64_t stolen = 0;
    fleet::ChannelStats chan;
    std::vector<fleet::WorldDigest> digests;
};

fleet::FleetConfig
baseConfig(const bench::Cli &cli, unsigned tags, unsigned threads)
{
    fleet::FleetConfig cfg;
    cfg.tags = tags;
    cfg.threads = threads;
    cfg.seed = static_cast<std::uint64_t>(cli.intOption("seed", 42));
    cfg.epochLength =
        cli.intOption("epoch-us", 5000) * sim::oneUs;
    cfg.wisp = bench::applyEngineFlags(cli);
    // Soak defaults: tags start charged (and boot immediately) with
    // a dev-board-sized cap, so throughput is visible from epoch one.
    cfg.wisp.power.initialVolts =
        static_cast<double>(cli.intOption("init-mv", 2600)) * 1e-3;
    cfg.wisp.power.capacitanceF =
        static_cast<double>(cli.intOption("cap-nf", 4700)) * 1e-9;
    cfg.wisp.mcu.checkpointingEnabled = true;
    cfg.rebalancePeriod =
        static_cast<unsigned>(cli.intOption("rebalance", 4));
    return cfg;
}

RunResult
collect(fleet::Fleet &fleet, double wall_sec)
{
    RunResult r;
    r.wallSec = wall_sec;
    r.instrs = fleet.totalInstrs();
    r.migrations = fleet.migrations();
    r.stolen = fleet.pool().executedStolen();
    r.chan = fleet.channelStats();
    r.digests = fleet.digests();
    return r;
}

RunResult
runFleet(const fleet::FleetConfig &cfg, unsigned epochs,
         fleet::FirmwareFn firmware = {})
{
    fleet::Fleet fleet(cfg, std::move(firmware));
    const double t0 = nowSec();
    fleet.runEpochs(epochs);
    return collect(fleet, nowSec() - t0);
}

/** Per-world distributions — each world's own counters, never a
 *  shared accumulator, so the spread across tags is real. */
bench::Json
perWorldJson(fleet::Fleet &fleet)
{
    bench::Distribution instrs, reboots, sbHit, wear, torn;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        fleet::World &w = fleet.world(i);
        const mcu::Mcu &m = w.wisp().mcu();
        instrs.add(static_cast<double>(m.instrCount()));
        reboots.add(static_cast<double>(m.rebootCount()));
        const mcu::Mcu::SuperblockStats &sb = m.superblockStats();
        sbHit.add(m.instrCount()
                      ? static_cast<double>(sb.blockInstrs) /
                            static_cast<double>(m.instrCount())
                      : 0.0);
        wear.add(static_cast<double>(w.wisp().framRegion().totalWear()));
        torn.add(static_cast<double>(w.wisp().framRegion().tornWrites()));
    }
    bench::Json j;
    j.object("instrs", instrs.json())
        .object("reboots", reboots.json())
        .object("sb_hit_rate", sbHit.json())
        .object("nv_wear", wear.json())
        .object("nv_torn", torn.json());
    return j;
}

bench::Json
runJson(const RunResult &r, unsigned tags, unsigned threads)
{
    bench::Json j;
    j.field("tags", static_cast<std::uint64_t>(tags))
        .field("threads", static_cast<std::uint64_t>(threads))
        .field("wall_sec", r.wallSec)
        .field("instrs", r.instrs)
        .field("instrs_per_sec",
               r.wallSec > 0.0
                   ? static_cast<double>(r.instrs) / r.wallSec
                   : 0.0)
        .field("migrations", r.migrations)
        .field("stolen_tasks", r.stolen)
        .field("attempts", r.chan.attempts)
        .field("replies", r.chan.replies)
        .field("collisions", r.chan.collisions);
    return j;
}

/**
 * Determinism cross-check: identical fleets at 1, 2 and 8 shards.
 * Digests are architectural, so migration (which only happens with
 * >= 2 shards) must not show up either.
 */
bool
determinismCheck(const bench::Cli &cli, unsigned tags,
                 unsigned epochs, bench::Json &out)
{
    const unsigned shardCases[] = {0, 2, 8};
    std::vector<std::vector<fleet::WorldDigest>> all;
    for (unsigned threads : shardCases) {
        RunResult r = runFleet(baseConfig(cli, tags, threads), epochs);
        all.push_back(std::move(r.digests));
    }
    bool ok = true;
    std::uint64_t mismatches = 0;
    for (std::size_t c = 1; c < all.size(); ++c)
        for (std::size_t w = 0; w < all[c].size(); ++w)
            if (!(all[c][w] == all[0][w])) {
                ok = false;
                if (++mismatches <= 4)
                    std::printf("DIGEST MISMATCH world %zu: "
                                "%u-thread crc %08x vs baseline "
                                "%08x\n",
                                w, shardCases[c], all[c][w].crc,
                                all[0][w].crc);
            }
    out.field("worlds", static_cast<std::uint64_t>(all[0].size()))
        .field("shard_cases", 3)
        .field("mismatches", mismatches)
        .field("ok", ok);
    return ok;
}

/** Tag-count scaling sweep + single-thread baseline speedup. */
bool
scalingSweep(const bench::Cli &cli, unsigned threads,
             unsigned epochs, bench::Json &out)
{
    const unsigned points[] = {10, 50, 200, 1000, 5000};
    const unsigned speedupTags = static_cast<unsigned>(
        cli.intOption("speedup-tags", 1000));
    bench::Json rows;
    double rateAtSpeedupTags = 0.0;
    for (unsigned tags : points) {
        bench::note("sweep: " + std::to_string(tags) + " tags, " +
                    std::to_string(threads) + " threads");
        RunResult r = runFleet(baseConfig(cli, tags, threads), epochs);
        if (tags == speedupTags && r.wallSec > 0.0)
            rateAtSpeedupTags =
                static_cast<double>(r.instrs) / r.wallSec;
        rows.object("tags_" + std::to_string(tags),
                    runJson(r, tags, threads));
    }
    bench::note("sweep baseline: " + std::to_string(speedupTags) +
                " tags, single-thread");
    RunResult base =
        runFleet(baseConfig(cli, speedupTags, 0), epochs);
    const double baseRate =
        base.wallSec > 0.0
            ? static_cast<double>(base.instrs) / base.wallSec
            : 0.0;
    const double speedup =
        baseRate > 0.0 ? rateAtSpeedupTags / baseRate : 0.0;
    // The requested gate assumes the cores exist; on a smaller
    // machine it scales down to 80% of hardware concurrency. With a
    // single hardware thread there is no parallelism to measure at
    // all -- a 1-worker pool against the inline baseline is pure
    // handoff overhead -- so the gate is recorded but not enforced;
    // multi-core CI runners enforce it.
    const double requested =
        static_cast<double>(cli.intOption("min-speedup-pct", 250)) /
        100.0;
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const double minSpeedup =
        std::min(requested, 0.8 * static_cast<double>(hw));
    const bool gated = hw >= 2;
    const bool ok = !gated || speedup >= minSpeedup;
    out.object("points", rows)
        .object("baseline", runJson(base, speedupTags, 0))
        .field("speedup", speedup)
        .field("min_speedup_requested", requested)
        .field("min_speedup", minSpeedup)
        .field("hw_concurrency", static_cast<std::uint64_t>(hw))
        .field("speedup_gated", gated)
        .field("ok", ok);
    return ok;
}

/**
 * Auditor variant sweep. Firmware mix per world index i:
 *   i % 4 == 0  quickstart-derived default firmware (clean);
 *   i % 4 == 3  seeded-WAR mutant of a generated case;
 *   otherwise   clean generated case.
 * Every world carries the auditor; generated cases keep their
 * forced brown-out schedules so mutants actually lose power after
 * the gadget (worlds where that never happened are inconclusive,
 * same as the audit oracle).
 */
bool
auditSweep(const bench::Cli &cli, unsigned variants,
           unsigned threads, bench::Json &out)
{
    fleet::FleetConfig cfg = baseConfig(cli, variants, threads);
    cfg.withAuditor = true;
    cfg.rebalancePeriod = 2;
    const std::uint64_t seed = cfg.seed;
    fuzz::GeneratorOptions small;
    small.minElements = 3;
    small.maxElements = 10;
    auto firmware = [seed, small](std::uint32_t i) {
        fleet::WorldFirmware fw;
        if (i % 4 == 0) {
            fw = fleet::Fleet::defaultFirmware();
        } else {
            fuzz::CaseSpec spec =
                fuzz::generateCase(seed * 7919 + i, small);
            fw.schedule = spec.schedule;
            if (i % 4 == 3) {
                fw.listing = fuzz::renderWarMutant(spec);
                fw.checkpointing = false;
                fw.warMutant = true;
            } else {
                fw.listing = fuzz::renderProgram(spec);
                fw.checkpointing = spec.checkpointing;
            }
        }
        // Start charged so the forced schedules land on a live
        // target regardless of the world's drawn distance.
        fw.initialVolts = 2.6;
        return fw;
    };

    fleet::Fleet fleet(cfg, firmware);
    // Generated horizons are 40 ms; run the fleet at least that far.
    const unsigned epochs = static_cast<unsigned>(
        (40 * sim::oneMs + cfg.epochLength - 1) / cfg.epochLength);
    fleet.runEpochs(epochs);

    std::uint64_t cleanWorlds = 0, falsePositives = 0;
    std::uint64_t mutants = 0, conclusive = 0, flagged = 0,
                  missed = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        fleet::World &w = fleet.world(i);
        const std::uint64_t violations =
            w.auditor() ? w.auditor()->violationCount() : 0;
        if (w.config().warDoneWatch != 0) {
            ++mutants;
            if (w.lossesAfterGadget() == 0)
                continue; // inconclusive: gadget never exposed
            ++conclusive;
            if (violations > 0)
                ++flagged;
            else {
                ++missed;
                std::printf("MISSED MUTANT world %zu (%llu losses "
                            "after gadget, 0 violations)\n",
                            i,
                            static_cast<unsigned long long>(
                                w.lossesAfterGadget()));
            }
        } else {
            ++cleanWorlds;
            if (violations > 0) {
                ++falsePositives;
                std::printf("FALSE POSITIVE world %zu (%llu "
                            "violations on clean firmware)\n",
                            i,
                            static_cast<unsigned long long>(
                                violations));
            }
        }
    }
    // Gate: no clean world flags, no conclusive mutant escapes, and
    // enough mutants were conclusive for the completeness half to
    // mean anything.
    const bool ok = falsePositives == 0 && missed == 0 &&
                    (mutants == 0 || conclusive * 4 >= mutants);
    out.field("variants", static_cast<std::uint64_t>(variants))
        .field("clean_worlds", cleanWorlds)
        .field("false_positives", falsePositives)
        .field("mutants", mutants)
        .field("conclusive_mutants", conclusive)
        .field("flagged_mutants", flagged)
        .field("missed_mutants", missed)
        .field("ok", ok);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    const unsigned tags = bench::tagsOption(cli, 64);
    const unsigned threads = bench::threadsOption(cli);
    const unsigned epochs = static_cast<unsigned>(
        cli.count("episodes", 8));

    bench::banner("fleet soak");
    std::printf("tags=%u threads=%u epochs=%u hw=%u\n", tags,
                threads, epochs,
                std::thread::hardware_concurrency());

    bool ok = true;
    bench::Json summary;
    bench::runConfigFields(summary, cli, 64);
    summary.field("episodes", static_cast<std::uint64_t>(epochs));

    // The main run.
    {
        fleet::Fleet fleet(baseConfig(cli, tags, threads));
        const double t0 = nowSec();
        fleet.runEpochs(epochs);
        RunResult r = collect(fleet, nowSec() - t0);
        bench::Json run = runJson(r, tags, threads);
        run.object("per_world", perWorldJson(fleet));
        run.field("log_messages", fleet.logSink().total());
        summary.object("run", run);
    }

    if (!cli.has("no-check")) {
        bench::note("determinism cross-check (1 / 2 / 8 shards)");
        bench::Json det;
        const unsigned checkTags = static_cast<unsigned>(
            cli.intOption("check-tags", tags > 128 ? 128 : tags));
        const bool detOk =
            determinismCheck(cli, checkTags, epochs, det);
        summary.object("determinism", det);
        ok = ok && detOk;
    }

    if (cli.has("sweep")) {
        bench::note("tag-count scaling sweep");
        bench::Json sweep;
        const unsigned sweepThreads =
            threads != 0 ? threads
                         : std::max(2u,
                                    std::thread::
                                        hardware_concurrency());
        // No short-circuit: every requested gate must run and
        // record its verdict even when an earlier one failed.
        const bool sweepOk =
            scalingSweep(cli, sweepThreads, epochs, sweep);
        ok = ok && sweepOk;
        summary.object("sweep", sweep);
    }

    if (cli.has("audit-sweep")) {
        const unsigned variants = static_cast<unsigned>(
            cli.intOption("audit-sweep", 520));
        bench::note("auditor variant sweep (" +
                    std::to_string(variants) + " firmware variants)");
        bench::Json audit;
        const bool auditOk =
            auditSweep(cli, variants, threads, audit);
        ok = ok && auditOk;
        summary.object("audit", audit);
    }

    summary.field("ok", ok);
    summary.print();
    std::printf("\nFLEET %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
