/**
 * @file
 * Regenerates paper Table 2: worst-case DC current over each
 * electrical connection between the target device and EDB.
 *
 * Methodology (paper Section 5.2.1): a source meter applies 0 V /
 * 2.4 V to the driving endpoint of each connection and measures the
 * resulting current; the worst-case total across all connections
 * bounds EDB's passive energy interference.
 */

#include <cmath>
#include <cstdio>

#include "baseline/source_meter.hh"
#include "bench/common.hh"
#include "edb/connection.hh"

using namespace edb;

namespace {

constexpr double toNa = 1e9;
constexpr unsigned trials = 50;
constexpr double vMax = 2.4;

void
printRow(const char *conn_name, const char *state_name,
         const trace::SampleSet &samples)
{
    std::printf("%-34s %-6s %10.4f %10.4f %10.4f\n", conn_name,
                state_name, samples.summary().min() * toNa,
                samples.summary().mean() * toNa,
                samples.summary().max() * toNa);
}

} // namespace

int
main()
{
    bench::banner("Table 2: worst-case current over EDB<->target "
                  "connections (nA)");
    sim::Rng rng(2016);
    edbdbg::ConnectionSet pins(rng);
    baseline::SourceMeter meter(rng);

    std::printf("%-34s %-6s %10s %10s %10s\n", "Connection", "State",
                "Min", "Avg", "Max");

    double worst_total = 0.0;
    for (const auto &conn : pins.all()) {
        if (conn.type() == edbdbg::ConnectionType::AnalogSense) {
            auto s = meter.measureMany(conn, edbdbg::LineState::Analog,
                                       vMax, trials);
            printRow(conn.name().c_str(), "", s);
            worst_total += std::max(std::abs(s.summary().min()),
                                    std::abs(s.summary().max()));
            continue;
        }
        auto hi = meter.measureMany(conn, edbdbg::LineState::High,
                                    vMax, trials);
        auto lo = meter.measureMany(conn, edbdbg::LineState::Low, 0.0,
                                    trials);
        printRow(conn.name().c_str(), "high", hi);
        printRow("", "low", lo);
        worst_total += std::max(
            std::max(std::abs(hi.summary().min()),
                     std::abs(hi.summary().max())),
            std::max(std::abs(lo.summary().min()),
                     std::abs(lo.summary().max())));
    }

    std::printf("\nWorst-Case Total Current: %.2f nA\n",
                worst_total * toNa);

    // The paper's headline: worst-case leakage is ~0.2% of the
    // target's 0.5 mA active current.
    constexpr double activeAmps = 0.5e-3;
    std::printf("= %.3f%% of the target's %.1f mA active-mode "
                "current (paper: 836.51 nA, 0.2%%)\n",
                worst_total / activeAmps * 100.0, activeAmps * 1e3);

    // Cross-check against the analytic worst case of the model.
    std::printf("model analytic worst-case total: %.2f nA\n",
                pins.worstCaseTotal(vMax) * toNa);
    return 0;
}
