/**
 * @file
 * Ablation for paper Section 2.2's LED-tracing claim: "Powering an
 * LED increases the WISP's current draw by five times, from around
 * 1 mA to over 5 mA... LED-based tracing does not work in
 * energy-harvesting devices, because LEDs are power-hungry and
 * their energy use changes the execution's behavior."
 *
 * Runs the linked-list app with GPIO progress signalling vs LED
 * progress signalling and compares current draw, throughput and
 * intermittent behaviour.
 */

#include <cstdio>

#include "apps/linked_list.hh"
#include "bench/common.hh"

using namespace edb;

namespace {

struct RunStats
{
    std::uint32_t iters;
    std::uint64_t boots;
    std::uint64_t blinks;
    double dutyOn;
};

RunStats
run(bool led_tracing, std::uint64_t seed)
{
    apps::LinkedListOptions options;
    options.ledTracing = led_tracing;
    bench::Rig rig(seed);
    rig.wisp.flash(apps::buildLinkedListApp(options));
    rig.wisp.start();

    sim::Tick on_time = 0;
    constexpr sim::Tick step = sim::oneMs;
    constexpr sim::Tick total = 10 * sim::oneSec;
    for (sim::Tick t = 0; t < total; t += step) {
        rig.sim.runFor(step);
        if (rig.wisp.state() == mcu::McuState::Running)
            on_time += step;
    }
    return {rig.wisp.mcu().debugRead32(
                apps::linked_list_layout::iterCountAddr),
            rig.wisp.power().bootCount(),
            rig.wisp.led().blinkCount(),
            double(on_time) / double(total)};
}

} // namespace

int
main()
{
    bench::banner("Ablation: LED-based tracing vs GPIO signalling "
                  "(linked-list app, 10 s harvested)");

    target::WispConfig config;
    double base = config.mcu.activeAmps;
    std::printf("current draw: active %.1f mA; with LED lit %.1f mA "
                "(%.1fx)\n",
                base * 1e3, (base + config.ledAmps) * 1e3,
                (base + config.ledAmps) / base);
    std::printf("(paper: ~1 mA -> over 5 mA, five times)\n\n");

    auto gpio = run(false, 4001);
    auto led = run(true, 4002);
    std::printf("%-16s %12s %8s %10s %10s\n", "", "iterations",
                "boots", "blinks", "on-duty");
    std::printf("%-16s %12u %8llu %10llu %9.0f%%\n", "GPIO tracing",
                gpio.iters, (unsigned long long)gpio.boots,
                (unsigned long long)gpio.blinks,
                gpio.dutyOn * 100.0);
    std::printf("%-16s %12u %8llu %10llu %9.0f%%\n", "LED tracing",
                led.iters, (unsigned long long)led.boots,
                (unsigned long long)led.blinks, led.dutyOn * 100.0);
    if (gpio.iters > 0) {
        std::printf("\nLED tracing completes %.0f%% of the GPIO "
                    "variant's iterations: the act of\nobserving "
                    "changes the intermittent execution (shorter "
                    "discharge phases,\nmore reboots per unit of "
                    "work).\n",
                    100.0 * double(led.iters) / double(gpio.iters));
    }
    return 0;
}
