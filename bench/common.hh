/**
 * @file
 * Shared rig setup and table-printing helpers for the benchmark
 * harnesses. Each bench binary regenerates one table or figure from
 * the paper's evaluation (Section 5); see DESIGN.md for the index
 * and EXPERIMENTS.md for recorded results.
 */

#ifndef EDB_BENCH_COMMON_HH
#define EDB_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>

#include "edb/board.hh"
#include "energy/harvester.hh"
#include "rfid/channel.hh"
#include "rfid/reader.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

namespace edb::bench {

/** Standard experimental rig: WISP on RF power with EDB attached. */
struct Rig
{
    sim::Simulator sim;
    energy::RfHarvester rf;
    std::unique_ptr<rfid::RfChannel> channel;
    std::unique_ptr<rfid::RfidReader> reader;
    target::Wisp wisp;
    edbdbg::EdbBoard board;

    /**
     * @param seed RNG seed.
     * @param tx_dbm Reader transmit power (paper: 30 dBm).
     * @param distance_m Reader distance (paper: 1 m).
     * @param with_rfid Instantiate the air interface + reader.
     */
    explicit Rig(std::uint64_t seed = 1, double tx_dbm = 30.0,
                 double distance_m = 1.0, bool with_rfid = false,
                 edbdbg::EdbConfig edb_config = {},
                 target::WispConfig wisp_config = {})
        : sim(seed),
          rf(tx_dbm, distance_m),
          channel(with_rfid ? std::make_unique<rfid::RfChannel>(
                                  sim, "channel")
                            : nullptr),
          reader(with_rfid ? std::make_unique<rfid::RfidReader>(
                                 sim, "reader", *channel)
                           : nullptr),
          wisp(sim, "wisp", &rf, channel.get(), wisp_config),
          board(sim, "edb", wisp, channel.get(), edb_config)
    {}
};

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Sub-banner. */
inline void
note(const std::string &text)
{
    std::printf("--- %s\n", text.c_str());
}

} // namespace edb::bench

#endif // EDB_BENCH_COMMON_HH
