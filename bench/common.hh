/**
 * @file
 * Shared rig setup and table-printing helpers for the benchmark
 * harnesses. Each bench binary regenerates one table or figure from
 * the paper's evaluation (Section 5); see DESIGN.md for the index
 * and EXPERIMENTS.md for recorded results.
 */

#ifndef EDB_BENCH_COMMON_HH
#define EDB_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "edb/board.hh"
#include "energy/harvester.hh"
#include "mcu/mcu.hh"
#include "rfid/channel.hh"
#include "rfid/reader.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"
#include "trace/stats.hh"

namespace edb::bench {

/** Standard experimental rig: WISP on RF power with EDB attached. */
struct Rig
{
    sim::Simulator sim;
    energy::RfHarvester rf;
    std::unique_ptr<rfid::RfChannel> channel;
    std::unique_ptr<rfid::RfidReader> reader;
    target::Wisp wisp;
    edbdbg::EdbBoard board;

    /**
     * @param seed RNG seed.
     * @param tx_dbm Reader transmit power (paper: 30 dBm).
     * @param distance_m Reader distance (paper: 1 m).
     * @param with_rfid Instantiate the air interface + reader.
     */
    explicit Rig(std::uint64_t seed = 1, double tx_dbm = 30.0,
                 double distance_m = 1.0, bool with_rfid = false,
                 edbdbg::EdbConfig edb_config = {},
                 target::WispConfig wisp_config = {})
        : sim(seed),
          rf(tx_dbm, distance_m),
          channel(with_rfid ? std::make_unique<rfid::RfChannel>(
                                  sim, "channel")
                            : nullptr),
          reader(with_rfid ? std::make_unique<rfid::RfidReader>(
                                 sim, "reader", *channel)
                           : nullptr),
          wisp(sim, "wisp", &rf, channel.get(), wisp_config),
          board(sim, "edb", wisp, channel.get(), edb_config)
    {}
};

/**
 * Shared command-line parsing for the soak/fuzz harnesses:
 * `--name value` pairs, bare `--flag` switches, and one optional
 * bare integer (the legacy positional episode/plan count).
 */
class Cli
{
  public:
    Cli(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
                std::string name = arg.substr(2);
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    options[name] = argv[++i];
                else
                    options[name] = "";
            } else {
                positional_ = std::atoll(arg.c_str());
            }
        }
    }

    bool has(const std::string &name) const
    {
        return options.count(name) != 0;
    }

    long long
    intOption(const std::string &name, long long fallback) const
    {
        auto it = options.find(name);
        if (it == options.end() || it->second.empty())
            return fallback;
        return std::atoll(it->second.c_str());
    }

    std::string
    strOption(const std::string &name,
              const std::string &fallback = "") const
    {
        auto it = options.find(name);
        return it == options.end() ? fallback : it->second;
    }

    /** The bare positional integer, `fallback` when absent. */
    long long
    positional(long long fallback) const
    {
        return positional_.value_or(fallback);
    }

    /** `--name N`, falling back to the bare positional integer. */
    long long
    count(const std::string &name, long long fallback) const
    {
        return intOption(name, positional(fallback));
    }

  private:
    std::map<std::string, std::string> options;
    std::optional<long long> positional_;
};

/**
 * Minimal JSON object builder for the machine-readable summary each
 * harness prints as its last line (CI log scrapers key on it).
 */
class Json
{
  public:
    Json &
    field(const std::string &key, std::uint64_t v)
    {
        return raw(key, std::to_string(v));
    }

    Json &
    field(const std::string &key, long long v)
    {
        return raw(key, std::to_string(v));
    }

    Json &
    field(const std::string &key, int v)
    {
        return raw(key, std::to_string(v));
    }

    Json &
    field(const std::string &key, bool v)
    {
        return raw(key, v ? "true" : "false");
    }

    Json &
    field(const std::string &key, double v)
    {
        std::ostringstream s;
        s.precision(17);
        s << v;
        return raw(key, s.str());
    }

    Json &
    field(const std::string &key, const std::string &v)
    {
        std::string quoted = "\"";
        for (char c : v) {
            if (c == '"' || c == '\\')
                quoted += '\\';
            quoted += c;
        }
        quoted += '"';
        return raw(key, quoted);
    }

    /** Nested object. */
    Json &
    object(const std::string &key, const Json &sub)
    {
        return raw(key, sub.str());
    }

    std::string str() const { return "{" + body + "}"; }

    /** Print as the final summary line. */
    void print() const { std::printf("\n%s\n", str().c_str()); }

  private:
    Json &
    raw(const std::string &key, const std::string &v)
    {
        if (!body.empty())
            body += ", ";
        body += "\"" + key + "\": " + v;
        return *this;
    }

    std::string body;
};

/**
 * Shared execution-engine escape hatches for the bench/soak
 * harnesses: `--no-superblock` disables the superblock tier while
 * keeping the rest of the fast path (DESIGN.md §10), `--reference`
 * turns every fast-path flag off. Apply to the WispConfig a harness
 * is about to construct its target with.
 */
inline target::WispConfig
applyEngineFlags(const Cli &cli, target::WispConfig config = {})
{
    if (cli.has("no-superblock"))
        config.mcu.superblocks = false;
    if (cli.has("reference")) {
        config.mcu.predecodeCache = false;
        config.mcu.flatDispatch = false;
        config.mcu.batchedDrain = false;
        config.mcu.batchedSlices = false;
        config.mcu.superblocks = false;
        config.power.fastIntegration = false;
    }
    return config;
}

/// @name Uniform run-shape options
/// Every soak/fuzz harness accepts `--threads N` (worker threads; 0
/// = inline) and `--tags N` (world count, where the harness
/// simulates more than one), and echoes both in its JSON summary
/// next to the engine flags so a recorded run is reproducible from
/// the summary line alone.
/// @{
inline unsigned
threadsOption(const Cli &cli)
{
    long long t = cli.intOption("threads", 0);
    return t < 0 ? 0u : static_cast<unsigned>(t);
}

inline unsigned
tagsOption(const Cli &cli, unsigned fallback = 1)
{
    long long t = cli.intOption("tags", fallback);
    return t < 1 ? 1u : static_cast<unsigned>(t);
}

/** Standard run-shape + engine-flag fields for a JSON summary. */
inline Json &
runConfigFields(Json &j, const Cli &cli, unsigned default_tags = 1)
{
    j.field("threads", static_cast<std::uint64_t>(threadsOption(cli)))
        .field("tags",
               static_cast<std::uint64_t>(tagsOption(cli, default_tags)))
        .field("superblocks",
               !cli.has("no-superblock") && !cli.has("reference"))
        .field("reference", cli.has("reference"));
    return j;
}
/// @}

/**
 * Sample distribution for per-world reporting: fleets and soaks run
 * many independent worlds, and an aggregate sum hides the spread, so
 * summaries report min/mean/max and tail percentiles instead of (or
 * alongside) totals.
 */
class Distribution
{
  public:
    void add(double v) { samples.push_back(v); }

    std::size_t n() const { return samples.size(); }

    double
    sum() const
    {
        double s = 0.0;
        for (double v : samples)
            s += v;
        return s;
    }

    double mean() const { return samples.empty() ? 0.0 : sum() / n(); }

    /** q in [0, 1]; nearest-rank on the sorted samples. */
    double
    percentile(double q) const
    {
        if (samples.empty())
            return 0.0;
        std::vector<double> s = samples;
        std::sort(s.begin(), s.end());
        double idx = q * static_cast<double>(s.size() - 1);
        return s[static_cast<std::size_t>(idx + 0.5)];
    }

    double min() const { return percentile(0.0); }
    double max() const { return percentile(1.0); }

    Json
    json() const
    {
        Json j;
        j.field("n", static_cast<std::uint64_t>(n()))
            .field("min", min())
            .field("mean", mean())
            .field("p50", percentile(0.5))
            .field("p90", percentile(0.9))
            .field("max", max());
        return j;
    }

  private:
    std::vector<double> samples;
};

/** Sum superblock counters across worlds (soaks run one Mcu per
 *  episode/plan but report one aggregate; fleets report per-world
 *  `Distribution`s instead — see fleet_soak). */
inline void
accumulate(mcu::Mcu::SuperblockStats &into,
           const mcu::Mcu::SuperblockStats &s)
{
    into.blocksBuilt += s.blocksBuilt;
    into.rebuilds += s.rebuilds;
    into.execs += s.execs;
    into.blockInstrs += s.blockInstrs;
    into.bailouts += s.bailouts;
    into.fallbacks += s.fallbacks;
    for (std::size_t i = 0; i < into.lengthCounts.size(); ++i)
        into.lengthCounts[i] += s.lengthCounts[i];
}

/**
 * Superblock engine summary for JSON output: raw counters, the hit
 * rate (fraction of all retired instructions that retired inside a
 * block) and a block-length histogram with its exact mean.
 */
inline Json
superblockJson(const mcu::Mcu::SuperblockStats &sb,
               std::uint64_t total_instrs)
{
    trace::Histogram lens(
        1.0, static_cast<double>(mcu::Mcu::superblockLenCap + 1), 8);
    for (std::size_t len = 1; len < sb.lengthCounts.size(); ++len)
        lens.add(static_cast<double>(len), sb.lengthCounts[len]);
    Json hist;
    const std::size_t width = (mcu::Mcu::superblockLenCap + 7) / 8;
    for (std::size_t b = 0; b < lens.bins(); ++b) {
        const std::size_t blo = 1 + b * width;
        const std::size_t bhi = blo + width - 1;
        hist.field("len_" + std::to_string(blo) + "_" +
                       std::to_string(bhi),
                   static_cast<std::uint64_t>(lens.binCount(b)));
    }
    Json j;
    j.field("built", sb.blocksBuilt)
        .field("rebuilds", sb.rebuilds)
        .field("execs", sb.execs)
        .field("block_instrs", sb.blockInstrs)
        .field("bailouts", sb.bailouts)
        .field("fallbacks", sb.fallbacks)
        .field("hit_rate",
               total_instrs ? static_cast<double>(sb.blockInstrs) /
                                  static_cast<double>(total_instrs)
                            : 0.0)
        .field("mean_len", lens.mean())
        .object("length_hist", hist);
    return j;
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Sub-banner. */
inline void
note(const std::string &text)
{
    std::printf("--- %s\n", text.c_str());
}

} // namespace edb::bench

#endif // EDB_BENCH_COMMON_HH
