/**
 * @file
 * Ablation: storage-capacitor size vs application behaviour.
 *
 * Paper Section 5.3.3 motivates profiling because "the application
 * cannot be tuned to the size of the storage capacitor without the
 * energy profile of one classification operation". This sweep runs
 * the activity-recognition app across capacitor sizes and shows how
 * iteration success rate and throughput depend on how many
 * iterations fit in one charge-discharge cycle.
 */

#include <cstdio>

#include "apps/activity.hh"
#include "bench/common.hh"

using namespace edb;

int
main()
{
    bench::banner("Ablation: capacitor size vs iteration success "
                  "(activity recognition, 10 s harvested)");
    namespace lay = apps::activity_layout;
    std::printf("%10s %12s %12s %10s %8s\n", "cap_uF", "attempted",
                "completed", "success", "boots");

    int seed = 5000;
    for (double uf : {10.0, 22.0, 47.0, 100.0, 220.0}) {
        target::WispConfig wisp_config;
        wisp_config.power.capacitanceF = uf * 1e-6;
        bench::Rig rig(++seed, 30.0, 1.0, false, {}, wisp_config);
        rig.wisp.flash(apps::buildActivityApp({}));
        rig.wisp.start();
        rig.sim.runFor(10 * sim::oneSec);
        std::uint32_t attempted =
            rig.wisp.mcu().debugRead32(lay::startedAddr);
        std::uint32_t completed =
            rig.wisp.mcu().debugRead32(lay::totalAddr);
        double success =
            attempted ? 100.0 * completed / attempted : 0.0;
        std::printf("%10.0f %12u %12u %9.1f%% %8llu\n", uf, attempted,
                    completed, success,
                    (unsigned long long)rig.wisp.power().bootCount());
    }
    std::printf("\nsmall capacitors fit few iterations per cycle, so "
                "a larger fraction of\nwork is torn by reboots; "
                "larger capacitors amortize the charge cycle but\n"
                "take longer to reach the turn-on threshold.\n");
    return 0;
}
