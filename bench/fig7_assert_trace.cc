/**
 * @file
 * Regenerates paper Figure 7 (and the Section 5.3.1 case study):
 * the memory-corrupting intermittence bug in the linked-list
 * application, without and with EDB's intermittence-aware assert.
 *
 * Top half (no assert): the main-loop GPIO toggles in early
 * charge-discharge cycles, then stops after the wild-pointer write —
 * and never recovers across reboots.
 *
 * Bottom half (with assert): when the list invariant breaks, EDB
 * halts the program, tethers the target to continuous power
 * (capacitor rises to the supply level) and opens an interactive
 * session in which the stale tail pointer is visible.
 */

#include <cstdio>
#include <vector>

#include "apps/linked_list.hh"
#include "baseline/oscilloscope.hh"
#include "bench/common.hh"

using namespace edb;

namespace {

void
printWave(const baseline::Oscilloscope &scope, sim::Tick from,
          sim::Tick to, sim::Tick step)
{
    std::printf("%10s %8s %10s %8s\n", "time_ms", "vcap_V",
                "main_loop", "tether");
    for (sim::Tick t = from; t <= to; t += step) {
        std::printf("%10.1f %8.3f %10.0f %8.0f\n",
                    sim::millisFromTicks(t), scope.valueAt(0, t),
                    scope.valueAt(1, t), scope.valueAt(2, t));
    }
}

} // namespace

int
main()
{
    namespace lay = apps::linked_list_layout;

    bench::banner("Figure 7 (top): linked-list app WITHOUT assert");
    {
        bench::Rig rig(707);
        rig.wisp.flash(apps::buildLinkedListApp());
        baseline::Oscilloscope scope(rig.sim, "scope",
                                     500 * sim::oneUs);
        scope.addChannel("vcap", [&] {
            return rig.wisp.power().voltageNoAdvance();
        });
        scope.addChannel("main_loop",
                         [&] { return rig.wisp.gpio().pin(0) ? 1 : 0; });
        scope.addChannel("tether",
                         [&] { return rig.board.tethered() ? 1 : 0; });
        // Full-rate edge log of the main-loop pin (the scope's table
        // below is decimated for display).
        std::vector<sim::Tick> toggles;
        rig.wisp.gpio().addListener(
            [&toggles](unsigned pin, bool level, sim::Tick when) {
                if (pin == 0 && level)
                    toggles.push_back(when);
            });
        scope.start();
        rig.wisp.start();

        // Run until the fault has occurred and several more cycles
        // have shown that the device never recovers.
        sim::Tick fault_time = -1;
        mcu::McuFault fault_kind = mcu::McuFault::None;
        for (int chunk = 0; chunk < 600; ++chunk) {
            rig.sim.runFor(100 * sim::oneMs);
            if (fault_time < 0 && rig.wisp.mcu().faultCount() > 0) {
                fault_time = rig.sim.now();
                fault_kind = rig.wisp.mcu().fault();
            }
            if (fault_time >= 0 &&
                rig.sim.now() > fault_time + sim::oneSec) {
                break;
            }
        }
        if (fault_time < 0) {
            std::printf("bug did not manifest in the time budget\n");
            return 1;
        }
        std::printf("wild-pointer fault (%s) first hit by %.1f ms; "
                    "faults since: %llu (one per reboot: the device "
                    "never recovers)\n",
                    mcu::mcuFaultName(fault_kind),
                    sim::millisFromTicks(fault_time),
                    (unsigned long long)rig.wisp.mcu().faultCount());

        auto toggles_in = [&toggles](sim::Tick from, sim::Tick to) {
            std::size_t n = 0;
            for (sim::Tick t : toggles)
                n += t >= from && t <= to;
            return n;
        };
        sim::Tick window = 400 * sim::oneMs;
        std::printf("main-loop toggles in first %lld ms after boot: "
                    "%zu\n",
                    (long long)(window / sim::oneMs),
                    toggles_in(0, sim::oneSec + window));
        std::printf("main-loop toggles in last  %lld ms: %zu "
                    "(paper: \"mysteriously stops running\")\n",
                    (long long)(window / sim::oneMs),
                    toggles_in(rig.sim.now() - window, rig.sim.now()));

        bench::note("early cycles (loop alive)");
        printWave(scope, 0, 300 * sim::oneMs, 10 * sim::oneMs);
        bench::note("after the fault (loop dead across reboots)");
        printWave(scope, rig.sim.now() - 300 * sim::oneMs,
                  rig.sim.now(), 10 * sim::oneMs);
    }

    bench::banner("Figure 7 (bottom): WITH intermittence-aware assert");
    {
        apps::LinkedListOptions options;
        options.withAssert = true;
        bench::Rig rig(708);
        rig.wisp.flash(apps::buildLinkedListApp(options));
        baseline::Oscilloscope scope(rig.sim, "scope",
                                     500 * sim::oneUs);
        scope.addChannel("vcap", [&] {
            return rig.wisp.power().voltageNoAdvance();
        });
        scope.addChannel("main_loop",
                         [&] { return rig.wisp.gpio().pin(0) ? 1 : 0; });
        scope.addChannel("tether",
                         [&] { return rig.board.tethered() ? 1 : 0; });
        scope.start();
        rig.wisp.start();

        if (!rig.board.waitForSession(60 * sim::oneSec)) {
            std::printf("assert did not fire in the time budget\n");
            return 1;
        }
        auto *session = rig.board.session();
        std::printf("assert id %u failed at %.1f ms; EDB tethered the "
                    "target (keep-alive)\n",
                    session->id(),
                    sim::millisFromTicks(rig.sim.now()));
        std::printf("target state: %s, Vcap %.3f V (rising to the "
                    "tethered supply)\n",
                    mcu::mcuStateName(rig.wisp.state()),
                    rig.wisp.power().voltage());

        // Interactive diagnosis: the tail pointer names a node whose
        // next pointer is non-NULL -- the stale-tail inconsistency.
        auto tail = session->read32(lay::tailPtrAddr);
        if (tail) {
            auto tail_next = session->read32(*tail + lay::nodeNextOff);
            std::printf("tailptr = 0x%04x, tail->next = 0x%04x "
                        "(invariant requires NULL)\n",
                        *tail, tail_next.value_or(0));
            if (tail_next && *tail_next != 0) {
                auto last_prev = session->read32(
                    *tail_next + lay::nodePrevOff);
                std::printf("node 0x%04x is the real last element "
                            "(prev = 0x%04x): the tail pointer is "
                            "stale after an interrupted append\n",
                            *tail_next, last_prev.value_or(0));
            }
        }
        // Let the tether ramp show in the trace before resuming.
        rig.board.pumpFor(60 * sim::oneMs);
        bench::note("trace around the assert (tether engages)");
        printWave(scope, rig.sim.now() - 300 * sim::oneMs,
                  rig.sim.now(), 10 * sim::oneMs);
        session->resume();
        rig.board.waitPassive(sim::oneSec);
        std::printf("resumed; restored Vcap to %.3f V (saved %.3f V)\n",
                    rig.board.lastRestoredVolts(),
                    rig.board.lastSavedVolts());
    }
    return 0;
}
