/**
 * @file
 * ETAP-style cross-validation: the static energy analyzer vs.
 * simulated ground truth (DESIGN.md §14).
 *
 * Two legs:
 *
 *  1. A fuzzed population: every generated case runs under the
 *     `etap` differential oracle (src/fuzz/oracle.cc), which
 *     measures each power-on→first-persist drain in a live world and
 *     compares it against the analyzer's worst-case per-boot bound,
 *     and the starvation verdict against the observed persist
 *     history. The harness aggregates: soundness violations and
 *     false starvation verdicts must both be zero, and the bound's
 *     tightness (observed/bound) is reported so over-approximation
 *     creep is visible in CI history.
 *
 *  2. The shipped applications: the debug-build Fibonacci app must
 *     be flagged as starving *statically* (the paper's Fig 9 bug,
 *     found without running it), while the release build, the
 *     activity-recognition app and the README quickstart guest must
 *     all analyze clean.
 *
 * Prints one JSON summary as its last line; tools/check_etap.py
 * gates on it in CI.
 *
 * Usage: etap_validate [--cases N] [--seed S]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/cost_model.hh"
#include "apps/activity.hh"
#include "apps/fibonacci.hh"
#include "bench/common.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** Pull "key=1.23e-4" out of an oracle detail string. */
double
detailNum(const std::string &detail, const char *key, double fallback)
{
    std::string tag = std::string(key) + "=";
    auto at = detail.find(tag);
    if (at == std::string::npos)
        return fallback;
    return std::strtod(detail.c_str() + at + tag.size(), nullptr);
}

/** A wisp on an effectively infinite capacitor, used only as the
 *  cost-table donor for the example-app verdicts (the verdicts that
 *  matter here — S1 barren-unavoidable — are budget-independent). */
struct ModelRig
{
    sim::Simulator sim{424242};
    energy::TheveninHarvester supply{3.0, 10.0};
    target::Wisp wisp;

    ModelRig()
        : wisp(sim, "wisp", &supply, nullptr,
               [] {
                   target::WispConfig c;
                   c.power.capacitanceF = 1.0;
                   c.power.initialVolts = 3.0;
                   c.power.maxVolts = 3.0;
                   c.power.bootOnStart = true;
                   c.power.harvestNoiseSigma = 0.0;
                   return c;
               }())
    {}
};

analysis::Verdict
verdictOf(const isa::Program &prog)
{
    ModelRig rig;
    analysis::CostModel m = analysis::CostModel::fromWisp(rig.wisp);
    return analysis::analyze(prog, m).verdict;
}

bool
clean(analysis::Verdict v)
{
    return v != analysis::Verdict::Starves &&
           v != analysis::Verdict::MayStarve &&
           v != analysis::Verdict::Unknown;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    const unsigned cases =
        static_cast<unsigned>(cli.intOption("cases", 300));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.intOption("seed", 1));

    unsigned conclusive = 0, inconclusive = 0;
    unsigned soundnessViolations = 0, starveFp = 0, starveFn = 0;
    unsigned otherFailures = 0;
    std::uint64_t windowsTotal = 0;
    std::vector<double> tightness;

    for (unsigned i = 0; i < cases; ++i) {
        fuzz::CaseSpec spec =
            fuzz::generateCase(seed * 100000 + i);
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);
        fuzz::OracleOutcome out =
            fuzz::runOracle(fuzz::OracleId::Etap, c);
        if (out.failed) {
            if (out.detail.find("static bound unsound") !=
                std::string::npos)
                ++soundnessViolations;
            else if (out.detail.find("false positive") !=
                     std::string::npos)
                ++starveFp;
            else if (out.detail.find("false negative") !=
                     std::string::npos)
                ++starveFn;
            else
                ++otherFailures;
            std::printf("case %u FAIL: %s\n", i, out.detail.c_str());
            continue;
        }
        if (out.inconclusive)
            ++inconclusive;
        else
            ++conclusive;
        double windows = detailNum(out.detail, "windows", 0.0);
        windowsTotal += static_cast<std::uint64_t>(windows);
        double bound = detailNum(out.detail, "bound", 0.0);
        double observed =
            detailNum(out.detail, "worstObserved", -1.0);
        if (windows > 0 && bound > 0 && observed >= 0)
            tightness.push_back(observed / bound);
    }

    double medianTightness = 0.0, maxTightness = 0.0;
    if (!tightness.empty()) {
        std::sort(tightness.begin(), tightness.end());
        medianTightness = tightness[tightness.size() / 2];
        maxTightness = tightness.back();
    }

    // Leg 2: the shipped applications, statically.
    apps::FibonacciOptions debugBuild;
    debugBuild.withCheck = true;
    bool fig9Starves =
        verdictOf(apps::buildFibonacciApp(debugBuild)) ==
        analysis::Verdict::Starves;
    analysis::Verdict fibRelease =
        verdictOf(apps::buildFibonacciApp({}));
    bool fibReleaseClean =
        fibRelease != analysis::Verdict::Starves &&
        fibRelease != analysis::Verdict::Unknown;
    apps::ActivityOptions act;
    act.output = apps::ActivityOutput::UartPrintf;
    bool activityClean = clean(verdictOf(apps::buildActivityApp(act)));
    bool quickstartClean = clean(verdictOf(isa::assemble(
        runtime::programHeader() + R"(
main:
    la   r5, 0x5000
loop:
    ldw  r1, [r5]
    addi r1, r1, 1
    stw  r1, [r5]
    andi r2, r1, 0x0FFF
    cmpi r2, 0
    bne  loop
    li   r1, 1
    call edb_watchpoint
    br   loop
)" + runtime::libedbSource())));

    bool ok = soundnessViolations == 0 && starveFp == 0 &&
              starveFn == 0 && otherFailures == 0 && fig9Starves &&
              fibReleaseClean && activityClean && quickstartClean &&
              conclusive > 0;

    bench::Json summary;
    summary.field("bench", std::string("etap_validate"))
        .field("cases", static_cast<std::uint64_t>(cases))
        .field("conclusive", static_cast<std::uint64_t>(conclusive))
        .field("inconclusive",
               static_cast<std::uint64_t>(inconclusive))
        .field("soundness_violations",
               static_cast<std::uint64_t>(soundnessViolations))
        .field("starvation_false_positives",
               static_cast<std::uint64_t>(starveFp))
        .field("starvation_false_negatives",
               static_cast<std::uint64_t>(starveFn))
        .field("other_failures",
               static_cast<std::uint64_t>(otherFailures))
        .field("windows_measured", windowsTotal)
        .field("median_tightness", medianTightness)
        .field("max_tightness", maxTightness)
        .field("fig9_debug_starves", fig9Starves)
        .field("fib_release_clean", fibReleaseClean)
        .field("activity_clean", activityClean)
        .field("quickstart_clean", quickstartClean)
        .field("ok", ok);
    summary.print();
    return ok ? 0 : 1;
}
