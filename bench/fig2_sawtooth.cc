/**
 * @file
 * Regenerates paper Figure 2B: the characteristic sawtooth
 * charge/discharge cycles that define intermittent operation.
 *
 * A WISP running a compute loop on RF power charges to the 2.4 V
 * turn-on threshold, executes while discharging to the 1.8 V
 * brown-out threshold, and repeats. Prints the voltage series and
 * per-cycle summary statistics.
 */

#include <cstdio>

#include "apps/linked_list.hh"
#include "baseline/oscilloscope.hh"
#include "bench/common.hh"
#include "trace/stats.hh"

using namespace edb;

int
main()
{
    bench::banner("Figure 2B: harvested-power sawtooth "
                  "(charge/discharge cycles)");

    bench::Rig rig(101);
    rig.wisp.flash(apps::buildLinkedListApp());

    baseline::Oscilloscope scope(rig.sim, "scope", 500 * sim::oneUs);
    scope.addChannel("vcap",
                     [&] { return rig.wisp.power().voltageNoAdvance(); });
    scope.addChannel("active", [&] {
        return rig.wisp.state() == mcu::McuState::Running ? 1.0 : 0.0;
    });
    scope.start();
    rig.wisp.start();
    rig.sim.runFor(4 * sim::oneSec);

    // Per-cycle statistics from the power-event trace.
    trace::SampleSet charge_ms;
    trace::SampleSet discharge_ms;
    sim::Tick last_on = -1;
    sim::Tick last_off = -1;
    for (const auto &r :
         rig.board.traceBuffer().ofKind(trace::Kind::PowerEvent)) {
        if (r.id == 1) { // turn-on
            if (last_off >= 0)
                charge_ms.add(sim::millisFromTicks(r.when - last_off));
            last_on = r.when;
        } else { // brown-out
            if (last_on >= 0)
                discharge_ms.add(
                    sim::millisFromTicks(r.when - last_on));
            last_off = r.when;
        }
    }

    bench::note("series (downsampled; full resolution in memory)");
    std::printf("%10s %10s %8s\n", "time_ms", "vcap_V", "active");
    const auto &wave = scope.capture();
    for (std::size_t i = 0; i < wave.size(); i += 40) {
        std::printf("%10.1f %10.3f %8.0f\n",
                    sim::millisFromTicks(wave[i].when),
                    wave[i].values[0], wave[i].values[1]);
    }

    bench::note("cycle summary");
    std::printf("boots: %llu  brown-outs: %llu\n",
                (unsigned long long)rig.wisp.power().bootCount(),
                (unsigned long long)rig.wisp.power().brownOutCount());
    std::printf("charge  time: mean %.1f ms (sd %.1f, n=%zu)\n",
                charge_ms.summary().mean(),
                charge_ms.summary().stddev(), charge_ms.count());
    std::printf("discharge time: mean %.1f ms (sd %.1f, n=%zu)\n",
                discharge_ms.summary().mean(),
                discharge_ms.summary().stddev(), discharge_ms.count());
    std::printf("paper shape: RC charge toward the source "
                "open-circuit voltage,\n"
                "  active discharge 2.4 V -> 1.8 V, tens-of-ms to "
                "hundreds-of-ms cycles.\n");
    return 0;
}
