/**
 * @file
 * Chaos soak for the multi-client debug server (DESIGN.md §13).
 *
 * K well-behaved debugger clients and M adversarial ones (frame
 * corrupters, truncators, a slowloris trickler, a mid-command
 * disconnector, and a raw-wire client that never drains its receive
 * queue) share one DebugServer over a live fleet for `--episodes`
 * epochs. The adversaries exist to prove supervision, not to win:
 * the gates are
 *
 *   - zero stuck sessions after a quiesce (nothing wedged mid-frame
 *     or mid-command with no way to make progress);
 *   - every shed/aborted session left a SessionReport — nothing
 *     disappears silently;
 *   - zero interference violations (each read-only command's
 *     capacitor-voltage delta must be exactly 0.0);
 *   - per-world digests bit-identical to the same fleet run with no
 *     server and no clients at all — the paper's
 *     energy-interference-freedom claim, fleet edition.
 *
 * The client-free reference run executes after the soak so it can
 * match the exact number of epochs the soak consumed (detach
 * handshakes pump extra epochs).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "edb/server.hh"
#include "fleet/fleet.hh"
#include "isa/assembler.hh"
#include "isa/listing.hh"

using namespace edb;

namespace {

fleet::FleetConfig
soakConfig(const bench::Cli &cli, unsigned tags, unsigned threads)
{
    fleet::FleetConfig cfg;
    cfg.tags = tags;
    cfg.threads = threads;
    cfg.seed = static_cast<std::uint64_t>(cli.intOption("seed", 42));
    cfg.epochLength = cli.intOption("epoch-us", 5000) * sim::oneUs;
    cfg.wisp = bench::applyEngineFlags(cli);
    // Start charged with a dev-board cap so the targets execute (and
    // breakpoints can actually fire) from epoch one.
    cfg.wisp.power.initialVolts = 2.6;
    cfg.wisp.power.capacitanceF = 4700e-9;
    cfg.wisp.mcu.checkpointingEnabled = true;
    cfg.rebalancePeriod =
        static_cast<unsigned>(cli.intOption("rebalance", 4));
    return cfg;
}

/** Supervision tightened so idle aborts and deadlines are reachable
 *  inside a short CI soak (5 ms epochs). */
edbdbg::ServerConfig
serverConfig()
{
    edbdbg::ServerConfig cfg;
    cfg.idleTimeout = 50 * sim::oneMs;
    cfg.maxProbes = 3;
    cfg.commandDeadline = 50 * sim::oneMs;
    return cfg;
}

struct GoodClient
{
    std::unique_ptr<edbdbg::RpcClient> rpc;
    std::uint64_t responses = 0;
    std::uint64_t hits = 0;
    std::uint64_t errors = 0;
};

sim::ClientFaultPlan
chaosPlan(std::uint64_t seed)
{
    sim::ClientFaultPlan p;
    p.seed = seed;
    p.enabled = true;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    const unsigned tags = bench::tagsOption(cli, 8);
    const unsigned threads = bench::threadsOption(cli);
    const unsigned episodes =
        static_cast<unsigned>(cli.count("episodes", 200));
    const unsigned good =
        static_cast<unsigned>(cli.intOption("good", 3));

    bench::banner("debug-server chaos soak");
    std::printf("tags=%u threads=%u episodes=%u good=%u\n", tags,
                threads, episodes, good);

    // Symbol table from the shared default firmware.
    fleet::WorldFirmware fw = fleet::Fleet::defaultFirmware();
    isa::Program image = isa::assemble(fw.listing);
    isa::SymbolTable syms = isa::SymbolTable::fromProgram(image);
    std::vector<std::string> symNames;
    for (const auto &[name, value] : syms.symbols()) {
        (void)value;
        symNames.push_back(name);
    }

    const fleet::FleetConfig fleetCfg = soakConfig(cli, tags, threads);
    std::uint64_t epochsRun = 0;
    std::vector<fleet::WorldDigest> withClients;

    std::uint64_t stuck = 0, interference = 0, oversize = 0;
    std::uint64_t sheds = 0, aborts = 0, reportedSheds = 0,
                  reportedAborts = 0, reportCount = 0,
                  activeLeft = 0;
    std::uint64_t framesIn = 0, framesOut = 0, malformed = 0,
                  served = 0, deadlined = 0, backpressured = 0,
                  probes = 0, hitsDelivered = 0, hitsDropped = 0,
                  repliesDropped = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t goodResponses = 0, goodHits = 0, goodErrors = 0;
    bench::Json reportJson;

    {
        fleet::Fleet fleet(fleetCfg);
        edbdbg::DebugServer server(fleet, serverConfig());
        server.setSymbols(syms);

        // Well-behaved clients: attach read-only, set a conditional
        // virtual breakpoint on a firmware symbol, then poke at the
        // target every few episodes.
        std::vector<GoodClient> goods(good);
        const char *conds[] = {"", "vcap>1.8", "r2>=0&&instrs>100"};
        for (unsigned g = 0; g < good; ++g) {
            goods[g].rpc = std::make_unique<edbdbg::RpcClient>(
                server, "good" + std::to_string(g));
            goods[g].rpc->request("\"m\":\"attach\",\"world\":" +
                                  std::to_string(g % tags));
            if (!symNames.empty()) {
                const std::string &sym =
                    symNames[g % symNames.size()];
                goods[g].rpc->request(
                    "\"m\":\"setbreak\",\"sym\":\"" + sym +
                    "\",\"cond\":\"" +
                    conds[g % (sizeof(conds) / sizeof(conds[0]))] +
                    "\"");
            }
        }

        // Adversaries. Each gets a distinct damage profile; the
        // slowloris client trickles 2 bytes per poll (below the
        // server's inter-byte resync timeout per epoch), and the
        // flake disconnects mid-command after a few frames.
        sim::ClientFaultPlan corrupt = chaosPlan(101);
        corrupt.corruptProb = 0.5;
        corrupt.garbageProb = 0.3;
        corrupt.dupProb = 0.3;
        corrupt.replayProb = 0.2;
        sim::ClientFaultPlan trunc = chaosPlan(202);
        trunc.truncateProb = 0.6;
        trunc.dropProb = 0.3;
        sim::ClientFaultPlan slow = chaosPlan(303);
        slow.slowlorisBytesPerPoll = 2;
        sim::ClientFaultPlan flake = chaosPlan(404);
        flake.disconnectAfterFrames = 5;

        std::vector<std::unique_ptr<edbdbg::RpcClient>> bads;
        bads.push_back(std::make_unique<edbdbg::RpcClient>(
            server, "corrupter", corrupt));
        bads.push_back(std::make_unique<edbdbg::RpcClient>(
            server, "truncator", trunc));
        bads.push_back(std::make_unique<edbdbg::RpcClient>(
            server, "slowloris", slow));
        bads.push_back(std::make_unique<edbdbg::RpcClient>(
            server, "flake", flake));
        for (auto &b : bads)
            b->request("\"m\":\"attach\",\"world\":0");

        // Raw-wire adversary: sends pings but never drains its
        // receive queue, forcing delivery retries + backpressure
        // shedding.
        edbdbg::ClientWire *greedy = server.connect("greedy");
        auto sendRaw = [&](const std::string &json) {
            if (greedy && greedy->connected())
                greedy->toServer(edbdbg::buildFrame(
                    std::vector<std::uint8_t>(json.begin(),
                                              json.end())));
        };
        sendRaw("{\"id\":1,\"m\":\"attach\",\"world\":1}");

        const char *cmds[] = {
            "\"m\":\"ping\"",
            "\"m\":\"regs\"",
            "\"m\":\"vcap\"",
            "\"m\":\"info\"",
            "\"m\":\"read\",\"addr\":\"0x4000\",\"len\":16",
            "\"m\":\"symbols\"",
            "\"m\":\"lookup\",\"addr\":\"0x4000\"",
        };
        const std::size_t ncmds = sizeof(cmds) / sizeof(cmds[0]);

        for (unsigned e = 0; e < episodes; ++e) {
            for (unsigned g = 0; g < good; ++g) {
                if (e % 5 == g % 5)
                    goods[g].rpc->request(cmds[(e / 5 + g) % ncmds]);
                goods[g].rpc->pump();
                for (auto &r : goods[g].rpc->takeResponses()) {
                    ++goods[g].responses;
                    if (!r.get("ok") ||
                        !r.get("ok")->boolean(false))
                        ++goods[g].errors;
                }
                for (auto &ev : goods[g].rpc->takeEvents()) {
                    if (ev.getStr("ev").value_or("") == "hit")
                        ++goods[g].hits;
                }
            }
            for (std::size_t b = 0; b < bads.size(); ++b) {
                if (e % 2 == b % 2)
                    bads[b]->request(cmds[(e + b) % ncmds]);
                bads[b]->pump();
                bads[b]->takeResponses();
                bads[b]->takeEvents();
            }
            if (e % 2 == 0) {
                for (int k = 0; k < 4; ++k)
                    sendRaw("{\"id\":" + std::to_string(10 + e) +
                            ",\"m\":\"ping\"}");
            }
            server.runEpoch();
        }

        // Wind-down: adversaries vanish (their half-frames must not
        // wedge anything), good clients detach cleanly.
        for (auto &b : bads) {
            faultsInjected += b->faults().stats().corrupted +
                              b->faults().stats().truncated +
                              b->faults().stats().duplicated +
                              b->faults().stats().replayed +
                              b->faults().stats().dropped +
                              b->faults().stats().garbageBytes +
                              b->faults().stats().disconnects;
            b->disconnect();
        }
        if (greedy)
            greedy->disconnect();
        server.runEpochs(2);
        for (unsigned g = 0; g < good; ++g) {
            std::uint64_t id =
                goods[g].rpc->request("\"m\":\"detach\"");
            if (auto r = goods[g].rpc->await(id, 20)) {
                ++goods[g].responses;
                if (!r->get("ok") || !r->get("ok")->boolean(false))
                    ++goods[g].errors;
            }
        }
        server.poll();

        for (const GoodClient &g : goods) {
            goodResponses += g.responses;
            goodHits += g.hits;
            goodErrors += g.errors;
        }

        const edbdbg::DebugServer::Stats &st = server.stats();
        stuck = server.stuckSessions();
        activeLeft = server.activeSessions();
        interference = st.interferenceViolations;
        oversize = st.oversizeReplies;
        sheds = st.sessionsShed;
        aborts = st.sessionsAborted;
        framesIn = st.framesIn;
        framesOut = st.framesOut;
        malformed = st.malformedJson;
        served = st.commandsServed;
        deadlined = st.commandsDeadlined;
        backpressured = st.commandsBackpressured;
        probes = st.probesSent;
        hitsDelivered = st.hitsDelivered;
        hitsDropped = st.hitsDropped;
        repliesDropped = st.repliesDropped;
        reportCount = server.reports().size();
        for (const edbdbg::SessionReport &r : server.reports()) {
            if (r.outcome == edbdbg::SessionOutcome::Shed)
                ++reportedSheds;
            if (r.outcome == edbdbg::SessionOutcome::Aborted)
                ++reportedAborts;
            std::printf("session %u (%s): %s/%s world=%zu "
                        "served=%llu degraded=%d\n",
                        r.sessionId, r.client.c_str(),
                        edbdbg::sessionOutcomeName(r.outcome),
                        r.reason.c_str(), r.world,
                        static_cast<unsigned long long>(
                            r.commandsServed),
                        r.degraded ? 1 : 0);
        }

        epochsRun = fleet.epochsRun();
        withClients = fleet.digests();
    }

    // Client-free reference: the same fleet, same seed, same epoch
    // count, with no server constructed at all. Any digest delta is
    // energy interference by definition.
    bench::note("client-free reference run (" +
                std::to_string(epochsRun) + " epochs)");
    std::uint64_t digestMismatches = 0;
    {
        fleet::Fleet reference(fleetCfg);
        reference.runEpochs(static_cast<unsigned>(epochsRun));
        std::vector<fleet::WorldDigest> bare = reference.digests();
        for (std::size_t w = 0;
             w < bare.size() && w < withClients.size(); ++w) {
            if (!(bare[w] == withClients[w])) {
                ++digestMismatches;
                if (digestMismatches <= 4)
                    std::printf("DIGEST MISMATCH world %zu: "
                                "with-clients crc %08x vs bare "
                                "%08x\n",
                                w, withClients[w].crc, bare[w].crc);
            }
        }
    }

    const bool reportsOk =
        reportedSheds == sheds && reportedAborts == aborts;
    const bool chaosLive = faultsInjected > 0 && malformed + framesIn > 0;
    const bool ok = stuck == 0 && digestMismatches == 0 &&
                    interference == 0 && oversize == 0 && reportsOk &&
                    chaosLive && goodResponses > 0;

    bench::Json summary;
    bench::runConfigFields(summary, cli, 8);
    summary.field("episodes", static_cast<std::uint64_t>(episodes))
        .field("epochs_run", epochsRun)
        .field("good_clients", static_cast<std::uint64_t>(good))
        .field("frames_in", framesIn)
        .field("frames_out", framesOut)
        .field("malformed_json", malformed)
        .field("commands_served", served)
        .field("commands_deadlined", deadlined)
        .field("commands_backpressured", backpressured)
        .field("probes_sent", probes)
        .field("hits_delivered", hitsDelivered)
        .field("hits_dropped", hitsDropped)
        .field("replies_dropped", repliesDropped)
        .field("good_responses", goodResponses)
        .field("good_hits", goodHits)
        .field("good_errors", goodErrors)
        .field("faults_injected", faultsInjected)
        .field("sessions_shed", sheds)
        .field("sessions_aborted", aborts)
        .field("reports", reportCount)
        .field("reported_sheds", reportedSheds)
        .field("reported_aborts", reportedAborts)
        .field("active_left", activeLeft)
        .field("stuck_sessions", stuck)
        .field("interference_violations", interference)
        .field("oversize_replies", oversize)
        .field("digest_mismatches", digestMismatches)
        .field("ok", ok);
    summary.print();
    std::printf("\nDEBUG-SERVER SOAK %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
