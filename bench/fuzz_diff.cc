/**
 * @file
 * Coverage-guided differential fuzzer for the intermittent simulator.
 *
 * Each case is a constrained random EH32 program plus a forced
 * brown-out schedule (src/fuzz/generator.hh), checked against the
 * six oracles in src/fuzz/oracle.hh: fast-vs-reference bit-identity,
 * snapshot resume-equivalence, from-scratch replay determinism,
 * NV-auditor soundness/completeness, superblock-vs-reference
 * bit-identity, and crash-anywhere checkpoint-commit consistency
 * (torn NV writes must never yield a hybrid restore).
 * Coverage feedback (opcodes,
 * opcode x address-class pairs, MMIO registers, power-state edges,
 * reboot-interrupted code buckets) keeps cases that exercised new
 * behaviour in a mutation pool; failures are minimized with the
 * shrinker and written as replayable artifacts.
 *
 * Everything is deterministic for a fixed --seed: all randomness
 * flows through sim::Rng streams derived from it, and the simulator
 * itself never reads a wall clock.
 *
 * Usage:
 *   fuzz_diff [--cases N] [--seed S] [--artifacts DIR]
 *   fuzz_diff --emit-corpus DIR [--corpus-count N] [--seed S]
 *
 * Exit status is nonzero when any oracle failed (the artifacts are
 * in DIR, default ./fuzz-artifacts) or when corpus emission could
 * not produce the requested cases.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "fuzz/corpus.hh"
#include "fuzz/coverage.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"
#include "sim/rng.hh"

using namespace edb;

namespace {

constexpr std::size_t poolCap = 64;

struct Failure
{
    fuzz::OracleId oracle;
    std::string detail;
    std::string path;
    std::size_t beforeInstrs = 0;
    std::size_t afterInstrs = 0;
    unsigned shrinkRuns = 0;
};

/** Re-run one oracle on a candidate spec (the shrink predicate). */
bool
oracleStillFails(fuzz::OracleId id, const fuzz::CaseSpec &spec)
{
    fuzz::OracleCase c = fuzz::makeOracleCase(spec);
    return fuzz::runOracle(id, c).failed;
}

int
runFuzz(const bench::Cli &cli)
{
    const int cases = static_cast<int>(cli.count("cases", 300));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.intOption("seed", 1));
    const std::string artifactDir =
        cli.strOption("artifacts", "fuzz-artifacts");

    bench::banner(
        "Differential fuzz: " + std::to_string(cases) +
        " cases, seed " + std::to_string(seed) +
        ", oracles fastref/snapshot/replay/audit/superblock/"
        "crashanywhere, coverage-guided");

    sim::Rng master(seed * 0x9E3779B97F4A7C15ULL + 1);
    fuzz::Coverage global;
    std::vector<fuzz::CaseSpec> pool;
    std::vector<Failure> failures;
    std::uint64_t oracleRuns = 0;
    std::uint64_t inconclusive = 0;
    std::uint64_t mutated = 0;
    std::uint64_t keptForCoverage = 0;
    std::uint64_t perOracleFailures[fuzz::numOracles] = {};

    for (int i = 0; i < cases; ++i) {
        std::uint64_t caseSeed = static_cast<std::uint64_t>(
            master.uniformInt(1, 1LL << 62));
        fuzz::CaseSpec spec;
        if (!pool.empty() && master.chance(0.5)) {
            const fuzz::CaseSpec &base =
                pool[static_cast<std::size_t>(master.uniformInt(
                    0, static_cast<std::int64_t>(pool.size() - 1)))];
            spec = fuzz::mutateCase(base, caseSeed);
            ++mutated;
        } else {
            spec = fuzz::generateCase(caseSeed);
        }
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);

        fuzz::Coverage caseCov;
        for (unsigned o = 0; o < fuzz::numOracles; ++o) {
            auto id = static_cast<fuzz::OracleId>(o);
            fuzz::OracleOutcome out =
                fuzz::runOracle(id, c, &caseCov);
            ++oracleRuns;
            if (out.inconclusive)
                ++inconclusive;
            if (!out.failed)
                continue;
            ++perOracleFailures[o];
            std::printf("case %d FAIL [%s]: %s\n", i,
                        fuzz::oracleName(id), out.detail.c_str());

            Failure f;
            f.oracle = id;
            f.detail = out.detail;
            fuzz::ShrinkResult shrunk = fuzz::shrinkCase(
                spec,
                [id](const fuzz::CaseSpec &s) {
                    return oracleStillFails(id, s);
                });
            f.beforeInstrs = shrunk.beforeInstrs;
            f.afterInstrs = shrunk.afterInstrs;
            f.shrinkRuns = shrunk.runs;

            std::filesystem::create_directories(artifactDir);
            fuzz::Artifact artifact;
            artifact.oracle = id;
            artifact.oracleCase =
                fuzz::makeOracleCase(shrunk.spec);
            artifact.note = "case " + std::to_string(i) + " seed " +
                            std::to_string(seed) + " shrunk " +
                            std::to_string(shrunk.beforeInstrs) +
                            "->" +
                            std::to_string(shrunk.afterInstrs) +
                            " instrs";
            f.path = artifactDir + "/case-" + std::to_string(i) +
                     "-" + fuzz::oracleName(id) + ".case";
            fuzz::saveArtifact(artifact, f.path);
            std::printf("  minimized %zu -> %zu instrs (%u shrink "
                        "runs), artifact: %s\n",
                        f.beforeInstrs, f.afterInstrs, f.shrinkRuns,
                        f.path.c_str());
            failures.push_back(std::move(f));
        }

        if (global.merge(caseCov) > 0 && pool.size() < poolCap) {
            pool.push_back(spec);
            ++keptForCoverage;
        }
        if ((i + 1) % 50 == 0)
            std::printf("... %d/%d cases, %zu coverage keys, %zu "
                        "failures\n",
                        i + 1, cases, global.distinct(),
                        failures.size());
    }

    bench::Json coverage;
    coverage.field("total", global.distinct())
        .field("opcodes",
               global.distinctOfKind(fuzz::Coverage::kindExec))
        .field("mem_pairs",
               global.distinctOfKind(fuzz::Coverage::kindMem))
        .field("mmio_regs",
               global.distinctOfKind(fuzz::Coverage::kindMmio))
        .field("edges",
               global.distinctOfKind(fuzz::Coverage::kindEdge))
        .field("reboot_pcs",
               global.distinctOfKind(fuzz::Coverage::kindRebootPc));
    bench::Json perOracle;
    for (unsigned o = 0; o < fuzz::numOracles; ++o)
        perOracle.field(
            fuzz::oracleName(static_cast<fuzz::OracleId>(o)),
            perOracleFailures[o]);
    bench::Json shrunkSizes;
    for (std::size_t i = 0; i < failures.size(); ++i)
        shrunkSizes.field(std::to_string(i),
                          failures[i].afterInstrs);
    bench::Json summary;
    bench::runConfigFields(summary, cli);
    summary.field("cases", cases)
        .field("seed", static_cast<std::uint64_t>(seed))
        .field("oracle_runs", oracleRuns)
        .field("mutated", mutated)
        .field("pool", keptForCoverage)
        .field("inconclusive", inconclusive)
        .object("coverage", coverage)
        .field("failures",
               static_cast<std::uint64_t>(failures.size()))
        .object("failures_by_oracle", perOracle)
        .object("shrunk_instrs", shrunkSizes);
    summary.print();

    if (failures.empty()) {
        std::printf("\nFUZZ PASS\n");
        return 0;
    }
    std::printf("\nFUZZ FAIL (%zu oracle failures, artifacts in "
                "%s)\n",
                failures.size(), artifactDir.c_str());
    return 1;
}

/**
 * Seed-corpus emission: small cases that pass their oracle, one
 * oracle per case round-robin, written as replayable artifacts.
 * Audit artifacts are required to be conclusive (a power loss after
 * the gadget) so the completeness half really replays; crash-anywhere
 * artifacts likewise (a tear must actually land inside a commit), so
 * those specs force checkpointing on and append checkpoint elements
 * to guarantee commit bursts for the tear to hit.
 */
int
emitCorpus(const bench::Cli &cli)
{
    const std::string dir = cli.strOption("emit-corpus");
    const int want =
        static_cast<int>(cli.intOption("corpus-count", 24));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.intOption("seed", 3));

    fuzz::GeneratorOptions small;
    small.minElements = 2;
    small.maxElements = 6;

    std::filesystem::create_directories(dir);
    int emitted = 0;
    std::uint64_t caseSeed = seed * 1000;
    int attempts = 0;
    while (emitted < want && attempts < want * 40) {
        ++attempts;
        ++caseSeed;
        auto id = static_cast<fuzz::OracleId>(
            emitted % fuzz::numOracles);
        fuzz::CaseSpec spec = fuzz::generateCase(caseSeed, small);
        if (id == fuzz::OracleId::CrashAnywhere) {
            spec.checkpointing = true;
            fuzz::Element ck;
            ck.kind = fuzz::Element::Kind::Chkpt;
            spec.elements.push_back(ck);
            spec.elements.push_back(ck);
        }
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);
        fuzz::OracleOutcome out = fuzz::runOracle(id, c);
        if (out.failed)
            continue;
        if ((id == fuzz::OracleId::Audit ||
             id == fuzz::OracleId::CrashAnywhere) &&
            out.inconclusive)
            continue;

        char name[64];
        std::snprintf(name, sizeof name, "seed-%02d-%s.case",
                      emitted, fuzz::oracleName(id));
        fuzz::Artifact artifact;
        artifact.oracle = id;
        artifact.oracleCase = c;
        artifact.note = "seed corpus, generator seed " +
                        std::to_string(caseSeed);
        std::string path = dir + "/" + name;
        if (!fuzz::saveArtifact(artifact, path)) {
            std::printf("cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("emitted %s (%zu instrs)\n", path.c_str(),
                    fuzz::instructionCountOf(c.program));
        ++emitted;
    }
    if (emitted < want) {
        std::printf("only emitted %d/%d corpus cases\n", emitted,
                    want);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    if (cli.has("emit-corpus"))
        return emitCorpus(cli);
    return runFuzz(cli);
}
