/**
 * @file
 * Coverage-guided differential fuzzer for the intermittent simulator.
 *
 * Each case is a constrained random EH32 program plus a forced
 * brown-out schedule (src/fuzz/generator.hh), checked against the
 * seven oracles in src/fuzz/oracle.hh: fast-vs-reference
 * bit-identity, snapshot resume-equivalence, from-scratch replay
 * determinism, NV-auditor soundness/completeness,
 * superblock-vs-reference bit-identity, crash-anywhere
 * checkpoint-commit consistency (torn NV writes must never yield a
 * hybrid restore), and etap static-analyzer soundness (the
 * worst-case per-boot energy bound vs. measured drain, and the
 * starvation verdict vs. observed progress).
 * Coverage feedback (opcodes,
 * opcode x address-class pairs, MMIO registers, power-state edges,
 * reboot-interrupted code buckets) keeps cases that exercised new
 * behaviour in a mutation pool; failures are minimized with the
 * shrinker and written as replayable artifacts.
 *
 * Everything is deterministic for a fixed --seed: all randomness
 * flows through sim::Rng streams derived from it, and the simulator
 * itself never reads a wall clock.
 *
 * Usage:
 *   fuzz_diff [--cases N] [--seed S] [--artifacts DIR]
 *   fuzz_diff --emit-corpus DIR [--corpus-count N] [--seed S]
 *
 * Exit status is nonzero when any oracle failed (the artifacts are
 * in DIR, default ./fuzz-artifacts) or when corpus emission could
 * not produce the requested cases.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "mcu/mmio_map.hh"
#include "fuzz/corpus.hh"
#include "fuzz/coverage.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"
#include "sim/rng.hh"

using namespace edb;

namespace {

constexpr std::size_t poolCap = 64;

struct Failure
{
    fuzz::OracleId oracle;
    std::string detail;
    std::string path;
    std::size_t beforeInstrs = 0;
    std::size_t afterInstrs = 0;
    unsigned shrinkRuns = 0;
};

/** Re-run one oracle on a candidate spec (the shrink predicate). */
bool
oracleStillFails(fuzz::OracleId id, const fuzz::CaseSpec &spec)
{
    fuzz::OracleCase c = fuzz::makeOracleCase(spec);
    return fuzz::runOracle(id, c).failed;
}

int
runFuzz(const bench::Cli &cli)
{
    const int cases = static_cast<int>(cli.count("cases", 300));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.intOption("seed", 1));
    const std::string artifactDir =
        cli.strOption("artifacts", "fuzz-artifacts");

    bench::banner(
        "Differential fuzz: " + std::to_string(cases) +
        " cases, seed " + std::to_string(seed) +
        ", oracles fastref/snapshot/replay/audit/superblock/"
        "crashanywhere, coverage-guided");

    sim::Rng master(seed * 0x9E3779B97F4A7C15ULL + 1);
    fuzz::Coverage global;
    std::vector<fuzz::CaseSpec> pool;
    std::vector<Failure> failures;
    std::uint64_t oracleRuns = 0;
    std::uint64_t inconclusive = 0;
    std::uint64_t mutated = 0;
    std::uint64_t keptForCoverage = 0;
    std::uint64_t perOracleFailures[fuzz::numOracles] = {};

    for (int i = 0; i < cases; ++i) {
        std::uint64_t caseSeed = static_cast<std::uint64_t>(
            master.uniformInt(1, 1LL << 62));
        fuzz::CaseSpec spec;
        if (!pool.empty() && master.chance(0.5)) {
            const fuzz::CaseSpec &base =
                pool[static_cast<std::size_t>(master.uniformInt(
                    0, static_cast<std::int64_t>(pool.size() - 1)))];
            spec = fuzz::mutateCase(base, caseSeed);
            ++mutated;
        } else {
            spec = fuzz::generateCase(caseSeed);
        }
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);

        fuzz::Coverage caseCov;
        for (unsigned o = 0; o < fuzz::numOracles; ++o) {
            auto id = static_cast<fuzz::OracleId>(o);
            fuzz::OracleOutcome out =
                fuzz::runOracle(id, c, &caseCov);
            ++oracleRuns;
            if (out.inconclusive)
                ++inconclusive;
            if (!out.failed)
                continue;
            ++perOracleFailures[o];
            std::printf("case %d FAIL [%s]: %s\n", i,
                        fuzz::oracleName(id), out.detail.c_str());

            Failure f;
            f.oracle = id;
            f.detail = out.detail;
            fuzz::ShrinkResult shrunk = fuzz::shrinkCase(
                spec,
                [id](const fuzz::CaseSpec &s) {
                    return oracleStillFails(id, s);
                });
            f.beforeInstrs = shrunk.beforeInstrs;
            f.afterInstrs = shrunk.afterInstrs;
            f.shrinkRuns = shrunk.runs;

            std::filesystem::create_directories(artifactDir);
            fuzz::Artifact artifact;
            artifact.oracle = id;
            artifact.oracleCase =
                fuzz::makeOracleCase(shrunk.spec);
            artifact.note = "case " + std::to_string(i) + " seed " +
                            std::to_string(seed) + " shrunk " +
                            std::to_string(shrunk.beforeInstrs) +
                            "->" +
                            std::to_string(shrunk.afterInstrs) +
                            " instrs";
            f.path = artifactDir + "/case-" + std::to_string(i) +
                     "-" + fuzz::oracleName(id) + ".case";
            fuzz::saveArtifact(artifact, f.path);
            std::printf("  minimized %zu -> %zu instrs (%u shrink "
                        "runs), artifact: %s\n",
                        f.beforeInstrs, f.afterInstrs, f.shrinkRuns,
                        f.path.c_str());
            failures.push_back(std::move(f));
        }

        if (global.merge(caseCov) > 0 && pool.size() < poolCap) {
            pool.push_back(spec);
            ++keptForCoverage;
        }
        if ((i + 1) % 50 == 0)
            std::printf("... %d/%d cases, %zu coverage keys, %zu "
                        "failures\n",
                        i + 1, cases, global.distinct(),
                        failures.size());
    }

    bench::Json coverage;
    coverage.field("total", global.distinct())
        .field("opcodes",
               global.distinctOfKind(fuzz::Coverage::kindExec))
        .field("mem_pairs",
               global.distinctOfKind(fuzz::Coverage::kindMem))
        .field("mmio_regs",
               global.distinctOfKind(fuzz::Coverage::kindMmio))
        .field("edges",
               global.distinctOfKind(fuzz::Coverage::kindEdge))
        .field("reboot_pcs",
               global.distinctOfKind(fuzz::Coverage::kindRebootPc));
    bench::Json perOracle;
    for (unsigned o = 0; o < fuzz::numOracles; ++o)
        perOracle.field(
            fuzz::oracleName(static_cast<fuzz::OracleId>(o)),
            perOracleFailures[o]);
    bench::Json shrunkSizes;
    for (std::size_t i = 0; i < failures.size(); ++i)
        shrunkSizes.field(std::to_string(i),
                          failures[i].afterInstrs);
    bench::Json summary;
    bench::runConfigFields(summary, cli);
    summary.field("cases", cases)
        .field("seed", static_cast<std::uint64_t>(seed))
        .field("oracle_runs", oracleRuns)
        .field("mutated", mutated)
        .field("pool", keptForCoverage)
        .field("inconclusive", inconclusive)
        .object("coverage", coverage)
        .field("failures",
               static_cast<std::uint64_t>(failures.size()))
        .object("failures_by_oracle", perOracle)
        .object("shrunk_instrs", shrunkSizes);
    summary.print();

    if (failures.empty()) {
        std::printf("\nFUZZ PASS\n");
        return 0;
    }
    std::printf("\nFUZZ FAIL (%zu oracle failures, artifacts in "
                "%s)\n",
                failures.size(), artifactDir.c_str());
    return 1;
}

/**
 * Hand-written analyzer-targeted etap cases: program shapes the
 * random generator rarely produces but the static analyzer must
 * price correctly — a tight ALU loop, an NV-write-heavy loop, a
 * checkpointed persist-window loop, and one *true* starvation case
 * (the LED load exceeds any harvestable inflow, so the bounded main
 * region can never be paid for in one boot). Each case is
 * seed-searched until its oracle run is a conclusive pass — and, for
 * the starvation case, until the analyzer's verdict really is
 * "starves" while the simulated world shows stalled boots — so the
 * artifact replays deterministically in test_fuzz_corpus.
 */
struct EtapHandmade
{
    const char *name;
    const char *note;
    const char *body; ///< Listing after the "main:" label.
    bool checkpointing;
    bool wantStarve;
};

constexpr EtapHandmade etapHandmade[] = {
    {"etap-tightloop", "handcrafted: tight ALU loop, exact trip count",
     "    li r1, 7\n"
     "    li r2, 3\n"
     "    li r10, 16\n"
     "loop_0:\n"
     "    addi r1, r1, 5\n"
     "    addi r2, r2, -1\n"
     "    addi r10, r10, -1\n"
     "    cmpi r10, 0\n"
     "    bne loop_0\n"
     "    la r8, SSCRATCH\n"
     "    stw r1, [r8 + 4]\n"
     "    halt\n",
     false, false},
    {"etap-nvwrites", "handcrafted: NV-write-heavy FRAM loop",
     "    li r10, 12\n"
     "loop_0:\n"
     "    la r6, FSCRATCH\n"
     "    ldw r2, [r6 + 16]\n"
     "    addi r2, r2, 1\n"
     "    stw r2, [r6 + 16]\n"
     "    stw r2, [r6 + 20]\n"
     "    stw r2, [r6 + 24]\n"
     "    stw r2, [r6 + 28]\n"
     "    addi r10, r10, -1\n"
     "    cmpi r10, 0\n"
     "    bne loop_0\n"
     "    halt\n",
     false, false},
    {"etap-chkpt", "handcrafted: checkpointed persist windows",
     "    li r10, 8\n"
     "loop_0:\n"
     "    la r6, FSCRATCH\n"
     "    ldw r2, [r6 + 32]\n"
     "    addi r2, r2, 1\n"
     "    stw r2, [r6 + 32]\n"
     "    chkpt\n"
     "    addi r10, r10, -1\n"
     "    cmpi r10, 0\n"
     "    bne loop_0\n"
     "    halt\n",
     true, false},
    {"etap-starve", "handcrafted: LED load exceeds harvest, starves",
     "    la r9, MMIO\n"
     "    li r1, 1\n"
     "    stw r1, [r9 + 128]\n"
     "    li r10, 30000\n"
     "loop_0:\n"
     "    addi r10, r10, -1\n"
     "    cmpi r10, 0\n"
     "    bne loop_0\n"
     "    li r2, 0\n"
     "    stw r2, [r9 + 128]\n"
     "    halt\n",
     false, true},
};

std::string
etapProgram(const char *body)
{
    std::string s;
    s += "; handcrafted etap analyzer case\n";
    s += ".entry main\n";
    s += ".equ FSCRATCH, " +
         std::to_string(fuzz::gen_layout::framScratchBase) + "\n";
    s += ".equ SSCRATCH, " +
         std::to_string(fuzz::gen_layout::sramScratchBase) + "\n";
    s += ".equ MMIO, " + std::to_string(mcu::mmio::base) + "\n";
    s += "main:\n";
    s += body;
    return s;
}

/** "stallBoots=N" parsed out of an etap outcome detail string. */
unsigned
stallBootsOf(const std::string &detail)
{
    auto at = detail.find("stallBoots=");
    if (at == std::string::npos)
        return 0;
    return static_cast<unsigned>(
        std::atoi(detail.c_str() + at + sizeof "stallBoots=" - 1));
}

int
emitEtapHandmade(const std::string &dir, int index)
{
    for (const EtapHandmade &h : etapHandmade) {
        bool saved = false;
        for (std::uint64_t seed = 5000; seed < 5600 && !saved;
             ++seed) {
            fuzz::OracleCase c;
            c.program = etapProgram(h.body);
            c.seed = seed;
            c.checkpointing = h.checkpointing;
            // Below the turn-on threshold, so the first boot is a
            // natural upward crossing (no forced schedule needed).
            c.initialVolts = 2.0;
            fuzz::OracleOutcome out =
                fuzz::runOracle(fuzz::OracleId::Etap, c);
            if (out.failed || out.inconclusive)
                continue;
            bool starves = out.detail.find("verdict=starves") !=
                           std::string::npos;
            if (starves != h.wantStarve)
                continue;
            if (h.wantStarve && stallBootsOf(out.detail) < 2)
                continue; // want the stall visible in ground truth

            char name[64];
            std::snprintf(name, sizeof name, "seed-%02d-%s.case",
                          index, h.name);
            fuzz::Artifact artifact;
            artifact.oracle = fuzz::OracleId::Etap;
            artifact.oracleCase = c;
            artifact.note = std::string(h.note) + ", world seed " +
                            std::to_string(seed);
            std::string path = dir + "/" + name;
            if (!fuzz::saveArtifact(artifact, path)) {
                std::printf("cannot write %s\n", path.c_str());
                return -1;
            }
            std::printf("emitted %s (%s)\n", path.c_str(),
                        out.detail.c_str());
            ++index;
            saved = true;
        }
        if (!saved) {
            std::printf("no world seed makes %s a conclusive %s\n",
                        h.name,
                        h.wantStarve ? "starvation case" : "pass");
            return -1;
        }
    }
    return index;
}

/**
 * Seed-corpus emission: small cases that pass their oracle, one
 * oracle per case round-robin, written as replayable artifacts.
 * Audit artifacts are required to be conclusive (a power loss after
 * the gadget) so the completeness half really replays; crash-anywhere
 * artifacts likewise (a tear must actually land inside a commit), so
 * those specs force checkpointing on and append checkpoint elements
 * to guarantee commit bursts for the tear to hit.
 */
int
emitCorpus(const bench::Cli &cli)
{
    const std::string dir = cli.strOption("emit-corpus");
    const int want =
        static_cast<int>(cli.intOption("corpus-count", 24));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.intOption("seed", 3));

    fuzz::GeneratorOptions small;
    small.minElements = 2;
    small.maxElements = 6;

    std::filesystem::create_directories(dir);
    int emitted = 0;
    std::uint64_t caseSeed = seed * 1000;
    int attempts = 0;
    while (emitted < want && attempts < want * 40) {
        ++attempts;
        ++caseSeed;
        auto id = static_cast<fuzz::OracleId>(
            emitted % fuzz::numOracles);
        fuzz::CaseSpec spec = fuzz::generateCase(caseSeed, small);
        if (id == fuzz::OracleId::CrashAnywhere) {
            spec.checkpointing = true;
            fuzz::Element ck;
            ck.kind = fuzz::Element::Kind::Chkpt;
            spec.elements.push_back(ck);
            spec.elements.push_back(ck);
        }
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);
        fuzz::OracleOutcome out = fuzz::runOracle(id, c);
        if (out.failed)
            continue;
        if ((id == fuzz::OracleId::Audit ||
             id == fuzz::OracleId::CrashAnywhere ||
             id == fuzz::OracleId::Etap) &&
            out.inconclusive)
            continue;

        char name[64];
        std::snprintf(name, sizeof name, "seed-%02d-%s.case",
                      emitted, fuzz::oracleName(id));
        fuzz::Artifact artifact;
        artifact.oracle = id;
        artifact.oracleCase = c;
        artifact.note = "seed corpus, generator seed " +
                        std::to_string(caseSeed);
        std::string path = dir + "/" + name;
        if (!fuzz::saveArtifact(artifact, path)) {
            std::printf("cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("emitted %s (%zu instrs)\n", path.c_str(),
                    fuzz::instructionCountOf(c.program));
        ++emitted;
    }
    if (emitted < want) {
        std::printf("only emitted %d/%d corpus cases\n", emitted,
                    want);
        return 1;
    }
    if (emitEtapHandmade(dir, emitted) < 0)
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    if (cli.has("emit-corpus"))
        return emitCorpus(cli);
    return runFuzz(cli);
}
