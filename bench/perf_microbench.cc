/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself:
 * interpreter throughput, analog integration cost, event-queue
 * overhead and assembler speed. These characterize the substrate,
 * not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "apps/linked_list.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** Instruction throughput of the MCU interpreter on bench power. */
void
BM_InterpreterThroughput(benchmark::State &state)
{
    sim::Simulator simulator(1);
    energy::TheveninHarvester supply(3.0, 200.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    simulator.runFor(10 * sim::oneMs); // boot
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        std::uint64_t before = wisp.mcu().instrCount();
        simulator.runFor(10 * sim::oneMs);
        instrs += wisp.mcu().instrCount() - before;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

/** Full intermittent-system simulation (analog + MCU + reboots). */
void
BM_IntermittentSimulation(benchmark::State &state)
{
    sim::Simulator simulator(2);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    for (auto _ : state)
        simulator.runFor(10 * sim::oneMs);
    state.counters["sim_ms/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 10.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IntermittentSimulation)->Unit(benchmark::kMillisecond);

/** Event queue schedule/run cost. */
void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue queue;
    sim::Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            queue.schedule(now + 1 + i, [&fired] { ++fired; });
        while (queue.runOne(now)) {
        }
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueue);

/** Assembler speed on the largest guest program. */
void
BM_AssembleLinkedList(benchmark::State &state)
{
    std::string source = apps::linkedListSource();
    for (auto _ : state) {
        auto program = isa::assemble(source);
        benchmark::DoNotOptimize(program.totalBytes());
    }
}
BENCHMARK(BM_AssembleLinkedList)->Unit(benchmark::kMicrosecond);

/** Analog power-system integration step cost. */
void
BM_PowerIntegration(benchmark::State &state)
{
    sim::Simulator simulator(3);
    energy::RfHarvester rf(30.0, 1.0);
    energy::PowerSystem power(simulator, "power", {}, &rf);
    power.addLoad("load", 0.5e-3, true);
    sim::Tick t = 0;
    for (auto _ : state) {
        t += 100 * sim::oneUs;
        power.advanceTo(t);
    }
    benchmark::DoNotOptimize(power.voltageNoAdvance());
}
BENCHMARK(BM_PowerIntegration);

} // namespace

BENCHMARK_MAIN();
