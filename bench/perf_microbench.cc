/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself:
 * interpreter throughput, analog integration cost, event-queue
 * overhead and assembler speed. These characterize the substrate,
 * not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "apps/linked_list.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** Execution-engine tiers compared by the throughput matrix. */
enum class Engine
{
    Reference,  ///< Every fast-path flag off (the PR 3 baseline).
    FastPath,   ///< PR 3 fast path, superblock tier off.
    Superblock, ///< Full default configuration.
};

target::WispConfig
engineConfig(Engine engine, bool noise_free)
{
    target::WispConfig config;
    switch (engine) {
      case Engine::Reference:
        config.mcu.predecodeCache = false;
        config.mcu.flatDispatch = false;
        config.mcu.batchedDrain = false;
        config.mcu.batchedSlices = false;
        config.mcu.superblocks = false;
        config.power.fastIntegration = false;
        break;
      case Engine::FastPath:
        config.mcu.superblocks = false;
        break;
      case Engine::Superblock:
        break;
    }
    // The noise-free pair isolates the interpreter from the analog
    // model's per-sub-step gaussian draw, which bounds every tier's
    // throughput once the instruction dispatch itself is cheap.
    if (noise_free)
        config.power.harvestNoiseSigma = 0.0;
    return config;
}

/** Instruction throughput of one engine tier on bench power. */
void
throughputBench(benchmark::State &state, Engine engine,
                bool noise_free)
{
    sim::Simulator simulator(1);
    energy::TheveninHarvester supply(3.0, 200.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr,
                      engineConfig(engine, noise_free));
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    simulator.runFor(10 * sim::oneMs); // boot
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        std::uint64_t before = wisp.mcu().instrCount();
        simulator.runFor(10 * sim::oneMs);
        instrs += wisp.mcu().instrCount() - before;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
    const auto &sb = wisp.mcu().superblockStats();
    state.counters["sb_hit"] =
        wisp.mcu().instrCount()
            ? static_cast<double>(sb.blockInstrs) /
                  static_cast<double>(wisp.mcu().instrCount())
            : 0.0;
    state.counters["sb_execs"] = static_cast<double>(sb.execs);
    state.counters["sb_falls"] = static_cast<double>(sb.fallbacks);
    state.counters["sb_bails"] = static_cast<double>(sb.bailouts);
}

/** Kept under its historical name: the full default engine. */
void
BM_InterpreterThroughput(benchmark::State &state)
{
    throughputBench(state, Engine::Superblock, false);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

/** The tier matrix behind BENCH_PR6.json (see .github CI). */
void
BM_Throughput_Reference(benchmark::State &state)
{
    throughputBench(state, Engine::Reference, false);
}
BENCHMARK(BM_Throughput_Reference)->Unit(benchmark::kMillisecond);

void
BM_Throughput_FastPath(benchmark::State &state)
{
    throughputBench(state, Engine::FastPath, false);
}
BENCHMARK(BM_Throughput_FastPath)->Unit(benchmark::kMillisecond);

void
BM_Throughput_Superblock(benchmark::State &state)
{
    throughputBench(state, Engine::Superblock, false);
}
BENCHMARK(BM_Throughput_Superblock)->Unit(benchmark::kMillisecond);

void
BM_Throughput_ReferenceNoiseFree(benchmark::State &state)
{
    throughputBench(state, Engine::Reference, true);
}
BENCHMARK(BM_Throughput_ReferenceNoiseFree)
    ->Unit(benchmark::kMillisecond);

void
BM_Throughput_FastPathNoiseFree(benchmark::State &state)
{
    throughputBench(state, Engine::FastPath, true);
}
BENCHMARK(BM_Throughput_FastPathNoiseFree)
    ->Unit(benchmark::kMillisecond);

void
BM_Throughput_SuperblockNoiseFree(benchmark::State &state)
{
    throughputBench(state, Engine::Superblock, true);
}
BENCHMARK(BM_Throughput_SuperblockNoiseFree)
    ->Unit(benchmark::kMillisecond);

/** Full intermittent-system simulation (analog + MCU + reboots). */
void
BM_IntermittentSimulation(benchmark::State &state)
{
    sim::Simulator simulator(2);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    for (auto _ : state)
        simulator.runFor(10 * sim::oneMs);
    state.counters["sim_ms/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 10.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IntermittentSimulation)->Unit(benchmark::kMillisecond);

/** Event queue schedule/run cost. */
void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue queue;
    sim::Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            queue.schedule(now + 1 + i, [&fired] { ++fired; });
        while (queue.runOne(now)) {
        }
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueue);

/** Assembler speed on the largest guest program. */
void
BM_AssembleLinkedList(benchmark::State &state)
{
    std::string source = apps::linkedListSource();
    for (auto _ : state) {
        auto program = isa::assemble(source);
        benchmark::DoNotOptimize(program.totalBytes());
    }
}
BENCHMARK(BM_AssembleLinkedList)->Unit(benchmark::kMicrosecond);

/** Analog power-system integration step cost. */
void
BM_PowerIntegration(benchmark::State &state)
{
    sim::Simulator simulator(3);
    energy::RfHarvester rf(30.0, 1.0);
    energy::PowerSystem power(simulator, "power", {}, &rf);
    power.addLoad("load", 0.5e-3, true);
    sim::Tick t = 0;
    for (auto _ : state) {
        t += 100 * sim::oneUs;
        power.advanceTo(t);
    }
    benchmark::DoNotOptimize(power.voltageNoAdvance());
}
BENCHMARK(BM_PowerIntegration);

} // namespace

BENCHMARK_MAIN();
