/**
 * @file
 * Regenerates paper Table 3: accuracy of EDB's energy save-restore
 * operation.
 *
 * Methodology (paper Section 5.2.2): 50 trials; each trial sets an
 * energy breakpoint at 2.3 V, charges the capacitor to 2.4 V, waits
 * for the breakpoint to interrupt the target, and resumes. The
 * discrepancy dV = Vrestored - Vsaved is measured independently by
 * an oscilloscope-grade probe (the simulator's true voltage) and by
 * EDB's own ADC; dE = 1/2 C (Vr^2 - Vs^2), also as a percentage of
 * the 47 uF capacity at 2.4 V.
 */

#include <cstdio>

#include "bench/common.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "trace/stats.hh"

using namespace edb;

int
main()
{
    bench::banner("Table 3: save-restore accuracy (50 trials, energy "
                  "breakpoint at 2.3 V, charge to 2.4 V)");

    bench::Rig rig(303);
    // A busy loop with the libEDB ISR: the energy breakpoint
    // interrupts it wherever it happens to be.
    rig.wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    br   main
)" + runtime::libedbSource()));
    rig.wisp.start();
    rig.board.enableEnergyBreakpoint(2.3);

    const double cap_f = rig.wisp.power().config().capacitanceF;
    const double e_max = rig.wisp.power().maxEnergy();

    trace::SampleSet dv_scope, dv_adc, de_scope, de_adc;
    trace::SampleSet dep_scope, dep_adc;

    constexpr int trials = 50;
    int completed = 0;
    for (int t = 0; t < trials; ++t) {
        if (!rig.board.chargeTo(2.4, 2 * sim::oneSec))
            continue;
        if (!rig.board.waitForSession(2 * sim::oneSec))
            continue;
        rig.board.session()->resume();
        if (!rig.board.waitPassive(2 * sim::oneSec))
            continue;
        ++completed;

        double vs_scope = rig.board.trueSavedVolts();
        double vr_scope = rig.board.trueRestoredVolts();
        double vs_adc = rig.board.lastSavedVolts();
        double vr_adc = rig.board.lastRestoredVolts();

        auto de = [cap_f](double vr, double vs) {
            return 0.5 * cap_f * (vr * vr - vs * vs);
        };
        dv_scope.add((vr_scope - vs_scope) * 1e3);
        dv_adc.add((vr_adc - vs_adc) * 1e3);
        de_scope.add(de(vr_scope, vs_scope) * 1e6);
        de_adc.add(de(vr_adc, vs_adc) * 1e6);
        dep_scope.add(de(vr_scope, vs_scope) / e_max * 100.0);
        dep_adc.add(de(vr_adc, vs_adc) / e_max * 100.0);
    }

    std::printf("completed trials: %d / %d\n\n", completed, trials);
    std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "", "dV(mV)",
                "dV(mV)", "dE(uJ)", "dE(uJ)", "dE(%*)", "dE(%*)");
    std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "", "O-scope",
                "ADC", "O-scope", "ADC", "O-scope", "ADC");
    std::printf("%-8s %12.1f %12.1f %12.2f %12.2f %12.2f %12.2f\n",
                "Mean", dv_scope.summary().mean(),
                dv_adc.summary().mean(), de_scope.summary().mean(),
                de_adc.summary().mean(), dep_scope.summary().mean(),
                dep_adc.summary().mean());
    std::printf("%-8s %12.1f %12.1f %12.2f %12.2f %12.2f %12.2f\n",
                "S.D.", dv_scope.summary().stddev(),
                dv_adc.summary().stddev(), de_scope.summary().stddev(),
                de_adc.summary().stddev(), dep_scope.summary().stddev(),
                dep_adc.summary().stddev());
    std::printf("* energy as percentage of the %.0f uF capacity at "
                "2.4 V (%.1f uJ)\n",
                cap_f * 1e6, e_max * 1e6);
    std::printf("\npaper: mean dV 54/55 mV, dE 1.25 uJ, dE%% 4.34; "
                "S.D. 16/7.8 mV.\n"
                "The positive bias is the control loop's conservative "
                "stop margin\n(see bench/ablation_control_loop for "
                "the sweep to the ADC-limited floor).\n");
    return 0;
}
