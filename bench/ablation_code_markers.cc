/**
 * @file
 * Ablation for paper Section 4.1.3: code-marker capacity and cost.
 *
 * (1) Capacity: with n GPIO lines allocated to the code-marker
 *     function, EDB can distinguish 2^n - 1 watchpoint ids.
 * (2) Cost: "the main energy cost is the target device holding a
 *     GPIO pin high for one cycle... we measured the cost of this
 *     GPIO-based signaling to be negligible". We run the
 *     activity-recognition app with and without watchpoints on
 *     harvested power and compare iteration throughput and success.
 */

#include <cstdio>
#include <set>

#include "apps/activity.hh"
#include "bench/common.hh"
#include "mcu/mmio_map.hh"

using namespace edb;

namespace {

struct RunStats
{
    std::uint64_t attempted;
    std::uint64_t completed;
};

RunStats
runActivity(bool with_watchpoints, std::uint64_t seed)
{
    namespace lay = apps::activity_layout;
    apps::ActivityOptions options;
    options.withWatchpoints = with_watchpoints;
    bench::Rig rig(seed);
    rig.wisp.flash(apps::buildActivityApp(options));
    rig.board.setStream("watchpoints", true);
    rig.wisp.start();
    rig.sim.runFor(10 * sim::oneSec);
    return {rig.wisp.mcu().debugRead32(lay::startedAddr),
            rig.wisp.mcu().debugRead32(lay::totalAddr)};
}

} // namespace

int
main()
{
    bench::banner("Ablation: code-marker line count vs watchpoint "
                  "capacity");
    std::printf("%8s %22s\n", "lines", "distinct watchpoints");
    for (unsigned n = 1; n <= 8; ++n) {
        target::WispConfig config;
        config.debug.markerLines = n;
        sim::Simulator simulator(3000 + n);
        energy::TheveninHarvester supply(3.0, 200.0);
        target::Wisp wisp(simulator, "wisp", &supply, nullptr,
                          config);
        std::printf("%8u %22u\n", n,
                    wisp.debugPort().maxMarkerId());
    }
    std::printf("(2^n - 1, paper Section 4.1.3)\n");

    // Alias check: ids beyond the capacity fold onto the lines.
    {
        target::WispConfig config;
        config.debug.markerLines = 2;
        sim::Simulator simulator(3100);
        energy::TheveninHarvester supply(3.0, 200.0);
        target::Wisp wisp(simulator, "wisp", &supply, nullptr,
                          config);
        std::set<std::uint32_t> seen;
        wisp.debugPort().addMarkerListener(
            [&seen](std::uint32_t id, sim::Tick) { seen.insert(id); });
        for (std::uint32_t id = 0; id < 16; ++id)
            wisp.memoryMap().write32(mcu::mmio::marker, id);
        std::printf("2 lines observed ids:");
        for (auto id : seen)
            std::printf(" %u", id);
        std::printf(" (id 0 emits no pulse; higher ids alias)\n");
    }

    bench::banner("Ablation: watchpoint signalling cost on harvested "
                  "power");
    auto without = runActivity(false, 3201);
    auto with = runActivity(true, 3202);
    auto rate = [](const RunStats &s) {
        return s.attempted
                   ? 100.0 * double(s.completed) / double(s.attempted)
                   : 0.0;
    };
    std::printf("%-22s %12s %12s %10s\n", "", "attempted",
                "completed", "success");
    std::printf("%-22s %12llu %12llu %9.1f%%\n",
                "no watchpoints",
                (unsigned long long)without.attempted,
                (unsigned long long)without.completed, rate(without));
    std::printf("%-22s %12llu %12llu %9.1f%%\n",
                "3 watchpoints/iter",
                (unsigned long long)with.attempted,
                (unsigned long long)with.completed, rate(with));
    std::printf("\npaper: \"practically energy-interference-free\" — "
                "throughput and success\nrate are statistically "
                "indistinguishable with markers enabled.\n");
    return 0;
}
