/**
 * @file
 * Regenerates paper Figure 9 (Section 5.3.2): the debug-build
 * consistency check starves the main loop once the list grows long
 * enough; wrapping the check in EDB energy guards restores progress.
 *
 * Part 1 (no guards): the Fibonacci app's debug build runs on
 * harvested power until the check alone consumes an entire
 * charge-discharge cycle. Reported: the list length at starvation
 * (paper: ~555 items).
 *
 * Part 2 (with guards): the same app, list pre-seeded beyond the
 * starvation length; the check runs on tethered power between
 * guards, and the main loop keeps appending.
 */

#include <cstdio>
#include <vector>

#include "apps/fibonacci.hh"
#include "bench/common.hh"

using namespace edb;

namespace {

namespace lay = apps::fibonacci_layout;

/** Pre-populate a consistent Fibonacci list of n nodes in FRAM. */
void
seedList(target::Wisp &wisp, unsigned n)
{
    auto &core = wisp.mcu();
    std::uint32_t a = 1, b = 1;
    std::uint32_t prev = lay::headAddr;
    core.debugWrite32(lay::headAddr + lay::nodeNextOff, 0);
    core.debugWrite32(lay::headAddr + lay::nodePrevOff, 0);
    for (unsigned i = 1; i <= n; ++i) {
        std::uint32_t node = lay::poolAddr + (i - 1) * 16;
        std::uint32_t fib = i <= 2 ? 1 : a + b;
        if (i > 2) {
            a = b;
            b = fib;
        }
        core.debugWrite32(node + lay::nodeNextOff, 0);
        core.debugWrite32(node + lay::nodePrevOff, prev);
        core.debugWrite32(node + lay::nodeValueOff, fib);
        core.debugWrite32(prev + lay::nodeNextOff, node);
        prev = node;
    }
    core.debugWrite32(lay::tailPtrAddr, prev);
    core.debugWrite32(lay::countAddr, n);
    core.debugWrite32(lay::violationsAddr, 0);
    core.debugWrite32(lay::magicAddr, lay::magicValue);
}

std::uint32_t
listCount(target::Wisp &wisp)
{
    return wisp.mcu().debugRead32(lay::countAddr);
}

} // namespace

int
main()
{
    bench::banner("Figure 9 (top): debug-build consistency check "
                  "WITHOUT energy guards");
    {
        apps::FibonacciOptions options;
        options.withCheck = true;
        bench::Rig rig(909);
        rig.wisp.flash(apps::buildFibonacciApp(options));
        rig.wisp.start();

        // Track progress; starvation = no new nodes across many
        // consecutive charge-discharge cycles.
        std::uint32_t last_count = 0;
        std::uint64_t stall_boots = 0;
        std::uint64_t boots_at_stall = 0;
        std::uint32_t starved_at = 0;
        for (int chunk = 0; chunk < 1200; ++chunk) {
            rig.sim.runFor(100 * sim::oneMs);
            std::uint32_t count = listCount(rig.wisp);
            if (count != last_count) {
                last_count = count;
                stall_boots = rig.wisp.power().bootCount();
            } else if (rig.wisp.power().bootCount() >
                       stall_boots + 12) {
                starved_at = count;
                boots_at_stall = rig.wisp.power().bootCount();
                break;
            }
        }
        if (starved_at == 0) {
            std::printf("main loop did not starve within the budget "
                        "(list at %u)\n", last_count);
        } else {
            std::printf("main loop starved: list stuck at %u items "
                        "after %llu reboots (t = %.1f s)\n",
                        starved_at,
                        (unsigned long long)boots_at_stall,
                        sim::secondsFromTicks(rig.sim.now()));
            std::printf("paper: \"stops executing the main loop "
                        "after having added approximately 555 items"
                        "\"\n");
            std::printf("check runs every cycle, main loop never: "
                        "the check's cost (~quadratic in list "
                        "length) exceeds one full charge of the "
                        "%.0f uF capacitor\n",
                        rig.wisp.power().config().capacitanceF * 1e6);
        }
    }

    bench::banner("Figure 9 (bottom): the same check WITH energy "
                  "guards");
    {
        apps::FibonacciOptions options;
        options.withCheck = true;
        options.withGuards = true;
        bench::Rig rig(910);
        rig.wisp.flash(apps::buildFibonacciApp(options));
        // Pre-seed beyond the unguarded starvation point.
        seedList(rig.wisp, 700);
        rig.wisp.start();

        std::uint32_t start_count = listCount(rig.wisp);
        rig.sim.runFor(10 * sim::oneSec);
        std::uint32_t end_count = listCount(rig.wisp);
        std::printf("list: %u -> %u items in 10 s with the check "
                    "running every iteration on tethered power\n",
                    start_count, end_count);
        std::printf("energy guards entered: %llu; mean restore "
                    "discrepancy is bounded by the control loop "
                    "margin\n",
                    (unsigned long long)rig.board.guardCount());
        std::printf("violations flagged by the check so far: %u\n",
                    rig.wisp.mcu().debugRead32(lay::violationsAddr));
        if (end_count > start_count) {
            std::printf("=> main loop keeps making progress past the "
                        "unguarded starvation length (paper Fig 9 "
                        "bottom)\n");
        }
    }
    return 0;
}
