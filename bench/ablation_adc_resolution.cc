/**
 * @file
 * Ablation for the paper's Section 5.2.2 claim: "A 12-bit ADC with
 * effective resolution of approximately 1 mV imposes a theoretical
 * lower bound on dE of 0.08%."
 *
 * Sweeps the EDB ADC's resolution and measures the save-restore
 * discrepancy with the control-loop stop margin removed, so the
 * only remaining error sources are quantization and input noise —
 * the accuracy limit the paper says software optimization would
 * approach.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "trace/stats.hh"

using namespace edb;

int
main()
{
    bench::banner("Ablation: ADC resolution vs save-restore accuracy "
                  "(stop margin = 0)");
    std::printf("%6s %10s %14s %14s %14s\n", "bits", "lsb_mV",
                "theory_dE%", "meas_|dV|_mV", "meas_|dE|%");

    for (unsigned bits : {8u, 10u, 12u, 14u}) {
        edbdbg::EdbConfig config;
        config.adc.bits = bits;
        config.charge.restoreStopMargin = 0.0;
        // Finer control steps so the loop can exploit the ADC.
        config.charge.loopPeriod = 50 * sim::oneUs;

        bench::Rig rig(1400 + bits, 30.0, 1.0, false, config);
        rig.wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    br   main
)" + runtime::libedbSource()));
        rig.wisp.start();
        rig.board.enableEnergyBreakpoint(2.3);

        const double e_max = rig.wisp.power().maxEnergy();
        const double cap = rig.wisp.power().config().capacitanceF;
        trace::SampleSet abs_dv_mv, abs_de_pct;
        for (int t = 0; t < 25; ++t) {
            if (!rig.board.chargeTo(2.4, 2 * sim::oneSec))
                continue;
            if (!rig.board.waitForSession(2 * sim::oneSec))
                continue;
            rig.board.session()->resume();
            if (!rig.board.waitPassive(2 * sim::oneSec))
                continue;
            double vs = rig.board.trueSavedVolts();
            double vr = rig.board.trueRestoredVolts();
            abs_dv_mv.add(std::abs(vr - vs) * 1e3);
            abs_de_pct.add(
                std::abs(0.5 * cap * (vr * vr - vs * vs)) / e_max *
                100.0);
        }

        double lsb = 4.096 / double((1u << bits) - 1);
        // dE from a 1-LSB error at 2.4 V, relative to capacity.
        double theory =
            (0.5 * cap * (std::pow(2.4 + lsb, 2) - 2.4 * 2.4)) /
            e_max * 100.0;
        std::printf("%6u %10.2f %14.3f %14.1f %14.3f\n", bits,
                    lsb * 1e3, theory, abs_dv_mv.summary().mean(),
                    abs_de_pct.summary().mean());
    }
    std::printf("\npaper: 12-bit / ~1 mV LSB => theoretical dE floor "
                "0.08%%.\nWith the conservative stop margin removed, "
                "the measured discrepancy\napproaches the "
                "quantization floor, confirming the 54 mV of Table 3 "
                "is a\nsoftware artifact, not a hardware limit.\n");
    return 0;
}
