/**
 * @file
 * Ablation: Dewdrop-style energy-aware dispatch (paper Section 6.2
 * related work) on top of the EDB substrate.
 *
 * A fixed-cost task runs in a loop under marginal harvesting.
 * Opportunistic dispatch starts the task whenever the device is on;
 * energy-aware dispatch first sleep-waits (uA draw) until Vcap
 * reaches a threshold. Sweeping the threshold shows the Dewdrop
 * trade-off: too low tears tasks, too high wastes charge-cycle
 * headroom; the knee is exactly what EDB's watchpoint energy profile
 * (Section 5.3.3) lets a developer find.
 */

#include <cstdio>

#include "bench/common.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "runtime/scheduler.hh"

using namespace edb;

namespace {

struct Result
{
    std::uint32_t attempted = 0;
    std::uint32_t completed = 0;
    double rate() const
    {
        return attempted ? double(completed) / attempted : 0.0;
    }
};

Result
runWithThreshold(unsigned adc_code, std::uint64_t seed)
{
    std::string dispatch;
    if (adc_code > 0) {
        dispatch = "    la   r1, " + std::to_string(adc_code) +
                   "\n    call dw_wait_energy\n";
    }
    std::string source = runtime::programHeader() + R"(
main:
)" + dispatch + R"(
    la   r0, 0x5004
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    la   r2, 40000             ; ~160k cycles of task work
__task:
    addi r2, r2, -1
    cmpi r2, 0
    bne  __task
    la   r0, 0x5000
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    br   main
)" + runtime::dewdropSource() +
                         runtime::libedbSource();

    bench::Rig rig(seed, 30.0, 1.05);
    rig.wisp.flash(isa::assemble(source));
    rig.wisp.start();
    rig.sim.runFor(25 * sim::oneSec);
    Result out;
    out.completed = rig.wisp.mcu().debugRead32(0x5000);
    out.attempted = rig.wisp.mcu().debugRead32(0x5004);
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation: Dewdrop-style energy-aware dispatch "
                  "(40 ms task, marginal harvesting, 25 s)");
    std::printf("%12s %10s %12s %12s %10s\n", "threshold", "volts",
                "attempted", "completed", "success");

    struct Point
    {
        unsigned code;
        const char *label;
    };
    int seed = 6000;
    for (Point p : {Point{0, "none"}, Point{2600, "1.90 V"},
                    Point{2870, "2.10 V"}, Point{3100, "2.27 V"},
                    Point{3300, "2.42 V"}}) {
        Result r = runWithThreshold(p.code, ++seed);
        std::printf("%12u %10s %12u %12u %9.0f%%\n", p.code, p.label,
                    r.attempted, r.completed, r.rate() * 100.0);
    }
    std::printf(
        "\nno threshold: tasks start whenever the device boots and "
        "often tear.\nhigher thresholds buy completion reliability; "
        "throughput peaks at the knee\nwhere one task's energy cost "
        "(EDB-profiled, Fig 11) fits the headroom\nbetween the "
        "threshold and brown-out. (Dewdrop, paper Section 6.2.)\n");
    return 0;
}
