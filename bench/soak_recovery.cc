/**
 * @file
 * Soak supervisor with bounded snapshot/replay recovery.
 *
 * Runs the paper's buggy linked-list firmware on harvested power
 * under randomized forced-brown-out schedules, with the NV
 * consistency auditor attached and a forward-progress watchdog
 * armed. Every environment action is recorded in a `ScheduleLog`,
 * and the full world (target + auditor + watchdog) is snapshotted
 * every 100 ms.
 *
 * When an episode hits an event — a write-after-read violation from
 * the auditor, or the watchdog tripping on reboots without a
 * checkpoint commit — the supervisor rewinds to the last snapshot,
 * re-arms the recorded schedule suffix, and replays. The event must
 * recur at the identical tick with identical attribution, twice:
 * that is the deterministic minimal repro the recovery flow promises
 * (rewind window bounded by the snapshot cadence). Any mismatch is a
 * recovery failure and fails the soak.
 *
 * Usage: soak_recovery [--episodes N]   (default 100)
 */

#include <cstdio>
#include <vector>

#include "apps/linked_list.hh"
#include "bench/common.hh"
#include "energy/harvester.hh"
#include "mem/nv_audit.hh"
#include "sim/replay.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

constexpr sim::Tick quantum = sim::oneMs;
constexpr sim::Tick snapPeriod = 100 * sim::oneMs;

/** Environment opcodes recorded in the schedule log. */
constexpr std::uint32_t opBrownOut = 1;

/** What a detection pass can end with. */
struct Event
{
    int kind = 0; ///< 0 none, 1 WAR finding, 2 progress stall
    sim::Tick at = 0;
    mem::NvFinding finding{};
    std::uint64_t reboots = 0;
};

bool
sameEvent(const Event &a, const Event &b)
{
    return a.kind == b.kind && a.at == b.at &&
           a.finding.guideAddr == b.finding.guideAddr &&
           a.finding.storeAddr == b.finding.storeAddr &&
           a.finding.storePc == b.finding.storePc &&
           a.finding.interval == b.finding.interval &&
           a.finding.lossTick == b.finding.lossTick &&
           a.reboots == b.reboots;
}

mem::NvAuditConfig
auditConfigFor(const target::Wisp &wisp)
{
    mem::NvAuditConfig cfg;
    cfg.checkpointBase = wisp.config().mcu.checkpointBase;
    cfg.checkpointSpan = 2 * wisp.config().mcu.checkpointSlotSize;
    return cfg;
}

/** One episode's world: target + auditor + schedule player. */
struct World
{
    sim::Simulator sim;
    energy::RfHarvester rf{30.0, 1.0};
    target::Wisp wisp;
    mem::NvAuditor aud;
    sim::SchedulePlayer player;

    explicit World(std::uint64_t seed, bool with_auditor,
                   const target::WispConfig &config)
        : sim(seed), wisp(sim, "wisp", &rf, nullptr, config),
          aud(auditConfigFor(wisp), wisp.framRegion()), player(sim)
    {
        // The auditor object always exists (it is part of the
        // snapshot layout) but is only wired into the core when the
        // episode actually audits. An attached auditor observes
        // every instruction, which forces per-instruction stepping;
        // leaving it detached in stall-mode episodes lets the
        // superblock tier run under the same snapshot/rewind
        // machinery — architecturally identical either way.
        if (with_auditor) {
            wisp.mcu().setAuditor(&aud);
            wisp.memoryMap().setWriteHook(
                &mem::NvAuditor::rawWriteHook, &aud);
        }
    }

    void
    apply(const sim::ScheduleEntry &e)
    {
        if (e.op == opBrownOut)
            wisp.power().capacitor().setVoltage(e.arg);
    }
};

std::vector<std::uint8_t>
snapshotWorld(const World &w, const sim::ProgressMonitor &mon)
{
    sim::SnapshotWriter wr;
    w.wisp.saveState(wr);
    w.aud.saveState(wr);
    mon.saveState(wr);
    return wr.finish();
}

bool
rewindWorld(World &w, sim::ProgressMonitor &mon,
            const std::vector<std::uint8_t> &image,
            const sim::ScheduleLog &log, sim::Tick snap_tick)
{
    sim::SnapshotReader r;
    if (!r.load(image))
        return false;
    sim::EventRearmer rearmer(w.sim);
    w.wisp.restoreState(r, rearmer);
    w.aud.restoreState(r);
    mon.restoreState(r);
    if (!r.ok())
        return false;
    rearmer.flush();
    // Entries at or before the snapshot tick are already reflected in
    // the restored state; re-arm only the suffix.
    w.player.arm(log, snap_tick,
                 [&w](const sim::ScheduleEntry &e) { w.apply(e); });
    return true;
}

/**
 * Advance until an event or `horizon`. When `snap_img` is given,
 * keeps the latest periodic snapshot (recording pass); replay passes
 * leave it null.
 */
Event
detect(World &w, sim::ProgressMonitor &mon, bool audit,
       sim::Tick horizon, std::vector<std::uint8_t> *snap_img,
       sim::Tick *snap_tick)
{
    std::uint64_t seenViolations = w.aud.violationCount();
    std::size_t seenFindings = w.aud.findings().size();
    while (w.sim.now() < horizon) {
        w.sim.runFor(quantum);
        if (audit && w.aud.violationCount() > seenViolations) {
            Event ev;
            ev.kind = 1;
            ev.at = w.sim.now();
            if (w.aud.findings().size() > seenFindings)
                ev.finding = w.aud.findings()[seenFindings];
            return ev;
        }
        if (mon.update(w.wisp.mcu().rebootCount(),
                       w.wisp.mcu().checkpointCount())) {
            Event ev;
            ev.kind = 2;
            ev.at = w.sim.now();
            ev.reboots = w.wisp.mcu().rebootCount();
            return ev;
        }
        if (snap_img != nullptr && w.sim.now() % snapPeriod == 0) {
            *snap_img = snapshotWorld(w, mon);
            *snap_tick = w.sim.now();
        }
    }
    return Event{};
}

struct EpisodeResult
{
    int kind = 0; ///< 0 quiet, 1 finding, 2 stall
    bool reproduced = false;
    bool recoveryFailed = false;
    sim::Tick eventTick = 0;
    sim::Tick snapTick = 0;
    /** Superblock engine counters (nonzero in stall-mode episodes,
     *  where the auditor is detached). */
    mcu::Mcu::SuperblockStats sb{};
    std::uint64_t instrs = 0;
    /** NV backend counters (mem/nv_region.hh). */
    std::uint64_t nvWrites = 0;
    std::uint64_t nvMaxWear = 0;
    std::uint64_t nvTornBursts = 0;
    std::uint64_t tornCommits = 0;
};

EpisodeResult
runEpisode(std::uint64_t index, const target::WispConfig &config)
{
    // Even episodes hunt WAR findings (watchdog out of the way); odd
    // episodes exercise the stall detector alone (the auditor is
    // muted -- it fires first otherwise -- and the non-checkpointing
    // app never commits, so a handful of reboots trips the watchdog).
    const bool stallMode = (index % 2) == 1;
    const sim::Tick horizon = 4 * sim::oneSec;
    World w(5000 + index, !stallMode, config);
    w.wisp.flash(apps::buildLinkedListApp());
    w.wisp.start();
    sim::ProgressMonitor mon(stallMode ? 5 : (1u << 20));

    // Randomized environment, recorded for replay: forced brown-outs
    // multiply the power-loss windows the linked-list bug needs.
    sim::ScheduleLog log;
    sim::Rng meta(7000 + index);
    auto count = meta.uniformInt(8, 20);
    for (decltype(count) i = 0; i < count; ++i)
        log.record(
            static_cast<sim::Tick>(
                meta.uniformInt(100 * sim::oneMs, horizon)),
            opBrownOut, meta.uniform(0.8, 1.7));
    w.player.arm(log, 0,
                 [&w](const sim::ScheduleEntry &e) { w.apply(e); });

    std::vector<std::uint8_t> snapImg = snapshotWorld(w, mon);
    sim::Tick snapTick = 0;
    Event ev =
        detect(w, mon, !stallMode, horizon, &snapImg, &snapTick);

    EpisodeResult res;
    res.sb = w.wisp.mcu().superblockStats();
    res.instrs = w.wisp.mcu().instrCount();
    const mem::NvRegion &fram = w.wisp.framRegion();
    res.nvWrites = fram.writeCount();
    res.nvMaxWear = fram.maxWear();
    res.nvTornBursts = fram.tornWrites();
    res.tornCommits = w.wisp.mcu().tornCommitCount();
    if (ev.kind == 0)
        return res; // quiet: ran to the horizon without incident
    res.kind = ev.kind;
    res.eventTick = ev.at;
    res.snapTick = snapTick;

    // Bounded recovery: rewind to the last snapshot and replay the
    // recorded schedule; the event must recur identically, twice.
    res.reproduced = true;
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (!rewindWorld(w, mon, snapImg, log, snapTick)) {
            res.reproduced = false;
            res.recoveryFailed = true;
            break;
        }
        Event again = detect(w, mon, !stallMode,
                             ev.at + 500 * sim::oneMs, nullptr,
                             nullptr);
        if (!sameEvent(ev, again)) {
            res.reproduced = false;
            res.recoveryFailed = true;
            std::printf(
                "episode %4llu REPLAY DIVERGED (attempt %d): "
                "recorded kind=%d tick=%lld, replay kind=%d "
                "tick=%lld\n",
                static_cast<unsigned long long>(index), attempt + 1,
                ev.kind, static_cast<long long>(ev.at), again.kind,
                static_cast<long long>(again.at));
            break;
        }
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Cli cli(argc, argv);
    int episodes = static_cast<int>(cli.count("episodes", 100));

    bench::banner(
        "Soak + recovery: " + std::to_string(episodes) +
        " episodes, buggy linked-list app, randomized brown-out "
        "schedules, NV auditor + progress watchdog, snapshot every "
        "100 ms, every event rewound and replayed twice");

    std::uint64_t quiet = 0, findingEvents = 0, stallEvents = 0;
    std::uint64_t reproduced = 0, recoveryFailures = 0;
    mcu::Mcu::SuperblockStats sbTotal{};
    std::uint64_t instrTotal = 0;
    std::uint64_t nvWrites = 0, nvMaxWear = 0, nvTornBursts = 0;
    std::uint64_t tornCommits = 0;
    const target::WispConfig wispConfig =
        bench::applyEngineFlags(cli);
    for (int i = 0; i < episodes; ++i) {
        EpisodeResult r =
            runEpisode(static_cast<std::uint64_t>(i), wispConfig);
        bench::accumulate(sbTotal, r.sb);
        instrTotal += r.instrs;
        nvWrites += r.nvWrites;
        if (r.nvMaxWear > nvMaxWear)
            nvMaxWear = r.nvMaxWear;
        nvTornBursts += r.nvTornBursts;
        tornCommits += r.tornCommits;
        if (r.kind == 0)
            ++quiet;
        else if (r.kind == 1)
            ++findingEvents;
        else
            ++stallEvents;
        if (r.kind != 0 && r.reproduced)
            ++reproduced;
        if (r.recoveryFailed)
            ++recoveryFailures;
        if ((i + 1) % 25 == 0)
            std::printf("... %d/%d episodes\n", i + 1, episodes);
    }

    bench::Json ep;
    ep.field("run", episodes)
        .field("quiet", quiet)
        .field("war_findings", findingEvents)
        .field("stalls", stallEvents)
        .field("reproduced", reproduced)
        .field("recovery_failures", recoveryFailures);
    bench::Json nv;
    nv.field("writes", nvWrites)
        .field("max_wear", nvMaxWear)
        .field("torn_bursts", nvTornBursts)
        .field("torn_commits", tornCommits);
    bench::Json summary;
    bench::runConfigFields(summary, cli);
    summary.object("episodes", ep)
        .object("superblocks",
                bench::superblockJson(sbTotal, instrTotal))
        .object("nv", nv)
        .print();

    // The gate is real: recovery must never diverge, and with both
    // episode flavors present each detector must fire and reproduce
    // at least once — an all-quiet soak means the rig is broken.
    bool ok = recoveryFailures == 0;
    if (episodes >= 2)
        ok = ok && findingEvents > 0 && stallEvents > 0 &&
             reproduced == findingEvents + stallEvents;
    std::printf(ok ? "\nSOAK PASS\n" : "\nSOAK FAIL\n");
    return ok ? 0 : 1;
}
