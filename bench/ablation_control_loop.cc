/**
 * @file
 * Ablation: the charge/discharge control loop's stop margin and
 * iteration period vs the save-restore discrepancy of Table 3.
 *
 * The paper attributes its 54 mV mean discrepancy to the prototype's
 * control software and expects optimization to approach the ADC
 * limit; this sweep demonstrates exactly that trade-off.
 */

#include <cstdio>

#include "bench/common.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "trace/stats.hh"

using namespace edb;

namespace {

struct Stats
{
    double meanMv;
    double sdMv;
    double meanRestoreMs;
};

Stats
runTrials(double stop_margin, sim::Tick loop_period,
          std::uint64_t seed)
{
    edbdbg::EdbConfig config;
    config.charge.restoreStopMargin = stop_margin;
    config.charge.loopPeriod = loop_period;
    bench::Rig rig(seed, 30.0, 1.0, false, config);
    rig.wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    br   main
)" + runtime::libedbSource()));
    rig.wisp.start();
    rig.board.enableEnergyBreakpoint(2.3);

    trace::SampleSet dv_mv;
    trace::SampleSet restore_ms;
    for (int t = 0; t < 25; ++t) {
        if (!rig.board.chargeTo(2.4, 2 * sim::oneSec))
            continue;
        if (!rig.board.waitForSession(2 * sim::oneSec))
            continue;
        sim::Tick resume_start = rig.sim.now();
        rig.board.session()->resume();
        if (!rig.board.waitPassive(2 * sim::oneSec))
            continue;
        dv_mv.add((rig.board.trueRestoredVolts() -
                   rig.board.trueSavedVolts()) *
                  1e3);
        restore_ms.add(
            sim::millisFromTicks(rig.sim.now() - resume_start));
    }
    return {dv_mv.summary().mean(), dv_mv.summary().stddev(),
            restore_ms.summary().mean()};
}

} // namespace

int
main()
{
    bench::banner("Ablation: control-loop parameters vs save-restore "
                  "discrepancy");
    std::printf("%12s %12s %12s %10s %14s\n", "margin_mV",
                "period_us", "mean_dV_mV", "sd_mV", "restore_ms");
    int seed = 2200;
    for (double margin : {0.062, 0.030, 0.010, 0.0}) {
        for (sim::Tick period :
             {400 * sim::oneUs, 200 * sim::oneUs, 50 * sim::oneUs}) {
            auto s = runTrials(margin, period, ++seed);
            std::printf("%12.0f %12lld %12.1f %10.1f %14.2f\n",
                        margin * 1e3,
                        (long long)(period / sim::oneUs), s.meanMv,
                        s.sdMv, s.meanRestoreMs);
        }
    }
    std::printf("\nThe 54 mV Table 3 discrepancy tracks the stop "
                "margin almost 1:1; with\nmargin 0 and a fast loop "
                "the error collapses toward the ADC noise floor\n"
                "(paper: \"further software optimization will leave "
                "a discrepancy closer\nto the accuracy limit imposed "
                "by EDB's ADC\").\n");
    return 0;
}
