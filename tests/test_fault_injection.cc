/**
 * @file
 * Tests for the deterministic fault-injection layer and the hardened
 * debug link: injector determinism and zero-cost-when-off, protocol
 * fuzzing, and bounded-retry behaviour against a dead link.
 */

#include <gtest/gtest.h>

#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "edb/protocol.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "runtime/protocol_defs.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;
using namespace edb::edbdbg;
namespace proto = edb::runtime::proto;

namespace {

TEST(FaultInjector, SameSeedSameFaultSequence)
{
    sim::FaultPlan plan;
    plan.seed = 77;
    plan.uartCorruptProb = 0.2;
    plan.uartDropProb = 0.2;
    plan.uartDupProb = 0.2;
    auto run = [&plan] {
        sim::Simulator simulator(1);
        sim::FaultInjector inj(simulator, "inj", plan);
        std::vector<std::uint8_t> out;
        for (int i = 0; i < 2000; ++i) {
            auto r = inj.onWire(static_cast<std::uint8_t>(i));
            for (int k = 0; k < r.count; ++k)
                out.push_back(r.bytes[k]);
        }
        return out;
    };
    EXPECT_EQ(run(), run());

    auto first = run();
    plan.seed = 78;
    EXPECT_NE(run(), first);
}

TEST(FaultInjector, DisabledPlanIsCompletelyInert)
{
    sim::FaultPlan plan;
    plan.enabled = false;
    plan.uartCorruptProb = 1.0;
    plan.uartDropProb = 1.0;
    plan.adcGlitchProb = 1.0;
    plan.fades.push_back({0, 10 * sim::oneSec});
    plan.brownOutAtInstr = 1;
    sim::Simulator simulator(2);
    sim::FaultInjector inj(simulator, "inj", plan);
    int fired = 0;
    inj.armBrownOuts([&fired] { ++fired; });
    for (int i = 0; i < 100; ++i) {
        auto r = inj.onWire(0x5A);
        EXPECT_EQ(r.count, 1);
        EXPECT_EQ(r.bytes[0], 0x5A);
        EXPECT_EQ(inj.onAdc(2.4), 2.4);
        inj.onInstruction();
    }
    EXPECT_FALSE(inj.inFade(sim::oneSec));
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(inj.stats().wireBytes, 0u);
    EXPECT_EQ(inj.stats().adcGlitches, 0u);
    EXPECT_EQ(inj.stats().brownOutsForced, 0u);
}

TEST(FaultInjector, WireFaultRatesMatchThePlan)
{
    sim::FaultPlan plan;
    plan.seed = 5;
    plan.uartCorruptProb = 0.1;
    plan.uartDropProb = 0.2;
    plan.uartDupProb = 0.05;
    sim::Simulator simulator(3);
    sim::FaultInjector inj(simulator, "inj", plan);
    const int n = 20000;
    std::uint64_t delivered = 0;
    for (int i = 0; i < n; ++i)
        delivered +=
            static_cast<std::uint64_t>(inj.onWire(0xA5).count);
    const auto &s = inj.stats();
    EXPECT_EQ(s.wireBytes, static_cast<std::uint64_t>(n));
    EXPECT_NEAR(double(s.dropped) / n, 0.2, 0.02);
    // Corruption/duplication only apply to non-dropped bytes.
    EXPECT_NEAR(double(s.corrupted) / n, 0.1 * 0.8, 0.02);
    EXPECT_NEAR(double(s.duplicated) / n, 0.05 * 0.8, 0.01);
    EXPECT_EQ(delivered, n - s.dropped + s.duplicated);
}

TEST(ClientWireFaults, DisconnectAfterFramesDeliversExactlyN)
{
    sim::ClientFaultPlan plan;
    plan.disconnectAfterFrames = 2;
    sim::ClientWireFaults faults(plan);
    const std::vector<std::uint8_t> frame = {1, 2, 3};

    EXPECT_FALSE(faults.wantsDisconnect());
    EXPECT_EQ(faults.onFrame(frame), frame); // frame 1 delivered
    EXPECT_FALSE(faults.wantsDisconnect());
    EXPECT_EQ(faults.onFrame(frame), frame); // frame 2 delivered
    // The disconnect comes *after* N frames, never instead of the
    // Nth (N=1 must not mean zero frames sent).
    EXPECT_TRUE(faults.wantsDisconnect());
    EXPECT_TRUE(faults.onFrame(frame).empty());
    EXPECT_EQ(faults.stats().frames, 2u);
    EXPECT_EQ(faults.stats().disconnects, 1u);

    sim::ClientFaultPlan one;
    one.disconnectAfterFrames = 1;
    sim::ClientWireFaults f1(one);
    EXPECT_EQ(f1.onFrame(frame), frame); // the single promised frame
    EXPECT_TRUE(f1.onFrame(frame).empty());
}

TEST(FaultInjector, FadeWindowsAreHalfOpen)
{
    sim::FaultPlan plan;
    plan.fades.push_back({10 * sim::oneMs, 5 * sim::oneMs});
    sim::Simulator simulator(4);
    sim::FaultInjector inj(simulator, "inj", plan);
    EXPECT_FALSE(inj.inFade(10 * sim::oneMs - 1));
    EXPECT_TRUE(inj.inFade(10 * sim::oneMs));
    EXPECT_TRUE(inj.inFade(15 * sim::oneMs - 1));
    EXPECT_FALSE(inj.inFade(15 * sim::oneMs));
    EXPECT_TRUE(inj.inFadeSeconds(0.012));
}

TEST(FaultInjector, BrownOutFiresAtTickAndAtInstruction)
{
    sim::FaultPlan plan;
    plan.brownOutAtTick = {5 * sim::oneMs, 9 * sim::oneMs};
    plan.brownOutAtInstr = 10;
    sim::Simulator simulator(6);
    sim::FaultInjector inj(simulator, "inj", plan);
    int fired = 0;
    inj.armBrownOuts([&fired] { ++fired; });
    simulator.runFor(4 * sim::oneMs);
    EXPECT_EQ(fired, 0);
    simulator.runFor(6 * sim::oneMs);
    EXPECT_EQ(fired, 2);
    for (int i = 0; i < 30; ++i)
        inj.onInstruction();
    EXPECT_EQ(fired, 3); // instruction trigger is one-shot
    EXPECT_EQ(inj.stats().brownOutsForced, 3u);
}

TEST(FadedHarvester, BlanksTheSupplyDuringFades)
{
    energy::TheveninHarvester base(3.0, 200.0);
    sim::FaultPlan plan;
    plan.fades.push_back({10 * sim::oneMs, 10 * sim::oneMs});
    sim::Simulator simulator(7);
    sim::FaultInjector inj(simulator, "inj", plan);
    energy::FadedHarvester faded(base, inj);
    EXPECT_GT(faded.currentInto(1.0, 0.005), 0.0);
    EXPECT_EQ(faded.currentInto(1.0, 0.015), 0.0);
    EXPECT_EQ(faded.openCircuitVoltage(0.015), 0.0);
    EXPECT_NEAR(faded.openCircuitVoltage(0.025), 3.0, 1e-9);
}

/** Count every event the parser dispatches. */
struct EventCounter
{
    int asserts = 0, bkpts = 0, begins = 0, ends = 0;
    int printfs = 0, reads = 0, acks = 0, waits = 0;

    void
    attach(ProtocolEngine &engine)
    {
        engine.handlers.assertFail = [this](std::uint16_t) {
            ++asserts;
        };
        engine.handlers.bkptHit = [this](std::uint16_t) { ++bkpts; };
        engine.handlers.guardBegin = [this] { ++begins; };
        engine.handlers.guardEnd = [this] { ++ends; };
        engine.handlers.printfText = [this](const std::string &) {
            ++printfs;
        };
        engine.handlers.readReply =
            [this](const std::vector<std::uint8_t> &) { ++reads; };
        engine.handlers.writeAck = [this] { ++acks; };
        engine.handlers.waitRestore = [this] { ++waits; };
    }

    int
    total() const
    {
        return asserts + bkpts + begins + ends + printfs + reads +
               acks + waits;
    }
};

TEST(ProtocolFuzz, PureNoiseNeverCrashesAndParserRecovers)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ProtocolEngine engine;
        engine.setInterByteTimeout(2 * sim::oneMs);
        EventCounter events;
        events.attach(engine);
        sim::Rng rng(seed);
        sim::Tick t = 0;
        for (int i = 0; i < 20000; ++i)
            engine.onByte(
                static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                t += 10 * sim::oneUs);
        const auto &s = engine.stats();
        // Random noise contains frame-shaped runs whose CRC matches
        // 1/256 of the time; anything dispatched was a valid frame.
        EXPECT_GT(s.strayBytes, 0u);
        // After arbitrary garbage plus a link-silence gap, one clean
        // frame must parse: no permanent desync.
        int before = events.asserts;
        t += 10 * sim::oneMs;
        for (std::uint8_t b :
             buildFrame({proto::msgAssertFail, 0x34, 0x12}))
            engine.onByte(b, t += 10 * sim::oneUs);
        EXPECT_EQ(events.asserts, before + 1)
            << "seed " << seed << " left the parser desynced";
    }
}

TEST(ProtocolFuzz, FaultedFrameStreamNeverDesyncsPermanently)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        sim::Simulator simulator(seed);
        sim::FaultPlan plan;
        plan.seed = seed * 101;
        plan.uartCorruptProb = 0.05;
        plan.uartDropProb = 0.05;
        plan.uartDupProb = 0.02;
        sim::FaultInjector inj(simulator, "inj", plan);
        ProtocolEngine engine;
        engine.setInterByteTimeout(2 * sim::oneMs);
        EventCounter events;
        events.attach(engine);
        sim::Tick t = 0;
        const int frames = 500;
        for (int i = 0; i < frames; ++i) {
            for (std::uint8_t b :
                 buildFrame({proto::msgGuardBegin})) {
                auto r = inj.onWire(b);
                for (int k = 0; k < r.count; ++k)
                    engine.onByte(r.bytes[k], t += 100 * sim::oneUs);
            }
            t += 5 * sim::oneMs; // inter-frame gap beats the timeout
        }
        // Most frames survive a ~12% per-frame fault rate, and every
        // lost frame is accounted for as a CRC error or resync --
        // never a hang and never a spurious different event type.
        EXPECT_GT(events.begins, frames / 2);
        EXPECT_LT(events.begins, frames + 1);
        int before = events.begins;
        t += 10 * sim::oneMs;
        for (std::uint8_t b : buildFrame({proto::msgGuardBegin}))
            engine.onByte(b, t += 100 * sim::oneUs);
        EXPECT_EQ(events.begins, before + 1)
            << "seed " << seed << " left the parser desynced";
    }
}

TEST(ProtocolFuzz, SingleBitFlipsNeverDispatchAndNeverWedge)
{
    // CRC-8 (poly 0x07) detects every single-bit error, so a frame
    // with any one bit flipped must be rejected — and the parser must
    // be back in sync after a link-silence gap, every time.
    ProtocolEngine engine;
    engine.setInterByteTimeout(2 * sim::oneMs);
    EventCounter events;
    events.attach(engine);
    std::vector<std::uint8_t> clean =
        buildFrame({proto::msgGuardBegin});
    sim::Tick t = 0;
    for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
        std::vector<std::uint8_t> mangled = clean;
        mangled[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        for (std::uint8_t b : mangled)
            engine.onByte(b, t += 10 * sim::oneUs);
        t += 5 * sim::oneMs; // silence beats the inter-byte timeout
        int before = events.begins;
        for (std::uint8_t b : clean)
            engine.onByte(b, t += 10 * sim::oneUs);
        EXPECT_EQ(events.begins, before + 1) << "bit " << bit;
    }
    // Every dispatched event came from the clean frames alone.
    EXPECT_EQ(events.total(), events.begins);
    const auto &s = engine.stats();
    EXPECT_GT(s.crcErrors + s.strayBytes + s.resyncs, 0u);
}

TEST(ProtocolFuzz, TruncatedFramesExpireWithinOneTimeout)
{
    ProtocolEngine engine;
    const sim::Tick timeout = 2 * sim::oneMs;
    engine.setInterByteTimeout(timeout);
    EventCounter events;
    events.attach(engine);
    std::vector<std::uint8_t> clean =
        buildFrame({proto::msgAssertFail, 0x34, 0x12});
    sim::Tick t = 0;
    int rounds = 0;
    for (std::size_t cut = 1; cut < clean.size(); ++cut, ++rounds) {
        for (std::size_t i = 0; i < cut; ++i)
            engine.onByte(clean[i], t += 10 * sim::oneUs);
        EXPECT_TRUE(engine.midFrame()) << "cut " << cut;
        // Bounded-time resync: one inter-byte timeout later the
        // half-frame is dead and a clean frame parses immediately.
        t += timeout + sim::oneUs;
        for (std::uint8_t b : clean)
            engine.onByte(b, t += 10 * sim::oneUs);
        EXPECT_EQ(events.asserts, rounds + 1) << "cut " << cut;
        EXPECT_FALSE(engine.midFrame());
    }
    EXPECT_GE(engine.stats().resyncs,
              static_cast<std::uint64_t>(rounds));
    EXPECT_EQ(events.total(), events.asserts);
}

/** Target + EDB on a bench supply, stopped at an assert. */
struct SessionRig
{
    sim::Simulator sim{55};
    energy::TheveninHarvester supply{3.0, 200.0};
    target::Wisp wisp;
    EdbBoard board;

    SessionRig()
        : wisp(sim, "wisp", &supply, nullptr),
          board(sim, "edb", wisp)
    {
        wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r0, 0x5000
    la   r1, 0xCAFE
    stw  r1, [r0]
    li   r1, 7
    call edb_assert_fail
    halt
)" + runtime::libedbSource()));
        wisp.start();
    }
};

TEST(DeadLink, SessionReadAndWriteTimeOutWithBoundedRetries)
{
    SessionRig rig;
    ASSERT_TRUE(rig.board.waitForSession(sim::oneSec));
    auto *session = rig.board.session();

    // Healthy link first.
    auto value = session->read32(0x5000);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 0xCAFEu);

    // Kill the link in both directions.
    sim::FaultPlan dead;
    dead.uartDropProb = 1.0;
    sim::FaultInjector inj(rig.sim, "inj", dead);
    rig.board.injectFaults(&inj);

    sim::Tick start = rig.sim.now();
    EXPECT_FALSE(session->read32(0x5000, 100 * sim::oneMs)
                     .has_value());
    EXPECT_FALSE(session->write32(0x5004, 1, 100 * sim::oneMs));
    // The retry budget bounds the wall-clock cost: both calls gave
    // up, they did not hang.
    EXPECT_LT(rig.sim.now() - start, sim::oneSec);
    EXPECT_GE(rig.board.linkStats().readRetries, 1u);
    EXPECT_GE(rig.board.linkStats().writeRetries, 1u);
    EXPECT_TRUE(session->open());

    // Link heals: the same session keeps working.
    rig.board.injectFaults(nullptr);
    value = session->read32(0x5000);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 0xCAFEu);
    session->resume();
    EXPECT_TRUE(rig.board.waitPassive(sim::oneSec));
    EXPECT_FALSE(session->open());
}

TEST(DeadLink, LostEventFrameAbortsEpisodeInsteadOfHanging)
{
    SessionRig rig;
    // Dead from the start: the request line rises but every UART
    // byte is dropped, so the event frame never arrives.
    sim::FaultPlan dead;
    dead.uartDropProb = 1.0;
    sim::FaultInjector inj(rig.sim, "inj", dead);
    rig.board.injectFaults(&inj);

    EXPECT_FALSE(rig.board.waitForSession(sim::oneSec));
    EXPECT_GE(rig.board.linkStats().probes, 1u);
    EXPECT_GE(rig.board.linkStats().abortedEpisodes, 1u);
    // Each abandoned episode left a durable trace record (the board
    // re-arms afterwards, so lastAbortReason() may already belong to
    // a newer episode attempt).
    bool traced = false;
    for (const auto &e :
         rig.board.traceBuffer().ofKind(trace::Kind::Generic))
        traced |= e.text == "abort-link-dead";
    EXPECT_TRUE(traced);
    // The board is not wedged: it re-armed and keeps monitoring.
    rig.board.pumpFor(100 * sim::oneMs);
}

TEST(DeadLink, CorruptedLinkStillOpensSessionsEventually)
{
    SessionRig rig;
    sim::FaultPlan lossy;
    lossy.seed = 9;
    lossy.uartCorruptProb = 0.02;
    lossy.uartDupProb = 0.02;
    sim::FaultInjector inj(rig.sim, "inj", lossy);
    rig.board.injectFaults(&inj);

    ASSERT_TRUE(rig.board.waitForSession(5 * sim::oneSec));
    auto *session = rig.board.session();
    auto value = session->read32(0x5000, sim::oneSec);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 0xCAFEu);
    session->resume();
    EXPECT_TRUE(rig.board.waitPassive(5 * sim::oneSec));
}

TEST(ProtocolFuzz, TargetParserSurvivesCrcFlipsAndTruncation)
{
    // Same hardening, target side: the firmware's __edb_rx_frame
    // (runtime/libedb.cc) must discard a CRC-flipped frame and slide
    // past a truncated one without wedging the open session. The
    // board's bounded read retries absorb whatever the garbage eats.
    SessionRig rig;
    ASSERT_TRUE(rig.board.waitForSession(sim::oneSec));
    auto *session = rig.board.session();
    ASSERT_EQ(session->read32(0x5000).value_or(0), 0xCAFEu);

    auto injectRaw = [&rig](std::vector<std::uint8_t> bytes) {
        for (std::uint8_t b : bytes)
            rig.wisp.debugPort().uart().receiveByte(b);
        rig.board.pumpFor(10 * sim::oneMs);
    };
    // Full frame, one CRC bit flipped: silently discarded.
    std::vector<std::uint8_t> bad =
        buildFrame({proto::cmdStatus});
    bad.back() ^= 0x01;
    injectRaw(bad);
    EXPECT_EQ(session->read32(0x5000, sim::oneSec).value_or(0),
              0xCAFEu);

    // Truncated frame: SYNC + LEN promising 6 bytes, then silence.
    // The next real command is partially eaten; the retry budget
    // recovers within its bounded window instead of hanging.
    injectRaw({proto::syncByte, 6, 0x01});
    EXPECT_EQ(session->read32(0x5000, sim::oneSec).value_or(0),
              0xCAFEu);
    EXPECT_TRUE(session->open());
    session->resume();
    EXPECT_TRUE(rig.board.waitPassive(5 * sim::oneSec));
}

TEST(FaultInjector, DisabledInjectorIsBitIdenticalToNoInjector)
{
    // The zero-cost-when-off guarantee: a full save/tether/session/
    // restore cycle runs tick-for-tick identically whether a
    // disabled injector is attached or no injector exists at all.
    struct Result
    {
        sim::Tick halted;
        double saved, restored;
        std::uint64_t frames;

        bool
        operator==(const Result &o) const
        {
            return halted == o.halted && saved == o.saved &&
                   restored == o.restored && frames == o.frames;
        }
    };
    auto run = [](bool attach_disabled_injector) {
        SessionRig rig;
        sim::FaultPlan off;
        off.enabled = false;
        off.uartCorruptProb = 1.0; // would be catastrophic if live
        off.uartDropProb = 1.0;
        off.adcGlitchProb = 1.0;
        sim::FaultInjector inj(rig.sim, "inj", off);
        if (attach_disabled_injector)
            rig.board.injectFaults(&inj);
        EXPECT_TRUE(rig.board.waitForSession(sim::oneSec));
        rig.board.session()->read32(0x5000);
        rig.board.session()->resume();
        rig.board.pumpUntil(
            [&rig] {
                return rig.wisp.state() == mcu::McuState::Halted;
            },
            sim::oneSec);
        return Result{rig.sim.now(), rig.board.lastSavedVolts(),
                      rig.board.lastRestoredVolts(),
                      rig.board.protocolEngine().stats().framesOk};
    };
    EXPECT_TRUE(run(true) == run(false));
}

TEST(FaultedRun, ForcedBrownOutRebootsLinkedListApp)
{
    sim::Simulator simulator(88);
    energy::TheveninHarvester supply(3.0, 200.0);
    sim::FaultPlan plan;
    plan.brownOutAtTick = {40 * sim::oneMs};
    sim::FaultInjector inj(simulator, "inj", plan);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    inj.armBrownOuts([&wisp] {
        wisp.power().capacitor().setVoltage(0.5);
    });
    simulator.runFor(sim::oneSec);
    EXPECT_EQ(inj.stats().brownOutsForced, 1u);
    EXPECT_GE(wisp.power().brownOutCount(), 1u);
    EXPECT_GE(wisp.power().bootCount(), 2u);
}

} // namespace
