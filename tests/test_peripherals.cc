/**
 * @file
 * Unit tests for the target's peripherals: GPIO, UART, I2C, ADC,
 * LED, debug port, accelerometer.
 */

#include <gtest/gtest.h>

#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "mcu/mmio_map.hh"
#include "sensors/accelerometer.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;
namespace m = edb::mcu::mmio;

namespace {

struct PeriphRig
{
    sim::Simulator sim{29};
    energy::TheveninHarvester supply{3.0, 50.0};
    target::Wisp wisp;

    PeriphRig() : wisp(sim, "wisp", &supply, nullptr) {}

    /** Direct MMIO access (as the core would). */
    void
    poke(std::uint32_t addr, std::uint32_t value)
    {
        wisp.memoryMap().write32(addr, value);
    }

    std::uint32_t
    peek(std::uint32_t addr)
    {
        std::uint32_t v = 0;
        wisp.memoryMap().read32(addr, v);
        return v;
    }
};

TEST(Gpio, OutputAndToggle)
{
    PeriphRig rig;
    rig.poke(m::gpioOut, 0b101);
    EXPECT_EQ(rig.wisp.gpio().output(), 0b101u);
    EXPECT_TRUE(rig.wisp.gpio().pin(0));
    EXPECT_FALSE(rig.wisp.gpio().pin(1));
    rig.poke(m::gpioToggle, 0b011);
    EXPECT_EQ(rig.wisp.gpio().output(), 0b110u);
    EXPECT_EQ(rig.peek(m::gpioOut), 0b110u);
}

TEST(Gpio, ListenersSeeEachChangedPin)
{
    PeriphRig rig;
    std::vector<std::pair<unsigned, bool>> events;
    rig.wisp.gpio().addListener(
        [&events](unsigned pin, bool level, sim::Tick) {
            events.emplace_back(pin, level);
        });
    rig.poke(m::gpioOut, 0b11);
    rig.poke(m::gpioOut, 0b01);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0], (std::pair<unsigned, bool>{0, true}));
    EXPECT_EQ(events[1], (std::pair<unsigned, bool>{1, true}));
    EXPECT_EQ(events[2], (std::pair<unsigned, bool>{1, false}));
}

TEST(Gpio, InputsReadable)
{
    PeriphRig rig;
    rig.wisp.gpio().setInput(3, true);
    EXPECT_EQ(rig.peek(m::gpioIn), 8u);
    rig.wisp.gpio().setInput(3, false);
    EXPECT_EQ(rig.peek(m::gpioIn), 0u);
}

TEST(Gpio, PowerLossDropsOutputs)
{
    PeriphRig rig;
    rig.poke(m::gpioOut, 0xFF);
    rig.wisp.gpio().powerLost();
    EXPECT_EQ(rig.wisp.gpio().output(), 0u);
}

TEST(Uart, TransmitTimingAndBusyFlag)
{
    PeriphRig rig;
    std::vector<std::uint8_t> wire;
    sim::Tick done_at = 0;
    rig.wisp.uart().addTxListener(
        [&](std::uint8_t byte, sim::Tick when) {
            wire.push_back(byte);
            done_at = when;
        });
    rig.poke(m::uart0Tx, 'X');
    EXPECT_TRUE(rig.wisp.uart().txBusy());
    EXPECT_EQ(rig.peek(m::uart0Status) & 1u, 1u);
    rig.sim.runFor(rig.wisp.uart().byteTime() + sim::oneUs);
    EXPECT_FALSE(rig.wisp.uart().txBusy());
    ASSERT_EQ(wire.size(), 1u);
    EXPECT_EQ(wire[0], 'X');
    // 10 bits at 115200 baud ~ 86.8 us.
    EXPECT_NEAR(sim::microsFromTicks(done_at), 86.8, 1.0);
}

TEST(Uart, WriteWhileBusyIsDropped)
{
    PeriphRig rig;
    rig.poke(m::uart0Tx, 'A');
    rig.poke(m::uart0Tx, 'B');
    rig.sim.runFor(sim::oneMs);
    EXPECT_EQ(rig.wisp.uart().transmittedBytes(), 1u);
    EXPECT_EQ(rig.wisp.uart().droppedBytes(), 1u);
}

TEST(Uart, TxDrawsExtraCurrentOnlyWhileShifting)
{
    PeriphRig rig;
    double idle = rig.wisp.power().totalLoadAmps();
    rig.poke(m::uart0Tx, 'Q');
    double busy = rig.wisp.power().totalLoadAmps();
    EXPECT_GT(busy, idle);
    rig.sim.runFor(sim::oneMs);
    EXPECT_DOUBLE_EQ(rig.wisp.power().totalLoadAmps(), idle);
}

TEST(Uart, RxFifoAndOverflow)
{
    PeriphRig rig;
    for (int i = 0; i < 20; ++i)
        rig.wisp.uart().receiveByte(
            static_cast<std::uint8_t>('a' + i));
    // Depth 16: the oldest bytes were dropped.
    EXPECT_EQ(rig.wisp.uart().rxAvailable(), 16u);
    EXPECT_EQ(rig.peek(m::uart0Status) & 2u, 2u);
    EXPECT_EQ(rig.peek(m::uart0Rx), static_cast<std::uint32_t>('e'));
    EXPECT_EQ(rig.wisp.uart().rxAvailable(), 15u);
}

TEST(Uart, PowerLossAbortsShift)
{
    PeriphRig rig;
    int delivered = 0;
    rig.wisp.uart().addTxListener(
        [&delivered](std::uint8_t, sim::Tick) { ++delivered; });
    rig.poke(m::uart0Tx, 'Z');
    rig.wisp.uart().powerLost();
    rig.sim.runFor(sim::oneMs);
    EXPECT_EQ(delivered, 0);
    EXPECT_FALSE(rig.wisp.uart().txBusy());
}

TEST(I2c, ReadTransactionReachesDevice)
{
    PeriphRig rig;
    rig.poke(m::i2cAddr, rig.wisp.accelerometer().address());
    rig.poke(m::i2cReg, sensors::accel_reg::whoAmI);
    rig.poke(m::i2cCtrl, 1);
    EXPECT_EQ(rig.peek(m::i2cStatus) & 1u, 1u); // busy
    rig.sim.runFor(rig.wisp.i2c().transactionTime() + sim::oneUs);
    EXPECT_EQ(rig.peek(m::i2cStatus) & 2u, 2u); // done
    EXPECT_EQ(rig.peek(m::i2cData), 0x2Au);
}

TEST(I2c, WriteTransactionReachesDevice)
{
    PeriphRig rig;
    rig.poke(m::i2cAddr, rig.wisp.accelerometer().address());
    rig.poke(m::i2cReg, sensors::accel_reg::ctrl);
    rig.poke(m::i2cData, 0x5A);
    rig.poke(m::i2cCtrl, 2);
    rig.sim.runFor(sim::oneMs);
    EXPECT_EQ(rig.wisp.accelerometer().readReg(
                  sensors::accel_reg::ctrl),
              0x5A);
}

TEST(I2c, MissingDeviceReadsFF)
{
    PeriphRig rig;
    rig.poke(m::i2cAddr, 0x55); // nobody home
    rig.poke(m::i2cReg, 0);
    rig.poke(m::i2cCtrl, 1);
    rig.sim.runFor(sim::oneMs);
    EXPECT_EQ(rig.peek(m::i2cData), 0xFFu);
}

TEST(I2c, SnifferSeesTransactions)
{
    PeriphRig rig;
    int sniffs = 0;
    std::uint8_t seen_addr = 0;
    bool seen_read = false;
    rig.wisp.i2c().addSniffer([&](std::uint8_t addr, std::uint8_t,
                                  std::uint8_t, bool is_read,
                                  sim::Tick) {
        ++sniffs;
        seen_addr = addr;
        seen_read = is_read;
    });
    rig.poke(m::i2cAddr, 0x1D);
    rig.poke(m::i2cReg, 0);
    rig.poke(m::i2cCtrl, 1);
    rig.sim.runFor(sim::oneMs);
    EXPECT_EQ(sniffs, 1);
    EXPECT_EQ(seen_addr, 0x1D);
    EXPECT_TRUE(seen_read);
}

TEST(Adc, ConversionTimingAndValue)
{
    PeriphRig rig;
    rig.sim.runFor(100 * sim::oneMs); // let Vcap charge to ~3.0 V
    rig.poke(m::adcCtrl, 0);          // channel 0 = Vcap
    EXPECT_EQ(rig.peek(m::adcStatus) & 1u, 1u);
    rig.sim.runFor(rig.wisp.config().adc.conversionTime + sim::oneUs);
    EXPECT_EQ(rig.peek(m::adcStatus) & 2u, 2u);
    double vcap = rig.wisp.power().voltage();
    double measured = rig.peek(m::adcValue) * 3.0 / 4095.0;
    EXPECT_NEAR(measured, vcap, 0.01);
}

TEST(Adc, UnknownChannelReadsZero)
{
    PeriphRig rig;
    rig.poke(m::adcCtrl, 9);
    rig.sim.runFor(sim::oneMs);
    EXPECT_EQ(rig.peek(m::adcValue), 0u);
}

TEST(Adc, QuantizeClampsToFullScale)
{
    PeriphRig rig;
    EXPECT_EQ(rig.wisp.adc().quantize(-1.0), 0u);
    EXPECT_EQ(rig.wisp.adc().quantize(99.0),
              rig.wisp.adc().fullScale());
}

TEST(Led, LoadFollowsState)
{
    PeriphRig rig;
    double idle = rig.wisp.power().totalLoadAmps();
    rig.poke(m::led, 1);
    EXPECT_TRUE(rig.wisp.led().lit());
    EXPECT_NEAR(rig.wisp.power().totalLoadAmps() - idle,
                rig.wisp.config().ledAmps, 1e-12);
    rig.poke(m::led, 0);
    EXPECT_DOUBLE_EQ(rig.wisp.power().totalLoadAmps(), idle);
    EXPECT_EQ(rig.wisp.led().blinkCount(), 1u);
}

TEST(DebugPort, MarkerPulsesWithIds)
{
    PeriphRig rig;
    std::vector<std::uint32_t> ids;
    rig.wisp.debugPort().addMarkerListener(
        [&ids](std::uint32_t id, sim::Tick) { ids.push_back(id); });
    rig.poke(m::marker, 5);
    rig.poke(m::marker, 0);  // id 0: no pulse
    rig.poke(m::marker, 15);
    EXPECT_EQ(ids, (std::vector<std::uint32_t>{5, 15}));
    EXPECT_EQ(rig.wisp.debugPort().markerCount(), 2u);
}

TEST(DebugPort, ReqLineEdgesNotified)
{
    PeriphRig rig;
    std::vector<bool> edges;
    rig.wisp.debugPort().addReqListener(
        [&edges](bool level, sim::Tick) { edges.push_back(level); });
    rig.poke(m::dbgReq, 1);
    rig.poke(m::dbgReq, 1); // no change, no edge
    rig.poke(m::dbgReq, 0);
    EXPECT_EQ(edges, (std::vector<bool>{true, false}));
    EXPECT_FALSE(rig.wisp.debugPort().reqLevel());
}

TEST(DebugPort, BreakpointMaskVisibleToTarget)
{
    PeriphRig rig;
    rig.wisp.debugPort().setBreakpointMask(0b1010);
    EXPECT_EQ(rig.peek(m::bkptMask), 0b1010u);
}

TEST(DebugPort, PowerLossDropsReqLine)
{
    PeriphRig rig;
    rig.poke(m::dbgReq, 1);
    rig.wisp.debugPort().powerLost();
    EXPECT_FALSE(rig.wisp.debugPort().reqLevel());
}

TEST(Accelerometer, IdentityAndLatching)
{
    sim::Simulator simulator(3);
    sensors::Accelerometer accel(simulator, "accel");
    EXPECT_EQ(accel.readReg(sensors::accel_reg::whoAmI), 0x2A);
    EXPECT_EQ(accel.sampleCount(), 0u);
    accel.readReg(sensors::accel_reg::xHi); // latches
    EXPECT_EQ(accel.sampleCount(), 1u);
    accel.readReg(sensors::accel_reg::xLo); // no new latch
    EXPECT_EQ(accel.sampleCount(), 1u);
}

TEST(Accelerometer, StationaryVsMovingVariance)
{
    sim::Simulator simulator(4);
    sensors::AccelConfig config;
    config.meanDwell = 100 * sim::oneMs;
    sensors::Accelerometer accel(simulator, "accel", config);
    double still_dev = 0, moving_dev = 0;
    int still_n = 0, moving_n = 0;
    for (int i = 0; i < 400; ++i) {
        simulator.runFor(10 * sim::oneMs);
        bool truth = accel.moving();
        auto hi = accel.readReg(sensors::accel_reg::xHi);
        auto lo = accel.readReg(sensors::accel_reg::xLo);
        auto x = static_cast<std::int16_t>((hi << 8) | lo);
        if (truth) {
            moving_dev += std::abs(x);
            ++moving_n;
        } else {
            still_dev += std::abs(x);
            ++still_n;
        }
    }
    ASSERT_GT(still_n, 20);
    ASSERT_GT(moving_n, 20);
    EXPECT_GT(moving_dev / moving_n, 4.0 * (still_dev / still_n));
}

TEST(Accelerometer, GravityOnZAxis)
{
    sim::Simulator simulator(5);
    sensors::AccelConfig config;
    config.stillSigma = 0.0;
    config.movingSigma = 0.0;
    sensors::Accelerometer accel(simulator, "accel", config);
    accel.readReg(sensors::accel_reg::xHi);
    auto hi = accel.readReg(sensors::accel_reg::zHi);
    auto lo = accel.readReg(sensors::accel_reg::zLo);
    auto z = static_cast<std::int16_t>((hi << 8) | lo);
    EXPECT_EQ(z, config.gravityCounts);
}

} // namespace
