/**
 * @file
 * Device-assembly tests: the Wisp's memory layout, flash semantics,
 * reset plumbing, and electrical constants; plus disassembler
 * round-trips over the real application binaries.
 */

#include <gtest/gtest.h>

#include "apps/activity.hh"
#include "apps/fibonacci.hh"
#include "apps/linked_list.hh"
#include "apps/rfid_firmware.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

struct WispRig
{
    sim::Simulator sim{111};
    energy::TheveninHarvester supply{3.0, 50.0};
    target::Wisp wisp;

    WispRig() : wisp(sim, "wisp", &supply, nullptr) {}
};

TEST(WispLayout, MemoryMapMatchesPaperDeviceClass)
{
    WispRig rig;
    auto &map = rig.wisp.memoryMap();
    ASSERT_EQ(map.regions().size(), 3u);
    EXPECT_EQ(map.find(target::layout::sramBase)->kind(),
              mem::RegionKind::Sram);
    EXPECT_EQ(map.find(target::layout::framBase)->kind(),
              mem::RegionKind::Fram);
    EXPECT_EQ(map.find(0xF000)->kind(), mem::RegionKind::Mmio);
    // Address 0 (the NULL page) is intentionally unmapped: wild
    // NULL-derived writes fault, as in the paper's case study.
    EXPECT_EQ(map.find(0x0000), nullptr);
    EXPECT_EQ(target::layout::stackTop,
              target::layout::sramBase + target::layout::sramSize);
}

TEST(WispLayout, ElectricalConstantsMatchPaperSection51)
{
    WispRig rig;
    const auto &power = rig.wisp.power().config();
    EXPECT_DOUBLE_EQ(power.capacitanceF, 47e-6);
    EXPECT_DOUBLE_EQ(power.turnOnVolts, 2.4);
    EXPECT_DOUBLE_EQ(power.brownOutVolts, 1.8);
    EXPECT_DOUBLE_EQ(rig.wisp.config().mcu.activeAmps, 0.5e-3);
    EXPECT_DOUBLE_EQ(rig.wisp.config().mcu.clockHz, 4e6);
}

TEST(WispFlash, ReflashResetsCheckpointSlots)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    sim::Simulator simulator(112);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr, config);
    wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    li   r5, 7
    chkpt
    halt
)"));
    wisp.start();
    simulator.runFor(50 * sim::oneMs);
    ASSERT_EQ(wisp.mcu().checkpointCount(), 1u);

    // Re-flash a different program: stale checkpoints must not be
    // restored into it.
    wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    la   r1, 0x5000
    stw  r5, [r1]          ; r5 must be 0 on a fresh boot
    halt
)"));
    wisp.power().capacitor().setVoltage(0.5);
    simulator.runFor(300 * sim::oneMs);
    ASSERT_EQ(wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5000), 0u);
    EXPECT_EQ(wisp.mcu().restoreCount(), 0u);
}

TEST(WispReset, PeripheralsClearedOnBrownOut)
{
    WispRig rig;
    rig.wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    la   r0, 0xF080        ; LED on
    li   r1, 1
    stw  r1, [r0]
    la   r0, 0xF000        ; GPIO out
    li   r1, 0xFF
    stw  r1, [r0]
    br   main
)"));
    rig.wisp.start();
    rig.sim.runFor(50 * sim::oneMs);
    ASSERT_TRUE(rig.wisp.led().lit());
    ASSERT_NE(rig.wisp.gpio().output(), 0u);
    rig.wisp.power().capacitor().setVoltage(0.5);
    rig.sim.runFor(sim::oneMs);
    EXPECT_FALSE(rig.wisp.led().lit());
    EXPECT_EQ(rig.wisp.gpio().output(), 0u);
    EXPECT_FALSE(rig.wisp.debugPort().reqLevel());
}

TEST(WispAdc, SelfMeasurementChannelReadsVcap)
{
    WispRig rig;
    rig.sim.runFor(200 * sim::oneMs);
    double vcap = rig.wisp.power().voltage();
    // Channel 0 is wired to the storage capacitor.
    auto code = rig.wisp.adc().quantize(vcap);
    EXPECT_NEAR(code * 3.0 / 4095.0, vcap, 0.01);
}

/** Disassembler round-trip over real application images. */
class AppDisassembly
    : public ::testing::TestWithParam<const char *>
{
  protected:
    isa::Program
    build() const
    {
        std::string which = GetParam();
        if (which == "linked_list")
            return apps::buildLinkedListApp({true, true, false});
        if (which == "fibonacci")
            return apps::buildFibonacciApp({true, true, false, 100});
        if (which == "activity") {
            return apps::buildActivityApp(
                {apps::ActivityOutput::UartPrintf, true, 8, 350});
        }
        return apps::buildRfidFirmware({true, 50});
    }
};

TEST_P(AppDisassembly, EveryCodeWordDecodesAndReencodes)
{
    isa::Program program = build();
    // Code occupies the image up to the first data label; here we
    // simply decode every word and, whenever it decodes, require an
    // exact re-encode (data words that alias opcodes still satisfy
    // this since encode(decode(w)) is canonical for real opcodes).
    std::size_t decoded = 0;
    for (const auto &seg : program.segments) {
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            std::uint32_t word = 0;
            for (int b = 0; b < 4; ++b) {
                word |= std::uint32_t(seg.bytes[i + b]) << (8 * b);
            }
            auto instr = isa::decode(word);
            if (!instr)
                continue;
            ++decoded;
            std::string text = isa::disassemble(*instr);
            EXPECT_FALSE(text.empty());
            // Re-encoding must be stable modulo don't-care fields.
            auto again = isa::decode(isa::encode(*instr));
            ASSERT_TRUE(again.has_value());
            EXPECT_EQ(*again, *instr);
        }
    }
    EXPECT_GT(decoded, 100u) << "image suspiciously small";
}

INSTANTIATE_TEST_SUITE_P(Apps, AppDisassembly,
                         ::testing::Values("linked_list", "fibonacci",
                                           "activity", "rfid"));

TEST(CheckpointAtomicity, CutDuringChkptKeepsOldCheckpoint)
{
    // Interrupt the (long, multi-hundred-cycle) CHKPT instruction
    // itself: the double-buffered commit must leave the previous
    // checkpoint intact and restorable.
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    sim::Simulator simulator(113);
    energy::TheveninHarvester supply(3.0, 200.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr, config);
    wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    li   r5, 1
    chkpt                  ; checkpoint A: r5 == 1
    li   r5, 2
    chkpt                  ; checkpoint B: to be interrupted
    li   r5, 3
__spin:
    br   __spin
)"));
    // Cut power mid-way through the *second* chkpt.
    int chkpts_seen = 0;
    wisp.mcu().setTracer(
        [&](mem::Addr, const isa::Instr &instr) {
            if (instr.op == isa::Opcode::Chkpt &&
                ++chkpts_seen == 2) {
                // The tracer fires after the instruction's power
                // draw was survived, so sabotage the *next* one by
                // faking an immediate brown-out via the comparator:
                wisp.power().capacitor().setVoltage(0.5);
            }
        });
    wisp.start();
    simulator.runFor(400 * sim::oneMs);
    // After recovery the device restored *some* checkpoint and is
    // spinning; r5 must be 2 (checkpoint B committed: our cut
    // happened after its instruction survived) or 1 (B torn, A
    // restored) -- never a torn mixture, never entry-from-main
    // with r5 clobbered mid-sequence.
    ASSERT_EQ(wisp.state(), mcu::McuState::Running);
    EXPECT_GT(wisp.mcu().restoreCount(), 0u);
    std::uint32_t r5 = wisp.mcu().reg(5);
    EXPECT_TRUE(r5 == 3u || r5 == 2u) << "r5=" << r5;
}

} // namespace
