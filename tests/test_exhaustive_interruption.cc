/**
 * @file
 * Exhaustive interruption-point coverage for the linked-list case
 * study (paper Fig 3 / Section 5.3.1).
 *
 * The paper reasons about *one* vulnerability window; this test
 * checks *all of them*: for every instruction boundary k in the
 * app's startup and first few iterations, force a power failure
 * exactly after instruction k, let the device recover, and verify
 * that
 *
 *   (1) soundness  — execution never reaches undefined behaviour
 *       (the keep-alive assert halts the target first), and
 *   (2) completeness — whenever the assert did NOT fire, the list
 *       invariant ("the tail pointer points to the last element")
 *       genuinely holds in FRAM.
 *
 * Together these show the Section 5.3.1 diagnosis is not a lucky
 * sample: the assert catches exactly the corrupt states, at every
 * possible interruption point.
 */

#include <gtest/gtest.h>

#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

namespace lay = apps::linked_list_layout;

/** Does FRAM satisfy "tail points to the last element"? */
bool
listInvariantHolds(mcu::Mcu &mcu)
{
    std::uint32_t first = mcu.debugRead32(lay::headAddr);
    std::uint32_t tail = mcu.debugRead32(lay::tailPtrAddr);
    if (first == 0)
        return tail == lay::headAddr;
    return tail == first &&
           mcu.debugRead32(first + lay::nodeNextOff) == 0;
}

struct CutOutcome
{
    bool faulted = false;
    bool assertCaught = false;
    bool invariantOk = false;
    bool progressed = false;
};

/**
 * Run the app with the assert enabled, cut power exactly after the
 * k-th executed instruction, recover, and classify the outcome.
 */
CutOutcome
cutAfterInstruction(std::uint64_t k)
{
    sim::Simulator simulator(7777);
    energy::TheveninHarvester supply(3.0, 200.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    edbdbg::EdbBoard board(simulator, "edb", wisp);

    apps::LinkedListOptions options;
    options.withAssert = true;
    auto program = apps::buildLinkedListApp(options);
    const mem::Addr loop_top = program.symbol("main_loop");
    wisp.flash(program);

    std::uint64_t executed = 0;
    bool cut_done = false;
    unsigned loop_tops_after_cut = 0;
    bool invariant_ok_at_tops = true;
    wisp.mcu().setTracer([&](mem::Addr pc, const isa::Instr &) {
        if (!cut_done) {
            if (++executed == k) {
                // Drop Vcap below brown-out: the k-th instruction
                // still commits; the k+1-th never does.
                wisp.power().capacitor().setVoltage(0.5);
                cut_done = true;
            }
            return;
        }
        // After recovery, audit the invariant exactly where the
        // assert checks it: at the top of the main loop. (It is
        // *transiently* false inside every append -- that is the
        // whole point of the bug -- so mid-iteration sampling would
        // be meaningless.)
        if (pc == loop_top) {
            ++loop_tops_after_cut;
            if (!listInvariantHolds(wisp.mcu()))
                invariant_ok_at_tops = false;
        }
    });
    wisp.start();

    CutOutcome out;
    sim::Tick deadline = simulator.now() + 500 * sim::oneMs;
    while (simulator.now() < deadline) {
        simulator.runFor(sim::oneMs);
        if (wisp.mcu().faultCount() > 0) {
            out.faulted = true;
            return out;
        }
        if (board.session() && board.session()->open()) {
            out.assertCaught = true;
            return out;
        }
        if (loop_tops_after_cut >= 5) {
            out.progressed = true;
            out.invariantOk = invariant_ok_at_tops;
            return out;
        }
    }
    // Never reached the cut or made little progress; judge what we
    // saw at the loop tops anyway.
    out.progressed = loop_tops_after_cut > 0;
    out.invariantOk = invariant_ok_at_tops;
    return out;
}

/** Sweep ranges of instruction indices (parameterized shards). */
class ExhaustiveCut
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(ExhaustiveCut, AssertShieldsEveryInterruptionPoint)
{
    auto [lo, hi] = GetParam();
    for (int k = lo; k < hi; ++k) {
        CutOutcome out = cutAfterInstruction(k);
        // Soundness: undefined behaviour is never reached.
        EXPECT_FALSE(out.faulted) << "wild write escaped at k=" << k;
        // Completeness: silent runs really are consistent at every
        // loop top the assert would have checked.
        if (!out.assertCaught) {
            EXPECT_TRUE(out.invariantOk)
                << "silent corruption at k=" << k;
        }
    }
}

TEST(ExhaustiveCutCoverage, SomeCutsActuallyCorrupt)
{
    // The sweep must include real vulnerability windows: across the
    // iteration region, several cuts trigger the assert.
    int caught = 0;
    for (int k = 40; k < 190; k += 1)
        caught += cutAfterInstruction(k).assertCaught;
    EXPECT_GE(caught, 2);
}

// Shards: startup/init, first iterations (append/remove windows),
// and a later steady-state stretch.
INSTANTIATE_TEST_SUITE_P(
    Windows, ExhaustiveCut,
    ::testing::Values(std::make_pair(1, 40),
                      std::make_pair(40, 90),
                      std::make_pair(90, 140),
                      std::make_pair(140, 190)));

} // namespace
