/**
 * @file
 * Unit tests for statistics accumulators and the trace buffer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/rng.hh"
#include "sim/logging.hh"
#include "trace/stats.hh"
#include "trace/trace.hh"

using namespace edb;
using namespace edb::trace;

namespace {

TEST(Summary, KnownValues)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyAndSingle)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, NegativeValues)
{
    Summary s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(SampleSet, QuantilesOfKnownSet)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
}

TEST(SampleSet, QuantileInterpolates)
{
    SampleSet s;
    s.add(0.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
}

TEST(SampleSet, EmptyIsSafe)
{
    SampleSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.cdfAt(1.0), 0.0);
    EXPECT_TRUE(s.cdfSeries(10).empty());
}

TEST(SampleSet, CdfMonotonic)
{
    SampleSet s;
    edb::sim::Rng rng(5);
    for (int i = 0; i < 500; ++i)
        s.add(rng.gaussian(1.0));
    double prev = -1.0;
    for (auto [x, p] : s.cdfSeries(50)) {
        EXPECT_GE(p, prev);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
    EXPECT_DOUBLE_EQ(s.cdfAt(s.quantile(1.0)), 1.0);
}

TEST(SampleSet, CdfAtCountsInclusively)
{
    SampleSet s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.cdfAt(0.5), 0.0);
    EXPECT_NEAR(s.cdfAt(2.0), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.cdfAt(10.0), 1.0);
}

TEST(SampleSet, SortedAfterInterleavedQueries)
{
    SampleSet s;
    s.add(3.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    s.add(0.5); // add after a query re-sorts lazily
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
    EXPECT_EQ(s.count(), 3u);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(100.0); // clamps to bin 9
    h.add(5.0);   // bin 5
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, RejectsBadConfig)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 10), edb::sim::FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), edb::sim::FatalError);
}

TEST(TraceBuffer, RecordsInOrderWithKinds)
{
    TraceBuffer buffer;
    buffer.push(10, Kind::EnergySample, 2.4);
    buffer.push(20, Kind::Watchpoint, 2.3, 0.0, 7);
    buffer.push(30, Kind::EnergySample, 2.2);
    EXPECT_EQ(buffer.all().size(), 3u);
    EXPECT_EQ(buffer.countOf(Kind::EnergySample), 2u);
    auto wps = buffer.ofKind(Kind::Watchpoint);
    ASSERT_EQ(wps.size(), 1u);
    EXPECT_EQ(wps[0].id, 7u);
    EXPECT_DOUBLE_EQ(wps[0].a, 2.3);
}

TEST(TraceBuffer, TapStreamsEvenWhenDisabled)
{
    TraceBuffer buffer;
    int taps = 0;
    buffer.setTap([&taps](const Record &) { ++taps; });
    buffer.setEnabled(false);
    buffer.push(1, Kind::Printf, 0, 0, 0, "hi");
    EXPECT_EQ(taps, 1);
    EXPECT_TRUE(buffer.all().empty());
    buffer.setEnabled(true);
    buffer.push(2, Kind::Printf);
    EXPECT_EQ(buffer.all().size(), 1u);
    EXPECT_EQ(taps, 2);
}

TEST(TraceBuffer, ClearEmpties)
{
    TraceBuffer buffer;
    buffer.push(1, Kind::Generic);
    buffer.clear();
    EXPECT_TRUE(buffer.all().empty());
}

TEST(TraceBuffer, CsvEscapesDelimiters)
{
    TraceBuffer buffer;
    buffer.push(sim::oneMs, Kind::Printf, 1.5, 0.0, 3, "a,b\nc");
    std::ostringstream oss;
    buffer.writeCsv(oss);
    std::string csv = oss.str();
    EXPECT_NE(csv.find("time_ms,kind,id,a,b,text"),
              std::string::npos);
    EXPECT_NE(csv.find("1,printf,3,1.5,0,a;b c"), std::string::npos);
}

TEST(TraceKinds, NamesAreStable)
{
    EXPECT_STREQ(kindName(Kind::EnergySample), "energy");
    EXPECT_STREQ(kindName(Kind::Watchpoint), "watchpoint");
    EXPECT_STREQ(kindName(Kind::RfidMessage), "rfid");
    EXPECT_STREQ(kindName(Kind::AssertFail), "assert");
    EXPECT_STREQ(kindName(Kind::EnergyGuard), "energy_guard");
    EXPECT_STREQ(kindName(Kind::PowerEvent), "power");
}

} // namespace
