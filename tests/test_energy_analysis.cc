/**
 * @file
 * Tests for the static energy-timing analyzer (src/analysis/,
 * DESIGN.md §14): cost-table exactness against live PowerSystem
 * accounting per NV technology, loop-bound inference, unbounded-loop
 * taxonomy, checkpoint-region segmentation, the must-starve rules,
 * and the Fig 9 verdicts on the shipped applications.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/analyzer.hh"
#include "analysis/cost_model.hh"
#include "apps/activity.hh"
#include "apps/fibonacci.hh"
#include "isa/assembler.hh"
#include "mcu/mmio_map.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"
#include "target/wisp.hh"

using namespace edb;
using analysis::AnalyzerOptions;
using analysis::CostModel;
using analysis::LoopKind;
using analysis::Report;
using analysis::Verdict;

namespace {

/** A wisp on an effectively infinite capacitor: no brown-outs, so
 *  simulated charge accounting is a pure function of the program. */
struct TetheredRig
{
    sim::Simulator sim{424242};
    energy::TheveninHarvester supply{3.0, 10.0};
    target::Wisp wisp;

    explicit TetheredRig(target::WispConfig config = {})
        : wisp(sim, "wisp", &supply, nullptr, tether(config))
    {
    }

    static target::WispConfig
    tether(target::WispConfig c)
    {
        c.power.capacitanceF = 1.0; // farad-scale: cannot brown out
        c.power.initialVolts = 3.0;
        c.power.maxVolts = 3.0;
        c.power.bootOnStart = true;
        c.power.harvestNoiseSigma = 0.0;
        return c;
    }

    /** Run until the core halts; returns false on timeout. The
     *  extra settle chunk moves wall-clock past the core's
     *  run-ahead slice so the power integral covers the halt tail
     *  exactly. */
    bool
    runToHalt(sim::Tick budget)
    {
        sim::Tick end = sim.now() + budget;
        while (sim.now() < end) {
            sim.runFor(sim::oneMs / 10);
            if (wisp.mcu().state() == mcu::McuState::Halted) {
                sim.runFor(sim::oneMs);
                return true;
            }
        }
        return false;
    }
};

std::string
withHeader(const std::string &body)
{
    return runtime::programHeader() + body + runtime::libedbSource();
}

Report
analyzeOn(TetheredRig &rig, const isa::Program &prog,
          const AnalyzerOptions &opt = {})
{
    CostModel m = CostModel::fromWisp(rig.wisp);
    return analysis::analyze(prog, m, opt);
}

// ------------------------------------------------------------------
// Cost-table exactness: on a straight-line program the predicted
// charge must reproduce the simulator's own accounting, for every
// NV technology (their write charge and wait states differ).

void
checkStraightLineExact(mem::NvTechConfig tech)
{
    target::WispConfig config;
    config.nvTech = tech;
    TetheredRig rig(config);
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r1, 41
    addi r1, r1, 1
    mov  r2, r1
    mul  r3, r1, r2
    la   r4, 0x5000        ; FRAM scratch
    stw  r3, [r4]          ; NV write: tech charge + wait states
    stw  r1, [r4 + 4]
    ldw  r5, [r4]
    la   r6, 0x1000        ; SRAM scratch
    stw  r5, [r6]
    ldb  r7, [r6]
    push r7
    pop  r8
    halt
)"));
    rig.wisp.flash(prog);
    rig.wisp.start();
    // Flashing invalidates both checkpoint slots, which are NV
    // writes the live accounting bills before the program exists;
    // measure relative to that baseline.
    double baseline = rig.wisp.power().cumulativeChargeOut();

    CostModel m = CostModel::fromWisp(rig.wisp);
    Report rep = analysis::analyze(prog, m);
    ASSERT_EQ(rep.verdict, Verdict::Completes) << rep.reason;
    ASSERT_EQ(rep.regions.size(), 1u);
    const auto &r = rep.regions[0];
    // Straight-line: best and worst case coincide.
    EXPECT_DOUBLE_EQ(r.chargeMax, r.chargeMin);
    EXPECT_DOUBLE_EQ(r.cyclesMax, r.cyclesMin);

    const sim::Tick horizon = 5 * sim::oneMs;
    ASSERT_TRUE(rig.runToHalt(horizon));
    sim::Tick t_end = rig.sim.now();
    // Let the power integrator catch up to "now" exactly.
    rig.sim.runFor(0);

    // Predicted total drain over the window [0, t_end]: boot settle
    // at active current, the program body, then the halted core
    // until the end of the window.
    double t_total = sim::secondsFromTicks(t_end);
    double body_s = r.cyclesMax * m.cyclePeriod;
    double predicted = m.bootCharge() + r.chargeMax +
                       (t_total - m.bootSeconds - body_s) *
                           m.haltAmps;
    double measured =
        rig.wisp.power().cumulativeChargeOut() - baseline;
    EXPECT_NEAR(measured, predicted, 1e-9 * predicted)
        << "tech=" << tech.name;

    // Cycle prediction is exact, not just close.
    EXPECT_EQ(static_cast<std::uint64_t>(r.cyclesMax),
              rig.wisp.mcu().cycleCount())
        << "tech=" << tech.name;
}

TEST(CostTable, StraightLineExactFram)
{
    checkStraightLineExact(mem::framTech());
}

TEST(CostTable, StraightLineExactFlash)
{
    checkStraightLineExact(mem::flashTech());
}

TEST(CostTable, StraightLineExactSttMram)
{
    checkStraightLineExact(mem::sttMramTech());
}

TEST(CostTable, CheckpointCostMatchesLiveCore)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    TetheredRig rig(config);
    CostModel m = CostModel::fromWisp(rig.wisp);
    for (std::uint32_t bytes : {0u, 4u, 6u, 64u, 500u}) {
        EXPECT_EQ(m.chkptCycles(bytes),
                  rig.wisp.mcu().checkpointCostCyclesFor(bytes))
            << bytes;
    }
}

// ------------------------------------------------------------------
// Loop handling.

TEST(Loops, CountedLoopCyclesExact)
{
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r10, 7
loop:
    addi r1, r1, 3
    xori r1, r1, 5
    addi r10, r10, -1
    cmpi r10, 0
    bne  loop
    halt
)"));
    rig.wisp.flash(prog);
    rig.wisp.start();
    Report rep = analyzeOn(rig, prog);
    ASSERT_EQ(rep.verdict, Verdict::Completes) << rep.reason;
    ASSERT_TRUE(rig.runToHalt(5 * sim::oneMs));
    EXPECT_DOUBLE_EQ(rep.regions[0].cyclesMax,
                     rep.regions[0].cyclesMin);
    EXPECT_EQ(static_cast<std::uint64_t>(rep.regions[0].cyclesMax),
              rig.wisp.mcu().cycleCount());
}

TEST(Loops, BarrenSpinStarves)
{
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    br   main
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::Starves) << rep.reason;
    ASSERT_EQ(rep.regions.size(), 1u);
    EXPECT_EQ(rep.regions[0].worstLoop, LoopKind::Barren);
    EXPECT_TRUE(rep.regions[0].unavoidableBarren);
}

TEST(Loops, UnknownTripBarrenLoopStarves)
{
    // The counter escapes the count-down idiom (step -2), so trips
    // are unknown and the body neither stores nor polls: barren.
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r10, 9
loop:
    addi r10, r10, -2
    cmpi r10, 0
    bne  loop
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::Starves) << rep.reason;
}

TEST(Loops, EventWaitLoopIsClean)
{
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    la   r1, 0xF014        ; uart0Status
wait:
    ldw  r2, [r1]
    andi r2, r2, 2
    cmpi r2, 0
    beq  wait
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::RunsForever) << rep.reason;
    EXPECT_EQ(rep.regions[0].worstLoop, LoopKind::IoBound);
    EXPECT_TRUE(rep.haltReachable);
}

TEST(Loops, ProductiveNvLoopIsClean)
{
    // Trip count depends on FRAM contents (unknown), but every
    // iteration banks NV state: forward progress.
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    la   r1, 0x5000
loop:
    ldw  r2, [r1]
    addi r2, r2, 1
    stw  r2, [r1]
    andi r3, r2, 255
    cmpi r3, 0
    bne  loop
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::RunsForever) << rep.reason;
    EXPECT_EQ(rep.regions[0].worstLoop, LoopKind::Productive);
}

TEST(Loops, SkipOverDecrementVoidsTripBound)
{
    // A body branch hops straight onto the trip test, skipping the
    // decrement: when FRAM holds a non-zero word the counter never
    // moves and the loop spins forever, so the count-down bound of
    // 3 trips must NOT be trusted (the dec no longer dominates the
    // back edge). The body is barren, so the honest verdict is
    // Starves — and certainly not Completes.
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    la   r4, 0x5000
    li   r10, 3
loop:
    ldw  r2, [r4]
    cmpi r2, 0
    bne  skip_dec
    addi r10, r10, -1
skip_dec:
    cmpi r10, 0
    bne  loop
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_NE(rep.verdict, Verdict::Completes) << rep.reason;
    EXPECT_EQ(rep.verdict, Verdict::Starves) << rep.reason;
    ASSERT_EQ(rep.regions.size(), 1u);
    EXPECT_FALSE(rep.regions[0].bounded);
}

TEST(Loops, SkippableDivideVoidsTripBound)
{
    // Same hole for the divide-down idiom: the divu only runs when
    // the FRAM flag is zero, so the 33-halving cap does not apply.
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    la   r4, 0x5000
    li   r10, 100
    li   r9, 10
loop:
    ldw  r2, [r4]
    cmpi r2, 0
    bne  skip_div
    divu r10, r10, r9
skip_div:
    cmpi r10, 0
    bne  loop
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_NE(rep.verdict, Verdict::Completes) << rep.reason;
    ASSERT_EQ(rep.regions.size(), 1u);
    EXPECT_FALSE(rep.regions[0].bounded);
}

TEST(Loops, SkipIntoDecrementStaysBounded)
{
    // The benign cousin (libedb's crc8 step): the skip branch lands
    // ON the decrement, so the counter still moves every trip and
    // the bound holds. Simulated cycles must sit inside the
    // predicted [min, max] band.
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r10, 8
loop:
    andi r4, r1, 0x80
    shli r1, r1, 1
    cmpi r4, 0
    beq  next
    xori r1, r1, 7
next:
    addi r10, r10, -1
    cmpi r10, 0
    bne  loop
    halt
)"));
    rig.wisp.flash(prog);
    rig.wisp.start();
    Report rep = analyzeOn(rig, prog);
    ASSERT_EQ(rep.verdict, Verdict::Completes) << rep.reason;
    ASSERT_EQ(rep.regions.size(), 1u);
    EXPECT_TRUE(rep.regions[0].bounded);
    ASSERT_TRUE(rig.runToHalt(5 * sim::oneMs));
    double cycles =
        static_cast<double>(rig.wisp.mcu().cycleCount());
    EXPECT_LE(rep.regions[0].cyclesMin, cycles);
    EXPECT_GE(rep.regions[0].cyclesMax, cycles);
}

// ------------------------------------------------------------------
// Checkpoint-region segmentation.

TEST(Regions, ChkptSplitsProgramIntoRegions)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    TetheredRig rig(config);
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r1, 1
    chkpt
    addi r1, r1, 1
    chkpt
    addi r1, r1, 1
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::Completes) << rep.reason;
    EXPECT_EQ(rep.regions.size(), 3u);
    EXPECT_TRUE(rep.checkpointing);
    for (const auto &r : rep.regions) {
        EXPECT_TRUE(r.bounded);
        EXPECT_GT(r.chargeMax, 0.0);
    }
    // The entry region pays for its checkpoint commit: it must be
    // the most expensive (the others run two instructions + commit
    // or just halt).
    EXPECT_GE(rep.regions[0].chargeMax, rep.regions[2].chargeMax);
}

TEST(Regions, CheckpointingDisabledIsOneRegion)
{
    TetheredRig rig; // default config: checkpointing off
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r1, 1
    chkpt
    addi r1, r1, 1
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_FALSE(rep.checkpointing);
    EXPECT_EQ(rep.regions.size(), 1u);
    EXPECT_EQ(rep.verdict, Verdict::Completes) << rep.reason;
}

TEST(Regions, ChkptInsideLoopBoundsTheRegion)
{
    // An unbounded loop whose body checkpoints: every region is
    // bounded (the persist point cuts the cycle), so the program
    // makes per-boot progress forever.
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    TetheredRig rig(config);
    auto prog = isa::assemble(withHeader(R"(
main:
    la   r1, 0x5000
loop:
    ldw  r2, [r1]
    addi r2, r2, 1
    stw  r2, [r1]
    chkpt
    br   loop
)"));
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::RunsForever) << rep.reason;
    for (const auto &r : rep.regions)
        EXPECT_TRUE(r.bounded) << std::hex << r.entryPc;
}

// ------------------------------------------------------------------
// Starvation arithmetic (S2) on a bounded region.

TEST(Starvation, BoundedRegionOverBudget)
{
    // ~6000 active cycles in one region against a 0.47 uF
    // capacitor: the usable budget is C*(2.4-1.8) = 0.282 uC, the
    // region needs ~6000 * 0.25us * 0.5mA = 0.75 uC. Built without
    // the tether: the capacitor size is the point here.
    target::WispConfig config;
    config.power.capacitanceF = 0.47e-6;
    sim::Simulator sim{7};
    energy::TheveninHarvester supply{3.0, 1000.0};
    target::Wisp wisp(sim, "wisp", &supply, nullptr, config);
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r10, 1000
loop:
    addi r1, r1, 1
    xori r1, r1, 3
    addi r10, r10, -1
    cmpi r10, 0
    bne  loop
    halt
)"));
    CostModel m = CostModel::fromWisp(wisp);

    // Unknown environment: the analyzer may not claim must-starve.
    Report rep = analysis::analyze(prog, m);
    EXPECT_EQ(rep.verdict, Verdict::MayStarve) << rep.reason;

    // With a known weak source (well under the active current and
    // a ceiling the capacitor cannot stretch), the claim upgrades.
    AnalyzerOptions opt;
    opt.maxInflowAmps = 50e-6;
    opt.maxSourceVolts = 3.0;
    Report rep2 = analysis::analyze(prog, m, opt);
    EXPECT_EQ(rep2.verdict, Verdict::Starves) << rep2.reason;

    // A generous source ceiling keeps it a "may".
    AnalyzerOptions opt3;
    opt3.maxInflowAmps = 10e-3;
    opt3.maxSourceVolts = 3.0;
    Report rep3 = analysis::analyze(prog, m, opt3);
    EXPECT_EQ(rep3.verdict, Verdict::MayStarve) << rep3.reason;
}

TEST(Starvation, RestoreDrainChargedToPostCheckpointRegions)
{
    // Every reboot into a post-checkpoint region replays the
    // checkpoint restore before the first region instruction. A
    // budget that fits the region alone but not region + restore
    // must therefore NOT be declared Completes.
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    TetheredRig rig(config);
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r1, 1
    chkpt
    li   r10, 400
loop:
    addi r1, r1, 1
    xori r1, r1, 3
    addi r10, r10, -1
    cmpi r10, 0
    bne  loop
    halt
)"));
    CostModel m = CostModel::fromWisp(rig.wisp);
    Report wide = analysis::analyze(prog, m);
    ASSERT_EQ(wide.verdict, Verdict::Completes) << wide.reason;
    ASSERT_EQ(wide.regions.size(), 2u);
    double post = wide.regions[1].chargeMax;
    double restore = m.restoreChargeMax();
    ASSERT_GT(restore, 0.0);

    // Shrink the capacitor so avail covers the region but only half
    // the restore burst on top of it.
    auto withBudget = [&](double budget) {
        CostModel tight = m;
        tight.capacitanceF =
            budget / (m.turnOnVolts - m.brownOutVolts);
        return analysis::analyze(prog, tight);
    };
    Report rep =
        withBudget(m.bootCharge() + post + 0.5 * restore);
    ASSERT_EQ(rep.regions.size(), 2u);
    EXPECT_EQ(rep.regions[1].verdict, Verdict::MayStarve)
        << rep.reason;
    EXPECT_NE(rep.verdict, Verdict::Completes) << rep.reason;

    // With the full restore funded the verdict recovers.
    Report ok =
        withBudget(m.bootCharge() + post + 1.01 * restore);
    ASSERT_EQ(ok.regions.size(), 2u);
    EXPECT_EQ(ok.regions[1].verdict, Verdict::Completes)
        << ok.reason;
}

// ------------------------------------------------------------------
// CFG-discovery truncation must degrade, not silently under-count.

TEST(Truncation, NodeBudgetDegradesToUnknown)
{
    TetheredRig rig;
    auto prog = isa::assemble(withHeader(R"(
main:
    addi r1, r1, 1
    addi r1, r1, 2
    addi r1, r1, 3
    addi r1, r1, 4
    addi r1, r1, 5
    addi r1, r1, 6
    addi r1, r1, 7
    addi r1, r1, 8
    halt
)"));
    AnalyzerOptions opt;
    opt.maxNodes = 4;
    Report rep = analyzeOn(rig, prog, opt);
    EXPECT_EQ(rep.verdict, Verdict::Unknown) << rep.reason;
    EXPECT_NE(rep.reason.find("node budget"), std::string::npos)
        << rep.reason;
    for (const auto &r : rep.regions)
        EXPECT_FALSE(r.bounded);
}

// ------------------------------------------------------------------
// The Fig 9 application verdicts.

TEST(Fig9, DebugBuildFibonacciStarves)
{
    // The unguarded consistency check walks the whole list every
    // main-loop iteration: an unbounded barren walk stands between
    // every boot and the next append (paper Section 5.3.2).
    apps::FibonacciOptions options;
    options.withCheck = true;
    auto prog = apps::buildFibonacciApp(options);
    TetheredRig rig;
    Report rep = analyzeOn(rig, prog);
    EXPECT_EQ(rep.verdict, Verdict::Starves) << rep.reason;
}

TEST(Fig9, ReleaseBuildFibonacciIsClean)
{
    auto prog = apps::buildFibonacciApp({});
    TetheredRig rig;
    Report rep = analyzeOn(rig, prog);
    EXPECT_NE(rep.verdict, Verdict::Starves) << rep.reason;
    EXPECT_NE(rep.verdict, Verdict::Unknown) << rep.reason;
}

TEST(Fig9, ActivityAppIsClean)
{
    apps::ActivityOptions options;
    options.output = apps::ActivityOutput::UartPrintf;
    auto prog = apps::buildActivityApp(options);
    TetheredRig rig;
    Report rep = analyzeOn(rig, prog);
    EXPECT_NE(rep.verdict, Verdict::Starves) << rep.reason;
    EXPECT_NE(rep.verdict, Verdict::MayStarve) << rep.reason;
    EXPECT_NE(rep.verdict, Verdict::Unknown) << rep.reason;
}

TEST(Fig9, QuickstartGuestIsClean)
{
    // The README / examples/quickstart.cpp guest program.
    auto prog = isa::assemble(withHeader(R"(
main:
    la   r5, 0x5000
loop:
    ldw  r1, [r5]
    addi r1, r1, 1
    stw  r1, [r5]
    andi r2, r1, 0x0FFF
    cmpi r2, 0
    bne  loop
    li   r1, 1
    call edb_watchpoint
    br   loop
)"));
    TetheredRig rig;
    Report rep = analyzeOn(rig, prog);
    EXPECT_NE(rep.verdict, Verdict::Starves) << rep.reason;
    EXPECT_NE(rep.verdict, Verdict::MayStarve) << rep.reason;
    EXPECT_NE(rep.verdict, Verdict::Unknown) << rep.reason;
}

// ------------------------------------------------------------------
// Boots-to-completion prediction plumbing.

TEST(Prediction, CheckpointedProgramPredictsBoots)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    TetheredRig rig(config);
    auto prog = isa::assemble(withHeader(R"(
main:
    li   r10, 50
loop:
    addi r1, r1, 1
    chkpt
    addi r10, r10, -1
    cmpi r10, 0
    bne  loop
    halt
)"));
    Report rep = analyzeOn(rig, prog);
    ASSERT_EQ(rep.verdict, Verdict::Completes) << rep.reason;
    EXPECT_TRUE(rep.totalBounded);
    EXPECT_GT(rep.totalChargeMax, 0.0);
    EXPECT_GE(rep.totalChargeMax, rep.totalChargeMin);
    EXPECT_GE(rep.predictedBoots, 1.0);
    EXPECT_GT(rep.instrsPerBoot, 0.0);
    EXPECT_GT(rep.analyzedInstructions, 0u);
}

} // namespace
