/**
 * @file
 * Unit and property tests for the analog energy substrate:
 * capacitor, harvesters, power system integration, comparator
 * hysteresis, charge conservation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/capacitor.hh"
#include "sim/logging.hh"
#include "energy/harvester.hh"
#include "energy/power_system.hh"
#include "energy/supply.hh"
#include "sim/simulator.hh"

using namespace edb;
using namespace edb::energy;

namespace {

PowerSystemConfig
quietConfig()
{
    PowerSystemConfig config;
    config.harvestNoiseSigma = 0.0; // deterministic analog tests
    return config;
}

TEST(Capacitor, ChargeToVoltage)
{
    Capacitor cap(47e-6);
    EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
    cap.addCharge(47e-6 * 2.0); // Q = C*V
    EXPECT_NEAR(cap.voltage(), 2.0, 1e-12);
}

TEST(Capacitor, NeverGoesNegative)
{
    Capacitor cap(47e-6, 1.0);
    cap.addCharge(-1.0);
    EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
    cap.setVoltage(-2.0);
    EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
}

TEST(Capacitor, EnergyFormula)
{
    Capacitor cap(47e-6, 2.4);
    EXPECT_NEAR(cap.energy(), 0.5 * 47e-6 * 2.4 * 2.4, 1e-12);
    EXPECT_NEAR(cap.energyAt(1.8), 0.5 * 47e-6 * 1.8 * 1.8, 1e-12);
}

TEST(Harvester, TheveninCurrentLaw)
{
    TheveninHarvester h(3.0, 1000.0);
    EXPECT_NEAR(h.currentInto(1.0, 0.0), 2.0e-3, 1e-12);
    EXPECT_NEAR(h.currentInto(3.0, 0.0), 0.0, 1e-12);
    // Keeper diode: no back-flow above Voc.
    EXPECT_DOUBLE_EQ(h.currentInto(4.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.openCircuitVoltage(0.0), 3.0);
}

TEST(Harvester, TheveninRejectsBadResistance)
{
    EXPECT_THROW(TheveninHarvester(3.0, 0.0), sim::FatalError);
}

TEST(Harvester, RfPowerFallsWithDistanceSquared)
{
    RfHarvester near(30.0, 0.5);
    RfHarvester far(30.0, 1.0);
    // Same voltage: 4x the current at half the distance.
    double i_near = near.currentInto(1.0, 0.0);
    double i_far = far.currentInto(1.0, 0.0);
    EXPECT_NEAR(i_near / i_far, 4.0, 1e-9);
    EXPECT_NEAR(far.sourceResistance() / near.sourceResistance(), 4.0,
                1e-9);
}

TEST(Harvester, RfTxPowerScales)
{
    RfHarvester strong(30.0, 1.0);
    RfHarvester weak(27.0, 1.0); // -3 dB = half power
    EXPECT_NEAR(weak.sourceResistance() / strong.sourceResistance(),
                2.0, 0.01);
}

TEST(Harvester, RfCarrierGating)
{
    RfHarvester h(30.0, 1.0);
    EXPECT_GT(h.currentInto(1.0, 0.0), 0.0);
    h.setCarrierOn(false);
    EXPECT_DOUBLE_EQ(h.currentInto(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.openCircuitVoltage(0.0), 0.0);
}

TEST(Harvester, RfRejectsBadDistance)
{
    EXPECT_THROW(RfHarvester(30.0, 0.0), sim::FatalError);
    RfHarvester h(30.0, 1.0);
    EXPECT_THROW(h.setDistance(-1.0), sim::FatalError);
}

TEST(Harvester, ProfileInterpolatesAndHolds)
{
    ProfileHarvester h({{0.0, 2.0, 1000.0}, {10.0, 4.0, 1000.0}});
    EXPECT_NEAR(h.openCircuitVoltage(0.0), 2.0, 1e-12);
    EXPECT_NEAR(h.openCircuitVoltage(5.0), 3.0, 1e-12);
    EXPECT_NEAR(h.openCircuitVoltage(10.0), 4.0, 1e-12);
    EXPECT_NEAR(h.openCircuitVoltage(100.0), 4.0, 1e-12); // hold
    EXPECT_NEAR(h.currentInto(1.0, 5.0), 2.0e-3, 1e-12);
}

TEST(Harvester, ProfileRejectsEmpty)
{
    EXPECT_THROW(ProfileHarvester({}), sim::FatalError);
}

TEST(Supply, CurrentIsSignedAndGated)
{
    VoltageSupply supply(3.0, 100.0);
    EXPECT_DOUBLE_EQ(supply.currentInto(2.0), 0.0); // disabled
    supply.setEnabled(true);
    EXPECT_NEAR(supply.currentInto(2.0), 0.01, 1e-12);
    EXPECT_NEAR(supply.currentInto(3.5), -0.005, 1e-12);
    supply.setVoltage(2.0);
    EXPECT_NEAR(supply.currentInto(2.0), 0.0, 1e-12);
}

TEST(PowerSystem, MatchesAnalyticRcCharge)
{
    // No load: V(t) = Voc (1 - e^{-t/RC}).
    sim::Simulator simulator;
    TheveninHarvester h(3.0, 1000.0);
    auto config = quietConfig();
    config.offLeakageAmps = 0.0;
    config.turnOnVolts = 10.0; // never turns on: pure RC
    config.brownOutVolts = 9.0;
    PowerSystem power(simulator, "power", config, &h);
    power.start();
    double rc = 1000.0 * config.capacitanceF; // 47 ms
    simulator.runFor(sim::ticksFromSeconds(rc));
    EXPECT_NEAR(power.voltage(), 3.0 * (1.0 - std::exp(-1.0)), 0.01);
    simulator.runFor(sim::ticksFromSeconds(4.0 * rc));
    EXPECT_NEAR(power.voltage(), 3.0 * (1.0 - std::exp(-5.0)), 0.01);
}

TEST(PowerSystem, ComparatorHysteresis)
{
    sim::Simulator simulator;
    TheveninHarvester h(3.0, 1000.0);
    auto config = quietConfig();
    PowerSystem power(simulator, "power", config, &h);
    int transitions = 0;
    bool last_state = false;
    power.addPowerListener([&](bool on) {
        ++transitions;
        last_state = on;
    });
    // A load big enough to discharge once on.
    auto load = power.addLoad("load", 2.0e-3, false);
    power.start();
    simulator.runFor(sim::oneSec);
    EXPECT_TRUE(power.poweredOn());
    EXPECT_EQ(transitions, 1);
    EXPECT_TRUE(last_state);
    EXPECT_EQ(power.bootCount(), 1u);

    power.setLoadEnabled(load, true);
    simulator.runFor(sim::oneSec);
    // Thevenin at 3 V / 1 kOhm supplies up to 1.2 mA at 1.8 V, which
    // is less than 2 mA: brown-out must occur, then with the load
    // gone below brown-out... the load persists, so it cycles.
    EXPECT_GE(power.brownOutCount(), 1u);
}

TEST(PowerSystem, NoTurnOnBelowThreshold)
{
    sim::Simulator simulator;
    TheveninHarvester h(2.0, 1000.0); // Voc below the 2.4 V turn-on
    PowerSystem power(simulator, "power", quietConfig(), &h);
    power.start();
    simulator.runFor(2 * sim::oneSec);
    EXPECT_FALSE(power.poweredOn());
    EXPECT_EQ(power.bootCount(), 0u);
    EXPECT_NEAR(power.voltage(), 2.0, 0.01);
}

TEST(PowerSystem, ChargeConservation)
{
    sim::Simulator simulator;
    TheveninHarvester h(3.0, 500.0);
    auto config = quietConfig();
    config.offLeakageAmps = 0.0;
    PowerSystem power(simulator, "power", config, &h);
    power.addLoad("load", 0.5e-3, true);
    power.start();
    simulator.runFor(3 * sim::oneSec);
    double q_net =
        power.cumulativeChargeIn() - power.cumulativeChargeOut();
    double q_cap = power.capacitor().capacitance() * power.voltage();
    EXPECT_NEAR(q_net, q_cap, 1e-6);
}

TEST(PowerSystem, LoadsSumAndGate)
{
    sim::Simulator simulator;
    TheveninHarvester h(3.0, 1000.0);
    PowerSystem power(simulator, "power", quietConfig(), &h);
    auto a = power.addLoad("a", 1e-3, true);
    auto b = power.addLoad("b", 2e-3, false);
    EXPECT_DOUBLE_EQ(power.totalLoadAmps(), 1e-3);
    power.setLoadEnabled(b, true);
    EXPECT_DOUBLE_EQ(power.totalLoadAmps(), 3e-3);
    power.setLoadCurrent(a, 0.5e-3);
    EXPECT_DOUBLE_EQ(power.totalLoadAmps(), 2.5e-3);
    EXPECT_TRUE(power.loadEnabled(a));
    EXPECT_DOUBLE_EQ(power.loadCurrent(b), 2e-3);
}

TEST(PowerSystem, SourcesInjectSignedCurrent)
{
    sim::Simulator simulator;
    NullHarvester none;
    auto config = quietConfig();
    config.initialVolts = 2.0;
    config.offLeakageAmps = 0.0;
    PowerSystem power(simulator, "power", config, &none);
    auto src = power.addSource("src", [](double, double) {
        return -1e-3; // constant drain
    });
    power.start();
    simulator.runFor(sim::ticksFromSeconds(0.0094)); // dV = 0.2 V
    EXPECT_NEAR(power.voltage(), 1.8, 0.01);
    power.setSourceEnabled(src, false);
    double v = power.voltage();
    simulator.runFor(sim::oneSec);
    EXPECT_NEAR(power.voltage(), v, 1e-9);
}

TEST(PowerSystem, OffLeakageOnlyWhenOff)
{
    sim::Simulator simulator;
    NullHarvester none;
    auto config = quietConfig();
    config.initialVolts = 1.0; // below turn-on: device off
    config.offLeakageAmps = 1e-6;
    PowerSystem power(simulator, "power", config, &none);
    power.addLoad("big", 10e-3, true); // must NOT drain while off
    power.start();
    simulator.runFor(sim::oneSec);
    // Only the 1 uA leakage applies: dV = 1e-6 * 1 / 47e-6 = 21 mV.
    EXPECT_NEAR(power.voltage(), 1.0 - 0.0213, 0.002);
}

TEST(PowerSystem, MaxVoltsClamp)
{
    sim::Simulator simulator;
    TheveninHarvester h(9.0, 10.0);
    auto config = quietConfig();
    config.maxVolts = 3.3;
    PowerSystem power(simulator, "power", config, &h);
    power.start();
    simulator.runFor(sim::oneSec);
    EXPECT_LE(power.voltage(), 3.3 + 1e-9);
}

TEST(PowerSystem, RegulatedVoltageTracksDuringFailure)
{
    sim::Simulator simulator;
    NullHarvester none;
    auto config = quietConfig();
    config.initialVolts = 2.4;
    config.regulatorVolts = 2.0;
    PowerSystem power(simulator, "power", config, &none);
    EXPECT_DOUBLE_EQ(power.regulatedVoltage(), 2.0);
    power.capacitor().setVoltage(1.5);
    // Vreg drops below its regulated value with Vcap (paper 4.1.2).
    EXPECT_DOUBLE_EQ(power.regulatedVoltage(), 1.5);
}

TEST(PowerSystem, MaxEnergyUsesTurnOnVoltage)
{
    sim::Simulator simulator;
    NullHarvester none;
    PowerSystem power(simulator, "power", quietConfig(), &none);
    EXPECT_NEAR(power.maxEnergy(), 0.5 * 47e-6 * 2.4 * 2.4, 1e-12);
}

TEST(PowerSystem, RejectsBadConfig)
{
    sim::Simulator simulator;
    NullHarvester none;
    auto bad_cap = quietConfig();
    bad_cap.capacitanceF = 0.0;
    EXPECT_THROW(PowerSystem(simulator, "p", bad_cap, &none),
                 sim::FatalError);
    auto bad_thresh = quietConfig();
    bad_thresh.brownOutVolts = 2.5;
    EXPECT_THROW(PowerSystem(simulator, "p", bad_thresh, &none),
                 sim::FatalError);
    EXPECT_THROW(PowerSystem(simulator, "p", quietConfig(), nullptr),
                 sim::FatalError);
}

TEST(PowerSystem, AdvanceToIsIdempotent)
{
    sim::Simulator simulator;
    TheveninHarvester h(3.0, 1000.0);
    PowerSystem power(simulator, "power", quietConfig(), &h);
    power.start();
    simulator.runFor(100 * sim::oneMs);
    double v1 = power.voltage();
    power.advanceTo(simulator.now());
    power.advanceTo(simulator.now() - sim::oneMs); // past: no-op
    EXPECT_DOUBLE_EQ(power.voltage(), v1);
}

/** The interpreter's per-instruction drainStep entry must be exactly
 *  the single-sub-step advanceTo, RNG draws included: same noise
 *  sequence, bit-identical trajectory. */
TEST(PowerSystem, DrainStepMatchesAdvanceToBitExactly)
{
    PowerSystemConfig config; // default: harvest noise enabled
    sim::Simulator simA(99);
    sim::Simulator simB(99);
    TheveninHarvester hA(3.0, 1000.0);
    TheveninHarvester hB(3.0, 1000.0);
    PowerSystem a(simA, "a", config, &hA);
    PowerSystem b(simB, "b", config, &hB);
    a.addLoad("core", 0.5e-3, true);
    b.addLoad("core", 0.5e-3, true);
    const sim::Tick dt = sim::oneUs;
    const double dt_sec = sim::secondsFromTicks(dt);
    for (int i = 0; i < 5000; ++i) {
        a.drainStep(dt, dt_sec);
        b.advanceTo(b.lastUpdateTick() + dt);
        ASSERT_EQ(a.voltage(), b.voltage()) << "sub-step " << i;
    }
}

/** The devirtualized constant-Thevenin source inline (fastIntegration)
 *  must reproduce the virtual harvester path bit-for-bit, noise
 *  included. */
TEST(PowerSystem, FastIntegrationMatchesVirtualHarvesterPath)
{
    PowerSystemConfig fastCfg; // fastIntegration default-on
    PowerSystemConfig refCfg;
    refCfg.fastIntegration = false;
    sim::Simulator simA(7);
    sim::Simulator simB(7);
    TheveninHarvester hA(3.0, 500.0);
    TheveninHarvester hB(3.0, 500.0);
    PowerSystem fast(simA, "fast", fastCfg, &hA);
    PowerSystem ref(simB, "ref", refCfg, &hB);
    fast.addLoad("core", 0.5e-3, true);
    ref.addLoad("core", 0.5e-3, true);
    fast.start();
    ref.start();
    for (int ms = 1; ms <= 200; ++ms) {
        simA.runFor(sim::oneMs);
        simB.runFor(sim::oneMs);
        ASSERT_EQ(fast.voltage(), ref.voltage()) << "ms " << ms;
    }
    EXPECT_EQ(fast.bootCount(), ref.bootCount());
}

/** Property sweep: sawtooth period scales with capacitance. */
class SawtoothSweep : public ::testing::TestWithParam<double>
{};

TEST_P(SawtoothSweep, CycleCountScalesInverselyWithCapacitance)
{
    double farads = GetParam();
    sim::Simulator simulator(9);
    TheveninHarvester h(3.0, 4000.0);
    auto config = quietConfig();
    config.capacitanceF = farads;
    PowerSystem power(simulator, "power", config, &h);
    power.addLoad("mcu", 0.5e-3, true);
    power.start();
    simulator.runFor(10 * sim::oneSec);
    ASSERT_GT(power.bootCount(), 0u)
        << "should cycle at C=" << farads;
    // Period ~ C, so boots ~ 1/C: check monotonic ordering via a
    // coarse bound derived from the analytic charge/discharge times.
    double charge_s = farads * 0.6 / 0.00015;
    double discharge_s = farads * 0.6 / 0.00025;
    double expected = 10.0 / (charge_s + discharge_s);
    EXPECT_NEAR(static_cast<double>(power.bootCount()), expected,
                expected * 0.5 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Capacitances, SawtoothSweep,
                         ::testing::Values(10e-6, 22e-6, 47e-6,
                                           100e-6));

} // namespace
