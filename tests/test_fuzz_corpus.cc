/**
 * @file
 * Regression-corpus replay and fuzz-infrastructure properties.
 *
 * Every `.case` artifact checked in under tests/corpus/ is replayed
 * against the oracle named in its header and must pass: the corpus
 * is the fuzzer's long-term memory, so a simulator change that
 * re-breaks an old minimized failure (or one of the seed cases)
 * fails here without having to re-run the fuzzer. The remaining
 * tests pin the properties the corpus workflow depends on: the
 * artifact text format round-trips losslessly, generation and
 * mutation are deterministic in their seeds, and the shrinker
 * reduces a synthetic injected failure to a handful of
 * instructions while preserving the failure predicate.
 */

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/corpus.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"

namespace {

using namespace edb;

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> paths;
    const std::filesystem::path dir = FUZZ_CORPUS_DIR;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".case")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    return paths;
}

// ---------------------------------------------------------------
// Corpus replay.
// ---------------------------------------------------------------

TEST(FuzzCorpus, HasSeedCasesForEveryOracle)
{
    auto paths = corpusFiles();
    EXPECT_GE(paths.size(), 20u);
    for (unsigned o = 0; o < fuzz::numOracles; ++o) {
        const std::string tag =
            fuzz::oracleName(static_cast<fuzz::OracleId>(o));
        EXPECT_TRUE(std::any_of(paths.begin(), paths.end(),
                                [&tag](const std::string &p) {
                                    return p.find(tag) !=
                                           std::string::npos;
                                }))
            << "no corpus case for oracle " << tag;
    }
}

TEST(FuzzCorpus, EveryArtifactReplaysClean)
{
    auto paths = corpusFiles();
    ASSERT_FALSE(paths.empty());
    for (const std::string &path : paths) {
        std::string error;
        auto artifact = fuzz::loadArtifact(path, &error);
        ASSERT_TRUE(artifact.has_value())
            << path << ": " << error;
        fuzz::OracleOutcome out =
            fuzz::runOracle(artifact->oracle, artifact->oracleCase);
        EXPECT_FALSE(out.failed)
            << path << " [" << fuzz::oracleName(artifact->oracle)
            << "]: " << out.detail;
    }
}

TEST(FuzzCorpus, ArtifactTextRoundTrips)
{
    auto paths = corpusFiles();
    ASSERT_FALSE(paths.empty());
    std::string error;
    auto artifact = fuzz::loadArtifact(paths.front(), &error);
    ASSERT_TRUE(artifact.has_value()) << error;
    std::string text = fuzz::artifactToText(*artifact);
    auto again = fuzz::artifactFromText(text, &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(again->oracle, artifact->oracle);
    EXPECT_EQ(again->oracleCase.program, artifact->oracleCase.program);
    EXPECT_EQ(again->oracleCase.mutant, artifact->oracleCase.mutant);
    EXPECT_EQ(again->oracleCase.seed, artifact->oracleCase.seed);
    EXPECT_EQ(again->oracleCase.checkpointing,
              artifact->oracleCase.checkpointing);
    EXPECT_EQ(again->oracleCase.horizon, artifact->oracleCase.horizon);
    ASSERT_EQ(again->oracleCase.schedule.size(),
              artifact->oracleCase.schedule.size());
    for (std::size_t i = 0; i < again->oracleCase.schedule.size(); ++i) {
        EXPECT_EQ(again->oracleCase.schedule[i].at,
                  artifact->oracleCase.schedule[i].at);
        EXPECT_EQ(again->oracleCase.schedule[i].volts,
                  artifact->oracleCase.schedule[i].volts);
    }
}

// ---------------------------------------------------------------
// Generator determinism (what makes artifacts and CI replayable).
// ---------------------------------------------------------------

TEST(FuzzGenerator, GenerationIsDeterministic)
{
    fuzz::CaseSpec a = fuzz::generateCase(42);
    fuzz::CaseSpec b = fuzz::generateCase(42);
    EXPECT_EQ(fuzz::renderProgram(a), fuzz::renderProgram(b));
    EXPECT_EQ(fuzz::renderWarMutant(a), fuzz::renderWarMutant(b));
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < a.schedule.size(); ++i)
        EXPECT_EQ(a.schedule[i].at, b.schedule[i].at);

    fuzz::CaseSpec c = fuzz::generateCase(43);
    EXPECT_NE(fuzz::renderProgram(a), fuzz::renderProgram(c));
}

TEST(FuzzGenerator, MutationIsDeterministic)
{
    fuzz::CaseSpec base = fuzz::generateCase(7);
    fuzz::CaseSpec m1 = fuzz::mutateCase(base, 99);
    fuzz::CaseSpec m2 = fuzz::mutateCase(base, 99);
    EXPECT_EQ(fuzz::renderProgram(m1), fuzz::renderProgram(m2));
}

// ---------------------------------------------------------------
// Shrinker: a synthetic injected failure must minimize hard.
// ---------------------------------------------------------------

TEST(FuzzShrink, ReducesSyntheticFailureToFewInstructions)
{
    // Synthetic failure predicate: "the program still contains a
    // store". Any generated case with a store element triggers it,
    // and a perfect minimizer would land on a single one-line
    // snippet; the acceptance bar is <= 25 instructions.
    auto predicate = [](const fuzz::CaseSpec &s) {
        return fuzz::renderProgram(s).find("stw") !=
               std::string::npos;
    };

    fuzz::CaseSpec failing;
    bool found = false;
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
        fuzz::CaseSpec candidate = fuzz::generateCase(seed);
        if (predicate(candidate) &&
            fuzz::instructionCount(candidate) > 40) {
            failing = candidate;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no seed produced a large store-bearing case";

    fuzz::ShrinkResult shrunk = fuzz::shrinkCase(failing, predicate);
    EXPECT_TRUE(predicate(shrunk.spec))
        << "shrinker lost the failure predicate";
    EXPECT_GT(shrunk.beforeInstrs, 40u);
    EXPECT_LE(shrunk.afterInstrs, 25u)
        << "shrunk case still has " << shrunk.afterInstrs
        << " instructions after " << shrunk.runs << " predicate runs";
    EXPECT_LT(shrunk.afterInstrs, shrunk.beforeInstrs);
}

TEST(FuzzShrink, ShrinksScheduleToo)
{
    // A predicate indifferent to the schedule should see its forced
    // brown-outs pruned away entirely.
    auto predicate = [](const fuzz::CaseSpec &s) {
        return !s.elements.empty();
    };
    fuzz::CaseSpec failing = fuzz::generateCase(11);
    ASSERT_FALSE(failing.schedule.empty());
    fuzz::ShrinkResult shrunk = fuzz::shrinkCase(failing, predicate);
    EXPECT_TRUE(shrunk.spec.schedule.empty());
}

} // namespace
