/**
 * @file
 * Fleet subsystem tests: seed derivation, the slotted RF arbiter's
 * determinism contract, the work-stealing pool's batch semantics,
 * world snapshot migration, and the headline property — per-world
 * digests bit-identical at 1, 2 and 8 shards (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "fleet/fleet.hh"
#include "fleet/pool.hh"
#include "fleet/world.hh"
#include "isa/assembler.hh"
#include "rfid/channel.hh"
#include "sim/rng.hh"

using namespace edb;

// ---------------------------------------------------------------------
// Seed derivation

TEST(DeriveSeed, NonZeroAndStreamIndependent)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t s = 0; s < 1000; ++s) {
        std::uint64_t d = sim::deriveSeed(42, s);
        EXPECT_NE(d, 0u);
        seen.insert(d);
    }
    // Adjacent streams must not collide.
    EXPECT_EQ(seen.size(), 1000u);
    // Different bases give different streams.
    EXPECT_NE(sim::deriveSeed(1, 7), sim::deriveSeed(2, 7));
}

// ---------------------------------------------------------------------
// Slotted arbiter

TEST(SlottedArbiter, DeterministicAcrossInstances)
{
    rfid::RfEnvConfig env;
    std::vector<std::uint32_t> tags;
    for (std::uint32_t t = 0; t < 40; ++t)
        tags.push_back(t);

    rfid::SlottedArbiter a(env, 99), b(env, 99);
    for (std::uint64_t round = 0; round < 20; ++round) {
        auto ra = a.resolve(round, tags);
        auto rb = b.resolve(round, tags);
        EXPECT_EQ(ra, rb) << "round " << round;
    }
    EXPECT_EQ(a.q(), b.q());
    EXPECT_EQ(a.singlesTotal(), b.singlesTotal());
    EXPECT_EQ(a.collisionsTotal(), b.collisionsTotal());
}

TEST(SlottedArbiter, SeedChangesOutcomes)
{
    rfid::RfEnvConfig env;
    std::vector<std::uint32_t> tags;
    for (std::uint32_t t = 0; t < 64; ++t)
        tags.push_back(t);
    rfid::SlottedArbiter a(env, 1), b(env, 2);
    bool differed = false;
    for (std::uint64_t round = 0; round < 8 && !differed; ++round)
        differed = a.resolve(round, tags) != b.resolve(round, tags);
    EXPECT_TRUE(differed);
}

TEST(SlottedArbiter, QAdaptsUpUnderLoad)
{
    rfid::RfEnvConfig env;
    env.initialQ = 1; // 2 slots for 64 tags: collision storm
    std::vector<std::uint32_t> tags;
    for (std::uint32_t t = 0; t < 64; ++t)
        tags.push_back(t);
    rfid::SlottedArbiter a(env, 5);
    for (std::uint64_t round = 0; round < 12; ++round)
        a.resolve(round, tags);
    EXPECT_GT(a.q(), 1u);
    EXPECT_GT(a.collisionsTotal(), 0u);
}

TEST(SlottedArbiter, SingleTagAlwaysWins)
{
    rfid::RfEnvConfig env;
    rfid::SlottedArbiter a(env, 3);
    std::vector<std::uint32_t> one{7};
    for (std::uint64_t round = 0; round < 6; ++round) {
        auto r = a.resolve(round, one);
        ASSERT_EQ(r.size(), 1u);
        EXPECT_EQ(r[0], rfid::SlotOutcome::Won);
    }
    EXPECT_EQ(a.singlesTotal(), 6u);
    EXPECT_EQ(a.collisionsTotal(), 0u);
}

// ---------------------------------------------------------------------
// Work-stealing pool

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce)
{
    fleet::WorkStealingPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    std::vector<fleet::WorkStealingPool::Task> tasks;
    std::vector<unsigned> home;
    for (int i = 0; i < 100; ++i) {
        tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
        home.push_back(0); // all on one shard: forces stealing
    }
    pool.runBatch(std::move(tasks), home);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    EXPECT_EQ(pool.executedLocal() + pool.executedStolen(), 100u);
}

TEST(WorkStealingPool, InlineModeRunsOnCallerThread)
{
    fleet::WorkStealingPool pool(0);
    EXPECT_EQ(pool.shards(), 1u);
    EXPECT_EQ(pool.threads(), 0u);
    int ran = 0;
    std::vector<fleet::WorkStealingPool::Task> tasks;
    tasks.push_back([&ran] { ++ran; });
    tasks.push_back([&ran] { ++ran; });
    pool.runBatch(std::move(tasks), {0, 0});
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(pool.executedStolen(), 0u);
}

TEST(WorkStealingPool, BackToBackBatches)
{
    fleet::WorkStealingPool pool(2);
    std::atomic<int> n{0};
    for (int batch = 0; batch < 10; ++batch) {
        std::vector<fleet::WorkStealingPool::Task> tasks;
        for (int i = 0; i < 8; ++i)
            tasks.push_back([&n] { n.fetch_add(1); });
        pool.runBatch(std::move(tasks),
                      {0, 1, 0, 1, 0, 1, 0, 1});
    }
    EXPECT_EQ(n.load(), 80);
}

// ---------------------------------------------------------------------
// Worlds and the fleet

namespace {

fleet::FleetConfig
testConfig(unsigned tags, unsigned threads)
{
    fleet::FleetConfig cfg;
    cfg.tags = tags;
    cfg.threads = threads;
    cfg.seed = 2026;
    cfg.epochLength = 2 * sim::oneMs;
    // Start charged so tags execute (and contend) from epoch one,
    // with a small store cap so per-world duty cycles (and therefore
    // per-shard loads) actually differ with drawn distance.
    cfg.wisp.power.initialVolts = 2.6;
    cfg.wisp.power.capacitanceF = 4.7e-7;
    cfg.rebalancePeriod = 2; // exercise migration aggressively
    return cfg;
}

} // namespace

TEST(Fleet, DigestsBitIdenticalAcrossShardCounts)
{
    auto base = fleet::Fleet(testConfig(16, 0), {});
    base.runEpochs(4);
    const std::vector<fleet::WorldDigest> want = base.digests();
    ASSERT_EQ(want.size(), 16u);

    for (unsigned threads : {2u, 8u}) {
        fleet::Fleet f(testConfig(16, threads), {});
        f.runEpochs(4);
        const std::vector<fleet::WorldDigest> got = f.digests();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t w = 0; w < want.size(); ++w)
            EXPECT_EQ(got[w], want[w])
                << "world " << w << " at " << threads << " threads";
    }
}

TEST(Fleet, MigrationHappensAndPreservesDigests)
{
    // Same run shape as above; with rebalancePeriod=2 and skewed
    // per-world load the 2-thread fleet must actually migrate.
    fleet::Fleet f(testConfig(16, 2), {});
    f.runEpochs(6);
    EXPECT_GT(f.migrations(), 0u);

    fleet::Fleet g(testConfig(16, 0), {});
    g.runEpochs(6);
    EXPECT_EQ(g.migrations(), 0u); // single shard: nothing to move
    EXPECT_EQ(f.digests(), g.digests());
}

TEST(Fleet, TagsMakeProgressAndContend)
{
    fleet::Fleet f(testConfig(24, 2), {});
    f.runEpochs(5);
    EXPECT_GT(f.totalInstrs(), 0u);
    EXPECT_GT(f.channelStats().attempts, 0u);
    EXPECT_GT(f.channelStats().replies, 0u);
    // 24 charged tags in <= 2^4 initial slots must collide sometimes.
    EXPECT_GT(f.channelStats().collisions, 0u);
    EXPECT_GT(f.arbiter().roundsResolved(), 0u);
}

TEST(Fleet, SeedChangesTrajectories)
{
    fleet::FleetConfig a = testConfig(4, 0);
    fleet::FleetConfig b = testConfig(4, 0);
    b.seed = 2027;
    fleet::Fleet fa(a, {}), fb(b, {});
    fa.runEpochs(3);
    fb.runEpochs(3);
    EXPECT_NE(fa.digests(), fb.digests());
}

TEST(Fleet, WorldLoggersShareTheAggregatingSink)
{
    fleet::Fleet f(testConfig(4, 0), {});
    f.world(0).simulator().logger().warn("w0 says hi");
    f.world(3).simulator().logger().warn("w3 says hi");
    EXPECT_EQ(f.logSink().count(sim::LogLevel::Warn), 2u);
    EXPECT_EQ(f.logSink().total(), 2u);
}

TEST(World, SnapshotMigrationContinuesBitIdentically)
{
    const isa::Program prog =
        isa::assemble(fleet::Fleet::defaultFirmware().listing);
    fleet::WorldConfig wc;
    wc.id = 0;
    wc.seed = sim::deriveSeed(7, 0);
    wc.wisp.power.initialVolts = 2.6;
    wc.wisp.mcu.checkpointingEnabled = true;

    auto stay = std::make_unique<fleet::World>(prog, wc);
    auto move = std::make_unique<fleet::World>(prog, wc);
    stay->start();
    move->start();
    const sim::Tick epoch = 2 * sim::oneMs;
    for (int e = 0; e < 3; ++e) {
        stay->planEpoch(e * epoch, (e + 1) * epoch, 1.0);
        move->planEpoch(e * epoch, (e + 1) * epoch, 1.0);
        stay->advanceTo((e + 1) * epoch);
        move->advanceTo((e + 1) * epoch);
    }
    ASSERT_EQ(stay->digest(), move->digest());

    // Migrate `move` into a fresh world mid-run.
    auto fresh = std::make_unique<fleet::World>(prog, wc);
    ASSERT_TRUE(fresh->adoptFrom(*move));
    move.reset();

    for (int e = 3; e < 6; ++e) {
        stay->planEpoch(e * epoch, (e + 1) * epoch, 1.0);
        fresh->planEpoch(e * epoch, (e + 1) * epoch, 1.0);
        stay->advanceTo((e + 1) * epoch);
        fresh->advanceTo((e + 1) * epoch);
    }
    EXPECT_EQ(stay->digest(), fresh->digest());
    EXPECT_GT(fresh->instrCount(), 0u);
}

TEST(World, BackoffShrinksCarrierWindow)
{
    const isa::Program prog =
        isa::assemble(fleet::Fleet::defaultFirmware().listing);
    fleet::WorldConfig wc;
    wc.seed = sim::deriveSeed(7, 1);
    wc.wisp.power.initialVolts = 2.6;
    wc.wisp.mcu.checkpointingEnabled = true;
    // Small store cap: the tag duty-cycles within an epoch, so the
    // harvested-energy difference shows up in instruction counts.
    wc.wisp.power.capacitanceF = 4.7e-7;

    fleet::World a(prog, wc), b(prog, wc);
    a.start();
    b.start();
    const sim::Tick epoch = 2 * sim::oneMs;
    for (int e = 0; e < 6; ++e) {
        // b collides every epoch: each carrier window is halved.
        b.noteOutcome(rfid::SlotOutcome::Collided);
        a.planEpoch(e * epoch, (e + 1) * epoch, 1.0);
        b.planEpoch(e * epoch, (e + 1) * epoch, 1.0);
        a.advanceTo((e + 1) * epoch);
        b.advanceTo((e + 1) * epoch);
    }
    // Less carrier-on time, less harvested charge, fewer retired
    // instructions for the backed-off tag.
    EXPECT_LT(b.instrCount(), a.instrCount());
}
