/**
 * @file
 * Tests of the parameterized NV backend (mem/nv_region.hh): the
 * passive/active split, per-technology presets, wear accounting and
 * deterministic stuck-at wear-out, energy-per-write draining, the
 * commit-burst latch, and snapshot round trips with a burst in
 * flight. The last suite drives the crash-anywhere oracle over a
 * small deterministic sweep: under the sealed commit discipline no
 * torn NV write may ever produce a hybrid restore.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "energy/harvester.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "mem/nv_region.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

constexpr mem::Addr base = 0x4000;
constexpr mem::Addr size = 0x1000;

mem::NvRegion
makeRegion(mem::NvTechConfig tech)
{
    return mem::NvRegion("nv", base, size, mem::RegionKind::Fram,
                         std::move(tech));
}

TEST(NvTech, PresetsAreActiveAndOrdered)
{
    const mem::NvTechConfig fram = mem::framTech();
    const mem::NvTechConfig flash = mem::flashTech();
    const mem::NvTechConfig mram = mem::sttMramTech();
    EXPECT_TRUE(fram.active());
    EXPECT_TRUE(flash.active());
    EXPECT_TRUE(mram.active());
    EXPECT_EQ(fram.name, "fram");
    EXPECT_EQ(flash.name, "flash");
    EXPECT_EQ(mram.name, "sttmram");
    // The magnitudes must keep their NORM-flavoured ordering: flash
    // is the slow, costly, low-endurance outlier.
    EXPECT_LT(fram.writeExtraCycles, mram.writeExtraCycles);
    EXPECT_LT(mram.writeExtraCycles, flash.writeExtraCycles);
    EXPECT_LT(fram.writeChargeCoulombs, flash.writeChargeCoulombs);
    EXPECT_GT(flash.enduranceWrites, 0u);
    EXPECT_EQ(fram.enduranceWrites, 0u);
}

TEST(NvRegion, PassiveDefaultKeepsDirectStore)
{
    mem::NvRegion nv = makeRegion({});
    EXPECT_FALSE(nv.active());
    // The published direct store is what lets the fast path (and the
    // superblock tier) devirtualize — a passive NvRegion must be
    // indistinguishable from the plain Ram it replaced.
    EXPECT_NE(nv.directStore(), nullptr);
    nv.write32(base + 8, 0xDEADBEEFu);
    EXPECT_EQ(nv.read32(base + 8), 0xDEADBEEFu);
    EXPECT_EQ(nv.wearAt(base + 8), 0u);
    EXPECT_EQ(nv.maxWear(), 0u);
}

TEST(NvRegion, ActiveRegionUnpublishesDirectStore)
{
    mem::NvRegion nv = makeRegion(mem::framTech());
    EXPECT_TRUE(nv.active());
    EXPECT_EQ(nv.directStore(), nullptr);
    nv.write32(base + 16, 0x12345678u);
    EXPECT_EQ(nv.read32(base + 16), 0x12345678u);
    EXPECT_EQ(nv.wearAt(base + 16), 1u);
    nv.write8(base + 16, 0xAA);
    EXPECT_EQ(nv.wearAt(base + 16), 2u);
    EXPECT_EQ(nv.read32(base + 16), 0x123456AAu);
    EXPECT_EQ(nv.maxWear(), 2u);
    EXPECT_EQ(nv.totalWear(), 2u);
}

TEST(NvRegion, EnduranceWearOutSticksBitsDeterministically)
{
    mem::NvTechConfig tech = mem::flashTech();
    tech.enduranceWrites = 3;
    mem::NvRegion nv = makeRegion(tech);
    const mem::Addr addr = base + 0x40;
    const std::size_t word = (addr - base) / 4;

    // Within budget: values land verbatim.
    for (int i = 0; i < 3; ++i)
        nv.write32(addr, 0xFFFFFFFFu);
    EXPECT_EQ(nv.read32(addr), 0xFFFFFFFFu);
    EXPECT_EQ(nv.wornWords(), 0u);

    // Past the budget the stuck-at bits retain the old value.
    const std::uint32_t mask = nv.stuckMask(word);
    EXPECT_NE(mask, 0u);
    nv.write32(addr, 0x00000000u);
    EXPECT_EQ(nv.read32(addr), mask);
    EXPECT_EQ(nv.wearAt(addr), 4u);
    EXPECT_EQ(nv.wornWords(), 1u);

    // The pattern is a pure function of (seed, word index): a second
    // region with the same seed agrees, a reseeded one differs
    // somewhere in the first few words.
    mem::NvRegion twin = makeRegion(tech);
    EXPECT_EQ(twin.stuckMask(word), mask);
    tech.wearSeed ^= 0x1234567ULL;
    mem::NvRegion other = makeRegion(tech);
    bool differs = false;
    for (std::size_t w = 0; w < 16 && !differs; ++w)
        differs = other.stuckMask(w) != nv.stuckMask(w);
    EXPECT_TRUE(differs);
}

TEST(NvRegion, EnergySinkSeesEveryModelledWrite)
{
    mem::NvTechConfig tech = mem::sttMramTech();
    mem::NvRegion nv = makeRegion(tech);
    double coulombs = 0.0;
    int draws = 0;
    nv.setEnergySink([&](double c) {
        coulombs += c;
        ++draws;
    });
    for (int i = 0; i < 5; ++i)
        nv.write32(base + 4 * i, 0x5Au);
    nv.write8(base + 0x100, 0x5A);
    EXPECT_EQ(draws, 6);
    EXPECT_DOUBLE_EQ(coulombs, 6 * tech.writeChargeCoulombs);
}

TEST(NvRegion, SnapshotRoundTripsBurstInFlight)
{
    mem::NvRegion nv = makeRegion(mem::flashTech());
    nv.write32(base + 0x20, 0xCAFED00Du);
    nv.write32(base + 0x20, 0x0BADF00Du);
    // Open a commit burst and leave it in flight, with one earlier
    // burst already recorded as torn.
    nv.beginBurst(base + 0x200);
    nv.noteBurstWord();
    nv.endBurst(true);
    nv.setCommitSlot(1);
    nv.beginBurst(base + 0x300);
    nv.noteBurstWord();
    nv.noteBurstWord();
    nv.noteBurstWord();

    sim::SnapshotWriter w;
    nv.saveState(w);
    const std::vector<std::uint8_t> image = w.finish();

    mem::NvRegion copy = makeRegion(mem::flashTech());
    sim::SnapshotReader r;
    ASSERT_TRUE(r.load(image));
    copy.restoreState(r);
    ASSERT_TRUE(r.ok());

    EXPECT_EQ(copy.read32(base + 0x20), 0x0BADF00Du);
    EXPECT_EQ(copy.wearAt(base + 0x20), 2u);
    EXPECT_TRUE(copy.burstOpen());
    EXPECT_EQ(copy.burstAddr(), base + 0x300);
    EXPECT_EQ(copy.burstWords(), 3u);
    EXPECT_EQ(copy.tornWrites(), 1u);
    EXPECT_EQ(copy.commitSlot(), 1);
    // The in-flight burst keeps counting after restore.
    copy.noteBurstWord();
    copy.endBurst(true);
    EXPECT_EQ(copy.tornWrites(), 2u);
}

TEST(NvRegion, WispAppliesTechnologyTable)
{
    target::WispConfig config;
    config.nvTech = mem::flashTech();
    config.power.initialVolts = 3.0;
    sim::Simulator simulator(5);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr, config);
    // The technology's write latency lands in the MCU config and the
    // FRAM member is the active backend.
    EXPECT_EQ(wisp.config().mcu.framWriteExtraCycles,
              mem::flashTech().writeExtraCycles);
    EXPECT_TRUE(wisp.framRegion().active());
    EXPECT_EQ(wisp.framRegion().tech().name, "flash");
    // NV writes drain the capacitor through the wired sink (which is
    // gated on the rail being up, so boot the device first).
    wisp.start();
    const double before = wisp.power().capacitor().voltage();
    ASSERT_GT(before, 0.0);
    for (int i = 0; i < 200; ++i)
        wisp.framRegion().write32(
            wisp.framRegion().base() + 0x800 +
                static_cast<mem::Addr>(4 * i),
            0x5Au);
    EXPECT_LT(wisp.power().capacitor().voltage(), before);
}

/** Crash-anywhere mini-sweep: the same oracle soak_nv runs at scale,
 *  pinned here as a deterministic unit test. Every case runs a
 *  generated checkpointing program under the sealed discipline with
 *  an interruptible commit and a seed-derived tear point; the NV
 *  auditor must never observe a restore from a frame no completed
 *  commit sealed. */
TEST(CrashAnywhere, SealedCommitNeverRestoresHybrids)
{
    int conclusive = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        fuzz::GeneratorOptions small;
        small.minElements = 3;
        small.maxElements = 8;
        fuzz::CaseSpec spec = fuzz::generateCase(seed, small);
        spec.checkpointing = true;
        fuzz::Element ck;
        ck.kind = fuzz::Element::Kind::Chkpt;
        spec.elements.push_back(ck);
        spec.elements.push_back(ck);
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);
        fuzz::OracleOutcome out =
            fuzz::runOracle(fuzz::OracleId::CrashAnywhere, c);
        EXPECT_FALSE(out.failed)
            << "seed " << seed << ": " << out.detail;
        if (!out.inconclusive)
            ++conclusive;
    }
    // The sweep must have teeth: a healthy fraction of the seeds
    // actually tears a commit (9/30 with the current generator).
    EXPECT_GE(conclusive, 5);
}

} // namespace
