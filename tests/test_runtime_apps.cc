/**
 * @file
 * Tests of the target-side runtime (libEDB, checkpoint runtime) and
 * the guest applications: they must assemble under every option
 * combination and behave correctly on continuous power.
 */

#include <gtest/gtest.h>

#include "apps/activity.hh"
#include "apps/fibonacci.hh"
#include "apps/linked_list.hh"
#include "apps/rfid_firmware.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "mcu/mmio_map.hh"
#include "runtime/checkpoint.hh"
#include "runtime/libedb.hh"
#include "runtime/protocol_defs.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

TEST(LibEdb, EquatesMatchMmioConstants)
{
    std::string equates = runtime::mmioEquates();
    auto expect_equ = [&equates](const char *name,
                                 std::uint32_t value) {
        std::string line = std::string(".equ ") + name + ", " +
                           std::to_string(value) + "\n";
        EXPECT_NE(equates.find(line), std::string::npos) << line;
    };
    expect_equ("GPIO_OUT", mcu::mmio::gpioOut);
    expect_equ("MARKER", mcu::mmio::marker);
    expect_equ("DBGREQ", mcu::mmio::dbgReq);
    expect_equ("BKPTMASK", mcu::mmio::bkptMask);
    expect_equ("MSG_PRINTF", runtime::proto::msgPrintf);
    expect_equ("CMD_RESUME", runtime::proto::cmdResume);
}

TEST(LibEdb, LibraryAssembles)
{
    EXPECT_NO_THROW(isa::assemble(runtime::programHeader() +
                                  "main:\n    halt\n" +
                                  runtime::libedbSource()));
}

TEST(LibEdb, ExportsAllTableOneEntryPoints)
{
    auto program = isa::assemble(runtime::programHeader() +
                                 "main:\n    halt\n" +
                                 runtime::libedbSource());
    for (const char *symbol :
         {"edb_watchpoint", "edb_assert_fail", "edb_breakpoint",
          "edb_energy_guard_begin", "edb_energy_guard_end",
          "edb_printf", "edb_dbg_isr", "edb_service_loop"}) {
        EXPECT_TRUE(program.hasSymbol(symbol)) << symbol;
    }
    EXPECT_EQ(program.irqHandler, program.symbol("edb_dbg_isr"));
}

TEST(CheckpointRuntime, AdcCodeConversion)
{
    EXPECT_EQ(runtime::adcCodeForVolts(0.0), 0u);
    EXPECT_EQ(runtime::adcCodeForVolts(3.0), 4095u);
    EXPECT_EQ(runtime::adcCodeForVolts(99.0), 4095u);
    EXPECT_NEAR(runtime::adcCodeForVolts(1.5), 2048, 1);
}

TEST(CheckpointRuntime, AdcCodeBoundaries)
{
    // Clamping at both rails, default 12-bit / 3.0 V reference.
    EXPECT_EQ(runtime::adcCodeForVolts(-0.5), 0u);
    EXPECT_EQ(runtime::adcCodeForVolts(3.0), 4095u);
    EXPECT_EQ(runtime::adcCodeForVolts(3.0001), 4095u);
    // 1.5 V is exactly 2047.5 codes; lround rounds away from zero,
    // matching mcu::Adc::quantize.
    EXPECT_EQ(runtime::adcCodeForVolts(1.5), 2048u);
    // One LSB above zero resolves, one LSB below full scale stays
    // below it.
    EXPECT_EQ(runtime::adcCodeForVolts(3.0 / 4095.0), 1u);
    EXPECT_EQ(runtime::adcCodeForVolts(3.0 * 4094.0 / 4095.0),
              4094u);
    // Non-default resolution and reference.
    EXPECT_EQ(runtime::adcCodeForVolts(0.0, 8, 2.0), 0u);
    EXPECT_EQ(runtime::adcCodeForVolts(2.0, 8, 2.0), 255u);
    EXPECT_EQ(runtime::adcCodeForVolts(5.0, 8, 2.0), 255u);
    EXPECT_EQ(runtime::adcCodeForVolts(1.0, 8, 2.0), 128u);
    EXPECT_EQ(runtime::adcCodeForVolts(-1.0, 8, 2.0), 0u);
}

/** rt_checkpoint_if_low at the exact threshold code. The runtime
 *  documents "strictly below" (bgeu), so a reading equal to the
 *  threshold must skip and a threshold one code higher must take the
 *  checkpoint. The ADC's Vcap channel is replaced with a constant
 *  source so the reading is deterministic. */
TEST(CheckpointRuntime, ExactThresholdSkipsCheckpoint)
{
    const double volts = 1.5;
    const unsigned code = runtime::adcCodeForVolts(volts);
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    sim::Simulator simulator(72);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr, config);
    wisp.adc().addChannel(0, [volts] { return volts; });
    ASSERT_EQ(wisp.adc().quantize(volts), code);
    std::string source =
        runtime::programHeader() + "main:\n    li   r1, " +
        std::to_string(code) + R"(
    call rt_checkpoint_if_low
    la   r2, 0x5000
    stw  r0, [r2]            ; 0 = equal reading skips
    li   r1, )" + std::to_string(code + 1) +
        R"(
    call rt_checkpoint_if_low
    la   r2, 0x5004
    stw  r0, [r2]            ; 1 = one code higher takes it
    halt
)" + runtime::checkpointSource() +
        runtime::libedbSource();
    wisp.flash(isa::assemble(source));
    wisp.start();
    simulator.runFor(200 * sim::oneMs);
    ASSERT_EQ(wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5000), 0u);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5004), 1u);
    EXPECT_EQ(wisp.mcu().checkpointCount(), 1u);
}

TEST(CheckpointRuntime, VoltageConditionalCheckpoint)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    sim::Simulator simulator(71);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr, config);
    // Threshold far above Vcap: always checkpoints. Then a threshold
    // of 0: never checkpoints.
    std::string source = runtime::programHeader() + R"(
main:
    li   r1, 4095
    call rt_checkpoint_if_low
    la   r2, 0x5000
    stw  r0, [r2]            ; 1 = checkpoint taken
    li   r1, 0
    call rt_checkpoint_if_low
    la   r2, 0x5004
    stw  r0, [r2]            ; 0 = not taken
    halt
)" + runtime::checkpointSource() +
                         runtime::libedbSource();
    wisp.flash(isa::assemble(source));
    wisp.start();
    simulator.runFor(200 * sim::oneMs);
    ASSERT_EQ(wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5000), 1u);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5004), 0u);
    EXPECT_EQ(wisp.mcu().checkpointCount(), 1u);
}

/** Every option combination of every app must assemble. */
TEST(Apps, AllVariantsAssemble)
{
    for (bool with_assert : {false, true}) {
        for (bool with_chkpt : {false, true}) {
            for (bool led : {false, true}) {
                apps::LinkedListOptions options;
                options.withAssert = with_assert;
                options.withCheckpoint = with_chkpt;
                options.ledTracing = led;
                EXPECT_NO_THROW(apps::buildLinkedListApp(options));
            }
        }
    }
    for (bool check : {false, true}) {
        for (bool guards : {false, true}) {
            for (bool assert_on : {false, true}) {
                apps::FibonacciOptions options;
                options.withCheck = check;
                options.withGuards = guards;
                options.assertOnViolation = assert_on;
                EXPECT_NO_THROW(apps::buildFibonacciApp(options));
            }
        }
    }
    for (auto output :
         {apps::ActivityOutput::None, apps::ActivityOutput::UartPrintf,
          apps::ActivityOutput::EdbPrintf}) {
        for (bool wp : {false, true}) {
            apps::ActivityOptions options;
            options.output = output;
            options.withWatchpoints = wp;
            EXPECT_NO_THROW(apps::buildActivityApp(options));
        }
    }
    for (bool wp : {false, true}) {
        apps::RfidFirmwareOptions options;
        options.withWatchpoints = wp;
        EXPECT_NO_THROW(apps::buildRfidFirmware(options));
    }
}

TEST(Apps, ProgramsFitTheirMemoryBudget)
{
    // Code must stay below the app data area at 0x5000.
    for (const auto &program :
         {apps::buildLinkedListApp({true, true, false}),
          apps::buildFibonacciApp({true, true, true, 0}),
          apps::buildActivityApp(
              {apps::ActivityOutput::UartPrintf, true, 8, 350}),
          apps::buildRfidFirmware({true, 50})}) {
        for (const auto &seg : program.segments) {
            EXPECT_GE(seg.base, 0x4000u);
            EXPECT_LE(seg.base + seg.bytes.size(), 0x5000u)
                << "code overruns into the data area";
        }
    }
}

struct AppRig
{
    sim::Simulator sim{73};
    energy::TheveninHarvester supply{3.0, 50.0};
    target::Wisp wisp;

    AppRig() : wisp(sim, "wisp", &supply, nullptr) {}
};

TEST(Apps, LinkedListInvariantHoldsOnContinuousPower)
{
    namespace lay = apps::linked_list_layout;
    AppRig rig;
    apps::LinkedListOptions options;
    options.withAssert = true; // must never fire on bench power
    rig.wisp.flash(apps::buildLinkedListApp(options));
    rig.wisp.start();
    rig.sim.runFor(500 * sim::oneMs);
    EXPECT_EQ(rig.wisp.state(), mcu::McuState::Running);
    EXPECT_EQ(rig.wisp.mcu().faultCount(), 0u);
    EXPECT_GT(rig.wisp.mcu().debugRead32(lay::iterCountAddr), 1000u);
    // The node's value counts completed append cycles.
    EXPECT_GT(rig.wisp.mcu().debugRead32(lay::poolAddr +
                                         lay::nodeValueOff),
              500u);
}

TEST(Apps, FibonacciValuesAreCorrect)
{
    namespace lay = apps::fibonacci_layout;
    AppRig rig;
    apps::FibonacciOptions options;
    options.maxNodes = 20;
    rig.wisp.flash(apps::buildFibonacciApp(options));
    rig.wisp.start();
    rig.sim.runFor(200 * sim::oneMs);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(rig.wisp.mcu().debugRead32(lay::countAddr), 20u);
    std::uint32_t expect_a = 1, expect_b = 1;
    for (unsigned i = 1; i <= 20; ++i) {
        std::uint32_t fib = i <= 2 ? 1 : expect_a + expect_b;
        if (i > 2) {
            expect_a = expect_b;
            expect_b = fib;
        }
        std::uint32_t node = lay::poolAddr + (i - 1) * 16;
        EXPECT_EQ(rig.wisp.mcu().debugRead32(node +
                                             lay::nodeValueOff),
                  fib)
            << "node " << i;
    }
}

TEST(Apps, FibonacciCheckAcceptsOwnList)
{
    namespace lay = apps::fibonacci_layout;
    AppRig rig;
    apps::FibonacciOptions options;
    options.withCheck = true;
    options.maxNodes = 30;
    rig.wisp.flash(apps::buildFibonacciApp(options));
    rig.wisp.start();
    rig.sim.runFor(2 * sim::oneSec);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(rig.wisp.mcu().debugRead32(lay::violationsAddr), 0u);
}

TEST(Apps, ActivityClassifierMatchesGroundTruth)
{
    namespace lay = apps::activity_layout;
    AppRig rig;
    rig.wisp.flash(apps::buildActivityApp({}));
    rig.wisp.start();
    rig.sim.runFor(4 * sim::oneSec);
    std::uint32_t total =
        rig.wisp.mcu().debugRead32(lay::totalAddr);
    std::uint32_t moving =
        rig.wisp.mcu().debugRead32(lay::movingAddr);
    std::uint32_t still =
        rig.wisp.mcu().debugRead32(lay::stillAddr);
    ASSERT_GT(total, 100u);
    EXPECT_EQ(moving + still, total);
    auto &accel = rig.wisp.accelerometer();
    double truth = double(accel.movingSamples()) /
                   double(accel.sampleCount());
    double classified = double(moving) / double(total);
    EXPECT_NEAR(classified, truth, 0.1);
}

TEST(Apps, ActivitySuccessRateIsPerfectOnBenchPower)
{
    namespace lay = apps::activity_layout;
    AppRig rig;
    rig.wisp.flash(apps::buildActivityApp({}));
    rig.wisp.start();
    rig.sim.runFor(2 * sim::oneSec);
    std::uint32_t started =
        rig.wisp.mcu().debugRead32(lay::startedAddr);
    std::uint32_t total =
        rig.wisp.mcu().debugRead32(lay::totalAddr);
    // At most one iteration in flight.
    EXPECT_LE(started - total, 1u);
}

} // namespace
