/**
 * @file
 * Unit tests of the EH32 MCU: instruction semantics, faults, reboot
 * behaviour, the hardware checkpoint unit and the debug interrupt.
 */

#include <gtest/gtest.h>

#include "apps/linked_list.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** Wisp on a strong supply; helper to run a program to HALT. */
struct McuRig
{
    sim::Simulator sim{17};
    energy::TheveninHarvester supply{3.0, 50.0};
    target::Wisp wisp;

    explicit McuRig(target::WispConfig config = {})
        : wisp(sim, "wisp", &supply, nullptr, config)
    {}

    /** Run `body` (with implicit .org/.entry) until HALT/timeout. */
    mcu::Mcu &
    run(const std::string &body,
        sim::Tick timeout = 500 * sim::oneMs)
    {
        wisp.flash(isa::assemble(".org 0x4000\n.entry main\n" + body));
        wisp.start();
        sim.runFor(timeout);
        return wisp.mcu();
    }

    std::uint32_t mem(std::uint32_t addr)
    {
        return wisp.mcu().debugRead32(addr);
    }
};

TEST(McuExec, ArithmeticAndLogic)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, 100
    li   r2, 7
    add  r3, r1, r2
    sub  r4, r1, r2
    mul  r5, r1, r2
    divu r6, r1, r2
    remu r7, r1, r2
    and  r8, r1, r2
    or   r9, r1, r2
    xor  r10, r1, r2
    halt
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcu.reg(3), 107u);
    EXPECT_EQ(mcu.reg(4), 93u);
    EXPECT_EQ(mcu.reg(5), 700u);
    EXPECT_EQ(mcu.reg(6), 14u);
    EXPECT_EQ(mcu.reg(7), 2u);
    EXPECT_EQ(mcu.reg(8), 100u & 7u);
    EXPECT_EQ(mcu.reg(9), 100u | 7u);
    EXPECT_EQ(mcu.reg(10), 100u ^ 7u);
}

TEST(McuExec, DivisionByZeroDefined)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, 55
    li   r2, 0
    divu r3, r1, r2
    remu r4, r1, r2
    halt
)");
    EXPECT_EQ(mcu.reg(3), 0xFFFFFFFFu);
    EXPECT_EQ(mcu.reg(4), 55u);
}

TEST(McuExec, Shifts)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, -8
    li   r2, 2
    shl  r3, r1, r2
    shr  r4, r1, r2
    sar  r5, r1, r2
    shli r6, r1, 1
    shri r7, r1, 28
    halt
)");
    EXPECT_EQ(mcu.reg(3), static_cast<std::uint32_t>(-8) << 2);
    EXPECT_EQ(mcu.reg(4), static_cast<std::uint32_t>(-8) >> 2);
    EXPECT_EQ(mcu.reg(5), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(mcu.reg(6), static_cast<std::uint32_t>(-16));
    EXPECT_EQ(mcu.reg(7), 0xFu);
}

TEST(McuExec, LuiOriBuildsAddresses)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, 0xDEADBEEF
    halt
)");
    EXPECT_EQ(mcu.reg(1), 0xDEADBEEFu);
}

/** Signed/unsigned compare-branch sweep. */
struct ComparePair
{
    std::int32_t a;
    std::int32_t b;
};

class CompareBranch : public ::testing::TestWithParam<ComparePair>
{};

TEST_P(CompareBranch, AllConditionsMatchCpp)
{
    auto [a, b] = GetParam();
    McuRig rig;
    // Results in r8..r13: eq, ne, lt, ge, ltu, geu (1 = taken).
    char body[1024];
    // `la` takes the unsigned 32-bit image of the value.
    std::snprintf(body, sizeof body, R"(
main:
    la   r1, %u
    la   r2, %u
    li   r8, 0
    li   r9, 0
    li   r10, 0
    li   r11, 0
    li   r12, 0
    li   r13, 0
    cmp  r1, r2
    bne  c1
    li   r8, 1
c1: cmp  r1, r2
    beq  c2
    li   r9, 1
c2: cmp  r1, r2
    bge  c3
    li   r10, 1
c3: cmp  r1, r2
    blt  c4
    li   r11, 1
c4: cmp  r1, r2
    bgeu c5
    li   r12, 1
c5: cmp  r1, r2
    bltu c6
    li   r13, 1
c6: halt
)",
                  static_cast<std::uint32_t>(a),
                  static_cast<std::uint32_t>(b));
    auto &mcu = rig.run(body);
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    auto ua = static_cast<std::uint32_t>(a);
    auto ub = static_cast<std::uint32_t>(b);
    EXPECT_EQ(mcu.reg(8), a == b ? 1u : 0u) << a << " vs " << b;
    EXPECT_EQ(mcu.reg(9), a != b ? 1u : 0u);
    EXPECT_EQ(mcu.reg(10), a < b ? 1u : 0u);
    EXPECT_EQ(mcu.reg(11), a >= b ? 1u : 0u);
    EXPECT_EQ(mcu.reg(12), ua < ub ? 1u : 0u);
    EXPECT_EQ(mcu.reg(13), ua >= ub ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CompareBranch,
    ::testing::Values(ComparePair{0, 0}, ComparePair{1, 2},
                      ComparePair{2, 1}, ComparePair{-1, 1},
                      ComparePair{1, -1}, ComparePair{-5, -3},
                      ComparePair{-3, -5},
                      ComparePair{INT32_MIN, INT32_MAX},
                      ComparePair{INT32_MAX, INT32_MIN},
                      ComparePair{INT32_MIN, -1}));

TEST(McuExec, LoadStoreByteAndWord)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, 0x5000
    la   r2, 0x11223344
    stw  r2, [r1]
    ldb  r3, [r1 + 1]
    li   r4, 0xAB
    stb  r4, [r1 + 2]
    ldw  r5, [r1]
    halt
)");
    EXPECT_EQ(mcu.reg(3), 0x33u);
    EXPECT_EQ(mcu.reg(5), 0x11AB3344u);
}

TEST(McuExec, StackPushPopCallRet)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, 11
    li   r2, 22
    push r1
    push r2
    pop  r3
    pop  r4
    call fn
    li   r6, 1
    halt
fn:
    li   r5, 33
    ret
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcu.reg(3), 22u);
    EXPECT_EQ(mcu.reg(4), 11u);
    EXPECT_EQ(mcu.reg(5), 33u);
    EXPECT_EQ(mcu.reg(6), 1u);
    // Stack pointer restored.
    EXPECT_EQ(mcu.reg(isa::regSp), target::layout::stackTop);
}

TEST(McuExec, CallrJumpsViaRegister)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, fn
    callr r1
    halt
fn:
    li   r7, 77
    ret
)");
    EXPECT_EQ(mcu.reg(7), 77u);
}

TEST(McuFaults, UnmappedAccessIsBusError)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, 0
    ldw  r2, [r1 + 4]
    halt
)");
    EXPECT_EQ(mcu.state(), mcu::McuState::Faulted);
    EXPECT_EQ(mcu.fault(), mcu::McuFault::BusError);
    EXPECT_EQ(mcu.faultCount(), 1u);
}

TEST(McuFaults, MisalignedWordAccess)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, 0x5001
    ldw  r2, [r1]
    halt
)");
    EXPECT_EQ(mcu.state(), mcu::McuState::Faulted);
    EXPECT_EQ(mcu.fault(), mcu::McuFault::Misaligned);
}

TEST(McuFaults, IllegalInstruction)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    .word 0xFF000000
)");
    EXPECT_EQ(mcu.state(), mcu::McuState::Faulted);
    EXPECT_EQ(mcu.fault(), mcu::McuFault::IllegalInstr);
}

TEST(McuPower, RebootClearsVolatileKeepsFram)
{
    McuRig rig;
    rig.wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    la   r1, 0x5000        ; FRAM counter
    ldw  r2, [r1]
    addi r2, r2, 1
    stw  r2, [r1]
    la   r3, 0x2000        ; SRAM cell
    stw  r2, [r3]
    halt
)"));
    rig.wisp.start();
    rig.sim.runFor(50 * sim::oneMs);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(rig.mem(0x5000), 1u);
    EXPECT_EQ(rig.mem(0x2000), 1u);

    // Force a brown-out + reboot by draining the capacitor.
    rig.wisp.power().capacitor().setVoltage(0.5);
    rig.sim.runFor(200 * sim::oneMs);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(rig.mem(0x5000), 2u); // FRAM persisted, incremented
    EXPECT_EQ(rig.wisp.mcu().rebootCount(), 2u);
}

TEST(McuPower, SramPoisonedAcrossReboot)
{
    McuRig rig;
    rig.wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    la   r1, 0x2100
    ldw  r2, [r1]          ; read SRAM before writing
    la   r3, 0x5100
    stw  r2, [r3]          ; expose what we saw to FRAM
    la   r4, 0x1234
    stw  r4, [r1]
    halt
)"));
    rig.wisp.start();
    rig.sim.runFor(50 * sim::oneMs);
    // First boot: SRAM starts zeroed (fresh silicon model).
    EXPECT_EQ(rig.mem(0x5100), 0u);
    rig.wisp.power().capacitor().setVoltage(0.5);
    rig.sim.runFor(200 * sim::oneMs);
    // After power loss the SRAM reads back poison, not 0x1234.
    EXPECT_EQ(rig.mem(0x5100), 0xCDCDCDCDu);
}

TEST(McuPower, HaltDropsToLowPower)
{
    McuRig rig;
    auto &mcu = rig.run("main:\n    halt\n");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    EXPECT_DOUBLE_EQ(rig.wisp.power().totalLoadAmps(),
                     rig.wisp.config().mcu.haltAmps);
}

TEST(McuPower, CyclesAccumulateOnlyWhileRunning)
{
    McuRig rig;
    auto &mcu = rig.run("main:\n    halt\n");
    std::uint64_t cycles = mcu.cycleCount();
    EXPECT_GT(cycles, 0u);
    rig.sim.runFor(100 * sim::oneMs);
    EXPECT_EQ(mcu.cycleCount(), cycles);
}

TEST(McuMmio, CycleCounterReadable)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, 0xF084
    ldw  r2, [r1]
    ldw  r3, [r1]
    cmp  r3, r2
    bgeu ok
    halt
ok:
    sub  r4, r3, r2
    halt
)");
    EXPECT_GT(mcu.reg(4), 0u);
}

TEST(Checkpoint, SaveAndRestoreAcrossReboot)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    McuRig rig(config);
    // Program increments a volatile register-resident counter but
    // checkpoints each iteration; after 5 it commits to FRAM and
    // halts. Restoring must preserve r5 across reboots.
    rig.wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    li   r5, 0
loop:
    chkpt
    addi r5, r5, 1
    cmpi r5, 5
    blt  loop
    la   r1, 0x5000
    ldw  r2, [r1]
    add  r2, r2, r5
    stw  r2, [r1]
    halt
)"));
    rig.wisp.start();
    rig.sim.runFor(50 * sim::oneMs);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(rig.mem(0x5000), 5u);
    EXPECT_GT(rig.wisp.mcu().checkpointCount(), 0u);

    // Reboot: execution resumes from the checkpoint (inside `loop`),
    // NOT from main -- so r5 is not reset and the total grows by at
    // most 5 more (the remaining iterations), not by another 5 from
    // scratch... it re-runs from the last checkpoint: r5 resumed.
    rig.wisp.power().capacitor().setVoltage(0.5);
    rig.sim.runFor(300 * sim::oneMs);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Halted);
    EXPECT_GT(rig.wisp.mcu().restoreCount(), 0u);
    // Restored at the last checkpoint (r5 == 4, about to becomes 5):
    // the tail of the loop re-executes and adds 5 again.
    EXPECT_EQ(rig.mem(0x5000), 10u);
}

TEST(Checkpoint, DisabledChkptIsNop)
{
    McuRig rig; // checkpointing disabled by default
    auto &mcu = rig.run(R"(
main:
    li   r5, 9
    chkpt
    halt
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcu.checkpointCount(), 0u);
}

TEST(Checkpoint, MmioEnableToggle)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, 0xF090
    li   r2, 1
    stw  r2, [r1]          ; enable the checkpoint unit at runtime
    chkpt
    halt
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcu.checkpointCount(), 1u);
    EXPECT_EQ(mcu.reg(0), 1u); // chkpt success flag
}

TEST(Checkpoint, DoubleBufferingAlternatesSlots)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    McuRig rig(config);
    rig.run(R"(
main:
    chkpt
    chkpt
    chkpt
    halt
)");
    auto &mcu = rig.wisp.mcu();
    auto &cfg = rig.wisp.config().mcu;
    std::uint32_t seq0 = mcu.debugRead32(cfg.checkpointBase + 4);
    std::uint32_t seq1 = mcu.debugRead32(cfg.checkpointBase +
                                         cfg.checkpointSlotSize + 4);
    // Three checkpoints: slots hold sequence numbers {3, 2}.
    EXPECT_EQ(std::max(seq0, seq1), 3u);
    EXPECT_EQ(std::min(seq0, seq1), 2u);
}

TEST(DebugIrq, EntersHandlerAndReturns)
{
    McuRig rig;
    rig.wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
.irq isr
main:
    li   r5, 0
loop:
    addi r5, r5, 1
    br   loop
isr:
    la   r1, 0x5000
    stw  r5, [r1]          ; record the interrupted counter
    reti
)"));
    rig.wisp.start();
    rig.sim.runFor(10 * sim::oneMs);
    ASSERT_EQ(rig.wisp.state(), mcu::McuState::Running);
    rig.wisp.mcu().raiseDebugIrq();
    rig.sim.runFor(sim::oneMs);
    EXPECT_TRUE(rig.wisp.mcu().inDebugIrq());
    rig.wisp.mcu().clearDebugIrq();
    rig.sim.runFor(sim::oneMs);
    EXPECT_FALSE(rig.wisp.mcu().inDebugIrq());
    // The counter kept counting after reti.
    std::uint32_t snapshot = rig.mem(0x5000);
    EXPECT_GT(snapshot, 0u);
    rig.sim.runFor(sim::oneMs);
    EXPECT_GT(rig.wisp.mcu().reg(5), snapshot);
}

TEST(DebugIrq, IgnoredWithoutHandler)
{
    McuRig rig;
    rig.wisp.flash(isa::assemble(R"(
.org 0x4000
.entry main
main:
    br   main
)"));
    rig.wisp.start();
    rig.sim.runFor(10 * sim::oneMs);
    rig.wisp.mcu().raiseDebugIrq();
    rig.sim.runFor(sim::oneMs);
    EXPECT_FALSE(rig.wisp.mcu().inDebugIrq());
    EXPECT_EQ(rig.wisp.state(), mcu::McuState::Running);
}

TEST(McuExec, FaultedCoreStillDrawsCurrent)
{
    McuRig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, 0
    stw  r1, [r1]
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Faulted);
    // The crashed core keeps its active load: this is what makes the
    // device discharge and reboot in the paper's failure loop.
    EXPECT_DOUBLE_EQ(rig.wisp.power().totalLoadAmps(),
                     rig.wisp.config().mcu.activeAmps);
}

TEST(McuExec, InstructionTracerObservesStream)
{
    McuRig rig;
    std::vector<isa::Opcode> seen;
    rig.wisp.mcu().setTracer(
        [&seen](mem::Addr, const isa::Instr &instr) {
            seen.push_back(instr.op);
        });
    rig.run(R"(
main:
    li   r1, 1
    nop
    halt
)");
    ASSERT_GE(seen.size(), 3u);
    EXPECT_EQ(seen[0], isa::Opcode::Li);
    EXPECT_EQ(seen[1], isa::Opcode::Nop);
    EXPECT_EQ(seen[2], isa::Opcode::Halt);
}

} // namespace
