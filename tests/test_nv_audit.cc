/**
 * @file
 * Tests for the non-volatile consistency auditor: the register-taint
 * machine in isolation, WAR detection on the paper's linked-list bug,
 * absence of false positives on the benign apps, and the EdbBoard
 * surfacing path (ConsistencyViolation sessions).
 */

#include <gtest/gtest.h>

#include "apps/activity.hh"
#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "isa/assembler.hh"
#include "mem/nv_audit.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;
using namespace edb::mem;

namespace {

NvAuditConfig
wispAuditConfig(const target::Wisp &wisp)
{
    NvAuditConfig cfg;
    cfg.nvBase = 0;
    cfg.nvSize = 0; // whole region
    cfg.checkpointBase = wisp.config().mcu.checkpointBase;
    cfg.checkpointSpan = 2 * wisp.config().mcu.checkpointSlotSize;
    return cfg;
}

void
attachAuditor(target::Wisp &wisp, NvAuditor &audit)
{
    wisp.mcu().setAuditor(&audit);
    wisp.memoryMap().setWriteHook(&NvAuditor::rawWriteHook, &audit);
}

// ---------------------------------------------------------------
// Taint machine in isolation.
// ---------------------------------------------------------------

class NvAuditUnit : public ::testing::Test
{
  protected:
    NvAuditUnit() : fram("fram", 0x4000, 0x1000, RegionKind::Fram) {}

    NvAuditConfig
    cfg()
    {
        NvAuditConfig c;
        c.checkpointBase = 0x4800;
        c.checkpointSpan = 0x100;
        return c;
    }

    Ram fram;
};

TEST_F(NvAuditUnit, LoadTaintsAndStoreThroughTaintOpensRecord)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(3, 0x4010, 4);       // r3 <- [NV]
    audit.onStore(3, 0x4100, 0x40, 4); // [r3 target in NV]
    EXPECT_EQ(audit.openRecords(), 1u);
    audit.onPowerLoss(100);
    EXPECT_EQ(audit.violationCount(), 1u);
    ASSERT_EQ(audit.findings().size(), 1u);
    const NvFinding &f = audit.findings()[0];
    EXPECT_EQ(f.guideAddr, 0x4010u);
    EXPECT_EQ(f.storeAddr, 0x4100u);
    EXPECT_EQ(f.storePc, 0x40u);
    EXPECT_EQ(f.lossTick, 100);
    // The report names the offending addresses and the interval.
    std::string text = nvFindingText(f);
    EXPECT_NE(text.find("0x4100"), std::string::npos);
    EXPECT_NE(text.find("0x4010"), std::string::npos);
    EXPECT_NE(text.find("interval"), std::string::npos);
}

TEST_F(NvAuditUnit, WriteOverGuideClosesRecord)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(3, 0x4010, 4);
    audit.onStore(3, 0x4100, 0x40, 4);
    EXPECT_EQ(audit.openRecords(), 1u);
    // The interval updates the read's own source: benign RMW shape.
    audit.rawWriteHook(&audit, 0x4010, 4);
    EXPECT_EQ(audit.openRecords(), 0u);
    audit.onPowerLoss(100);
    EXPECT_EQ(audit.violationCount(), 0u);
}

TEST_F(NvAuditUnit, CheckpointCommitClosesRecords)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(3, 0x4010, 4);
    audit.onStore(3, 0x4100, 0x40, 4);
    audit.onCheckpointCommit(50);
    EXPECT_EQ(audit.openRecords(), 0u);
    EXPECT_TRUE(audit.shadowValid());
    EXPECT_EQ(audit.shadowTick(), 50);
    audit.onPowerLoss(100);
    EXPECT_EQ(audit.violationCount(), 0u);
}

TEST_F(NvAuditUnit, TaintPropagatesThroughDeriveAndCombine)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(1, 0x4020, 4);
    audit.onRegDerive(2, 1);    // mov r2, r1
    audit.onRegCombine(4, 2, 5); // add r4, r2, r5
    audit.onStore(4, 0x4200, 0x44, 4);
    EXPECT_EQ(audit.openRecords(), 1u);
    audit.onPowerLoss(10);
    ASSERT_EQ(audit.findings().size(), 1u);
    EXPECT_EQ(audit.findings()[0].guideAddr, 0x4020u);
}

TEST_F(NvAuditUnit, FreshRegisterWriteClearsTaint)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(1, 0x4020, 4);
    audit.onRegWrite(1); // li r1, ...
    audit.onStore(1, 0x4200, 0x44, 4);
    EXPECT_EQ(audit.openRecords(), 0u);
}

TEST_F(NvAuditUnit, NonNvAddressesAreIgnored)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(1, 0x1000, 4); // SRAM load: clears, not taints
    audit.onStore(1, 0x4100, 0x40, 4);
    EXPECT_EQ(audit.openRecords(), 0u);
    audit.onLoad(1, 0x4010, 4);
    audit.onStore(1, 0x1000, 0x40, 4); // SRAM store: not audited
    EXPECT_EQ(audit.openRecords(), 0u);
}

TEST_F(NvAuditUnit, CheckpointSlotsAreExcluded)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    audit.onLoad(1, 0x4810, 4); // inside the slot range: no taint
    audit.onStore(1, 0x4100, 0x40, 4);
    EXPECT_EQ(audit.openRecords(), 0u);
    audit.onLoad(1, 0x4010, 4);
    audit.onStore(1, 0x4820, 0x40, 4); // slot store: not audited
    EXPECT_EQ(audit.openRecords(), 0u);
}

TEST_F(NvAuditUnit, BootStartsFreshInterval)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    EXPECT_EQ(audit.intervalIndex(), 1u);
    audit.onLoad(1, 0x4010, 4);
    audit.onBoot(10);
    EXPECT_EQ(audit.intervalIndex(), 2u);
    // Taint does not survive the reboot (registers are volatile).
    audit.onStore(1, 0x4100, 0x40, 4);
    EXPECT_EQ(audit.openRecords(), 0u);
}

TEST_F(NvAuditUnit, FindingsCapDoesNotLoseTheCount)
{
    NvAuditConfig c = cfg();
    c.maxFindings = 2;
    NvAuditor audit(c, fram);
    audit.onBoot(0);
    for (int i = 0; i < 5; ++i) {
        audit.onLoad(1, 0x4010, 4);
        audit.onStore(1, 0x4100 + 4 * i, 0x40, 4);
    }
    audit.onPowerLoss(10);
    EXPECT_EQ(audit.findings().size(), 2u);
    EXPECT_EQ(audit.violationCount(), 5u);
}

TEST_F(NvAuditUnit, ShadowDiffReportsDivergence)
{
    NvAuditor audit(cfg(), fram);
    audit.onBoot(0);
    fram.write8(0x4010, 0x11);
    audit.onCheckpointCommit(5);
    EXPECT_TRUE(audit.shadowDiff().empty());
    fram.write8(0x4010, 0x22);
    fram.write8(0x4900, 0x33);
    auto diffs = audit.shadowDiff();
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(diffs[0], 0x4010u);
    EXPECT_EQ(diffs[1], 0x4900u);
    // Checkpoint-slot bytes never count as divergence.
    fram.write8(0x4810, 0x44);
    EXPECT_EQ(audit.shadowDiff().size(), 2u);
}

// ---------------------------------------------------------------
// Whole-target integration.
// ---------------------------------------------------------------

TEST(NvAuditIntegration, LinkedListBugIsFlagged)
{
    sim::Simulator simulator(1);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf);
    NvAuditor audit(wispAuditConfig(wisp), wisp.framRegion());
    attachAuditor(wisp, audit);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    simulator.runFor(10 * sim::oneSec);

    EXPECT_GT(audit.violationCount(), 0u)
        << "the paper's append/remove WAR bug must be caught";
    ASSERT_FALSE(audit.findings().empty());
    namespace lay = apps::linked_list_layout;
    const NvFinding &f = audit.findings()[0];
    // The offending store lands in the list's FRAM working set.
    EXPECT_GE(f.storeAddr, target::layout::framBase);
    EXPECT_LT(f.storeAddr,
              target::layout::framBase + target::layout::framSize);
    EXPECT_GE(f.interval, 1u);
    EXPECT_GT(f.lossTick, 0);
}

TEST(NvAuditIntegration, QuickstartCounterIsClean)
{
    sim::Simulator simulator(2024);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf);
    NvAuditor audit(wispAuditConfig(wisp), wisp.framRegion());
    attachAuditor(wisp, audit);
    auto program = isa::assemble(runtime::programHeader() + R"(
.equ COUNTER, 0x5000
main:
    la   r5, COUNTER
loop:
    ldw  r1, [r5]
    addi r1, r1, 1
    stw  r1, [r5]
    br   loop
)" + runtime::libedbSource());
    wisp.flash(program);
    wisp.start();
    simulator.runFor(5 * sim::oneSec);

    EXPECT_GT(wisp.power().bootCount(), 1u);
    EXPECT_GT(audit.intervalReads(), 0u);
    EXPECT_EQ(audit.violationCount(), 0u)
        << "the benign RMW counter must not be flagged";
}

TEST(NvAuditIntegration, ActivityAppIsClean)
{
    sim::Simulator simulator(7);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf);
    NvAuditor audit(wispAuditConfig(wisp), wisp.framRegion());
    attachAuditor(wisp, audit);
    wisp.flash(apps::buildActivityApp());
    wisp.start();
    simulator.runFor(5 * sim::oneSec);

    EXPECT_GT(wisp.power().bootCount(), 1u);
    EXPECT_EQ(audit.violationCount(), 0u);
}

TEST(NvAuditIntegration, CheckpointedLinkedListStillHasWindows)
{
    // Checkpoints bound the damage but the append/remove windows are
    // not covered by them, so violations still surface.
    sim::Simulator simulator(1);
    energy::RfHarvester rf(30.0, 1.0);
    target::WispConfig cfg;
    cfg.mcu.checkpointingEnabled = true;
    target::Wisp wisp(simulator, "wisp", &rf, nullptr, cfg);
    NvAuditor audit(wispAuditConfig(wisp), wisp.framRegion());
    attachAuditor(wisp, audit);
    apps::LinkedListOptions options;
    options.withCheckpoint = true;
    wisp.flash(apps::buildLinkedListApp(options));
    wisp.start();
    simulator.runFor(10 * sim::oneSec);

    EXPECT_GT(wisp.mcu().checkpointCount(), 0u);
    EXPECT_TRUE(audit.shadowValid());
}

// ---------------------------------------------------------------
// Soundness property: zero false positives on generated
// checkpoint-correct programs.
// ---------------------------------------------------------------

TEST(NvAuditProperty, NoFalsePositivesOnGeneratedPrograms)
{
    // The fuzz generator's register-class discipline makes every
    // rendered program checkpoint-correct by construction (no store
    // is ever guided by a value read from non-volatile memory), so
    // the auditor must stay silent across all of them — under
    // harvested power, forced brown-outs, and checkpointing both on
    // and off. 200 generated programs ~ a few hundred thousand
    // audited instructions.
    int conclusive = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        fuzz::CaseSpec spec = fuzz::generateCase(seed * 1315423911u);
        fuzz::OracleCase c = fuzz::makeOracleCase(spec);
        std::uint64_t violations = fuzz::auditViolations(c);
        EXPECT_EQ(violations, 0u)
            << "false positive on generated program, seed " << seed
            << " (checkpointing " << spec.checkpointing << "):\n"
            << c.program;
        if (violations == 0)
            ++conclusive;
    }
    EXPECT_EQ(conclusive, 200);
}

// ---------------------------------------------------------------
// Board surfacing: ConsistencyViolation sessions.
// ---------------------------------------------------------------

TEST(NvAuditBoard, FindingsOpenAConsistencySession)
{
    sim::Simulator simulator(1);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf);
    edbdbg::EdbBoard edb(simulator, "edb", wisp);
    NvAuditor audit(wispAuditConfig(wisp), wisp.framRegion());
    edb.attachAuditor(&audit);
    EXPECT_EQ(edb.auditor(), &audit);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();

    ASSERT_TRUE(edb.waitForSession(60 * sim::oneSec));
    auto *session = edb.session();
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->reason(),
              edbdbg::SessionReason::ConsistencyViolation);
    EXPECT_STREQ(edbdbg::sessionReasonName(session->reason()),
                 "consistency-violation");
    auto findings = session->findings();
    ASSERT_FALSE(findings.empty());
    EXPECT_FALSE(nvFindingText(findings[0]).empty());
    session->resume();
    EXPECT_TRUE(edb.waitPassive(sim::oneSec));
}

TEST(NvAuditBoard, DetachRestoresQuietOperation)
{
    sim::Simulator simulator(5);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf);
    edbdbg::EdbBoard edb(simulator, "edb", wisp);
    NvAuditor audit(wispAuditConfig(wisp), wisp.framRegion());
    edb.attachAuditor(&audit);
    edb.attachAuditor(nullptr);
    EXPECT_EQ(edb.auditor(), nullptr);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    // With the auditor detached nothing breaks the target in.
    EXPECT_FALSE(edb.waitForSession(5 * sim::oneSec));
    EXPECT_EQ(audit.violationCount(), 0u);
}

} // namespace
