/**
 * @file
 * Fast-path equivalence suite: the predecoded instruction cache, flat
 * memory dispatch, amortized analog integration and batched slices
 * must be *bit-identical* to the reference path. These tests run the
 * same workloads with every fast-path flag on and off and diff the
 * architectural outcome, and stress the one piece of machinery that
 * keeps the predecode cache honest: invalidation on stores into the
 * code range.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "apps/linked_list.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** Everything architecturally observable after a run. */
struct RunTrace
{
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    std::uint64_t reboots = 0;
    std::uint64_t faults = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t boots = 0;
    std::uint32_t iterCount = 0;
    double volts = 0.0;
};

target::WispConfig
referencePathConfig()
{
    target::WispConfig config;
    config.mcu.predecodeCache = false;
    config.mcu.flatDispatch = false;
    config.mcu.batchedDrain = false;
    config.mcu.batchedSlices = false;
    config.mcu.superblocks = false;
    config.power.fastIntegration = false;
    return config;
}

/** Linked-list app on harvested RF power: boots, brown-outs,
 *  checkpoints and restores, all driven by the shared RNG stream. */
RunTrace
runLinkedListOnRf(target::WispConfig config, std::uint64_t seed,
                  sim::Tick duration)
{
    sim::Simulator simulator(seed);
    energy::RfHarvester rf(30.0, 1.0);
    config.mcu.checkpointingEnabled = true;
    target::Wisp wisp(simulator, "wisp", &rf, nullptr, config);
    apps::LinkedListOptions opts;
    opts.withCheckpoint = true;
    wisp.flash(apps::buildLinkedListApp(opts));
    wisp.start();
    simulator.runFor(duration);

    RunTrace t;
    const auto &mcu = wisp.mcu();
    t.instrs = mcu.instrCount();
    t.cycles = mcu.cycleCount();
    t.reboots = mcu.rebootCount();
    t.faults = mcu.faultCount();
    t.checkpoints = mcu.checkpointCount();
    t.restores = mcu.restoreCount();
    t.boots = wisp.power().bootCount();
    t.iterCount = wisp.mcu().debugRead32(
        apps::linked_list_layout::iterCountAddr);
    t.volts = wisp.voltage();
    return t;
}

/**
 * Golden-trace determinism: the fast path and the reference path,
 * given the same seed, must agree on *every* architectural statistic
 * and on the final capacitor voltage to the last bit. This is the
 * contract every optimisation in the kernel is held to — the fast
 * path makes the same math cheaper, it does not do different math.
 */
TEST(FastPath, GoldenTraceMatchesReferencePath)
{
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{12345}}) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        RunTrace fast = runLinkedListOnRf(target::WispConfig{}, seed,
                                          2 * sim::oneSec);
        RunTrace ref = runLinkedListOnRf(referencePathConfig(), seed,
                                         2 * sim::oneSec);

        // The workload must actually exercise intermittence, or the
        // comparison proves nothing.
        EXPECT_GT(fast.instrs, 0u);
        EXPECT_GT(fast.reboots, 0u);
        EXPECT_GT(fast.checkpoints, 0u);

        EXPECT_EQ(fast.instrs, ref.instrs);
        EXPECT_EQ(fast.cycles, ref.cycles);
        EXPECT_EQ(fast.reboots, ref.reboots);
        EXPECT_EQ(fast.faults, ref.faults);
        EXPECT_EQ(fast.checkpoints, ref.checkpoints);
        EXPECT_EQ(fast.restores, ref.restores);
        EXPECT_EQ(fast.boots, ref.boots);
        EXPECT_EQ(fast.iterCount, ref.iterCount);
        // Bit-exact, not approximately equal: the analog fast path
        // must produce the identical trajectory.
        EXPECT_EQ(fast.volts, ref.volts);
    }
}

/** Strong-supply rig mirroring test_mcu's McuRig. */
struct Rig
{
    sim::Simulator sim{17};
    energy::TheveninHarvester supply{3.0, 50.0};
    target::Wisp wisp;

    explicit Rig(target::WispConfig config = {})
        : wisp(sim, "wisp", &supply, nullptr, config)
    {}

    mcu::Mcu &
    run(const std::string &body,
        sim::Tick timeout = 500 * sim::oneMs)
    {
        wisp.flash(isa::assemble(".org 0x4000\n.entry main\n" + body));
        wisp.start();
        sim.runFor(timeout);
        return wisp.mcu();
    }
};

/** Self-modifying program: executes `patch` once (predecoding it),
 *  then stores a different instruction word over it via a routed
 *  STW and loops back. The write watch must invalidate the cached
 *  decode, so the second pass executes the *new* instruction. */
constexpr const char *selfModifyingBody = R"(
main:
    la   r1, patch
    la   r2, newinstr
    li   r6, 0
patch:
    li   r4, 1
    cmpi r6, 1
    beq  done
    ldw  r3, [r2]
    stw  r3, [r1]
    li   r6, 1
    br   patch
done:
    halt
newinstr:
    li   r4, 42
)";

TEST(FastPath, SelfModifyingStoreInvalidatesPredecodedInstr)
{
    Rig rig;
    auto &mcu = rig.run(selfModifyingBody);
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    // A stale predecode would leave r4 == 1.
    EXPECT_EQ(mcu.reg(4), 42u);
    EXPECT_EQ(mcu.reg(6), 1u);
}

TEST(FastPath, SelfModifyingStoreMatchesUncachedSemantics)
{
    Rig fast;
    auto &mcuFast = fast.run(selfModifyingBody);
    Rig ref(referencePathConfig());
    auto &mcuRef = ref.run(selfModifyingBody);
    ASSERT_EQ(mcuFast.state(), mcu::McuState::Halted);
    ASSERT_EQ(mcuRef.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcuFast.reg(4), mcuRef.reg(4));
    EXPECT_EQ(mcuFast.instrCount(), mcuRef.instrCount());
    EXPECT_EQ(mcuFast.cycleCount(), mcuRef.cycleCount());
}

/** Repeatedly re-patching the same slot must invalidate every time,
 *  not just once: the validity byte is re-armed by re-decode. */
TEST(FastPath, RepeatedPatchingStaysCoherent)
{
    Rig rig;
    auto &mcu = rig.run(R"(
main:
    la   r1, patch
    li   r6, 0
    li   r7, 0
loop:
patch:
    addi r7, r7, 1
    addi r6, r6, 1
    cmpi r6, 8
    beq  done
    ; alternate the patched instruction each iteration: odd counts
    ; pick `addi r7, r7, 3`, even counts restore `addi r7, r7, 1`.
    andi r8, r6, 1
    cmpi r8, 1
    beq  odd
    la   r2, incone
    br   apply
odd:
    la   r2, incthree
apply:
    ldw  r3, [r2]
    stw  r3, [r1]
    br   loop
done:
    halt
incone:
    addi r7, r7, 1
incthree:
    addi r7, r7, 3
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    // Iterations execute: 1, then +3, +1, +3, +1, +3, +1, +3
    // (iteration i>=2 runs the instruction patched by iteration i-1).
    EXPECT_EQ(mcu.reg(7), 1u + 3 + 1 + 3 + 1 + 3 + 1 + 3);
}

/** FRAM wear counter of a wisp, for wear-parity assertions. */
std::uint64_t
framWrites(target::Wisp &wisp)
{
    for (auto *region : wisp.memoryMap().regions())
        if (region->kind() == mem::RegionKind::Fram)
            return dynamic_cast<mem::Ram *>(region)->writeCount();
    return 0;
}

/** A hot straight-line loop must actually retire instructions inside
 *  superblocks under the default config — otherwise every other test
 *  in this file is vacuously comparing interpreter against itself. */
TEST(Superblock, HotLoopRetiresInsideBlocks)
{
    Rig rig;
    auto &mcu = rig.run(R"(
main:
    li   r1, 0
    li   r2, 2000
loop:
    addi r1, r1, 1
    add  r3, r3, r1
    cmp  r1, r2
    bne  loop
    halt
)");
    ASSERT_EQ(mcu.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcu.reg(1), 2000u);
    const auto &sb = mcu.superblockStats();
    EXPECT_GT(sb.blocksBuilt, 0u);
    EXPECT_GT(sb.execs, 100u);
    // The loop body dominates: most retirement happens in blocks.
    EXPECT_GT(sb.blockInstrs, mcu.instrCount() / 2);
}

/**
 * Self-modifying code landing *inside a live superblock*: the loop
 * body is long enough to compile, and the patched slot sits in the
 * block being executed. The store must bump the code epoch (bailing
 * out of the running block after the committed store), force a
 * rebuild on the next dispatch, and the re-decoded instruction must
 * take effect — matching the reference interpreter bit for bit.
 */
TEST(Superblock, PatchInsideLiveBlockForcesRebuild)
{
    Rig fast;
    auto &mcuFast = fast.run(selfModifyingBody);
    ASSERT_EQ(mcuFast.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcuFast.reg(4), 42u);
    // The store into the block advanced the epoch and the next
    // dispatch rebuilt rather than reusing the stale block.
    EXPECT_GT(mcuFast.codeEpoch(), 1u);
    const auto &sb = mcuFast.superblockStats();
    EXPECT_GT(sb.execs, 0u);
    EXPECT_GT(sb.rebuilds + sb.blocksBuilt, 1u);

    Rig ref(referencePathConfig());
    auto &mcuRef = ref.run(selfModifyingBody);
    ASSERT_EQ(mcuRef.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcuFast.reg(4), mcuRef.reg(4));
    EXPECT_EQ(mcuFast.instrCount(), mcuRef.instrCount());
    EXPECT_EQ(mcuFast.cycleCount(), mcuRef.cycleCount());
}

/**
 * Brown-out landing mid-block: on harvested RF power with
 * checkpointing off, the superblock engine's batched drain must
 * place every power loss at exactly the same instruction as the
 * reference interpreter — same reboot count, same resume PC at the
 * horizon, same FRAM wear, same final capacitor voltage. The
 * admissibility pre-check makes blocks that *could* die mid-block
 * fall back to per-instruction stepping, so death always lands with
 * reference timing.
 */
TEST(Superblock, BrownOutMidBlockMatchesReference)
{
    struct Probe
    {
        std::uint64_t instrs, cycles, reboots, framWear;
        std::uint32_t pc;
        double volts;
        mcu::Mcu::SuperblockStats sb;
    };
    auto probe = [](target::WispConfig config) {
        sim::Simulator simulator(29);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr, config);
        wisp.flash(apps::buildLinkedListApp());
        wisp.start();
        simulator.runFor(sim::oneSec);
        Probe p{};
        p.instrs = wisp.mcu().instrCount();
        p.cycles = wisp.mcu().cycleCount();
        p.reboots = wisp.mcu().rebootCount();
        p.framWear = framWrites(wisp);
        p.pc = wisp.mcu().pc();
        p.volts = wisp.voltage();
        p.sb = wisp.mcu().superblockStats();
        return p;
    };

    Probe fast = probe(target::WispConfig{});
    Probe ref = probe(referencePathConfig());

    // The rig must really brown out while blocks are running.
    EXPECT_GT(fast.reboots, 0u);
    EXPECT_GT(fast.sb.execs, 0u);
    EXPECT_EQ(ref.sb.execs, 0u);

    EXPECT_EQ(fast.instrs, ref.instrs);
    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.reboots, ref.reboots);
    EXPECT_EQ(fast.framWear, ref.framWear);
    EXPECT_EQ(fast.pc, ref.pc);
    EXPECT_EQ(fast.volts, ref.volts);
}

/**
 * CHKPT is a block barrier: the straight-line run leading up to it
 * compiles, the checkpoint itself executes in the interpreter, and
 * the committed checkpoint (count, FRAM wear from the slot writes,
 * cycle cost) is identical to the reference path.
 */
TEST(Superblock, CheckpointTerminatesBlockWithIdenticalCost)
{
    constexpr const char *body = R"(
main:
    li   r1, 0
    li   r2, 7
    li   r3, 0
loop:
    add  r1, r1, r2
    add  r3, r3, r1
    addi r4, r4, 1
    cmpi r4, 50
    bne  loop
    chkpt
    add  r1, r1, r2
    halt
)";
    target::WispConfig chkptOn;
    chkptOn.mcu.checkpointingEnabled = true;
    target::WispConfig chkptRef = referencePathConfig();
    chkptRef.mcu.checkpointingEnabled = true;

    Rig fast(chkptOn);
    auto &mcuFast = fast.run(body);
    std::uint64_t fastWear = framWrites(fast.wisp);
    Rig ref(chkptRef);
    auto &mcuRef = ref.run(body);
    std::uint64_t refWear = framWrites(ref.wisp);

    ASSERT_EQ(mcuFast.state(), mcu::McuState::Halted);
    ASSERT_EQ(mcuRef.state(), mcu::McuState::Halted);
    EXPECT_EQ(mcuFast.checkpointCount(), 1u);
    EXPECT_GT(mcuFast.superblockStats().execs, 0u);
    EXPECT_EQ(mcuFast.reg(1), mcuRef.reg(1));
    EXPECT_EQ(mcuFast.reg(3), mcuRef.reg(3));
    EXPECT_EQ(mcuFast.checkpointCount(), mcuRef.checkpointCount());
    EXPECT_EQ(mcuFast.instrCount(), mcuRef.instrCount());
    EXPECT_EQ(mcuFast.cycleCount(), mcuRef.cycleCount());
    EXPECT_EQ(fastWear, refWear);
}

/**
 * Flashing is not a program store: loadProgram bulk-copies into the
 * backing store, so the FRAM wear count after a flash reflects only
 * the checkpoint-slot invalidation (2 slots x 2 header words), no
 * matter how large the image is.
 */
TEST(FastPath, FlashDoesNotPolluteWearStatistics)
{
    sim::Simulator simulator(3);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);

    mem::Ram *fram = nullptr;
    for (auto *region : wisp.memoryMap().regions()) {
        if (region->kind() == mem::RegionKind::Fram)
            fram = dynamic_cast<mem::Ram *>(region);
    }
    ASSERT_NE(fram, nullptr);

    std::uint64_t before = fram->writeCount();
    wisp.flash(apps::buildLinkedListApp());
    std::uint64_t afterBig = fram->writeCount();
    wisp.flash(isa::assemble(".org 0x4000\n.entry main\nmain:\n halt\n"));
    std::uint64_t afterSmall = fram->writeCount();

    // Image-size independent: both flashes cost the same 4 routed
    // header writes.
    EXPECT_EQ(afterBig - before, 4u);
    EXPECT_EQ(afterSmall - afterBig, 4u);
}

} // namespace
