/**
 * @file
 * End-to-end tests of the EDB debugging primitives against guest
 * programs running on the simulated WISP.
 */

#include <gtest/gtest.h>

#include "apps/activity.hh"
#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "mcu/mmio_map.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** Target + EDB on a bench supply (no intermittence). */
struct BenchRig
{
    sim::Simulator sim{11};
    energy::TheveninHarvester supply{3.0, 200.0};
    target::Wisp wisp;
    edbdbg::EdbBoard board;

    BenchRig()
        : wisp(sim, "wisp", &supply, nullptr),
          board(sim, "edb", wisp)
    {}

    void
    run(const std::string &body)
    {
        wisp.flash(isa::assemble(runtime::programHeader() + body +
                                 runtime::libedbSource()));
        wisp.start();
    }
};

/** Target + EDB on harvested (intermittent) power. */
struct HarvestRig
{
    sim::Simulator sim{23};
    energy::RfHarvester rf{30.0, 1.0};
    target::Wisp wisp;
    edbdbg::EdbBoard board;

    HarvestRig()
        : wisp(sim, "wisp", &rf, nullptr), board(sim, "edb", wisp)
    {}
};

TEST(EdbIntegration, AssertOpensSessionAndKeepsTargetAlive)
{
    BenchRig rig;
    rig.run(R"(
main:
    la   r0, 0x5000
    li   r1, 77
    stw  r1, [r0]
    li   r1, 9              ; assert id
    call edb_assert_fail
    la   r0, 0x5004         ; after resume, leave a marker
    li   r1, 88
    stw  r1, [r0]
    halt
)");
    ASSERT_TRUE(rig.board.waitForSession(sim::oneSec));
    auto *session = rig.board.session();
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->reason(), edbdbg::SessionReason::AssertFail);
    EXPECT_EQ(session->id(), 9u);
    EXPECT_TRUE(rig.board.tethered());

    // Inspect live target memory through the protocol.
    auto value = session->read32(0x5000);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 77u);

    // Patch memory, resume, and verify the target continued.
    EXPECT_TRUE(session->write32(0x5008, 0xDEAD));
    session->resume();
    EXPECT_FALSE(session->open());
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Halted; },
        sim::oneSec);
    EXPECT_EQ(rig.wisp.mcu().debugRead32(0x5004), 88u);
    EXPECT_EQ(rig.wisp.mcu().debugRead32(0x5008), 0xDEADu);
    EXPECT_FALSE(rig.board.tethered());
    EXPECT_EQ(rig.board.assertCount(), 1u);
}

TEST(EdbIntegration, EnergyGuardRestoresLevel)
{
    HarvestRig rig;
    rig.wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    call edb_energy_guard_begin
    ; burn an outrageous amount of energy: ~200k cycles of work
    la   r2, 200000
__burn:
    addi r2, r2, -1
    cmpi r2, 0
    bne  __burn
    call edb_energy_guard_end
    la   r0, 0x5000          ; completion marker
    li   r1, 1
    stw  r1, [r0]
    halt
)" + runtime::libedbSource()));
    rig.wisp.start();
    // Let it boot and run through the guard.
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Halted; },
        10 * sim::oneSec);
    EXPECT_EQ(rig.wisp.mcu().debugRead32(0x5000), 1u);
    EXPECT_EQ(rig.board.guardCount(), 1u);
    // The guarded region cost ~50 ms of active execution -- far more
    // than one charge cycle -- yet the restored level is within the
    // control loop's stop margin of the saved level.
    double saved = rig.board.lastSavedVolts();
    double restored = rig.board.lastRestoredVolts();
    EXPECT_GT(saved, 1.8);
    EXPECT_NEAR(restored, saved, 0.09);
    EXPECT_FALSE(rig.board.tethered());
}

TEST(EdbIntegration, PrintfFormatsOnHost)
{
    BenchRig rig;
    std::vector<std::string> lines;
    rig.board.setPrintfSink(
        [&lines](const std::string &s) { lines.push_back(s); });
    rig.run(R"(
main:
    la   r2, 0x5100          ; argv
    li   r1, 42
    stw  r1, [r2]
    li   r1, -7
    stw  r1, [r2 + 4]
    la   r1, fmt
    li   r2, 2
    la   r3, 0x5100
    call edb_printf
    halt
fmt: .asciz "v=%u s=%d!"
.align
)");
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Halted; },
        sim::oneSec);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "v=42 s=-7!");
    EXPECT_EQ(rig.board.printfCount(), 1u);
}

TEST(EdbIntegration, CodeBreakpointOnlyFiresWhenEnabled)
{
    BenchRig rig;
    rig.run(R"(
main:
    la   r5, 0x5000
    li   r6, 0
loop:
    addi r6, r6, 1
    stw  r6, [r5]
    li   r1, 3               ; breakpoint id 3
    call edb_breakpoint
    cmpi r6, 1000
    blt  loop
    halt
)");
    // Not enabled: program runs to completion without stopping.
    EXPECT_FALSE(rig.board.waitForSession(100 * sim::oneMs));
    EXPECT_EQ(rig.board.breakpointCount(), 0u);

    // Re-flash and enable: first iteration should stop.
    BenchRig rig2;
    rig2.run(R"(
main:
    la   r5, 0x5000
    li   r6, 0
loop:
    addi r6, r6, 1
    stw  r6, [r5]
    li   r1, 3
    call edb_breakpoint
    cmpi r6, 1000
    blt  loop
    halt
)");
    rig2.board.enableCodeBreakpoint(3);
    ASSERT_TRUE(rig2.board.waitForSession(sim::oneSec));
    EXPECT_EQ(rig2.board.session()->reason(),
              edbdbg::SessionReason::CodeBreakpoint);
    EXPECT_EQ(rig2.board.session()->id(), 3u);
    auto iter = rig2.board.session()->read32(0x5000);
    ASSERT_TRUE(iter.has_value());
    EXPECT_EQ(*iter, 1u);
    rig2.board.session()->resume();
    EXPECT_TRUE(rig2.board.waitPassive(sim::oneSec));
}

TEST(EdbIntegration, EnergyBreakpointTriggersNearThreshold)
{
    HarvestRig rig;
    rig.wisp.flash(apps::buildLinkedListApp());
    rig.wisp.start();
    rig.board.enableEnergyBreakpoint(2.0);
    ASSERT_TRUE(rig.board.waitForSession(5 * sim::oneSec));
    EXPECT_EQ(rig.board.session()->reason(),
              edbdbg::SessionReason::EnergyBreakpoint);
    // The saved level is near the threshold (one sample period of
    // slack plus ADC noise).
    EXPECT_NEAR(rig.board.session()->savedVolts(), 2.0, 0.05);
    rig.board.session()->resume();
    EXPECT_TRUE(rig.board.waitPassive(sim::oneSec));
}

TEST(EdbIntegration, ManualBreakInAndChargeDischarge)
{
    BenchRig rig;
    rig.run(R"(
main:
    br   main
)");
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Running; },
        sim::oneSec);
    ASSERT_TRUE(rig.board.breakIn());
    EXPECT_EQ(rig.board.session()->reason(),
              edbdbg::SessionReason::Manual);
    rig.board.session()->resume();
    ASSERT_TRUE(rig.board.waitPassive(sim::oneSec));
}

TEST(EdbIntegration, ChargeDischargeEmulatesIntermittence)
{
    // A weak ambient source, so the charge/discharge circuit can
    // overpower it in both directions.
    sim::Simulator simulator{31};
    energy::TheveninHarvester weak{3.0, 2000.0};
    target::Wisp wisp(simulator, "wisp", &weak, nullptr);
    edbdbg::EdbBoard board(simulator, "edb", wisp);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    br   main
)" + runtime::libedbSource()));
    wisp.start();
    board.pumpUntil(
        [&] { return wisp.state() == mcu::McuState::Running; },
        2 * sim::oneSec);

    // Manual energy manipulation: emulate a charge-discharge cycle
    // (Table 1: charge|discharge <energy level>).
    EXPECT_TRUE(board.dischargeTo(2.0));
    EXPECT_NEAR(wisp.power().voltage(), 2.0, 0.03);
    EXPECT_TRUE(board.chargeTo(2.5));
    EXPECT_NEAR(wisp.power().voltage(), 2.5, 0.03);
}

TEST(EdbIntegration, WatchpointsCaptureEnergyCorrelatedEvents)
{
    BenchRig rig;
    rig.board.setStream("watchpoints", true);
    rig.run(R"(
main:
    li   r5, 5
loop:
    li   r1, 2
    call edb_watchpoint
    addi r5, r5, -1
    cmpi r5, 0
    bne  loop
    halt
)");
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Halted; },
        sim::oneSec);
    auto events =
        rig.board.traceBuffer().ofKind(trace::Kind::Watchpoint);
    ASSERT_EQ(events.size(), 5u);
    for (const auto &e : events) {
        EXPECT_EQ(e.id, 2u);
        EXPECT_GT(e.a, 1.0); // paired energy reading
    }
}

} // namespace

namespace {

/** Session memory reads across sizes and regions. */
class SessionRead : public ::testing::TestWithParam<std::uint16_t>
{};

TEST_P(SessionRead, LengthSweepRoundTrips)
{
    std::uint16_t len = GetParam();
    BenchRig rig;
    rig.run(R"(
main:
    ; fill 0x5000.. with a recognizable pattern
    la   r5, 0x5000
    li   r6, 0
__fill:
    stb  r6, [r5]
    addi r5, r5, 1
    addi r6, r6, 1
    cmpi r6, 160
    blt  __fill
    li   r1, 4
    call edb_assert_fail
    halt
)");
    ASSERT_TRUE(rig.board.waitForSession(sim::oneSec));
    auto bytes = rig.board.session()->readBytes(0x5000, len,
                                                2 * sim::oneSec);
    ASSERT_TRUE(bytes.has_value());
    ASSERT_EQ(bytes->size(), len);
    for (std::uint16_t i = 0; i < len; ++i)
        EXPECT_EQ((*bytes)[i], i & 0xFF) << "offset " << i;
    rig.board.session()->resume();
}

INSTANTIATE_TEST_SUITE_P(Lengths, SessionRead,
                         ::testing::Values<std::uint16_t>(1, 2, 3, 4,
                                                          16, 64,
                                                          160));

TEST(EdbSession, ReadSramAndMmioThroughProtocol)
{
    BenchRig rig;
    rig.run(R"(
main:
    la   r5, 0x2000        ; SRAM
    la   r6, 0xBEEF
    stw  r6, [r5]
    la   r0, GPIO_OUT      ; drive a known MMIO value
    li   r1, 5
    stw  r1, [r0]
    li   r1, 7
    call edb_assert_fail
    halt
)");
    ASSERT_TRUE(rig.board.waitForSession(sim::oneSec));
    auto sram = rig.board.session()->read32(0x2000);
    ASSERT_TRUE(sram.has_value());
    EXPECT_EQ(*sram, 0xBEEFu);
    // MMIO reads go through the target's own load path too.
    auto gpio = rig.board.session()->read32(mcu::mmio::gpioOut);
    ASSERT_TRUE(gpio.has_value());
    EXPECT_EQ(*gpio, 5u);
    rig.board.session()->resume();
}

TEST(EdbSession, WritePatchAltersSubsequentExecution)
{
    BenchRig rig;
    rig.run(R"(
main:
    li   r1, 6
    call edb_assert_fail
    ; after resume: branch on a flag EDB patched in
    la   r0, 0x5000
    ldw  r1, [r0]
    cmpi r1, 0x77
    bne  __untouched
    la   r0, 0x5004
    li   r1, 1
    stw  r1, [r0]
__untouched:
    halt
)");
    ASSERT_TRUE(rig.board.waitForSession(sim::oneSec));
    ASSERT_TRUE(rig.board.session()->write32(0x5000, 0x77));
    rig.board.session()->resume();
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Halted; },
        sim::oneSec);
    EXPECT_EQ(rig.wisp.mcu().debugRead32(0x5004), 1u);
}

TEST(EdbSession, BackToBackPrintfsAllArrive)
{
    // Regression for the episode-queueing path: a new debug request
    // raised while the previous restore is still in flight must be
    // serviced, not dropped.
    BenchRig rig;
    int count = 0;
    rig.board.setPrintfSink(
        [&count](const std::string &) { ++count; });
    rig.run(R"(
main:
    li   r5, 8
__again:
    la   r1, fmt
    li   r2, 0
    li   r3, 0
    call edb_printf
    addi r5, r5, -1
    cmpi r5, 0
    bne  __again
    halt
fmt: .asciz "tick"
.align
)");
    rig.board.pumpUntil(
        [&] { return rig.wisp.state() == mcu::McuState::Halted; },
        5 * sim::oneSec);
    EXPECT_EQ(count, 8);
    EXPECT_EQ(rig.board.printfCount(), 8u);
    EXPECT_TRUE(rig.board.passive());
}

} // namespace
