/**
 * @file
 * Unit and integration tests for the RFID substrate: protocol,
 * channel, reader, tag front end and the WISP firmware.
 */

#include <gtest/gtest.h>

#include "apps/rfid_firmware.hh"
#include "energy/harvester.hh"
#include "rfid/channel.hh"
#include "rfid/frontend.hh"
#include "rfid/protocol.hh"
#include "rfid/reader.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;
using namespace edb::rfid;

namespace {

TEST(Protocol, MessageNamesMatchPaperFigure12)
{
    EXPECT_STREQ(msgTypeName(MsgType::CmdQuery), "CMD_QUERY");
    EXPECT_STREQ(msgTypeName(MsgType::CmdQueryRep), "CMD_QUERYREP");
    EXPECT_STREQ(msgTypeName(MsgType::RspGeneric), "RSP_GENERIC");
}

TEST(Protocol, FrameWireBytes)
{
    Frame frame;
    frame.payload = {1, 2, 3};
    EXPECT_EQ(frame.wireBytes(), 4u);
}

struct ChannelRig
{
    sim::Simulator sim{61};
    ChannelConfig config;
    std::unique_ptr<RfChannel> channel;

    explicit ChannelRig(double corruption = 0.0)
    {
        config.corruptionProbability = corruption;
        channel = std::make_unique<RfChannel>(sim, "air", config);
    }
};

TEST(Channel, AirTimeByDirection)
{
    ChannelRig rig;
    Frame frame;
    frame.payload.assign(9, 0); // 10 wire bytes
    // Downlink 40 kbps: 80 bits -> 2 ms. Uplink 160 kbps -> 0.5 ms.
    EXPECT_EQ(rig.channel->airTime(Direction::ReaderToTag, frame),
              2 * sim::oneMs);
    EXPECT_EQ(rig.channel->airTime(Direction::TagToReader, frame),
              sim::oneMs / 2);
}

TEST(Channel, TapsSeeEverythingWithTiming)
{
    ChannelRig rig;
    std::vector<std::pair<Direction, sim::Tick>> taps;
    rig.channel->addTap(
        [&taps](Direction dir, const Frame &, sim::Tick when) {
            taps.emplace_back(dir, when);
        });
    Frame frame;
    frame.type = MsgType::CmdQuery;
    frame.payload = {0, 0};
    rig.channel->send(Direction::ReaderToTag, frame, 0);
    rig.sim.runToCompletion();
    ASSERT_EQ(taps.size(), 1u);
    EXPECT_EQ(taps[0].first, Direction::ReaderToTag);
    EXPECT_EQ(taps[0].second,
              rig.channel->airTime(Direction::ReaderToTag, frame));
}

TEST(Channel, CorruptionRateRoughlyHonoured)
{
    ChannelRig rig(0.25);
    Frame frame;
    frame.payload = {1};
    for (int i = 0; i < 2000; ++i)
        rig.channel->send(Direction::TagToReader, frame, 0);
    rig.sim.runToCompletion();
    double rate = double(rig.channel->framesCorrupted()) / 2000.0;
    EXPECT_NEAR(rate, 0.25, 0.04);
}

struct TagRig
{
    sim::Simulator sim{62};
    energy::TheveninHarvester supply{3.0, 50.0};
    RfChannel channel{sim, "air"};
    target::Wisp wisp{sim, "wisp", &supply, &channel};
};

TEST(Frontend, UnpoweredTagMissesFrames)
{
    TagRig rig;
    // Don't start the power system: tag stays at 0 V.
    Frame frame;
    frame.type = MsgType::CmdQuery;
    rig.channel.send(Direction::ReaderToTag, frame, 0);
    rig.sim.runFor(10 * sim::oneMs);
    EXPECT_EQ(rig.wisp.rf()->framesReceived(), 0u);
    EXPECT_EQ(rig.wisp.rf()->framesDroppedUnpowered(), 1u);
}

TEST(Frontend, PoweredTagLatchesFrames)
{
    TagRig rig;
    rig.wisp.start();
    rig.sim.runFor(100 * sim::oneMs); // charge + boot (no program:
                                      // core faults, power stays on)
    Frame frame;
    frame.type = MsgType::CmdQuery;
    frame.payload = {7, 0x20};
    rig.channel.send(Direction::ReaderToTag, frame,
                     rig.sim.now());
    rig.sim.runFor(10 * sim::oneMs);
    EXPECT_EQ(rig.wisp.rf()->framesReceived(), 1u);
    EXPECT_EQ(rig.wisp.rf()->rxPending(), 1u);
}

TEST(Frontend, RxFifoDepthBounded)
{
    TagRig rig;
    rig.wisp.start();
    rig.sim.runFor(100 * sim::oneMs);
    Frame frame;
    frame.type = MsgType::CmdQueryRep;
    for (int i = 0; i < 10; ++i)
        rig.channel.send(Direction::ReaderToTag, frame,
                         rig.sim.now());
    rig.sim.runFor(10 * sim::oneMs);
    EXPECT_EQ(rig.wisp.rf()->rxPending(),
              rig.wisp.config().rf.rxFifoDepth);
    EXPECT_GT(rig.wisp.rf()->framesDroppedUnpowered(), 0u);
}

TEST(Reader, InventoryRoundStructure)
{
    sim::Simulator simulator(63);
    RfChannel channel(simulator, "air");
    ReaderConfig config;
    config.slotPeriod = 10 * sim::oneMs;
    config.slotsPerRound = 4;
    RfidReader reader(simulator, "reader", channel, config);
    std::vector<MsgType> sent;
    channel.addTap([&sent](Direction dir, const Frame &frame,
                           sim::Tick) {
        if (dir == Direction::ReaderToTag)
            sent.push_back(frame.type);
    });
    reader.start();
    simulator.runFor(85 * sim::oneMs);
    reader.stop();
    ASSERT_GE(sent.size(), 8u);
    EXPECT_EQ(sent[0], MsgType::CmdQuery);
    EXPECT_EQ(sent[1], MsgType::CmdQueryRep);
    EXPECT_EQ(sent[3], MsgType::CmdQueryRep);
    EXPECT_EQ(sent[4], MsgType::CmdQuery); // new round
    EXPECT_EQ(reader.queriesSent(), sent.size());
}

TEST(Reader, StopHaltsQueries)
{
    sim::Simulator simulator(64);
    RfChannel channel(simulator, "air");
    RfidReader reader(simulator, "reader", channel);
    reader.start();
    simulator.runFor(100 * sim::oneMs);
    auto sent = reader.queriesSent();
    reader.stop();
    simulator.runFor(200 * sim::oneMs);
    EXPECT_EQ(reader.queriesSent(), sent);
}

TEST(RfidFirmware, RepliesToQueriesEndToEnd)
{
    sim::Simulator simulator(65);
    energy::TheveninHarvester supply(3.0, 50.0);
    RfChannel channel(simulator, "air");
    ReaderConfig reader_config;
    reader_config.slotPeriod = 20 * sim::oneMs;
    RfidReader reader(simulator, "reader", channel, reader_config);
    target::Wisp wisp(simulator, "wisp", &supply, &channel);
    wisp.flash(apps::buildRfidFirmware());
    reader.start();
    wisp.start();
    simulator.runFor(2 * sim::oneSec);

    EXPECT_GT(reader.queriesSent(), 50u);
    EXPECT_GT(reader.repliesReceived(), 40u);
    // On continuous power every uncorrupted query gets an answer.
    EXPECT_GE(reader.responseRate(), 0.9);
    std::uint32_t decoded =
        wisp.mcu().debugRead32(apps::rfid_layout::decodedAddr);
    std::uint32_t replied =
        wisp.mcu().debugRead32(apps::rfid_layout::repliedAddr);
    EXPECT_EQ(decoded, replied);
}

TEST(RfidFirmware, ReplyCarriesEpc)
{
    sim::Simulator simulator(66);
    energy::TheveninHarvester supply(3.0, 50.0);
    RfChannel channel(simulator, "air");
    ChannelConfig quiet;
    quiet.corruptionProbability = 0.0;
    RfChannel clean_channel(simulator, "air2", quiet);
    target::Wisp wisp(simulator, "wisp", &supply, &clean_channel);
    wisp.flash(apps::buildRfidFirmware());
    std::vector<std::uint8_t> epc;
    clean_channel.addTap([&epc](Direction dir, const Frame &frame,
                                sim::Tick) {
        if (dir == Direction::TagToReader &&
            frame.type == MsgType::RspGeneric) {
            epc = frame.payload;
        }
    });
    wisp.start();
    simulator.runFor(200 * sim::oneMs);
    Frame query;
    query.type = MsgType::CmdQuery;
    query.payload = {0, 0x20};
    clean_channel.send(Direction::ReaderToTag, query,
                       simulator.now());
    simulator.runFor(50 * sim::oneMs);
    ASSERT_EQ(epc.size(), apps::wispEpc.size());
    EXPECT_TRUE(std::equal(epc.begin(), epc.end(),
                           apps::wispEpc.begin()));
    (void)channel;
}

} // namespace
