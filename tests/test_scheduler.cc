/**
 * @file
 * Tests of the MCU's timed low-power wait and the Dewdrop-style
 * energy-aware scheduling runtime (paper Section 6.2 related work).
 */

#include <gtest/gtest.h>

#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "runtime/scheduler.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

TEST(Sleep, DrawsMicroampsForTheRequestedDuration)
{
    sim::Simulator simulator(201);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r0, CYCLE_LO
    ldw  r5, [r0]
    la   r1, SLEEP
    la   r2, 40000             ; 10 ms at 4 MHz
    stw  r2, [r1]
    nop                        ; wait happens before this commits
    la   r0, CYCLE_LO
    ldw  r6, [r0]
    sub  r7, r6, r5
    la   r0, 0x5000
    stw  r7, [r0]
    halt
)" + runtime::libedbSource()));
    wisp.start();
    // Catch the core mid-sleep and check its draw.
    bool saw_sleeping = false;
    for (int i = 0; i < 200 && !saw_sleeping; ++i) {
        simulator.runFor(sim::oneMs / 4);
        if (wisp.mcu().sleeping()) {
            saw_sleeping = true;
            EXPECT_NEAR(wisp.power().totalLoadAmps(),
                        wisp.config().mcu.sleepAmps, 1e-9);
        }
    }
    EXPECT_TRUE(saw_sleeping);
    simulator.runFor(100 * sim::oneMs);
    ASSERT_EQ(wisp.state(), mcu::McuState::Halted);
    // Cycle counter advanced by at least the sleep duration.
    EXPECT_GE(wisp.mcu().debugRead32(0x5000), 40000u);
    EXPECT_LT(wisp.mcu().debugRead32(0x5000), 41000u);
}

TEST(Sleep, DebugIrqWakesEarly)
{
    sim::Simulator simulator(202);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    // A standalone ISR (no EDB attached, so the libEDB ISR -- which
    // talks to the debugger -- must not be used here).
    wisp.flash(isa::assemble(runtime::mmioEquates() + R"(
.org 0x4000
.entry main
.irq isr
main:
    la   r1, SLEEP
    la   r2, 40000000          ; 10 s: would never finish alone
    stw  r2, [r1]
    la   r0, 0x5000
    li   r1, 1
    stw  r1, [r0]
    halt
isr:
    reti
)"));
    wisp.start();
    simulator.runFor(30 * sim::oneMs);
    ASSERT_TRUE(wisp.mcu().sleeping());
    wisp.mcu().raiseDebugIrq();
    simulator.runFor(5 * sim::oneMs);
    wisp.mcu().clearDebugIrq();
    // Awoken: the ISR ran, returned, and the program completed.
    simulator.runFor(50 * sim::oneMs);
    EXPECT_EQ(wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5000), 1u);
}

TEST(Sleep, BrownOutDuringSleepReboots)
{
    sim::Simulator simulator(203);
    energy::RfHarvester rf(30.0, 3.0); // too weak to sustain much
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r0, 0x5000            ; count boots
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    la   r1, SLEEP
    la   r2, 60000
    stw  r2, [r1]
    br   main
)" + runtime::libedbSource()));
    wisp.start();
    // Drain the capacitor while the core sleeps.
    simulator.runFor(2 * sim::oneSec);
    wisp.power().capacitor().setVoltage(0.5);
    simulator.runFor(5 * sim::oneSec);
    EXPECT_GE(wisp.mcu().debugRead32(0x5000), 2u);
}

/**
 * The Dewdrop claim: a task too expensive for opportunistic dispatch
 * completes reliably when dispatched only above a calibrated energy
 * threshold, and the sleep-wait does not itself burn the charge.
 */
TEST(Dewdrop, EnergyAwareDispatchBeatsOpportunistic)
{
    // The task: ~160k cycles (40 ms) of work, then a completion
    // marker. It tears if power fails mid-way.
    auto program_for = [](bool scheduled) {
        std::string dispatch =
            scheduled ? "    la   r1, 3100          ; ~2.27 V\n"
                        "    call dw_wait_energy\n"
                      : "";
        return runtime::programHeader() + R"(
main:
)" + dispatch + R"(
    ; attempt counter
    la   r0, 0x5004
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    ; the task
    la   r2, 40000
__task:
    addi r2, r2, -1
    cmpi r2, 0
    bne  __task
    ; completion counter
    la   r0, 0x5000
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    br   main
)" + runtime::dewdropSource() +
               runtime::libedbSource();
    };

    auto run = [&](bool scheduled) {
        sim::Simulator simulator(scheduled ? 204 : 205);
        energy::RfHarvester rf(30.0, 1.05);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        wisp.flash(isa::assemble(program_for(scheduled)));
        wisp.start();
        simulator.runFor(30 * sim::oneSec);
        std::uint32_t done = wisp.mcu().debugRead32(0x5000);
        std::uint32_t tried = wisp.mcu().debugRead32(0x5004);
        return std::pair<double, std::uint32_t>(
            tried ? double(done) / double(tried) : 0.0, done);
    };

    auto [opportunistic_rate, opportunistic_done] = run(false);
    auto [scheduled_rate, scheduled_done] = run(true);

    // Both make progress; the scheduled variant tears far less.
    EXPECT_GT(opportunistic_done, 10u);
    EXPECT_GT(scheduled_done, 10u);
    EXPECT_GT(scheduled_rate, opportunistic_rate + 0.10)
        << "opportunistic " << opportunistic_rate << " vs scheduled "
        << scheduled_rate;
    EXPECT_GT(scheduled_rate, 0.9);
}

TEST(Dewdrop, WaitReportsSleepPeriods)
{
    sim::Simulator simulator(206);
    energy::TheveninHarvester supply(3.0, 2000.0); // slow charge
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r1, 3900              ; ~2.86 V: must wait for charge
    call dw_wait_energy
    la   r1, 0x5000
    stw  r0, [r1]              ; sleep periods taken
    li   r2, 1
    stw  r2, [r1 + 4]
    halt
)" + runtime::dewdropSource() +
                             runtime::libedbSource()));
    wisp.start();
    simulator.runFor(3 * sim::oneSec);
    ASSERT_EQ(wisp.mcu().debugRead32(0x5004), 1u);
    EXPECT_GT(wisp.mcu().debugRead32(0x5000), 0u);
}

} // namespace
