/**
 * @file
 * Property-style tests of the intermittent execution model and
 * EDB's invariants, swept over environments with parameterized
 * gtest:
 *
 *  - progress: FRAM-resident computation survives arbitrary reboots
 *    and produces the same result as continuous execution;
 *  - checkpointing: volatile computation completes intermittently
 *    when checkpointed, and the result matches continuous power;
 *  - energy guards: |restored - saved| bounded by the control-loop
 *    margin across guard costs and harvesting conditions;
 *  - the linked-list bug statistics: the wild write only ever
 *    happens under intermittent power.
 */

#include <gtest/gtest.h>

#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/**
 * Intermittence-safe FRAM-only program: computes sum(1..N) with a
 * double-buffered accumulator. The accumulator for index i lives in
 * slot (i & 1); the single-word index write is the atomic commit
 * point, so a reboot anywhere re-runs at most one addition into the
 * *other* slot and never double-counts. (A naive two-word commit is
 * itself an intermittence bug -- an earlier revision of this test
 * had one, and the simulator caught it.)
 */
std::string
framSumProgram(unsigned n)
{
    // FRAM cells: 0x5000 idx, 0x5004 acc[0], 0x5008 acc[1],
    // 0x500C done flag, 0x5010 final result.
    return runtime::programHeader() + R"(
main:
    la   r5, 0x5000
    la   r4, )" + std::to_string(n) +
           R"(
loop:
    ldw  r1, [r5]              ; idx
    cmp  r1, r4
    bge  done
    andi r2, r1, 1             ; current slot = idx & 1
    shli r2, r2, 2
    add  r3, r5, r2
    ldw  r2, [r3 + 4]          ; acc[idx & 1]
    addi r1, r1, 1
    add  r2, r2, r1            ; acc' = acc + idx'
    andi r3, r1, 1             ; new slot = idx' & 1
    shli r3, r3, 2
    add  r3, r5, r3
    stw  r2, [r3 + 4]          ; write the shadow slot ...
    stw  r1, [r5]              ; ... single-word atomic commit
    br   loop
done:
    andi r2, r1, 1
    shli r2, r2, 2
    add  r2, r5, r2
    ldw  r2, [r2 + 4]
    stw  r2, [r5 + 16]         ; final result
    li   r1, 1
    stw  r1, [r5 + 12]         ; done flag
    halt
)" + runtime::libedbSource();
}

/** Wait for the done flag under a given harvester. */
std::uint32_t
runFramSum(const energy::Harvester *harvester, unsigned n,
           std::uint64_t seed, sim::Tick budget,
           std::uint64_t *reboots = nullptr)
{
    sim::Simulator simulator(seed);
    target::Wisp wisp(simulator, "wisp", harvester, nullptr);
    wisp.flash(isa::assemble(framSumProgram(n)));
    wisp.start();
    while (simulator.now() < budget &&
           wisp.mcu().debugRead32(0x500C) != 1) {
        simulator.runFor(50 * sim::oneMs);
    }
    if (reboots)
        *reboots = wisp.power().bootCount();
    return wisp.mcu().debugRead32(0x5010);
}

class IntermittentProgress
    : public ::testing::TestWithParam<double> // reader distance
{};

TEST_P(IntermittentProgress, FramComputationSurvivesReboots)
{
    // Large enough to span several charge-discharge cycles.
    constexpr unsigned n = 120000;
    const auto expected = static_cast<std::uint32_t>(
        std::uint64_t(n) * (n + 1) / 2);

    energy::TheveninHarvester bench(3.0, 50.0);
    EXPECT_EQ(runFramSum(&bench, n, 1, 10 * sim::oneSec), expected);

    energy::RfHarvester rf(30.0, GetParam());
    std::uint64_t reboots = 0;
    EXPECT_EQ(runFramSum(&rf, n, 2, 60 * sim::oneSec, &reboots),
              expected)
        << "at distance " << GetParam();
    EXPECT_GT(reboots, 1u) << "power was not actually intermittent";
}

INSTANTIATE_TEST_SUITE_P(Distances, IntermittentProgress,
                         ::testing::Values(0.9, 1.0, 1.1));

/**
 * Volatile computation with checkpoints: the whole working set lives
 * in registers; only CHKPT makes it durable. The loop body is
 * idempotent from the last checkpoint.
 */
TEST(IntermittentCheckpoint, VolatileLoopCompletesWithCheckpoints)
{
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    sim::Simulator simulator(7);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr, config);
    // xorshift-style hash over 150000 iterations, all in registers.
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    li   r5, 0                 ; i
    li   r6, 0x1234            ; hash
loop:
    chkpt
    ; 16 hash steps per checkpoint
    li   r7, 16
inner:
    shli r1, r6, 3
    xor  r6, r6, r1
    shri r1, r6, 5
    xor  r6, r6, r1
    add  r6, r6, r5
    addi r7, r7, -1
    cmpi r7, 0
    bne  inner
    addi r5, r5, 16
    la   r1, 150000
    cmp  r5, r1
    blt  loop
    la   r1, 0x5000
    stw  r6, [r1]
    li   r2, 1
    stw  r2, [r1 + 4]
    halt
)" + runtime::libedbSource()));
    wisp.start();
    while (simulator.now() < 60 * sim::oneSec &&
           wisp.mcu().debugRead32(0x5004) != 1) {
        simulator.runFor(50 * sim::oneMs);
    }
    ASSERT_EQ(wisp.mcu().debugRead32(0x5004), 1u)
        << "did not finish under intermittent power";
    EXPECT_GT(wisp.mcu().restoreCount(), 0u);
    std::uint32_t intermittent_hash = wisp.mcu().debugRead32(0x5000);

    // Reference: same program on continuous power.
    sim::Simulator ref_sim(8);
    energy::TheveninHarvester bench(3.0, 50.0);
    target::Wisp ref(ref_sim, "ref", &bench, nullptr, config);
    ref.flash(isa::assemble(runtime::programHeader() + R"(
main:
    li   r5, 0
    li   r6, 0x1234
loop:
    chkpt
    li   r7, 16
inner:
    shli r1, r6, 3
    xor  r6, r6, r1
    shri r1, r6, 5
    xor  r6, r6, r1
    add  r6, r6, r5
    addi r7, r7, -1
    cmpi r7, 0
    bne  inner
    addi r5, r5, 16
    la   r1, 150000
    cmp  r5, r1
    blt  loop
    la   r1, 0x5000
    stw  r6, [r1]
    li   r2, 1
    stw  r2, [r1 + 4]
    halt
)" + runtime::libedbSource()));
    ref.start();
    ref_sim.runFor(2 * sim::oneSec);
    ASSERT_EQ(ref.mcu().debugRead32(0x5004), 1u);
    EXPECT_EQ(intermittent_hash, ref.mcu().debugRead32(0x5000));
}

TEST(IntermittentCheckpoint, WithoutCheckpointsItNeverFinishes)
{
    // The same volatile loop, checkpoint unit disabled: every reboot
    // restarts from scratch and the budget is never enough.
    sim::Simulator simulator(9);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    li   r5, 0
    li   r6, 0
loop:
    addi r5, r5, 1
    la   r1, 2000000           ; needs ~seconds of uptime
    cmp  r5, r1
    blt  loop
    la   r1, 0x5000
    li   r2, 1
    stw  r2, [r1]
    halt
)" + runtime::libedbSource()));
    wisp.start();
    simulator.runFor(15 * sim::oneSec);
    EXPECT_EQ(wisp.mcu().debugRead32(0x5000), 0u);
    EXPECT_GT(wisp.power().bootCount(), 3u);
}

/** Guard cost sweep: the restore discrepancy is bounded. */
class GuardCost : public ::testing::TestWithParam<unsigned>
{};

TEST_P(GuardCost, RestoreWithinMargin)
{
    unsigned burn = GetParam();
    sim::Simulator simulator(100 + burn);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    edbdbg::EdbBoard board(simulator, "edb", wisp);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    call edb_energy_guard_begin
    la   r2, )" + std::to_string(burn) +
                             R"(
__burn:
    addi r2, r2, -1
    cmpi r2, 0
    bne  __burn
    call edb_energy_guard_end
    la   r0, 0x5000
    li   r1, 1
    stw  r1, [r0]
    halt
)" + runtime::libedbSource()));
    wisp.start();
    ASSERT_TRUE(board.pumpUntil(
        [&] { return wisp.mcu().debugRead32(0x5000) == 1; },
        30 * sim::oneSec));
    double margin =
        board.chargeCircuit().config().restoreStopMargin;
    EXPECT_GE(board.lastRestoredVolts(),
              board.lastSavedVolts() - 0.01);
    EXPECT_LE(board.lastRestoredVolts(),
              board.lastSavedVolts() + margin + 0.03);
}

INSTANTIATE_TEST_SUITE_P(BurnCycles, GuardCost,
                         ::testing::Values(100u, 10000u, 400000u));

TEST(IntermittenceBug, NeverFaultsOnContinuousPower)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        sim::Simulator simulator(seed);
        energy::TheveninHarvester bench(3.0, 50.0);
        target::Wisp wisp(simulator, "wisp", &bench, nullptr);
        wisp.flash(apps::buildLinkedListApp());
        wisp.start();
        simulator.runFor(2 * sim::oneSec);
        EXPECT_EQ(wisp.mcu().faultCount(), 0u) << "seed " << seed;
    }
}

TEST(IntermittenceBug, EventuallyFaultsOnHarvestedPower)
{
    int faulted_runs = 0;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        sim::Simulator simulator(seed);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        wisp.flash(apps::buildLinkedListApp());
        wisp.start();
        while (simulator.now() < 60 * sim::oneSec &&
               wisp.mcu().faultCount() == 0) {
            simulator.runFor(100 * sim::oneMs);
        }
        faulted_runs += wisp.mcu().faultCount() > 0;
    }
    EXPECT_EQ(faulted_runs, 3);
}

TEST(IntermittenceBug, AssertAlwaysCatchesBeforeTheWildWrite)
{
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        sim::Simulator simulator(seed);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        edbdbg::EdbBoard board(simulator, "edb", wisp);
        apps::LinkedListOptions options;
        options.withAssert = true;
        wisp.flash(apps::buildLinkedListApp(options));
        wisp.start();
        ASSERT_TRUE(board.waitForSession(120 * sim::oneSec))
            << "seed " << seed;
        EXPECT_EQ(board.session()->reason(),
                  edbdbg::SessionReason::AssertFail);
        // The keep-alive caught the corruption before undefined
        // behaviour: no fault ever occurred.
        EXPECT_EQ(wisp.mcu().faultCount(), 0u);
        board.session()->resume();
    }
}

} // namespace

namespace {

TEST(IntermittenceBug, CheckpointingDoesNotPreventIt)
{
    // Paper Section 2.1 / Fig 3: the corruption is in *non-volatile*
    // data, so a volatile-state checkpointing runtime does not help;
    // "reboots cause control to flow unintuitively back to a
    // previous point in the execution" and the same wild write
    // happens.
    target::WispConfig config;
    config.mcu.checkpointingEnabled = true;
    sim::Simulator simulator(31);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr, config);
    apps::LinkedListOptions options;
    options.withCheckpoint = true; // chkpt at the top of the loop
    wisp.flash(apps::buildLinkedListApp(options));
    wisp.start();
    while (simulator.now() < 60 * sim::oneSec &&
           wisp.mcu().faultCount() == 0) {
        simulator.runFor(100 * sim::oneMs);
    }
    EXPECT_GT(wisp.mcu().faultCount(), 0u);
    EXPECT_GT(wisp.mcu().restoreCount(), 0u)
        << "checkpoints were not actually exercised";
}

TEST(IntermittenceBug, GuardedThirdPartyCodeCannotFailIntermittently)
{
    // Paper Section 3.3.3: "As long as third-party library calls are
    // wrapped in energy guards, intermittence failures are
    // guaranteed to not occur within the library." Wrap the whole
    // vulnerable loop body in a guard: no corruption can form.
    sim::Simulator simulator(32);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    edbdbg::EdbBoard board(simulator, "edb", wisp);
    // A guarded variant of the vulnerable append/remove cycle.
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
.equ HEAD, 0x5010
.equ TAILPTR, 0x5004
.equ NODE, 0x5100
.equ ITERS, 0x500C
main:
    la   r0, HEAD              ; (re)initialize only if tail is 0
    la   r2, TAILPTR
    ldw  r1, [r2]
    cmpi r1, 0
    bne  main_loop
    li   r1, 0
    stw  r1, [r0]
    stw  r1, [r0 + 4]
    stw  r0, [r2]
main_loop:
    call edb_energy_guard_begin
    ; --- guarded, "third-party" list manipulation ---
    la   r0, HEAD
    ldw  r6, [r0]
    cmpi r6, 0
    bne  __remove
    la   r1, NODE
    li   r0, 0
    stw  r0, [r1]
    la   r2, TAILPTR
    ldw  r3, [r2]
    stw  r3, [r1 + 4]
    stw  r1, [r3]
    stw  r1, [r2]
    br   __done
__remove:
    mov  r1, r6
    la   r0, TAILPTR
    ldw  r2, [r0]
    cmp  r1, r2
    bne  __wild
    ldw  r2, [r1 + 4]
    stw  r2, [r0]
    ldw  r2, [r1 + 4]
    ldw  r3, [r1]
    stw  r3, [r2]
    br   __done
__wild:
    ldw  r3, [r1]
    ldw  r2, [r1 + 4]
    stw  r2, [r3 + 4]          ; would fault on corruption
__done:
    call edb_energy_guard_end
    ; --- unguarded application work: real energy is spent here, so
    ; brown-outs (and reboots) still happen between library calls ---
    la   r2, 30000
__work:
    addi r2, r2, -1
    cmpi r2, 0
    bne  __work
    la   r0, ITERS
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    br   main_loop
)" + runtime::libedbSource()));
    wisp.start();
    simulator.runFor(20 * sim::oneSec);
    EXPECT_EQ(wisp.mcu().faultCount(), 0u);
    EXPECT_GT(board.guardCount(), 20u);
    EXPECT_GT(wisp.mcu().debugRead32(0x500C), 20u);
    EXPECT_GT(wisp.power().bootCount(), 1u);
}

} // namespace
