/**
 * @file
 * Unit and property tests for the EH32 instruction set: encoding
 * round-trips, mnemonics, disassembly, flags.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "sim/rng.hh"

using namespace edb::isa;

namespace {

const std::vector<Opcode> &
allOpcodes()
{
    static const std::vector<Opcode> ops = {
        Opcode::Nop,  Opcode::Halt,  Opcode::Li,    Opcode::Lui,
        Opcode::Mov,  Opcode::Add,   Opcode::Sub,   Opcode::Mul,
        Opcode::Divu, Opcode::Remu,  Opcode::And,   Opcode::Or,
        Opcode::Xor,  Opcode::Shl,   Opcode::Shr,   Opcode::Sar,
        Opcode::Addi, Opcode::Andi,  Opcode::Ori,   Opcode::Xori,
        Opcode::Shli, Opcode::Shri,  Opcode::Cmp,   Opcode::Cmpi,
        Opcode::Br,   Opcode::Beq,   Opcode::Bne,   Opcode::Blt,
        Opcode::Bge,  Opcode::Bltu,  Opcode::Bgeu,  Opcode::Ldw,
        Opcode::Ldb,  Opcode::Stw,   Opcode::Stb,   Opcode::Push,
        Opcode::Pop,  Opcode::Call,  Opcode::Callr, Opcode::Ret,
        Opcode::Reti, Opcode::Chkpt,
    };
    return ops;
}

bool
isRType(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Cmp:
        return true;
      default:
        return false;
    }
}

bool
isUnsignedImm(Opcode op)
{
    switch (op) {
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
        return true;
      default:
        return false;
    }
}

/** Parameterized round-trip over every opcode. */
class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode>
{};

TEST_P(OpcodeRoundTrip, EncodeDecodePreservesFields)
{
    Opcode op = GetParam();
    edb::sim::Rng rng(static_cast<std::uint64_t>(op) + 1);
    for (int trial = 0; trial < 50; ++trial) {
        Instr instr;
        instr.op = op;
        instr.rd = static_cast<std::uint8_t>(rng.uniformInt(0, 15));
        instr.rs = static_cast<std::uint8_t>(rng.uniformInt(0, 15));
        if (isRType(op)) {
            instr.rt =
                static_cast<std::uint8_t>(rng.uniformInt(0, 15));
            instr.imm = 0;
        } else if (isUnsignedImm(op)) {
            instr.imm =
                static_cast<std::int32_t>(rng.uniformInt(0, 0xFFFF));
        } else {
            instr.imm = static_cast<std::int32_t>(
                rng.uniformInt(-32768, 32767));
        }
        auto decoded = decode(encode(instr));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->op, instr.op);
        EXPECT_EQ(decoded->rd, instr.rd);
        EXPECT_EQ(decoded->rs, instr.rs);
        if (isRType(op))
            EXPECT_EQ(decoded->rt, instr.rt);
        else
            EXPECT_EQ(decoded->imm, instr.imm);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::ValuesIn(allOpcodes()),
                         [](const auto &info) {
                             return std::string(
                                 mnemonic(info.param));
                         });

TEST(Isa, UnknownOpcodeDecodesToNullopt)
{
    EXPECT_FALSE(decode(0xFF000000).has_value());
    EXPECT_FALSE(decode(0x80000000).has_value());
}

TEST(Isa, MnemonicRoundTrip)
{
    for (Opcode op : allOpcodes()) {
        auto back = opcodeFromMnemonic(mnemonic(op));
        ASSERT_TRUE(back.has_value()) << mnemonic(op);
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(opcodeFromMnemonic("bogus").has_value());
    // Case-insensitive.
    EXPECT_EQ(opcodeFromMnemonic("ADD"), Opcode::Add);
}

TEST(Isa, SignExtensionOfImmediates)
{
    Instr instr{Opcode::Li, 1, 0, 0, -1};
    auto decoded = decode(encode(instr));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->imm, -1);
    Instr ori{Opcode::Ori, 1, 1, 0, 0xFFFF};
    decoded = decode(encode(ori));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->imm, 0xFFFF); // zero-extended
}

TEST(Isa, DisassembleSamples)
{
    EXPECT_EQ(disassemble({Opcode::Li, 3, 0, 0, 42}), "li r3, 42");
    EXPECT_EQ(disassemble({Opcode::Add, 1, 2, 3, 0}),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble({Opcode::Ldw, 4, 5, 0, -8}),
              "ldw r4, [r5 + -8]");
    EXPECT_EQ(disassemble({Opcode::Cmp, 0, 1, 2, 0}), "cmp r1, r2");
    EXPECT_EQ(disassemble({Opcode::Ret, 0, 0, 0, 0}), "ret");
    EXPECT_EQ(disassemble({Opcode::Callr, 0, 7, 0, 0}), "callr r7");
}

TEST(Isa, BranchClassification)
{
    EXPECT_TRUE(isBranch(Opcode::Br));
    EXPECT_TRUE(isBranch(Opcode::Beq));
    EXPECT_TRUE(isBranch(Opcode::Call));
    EXPECT_FALSE(isBranch(Opcode::Ret));
    EXPECT_FALSE(isBranch(Opcode::Add));
}

TEST(Isa, CycleCostsAreSane)
{
    EXPECT_EQ(baseCycles(Opcode::Nop), 1u);
    EXPECT_GT(baseCycles(Opcode::Mul), baseCycles(Opcode::Add));
    EXPECT_GT(baseCycles(Opcode::Divu), baseCycles(Opcode::Mul));
    for (Opcode op : allOpcodes())
        EXPECT_GE(baseCycles(op), 1u) << mnemonic(op);
}

TEST(Flags, PackUnpackRoundTrip)
{
    for (unsigned bits = 0; bits < 16; ++bits) {
        Flags f;
        f.z = bits & 1;
        f.n = bits & 2;
        f.c = bits & 4;
        f.v = bits & 8;
        Flags g = Flags::unpack(f.pack());
        EXPECT_EQ(g.z, f.z);
        EXPECT_EQ(g.n, f.n);
        EXPECT_EQ(g.c, f.c);
        EXPECT_EQ(g.v, f.v);
    }
}

} // namespace
