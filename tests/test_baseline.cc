/**
 * @file
 * Tests of the baseline instruments (oscilloscope, JTAG, UART log
 * host), the Ekho-style energy record/replay, and the VCD exporter.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "apps/linked_list.hh"
#include "baseline/jtag.hh"
#include "baseline/oscilloscope.hh"
#include "baseline/uart_host.hh"
#include "energy/ekho.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "mcu/mmio_map.hh"
#include "runtime/libedb.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"
#include "trace/vcd.hh"

using namespace edb;

namespace {

TEST(Oscilloscope, SamplesAtFixedRate)
{
    sim::Simulator simulator(1);
    baseline::Oscilloscope scope(simulator, "scope", sim::oneMs);
    double value = 0.0;
    scope.addChannel("v", [&value] { return value; });
    scope.start();
    simulator.runFor(10 * sim::oneMs);
    value = 5.0;
    simulator.runFor(10 * sim::oneMs);
    scope.stop();
    simulator.runFor(10 * sim::oneMs);
    // ~21 samples in 20 ms at 1 ms (inclusive ends), none after stop.
    EXPECT_NEAR(double(scope.capture().size()), 21.0, 2.0);
    EXPECT_DOUBLE_EQ(scope.valueAt(0, 5 * sim::oneMs), 0.0);
    EXPECT_DOUBLE_EQ(scope.valueAt(0, 15 * sim::oneMs), 5.0);
}

TEST(Oscilloscope, RisingEdgeCount)
{
    sim::Simulator simulator(2);
    baseline::Oscilloscope scope(simulator, "scope", sim::oneMs);
    bool level = false;
    scope.addChannel("d", [&level] { return level ? 1.0 : 0.0; });
    scope.start();
    for (int i = 0; i < 10; ++i) {
        simulator.runFor(5 * sim::oneMs);
        level = !level;
    }
    simulator.runFor(5 * sim::oneMs);
    EXPECT_EQ(scope.risingEdges(0, 0, simulator.now()), 5u);
}

TEST(Oscilloscope, CsvAndVcdOutput)
{
    sim::Simulator simulator(3);
    baseline::Oscilloscope scope(simulator, "scope", sim::oneMs);
    scope.addChannel("vcap", [] { return 2.5; });
    bool bit = false;
    scope.addChannel("pin", [&bit] { return bit ? 1.0 : 0.0; });
    scope.start();
    simulator.runFor(2 * sim::oneMs);
    bit = true;
    simulator.runFor(2 * sim::oneMs);

    std::ostringstream csv;
    scope.writeCsv(csv);
    EXPECT_NE(csv.str().find("time_ms,vcap,pin"), std::string::npos);

    std::ostringstream vcd;
    scope.writeVcd(vcd);
    std::string dump = vcd.str();
    EXPECT_NE(dump.find("$var real 64 ! vcap $end"),
              std::string::npos);
    EXPECT_NE(dump.find("$var wire 1 \" pin $end"),
              std::string::npos);
    EXPECT_NE(dump.find("r2.5 !"), std::string::npos);
    EXPECT_NE(dump.find("1\""), std::string::npos);
}

TEST(Vcd, RejectsMisuse)
{
    std::ostringstream os;
    trace::VcdWriter vcd(os);
    auto real = vcd.addReal("a");
    auto wire = vcd.addWire("b");
    vcd.changeReal(real, 0, 1.0);
    EXPECT_THROW(vcd.addReal("late"), sim::FatalError);
    EXPECT_THROW(vcd.changeReal(wire, 1, 2.0), sim::FatalError);
    EXPECT_THROW(vcd.changeWire(real, 1, true), sim::FatalError);
}

TEST(Jtag, PowersTargetAndMasksIntermittence)
{
    sim::Simulator simulator(4);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    baseline::JtagDebugger jtag(simulator, "jtag", wisp);
    wisp.flash(apps::buildLinkedListApp());
    jtag.attach();
    wisp.start();
    simulator.runFor(5 * sim::oneSec);
    // With pod power the device boots once and never browns out.
    EXPECT_EQ(wisp.power().bootCount(), 1u);
    EXPECT_EQ(wisp.mcu().faultCount(), 0u);
    EXPECT_TRUE(jtag.targetResponsive());
    auto value = jtag.read32(apps::linked_list_layout::iterCountAddr);
    ASSERT_TRUE(value.has_value());
    EXPECT_GT(*value, 0u);
    EXPECT_TRUE(jtag.write32(0x5100, 42));
    EXPECT_EQ(jtag.read32(0x5100), 42u);
}

TEST(Jtag, ProtocolFailsWhenTargetUnpowered)
{
    sim::Simulator simulator(5);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    // A JTAG isolator: pod does not power the DUT (paper: isolators
    // "do not help with intermittence debugging, because the JTAG
    // protocol fails if the DUT powers off").
    baseline::JtagDebugger jtag(simulator, "jtag", wisp,
                                /*supplies_power=*/false);
    jtag.attach();
    // Target at 0 V: no reads possible.
    EXPECT_FALSE(jtag.targetResponsive());
    EXPECT_FALSE(jtag.read32(0x5000).has_value());
    EXPECT_FALSE(jtag.write32(0x5000, 1));
}

TEST(UartHost, AssemblesLinesAndLoadsTarget)
{
    sim::Simulator simulator(6);
    energy::TheveninHarvester supply(3.0, 50.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    double before = wisp.power().totalLoadAmps();
    baseline::UartHost host(simulator, "host", wisp);
    // The non-isolated adapter adds a permanent load.
    EXPECT_GT(wisp.power().totalLoadAmps(), before);

    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r5, msg
__next:
    ldb  r1, [r5]
    cmpi r1, 0
    beq  __done
    la   r0, UART0_STATUS
__wait:
    ldw  r2, [r0]
    andi r2, r2, 1
    cmpi r2, 0
    bne  __wait
    la   r0, UART0_TX
    stw  r1, [r0]
    addi r5, r5, 1
    br   __next
__done:
    halt
msg: .asciz "hello\nworld\n"
.align
)" + runtime::libedbSource()));
    wisp.start();
    simulator.runFor(200 * sim::oneMs);
    ASSERT_EQ(host.lines().size(), 2u);
    EXPECT_EQ(host.lines()[0], "hello");
    EXPECT_EQ(host.lines()[1], "world");
    EXPECT_EQ(host.byteCount(), 12u);
}

TEST(Ekho, TraceInterpolationAndCsvRoundTrip)
{
    energy::HarvestTrace trace;
    trace.add({0.0, 2.0, 1000.0});
    trace.add({1.0, 4.0, 2000.0});
    EXPECT_DOUBLE_EQ(trace.durationSeconds(), 1.0);
    auto mid = trace.at(0.5);
    EXPECT_NEAR(mid.voc, 3.0, 1e-12);
    EXPECT_NEAR(mid.rsrc, 1500.0, 1e-12);

    std::stringstream csv;
    trace.writeCsv(csv);
    auto restored = energy::HarvestTrace::readCsv(csv);
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_DOUBLE_EQ(restored.at(1.0).voc, 4.0);
}

TEST(Ekho, TraceRejectsBadSamples)
{
    energy::HarvestTrace trace;
    trace.add({1.0, 2.0, 100.0});
    EXPECT_THROW(trace.add({0.5, 2.0, 100.0}), sim::FatalError);
    EXPECT_THROW(trace.add({2.0, 2.0, 0.0}), sim::FatalError);
    energy::HarvestTrace empty;
    EXPECT_THROW(empty.at(0.0), sim::FatalError);
    EXPECT_THROW(
        { energy::RecordedHarvester bad(empty); (void)bad; },
        sim::FatalError);
}

TEST(Ekho, RecorderCapturesTheveninSurface)
{
    sim::Simulator simulator(7);
    energy::RfHarvester rf(30.0, 1.0);
    energy::HarvestRecorder recorder(simulator, "recorder", rf,
                                     10 * sim::oneMs);
    recorder.start();
    simulator.runFor(100 * sim::oneMs);
    recorder.stop();
    ASSERT_GE(recorder.trace().size(), 10u);
    auto s = recorder.trace().at(0.05);
    EXPECT_NEAR(s.voc, energy::RfHarvester::rectifierVoc, 1e-9);
    EXPECT_NEAR(s.rsrc, rf.sourceResistance(), rf.sourceResistance() *
                                                   0.01);
}

TEST(Ekho, ReplayReproducesIntermittentBehaviour)
{
    // Record the live environment, then run the same program once on
    // the live source and once on the replayed trace: the replay
    // must produce comparable intermittence (same-order boot counts).
    energy::RfHarvester rf(30.0, 1.0);
    energy::HarvestTrace trace;
    for (int i = 0; i <= 100; ++i)
        trace.add({i * 0.1, energy::RfHarvester::rectifierVoc,
                   rf.sourceResistance()});
    energy::RecordedHarvester replay(trace, /*loop=*/true);

    auto boots_with = [](const energy::Harvester *h) {
        sim::Simulator simulator(8);
        target::Wisp wisp(simulator, "wisp", h, nullptr);
        wisp.flash(isa::assemble(
            ".org 0x4000\nmain:\n    br main\n"));
        wisp.start();
        simulator.runFor(10 * sim::oneSec);
        return wisp.power().bootCount();
    };
    auto live = boots_with(&rf);
    auto replayed = boots_with(&replay);
    ASSERT_GT(live, 2u);
    EXPECT_NEAR(double(replayed), double(live), double(live) * 0.3);
}

TEST(Ekho, LoopedReplayWrapsTime)
{
    energy::HarvestTrace trace;
    trace.add({0.0, 2.0, 100.0});
    trace.add({1.0, 4.0, 100.0});
    energy::RecordedHarvester looped(trace, true);
    EXPECT_NEAR(looped.openCircuitVoltage(0.5), 3.0, 1e-9);
    EXPECT_NEAR(looped.openCircuitVoltage(1.5), 3.0, 1e-9);
    energy::RecordedHarvester held(trace, false);
    EXPECT_NEAR(held.openCircuitVoltage(1.5), 4.0, 1e-9);
}

} // namespace
