/**
 * @file
 * Debug-server and virtual-breakpoint tests (DESIGN.md §13): the
 * condition grammar and its strictly read-only evaluation (registers,
 * NV/SRAM words, capacitor voltage including exactly-at-threshold),
 * the zero-energy proof (per-world digests bit-identical with a
 * server + breakpoints attached vs a bare fleet), and the server's
 * robustness machinery — busy backpressure, command deadlines, idle
 * aborts, quota/ownership/range errors, read-only write rejection,
 * JSON parser hardening, and stuck-session accounting for wires that
 * die mid-frame.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "edb/server.hh"
#include "edb/vbreak.hh"
#include "fleet/fleet.hh"
#include "isa/assembler.hh"
#include "isa/listing.hh"
#include "sim/rng.hh"
#include "target/wisp.hh"

using namespace edb;
using edbdbg::DebugServer;
using edbdbg::JsonValue;
using edbdbg::RpcClient;
using edbdbg::ServerConfig;
using edbdbg::SessionOutcome;
using edbdbg::VBreakCondition;

namespace {

/** One-tag charged fleet: the target executes from epoch one. */
fleet::FleetConfig
tinyFleet(unsigned tags = 1)
{
    fleet::FleetConfig cfg;
    cfg.tags = tags;
    cfg.threads = 0;
    cfg.seed = 42;
    cfg.wisp.power.initialVolts = 2.6;
    cfg.wisp.power.capacitanceF = 4700e-9;
    cfg.wisp.mcu.checkpointingEnabled = true;
    return cfg;
}

bool
evalOn(const target::Wisp &wisp, const std::string &text)
{
    auto cond = VBreakCondition::parse(text);
    EXPECT_TRUE(cond.has_value()) << text;
    return cond && cond->eval(wisp);
}

/** Find the response carrying `id` in a drained batch. */
const JsonValue *
findId(const std::vector<JsonValue> &batch, std::uint64_t id)
{
    for (const JsonValue &r : batch)
        if (r.getUint("id").value_or(0) == id)
            return &r;
    return nullptr;
}

bool
isErr(const JsonValue &r, const std::string &code)
{
    const JsonValue *ok = r.get("ok");
    return ok && !ok->boolean(true) &&
           r.getStr("err").value_or("") == code;
}

} // namespace

// ---------------------------------------------------------------------
// Condition grammar

TEST(VBreakCondition, ParsesValidExpressions)
{
    const char *good[] = {
        "",
        "r0==0",
        "r15 != 0x10",
        "pc>=0x4000",
        "vcap>1.8",
        "instrs<1000000",
        "cycles >= 5",
        "nv[0x4000]==0xdeadbeef",
        "sram[0x0400]<256",
        "r1>2&&r2<5",
        "r1>2||r2<5",
        "(r1>2||r2<5)&&vcap>=0.5",
    };
    for (const char *text : good) {
        std::string why;
        EXPECT_TRUE(VBreakCondition::parse(text, &why).has_value())
            << text << ": " << why;
    }
    EXPECT_TRUE(VBreakCondition::parse("")->unconditional());
    EXPECT_FALSE(VBreakCondition::parse("r0==0")->unconditional());
}

TEST(VBreakCondition, RejectsMalformedExpressions)
{
    const char *bad[] = {
        "r0",          // missing relop
        "r0==",        // missing rhs
        "==5",         // missing lhs
        "(r0==1",      // unbalanced paren
        "r99==0",      // register out of range
        "nv[==0",      // broken index
        "bogus==1",    // unknown operand
        "r0 = 1",      // assignment is not comparison
        "r0==1 &&",    // dangling conjunction
        "r0==1 extra", // trailing junk
    };
    for (const char *text : bad) {
        std::string why;
        EXPECT_FALSE(VBreakCondition::parse(text, &why).has_value())
            << text;
        EXPECT_FALSE(why.empty()) << text;
    }
}

// ---------------------------------------------------------------------
// Evaluation against a live target

TEST(VBreakCondition, EvaluatesRegisters)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();
    wisp.mcu().setReg(2, 41);
    EXPECT_TRUE(evalOn(wisp, "r2==41"));
    EXPECT_TRUE(evalOn(wisp, "r2>=41"));
    EXPECT_TRUE(evalOn(wisp, "r2<=41"));
    EXPECT_TRUE(evalOn(wisp, "r2>40"));
    EXPECT_TRUE(evalOn(wisp, "r2<42"));
    EXPECT_FALSE(evalOn(wisp, "r2!=41"));
    EXPECT_FALSE(evalOn(wisp, "r2>41"));
    wisp.mcu().setReg(3, 7);
    EXPECT_TRUE(evalOn(wisp, "r2==41&&r3==7"));
    EXPECT_FALSE(evalOn(wisp, "r2==41&&r3==8"));
    EXPECT_TRUE(evalOn(wisp, "r2==0||r3==7"));
    // && binds tighter than ||: true || (false && false).
    EXPECT_TRUE(evalOn(wisp, "r3==7||r3==8&&r2==0"));
}

TEST(VBreakCondition, EvaluatesNvAndSramWords)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();
    namespace lay = target::layout;

    const mem::Addr nvAddr = lay::framBase + lay::framSize - 8;
    wisp.framRegion().write32(nvAddr, 0xCAFEF00Du);
    char buf[64];
    std::snprintf(buf, sizeof buf, "nv[0x%x]==0xcafef00d", nvAddr);
    EXPECT_TRUE(evalOn(wisp, buf));
    std::snprintf(buf, sizeof buf, "nv[0x%x]!=0xcafef00d", nvAddr);
    EXPECT_FALSE(evalOn(wisp, buf));

    const mem::Addr ramAddr = lay::sramBase + 0x100;
    wisp.sramRegion().write32(ramAddr, 1234);
    std::snprintf(buf, sizeof buf, "sram[0x%x]==1234", ramAddr);
    EXPECT_TRUE(evalOn(wisp, buf));

    // Out-of-range indices evaluate to 0 — never a fault.
    EXPECT_TRUE(evalOn(wisp, "nv[0x0]==0"));
    EXPECT_TRUE(evalOn(wisp, "sram[0xffffff00]==0"));
}

TEST(VBreakCondition, NearOverflowAddressesEvaluateToZero)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();
    namespace lay = target::layout;

    // `addr + 4` wraps in 32-bit arithmetic up here; a naive bounds
    // check passes and reads ~4 GB past the region buffer.
    EXPECT_TRUE(evalOn(wisp, "nv[0xfffffffe]==0"));
    EXPECT_TRUE(evalOn(wisp, "nv[0xfffffffc]==0"));
    EXPECT_TRUE(evalOn(wisp, "sram[0xffffffff]==0"));

    // The last fully in-range word still reads normally...
    const mem::Addr last = lay::framBase + lay::framSize - 4;
    wisp.framRegion().write32(last, 0x11223344u);
    char buf[64];
    std::snprintf(buf, sizeof buf, "nv[0x%x]==0x11223344", last);
    EXPECT_TRUE(evalOn(wisp, buf));
    // ...and one byte further straddles the end: out of range again.
    std::snprintf(buf, sizeof buf, "nv[0x%x]==0", last + 1);
    EXPECT_TRUE(evalOn(wisp, buf));
}

// ---------------------------------------------------------------------
// Probe tracer chaining

TEST(WorldProbe, ChainsUnderAndRestoresWorldOwnedTracer)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();

    // Stand-in for a world-owned tracer (the WAR-gadget watch on
    // auditor-completeness worlds).
    int worldHookCalls = 0;
    wisp.mcu().setTracer(
        [&worldHookCalls](mem::Addr, const isa::Instr &) {
            ++worldHookCalls;
        });

    edbdbg::WorldProbe probe;
    edbdbg::VirtualBreakpoint bp;
    bp.id = 1;
    bp.sessionId = 1;
    bp.addr = 0x9000;
    probe.put(bp);
    probe.install(wisp);
    // Reinstall on the same core is a no-op — no self-chaining.
    probe.install(wisp);

    const isa::Instr nop;
    wisp.mcu().tracerHook()(0x9000, nop);
    EXPECT_EQ(worldHookCalls, 1); // world's own hook still fires
    EXPECT_EQ(probe.evals(), 1u); // exactly once — not chained twice
    EXPECT_EQ(probe.drainHits().size(), 1u);

    probe.uninstall(wisp);
    ASSERT_TRUE(static_cast<bool>(wisp.mcu().tracerHook()));
    wisp.mcu().tracerHook()(0x9000, nop);
    EXPECT_EQ(worldHookCalls, 2); // restored, not cleared
    EXPECT_EQ(probe.evals(), 1u); // probe detached
}

TEST(VBreakCondition, VcapExactlyAtThreshold)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();
    wisp.power().capacitor().setVoltage(1.8);
    EXPECT_TRUE(evalOn(wisp, "vcap>=1.8"));
    EXPECT_TRUE(evalOn(wisp, "vcap<=1.8"));
    EXPECT_TRUE(evalOn(wisp, "vcap==1.8"));
    EXPECT_FALSE(evalOn(wisp, "vcap>1.8"));
    EXPECT_FALSE(evalOn(wisp, "vcap<1.8"));
    EXPECT_TRUE(evalOn(wisp, "vcap>1.7"));
}

TEST(VBreakCondition, EvaluationDrawsNoEnergy)
{
    fleet::Fleet fleet(tinyFleet());
    fleet.runEpochs(3);
    const target::Wisp &wisp = fleet.world(0).wisp();
    const double before = wisp.power().voltageNoAdvance();
    for (int i = 0; i < 1000; ++i) {
        evalOn(wisp, "vcap>1.0&&r2>=0");
        evalOn(wisp, "nv[0x4000]==0||sram[0x0400]!=0");
    }
    // Bitwise equality: eval may not advance the analog model.
    EXPECT_EQ(before, wisp.power().voltageNoAdvance());
}

// ---------------------------------------------------------------------
// Zero-energy proof: digest parity with a server attached

TEST(DebugServer, DigestParityWithBreakpointsAttached)
{
    const unsigned epochs = 24;
    const fleet::FleetConfig cfg = tinyFleet(2);

    std::vector<fleet::WorldDigest> served;
    {
        fleet::Fleet fleet(cfg);
        DebugServer server(fleet);
        isa::Program image =
            isa::assemble(fleet::Fleet::defaultFirmware().listing);
        server.setSymbols(isa::SymbolTable::fromProgram(image));

        RpcClient rpc(server, "parity");
        rpc.request("\"m\":\"attach\",\"world\":0");
        rpc.request("\"m\":\"setbreak\",\"addr\":\"0x4000\","
                    "\"cond\":\"vcap>0.1\"");
        rpc.request("\"m\":\"setbreak\",\"addr\":\"0x4004\","
                    "\"cond\":\"instrs>10&&r2>=0\"");
        for (unsigned e = 0; e < epochs; ++e) {
            if (e % 4 == 0)
                rpc.request("\"m\":\"regs\"");
            rpc.pump();
            rpc.takeResponses();
            rpc.takeEvents();
            server.runEpoch();
        }
        ASSERT_EQ(fleet.epochsRun(), epochs);
        EXPECT_EQ(server.stats().interferenceViolations, 0u);
        EXPECT_GT(server.stats().commandsServed, 0u);
        served = fleet.digests();
    }

    fleet::Fleet bare(cfg);
    bare.runEpochs(epochs);
    std::vector<fleet::WorldDigest> ref = bare.digests();
    ASSERT_EQ(served.size(), ref.size());
    for (std::size_t w = 0; w < ref.size(); ++w)
        EXPECT_TRUE(served[w] == ref[w]) << "world " << w;
}

// ---------------------------------------------------------------------
// JSON hardening

TEST(JsonValue, SurvivesByteSoup)
{
    std::uint64_t state = 7;
    auto next = [&state] { return state = sim::splitmix64(state); };
    for (int trial = 0; trial < 2000; ++trial) {
        std::string soup;
        std::size_t len = next() % 64;
        for (std::size_t i = 0; i < len; ++i)
            soup.push_back(static_cast<char>(next() & 0xFF));
        JsonValue::parse(soup); // must not crash or hang
    }
    EXPECT_FALSE(JsonValue::parse("{\"a\":").has_value());
    EXPECT_FALSE(JsonValue::parse("[1,2").has_value());
    EXPECT_FALSE(JsonValue::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(JsonValue::parse("nul").has_value());
}

TEST(JsonValue, DepthCapRejectsAdversarialNesting)
{
    std::string deep;
    for (int i = 0; i < 64; ++i)
        deep += "[";
    for (int i = 0; i < 64; ++i)
        deep += "]";
    EXPECT_FALSE(JsonValue::parse(deep).has_value());
    EXPECT_TRUE(JsonValue::parse("[[[[1]]]]").has_value());

    auto obj = JsonValue::parse(
        "{\"id\":7,\"m\":\"read\",\"addr\":\"0x4000\",\"len\":16}");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->getUint("id").value_or(0), 7u);
    EXPECT_EQ(obj->getUint("addr").value_or(0), 0x4000u);
    EXPECT_EQ(obj->getStr("m").value_or(""), "read");
}

// ---------------------------------------------------------------------
// Server robustness units

namespace {

/** Drive until the response with `id` shows up (or epochs exhaust). */
std::optional<JsonValue>
awaitId(RpcClient &rpc, std::uint64_t id, unsigned epochs = 20)
{
    return rpc.await(id, epochs);
}

} // namespace

TEST(DebugServer, AttachValidation)
{
    fleet::Fleet fleet(tinyFleet(2));
    DebugServer server(fleet);
    RpcClient rpc(server, "t");

    std::uint64_t before =
        rpc.request("\"m\":\"regs\""); // not attached yet
    std::uint64_t badWorld =
        rpc.request("\"m\":\"attach\",\"world\":99");
    std::uint64_t okId = rpc.request("\"m\":\"attach\",\"world\":1");
    std::uint64_t again = rpc.request("\"m\":\"attach\",\"world\":0");

    auto r = awaitId(rpc, again);
    ASSERT_TRUE(r.has_value());
    std::vector<JsonValue> all = rpc.takeResponses();
    all.push_back(*r);
    const JsonValue *rb = findId(all, before);
    const JsonValue *rw = findId(all, badWorld);
    const JsonValue *ro = findId(all, okId);
    ASSERT_TRUE(rb && rw && ro);
    EXPECT_TRUE(isErr(*rb, "detached"));
    EXPECT_TRUE(isErr(*rw, "world"));
    EXPECT_TRUE(ro->get("ok")->boolean(false));
    EXPECT_EQ(ro->getUint("world").value_or(99), 1u);
    EXPECT_TRUE(isErr(*r, "attached"));
}

TEST(DebugServer, BusyBackpressureOnCommandFlood)
{
    fleet::Fleet fleet(tinyFleet());
    ServerConfig cfg;
    cfg.maxPendingCmds = 4;
    DebugServer server(fleet, cfg);
    RpcClient rpc(server, "flood");

    rpc.request("\"m\":\"attach\",\"world\":0");
    // One pump moves all staged frames to the server; the next poll
    // parses them in one gulp, overflowing the 4-deep queue.
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 12; ++i)
        ids.push_back(rpc.request("\"m\":\"ping\""));
    auto last = awaitId(rpc, ids.back(), 30);
    ASSERT_TRUE(last.has_value());
    std::vector<JsonValue> all = rpc.takeResponses();
    all.push_back(*last);
    unsigned busy = 0, okCount = 0;
    for (std::uint64_t id : ids) {
        const JsonValue *r = findId(all, id);
        ASSERT_NE(r, nullptr) << "lost response id " << id;
        if (isErr(*r, "busy"))
            ++busy;
        else if (r->get("ok") && r->get("ok")->boolean(false))
            ++okCount;
    }
    EXPECT_GT(busy, 0u) << "queue overflow must answer busy";
    EXPECT_GT(okCount, 0u);
    EXPECT_EQ(server.stats().commandsBackpressured, busy);
    EXPECT_EQ(server.stuckSessions(), 0u);
}

TEST(DebugServer, StaleCommandsFailDeadline)
{
    fleet::Fleet fleet(tinyFleet());
    ServerConfig cfg;
    cfg.commandsPerPoll = 1; // one command per epoch...
    cfg.commandDeadline = sim::oneUs; // ...and a 1 µs deadline
    DebugServer server(fleet, cfg);
    RpcClient rpc(server, "stale");

    std::uint64_t attach = rpc.request("\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(rpc, attach).has_value());
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(rpc.request("\"m\":\"ping\""));
    auto last = awaitId(rpc, ids.back(), 30);
    ASSERT_TRUE(last.has_value());
    std::vector<JsonValue> all = rpc.takeResponses();
    all.push_back(*last);
    unsigned deadlined = 0;
    for (std::uint64_t id : ids)
        if (const JsonValue *r = findId(all, id))
            if (isErr(*r, "deadline"))
                ++deadlined;
    // The first command of each poll executes; queued followers age a
    // whole epoch (5 ms) past the 1 µs deadline and must fail loudly.
    EXPECT_GT(deadlined, 0u);
    EXPECT_EQ(server.stats().commandsDeadlined, deadlined);
}

TEST(DebugServer, IdleSessionProbedThenAborted)
{
    fleet::Fleet fleet(tinyFleet());
    ServerConfig cfg;
    cfg.idleTimeout = 8 * sim::oneMs; // under two epochs
    cfg.maxProbes = 2;
    DebugServer server(fleet, cfg);
    RpcClient rpc(server, "sleeper");

    std::uint64_t attach = rpc.request("\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(rpc, attach).has_value());
    // Now go silent. The server must ping, then give up — bounded.
    bool sawPing = false, sawBye = false;
    for (unsigned e = 0; e < 40 && !sawBye; ++e) {
        server.runEpoch();
        rpc.pump();
        for (const JsonValue &ev : rpc.takeEvents()) {
            std::string kind = ev.getStr("ev").value_or("");
            sawPing = sawPing || kind == "ping";
            sawBye = sawBye || kind == "bye";
        }
    }
    EXPECT_TRUE(sawPing);
    EXPECT_TRUE(sawBye);
    EXPECT_EQ(server.stats().sessionsAborted, 1u);
    EXPECT_EQ(server.activeSessions(), 0u);
    ASSERT_EQ(server.reports().size(), 1u);
    const edbdbg::SessionReport &rpt = server.reports()[0];
    EXPECT_EQ(rpt.outcome, SessionOutcome::Aborted);
    EXPECT_EQ(rpt.reason, "idle");
    EXPECT_LE(server.stats().probesSent,
              static_cast<std::uint64_t>(cfg.maxProbes));
}

TEST(DebugServer, BreakpointQuotaCondAndOwnership)
{
    fleet::Fleet fleet(tinyFleet());
    ServerConfig cfg;
    cfg.maxBreakpointsPerSession = 2;
    DebugServer server(fleet, cfg);

    RpcClient alice(server, "alice");
    std::uint64_t a1 = alice.request("\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(alice, a1).has_value());
    std::uint64_t b1 = alice.request(
        "\"m\":\"setbreak\",\"addr\":\"0x4000\"");
    std::uint64_t b2 = alice.request(
        "\"m\":\"setbreak\",\"addr\":\"0x4002\",\"cond\":\"r1>0\"");
    std::uint64_t b3 = alice.request(
        "\"m\":\"setbreak\",\"addr\":\"0x4004\""); // over quota
    std::uint64_t b4 = alice.request(
        "\"m\":\"setbreak\",\"cond\":\"r1>0\""); // no addr
    auto last = awaitId(alice, b4);
    ASSERT_TRUE(last.has_value());
    std::vector<JsonValue> all = alice.takeResponses();
    all.push_back(*last);
    const JsonValue *r1 = findId(all, b1);
    const JsonValue *r2 = findId(all, b2);
    const JsonValue *r3 = findId(all, b3);
    ASSERT_TRUE(r1 && r2 && r3);
    EXPECT_TRUE(r1->get("ok")->boolean(false));
    std::uint64_t bkId = r1->getUint("bk").value_or(0);
    EXPECT_NE(bkId, 0u);
    EXPECT_TRUE(r2->get("ok")->boolean(false));
    EXPECT_TRUE(isErr(*r3, "quota"));
    EXPECT_TRUE(isErr(*last, "addr"));

    // Bad condition text is a parse-time error, not a silent pass.
    std::uint64_t bad = alice.request(
        "\"m\":\"clearbreak\",\"bk\":" + std::to_string(bkId));
    auto cleared = awaitId(alice, bad);
    ASSERT_TRUE(cleared.has_value());
    EXPECT_TRUE(cleared->get("ok")->boolean(false));
    std::uint64_t badCond = alice.request(
        "\"m\":\"setbreak\",\"addr\":\"0x4006\","
        "\"cond\":\"bogus==\"");
    auto rc = awaitId(alice, badCond);
    ASSERT_TRUE(rc.has_value());
    EXPECT_TRUE(isErr(*rc, "cond"));

    // Bob cannot clear what remains of Alice's set.
    std::uint64_t b2Id = r2->getUint("bk").value_or(0);
    RpcClient bob(server, "bob");
    std::uint64_t battach = bob.request(
        "\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(bob, battach).has_value());
    std::uint64_t steal = bob.request(
        "\"m\":\"clearbreak\",\"bk\":" + std::to_string(b2Id));
    auto rs = awaitId(bob, steal);
    ASSERT_TRUE(rs.has_value());
    EXPECT_TRUE(isErr(*rs, "bk"));
}

TEST(DebugServer, ReadOnlySessionsCannotWrite)
{
    fleet::Fleet fleet(tinyFleet());
    DebugServer server(fleet);

    RpcClient ro(server, "ro");
    std::uint64_t a = ro.request("\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(ro, a).has_value());
    std::uint64_t w = ro.request(
        "\"m\":\"write\",\"addr\":\"0x4100\",\"d\":\"aa\"");
    auto rr = awaitId(ro, w);
    ASSERT_TRUE(rr.has_value());
    EXPECT_TRUE(isErr(*rr, "ro"));

    RpcClient rw(server, "rw");
    std::uint64_t a2 = rw.request(
        "\"m\":\"attach\",\"world\":0,\"mode\":\"rw\"");
    ASSERT_TRUE(awaitId(rw, a2).has_value());
    std::uint64_t w2 = rw.request(
        "\"m\":\"write\",\"addr\":\"0x4100\",\"d\":\"a55a\"");
    auto wr = awaitId(rw, w2);
    ASSERT_TRUE(wr.has_value());
    ASSERT_TRUE(wr->get("ok")->boolean(false));
    EXPECT_EQ(wr->getUint("n").value_or(0), 2u);
    std::uint64_t rd = rw.request(
        "\"m\":\"read\",\"addr\":\"0x4100\",\"len\":2");
    auto rv = awaitId(rw, rd);
    ASSERT_TRUE(rv.has_value());
    EXPECT_EQ(rv->getStr("d").value_or(""), "a55a");

    // Out-of-range reads are refused, never serviced partially.
    std::uint64_t oob = rw.request(
        "\"m\":\"read\",\"addr\":\"0xeff0\",\"len\":32");
    auto ov = awaitId(rw, oob);
    ASSERT_TRUE(ov.has_value());
    EXPECT_TRUE(isErr(*ov, "range"));
    EXPECT_EQ(server.stats().oversizeReplies, 0u);
}

TEST(DebugServer, SymbolsPaginateAndLookupRoundTrips)
{
    fleet::Fleet fleet(tinyFleet());
    ServerConfig cfg;
    cfg.symbolsPerPage = 2;
    DebugServer server(fleet, cfg);
    isa::Program image =
        isa::assemble(fleet::Fleet::defaultFirmware().listing);
    isa::SymbolTable syms = isa::SymbolTable::fromProgram(image);
    server.setSymbols(syms);
    const std::size_t total = syms.symbols().size();
    ASSERT_GT(total, 2u);

    RpcClient rpc(server, "sym");
    std::size_t seen = 0;
    std::string firstName;
    for (std::size_t off = 0; off < total;
         off += cfg.symbolsPerPage) {
        std::uint64_t id = rpc.request(
            "\"m\":\"symbols\",\"off\":" + std::to_string(off));
        auto r = awaitId(rpc, id);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->getUint("total").value_or(0), total);
        const JsonValue *page = r->get("syms");
        ASSERT_NE(page, nullptr);
        EXPECT_LE(page->arr().size(), cfg.symbolsPerPage);
        seen += page->arr().size();
        if (off == 0 && !page->arr().empty())
            firstName = page->arr()[0].arr()[0].str();
    }
    EXPECT_EQ(seen, total);

    std::uint64_t lk = rpc.request(
        "\"m\":\"lookup\",\"sym\":\"" + firstName + "\"");
    auto lr = awaitId(rpc, lk);
    ASSERT_TRUE(lr.has_value());
    ASSERT_TRUE(lr->get("ok")->boolean(false));
    std::uint64_t addr = lr->getUint("v").value_or(0);
    std::uint64_t back = rpc.request(
        "\"m\":\"lookup\",\"addr\":" + std::to_string(addr));
    auto br = awaitId(rpc, back);
    ASSERT_TRUE(br.has_value());
    EXPECT_EQ(br->getStr("sym").value_or(""), firstName);

    std::uint64_t unk = rpc.request(
        "\"m\":\"lookup\",\"sym\":\"no_such_symbol\"");
    auto ur = awaitId(rpc, unk);
    ASSERT_TRUE(ur.has_value());
    EXPECT_TRUE(isErr(*ur, "sym"));
}

TEST(DebugServer, MidFrameDisconnectNeverWedges)
{
    fleet::Fleet fleet(tinyFleet());
    DebugServer server(fleet);
    edbdbg::ClientWire *wire = server.connect("halfframe");
    ASSERT_NE(wire, nullptr);

    // A valid attach, then a frame that stops after the length byte:
    // sync + len(40) and silence.
    std::string attach = "{\"id\":1,\"m\":\"attach\",\"world\":0}";
    wire->toServer(edbdbg::buildFrame(
        std::vector<std::uint8_t>(attach.begin(), attach.end())));
    wire->toServer({0x7E, 40, 0x11, 0x22});
    server.runEpochs(3);
    // Mid-frame with a live wire is not stuck — the inter-byte
    // timeout will resync. Kill the wire: the reaper must retire the
    // session, half-frame and all.
    wire->disconnect();
    server.runEpoch();
    server.poll();
    EXPECT_EQ(server.stuckSessions(), 0u);
    EXPECT_EQ(server.activeSessions(), 0u);
    ASSERT_EQ(server.reports().size(), 1u);
    EXPECT_EQ(server.reports()[0].outcome,
              SessionOutcome::Disconnected);
}

TEST(DebugServer, DetachLeavesCompletedReport)
{
    fleet::Fleet fleet(tinyFleet());
    DebugServer server(fleet);
    RpcClient rpc(server, "polite");
    std::uint64_t a = rpc.request("\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(rpc, a).has_value());
    std::uint64_t d = rpc.request("\"m\":\"detach\"");
    auto r = awaitId(rpc, d);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->get("ok")->boolean(false));
    ASSERT_EQ(server.reports().size(), 1u);
    EXPECT_EQ(server.reports()[0].outcome,
              SessionOutcome::Completed);
    EXPECT_GT(server.reports()[0].commandsServed, 0u);
    EXPECT_EQ(server.stuckSessions(), 0u);
}

// ---------------------------------------------------------------------
// Condition parser hardening: round-trip, hostile input, boundaries

TEST(VBreakCondition, TextRoundTripsThroughParse)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();
    const char *exprs[] = {
        "",
        "r0==0",
        "r15 != 0x10",
        "vcap>1.8",
        "instrs<1000000||cycles>=5",
        "(r1>2||r2<5)&&vcap>=0.5",
        "nv[0x4000]==0&&sram[0x0400]<256",
    };
    for (const char *text : exprs) {
        auto first = VBreakCondition::parse(text);
        ASSERT_TRUE(first.has_value()) << text;
        EXPECT_EQ(first->text(), text);
        // Reparsing the recovered source yields an equivalent
        // condition: same text, same shape, same live verdict.
        auto second = VBreakCondition::parse(first->text());
        ASSERT_TRUE(second.has_value()) << text;
        EXPECT_EQ(second->text(), first->text());
        EXPECT_EQ(second->unconditional(), first->unconditional());
        EXPECT_EQ(second->eval(wisp), first->eval(wisp)) << text;
    }
}

TEST(VBreakCondition, OverlongExpressionRejected)
{
    // Exactly at the 4 KiB cap still parses (trailing whitespace is
    // legal); one byte past is rejected before the parser walks it.
    std::string padded = "r0==0";
    padded.resize(4096, ' ');
    EXPECT_TRUE(VBreakCondition::parse(padded).has_value());
    std::string why;
    padded.push_back(' ');
    EXPECT_FALSE(VBreakCondition::parse(padded, &why).has_value());
    EXPECT_NE(why.find("long"), std::string::npos) << why;

    // A syntactically valid but oversize conjunction chain is
    // rejected by length alone.
    std::string chain = "r0==0";
    while (chain.size() <= 4200)
        chain += "&&r0==0";
    EXPECT_FALSE(VBreakCondition::parse(chain).has_value());
}

TEST(VBreakCondition, DepthCapRejectsDeepNesting)
{
    auto nested = [](unsigned n) {
        std::string s(n, '(');
        s += "r0==0";
        s.append(n, ')');
        return s;
    };
    EXPECT_TRUE(VBreakCondition::parse(nested(8)).has_value());
    EXPECT_TRUE(VBreakCondition::parse(nested(32)).has_value());
    std::string why;
    EXPECT_FALSE(
        VBreakCondition::parse(nested(33), &why).has_value());
    EXPECT_NE(why.find("deep"), std::string::npos) << why;
    // An unterminated paren bomb fails cleanly too — the depth cap
    // fires long before recursion could exhaust the host stack.
    EXPECT_FALSE(
        VBreakCondition::parse(std::string(4000, '(')).has_value());
}

TEST(VBreakCondition, SurvivesMalformedByteSoup)
{
    std::uint64_t state = 99;
    auto next = [&state] { return state = sim::splitmix64(state); };
    // Half grammar-adjacent glyphs (reaches deep parser states),
    // half raw bytes. Parse must never crash, hang, or fail without
    // a reason.
    const char glyphs[] = "r0123456789()&|=<>![]xpcvainstrsyle. ";
    for (int trial = 0; trial < 4000; ++trial) {
        std::string text;
        std::size_t len = next() % 48;
        for (std::size_t i = 0; i < len; ++i) {
            if (next() & 1)
                text.push_back(
                    glyphs[next() % (sizeof glyphs - 1)]);
            else
                text.push_back(static_cast<char>(next() & 0xFF));
        }
        std::string why;
        auto cond = VBreakCondition::parse(text, &why);
        if (!cond.has_value())
            EXPECT_FALSE(why.empty());
    }
}

TEST(VBreakCondition, RegionBaseBoundaryAddresses)
{
    fleet::Fleet fleet(tinyFleet());
    target::Wisp &wisp = fleet.world(0).wisp();
    namespace lay = target::layout;
    char buf[64];

    // The first word of each region reads normally...
    wisp.framRegion().write32(lay::framBase, 0xa5a5a5a5u);
    std::snprintf(buf, sizeof buf, "nv[0x%x]==0xa5a5a5a5",
                  lay::framBase);
    EXPECT_TRUE(evalOn(wisp, buf));
    wisp.sramRegion().write32(lay::sramBase, 0x5a5a5a5au);
    std::snprintf(buf, sizeof buf, "sram[0x%x]==0x5a5a5a5a",
                  lay::sramBase);
    EXPECT_TRUE(evalOn(wisp, buf));

    // ...one byte below each base is out of range: reads as zero.
    std::snprintf(buf, sizeof buf, "nv[0x%x]==0", lay::framBase - 1);
    EXPECT_TRUE(evalOn(wisp, buf));
    std::snprintf(buf, sizeof buf, "sram[0x%x]==0",
                  lay::sramBase - 1);
    EXPECT_TRUE(evalOn(wisp, buf));
}

// ---------------------------------------------------------------------
// Static-analysis RPCs: read-only verdicts, budget accounting

TEST(DebugServer, AnalyzeRpcVerdictWithZeroInterference)
{
    const fleet::FleetConfig cfg = tinyFleet(2);

    std::vector<fleet::WorldDigest> served;
    std::uint64_t ran = 0;
    {
        fleet::Fleet fleet(cfg);
        DebugServer server(fleet);
        RpcClient rpc(server, "analyst");
        rpc.request("\"m\":\"attach\",\"world\":0");

        std::uint64_t an = rpc.request("\"m\":\"analyze\"");
        auto ra = awaitId(rpc, an);
        ASSERT_TRUE(ra.has_value());
        EXPECT_TRUE(ra->get("ok")->boolean(false));
        EXPECT_FALSE(ra->getStr("verdict").value_or("").empty());
        EXPECT_GT(ra->getUint("budgetNc").value_or(0), 0u);
        EXPECT_GE(ra->getUint("nrg").value_or(0), 1u);
        EXPECT_GT(ra->getUint("instrs").value_or(0), 0u);

        std::uint64_t wc = rpc.request("\"m\":\"willComplete\"");
        auto rw = awaitId(rpc, wc);
        ASSERT_TRUE(rw.has_value());
        EXPECT_TRUE(rw->get("ok")->boolean(false));
        std::string will = rw->getStr("will").value_or("");
        EXPECT_TRUE(will == "yes" || will == "no" ||
                    will == "maybe" || will == "never" ||
                    will == "unknown")
            << will;

        while (fleet.epochsRun() < 12) {
            server.runEpoch();
            rpc.pump();
            rpc.takeResponses();
            rpc.takeEvents();
        }
        // The virtual charge/restore discipline held bitwise: the
        // read-only analysis moved the capacitor not at all.
        EXPECT_EQ(server.stats().interferenceViolations, 0u);
        ran = fleet.epochsRun();
        served = fleet.digests();
    }

    // And the stronger form: world trajectories with the analysis
    // session attached are bit-identical to a bare fleet's.
    fleet::Fleet bare(cfg);
    bare.runEpochs(static_cast<unsigned>(ran));
    std::vector<fleet::WorldDigest> ref = bare.digests();
    ASSERT_EQ(served.size(), ref.size());
    for (std::size_t w = 0; w < ref.size(); ++w)
        EXPECT_TRUE(served[w] == ref[w]) << "world " << w;
}

TEST(DebugServer, AnalyzeSpamShedsOnEvalBudget)
{
    fleet::Fleet fleet(tinyFleet());
    ServerConfig cfg;
    // The default firmware prices far more than 10 instructions per
    // analyze, so a single served request busts the poll budget.
    cfg.evalBudgetPerPoll = 10;
    DebugServer server(fleet, cfg);
    RpcClient rpc(server, "spammer");
    std::uint64_t attach =
        rpc.request("\"m\":\"attach\",\"world\":0");
    ASSERT_TRUE(awaitId(rpc, attach).has_value());
    for (int i = 0; i < 8; ++i)
        rpc.request("\"m\":\"analyze\"");
    for (unsigned e = 0; e < 20 && server.activeSessions() > 0;
         ++e) {
        server.runEpoch();
        rpc.pump();
        rpc.takeResponses();
        rpc.takeEvents();
    }
    EXPECT_EQ(server.activeSessions(), 0u);
    ASSERT_EQ(server.reports().size(), 1u);
    EXPECT_EQ(server.reports()[0].outcome, SessionOutcome::Shed);
    EXPECT_EQ(server.reports()[0].reason, "eval-budget");
}
