/**
 * @file
 * Snapshot/restore tests: container integrity, resume equivalence
 * (a restored run is bit-identical to the original continuing), and
 * per-peripheral round trips with transactions restored mid-flight.
 *
 * Restore protocol under test (target/wisp.hh): construct a fresh
 * Simulator with the same seed and a Wisp with the same config, flash
 * the same program, do NOT start(), then restoreState + flush().
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "apps/activity.hh"
#include "apps/linked_list.hh"
#include "edb/board.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/fault.hh"
#include "mcu/mmio_map.hh"
#include "rfid/channel.hh"
#include "sim/snapshot.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;
namespace m = edb::mcu::mmio;

namespace {

std::vector<std::uint8_t>
snapshotOf(const target::Wisp &wisp)
{
    sim::SnapshotWriter w;
    wisp.saveState(w);
    return w.finish();
}

bool
restoreInto(const std::vector<std::uint8_t> &image, sim::Simulator &s,
            target::Wisp &wisp)
{
    sim::SnapshotReader r;
    if (!r.load(image))
        return false;
    sim::EventRearmer rearmer(s);
    wisp.restoreState(r, rearmer);
    if (!r.ok())
        return false;
    rearmer.flush();
    return true;
}

/** Everything the resume-equivalence guarantee promises to match. */
struct Digest
{
    std::uint64_t instrs, cycles, reboots, boots, checkpoints,
        restores;
    std::uint32_t pc;
    mcu::McuState state;
    double volts;
    sim::Tick now;
};

Digest
digestOf(sim::Simulator &s, target::Wisp &wisp)
{
    Digest d;
    d.instrs = wisp.mcu().instrCount();
    d.cycles = wisp.mcu().cycleCount();
    d.reboots = wisp.mcu().rebootCount();
    d.boots = wisp.power().bootCount();
    d.checkpoints = wisp.mcu().checkpointCount();
    d.restores = wisp.mcu().restoreCount();
    d.pc = wisp.mcu().pc();
    d.state = wisp.state();
    d.volts = wisp.power().voltageNoAdvance();
    d.now = s.now();
    return d;
}

void
expectSameDigest(const Digest &a, const Digest &b)
{
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.reboots, b.reboots);
    EXPECT_EQ(a.boots, b.boots);
    EXPECT_EQ(a.checkpoints, b.checkpoints);
    EXPECT_EQ(a.restores, b.restores);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.state, b.state);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.volts, b.volts);
    EXPECT_EQ(a.now, b.now);
}

// ---------------------------------------------------------------
// Container integrity.
// ---------------------------------------------------------------

TEST(SnapshotContainer, RoundTripsTypedFields)
{
    sim::SnapshotWriter w;
    w.section("t");
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.tick(-42);
    w.boolean(true);
    w.f64(3.25);
    std::vector<std::uint8_t> payload{1, 2, 3};
    w.blob(payload.data(), payload.size());
    sim::SnapshotReader r;
    ASSERT_TRUE(r.load(w.finish()));
    EXPECT_TRUE(r.section("t"));
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.tick(), -42);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_EQ(r.blob(), payload);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapshotContainer, CorruptionIsDetected)
{
    sim::SnapshotWriter w;
    w.section("t");
    w.u32(1234);
    auto image = w.finish();
    auto corrupt = image;
    corrupt.back() ^= 0x01;
    sim::SnapshotReader r;
    EXPECT_FALSE(r.load(corrupt));
    EXPECT_FALSE(r.ok());
    auto truncated = image;
    truncated.resize(truncated.size() - 1);
    EXPECT_FALSE(r.load(truncated));
    auto bad_magic = image;
    bad_magic[0] = 'X';
    EXPECT_FALSE(r.load(bad_magic));
}

TEST(SnapshotContainer, SectionMismatchFailsSticky)
{
    sim::SnapshotWriter w;
    w.section("aaa");
    w.u32(7);
    sim::SnapshotReader r;
    ASSERT_TRUE(r.load(w.finish()));
    EXPECT_FALSE(r.section("bbb"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u32(), 0u); // total: reads after failure return 0
}

// ---------------------------------------------------------------
// Resume equivalence on a full intermittent run.
// ---------------------------------------------------------------

void
resumeEquivalence(const target::WispConfig &cfg, std::uint64_t seed)
{
    constexpr sim::Tick snapAt = 500 * sim::oneMs;
    constexpr sim::Tick endAt = 1500 * sim::oneMs;
    auto program = apps::buildLinkedListApp();

    sim::Simulator sim1(seed);
    energy::RfHarvester rf1(30.0, 1.0);
    target::Wisp wisp1(sim1, "wisp", &rf1, nullptr, cfg);
    wisp1.flash(program);
    wisp1.start();
    sim1.runUntil(snapAt);
    auto image = snapshotOf(wisp1);
    ASSERT_GT(wisp1.mcu().instrCount(), 0u);

    // The original continues to the end: the reference trajectory.
    sim1.runUntil(endAt);
    Digest ref = digestOf(sim1, wisp1);

    // A fresh world resumes from the snapshot.
    sim::Simulator sim2(seed);
    energy::RfHarvester rf2(30.0, 1.0);
    target::Wisp wisp2(sim2, "wisp", &rf2, nullptr, cfg);
    wisp2.flash(program);
    ASSERT_TRUE(restoreInto(image, sim2, wisp2));
    EXPECT_EQ(sim2.now(), snapAt);
    sim2.runUntil(endAt);
    expectSameDigest(digestOf(sim2, wisp2), ref);
}

TEST(SnapshotResume, BitIdenticalOnFastPath)
{
    resumeEquivalence(target::WispConfig{}, 11);
}

TEST(SnapshotResume, BitIdenticalOnReferencePath)
{
    target::WispConfig cfg;
    cfg.mcu.predecodeCache = false;
    cfg.mcu.flatDispatch = false;
    cfg.mcu.batchedDrain = false;
    cfg.mcu.batchedSlices = false;
    resumeEquivalence(cfg, 11);
}

TEST(SnapshotResume, BitIdenticalWithCheckpointing)
{
    target::WispConfig cfg;
    cfg.mcu.checkpointingEnabled = true;
    resumeEquivalence(cfg, 3);
}

TEST(SnapshotResume, FileRoundTrip)
{
    constexpr sim::Tick snapAt = 300 * sim::oneMs;
    constexpr sim::Tick endAt = 800 * sim::oneMs;
    auto program = apps::buildLinkedListApp();
    std::string path = ::testing::TempDir() + "edb_snapshot_test.snap";

    sim::Simulator sim1(5);
    energy::RfHarvester rf1(30.0, 1.0);
    target::Wisp wisp1(sim1, "wisp", &rf1);
    wisp1.flash(program);
    wisp1.start();
    sim1.runUntil(snapAt);
    sim::SnapshotWriter w;
    wisp1.saveState(w);
    ASSERT_TRUE(w.writeFile(path));
    sim1.runUntil(endAt);
    Digest ref = digestOf(sim1, wisp1);

    sim::Simulator sim2(5);
    energy::RfHarvester rf2(30.0, 1.0);
    target::Wisp wisp2(sim2, "wisp", &rf2);
    wisp2.flash(program);
    sim::SnapshotReader r;
    ASSERT_TRUE(r.loadFile(path));
    sim::EventRearmer rearmer(sim2);
    wisp2.restoreState(r, rearmer);
    ASSERT_TRUE(r.ok());
    rearmer.flush();
    sim2.runUntil(endAt);
    expectSameDigest(digestOf(sim2, wisp2), ref);
    std::remove(path.c_str());
}

TEST(SnapshotResume, InPlaceRewindIsDeterministic)
{
    constexpr sim::Tick snapAt = 400 * sim::oneMs;
    constexpr sim::Tick endAt = 900 * sim::oneMs;
    sim::Simulator simulator(9);
    energy::RfHarvester rf(30.0, 1.0);
    target::Wisp wisp(simulator, "wisp", &rf);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    simulator.runUntil(snapAt);
    auto image = snapshotOf(wisp);
    simulator.runUntil(endAt);
    Digest first = digestOf(simulator, wisp);

    // Rewind the same world and replay: identical trajectory.
    ASSERT_TRUE(restoreInto(image, simulator, wisp));
    EXPECT_EQ(simulator.now(), snapAt);
    simulator.runUntil(endAt);
    expectSameDigest(digestOf(simulator, wisp), first);
}

TEST(SnapshotResume, RestoredRunCanBeResnapshotted)
{
    // Chained snapshots: snapshot a restored run and resume again.
    constexpr sim::Tick t1 = 300 * sim::oneMs;
    constexpr sim::Tick t2 = 600 * sim::oneMs;
    constexpr sim::Tick t3 = 900 * sim::oneMs;
    auto program = apps::buildLinkedListApp();

    sim::Simulator sim1(13);
    energy::RfHarvester rf1(30.0, 1.0);
    target::Wisp wisp1(sim1, "wisp", &rf1);
    wisp1.flash(program);
    wisp1.start();
    sim1.runUntil(t1);
    auto image1 = snapshotOf(wisp1);
    sim1.runUntil(t3);
    Digest ref = digestOf(sim1, wisp1);

    sim::Simulator sim2(13);
    energy::RfHarvester rf2(30.0, 1.0);
    target::Wisp wisp2(sim2, "wisp", &rf2);
    wisp2.flash(program);
    ASSERT_TRUE(restoreInto(image1, sim2, wisp2));
    sim2.runUntil(t2);
    auto image2 = snapshotOf(wisp2);

    sim::Simulator sim3(13);
    energy::RfHarvester rf3(30.0, 1.0);
    target::Wisp wisp3(sim3, "wisp", &rf3);
    wisp3.flash(program);
    ASSERT_TRUE(restoreInto(image2, sim3, wisp3));
    sim3.runUntil(t3);
    expectSameDigest(digestOf(sim3, wisp3), ref);
}

TEST(SnapshotResume, ActivityAppWithSensorRng)
{
    // The accelerometer draws the shared simulator RNG: equivalence
    // here proves the full engine state (mid-block) survives.
    constexpr sim::Tick snapAt = 700 * sim::oneMs;
    constexpr sim::Tick endAt = 2 * sim::oneSec;
    auto program = apps::buildActivityApp();

    sim::Simulator sim1(21);
    energy::RfHarvester rf1(30.0, 1.0);
    target::Wisp wisp1(sim1, "wisp", &rf1);
    wisp1.flash(program);
    wisp1.start();
    sim1.runUntil(snapAt);
    auto image = snapshotOf(wisp1);
    sim1.runUntil(endAt);
    Digest ref = digestOf(sim1, wisp1);
    std::uint64_t refSamples = wisp1.accelerometer().sampleCount();
    std::uint64_t refMoving = wisp1.accelerometer().movingSamples();

    sim::Simulator sim2(21);
    energy::RfHarvester rf2(30.0, 1.0);
    target::Wisp wisp2(sim2, "wisp", &rf2);
    wisp2.flash(program);
    ASSERT_TRUE(restoreInto(image, sim2, wisp2));
    sim2.runUntil(endAt);
    expectSameDigest(digestOf(sim2, wisp2), ref);
    EXPECT_EQ(wisp2.accelerometer().sampleCount(), refSamples);
    EXPECT_EQ(wisp2.accelerometer().movingSamples(), refMoving);
}

// ---------------------------------------------------------------
// Peripherals restored mid-transaction (bench-supply rig: direct
// MMIO pokes, as the peripheral unit tests do).
// ---------------------------------------------------------------

struct Rig
{
    sim::Simulator sim;
    energy::TheveninHarvester supply{3.0, 50.0};
    target::Wisp wisp;

    explicit Rig(std::uint64_t seed = 29)
        : sim(seed), wisp(sim, "wisp", &supply, nullptr)
    {
    }

    void
    poke(std::uint32_t addr, std::uint32_t value)
    {
        wisp.memoryMap().write32(addr, value);
    }

    std::uint32_t
    peek(std::uint32_t addr)
    {
        std::uint32_t v = 0;
        wisp.memoryMap().read32(addr, v);
        return v;
    }
};

TEST(SnapshotPeripheral, UartByteRestoredMidShift)
{
    Rig a;
    a.poke(m::uart0Tx, 0x5A);
    ASSERT_TRUE(a.wisp.uart().txBusy());
    // Let part of the byte shift out, then snapshot mid-wire.
    a.sim.runFor(a.wisp.uart().byteTime() / 2);
    ASSERT_TRUE(a.wisp.uart().txBusy());
    auto image = snapshotOf(a.wisp);

    std::vector<std::pair<std::uint8_t, sim::Tick>> gotA, gotB;
    a.wisp.uart().addTxListener(
        [&gotA](std::uint8_t b, sim::Tick t) {
            gotA.emplace_back(b, t);
        });
    a.sim.runFor(10 * a.wisp.uart().byteTime());
    ASSERT_EQ(gotA.size(), 1u);
    EXPECT_EQ(gotA[0].first, 0x5A);
    EXPECT_FALSE(a.wisp.uart().txBusy());

    Rig b;
    ASSERT_TRUE(restoreInto(image, b.sim, b.wisp));
    EXPECT_TRUE(b.wisp.uart().txBusy());
    b.wisp.uart().addTxListener(
        [&gotB](std::uint8_t b_, sim::Tick t) {
            gotB.emplace_back(b_, t);
        });
    b.sim.runFor(10 * b.wisp.uart().byteTime());
    // The interrupted byte completes at the identical tick.
    ASSERT_EQ(gotB.size(), 1u);
    EXPECT_EQ(gotB[0], gotA[0]);
    EXPECT_FALSE(b.wisp.uart().txBusy());
}

TEST(SnapshotPeripheral, I2cAccelReadRestoredMidTransaction)
{
    Rig a;
    auto accel_addr =
        static_cast<std::uint32_t>(a.wisp.accelerometer().address());
    a.poke(m::i2cAddr, accel_addr);
    a.poke(m::i2cReg, 0x00); // WHO_AM_I-style register
    a.poke(m::i2cCtrl, 1);   // read
    ASSERT_TRUE(a.wisp.i2c().busy());
    a.sim.runFor(a.wisp.i2c().transactionTime() / 2);
    ASSERT_TRUE(a.wisp.i2c().busy());
    auto image = snapshotOf(a.wisp);

    a.sim.runFor(2 * a.wisp.i2c().transactionTime());
    ASSERT_FALSE(a.wisp.i2c().busy());
    std::uint32_t statusA = a.peek(m::i2cStatus);
    std::uint32_t dataA = a.peek(m::i2cData);

    Rig b;
    ASSERT_TRUE(restoreInto(image, b.sim, b.wisp));
    EXPECT_TRUE(b.wisp.i2c().busy());
    b.sim.runFor(2 * b.wisp.i2c().transactionTime());
    ASSERT_FALSE(b.wisp.i2c().busy());
    EXPECT_EQ(b.peek(m::i2cStatus), statusA);
    EXPECT_EQ(b.peek(m::i2cData), dataA);
    EXPECT_EQ(b.sim.now(), a.sim.now());
}

TEST(SnapshotPeripheral, AdcConversionRestoredMidFlight)
{
    Rig a;
    a.poke(m::adcCtrl, 0); // channel 0: Vcap
    ASSERT_TRUE((a.peek(m::adcStatus) & 1u) != 0);
    auto image = snapshotOf(a.wisp);

    a.sim.runFor(sim::oneMs);
    ASSERT_TRUE((a.peek(m::adcStatus) & 2u) != 0);
    std::uint32_t valueA = a.peek(m::adcValue);

    Rig b;
    ASSERT_TRUE(restoreInto(image, b.sim, b.wisp));
    EXPECT_TRUE((b.peek(m::adcStatus) & 1u) != 0);
    b.sim.runFor(sim::oneMs);
    ASSERT_TRUE((b.peek(m::adcStatus) & 2u) != 0);
    EXPECT_EQ(b.peek(m::adcValue), valueA);
}

TEST(SnapshotPeripheral, GpioAndLedSurviveRoundTrip)
{
    Rig a;
    a.poke(m::gpioOut, 0b1011);
    a.poke(m::led, 1);
    a.poke(m::led, 0);
    a.poke(m::led, 1);
    auto image = snapshotOf(a.wisp);

    Rig b;
    ASSERT_TRUE(restoreInto(image, b.sim, b.wisp));
    EXPECT_EQ(b.wisp.gpio().output(), 0b1011u);
    EXPECT_EQ(b.peek(m::gpioOut), 0b1011u);
    EXPECT_TRUE(b.wisp.led().lit());
    EXPECT_EQ(b.wisp.led().blinkCount(),
              a.wisp.led().blinkCount());
}

TEST(SnapshotPeripheral, RfFrameRestoredMidAir)
{
    sim::Simulator simA(31);
    energy::TheveninHarvester supplyA{3.0, 50.0};
    rfid::RfChannel chanA(simA, "air");
    target::Wisp wispA(simA, "wisp", &supplyA, &chanA);

    auto poke = [](target::Wisp &w, std::uint32_t addr,
                   std::uint32_t v) { w.memoryMap().write32(addr, v); };
    poke(wispA, m::rfTxByte, 0x11);
    poke(wispA, m::rfTxByte, 0x22);
    poke(wispA, m::rfTxCtrl, 1);
    ASSERT_TRUE(wispA.rf()->txBusy());
    simA.runFor(sim::oneUs);
    ASSERT_TRUE(wispA.rf()->txBusy());
    auto image = snapshotOf(wispA);

    simA.runFor(10 * sim::oneMs);
    ASSERT_FALSE(wispA.rf()->txBusy());
    std::uint64_t txA = wispA.rf()->framesTransmitted();

    sim::Simulator simB(31);
    energy::TheveninHarvester supplyB{3.0, 50.0};
    rfid::RfChannel chanB(simB, "air");
    target::Wisp wispB(simB, "wisp", &supplyB, &chanB);
    ASSERT_TRUE(restoreInto(image, simB, wispB));
    EXPECT_TRUE(wispB.rf()->txBusy());
    simB.runFor(10 * sim::oneMs);
    EXPECT_FALSE(wispB.rf()->txBusy());
    EXPECT_EQ(wispB.rf()->framesTransmitted(), txA);
    EXPECT_EQ(simB.now(), simA.now());
}

TEST(SnapshotPeripheral, RfPresenceMismatchIsRejected)
{
    sim::Simulator simA(31);
    energy::TheveninHarvester supplyA{3.0, 50.0};
    rfid::RfChannel chanA(simA, "air");
    target::Wisp wispA(simA, "wisp", &supplyA, &chanA);
    auto image = snapshotOf(wispA);

    // Restoring onto a build without the RF front end must fail
    // loudly, not half-restore.
    Rig b;
    EXPECT_FALSE(restoreInto(image, b.sim, b.wisp));
}

TEST(SnapshotPeripheral, MidTransactionUnderRealProgram)
{
    // The activity firmware polls the accelerometer over I2C; catch
    // a transaction in flight and prove the restored world finishes
    // it identically.
    auto program = apps::buildActivityApp();
    sim::Simulator sim1(37);
    energy::RfHarvester rf1(30.0, 1.0);
    target::Wisp wisp1(sim1, "wisp", &rf1);
    wisp1.flash(program);
    wisp1.start();

    sim::Tick limit = 5 * sim::oneSec;
    while (!wisp1.i2c().busy() && sim1.now() < limit)
        sim1.runFor(5 * sim::oneUs);
    ASSERT_TRUE(wisp1.i2c().busy())
        << "activity app never touched the accelerometer";
    auto image = snapshotOf(wisp1);
    sim::Tick endAt = sim1.now() + 500 * sim::oneMs;
    sim1.runUntil(endAt);
    Digest ref = digestOf(sim1, wisp1);

    sim::Simulator sim2(37);
    energy::RfHarvester rf2(30.0, 1.0);
    target::Wisp wisp2(sim2, "wisp", &rf2);
    wisp2.flash(program);
    ASSERT_TRUE(restoreInto(image, sim2, wisp2));
    EXPECT_TRUE(wisp2.i2c().busy());
    sim2.runUntil(endAt);
    expectSameDigest(digestOf(sim2, wisp2), ref);
}

// ---------------------------------------------------------------------
// EDB board: supervision state travels with the world

namespace {

/** Target + EDB with tweaked (non-default) supervision budgets. */
struct BoardRig
{
    sim::Simulator sim{55};
    energy::TheveninHarvester supply{3.0, 200.0};
    target::Wisp wisp;
    edbdbg::EdbBoard board;

    explicit BoardRig(const edbdbg::EdbConfig &cfg)
        : wisp(sim, "wisp", &supply, nullptr),
          board(sim, "edb", wisp, nullptr, cfg)
    {
        wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r0, 0x5000
    la   r1, 0xCAFE
    stw  r1, [r0]
    li   r1, 7
    call edb_assert_fail
    halt
)" + runtime::libedbSource()));
        wisp.start();
    }
};

edbdbg::EdbConfig
tweakedConfig()
{
    edbdbg::EdbConfig cfg;
    cfg.readRetryMax = 7; // non-default: must survive the round trip
    cfg.linkProbeMax = 3;
    cfg.linkProbeTimeout = 15 * sim::oneMs;
    return cfg;
}

void
saveBoardWorld(const BoardRig &rig, sim::SnapshotWriter &w)
{
    rig.wisp.saveState(w);
    rig.board.saveState(w);
}

bool
restoreBoardWorld(const std::vector<std::uint8_t> &image,
                  BoardRig &rig)
{
    sim::SnapshotReader r;
    if (!r.load(image))
        return false;
    sim::EventRearmer rearmer(rig.sim);
    rig.wisp.restoreState(r, rearmer);
    rig.board.restoreState(r, rearmer);
    if (!r.ok())
        return false;
    rearmer.flush();
    return true;
}

} // namespace

TEST(SnapshotEdbBoard, SupervisionCountersSurviveRoundTrip)
{
    BoardRig a(tweakedConfig());
    ASSERT_TRUE(a.board.waitForSession(sim::oneSec));
    ASSERT_EQ(a.board.session()->read32(0x5000).value_or(0),
              0xCAFEu);
    // Exercise the retry machinery so the counters are non-trivial:
    // a dead link burns the whole (tweaked) retry budget.
    sim::FaultPlan dead;
    dead.uartDropProb = 1.0;
    sim::FaultInjector inj(a.sim, "inj", dead);
    a.board.injectFaults(&inj);
    EXPECT_FALSE(
        a.board.session()->read32(0x5000, 100 * sim::oneMs)
            .has_value());
    a.board.injectFaults(nullptr);
    ASSERT_GE(a.board.linkStats().readRetries, 1u);

    sim::SnapshotWriter w;
    saveBoardWorld(a, w);
    std::vector<std::uint8_t> image = w.finish();

    // Fresh rig, same config, never started a session of its own.
    BoardRig b(tweakedConfig());
    ASSERT_TRUE(restoreBoardWorld(image, b));

    // Mid-episode restores must not silently reset supervision
    // state: every link-health counter travels.
    const edbdbg::LinkStats &sa = a.board.linkStats();
    const edbdbg::LinkStats &sb = b.board.linkStats();
    EXPECT_EQ(sb.probes, sa.probes);
    EXPECT_EQ(sb.ackRetransmits, sa.ackRetransmits);
    EXPECT_EQ(sb.readRetries, sa.readRetries);
    EXPECT_EQ(sb.writeRetries, sa.writeRetries);
    EXPECT_EQ(sb.resumeRetries, sa.resumeRetries);
    EXPECT_EQ(sb.degradedEpisodes, sa.degradedEpisodes);
    EXPECT_EQ(sb.abortedEpisodes, sa.abortedEpisodes);
    EXPECT_EQ(b.board.lastAbortReason(), a.board.lastAbortReason());
    EXPECT_EQ(b.board.lastSavedVolts(), a.board.lastSavedVolts());
    EXPECT_EQ(b.board.lastRestoredVolts(),
              a.board.lastRestoredVolts());
    EXPECT_EQ(b.board.protocolEngine().stats().framesOk,
              a.board.protocolEngine().stats().framesOk);
    EXPECT_EQ(b.board.protocolEngine().stats().crcErrors,
              a.board.protocolEngine().stats().crcErrors);

    // The restored board is alive, not wedged: its watchdog notices
    // the in-flight session did not travel and recovers the episode
    // (bounded), rather than hanging forever.
    b.board.pumpFor(500 * sim::oneMs);
    EXPECT_GE(b.board.linkStats().abortedEpisodes +
                  b.board.linkStats().degradedEpisodes,
              sa.abortedEpisodes + sa.degradedEpisodes);
}

TEST(SnapshotEdbBoard, SupervisionConfigMismatchIsRejected)
{
    BoardRig a(tweakedConfig());
    ASSERT_TRUE(a.board.waitForSession(sim::oneSec));
    sim::SnapshotWriter w;
    saveBoardWorld(a, w);
    std::vector<std::uint8_t> image = w.finish();

    // A different retry budget is a different supervision contract:
    // restoring onto it must fail loudly, not adopt the old counters
    // under new rules.
    edbdbg::EdbConfig other = tweakedConfig();
    other.readRetryMax = 2;
    BoardRig b(other);
    EXPECT_FALSE(restoreBoardWorld(image, b));

    // Same config restores fine.
    BoardRig c(tweakedConfig());
    EXPECT_TRUE(restoreBoardWorld(image, c));
}

} // namespace
