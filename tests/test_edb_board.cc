/**
 * @file
 * Unit tests for the EDB board's building blocks: connections, ADC,
 * charge circuit, protocol engine, passive monitors, breakpoints.
 */

#include <gtest/gtest.h>

#include "apps/activity.hh"
#include "baseline/source_meter.hh"
#include "edb/board.hh"
#include "edb/charge_circuit.hh"
#include "edb/connection.hh"
#include "edb/edb_adc.hh"
#include "edb/protocol.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "runtime/protocol_defs.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;
using namespace edb::edbdbg;
namespace proto = edb::runtime::proto;

namespace {

TEST(Connections, FullHarnessHasTwelveWires)
{
    sim::Rng rng(1);
    ConnectionSet pins(rng);
    EXPECT_EQ(pins.all().size(), 12u); // one per Fig 5 wire
    EXPECT_NE(pins.find("UART TX"), nullptr);
    EXPECT_NE(pins.find("Capacitor sense, manipulate"), nullptr);
    EXPECT_EQ(pins.find("Bogus"), nullptr);
}

TEST(Connections, WorstCaseTotalIsSubMicroamp)
{
    sim::Rng rng(2);
    ConnectionSet pins(rng);
    double worst = pins.worstCaseTotal(2.4);
    EXPECT_GT(worst, 100e-9);
    EXPECT_LT(worst, 1.2e-6); // paper: 836.51 nA, "0.2%"
    // Against the 0.5 mA active current: well under 1%.
    EXPECT_LT(worst / 0.5e-3, 0.01);
}

TEST(Connections, DigitalLinesLeakMoreWhenDrivenHigh)
{
    sim::Rng rng(3);
    ConnectionSet pins(rng);
    auto *uart_tx = pins.find("UART TX");
    ASSERT_NE(uart_tx, nullptr);
    double high = uart_tx->current(LineState::High, 2.4);
    double low = uart_tx->current(LineState::Low, 0.0);
    EXPECT_GT(high, 20e-9); // tens of nA into the buffer
    EXPECT_LT(low, 0.0);    // small back-flow
    EXPECT_GT(high, std::abs(low));
}

TEST(Connections, IdleDrainTracksLineStates)
{
    sim::Rng rng(4);
    ConnectionSet pins(rng);
    double idle = pins.totalDrain(2.4);
    auto *marker = pins.find("Code marker 0");
    marker->setState(LineState::High);
    double with_marker_high = pins.totalDrain(2.4);
    EXPECT_GT(with_marker_high, idle + 20e-9);
}

TEST(SourceMeter, MeasurementTracksModelWithNoise)
{
    sim::Rng rng(5);
    ConnectionSet pins(rng);
    baseline::SourceMeter meter(rng);
    auto *line = pins.find("RF RX");
    auto samples =
        meter.measureMany(*line, LineState::High, 2.4, 200);
    double truth = line->current(LineState::High, 2.4);
    EXPECT_NEAR(samples.summary().mean(), truth,
                std::abs(truth) * 0.1);
    EXPECT_GT(samples.summary().stddev(), 0.0);
}

TEST(EdbAdc, LsbIsAboutOneMillivolt)
{
    sim::Rng rng(6);
    EdbAdc adc(rng);
    EXPECT_NEAR(adc.lsbVolts(), 1e-3, 0.01e-3);
    EXPECT_EQ(adc.codeFor(0.0), 0u);
    EXPECT_EQ(adc.codeFor(10.0), 4095u);
    EXPECT_NEAR(adc.voltsFor(adc.codeFor(2.4)), 2.4, 2e-3);
}

TEST(EdbAdc, NoiseStatistics)
{
    sim::Rng rng(7);
    EdbAdcConfig config;
    config.noiseSigmaVolts = 5e-3;
    EdbAdc adc(rng, config);
    trace::SampleSet readings;
    for (int i = 0; i < 2000; ++i)
        readings.add(adc.sampleVolts(2.0));
    EXPECT_NEAR(readings.summary().mean(), 2.0, 1e-3);
    EXPECT_NEAR(readings.summary().stddev(), 5e-3, 1.5e-3);
}

struct ChargeRig
{
    sim::Simulator sim{81};
    energy::TheveninHarvester weak{3.0, 4000.0};
    energy::PowerSystemConfig power_config;
    std::unique_ptr<energy::PowerSystem> power;
    EdbAdc adc{sim.rng()};
    std::unique_ptr<ChargeCircuit> circuit;

    explicit ChargeRig(double initial_volts)
    {
        power_config.initialVolts = initial_volts;
        power_config.harvestNoiseSigma = 0.0;
        power = std::make_unique<energy::PowerSystem>(
            sim, "power", power_config, &weak);
        circuit = std::make_unique<ChargeCircuit>(sim, "charge",
                                                  *power, adc);
        power->start();
    }
};

TEST(ChargeCircuit, ChargesUpToTarget)
{
    ChargeRig rig(1.0);
    bool done = false;
    double v_at_done = 0.0;
    rig.circuit->rampTo(2.4, 0.0, [&](RampResult) {
        done = true;
        v_at_done = rig.power->voltageNoAdvance();
    });
    rig.sim.runFor(sim::oneSec);
    EXPECT_TRUE(done);
    EXPECT_FALSE(rig.circuit->active());
    // Measured at completion: the weak ambient source keeps charging
    // afterwards, which is not the circuit's doing.
    EXPECT_NEAR(v_at_done, 2.4, 0.02);
}

TEST(ChargeCircuit, DischargesDownToTarget)
{
    ChargeRig rig(2.9);
    bool done = false;
    double v_at_done = 0.0;
    rig.circuit->rampTo(2.0, 0.0, [&](RampResult) {
        done = true;
        v_at_done = rig.power->voltageNoAdvance();
    });
    rig.sim.runFor(sim::oneSec);
    EXPECT_TRUE(done);
    EXPECT_NEAR(v_at_done, 2.0, 0.02);
}

TEST(ChargeCircuit, StopMarginLeavesPositiveBias)
{
    ChargeRig rig(2.9);
    bool done = false;
    double v_at_done = 0.0;
    rig.circuit->rampTo(2.0, 0.06, [&](RampResult) {
        done = true;
        v_at_done = rig.power->voltageNoAdvance();
    });
    rig.sim.runFor(sim::oneSec);
    ASSERT_TRUE(done);
    EXPECT_GT(v_at_done, 2.0);
    EXPECT_LT(v_at_done, 2.10);
}

TEST(ChargeCircuit, AlreadyAtTargetCompletesQuickly)
{
    ChargeRig rig(2.2);
    bool done = false;
    rig.circuit->rampTo(2.2, 0.05,
                        [&done](RampResult) { done = true; });
    // ADC noise may demand one or two control iterations.
    rig.sim.runFor(5 * sim::oneMs);
    EXPECT_TRUE(done);
}

TEST(ChargeCircuit, AbortCancelsWithoutCallback)
{
    ChargeRig rig(2.9);
    bool done = false;
    rig.circuit->rampTo(1.9, 0.0,
                        [&done](RampResult) { done = true; });
    rig.sim.runFor(2 * sim::oneMs);
    rig.circuit->abort();
    rig.sim.runFor(sim::oneSec);
    EXPECT_FALSE(done);
    EXPECT_FALSE(rig.circuit->active());
}

TEST(ChargeCircuit, InactiveCircuitIsHighImpedance)
{
    // Twin power systems, one with the (idle) circuit attached:
    // identical trajectories.
    ChargeRig with_circuit(2.0);
    sim::Simulator bare_sim{81};
    energy::TheveninHarvester weak(3.0, 4000.0);
    energy::PowerSystemConfig config;
    config.initialVolts = 2.0;
    config.harvestNoiseSigma = 0.0;
    energy::PowerSystem bare(bare_sim, "bare", config, &weak);
    bare.start();
    with_circuit.sim.runFor(100 * sim::oneMs);
    bare_sim.runFor(100 * sim::oneMs);
    EXPECT_NEAR(with_circuit.power->voltage(), bare.voltage(), 1e-6);
}

void
feedFrame(ProtocolEngine &engine,
          const std::vector<std::uint8_t> &payload)
{
    for (std::uint8_t b : buildFrame(payload))
        engine.onByte(b);
}

TEST(ProtocolEngine, ParsesAssertFrame)
{
    ProtocolEngine engine;
    std::uint16_t got = 0;
    engine.handlers.assertFail = [&got](std::uint16_t id) {
        got = id;
    };
    auto frame = buildFrame({proto::msgAssertFail, 0x34, 0x12});
    for (std::size_t i = 0; i + 1 < frame.size(); ++i)
        engine.onByte(frame[i]);
    EXPECT_TRUE(engine.midFrame());
    engine.onByte(frame.back()); // CRC completes the frame
    EXPECT_EQ(got, 0x1234u);
    EXPECT_FALSE(engine.midFrame());
    EXPECT_EQ(engine.stats().framesOk, 1u);
}

TEST(ProtocolEngine, ParsesGuardAndBkptFrames)
{
    ProtocolEngine engine;
    int begins = 0, ends = 0;
    std::uint16_t bkpt = 0;
    engine.handlers.guardBegin = [&begins] { ++begins; };
    engine.handlers.guardEnd = [&ends] { ++ends; };
    engine.handlers.bkptHit = [&bkpt](std::uint16_t id) {
        bkpt = id;
    };
    feedFrame(engine, {proto::msgGuardBegin});
    feedFrame(engine, {proto::msgGuardEnd});
    feedFrame(engine, {proto::msgBkptHit, 0xFF, 0xFF});
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(ends, 1);
    EXPECT_EQ(bkpt, proto::energyBkptId);
}

TEST(ProtocolEngine, ParsesPrintfWithArgs)
{
    ProtocolEngine engine;
    std::string text;
    engine.handlers.printfText = [&text](const std::string &s) {
        text = s;
    };
    std::vector<std::uint8_t> payload{proto::msgPrintf, 2};
    for (std::uint32_t arg : {42u, 0xFFFFFFF9u}) {
        for (int b = 0; b < 4; ++b)
            payload.push_back(
                static_cast<std::uint8_t>(arg >> (8 * b)));
    }
    for (char c : std::string("v=%u s=%d!"))
        payload.push_back(static_cast<std::uint8_t>(c));
    payload.push_back(0);
    feedFrame(engine, payload);
    EXPECT_EQ(text, "v=42 s=-7!");
}

TEST(ProtocolEngine, IgnoresStrayBytes)
{
    ProtocolEngine engine;
    int events = 0;
    engine.handlers.guardBegin = [&events] { ++events; };
    engine.onByte(0xEE);
    engine.onByte(0x00);
    feedFrame(engine, {proto::msgGuardBegin});
    EXPECT_EQ(events, 1);
    EXPECT_EQ(engine.stats().strayBytes, 2u);
}

TEST(ProtocolEngine, RejectsBadCrc)
{
    ProtocolEngine engine;
    int events = 0;
    engine.handlers.guardBegin = [&events] { ++events; };
    auto frame = buildFrame({proto::msgGuardBegin});
    frame.back() ^= 0x01; // corrupt the CRC
    for (std::uint8_t b : frame)
        engine.onByte(b);
    EXPECT_EQ(events, 0);
    EXPECT_EQ(engine.stats().crcErrors, 1u);
    feedFrame(engine, {proto::msgGuardBegin}); // parser recovered
    EXPECT_EQ(events, 1);
}

TEST(ProtocolEngine, DroppedByteCannotDestroyTheNextFrame)
{
    // A frame that loses one byte on the wire slides the NEXT
    // frame's SYNC into its CRC slot. The parser must recognise
    // that and resume at the following length byte, so one lost
    // byte costs exactly one frame.
    ProtocolEngine engine;
    int begins = 0;
    engine.handlers.guardBegin = [&begins] { ++begins; };
    auto damaged = buildFrame({proto::msgGuardEnd});
    damaged.erase(damaged.begin() + 2); // drop the payload byte
    for (std::uint8_t b : damaged)
        engine.onByte(b);
    feedFrame(engine, {proto::msgGuardBegin}); // back-to-back frame
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(engine.stats().crcErrors, 1u);
    EXPECT_EQ(engine.stats().resyncs, 1u);
}

TEST(ProtocolEngine, RepeatedSyncBytesPrecedeAFrame)
{
    ProtocolEngine engine;
    int begins = 0;
    engine.handlers.guardBegin = [&begins] { ++begins; };
    engine.onByte(proto::syncByte); // idle fill
    engine.onByte(proto::syncByte);
    feedFrame(engine, {proto::msgGuardBegin});
    EXPECT_EQ(begins, 1);
}

TEST(ProtocolEngine, ResetDropsPartialFrame)
{
    ProtocolEngine engine;
    std::uint16_t got = 99;
    int begins = 0;
    engine.handlers.assertFail = [&got](std::uint16_t id) {
        got = id;
    };
    engine.handlers.guardBegin = [&begins] { ++begins; };
    auto partial = buildFrame({proto::msgAssertFail, 0x01, 0x00});
    for (std::size_t i = 0; i < 3; ++i) // sync, len, one byte
        engine.onByte(partial[i]);
    EXPECT_TRUE(engine.midFrame());
    engine.reset();
    EXPECT_FALSE(engine.midFrame());
    feedFrame(engine, {proto::msgGuardBegin}); // parses cleanly
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(got, 99u);
}

TEST(ProtocolEngine, InterByteTimeoutResyncs)
{
    ProtocolEngine engine;
    engine.setInterByteTimeout(2 * sim::oneMs);
    std::uint16_t got = 0;
    engine.handlers.assertFail = [&got](std::uint16_t id) {
        got = id;
    };
    auto frame = buildFrame({proto::msgAssertFail, 0x34, 0x12});
    sim::Tick t = 0;
    // Deliver half the frame, stall past the timeout, then deliver
    // a fresh complete frame: the stale prefix must be discarded.
    for (std::size_t i = 0; i < 3; ++i)
        engine.onByte(frame[i], t += 10 * sim::oneUs);
    t += 10 * sim::oneMs; // link stall
    for (std::uint8_t b : frame)
        engine.onByte(b, t += 10 * sim::oneUs);
    EXPECT_EQ(got, 0x1234u);
    EXPECT_GE(engine.stats().resyncs, 1u);
}

struct FormatCase
{
    const char *fmt;
    std::vector<std::uint32_t> args;
    const char *expected;
};

class PrintfFormat : public ::testing::TestWithParam<FormatCase>
{};

TEST_P(PrintfFormat, Renders)
{
    const auto &c = GetParam();
    EXPECT_EQ(formatPrintf(c.fmt, c.args), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrintfFormat,
    ::testing::Values(
        FormatCase{"plain", {}, "plain"},
        FormatCase{"%d", {5}, "5"},
        FormatCase{"%d", {0xFFFFFFFF}, "-1"},
        FormatCase{"%u", {0xFFFFFFFF}, "4294967295"},
        FormatCase{"%x", {255}, "ff"},
        FormatCase{"%c%c", {'h', 'i'}, "hi"},
        FormatCase{"100%%", {}, "100%"},
        FormatCase{"%q", {7}, "%q"},        // unknown passes through
        FormatCase{"%d %d", {1}, "1 0"},    // missing arg reads 0
        FormatCase{"trail%", {}, "trail%"} // lone % at end
        ));

struct BoardRig
{
    sim::Simulator sim{91};
    energy::RfHarvester rf{30.0, 1.0};
    target::Wisp wisp;
    EdbBoard board;

    BoardRig() : wisp(sim, "wisp", &rf, nullptr),
                 board(sim, "edb", wisp)
    {}
};

TEST(EdbBoard, EnergyStreamGatedByTraceFlag)
{
    BoardRig rig;
    rig.wisp.start();
    rig.sim.runFor(50 * sim::oneMs);
    EXPECT_EQ(rig.board.traceBuffer().countOf(
                  trace::Kind::EnergySample),
              0u);
    ASSERT_TRUE(rig.board.setStream("energy", true));
    rig.sim.runFor(50 * sim::oneMs);
    EXPECT_NEAR(double(rig.board.traceBuffer().countOf(
                    trace::Kind::EnergySample)),
                50.0, 10.0);
    EXPECT_FALSE(rig.board.setStream("nonsense", true));
}

TEST(EdbBoard, PassiveLeakageBarelyAffectsChargeTime)
{
    // Charge to turn-on with and without EDB attached; the paper's
    // claim is that passive monitoring is energy-interference-free.
    auto charge_time = [](bool attach_edb) {
        sim::Simulator simulator(92);
        energy::RfHarvester rf(30.0, 1.0);
        target::Wisp wisp(simulator, "wisp", &rf, nullptr);
        std::unique_ptr<EdbBoard> board;
        if (attach_edb)
            board = std::make_unique<EdbBoard>(simulator, "edb",
                                               wisp);
        wisp.flash(isa::assemble(
            ".org 0x4000\nmain:\n    halt\n"));
        wisp.start();
        while (wisp.power().bootCount() == 0 &&
               simulator.now() < 5 * sim::oneSec) {
            simulator.runFor(sim::oneMs);
        }
        return simulator.now();
    };
    double bare = sim::millisFromTicks(charge_time(false));
    double attached = sim::millisFromTicks(charge_time(true));
    EXPECT_NEAR(attached, bare, bare * 0.01 + 2.0);
}

TEST(EdbBoard, WatchpointFilterSelectsIds)
{
    BoardRig rig;
    EXPECT_TRUE(rig.board.watchpointEnabled(3)); // default: all
    rig.board.disableWatchpoint(3);
    EXPECT_FALSE(rig.board.watchpointEnabled(3));
    EXPECT_TRUE(rig.board.watchpointEnabled(4));
    rig.board.enableWatchpoint(3);
    EXPECT_TRUE(rig.board.watchpointEnabled(3));
}

TEST(EdbBoard, CombinedBreakpointSkipsWhenEnergyHigh)
{
    sim::Simulator simulator(93);
    energy::TheveninHarvester supply(3.0, 200.0);
    target::Wisp wisp(simulator, "wisp", &supply, nullptr);
    EdbBoard board(simulator, "edb", wisp);
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    la   r5, 0x5000
    li   r6, 0
loop:
    addi r6, r6, 1
    stw  r6, [r5]
    li   r1, 2
    call edb_breakpoint
    br   loop
)" + runtime::libedbSource()));
    // Combined breakpoint: only below 1.9 V -- the bench supply
    // keeps Vcap near 3.0 V, so it must keep auto-resuming.
    board.enableCodeBreakpoint(2, 1.9);
    wisp.start();
    EXPECT_FALSE(board.waitForSession(300 * sim::oneMs));
    EXPECT_GT(wisp.mcu().debugRead32(0x5000), 2u);
    EXPECT_EQ(board.breakpointCount(), 0u);
}

TEST(EdbBoard, BreakInFailsWhenTargetOff)
{
    BoardRig rig;
    // Never started: target is off.
    EXPECT_FALSE(rig.board.breakIn(10 * sim::oneMs));
}

TEST(EdbBoard, PowerEventsAlwaysTraced)
{
    BoardRig rig;
    rig.wisp.flash(isa::assemble(".org 0x4000\nmain:\n    br main\n"));
    rig.wisp.start();
    rig.sim.runFor(2 * sim::oneSec);
    auto events =
        rig.board.traceBuffer().ofKind(trace::Kind::PowerEvent);
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[0].text, "turn-on");
    // Voltage recorded at the transition.
    EXPECT_NEAR(events[0].a, 2.4, 0.05);
}

} // namespace
