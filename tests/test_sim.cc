/**
 * @file
 * Unit tests for the simulation kernel: event queue, simulator,
 * RNG, time helpers, time cursor, logging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/replay.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "sim/time.hh"
#include "sim/time_cursor.hh"

using namespace edb::sim;

namespace {

TEST(Time, UnitConversions)
{
    EXPECT_EQ(oneSec, 1'000'000'000'000);
    EXPECT_EQ(ticksFromSeconds(1.0), oneSec);
    EXPECT_EQ(ticksFromSeconds(0.5e-6), oneUs / 2);
    EXPECT_DOUBLE_EQ(secondsFromTicks(oneSec), 1.0);
    EXPECT_DOUBLE_EQ(millisFromTicks(oneMs), 1.0);
    EXPECT_DOUBLE_EQ(microsFromTicks(oneUs), 1.0);
}

TEST(Time, McuCycleIsIntegral)
{
    // 4 MHz must map to an exact tick count (see time.hh rationale).
    EXPECT_EQ(ticksFromSeconds(1.0 / 4e6), 250 * oneNs);
}

TEST(EventQueue, FiresInTimestampOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    Tick now = 0;
    while (queue.runOne(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(42, [&order, i] { order.push_back(i); });
    Tick now = 0;
    while (queue.runOne(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue queue;
    bool fired = false;
    EventId id = queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_TRUE(queue.empty());
    Tick now = 0;
    EXPECT_FALSE(queue.runOne(now));
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue queue;
    EventId id = queue.schedule(10, [] {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(invalidEventId));
}

TEST(EventQueue, NextTimeSkipsCancelled)
{
    EventQueue queue;
    EventId early = queue.schedule(10, [] {});
    queue.schedule(20, [] {});
    queue.cancel(early);
    EXPECT_EQ(queue.nextTime(), 20);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, NextTimeEmptyIsMax)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextTime(), maxTick);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(10, [&] {
        order.push_back(1);
        queue.schedule(15, [&] { order.push_back(2); });
    });
    Tick now = 0;
    while (queue.runOne(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(now, 15);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(100, [&] { ++fired; });
    sim.schedule(200, [&] { ++fired; });
    sim.runUntil(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 150);
    sim.runUntil(200); // boundary events fire
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative)
{
    Simulator sim;
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 50);
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, ScheduleInPastClampsToNow)
{
    Simulator sim;
    sim.runFor(100);
    bool fired = false;
    sim.schedule(10, [&] { fired = true; });
    sim.runFor(1);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 101);
}

TEST(Simulator, StopEndsRunEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(20, [&] { ++fired; });
    sim.runUntil(100);
    EXPECT_EQ(fired, 1);
    sim.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, TimeIsMonotonic)
{
    Simulator sim;
    Tick last = -1;
    for (int i = 0; i < 50; ++i) {
        sim.scheduleIn(i * 7 % 13, [&sim, &last] {
            EXPECT_GE(sim.now(), last);
            last = sim.now();
        });
    }
    sim.runToCompletion();
}

TEST(Simulator, ComponentsRegister)
{
    Simulator sim;
    Component a(sim, "a");
    Component b(sim, "b");
    ASSERT_EQ(sim.components().size(), 2u);
    EXPECT_EQ(sim.components()[0]->name(), "a");
    EXPECT_EQ(&a.sim(), &sim);
    EXPECT_EQ(b.now(), 0);
}

TEST(Rng, DeterministicBySeed)
{
    Rng a(7), b(7), c(8);
    double va = a.uniform();
    EXPECT_DOUBLE_EQ(va, b.uniform());
    EXPECT_NE(va, c.uniform());
}

TEST(Rng, UniformBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(2);
    double sum = 0, sum2 = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(2.0);
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.1);
    EXPECT_NEAR(sum2 / n, 4.0, 0.3);
}

TEST(Rng, GaussianZeroSigmaIsZero)
{
    Rng rng(3);
    EXPECT_EQ(rng.gaussian(0.0), 0.0);
    EXPECT_EQ(rng.gaussian(-1.0), 0.0);
}

TEST(Rng, EngineMatchesStdMt19937_64WordForWord)
{
    // The standard pins mersenne_twister_engine's output exactly;
    // the bulk-tempering engine must reproduce it across several
    // twist boundaries and for diverse seeds.
    for (std::uint64_t seed : {1ULL, 7ULL, 5489ULL, 0xDEADBEEFULL}) {
        Mt64 ours(seed);
        std::mt19937_64 ref(seed);
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(ours(), ref()) << "seed " << seed << " draw " << i;
    }
}

TEST(Rng, CanonicalMatchesStdGenerateCanonical)
{
    Rng rng(11);
    std::mt19937_64 ref(11);
    for (int i = 0; i < 100000; ++i) {
        double expect = std::generate_canonical<double, 53>(ref);
        EXPECT_EQ(rng.canonical(), expect) << "draw " << i;
    }
}

TEST(Rng, GaussianMatchesStdNormalDistributionExactly)
{
    // The hand-inlined polar method must reproduce the library
    // stream bit for bit (a fresh distribution per draw, as
    // gaussian() has always behaved) — the whole point of the fast
    // path is that seeded runs keep their historical trajectories.
    Rng rng(42);
    std::mt19937_64 ref(42);
    for (int i = 0; i < 100000; ++i) {
        double expect = std::normal_distribution<double>(0.0, 0.05)(ref);
        EXPECT_EQ(rng.gaussian(0.05), expect) << "draw " << i;
    }
}

TEST(Rng, ChanceEdges)
{
    Rng rng(4);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(TimeCursor, TracksMaxOfClocks)
{
    Simulator sim;
    TimeCursor cursor(sim);
    EXPECT_EQ(cursor.now(), 0);
    cursor.advance(500);
    EXPECT_EQ(cursor.now(), 500);
    cursor.advance(100); // lower values ignored
    EXPECT_EQ(cursor.now(), 500);
    sim.runFor(1000);
    EXPECT_EQ(cursor.now(), 1000);
}

TEST(TimeCursor, ScheduleInUsesLocalClock)
{
    Simulator sim;
    TimeCursor cursor(sim);
    cursor.advance(300);
    bool fired = false;
    Tick when = 0;
    cursor.scheduleIn(100, [&] {
        fired = true;
        when = sim.now();
    });
    sim.runToCompletion();
    EXPECT_TRUE(fired);
    EXPECT_EQ(when, 400);
}

TEST(Rng, ExportImportResumesStreamExactly)
{
    Rng a(123);
    // Land mid-block: 1000 draws = 3 refills + 64 into the buffer.
    for (int i = 0; i < 1000; ++i)
        a.raw()();
    Mt64::State saved = a.exportState();

    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 700; ++i) // crosses the next refill boundary
        expect.push_back(a.raw()());

    Rng b(1); // different seed: import must fully overwrite
    b.importState(saved);
    for (std::uint64_t v : expect)
        EXPECT_EQ(b.raw()(), v);
}

TEST(Rng, ExportCapturesMidBlockIndex)
{
    Rng a(7);
    for (int i = 0; i < 5; ++i)
        a.raw()();
    EXPECT_EQ(a.exportState().index, 5u);
}

TEST(Rng, ImportClampsCorruptIndex)
{
    Mt64::State s = Rng(9).exportState();
    s.index = 9999; // out of bounds: must clamp, not read past out[]
    Rng a(1), b(2);
    a.importState(s);
    b.importState(s);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.raw()(), b.raw()());
}

TEST(Rng, ExportImportCoversDistributionHelpers)
{
    Rng a(55);
    a.gaussian(1.0); // leave the engine at an arbitrary offset
    a.uniformInt(0, 99);
    Mt64::State saved = a.exportState();
    double u = a.uniform();
    double g = a.gaussian(2.5);
    std::int64_t n = a.uniformInt(-10, 10);

    Rng b(1);
    b.importState(saved);
    EXPECT_EQ(b.uniform(), u);
    EXPECT_EQ(b.gaussian(2.5), g);
    EXPECT_EQ(b.uniformInt(-10, 10), n);
}

TEST(ScheduleLog, RecordsAndTruncates)
{
    ScheduleLog log;
    log.record(10, 1, 0.5);
    log.record(20, 2);
    log.record(30, 1, 1.5);
    EXPECT_EQ(log.size(), 3u);
    log.truncateAfter(20);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.entries()[1].at, 20);
    log.clear();
    EXPECT_TRUE(log.empty());
}

TEST(ScheduleLog, SnapshotRoundTrip)
{
    ScheduleLog log;
    log.record(10, 1, 0.5);
    log.record(30, 7, -2.25);
    SnapshotWriter w;
    log.saveState(w);

    ScheduleLog back;
    back.record(99, 9); // must be replaced, not appended to
    SnapshotReader r;
    ASSERT_TRUE(r.load(w.finish()));
    back.restoreState(r);
    EXPECT_TRUE(r.ok());
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.entries()[0].at, 10);
    EXPECT_EQ(back.entries()[0].op, 1u);
    EXPECT_EQ(back.entries()[0].arg, 0.5);
    EXPECT_EQ(back.entries()[1].at, 30);
    EXPECT_EQ(back.entries()[1].op, 7u);
    EXPECT_EQ(back.entries()[1].arg, -2.25);
}

TEST(SchedulePlayer, ArmsOnlyTheSuffixPastFrom)
{
    Simulator sim(1);
    ScheduleLog log;
    log.record(10, 1, 0.1);
    log.record(20, 2, 0.2);
    log.record(30, 3, 0.3);

    SchedulePlayer player(sim);
    std::vector<std::uint32_t> applied;
    player.arm(log, 15, [&applied](const ScheduleEntry &e) {
        applied.push_back(e.op);
    });
    EXPECT_EQ(player.pending(), 2u);
    sim.runUntil(40);
    EXPECT_EQ(player.fired(), 2u);
    EXPECT_EQ(player.pending(), 0u);
    ASSERT_EQ(applied.size(), 2u);
    EXPECT_EQ(applied[0], 2u);
    EXPECT_EQ(applied[1], 3u);
}

TEST(SchedulePlayer, CancelAndRearmReplaceTheSchedule)
{
    Simulator sim(1);
    ScheduleLog log;
    log.record(10, 1);
    log.record(20, 2);

    SchedulePlayer player(sim);
    int applies = 0;
    player.arm(log, 0, [&applies](const ScheduleEntry &) {
        ++applies;
    });
    EXPECT_EQ(player.pending(), 2u);
    player.cancel();
    EXPECT_EQ(player.pending(), 0u);
    sim.runUntil(15);
    EXPECT_EQ(applies, 0);

    // Re-arm mid-run: only the not-yet-reached entry fires, once.
    player.arm(log, sim.now(), [&applies](const ScheduleEntry &) {
        ++applies;
    });
    EXPECT_EQ(player.pending(), 1u);
    sim.runUntil(40);
    EXPECT_EQ(applies, 1);
}

TEST(ProgressMonitor, TripsOnRebootsWithoutCommit)
{
    ProgressMonitor mon(3);
    EXPECT_FALSE(mon.update(0, 0)); // primes
    EXPECT_FALSE(mon.update(1, 0));
    EXPECT_FALSE(mon.update(2, 0));
    EXPECT_TRUE(mon.update(3, 0));
    EXPECT_TRUE(mon.tripped());
    EXPECT_EQ(mon.rebootsSinceCommit(), 3u);
}

TEST(ProgressMonitor, CommitResetsTheWindow)
{
    ProgressMonitor mon(3);
    mon.update(0, 0);
    mon.update(2, 0);
    EXPECT_FALSE(mon.update(2, 1)); // a commit lands
    EXPECT_EQ(mon.rebootsSinceCommit(), 0u);
    EXPECT_FALSE(mon.update(4, 1));
    EXPECT_TRUE(mon.update(5, 1));
}

TEST(ProgressMonitor, RebaseAfterRewind)
{
    ProgressMonitor mon(3);
    mon.update(5, 0);
    mon.update(7, 0);
    // Counters drop below the baseline (a snapshot rewind):
    // auto-rebase instead of a bogus huge delta.
    EXPECT_FALSE(mon.update(3, 0));
    EXPECT_EQ(mon.rebootsSinceCommit(), 0u);
    EXPECT_FALSE(mon.update(5, 0));
    EXPECT_TRUE(mon.update(6, 0));
}

TEST(ProgressMonitor, SnapshotKeepsThePartialWindow)
{
    ProgressMonitor mon(5);
    mon.update(0, 0);
    mon.update(3, 0); // 3 reboots into the window
    SnapshotWriter w;
    mon.saveState(w);

    ProgressMonitor back(1); // threshold restored from the image
    SnapshotReader r;
    ASSERT_TRUE(r.load(w.finish()));
    back.restoreState(r);
    EXPECT_EQ(back.threshold(), 5u);
    EXPECT_EQ(back.rebootsSinceCommit(), 3u);
    EXPECT_FALSE(back.update(4, 0));
    EXPECT_TRUE(back.update(5, 0));
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad ", 42), FatalError);
    try {
        fatal("value=", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

} // namespace
