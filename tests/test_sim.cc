/**
 * @file
 * Unit tests for the simulation kernel: event queue, simulator,
 * RNG, time helpers, time cursor, logging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"
#include "sim/time_cursor.hh"

using namespace edb::sim;

namespace {

TEST(Time, UnitConversions)
{
    EXPECT_EQ(oneSec, 1'000'000'000'000);
    EXPECT_EQ(ticksFromSeconds(1.0), oneSec);
    EXPECT_EQ(ticksFromSeconds(0.5e-6), oneUs / 2);
    EXPECT_DOUBLE_EQ(secondsFromTicks(oneSec), 1.0);
    EXPECT_DOUBLE_EQ(millisFromTicks(oneMs), 1.0);
    EXPECT_DOUBLE_EQ(microsFromTicks(oneUs), 1.0);
}

TEST(Time, McuCycleIsIntegral)
{
    // 4 MHz must map to an exact tick count (see time.hh rationale).
    EXPECT_EQ(ticksFromSeconds(1.0 / 4e6), 250 * oneNs);
}

TEST(EventQueue, FiresInTimestampOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    Tick now = 0;
    while (queue.runOne(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(42, [&order, i] { order.push_back(i); });
    Tick now = 0;
    while (queue.runOne(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue queue;
    bool fired = false;
    EventId id = queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_TRUE(queue.empty());
    Tick now = 0;
    EXPECT_FALSE(queue.runOne(now));
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue queue;
    EventId id = queue.schedule(10, [] {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(invalidEventId));
}

TEST(EventQueue, NextTimeSkipsCancelled)
{
    EventQueue queue;
    EventId early = queue.schedule(10, [] {});
    queue.schedule(20, [] {});
    queue.cancel(early);
    EXPECT_EQ(queue.nextTime(), 20);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, NextTimeEmptyIsMax)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextTime(), maxTick);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(10, [&] {
        order.push_back(1);
        queue.schedule(15, [&] { order.push_back(2); });
    });
    Tick now = 0;
    while (queue.runOne(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(now, 15);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(100, [&] { ++fired; });
    sim.schedule(200, [&] { ++fired; });
    sim.runUntil(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 150);
    sim.runUntil(200); // boundary events fire
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative)
{
    Simulator sim;
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 50);
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, ScheduleInPastClampsToNow)
{
    Simulator sim;
    sim.runFor(100);
    bool fired = false;
    sim.schedule(10, [&] { fired = true; });
    sim.runFor(1);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 101);
}

TEST(Simulator, StopEndsRunEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(20, [&] { ++fired; });
    sim.runUntil(100);
    EXPECT_EQ(fired, 1);
    sim.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, TimeIsMonotonic)
{
    Simulator sim;
    Tick last = -1;
    for (int i = 0; i < 50; ++i) {
        sim.scheduleIn(i * 7 % 13, [&sim, &last] {
            EXPECT_GE(sim.now(), last);
            last = sim.now();
        });
    }
    sim.runToCompletion();
}

TEST(Simulator, ComponentsRegister)
{
    Simulator sim;
    Component a(sim, "a");
    Component b(sim, "b");
    ASSERT_EQ(sim.components().size(), 2u);
    EXPECT_EQ(sim.components()[0]->name(), "a");
    EXPECT_EQ(&a.sim(), &sim);
    EXPECT_EQ(b.now(), 0);
}

TEST(Rng, DeterministicBySeed)
{
    Rng a(7), b(7), c(8);
    double va = a.uniform();
    EXPECT_DOUBLE_EQ(va, b.uniform());
    EXPECT_NE(va, c.uniform());
}

TEST(Rng, UniformBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(2);
    double sum = 0, sum2 = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(2.0);
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.1);
    EXPECT_NEAR(sum2 / n, 4.0, 0.3);
}

TEST(Rng, GaussianZeroSigmaIsZero)
{
    Rng rng(3);
    EXPECT_EQ(rng.gaussian(0.0), 0.0);
    EXPECT_EQ(rng.gaussian(-1.0), 0.0);
}

TEST(Rng, EngineMatchesStdMt19937_64WordForWord)
{
    // The standard pins mersenne_twister_engine's output exactly;
    // the bulk-tempering engine must reproduce it across several
    // twist boundaries and for diverse seeds.
    for (std::uint64_t seed : {1ULL, 7ULL, 5489ULL, 0xDEADBEEFULL}) {
        Mt64 ours(seed);
        std::mt19937_64 ref(seed);
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(ours(), ref()) << "seed " << seed << " draw " << i;
    }
}

TEST(Rng, CanonicalMatchesStdGenerateCanonical)
{
    Rng rng(11);
    std::mt19937_64 ref(11);
    for (int i = 0; i < 100000; ++i) {
        double expect = std::generate_canonical<double, 53>(ref);
        EXPECT_EQ(rng.canonical(), expect) << "draw " << i;
    }
}

TEST(Rng, GaussianMatchesStdNormalDistributionExactly)
{
    // The hand-inlined polar method must reproduce the library
    // stream bit for bit (a fresh distribution per draw, as
    // gaussian() has always behaved) — the whole point of the fast
    // path is that seeded runs keep their historical trajectories.
    Rng rng(42);
    std::mt19937_64 ref(42);
    for (int i = 0; i < 100000; ++i) {
        double expect = std::normal_distribution<double>(0.0, 0.05)(ref);
        EXPECT_EQ(rng.gaussian(0.05), expect) << "draw " << i;
    }
}

TEST(Rng, ChanceEdges)
{
    Rng rng(4);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(TimeCursor, TracksMaxOfClocks)
{
    Simulator sim;
    TimeCursor cursor(sim);
    EXPECT_EQ(cursor.now(), 0);
    cursor.advance(500);
    EXPECT_EQ(cursor.now(), 500);
    cursor.advance(100); // lower values ignored
    EXPECT_EQ(cursor.now(), 500);
    sim.runFor(1000);
    EXPECT_EQ(cursor.now(), 1000);
}

TEST(TimeCursor, ScheduleInUsesLocalClock)
{
    Simulator sim;
    TimeCursor cursor(sim);
    cursor.advance(300);
    bool fired = false;
    Tick when = 0;
    cursor.scheduleIn(100, [&] {
        fired = true;
        when = sim.now();
    });
    sim.runToCompletion();
    EXPECT_TRUE(fired);
    EXPECT_EQ(when, 400);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad ", 42), FatalError);
    try {
        fatal("value=", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

} // namespace
