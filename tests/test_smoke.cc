/**
 * @file
 * End-to-end substrate smoke tests: assemble guest programs, run them
 * on the simulated WISP under bench and harvested power.
 */

#include <gtest/gtest.h>

#include "apps/linked_list.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

/** A Wisp on a strong bench supply that never browns out. */
struct BenchTarget
{
    sim::Simulator sim{42};
    energy::TheveninHarvester supply{3.0, 10.0};
    target::Wisp wisp;

    BenchTarget() : wisp(sim, "wisp", &supply, nullptr) {}
};

TEST(Smoke, AssembleAndRunTinyProgram)
{
    BenchTarget t;
    auto prog = isa::assemble(runtime::programHeader() + R"(
main:
    li   r1, 10
    li   r2, 32
    add  r3, r1, r2
    la   r0, 0x5000
    stw  r3, [r0]
    halt
edb_dbg_isr:
    reti
)");
    t.wisp.flash(prog);
    t.wisp.start();
    t.sim.runFor(20 * sim::oneMs);
    EXPECT_EQ(t.wisp.state(), mcu::McuState::Halted);
    EXPECT_EQ(t.wisp.mcu().debugRead32(0x5000), 42u);
}

TEST(Smoke, LinkedListRunsForeverOnContinuousPower)
{
    BenchTarget t;
    t.wisp.flash(apps::buildLinkedListApp());
    t.wisp.start();
    t.sim.runFor(300 * sim::oneMs);
    EXPECT_EQ(t.wisp.state(), mcu::McuState::Running);
    EXPECT_EQ(t.wisp.mcu().faultCount(), 0u);
    std::uint32_t iters = t.wisp.mcu().debugRead32(
        apps::linked_list_layout::iterCountAddr);
    EXPECT_GT(iters, 100u);
}

TEST(Smoke, LinkedListFaultsUnderIntermittentPower)
{
    sim::Simulator simulator{7};
    energy::RfHarvester rf{30.0, 1.0};
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    wisp.flash(apps::buildLinkedListApp());
    wisp.start();
    simulator.runFor(20 * sim::oneSec);
    // The device must have cycled through many charge-discharge
    // cycles and eventually hit the wild-pointer bus fault.
    EXPECT_GT(wisp.power().bootCount(), 5u);
    EXPECT_GT(wisp.mcu().faultCount(), 0u);
}

TEST(Smoke, SawtoothChargeDischarge)
{
    sim::Simulator simulator{7};
    energy::RfHarvester rf{30.0, 1.0};
    target::Wisp wisp(simulator, "wisp", &rf, nullptr);
    // Spin forever: classic active drain.
    wisp.flash(isa::assemble(runtime::programHeader() + R"(
main:
    br   main
edb_dbg_isr:
    reti
)"));
    wisp.start();
    simulator.runFor(5 * sim::oneSec);
    EXPECT_GT(wisp.power().bootCount(), 2u);
    EXPECT_GT(wisp.power().brownOutCount(), 2u);
    double v = wisp.voltage();
    EXPECT_GT(v, 0.5);
    EXPECT_LT(v, 3.3);
}

} // namespace
