/**
 * @file
 * Unit tests for the target memory system: RAM regions, MMIO
 * registers, the memory map and fault reporting.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"
#include "sim/logging.hh"

using namespace edb;
using namespace edb::mem;

namespace {

TEST(Ram, ByteAndWordAccess)
{
    Ram ram("ram", 0x1000, 0x100, RegionKind::Sram);
    ram.write8(0x1000, 0xAB);
    std::uint8_t b = 0;
    b = ram.read8(0x1000);
    EXPECT_EQ(b, 0xAB);
    ram.write32(0x1010, 0x11223344);
    EXPECT_EQ(ram.read32(0x1010), 0x11223344u);
    // Little-endian byte order.
    EXPECT_EQ(ram.read8(0x1010), 0x44);
    EXPECT_EQ(ram.read8(0x1013), 0x11);
}

TEST(Ram, PowerLossPoisonsSramOnly)
{
    Ram sram("sram", 0x1000, 0x10, RegionKind::Sram);
    Ram fram("fram", 0x4000, 0x10, RegionKind::Fram);
    sram.write8(0x1000, 0x42);
    fram.write8(0x4000, 0x42);
    sram.powerLoss();
    fram.powerLoss();
    EXPECT_EQ(sram.read8(0x1000), 0xCD); // poison
    EXPECT_EQ(fram.read8(0x4000), 0x42); // retained
}

TEST(Ram, ClearZeroes)
{
    Ram ram("ram", 0, 4, RegionKind::Fram);
    ram.write8(1, 9);
    ram.clear();
    EXPECT_EQ(ram.read8(1), 0);
}

TEST(Ram, LoadBulkAndBoundsCheck)
{
    Ram ram("ram", 0x4000, 0x10, RegionKind::Fram);
    ram.load(0x4004, {1, 2, 3});
    EXPECT_EQ(ram.read8(0x4004), 1);
    EXPECT_EQ(ram.read8(0x4006), 3);
    EXPECT_THROW(ram.load(0x400E, {1, 2, 3}), sim::FatalError);
    EXPECT_THROW(ram.load(0x3FFF, {1}), sim::FatalError);
}

TEST(Ram, WriteCountTracksWear)
{
    Ram ram("ram", 0, 16, RegionKind::Fram);
    EXPECT_EQ(ram.writeCount(), 0u);
    ram.write8(0, 1);
    EXPECT_EQ(ram.writeCount(), 1u);
    // A word store is one logical write, not four byte writes.
    ram.write32(4, 5);
    EXPECT_EQ(ram.writeCount(), 2u);
    // Bulk load (flash programming) does not count as wear.
    ram.load(8, {1, 2, 3, 4});
    EXPECT_EQ(ram.writeCount(), 2u);
}

TEST(Ram, CannotBeMmio)
{
    EXPECT_THROW(Ram("x", 0, 4, RegionKind::Mmio), sim::FatalError);
}

TEST(Mmio, RegisterReadWrite)
{
    MmioRegion mmio("mmio", 0xF000, 0x100);
    std::uint32_t reg = 0;
    mmio.addRegister(
        0xF010, "reg", [&reg] { return reg; },
        [&reg](std::uint32_t v) { reg = v; });
    mmio.write32(0xF010, 77);
    EXPECT_EQ(reg, 77u);
    EXPECT_EQ(mmio.read32(0xF010), 77u);
    EXPECT_TRUE(mmio.hasRegister(0xF010));
    EXPECT_FALSE(mmio.hasRegister(0xF014));
}

TEST(Mmio, WriteOnlyAndReadOnly)
{
    MmioRegion mmio("mmio", 0xF000, 0x100);
    std::uint32_t sink = 0;
    mmio.addRegister(0xF000, "wo", nullptr,
                     [&sink](std::uint32_t v) { sink = v; });
    mmio.addRegister(0xF004, "ro", [] { return 9u; }, nullptr);
    EXPECT_EQ(mmio.read32(0xF000), 0u); // write-only reads 0
    mmio.write32(0xF004, 5);            // ignored
    EXPECT_EQ(mmio.read32(0xF004), 9u);
    mmio.write32(0xF000, 3);
    EXPECT_EQ(sink, 3u);
}

TEST(Mmio, UnknownRegisterReadsZero)
{
    MmioRegion mmio("mmio", 0xF000, 0x100);
    EXPECT_EQ(mmio.read32(0xF0F0), 0u);
    mmio.write32(0xF0F0, 1); // ignored, no crash
}

TEST(Mmio, ByteReadExtractsLane)
{
    MmioRegion mmio("mmio", 0xF000, 0x100);
    mmio.addRegister(0xF000, "r", [] { return 0xA1B2C3D4u; },
                     nullptr);
    EXPECT_EQ(mmio.read8(0xF000), 0xD4);
    EXPECT_EQ(mmio.read8(0xF003), 0xA1);
}

TEST(Mmio, RejectsBadRegistrations)
{
    MmioRegion mmio("mmio", 0xF000, 0x100);
    mmio.addRegister(0xF000, "a", nullptr, nullptr);
    EXPECT_THROW(mmio.addRegister(0xF000, "dup", nullptr, nullptr),
                 sim::FatalError);
    EXPECT_THROW(mmio.addRegister(0xF001, "misaligned", nullptr,
                                  nullptr),
                 sim::FatalError);
    EXPECT_THROW(mmio.addRegister(0xE000, "outside", nullptr,
                                  nullptr),
                 sim::FatalError);
}

class MemoryMapFixture : public ::testing::Test
{
  protected:
    MemoryMapFixture()
        : sram("sram", 0x1000, 0x1000, RegionKind::Sram),
          fram("fram", 0x4000, 0x1000, RegionKind::Fram),
          mmio("mmio", 0xF000, 0x1000)
    {
        map.addRegion(&sram);
        map.addRegion(&fram);
        map.addRegion(&mmio);
    }

    Ram sram;
    Ram fram;
    MmioRegion mmio;
    MemoryMap map;
};

TEST_F(MemoryMapFixture, RoutesByAddress)
{
    EXPECT_EQ(map.find(0x1000), &sram);
    EXPECT_EQ(map.find(0x4FFF), &fram);
    EXPECT_EQ(map.find(0xF000), &mmio);
    EXPECT_EQ(map.find(0x0000), nullptr);
    EXPECT_EQ(map.find(0x3000), nullptr);
}

TEST_F(MemoryMapFixture, UnmappedAccessReported)
{
    std::uint8_t b;
    std::uint32_t w;
    EXPECT_EQ(map.read8(0x0004, b), AccessResult::Unmapped);
    EXPECT_EQ(map.write8(0x0004, 1), AccessResult::Unmapped);
    EXPECT_EQ(map.read32(0x0004, w), AccessResult::Unmapped);
    EXPECT_EQ(map.write32(0x0004, 1), AccessResult::Unmapped);
}

TEST_F(MemoryMapFixture, MisalignedWordReported)
{
    std::uint32_t w;
    EXPECT_EQ(map.read32(0x1002, w), AccessResult::Misaligned);
    EXPECT_EQ(map.write32(0x1001, 5), AccessResult::Misaligned);
}

TEST_F(MemoryMapFixture, WordStraddlingRegionEndIsUnmapped)
{
    // 0x1FFC is the last word of SRAM; fine. A region ending
    // mid-word would be unmapped; emulate via the gap at 0x2000.
    EXPECT_EQ(map.write32(0x1FFC, 1), AccessResult::Ok);
    std::uint32_t w;
    EXPECT_EQ(map.read32(0x2000, w), AccessResult::Unmapped);
}

TEST_F(MemoryMapFixture, ReadWriteRoundTrip)
{
    EXPECT_EQ(map.write32(0x4100, 0xCAFEF00D), AccessResult::Ok);
    std::uint32_t w = 0;
    EXPECT_EQ(map.read32(0x4100, w), AccessResult::Ok);
    EXPECT_EQ(w, 0xCAFEF00Du);
}

TEST(MemoryMap, RejectsOverlapAndNull)
{
    Ram a("a", 0x1000, 0x100, RegionKind::Sram);
    Ram b("b", 0x1080, 0x100, RegionKind::Sram);
    MemoryMap map;
    map.addRegion(&a);
    EXPECT_THROW(map.addRegion(&b), sim::FatalError);
    EXPECT_THROW(map.addRegion(nullptr), sim::FatalError);
}

TEST(MemoryMap, AdjacentRegionsAllowed)
{
    Ram a("a", 0x1000, 0x100, RegionKind::Sram);
    Ram b("b", 0x1100, 0x100, RegionKind::Sram);
    MemoryMap map;
    map.addRegion(&a);
    map.addRegion(&b);
    EXPECT_EQ(map.regions().size(), 2u);
}

} // namespace
