/**
 * @file
 * Unit tests for the EH32 assembler: directives, expressions,
 * labels, pseudo-instructions and error reporting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "isa/isa.hh"
#include "isa/listing.hh"
#include <sstream>

using namespace edb::isa;

namespace {

/** Decode the i-th instruction word of the first segment. */
Instr
instrAt(const Program &program, std::size_t index)
{
    const auto &bytes = program.segments.front().bytes;
    std::uint32_t word = 0;
    for (int b = 0; b < 4; ++b) {
        word |= std::uint32_t(bytes.at(index * 4 + b)) << (8 * b);
    }
    auto decoded = decode(word);
    EXPECT_TRUE(decoded.has_value());
    return decoded.value_or(Instr{});
}

TEST(Assembler, EmptyProgram)
{
    Program p = assemble("; just a comment\n");
    EXPECT_EQ(p.totalBytes(), 0u);
    EXPECT_EQ(p.entry, 0x4000u);
}

TEST(Assembler, BasicInstructions)
{
    Program p = assemble(R"(
main:
    li   r1, 42
    mov  r2, r1
    add  r3, r1, r2
    halt
)");
    EXPECT_EQ(p.totalBytes(), 16u);
    EXPECT_EQ(p.entry, 0x4000u); // `main` symbol
    Instr li = instrAt(p, 0);
    EXPECT_EQ(li.op, Opcode::Li);
    EXPECT_EQ(li.rd, 1);
    EXPECT_EQ(li.imm, 42);
    Instr add = instrAt(p, 2);
    EXPECT_EQ(add.op, Opcode::Add);
    EXPECT_EQ(add.rd, 3);
    EXPECT_EQ(add.rs, 1);
    EXPECT_EQ(add.rt, 2);
}

TEST(Assembler, SpRegisterAlias)
{
    Program p = assemble("    addi sp, sp, -4\n");
    Instr i = instrAt(p, 0);
    EXPECT_EQ(i.rd, regSp);
    EXPECT_EQ(i.rs, regSp);
    EXPECT_EQ(i.imm, -4);
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble(R"(
    ldw  r1, [r2 + 8]
    stw  r1, [r2 - 4]
    ldb  r3, [r4]
)");
    EXPECT_EQ(instrAt(p, 0).imm, 8);
    EXPECT_EQ(instrAt(p, 1).imm, -4);
    EXPECT_EQ(instrAt(p, 2).imm, 0);
    EXPECT_EQ(instrAt(p, 2).rs, 4);
}

TEST(Assembler, BranchDisplacements)
{
    Program p = assemble(R"(
start:
    nop
    br   start
    beq  fwd
    nop
fwd:
    halt
)");
    // br at 0x4004 -> start 0x4000: disp = 0x4000 - 0x4008 = -8.
    EXPECT_EQ(instrAt(p, 1).imm, -8);
    // beq at 0x4008 -> fwd 0x4010: disp = 0x4010 - 0x400C = 4.
    EXPECT_EQ(instrAt(p, 2).imm, 4);
}

TEST(Assembler, CallAndEquExpressions)
{
    Program p = assemble(R"(
.equ BASE, 0x100
.equ OFFSET, BASE + 0x20
main:
    li   r1, OFFSET
    li   r2, OFFSET - 8
    call main
)");
    EXPECT_EQ(instrAt(p, 0).imm, 0x120);
    EXPECT_EQ(instrAt(p, 1).imm, 0x118);
    EXPECT_EQ(p.symbol("OFFSET"), 0x120u);
}

TEST(Assembler, CharLiterals)
{
    Program p = assemble(R"(
    li   r1, 'A'
    li   r2, '\n'
    li   r3, '\0'
)");
    EXPECT_EQ(instrAt(p, 0).imm, 'A');
    EXPECT_EQ(instrAt(p, 1).imm, '\n');
    EXPECT_EQ(instrAt(p, 2).imm, 0);
}

TEST(Assembler, LaExpandsToLuiOri)
{
    Program p = assemble(R"(
    la   r1, 0xF060
    la   r2, 0x12345678
)");
    EXPECT_EQ(p.totalBytes(), 16u);
    Instr lui = instrAt(p, 0);
    Instr ori = instrAt(p, 1);
    EXPECT_EQ(lui.op, Opcode::Lui);
    EXPECT_EQ(lui.imm, 0x0000);
    EXPECT_EQ(ori.op, Opcode::Ori);
    EXPECT_EQ(ori.imm, 0xF060);
    EXPECT_EQ(instrAt(p, 2).imm, 0x1234);
    EXPECT_EQ(instrAt(p, 3).imm, 0x5678);
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
.org 0x5000
val:  .word 0xCAFEBABE, 7
byt:  .byte 1, 2, 255
text: .asciz "hi\n"
    .align
    .space 4
end:
)");
    const auto &bytes = p.segments.front().bytes;
    EXPECT_EQ(p.segments.front().base, 0x5000u);
    EXPECT_EQ(bytes[0], 0xBE);
    EXPECT_EQ(bytes[3], 0xCA);
    EXPECT_EQ(bytes[4], 7);
    EXPECT_EQ(p.symbol("byt"), 0x5008u);
    EXPECT_EQ(bytes[10], 255);
    EXPECT_EQ(p.symbol("text"), 0x500Bu);
    EXPECT_EQ(bytes[11], 'h');
    EXPECT_EQ(bytes[13], '\n');
    EXPECT_EQ(bytes[14], 0); // NUL
    EXPECT_EQ(p.symbol("end") % 4, 0u);
    EXPECT_EQ(p.symbol("end"), 0x5000u + 16 + 4);
}

TEST(Assembler, OrgCreatesSegments)
{
    Program p = assemble(R"(
.org 0x4000
    nop
.org 0x6000
    halt
)");
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.segments[0].base, 0x4000u);
    EXPECT_EQ(p.segments[1].base, 0x6000u);
    EXPECT_EQ(p.segments[1].bytes.size(), 4u);
}

TEST(Assembler, EntryAndIrqDirectives)
{
    Program p = assemble(R"(
.entry start
.irq handler
    nop
start:
    nop
handler:
    reti
)");
    EXPECT_EQ(p.entry, 0x4004u);
    EXPECT_EQ(p.irqHandler, 0x4008u);
}

TEST(Assembler, EntryDefaultsToMainThenBase)
{
    Program with_main = assemble("    nop\nmain:\n    halt\n");
    EXPECT_EQ(with_main.entry, 0x4004u);
    Program bare = assemble("    nop\n");
    EXPECT_EQ(bare.entry, 0x4000u);
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble(R"(
    la   r1, later
    ldw  r2, [r1]
later:
    .word 99
)");
    EXPECT_EQ(instrAt(p, 1).imm,
              static_cast<std::int32_t>(p.symbol("later") & 0xFFFF));
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("    frob r1, r2\n"), AsmError);
}

TEST(AssemblerErrors, UnknownDirective)
{
    EXPECT_THROW(assemble(".bogus 1\n"), AsmError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(assemble("    mov r1, r16\n"), AsmError);
    EXPECT_THROW(assemble("    mov rx, r1\n"), AsmError);
}

TEST(AssemblerErrors, OperandCount)
{
    EXPECT_THROW(assemble("    add r1, r2\n"), AsmError);
    EXPECT_THROW(assemble("    nop r1\n"), AsmError);
}

TEST(AssemblerErrors, ImmediateRange)
{
    EXPECT_THROW(assemble("    li r1, 40000\n"), AsmError);
    EXPECT_THROW(assemble("    li r1, -40000\n"), AsmError);
    EXPECT_THROW(assemble("    andi r1, r1, -1\n"), AsmError);
    EXPECT_NO_THROW(assemble("    li r1, 32767\n"));
    EXPECT_NO_THROW(assemble("    andi r1, r1, 0xFFFF\n"));
}

TEST(AssemblerErrors, BranchOutOfRange)
{
    EXPECT_THROW(assemble(R"(
.org 0x4000
    br far
.org 0xE000
far: nop
)"),
                 AsmError);
}

TEST(AssemblerErrors, DuplicateAndUndefinedSymbols)
{
    EXPECT_THROW(assemble("a:\na:\n"), AsmError);
    EXPECT_THROW(assemble("    li r1, missing\n"), AsmError);
    EXPECT_THROW(assemble(".entry nowhere\n    nop\n"), AsmError);
}

TEST(AssemblerErrors, MessagesIncludeLineNumbers)
{
    try {
        assemble("    nop\n    nop\n    frob\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Assembler, CommentsEverywhere)
{
    Program p = assemble(R"(
; full line
    li r1, 1   ; trailing
    li r2, ';'  # not a comment start inside char literal
# hash comment
)");
    EXPECT_EQ(p.totalBytes(), 8u);
    EXPECT_EQ(instrAt(p, 1).imm, ';');
}

TEST(Assembler, ProgramSymbolHelpers)
{
    Program p = assemble("here:\n    nop\n");
    EXPECT_TRUE(p.hasSymbol("here"));
    EXPECT_FALSE(p.hasSymbol("there"));
    EXPECT_THROW(p.symbol("there"), edb::sim::FatalError);
}

} // namespace

namespace {

TEST(Listing, AnnotatesSymbolsAndInstructions)
{
    Program p = assemble(R"(
main:
    li   r1, 42
    halt
msg: .asciz "hi"
.align
)");
    std::ostringstream oss;
    std::size_t lines = writeListing(oss, p);
    std::string text = oss.str();
    EXPECT_GT(lines, 4u);
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("msg:"), std::string::npos);
    EXPECT_NE(text.find("li r1, 42"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_NE(text.find("entry 0x4000"), std::string::npos);
}

TEST(Listing, MaxLinesIsHonoured)
{
    Program p = assemble("main:\n    nop\n    nop\n    nop\n");
    std::ostringstream oss;
    ListingOptions options;
    options.maxLines = 3;
    EXPECT_EQ(writeListing(oss, p, options), 3u);
}

TEST(Listing, DataWordsShowAscii)
{
    std::string line = listingLine(0x5000, 0x00696868u, false);
    EXPECT_NE(line.find("\"hhi.\""), std::string::npos);
}

} // namespace
