/**
 * @file
 * Tests of the Table 1 debug console: command grammar, error
 * handling, and end-to-end command effects.
 */

#include <gtest/gtest.h>

#include "apps/linked_list.hh"
#include "console/console.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

using namespace edb;

namespace {

struct ConsoleRig
{
    sim::Simulator sim{101};
    energy::TheveninHarvester supply{3.0, 2000.0};
    target::Wisp wisp;
    edbdbg::EdbBoard board;
    console::Console con;

    ConsoleRig()
        : wisp(sim, "wisp", &supply, nullptr),
          board(sim, "edb", wisp),
          con(board)
    {}

    void
    bootSpin()
    {
        wisp.flash(isa::assemble(runtime::programHeader() +
                                 "main:\n    br main\n" +
                                 runtime::libedbSource()));
        wisp.start();
        board.pumpUntil(
            [this] {
                return wisp.state() == mcu::McuState::Running;
            },
            2 * sim::oneSec);
    }
};

TEST(Console, EmptyAndUnknownCommands)
{
    ConsoleRig rig;
    EXPECT_EQ(rig.con.execute(""), "");
    EXPECT_NE(rig.con.execute("frobnicate").find("unknown command"),
              std::string::npos);
}

TEST(Console, HelpListsTableOneGrammar)
{
    ConsoleRig rig;
    std::string help = rig.con.execute("help");
    for (const char *cmd : {"charge", "discharge", "break", "watch",
                            "trace", "read", "write", "resume"}) {
        EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
    }
}

TEST(Console, StatusReportsTargetState)
{
    ConsoleRig rig;
    std::string status = rig.con.execute("status");
    EXPECT_NE(status.find("target: off"), std::string::npos);
    rig.bootSpin();
    status = rig.con.execute("status");
    EXPECT_NE(status.find("target: running"), std::string::npos);
}

TEST(Console, ChargeDischargeCommands)
{
    ConsoleRig rig;
    rig.bootSpin();
    std::string out = rig.con.execute("discharge 2.0");
    EXPECT_NE(out.find("ok"), std::string::npos);
    EXPECT_NEAR(rig.wisp.power().voltage(), 2.0, 0.05);
    out = rig.con.execute("charge 2.5");
    EXPECT_NE(out.find("ok"), std::string::npos);
    EXPECT_NEAR(rig.wisp.power().voltage(), 2.5, 0.05);
    EXPECT_NE(rig.con.execute("charge").find("usage"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("charge lots").find("error"),
              std::string::npos);
}

TEST(Console, BreakCommandGrammar)
{
    ConsoleRig rig;
    EXPECT_NE(rig.con.execute("break en 3").find("code breakpoint"),
              std::string::npos);
    EXPECT_NE(
        rig.con.execute("break en 4 2.1").find("combined breakpoint"),
        std::string::npos);
    EXPECT_NE(rig.con.execute("break dis 3").find("disabled"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("break en energy 2.0")
                  .find("energy breakpoint"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("break dis energy").find("disabled"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("break en 99").find("error"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("break").find("usage"),
              std::string::npos);
}

TEST(Console, BreakEnableSetsTargetMask)
{
    ConsoleRig rig;
    rig.con.execute("break en 5");
    EXPECT_EQ(rig.wisp.debugPort().breakpointMask(), 1u << 5);
    rig.con.execute("break dis 5");
    EXPECT_EQ(rig.wisp.debugPort().breakpointMask(), 0u);
}

TEST(Console, WatchAndTraceCommands)
{
    ConsoleRig rig;
    EXPECT_NE(rig.con.execute("watch en 2").find("enabled"),
              std::string::npos);
    EXPECT_TRUE(rig.board.watchpointEnabled(2));
    EXPECT_NE(rig.con.execute("watch dis 2").find("disabled"),
              std::string::npos);
    EXPECT_FALSE(rig.board.watchpointEnabled(2));
    EXPECT_NE(rig.con.execute("trace energy").find("trace energy on"),
              std::string::npos);
    EXPECT_TRUE(rig.board.streams().energy);
    EXPECT_NE(
        rig.con.execute("trace energy off").find("trace energy off"),
        std::string::npos);
    EXPECT_FALSE(rig.board.streams().energy);
    EXPECT_NE(rig.con.execute("trace bogus").find("unknown stream"),
              std::string::npos);
}

TEST(Console, ReadWriteRequireSession)
{
    ConsoleRig rig;
    EXPECT_NE(rig.con.execute("read 0x5000 4").find("no open"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("write 0x5000 1").find("no open"),
              std::string::npos);
    EXPECT_NE(rig.con.execute("resume").find("no open"),
              std::string::npos);
}

TEST(Console, InteractiveSessionReadWriteResume)
{
    ConsoleRig rig;
    rig.bootSpin();
    // Pre-load a known value the console will read back.
    rig.wisp.mcu().debugWrite32(0x5000, 0x04030201);
    std::string out = rig.con.execute("break-in");
    EXPECT_NE(out.find("session: manual"), std::string::npos);
    out = rig.con.execute("read 0x5000 4");
    EXPECT_NE(out.find("01 02 03 04"), std::string::npos);
    EXPECT_EQ(rig.con.execute("write 0x5004 0xAA"), "ok");
    EXPECT_EQ(rig.wisp.mcu().debugRead32(0x5004), 0xAAu);
    EXPECT_EQ(rig.con.execute("resume"), "resumed");
    EXPECT_TRUE(rig.board.waitPassive(sim::oneSec));
}

TEST(Console, VcapReportsVoltage)
{
    ConsoleRig rig;
    rig.bootSpin();
    std::string out = rig.con.execute("vcap");
    EXPECT_NE(out.find("Vcap = "), std::string::npos);
}

} // namespace
