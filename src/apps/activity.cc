#include "apps/activity.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "runtime/libedb.hh"
#include "sensors/accelerometer.hh"

namespace edb::apps {

std::string
activitySource(const ActivityOptions &options)
{
    namespace lay = activity_layout;
    std::ostringstream s;
    s << runtime::programHeader();
    s << ".equ A_MAGIC, " << lay::magicAddr << "\n"
      << ".equ A_TOTAL, " << lay::totalAddr << "\n"
      << ".equ A_MOVING, " << lay::movingAddr << "\n"
      << ".equ A_STILL, " << lay::stillAddr << "\n"
      << ".equ A_STARTED, " << lay::startedAddr << "\n"
      << ".equ A_ARGV, " << lay::argvAddr << "\n"
      << ".equ A_MAGICV, " << lay::magicValue << "\n"
      << ".equ ACCEL_ADDR, "
      << unsigned(sensors::AccelConfig{}.busAddress) << "\n"
      << ".equ WINDOW, " << options.windowSize << "\n"
      << ".equ WINTH, " << options.windowSize * options.threshold
      << "\n"
      << ".equ NUMBUF, 0x2F00\n";

    auto wp = [&](unsigned id) {
        if (options.withWatchpoints) {
            s << "    li   r1, " << id << "\n"
              << "    call edb_watchpoint\n";
        }
    };

    s << R"(
main:
    la   r0, A_MAGIC
    ldw  r1, [r0]
    la   r2, A_MAGICV
    cmp  r1, r2
    beq  main_loop
    li   r1, 0
    la   r0, A_TOTAL
    stw  r1, [r0]
    la   r0, A_MOVING
    stw  r1, [r0]
    la   r0, A_STILL
    stw  r1, [r0]
    la   r0, A_STARTED
    stw  r1, [r0]
    la   r0, A_MAGIC
    la   r1, A_MAGICV
    stw  r1, [r0]

main_loop:
    ; attempted-iteration counter (success rate denominator)
    la   r0, A_STARTED
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
)";
    wp(activity_ids::wpIterStart);
    s << R"(
    ; sample a window of accelerometer readings, accumulating the
    ; magnitude deviation |x| + |y| + |z - 1g|
    li   r5, WINDOW
    li   r6, 0
__win_loop:
    li   r1, 1                 ; X axis (latches a fresh sample)
    call read_axis16
    call abs32
    add  r6, r6, r0
    li   r1, 3                 ; Y axis
    call read_axis16
    call abs32
    add  r6, r6, r0
    li   r1, 5                 ; Z axis
    call read_axis16
    addi r0, r0, -1024
    call abs32
    add  r6, r6, r0
    addi r5, r5, -1
    cmpi r5, 0
    bne  __win_loop

    ; nearest-centroid style classification
    cmpi r6, WINTH
    blt  __still
    la   r0, A_MOVING
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
)";
    wp(activity_ids::wpMoving);
    s << R"(
    br   __classified
__still:
    la   r0, A_STILL
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
)";
    wp(activity_ids::wpStationary);
    s << "__classified:\n";

    switch (options.output) {
      case ActivityOutput::None:
        break;
      case ActivityOutput::UartPrintf:
        s << R"(
    ; UART trace: "it=<total> m=<moving>\n" formatted on target
    la   r1, S_IT
    call uart_puts
    la   r0, A_TOTAL
    ldw  r1, [r0]
    call uart_putnum
    la   r1, S_M
    call uart_puts
    la   r0, A_MOVING
    ldw  r1, [r0]
    call uart_putnum
    li   r1, '\n'
    call uart_putc
)";
        break;
      case ActivityOutput::EdbPrintf:
        s << R"(
    ; EDB printf: host formats; target ships fmt + 2 arg words
    la   r0, A_TOTAL
    ldw  r1, [r0]
    la   r2, A_ARGV
    stw  r1, [r2]
    la   r0, A_MOVING
    ldw  r1, [r0]
    stw  r1, [r2 + 4]
    la   r1, S_FMT
    li   r2, 2
    la   r3, A_ARGV
    call edb_printf
)";
        break;
    }
    // The instrumentation is part of the loop body: an iteration
    // only counts as complete once its debug output is out (this is
    // what makes the output's cost visible in the success rate).
    s << R"(
    la   r0, A_TOTAL
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
    br   main_loop
)";

    // Helper routines.
    s << R"(
; read_axis16: r1 = high-byte register; r0 = sign-extended reading
read_axis16:
    push r5
    mov  r5, r1
    call i2c_read_reg
    push r0
    addi r1, r5, 1
    call i2c_read_reg
    pop  r2
    shli r2, r2, 8
    or   r0, r0, r2
    shli r0, r0, 16
    li   r2, 16
    sar  r0, r0, r2
    pop  r5
    ret

; i2c_read_reg: r1 = register; r0 = byte read from the accelerometer
i2c_read_reg:
    la   r0, I2C_ADDR
    li   r2, ACCEL_ADDR
    stw  r2, [r0]
    la   r0, I2C_REG
    stw  r1, [r0]
    la   r0, I2C_CTRL
    li   r2, 1
    stw  r2, [r0]
    la   r0, I2C_STATUS
__i2c_wait:
    ldw  r2, [r0]
    andi r2, r2, 2
    cmpi r2, 0
    beq  __i2c_wait
    la   r0, I2C_DATA
    ldw  r0, [r0]
    ret

; abs32: r0 = |r0|
abs32:
    cmpi r0, 0
    bge  __abs_done
    li   r2, 0
    sub  r0, r2, r0
__abs_done:
    ret
)";

    if (options.output == ActivityOutput::UartPrintf) {
        s << R"(
; uart_putc: r1 = character
uart_putc:
    la   r0, UART0_STATUS
__upc_wait:
    ldw  r2, [r0]
    andi r2, r2, 1
    cmpi r2, 0
    bne  __upc_wait
    la   r0, UART0_TX
    stw  r1, [r0]
    ret

; uart_puts: r1 = NUL-terminated string address
uart_puts:
    push r5
    mov  r5, r1
__ups_loop:
    ldb  r1, [r5]
    cmpi r1, 0
    beq  __ups_done
    call uart_putc
    addi r5, r5, 1
    br   __ups_loop
__ups_done:
    pop  r5
    ret

; uart_putnum: r1 = unsigned value, printed in decimal
uart_putnum:
    push r5
    push r6
    push r7
    mov  r5, r1
    la   r6, NUMBUF + 11
    li   r0, 0
    stb  r0, [r6]
__upn_digits:
    addi r6, r6, -1
    li   r7, 10
    remu r0, r5, r7
    addi r1, r0, '0'
    stb  r1, [r6]
    divu r5, r5, r7
    cmpi r5, 0
    bne  __upn_digits
__upn_out:
    ldb  r1, [r6]
    cmpi r1, 0
    beq  __upn_done
    push r6
    call uart_putc
    pop  r6
    addi r6, r6, 1
    br   __upn_out
__upn_done:
    pop  r7
    pop  r6
    pop  r5
    ret

S_IT: .asciz "it="
S_M:  .asciz " m="
.align
)";
    }
    if (options.output == ActivityOutput::EdbPrintf) {
        s << "S_FMT: .asciz \"it=%u m=%u\\n\"\n.align\n";
    }
    s << runtime::libedbSource();
    return s.str();
}

isa::Program
buildActivityApp(const ActivityOptions &options)
{
    return isa::assemble(activitySource(options));
}

} // namespace edb::apps
