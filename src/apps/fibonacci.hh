/**
 * @file
 * The Fibonacci-list application (paper Figs 8, 9).
 *
 * Generates the Fibonacci sequence and appends each number to a
 * non-volatile doubly-linked list. The debug build prepends an
 * energy-hungry consistency check whose cost grows with list length:
 * it walks the list validating the prev/next links and recomputes
 * each node's Fibonacci value from scratch. Once the list is long
 * enough, the check alone consumes an entire charge-discharge cycle
 * and the main loop can never run again — unless the check is
 * wrapped in EDB energy guards.
 */

#ifndef EDB_APPS_FIBONACCI_HH
#define EDB_APPS_FIBONACCI_HH

#include "isa/program.hh"

namespace edb::apps {

/** Build options for the Fibonacci application. */
struct FibonacciOptions
{
    /** Include the consistency check (the "debug build"). */
    bool withCheck = false;
    /** Wrap the check in EDB energy guards (Fig 9 bottom). */
    bool withGuards = false;
    /** On an invariant violation, call the keep-alive assert
     *  (otherwise just count violations in FRAM and continue). */
    bool assertOnViolation = false;
    /** Stop after this many list nodes (0 = pool capacity). */
    unsigned maxNodes = 0;
};

/** Watchpoint/assert ids. */
namespace fibonacci_ids {
constexpr unsigned assertCheckFailed = 2;
}

/** FRAM data addresses. */
namespace fibonacci_layout {
constexpr std::uint32_t magicAddr = 0x5000;
constexpr std::uint32_t countAddr = 0x5004;
constexpr std::uint32_t tailPtrAddr = 0x5008;
constexpr std::uint32_t violationsAddr = 0x500C;
constexpr std::uint32_t headAddr = 0x5010;
constexpr std::uint32_t poolAddr = 0x6000;
constexpr std::uint32_t poolCapacity = 2000; ///< 16-byte nodes.
constexpr std::uint32_t magicValue = 0xF1B0CAFE;
constexpr std::uint32_t nodeNextOff = 0;
constexpr std::uint32_t nodePrevOff = 4;
constexpr std::uint32_t nodeValueOff = 8;
/** GPIO bit indicating the main loop ran (Fig 9 "Main Loop"). */
constexpr std::uint32_t mainLoopPin = 0;
/** GPIO bit indicating the check is running (Fig 9 "Check"). */
constexpr std::uint32_t checkPin = 1;
} // namespace fibonacci_layout

/** Assemble the application. */
isa::Program buildFibonacciApp(const FibonacciOptions &options = {});

/** The raw assembly text. */
std::string fibonacciSource(const FibonacciOptions &options = {});

} // namespace edb::apps

#endif // EDB_APPS_FIBONACCI_HH
