/**
 * @file
 * WISP RFID firmware (paper Section 5.3.4, Fig 12).
 *
 * Decodes RFID query commands from the reader in software and
 * replies with a unique identifier (EPC). Each successful reply
 * toggles GPIO pin 0 and optionally emits a watchpoint, so EDB can
 * correlate protocol activity with the energy trace.
 */

#ifndef EDB_APPS_RFID_FIRMWARE_HH
#define EDB_APPS_RFID_FIRMWARE_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"

namespace edb::apps {

/** Build options. */
struct RfidFirmwareOptions
{
    /** Emit watchpoint 1 after each successful reply. */
    bool withWatchpoints = false;
    /** Busy-loop iterations modelling the software decode cost. */
    unsigned decodeCostLoops = 50;
};

/** Watchpoint ids. */
namespace rfid_ids {
constexpr unsigned wpReplied = 1;
}

/** FRAM counters. */
namespace rfid_layout {
constexpr std::uint32_t magicAddr = 0x5000;
constexpr std::uint32_t decodedAddr = 0x5004; ///< Valid cmds decoded.
constexpr std::uint32_t repliedAddr = 0x5008; ///< Replies sent.
constexpr std::uint32_t magicValue = 0x4F1D0001;
} // namespace rfid_layout

/** The 12-byte EPC identifier the firmware replies with. */
constexpr std::array<std::uint8_t, 12> wispEpc = {
    0xE2, 0x00, 0x10, 0x64, 0x0B, 0x01,
    0x57, 0x15, 0x90, 0x20, 0x00, 0x5A,
};

/** Assemble the firmware. */
isa::Program buildRfidFirmware(const RfidFirmwareOptions &options = {});

/** The raw assembly text. */
std::string rfidFirmwareSource(const RfidFirmwareOptions &options = {});

} // namespace edb::apps

#endif // EDB_APPS_RFID_FIRMWARE_HH
