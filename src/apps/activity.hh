/**
 * @file
 * Activity-recognition application (paper Fig 10, Section 5.3.3,
 * Table 4, Fig 11).
 *
 * Each iteration samples a window of accelerometer readings over
 * I2C, classifies the window as "stationary" or "moving" with a
 * nearest-centroid-style magnitude-deviation test, and records the
 * statistics in non-volatile memory. Instrumentation variants: no
 * output, UART printf (on-target formatting, real wire time and
 * energy) or EDB printf (energy-interference-free).
 *
 * Watchpoints: id 1 at iteration start, id 2 on "stationary", id 3
 * on "moving" — the pairs (1,2) and (1,3) give the per-iteration
 * time and energy profile of Fig 11.
 */

#ifndef EDB_APPS_ACTIVITY_HH
#define EDB_APPS_ACTIVITY_HH

#include "isa/program.hh"

namespace edb::apps {

/** Debug-output variant. */
enum class ActivityOutput
{
    None,       ///< Release build: no output.
    UartPrintf, ///< Formats + transmits over the console UART.
    EdbPrintf,  ///< libEDB printf (implicit energy guard).
};

/** Build options. */
struct ActivityOptions
{
    ActivityOutput output = ActivityOutput::None;
    /** Insert watchpoints 1/2/3 (EDB program-event tracing). */
    bool withWatchpoints = true;
    /** Accelerometer samples per classification window. */
    unsigned windowSize = 8;
    /** Per-sample deviation threshold for "moving". */
    unsigned threshold = 350;
};

/** Watchpoint ids. */
namespace activity_ids {
constexpr unsigned wpIterStart = 1;
constexpr unsigned wpStationary = 2;
constexpr unsigned wpMoving = 3;
} // namespace activity_ids

/** FRAM data addresses. */
namespace activity_layout {
constexpr std::uint32_t magicAddr = 0x5000;
constexpr std::uint32_t totalAddr = 0x5004;   ///< Completed iterations.
constexpr std::uint32_t movingAddr = 0x5008;  ///< "Moving" windows.
constexpr std::uint32_t stillAddr = 0x500C;   ///< "Stationary" windows.
constexpr std::uint32_t startedAddr = 0x5010; ///< Attempted iterations.
constexpr std::uint32_t argvAddr = 0x5020;    ///< printf argv buffer.
constexpr std::uint32_t magicValue = 0xAC71F17E;
} // namespace activity_layout

/** Assemble the application. */
isa::Program buildActivityApp(const ActivityOptions &options = {});

/** The raw assembly text. */
std::string activitySource(const ActivityOptions &options = {});

} // namespace edb::apps

#endif // EDB_APPS_ACTIVITY_HH
