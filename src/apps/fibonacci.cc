#include "apps/fibonacci.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "runtime/libedb.hh"

namespace edb::apps {

std::string
fibonacciSource(const FibonacciOptions &options)
{
    namespace lay = fibonacci_layout;
    unsigned max_nodes = options.maxNodes == 0 ? lay::poolCapacity
                                               : options.maxNodes;
    std::ostringstream s;
    s << runtime::programHeader();
    s << ".equ F_MAGIC, " << lay::magicAddr << "\n"
      << ".equ F_COUNT, " << lay::countAddr << "\n"
      << ".equ F_TAIL, " << lay::tailPtrAddr << "\n"
      << ".equ F_VIOL, " << lay::violationsAddr << "\n"
      << ".equ F_HEAD, " << lay::headAddr << "\n"
      << ".equ F_POOL, " << lay::poolAddr << "\n"
      << ".equ F_MAX, " << max_nodes << "\n"
      << ".equ F_MAGICV, " << lay::magicValue << "\n";

    s << R"(
main:
    la   r0, F_MAGIC
    ldw  r1, [r0]
    la   r2, F_MAGICV
    cmp  r1, r2
    beq  main_loop
    call fib_init

main_loop:
)";
    if (options.withCheck) {
        if (options.withGuards)
            s << "    call edb_energy_guard_begin\n";
        s << R"(
    la   r0, GPIO_TOGGLE
    li   r1, 2                 ; check indicator pin high
    stw  r1, [r0]
    call consistency_check
    la   r0, GPIO_TOGGLE
    li   r1, 2                 ; check indicator pin low
    stw  r1, [r0]
)";
        if (options.withGuards)
            s << "    call edb_energy_guard_end\n";
    }
    s << R"(
    ; main-loop indicator
    la   r0, GPIO_TOGGLE
    li   r1, 1
    stw  r1, [r0]

    ; compute the next Fibonacci number from the list tail
    la   r0, F_COUNT
    ldw  r5, [r0]              ; r5 = count
    cmpi r5, 2
    bge  __fib_from_tail
    li   r6, 1                 ; fib(1) = fib(2) = 1
    br   __fib_have
__fib_from_tail:
    la   r0, F_TAIL
    ldw  r1, [r0]              ; tail
    ldw  r2, [r1 + 8]          ; tail->value
    ldw  r1, [r1 + 4]          ; tail->prev
    ldw  r3, [r1 + 8]          ; tail->prev->value
    add  r6, r2, r3
__fib_have:

    ; stop at pool capacity
    cmpi r5, F_MAX
    bge  __done

    ; count++ first (see DESIGN.md: ordering keeps the chain
    ; traversable after an interrupted append)
    la   r0, F_COUNT
    addi r1, r5, 1
    stw  r1, [r0]

    ; node = POOL + count*16 ; node->value = fib
    shli r1, r5, 4
    la   r2, F_POOL
    add  r7, r2, r1
    stw  r6, [r7 + 8]
    mov  r1, r7
    call list_append

    ; main-loop indicator low
    la   r0, GPIO_TOGGLE
    li   r1, 1
    stw  r1, [r0]
    br   main_loop

__done:
    halt

fib_init:
    la   r0, F_HEAD
    li   r1, 0
    stw  r1, [r0]
    stw  r1, [r0 + 4]
    stw  r1, [r0 + 8]
    la   r2, F_TAIL
    stw  r0, [r2]
    la   r2, F_COUNT
    stw  r1, [r2]
    la   r2, F_VIOL
    stw  r1, [r2]
    la   r0, F_MAGIC
    la   r1, F_MAGICV
    stw  r1, [r0]
    ret

; append(list, e) -- same vulnerability window as paper Fig 3.
list_append:
    li   r0, 0
    stw  r0, [r1]
    la   r2, F_TAIL
    ldw  r3, [r2]
    stw  r3, [r1 + 4]
    stw  r1, [r3]
    stw  r1, [r2]
    ret

; consistency_check: walk the list; for node i verify
;   node->prev links back, and node->value == fib(i) recomputed
;   from scratch (cost grows quadratically with list length).
consistency_check:
    push r5
    push r6
    push r7
    la   r5, F_HEAD            ; r5 = previous node
    ldw  r6, [r5]              ; r6 = current
    li   r7, 0                 ; r7 = index
__cc_loop:
    cmpi r6, 0
    beq  __cc_tail
    addi r7, r7, 1
    ldw  r0, [r6 + 4]
    cmp  r0, r5
    bne  __cc_fail
    ; recompute fib(r7) iteratively
    li   r2, 1
    li   r3, 1
    mov  r4, r7
__cc_fib:
    cmpi r4, 3
    blt  __cc_fib_done
    add  r0, r2, r3
    mov  r2, r3
    mov  r3, r0
    addi r4, r4, -1
    br   __cc_fib
__cc_fib_done:
    ldw  r0, [r6 + 8]
    cmp  r0, r3
    bne  __cc_fail
    mov  r5, r6
    ldw  r6, [r6]
    br   __cc_loop
__cc_tail:
    la   r0, F_TAIL
    ldw  r0, [r0]
    cmp  r0, r5
    bne  __cc_fail
    pop  r7
    pop  r6
    pop  r5
    ret
__cc_fail:
)";
    if (options.assertOnViolation) {
        s << "    li   r1, " << fibonacci_ids::assertCheckFailed << "\n"
          << "    call edb_assert_fail\n";
    } else {
        s << R"(
    la   r0, F_VIOL
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
)";
    }
    s << R"(
    pop  r7
    pop  r6
    pop  r5
    ret
)";
    s << runtime::libedbSource();
    return s.str();
}

isa::Program
buildFibonacciApp(const FibonacciOptions &options)
{
    return isa::assemble(fibonacciSource(options));
}

} // namespace edb::apps
