/**
 * @file
 * The linked-list intermittence-bug application (paper Figs 3, 6, 7).
 *
 * Maintains a doubly-linked list in non-volatile memory with the
 * paper's exact append/remove code. `append` has a vulnerability
 * window: a power failure after `tail->next = e` but before
 * `tail = e` leaves the tail pointer stale. A later `remove` of the
 * half-appended node takes the else-branch, dereferences its NULL
 * `next` pointer and writes through a wild pointer — undefined
 * behaviour that cannot occur under continuous power.
 *
 * The main loop toggles GPIO pin 0 at its start and end so external
 * instruments can see whether the loop is still alive (Fig 7).
 */

#ifndef EDB_APPS_LINKED_LIST_HH
#define EDB_APPS_LINKED_LIST_HH

#include "isa/program.hh"

namespace edb::apps {

/** Build options for the linked-list application. */
struct LinkedListOptions
{
    /** Insert the keep-alive assert (tail->next == NULL) at the top
     *  of each iteration (paper Section 5.3.1 diagnosis). */
    bool withAssert = false;
    /** Take a hardware checkpoint at the top of each iteration
     *  (the paper Fig 3 configuration). */
    bool withCheckpoint = false;
    /** Indicate loop progress by blinking the LED instead of the
     *  GPIO pin (the energy-interfering ad hoc tracing baseline of
     *  Section 2.2). */
    bool ledTracing = false;
};

/** Watchpoint/assert ids used by the application. */
namespace linked_list_ids {
constexpr unsigned assertTailConsistent = 1;
}

/** FRAM data addresses (for debugger inspection in tests/examples). */
namespace linked_list_layout {
constexpr std::uint32_t magicAddr = 0x5000;
constexpr std::uint32_t tailPtrAddr = 0x5004;
constexpr std::uint32_t iterCountAddr = 0x500C;
constexpr std::uint32_t headAddr = 0x5010;
constexpr std::uint32_t poolAddr = 0x5100;
constexpr std::uint32_t bufsAddr = 0x2000; ///< SRAM buffers.
constexpr std::uint32_t nodeNextOff = 0;
constexpr std::uint32_t nodePrevOff = 4;
constexpr std::uint32_t nodeValueOff = 8;
constexpr std::uint32_t nodeBufOff = 12;
constexpr std::uint32_t magicValue = 0xBEEF1234;
} // namespace linked_list_layout

/** Assemble the application. */
isa::Program buildLinkedListApp(const LinkedListOptions &options = {});

/** The raw assembly text (for inspection / assembler tests). */
std::string linkedListSource(const LinkedListOptions &options = {});

} // namespace edb::apps

#endif // EDB_APPS_LINKED_LIST_HH
