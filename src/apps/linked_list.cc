#include "apps/linked_list.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "runtime/libedb.hh"

namespace edb::apps {

std::string
linkedListSource(const LinkedListOptions &options)
{
    namespace lay = linked_list_layout;
    std::ostringstream s;
    s << runtime::programHeader();
    s << ".equ MAGIC_ADDR, " << lay::magicAddr << "\n"
      << ".equ TAILPTR, " << lay::tailPtrAddr << "\n"
      << ".equ ITERS, " << lay::iterCountAddr << "\n"
      << ".equ HEAD, " << lay::headAddr << "\n"
      << ".equ POOL, " << lay::poolAddr << "\n"
      << ".equ BUFS, " << lay::bufsAddr << "\n"
      << ".equ MAGIC_VAL, " << lay::magicValue << "\n";

    // Loop progress indicator: GPIO pin 0 or the LED baseline (the
    // LED must stay lit long enough to be visible, hence the delay
    // loop -- that is exactly why it is so expensive).
    int blip_count = 0;
    auto blip = [&blip_count, &options]() -> std::string {
        if (!options.ledTracing) {
            return R"(
    la   r0, GPIO_TOGGLE
    li   r1, 1
    stw  r1, [r0]
)";
        }
        std::string label =
            "__blip_delay_" + std::to_string(blip_count++);
        return "\n    la   r0, LED\n"
               "    li   r1, 1\n"
               "    stw  r1, [r0]\n"
               "    li   r2, 40\n" +
               label +
               ":\n"
               "    addi r2, r2, -1\n"
               "    cmpi r2, 0\n"
               "    bne  " +
               label +
               "\n"
               "    li   r1, 0\n"
               "    stw  r1, [r0]\n";
    };

    s << R"(
main:
    la   r0, MAGIC_ADDR
    ldw  r1, [r0]
    la   r2, MAGIC_VAL
    cmp  r1, r2
    beq  main_loop
    call list_init

; Paper Section 5.3.1: "On each iteration of the main loop, a node
; is appended to the linked list if the list is empty or removed
; from the list otherwise."
main_loop:
)";
    if (options.withCheckpoint)
        s << "    chkpt\n";
    s << blip();
    if (options.withAssert) {
        // The paper's invariant: "the tail pointer points to the
        // last element in the list" (Fig 6). For the 0/1-element
        // list: empty => tail == &head; else tail == head.next.
        s << R"(
    la   r0, HEAD
    ldw  r1, [r0]
    la   r2, TAILPTR
    ldw  r2, [r2]
    cmpi r1, 0
    bne  __a_nonempty
    la   r3, HEAD
    cmp  r2, r3
    beq  __assert_ok
    br   __assert_fire
__a_nonempty:
    cmp  r2, r1
    beq  __assert_ok
__assert_fire:
    li   r1, )" << linked_list_ids::assertTailConsistent << R"(
    call edb_assert_fail
__assert_ok:
)";
    }
    s << R"(
    la   r0, HEAD
    ldw  r6, [r0]              ; r6 = head->next
    cmpi r6, 0
    bne  __do_remove

    ; list empty: update(e) then append(list, e)
    la   r6, POOL
    ldw  r0, [r6 + 8]          ; e->value++
    addi r0, r0, 1
    stw  r0, [r6 + 8]
    ldw  r2, [r6 + 12]         ; scribble e's volatile buffer
    li   r3, 4
__memset_loop:
    stw  r0, [r2]
    addi r2, r2, 4
    addi r3, r3, -1
    cmpi r3, 0
    bne  __memset_loop
    mov  r1, r6
    call list_append
    br   __iter_done

__do_remove:
    mov  r1, r6                ; e = first element
    call list_remove

__iter_done:
    la   r0, ITERS
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]
)" << blip() << R"(
    br   main_loop

; list_init: empty list (sentinel head, tail -> head), one pool node
; whose data buffer lives in volatile SRAM.
list_init:
    la   r0, HEAD
    li   r1, 0
    stw  r1, [r0]
    stw  r1, [r0 + 4]
    la   r2, TAILPTR
    stw  r0, [r2]
    la   r2, ITERS
    stw  r1, [r2]
    la   r2, POOL
    stw  r1, [r2]              ; node.next = 0
    stw  r1, [r2 + 4]          ; node.prev = 0
    stw  r1, [r2 + 8]          ; node.value = 0
    la   r3, BUFS
    stw  r3, [r2 + 12]         ; node.buf -> SRAM
    la   r0, MAGIC_ADDR
    la   r1, MAGIC_VAL
    stw  r1, [r0]
    ret

; append(list, e) -- paper Fig 3, verbatim structure:
;   e->next = NULL
;   e->prev = list->tail
;   list->tail->next = e
;   list->tail = e          <-- power failure before this line
;                               leaves the tail pointer stale
list_append:
    li   r0, 0
    stw  r0, [r1]
    la   r2, TAILPTR
    ldw  r3, [r2]
    stw  r3, [r1 + 4]
    stw  r1, [r3]
    stw  r1, [r2]
    ret

; remove(list, e) -- paper Fig 3:
;   if (e == list->tail) tail = e->prev
;   else e->next->prev = e->prev   <-- wild write when e->next==NULL
;   e->prev->next = e->next
; (This compilation orders the tail update before the unlink store,
; so *either* interruption window -- here or in append -- leaves the
; paper's signature corruption: a stale tail pointing at the
; penultimate element while the half-linked node has next == NULL.)
list_remove:
    la   r0, TAILPTR
    ldw  r2, [r0]
    cmp  r1, r2
    bne  __remove_else
    ldw  r2, [r1 + 4]
    stw  r2, [r0]              ; tail = e->prev
    ; >>> power failure window: e still linked from e->prev <<<
    ldw  r2, [r1 + 4]
    ldw  r3, [r1]
    stw  r3, [r2]              ; e->prev->next = e->next
    ret
__remove_else:
    ldw  r2, [r1 + 4]          ; e->prev
    ldw  r3, [r1]              ; e->next (NULL when corrupted!)
    stw  r2, [r3 + 4]          ; e->next->prev = e->prev  (wild write)
    stw  r3, [r2]              ; e->prev->next = e->next
    ret
)";
    s << runtime::libedbSource();
    return s.str();
}

isa::Program
buildLinkedListApp(const LinkedListOptions &options)
{
    return isa::assemble(linkedListSource(options));
}

} // namespace edb::apps
