#include "apps/rfid_firmware.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "rfid/protocol.hh"
#include "runtime/libedb.hh"

namespace edb::apps {

std::string
rfidFirmwareSource(const RfidFirmwareOptions &options)
{
    namespace lay = rfid_layout;
    std::ostringstream s;
    s << runtime::programHeader();
    s << ".equ R_MAGIC, " << lay::magicAddr << "\n"
      << ".equ R_DECODED, " << lay::decodedAddr << "\n"
      << ".equ R_REPLIED, " << lay::repliedAddr << "\n"
      << ".equ R_MAGICV, " << lay::magicValue << "\n"
      << ".equ MSG_QUERY, "
      << unsigned(rfid::MsgType::CmdQuery) << "\n"
      << ".equ MSG_QUERYREP, "
      << unsigned(rfid::MsgType::CmdQueryRep) << "\n"
      << ".equ MSG_RSP, "
      << unsigned(rfid::MsgType::RspGeneric) << "\n"
      << ".equ DECODE_LOOPS, " << options.decodeCostLoops << "\n";

    s << R"(
main:
    la   r0, R_MAGIC
    ldw  r1, [r0]
    la   r2, R_MAGICV
    cmp  r1, r2
    beq  main_loop
    li   r1, 0
    la   r0, R_DECODED
    stw  r1, [r0]
    la   r0, R_REPLIED
    stw  r1, [r0]
    la   r0, R_MAGIC
    la   r1, R_MAGICV
    stw  r1, [r0]

main_loop:
    ; poll the demodulator for a frame
    la   r0, RF_RXST
    ldw  r1, [r0]
    cmpi r1, 0
    beq  main_loop

    ; software decode: read the command type, drain the payload
    la   r0, RF_RXBYTE
    ldw  r5, [r0]              ; r5 = type byte
    ldw  r1, [r0]              ; payload byte 0 (slot index)
    ldw  r1, [r0]              ; payload byte 1 (session)

    ; decode-cost loop (bit-level decoding work in the real firmware)
    li   r2, DECODE_LOOPS
__decode_work:
    addi r2, r2, -1
    cmpi r2, 0
    bne  __decode_work

    cmpi r5, MSG_QUERY
    beq  __reply
    cmpi r5, MSG_QUERYREP
    beq  __reply
    br   main_loop

__reply:
    la   r0, R_DECODED
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]

    ; assemble the reply frame: RSP_GENERIC + 12-byte EPC
    la   r0, RF_TXBYTE
    li   r1, MSG_RSP
    stw  r1, [r0]
    la   r2, EPC
    li   r3, 12
__tx_loop:
    ldb  r1, [r2]
    stw  r1, [r0]
    addi r2, r2, 1
    addi r3, r3, -1
    cmpi r3, 0
    bne  __tx_loop
    la   r0, RF_TXCTRL
    li   r1, 1
    stw  r1, [r0]
    la   r0, RF_TXST
__tx_wait:
    ldw  r1, [r0]
    cmpi r1, 0
    bne  __tx_wait

    la   r0, R_REPLIED
    ldw  r1, [r0]
    addi r1, r1, 1
    stw  r1, [r0]

    ; reply indicator
    la   r0, GPIO_TOGGLE
    li   r1, 1
    stw  r1, [r0]
)";
    if (options.withWatchpoints) {
        s << "    li   r1, " << rfid_ids::wpReplied << "\n"
          << "    call edb_watchpoint\n";
    }
    s << "    br   main_loop\n\nEPC:\n";
    s << ".byte ";
    for (std::size_t i = 0; i < wispEpc.size(); ++i) {
        s << unsigned(wispEpc[i])
          << (i + 1 < wispEpc.size() ? ", " : "\n");
    }
    s << ".align\n";
    s << runtime::libedbSource();
    return s.str();
}

isa::Program
buildRfidFirmware(const RfidFirmwareOptions &options)
{
    return isa::assemble(rfidFirmwareSource(options));
}

} // namespace edb::apps
