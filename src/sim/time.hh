/**
 * @file
 * Simulation time base.
 *
 * All simulated time is kept as an integral number of picoseconds in a
 * 64-bit signed counter (`Tick`). A picosecond base keeps every clock
 * used in the system integral (the 4 MHz MCU cycle is 250'000 ticks, a
 * 115200 baud UART bit is 8'680'555 ticks with < 1 ppm error) while
 * still covering +/- 106 days of simulated time.
 */

#ifndef EDB_SIM_TIME_HH
#define EDB_SIM_TIME_HH

#include <cstdint>

namespace edb::sim {

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** Ticks per common time units. */
constexpr Tick onePs = 1;
constexpr Tick oneNs = 1'000;
constexpr Tick oneUs = 1'000'000;
constexpr Tick oneMs = 1'000'000'000;
constexpr Tick oneSec = 1'000'000'000'000;

/** Convert a floating point duration in seconds to ticks (rounded). */
constexpr Tick
ticksFromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(oneSec) + 0.5);
}

/** Convert ticks to a floating point duration in seconds. */
constexpr double
secondsFromTicks(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(oneSec);
}

/** Convert ticks to a floating point duration in milliseconds. */
constexpr double
millisFromTicks(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(oneMs);
}

/** Convert ticks to a floating point duration in microseconds. */
constexpr double
microsFromTicks(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(oneUs);
}

/** A tick value that compares later than any schedulable event. */
constexpr Tick maxTick = INT64_MAX;

} // namespace edb::sim

#endif // EDB_SIM_TIME_HH
