/**
 * @file
 * Local-time cursor for components that execute ahead of the event
 * clock.
 *
 * The MCU interpreter runs bounded slices of instructions inside one
 * event callback, advancing a local clock while `Simulator::now()`
 * stays at the slice start. Peripherals poked by those instructions
 * must timestamp their side effects (UART byte completion, ADC
 * conversion done) against the *local* clock, so they consult the
 * shared `TimeCursor` instead of `Simulator::now()`.
 */

#ifndef EDB_SIM_TIME_CURSOR_HH
#define EDB_SIM_TIME_CURSOR_HH

#include <algorithm>

#include "sim/simulator.hh"
#include "sim/time.hh"

namespace edb::sim {

/** Tracks max(event clock, executing component's local clock). */
class TimeCursor
{
  public:
    explicit TimeCursor(Simulator &simulator) : sim_(simulator) {}

    /** Best-known current time. */
    Tick
    now() const
    {
        return std::max(sim_.now(), local);
    }

    /** Advance the local clock (monotonic; lower values ignored). */
    void
    advance(Tick t)
    {
        local = std::max(local, t);
    }

    /** Schedule a callback `delay` after the cursor's current time. */
    EventId
    scheduleIn(Tick delay, EventQueue::Callback cb)
    {
        return sim_.schedule(now() + (delay < 0 ? 0 : delay),
                             std::move(cb));
    }

    Simulator &simulator() { return sim_; }

    /** Raw local clock (snapshot save). */
    Tick localTime() const { return local; }

    /** Force the local clock (snapshot restore only). */
    void restoreLocal(Tick t) { local = t; }

  private:
    Simulator &sim_;
    Tick local = 0;
};

} // namespace edb::sim

#endif // EDB_SIM_TIME_CURSOR_HH
