#include "sim/fault.hh"

#include "sim/snapshot.hh"

namespace edb::sim {

std::vector<std::uint8_t>
ClientWireFaults::onFrame(const std::vector<std::uint8_t> &frame)
{
    if (!plan_.enabled)
        return frame;
    // Trigger check precedes the count so disconnectAfterFrames=N
    // lets exactly N frames through: the plan promises a disconnect
    // *after* N frames, not in place of the Nth.
    if (wantsDisconnect()) {
        // Past the disconnect trigger nothing else goes out.
        ++stats_.disconnects;
        return {};
    }
    ++stats_.frames;
    std::vector<std::uint8_t> out;
    if (rng.chance(plan_.garbageProb)) {
        const int n = static_cast<int>(rng.uniformInt(1, 16));
        for (int i = 0; i < n; ++i) {
            out.push_back(static_cast<std::uint8_t>(
                rng.uniformInt(0, 255)));
        }
        stats_.garbageBytes += static_cast<std::uint64_t>(n);
    }
    if (rng.chance(plan_.replayProb) && !lastFrame.empty()) {
        ++stats_.replayed;
        out.insert(out.end(), lastFrame.begin(), lastFrame.end());
    }
    if (rng.chance(plan_.dropProb)) {
        ++stats_.dropped;
        return out;
    }
    std::vector<std::uint8_t> body = frame;
    if (rng.chance(plan_.corruptProb) && !body.empty()) {
        ++stats_.corrupted;
        const std::size_t at = rng.uniformInt(
            0, static_cast<std::uint32_t>(body.size() - 1));
        body[at] ^=
            static_cast<std::uint8_t>(1u << rng.uniformInt(0, 7));
    }
    if (rng.chance(plan_.truncateProb) && body.size() > 1) {
        ++stats_.truncated;
        body.resize(rng.uniformInt(
            1, static_cast<std::uint32_t>(body.size() - 1)));
    }
    out.insert(out.end(), body.begin(), body.end());
    if (rng.chance(plan_.dupProb)) {
        ++stats_.duplicated;
        out.insert(out.end(), body.begin(), body.end());
    }
    lastFrame = std::move(body);
    return out;
}

FaultInjector::FaultInjector(Simulator &simulator,
                             std::string component_name,
                             FaultPlan fault_plan)
    : Component(simulator, std::move(component_name)),
      plan_(std::move(fault_plan)),
      rng(plan_.seed)
{
}

FaultInjector::WireResult
FaultInjector::onWire(std::uint8_t byte)
{
    WireResult r;
    r.bytes[0] = byte;
    if (!plan_.enabled)
        return r;
    ++stats_.wireBytes;
    if (rng.chance(plan_.uartDropProb)) {
        ++stats_.dropped;
        r.count = 0;
        return r;
    }
    if (rng.chance(plan_.uartCorruptProb)) {
        ++stats_.corrupted;
        r.bytes[0] =
            byte ^ static_cast<std::uint8_t>(
                       1u << rng.uniformInt(0, 7));
    }
    if (rng.chance(plan_.uartDupProb)) {
        ++stats_.duplicated;
        r.bytes[1] = r.bytes[0];
        r.count = 2;
    }
    return r;
}

double
FaultInjector::onAdc(double volts)
{
    if (!plan_.enabled || !rng.chance(plan_.adcGlitchProb))
        return volts;
    ++stats_.adcGlitches;
    return volts + rng.uniform(-plan_.adcGlitchMagnitudeVolts,
                               plan_.adcGlitchMagnitudeVolts);
}

bool
FaultInjector::inFade(Tick when) const
{
    if (!plan_.enabled)
        return false;
    for (const auto &w : plan_.fades) {
        if (when >= w.start && when < w.start + w.length)
            return true;
    }
    return false;
}

bool
FaultInjector::inFadeSeconds(double seconds) const
{
    return inFade(ticksFromSeconds(seconds));
}

void
FaultInjector::fireBrownOut()
{
    ++stats_.brownOutsForced;
    if (brownOutFn)
        brownOutFn();
}

void
FaultInjector::armBrownOuts(std::function<void()> fire)
{
    brownOutFn = std::move(fire);
    if (!plan_.enabled)
        return;
    for (Tick at : plan_.brownOutAtTick) {
        if (at < now())
            continue;
        EventId id = sim().schedule(at, [this] { fireBrownOut(); });
        armed_.emplace_back(id, at);
    }
}

void
FaultInjector::onInstruction()
{
    if (!plan_.enabled || plan_.brownOutAtInstr == 0)
        return;
    if (++instrCount == plan_.brownOutAtInstr) {
        ++stats_.brownOutsForced;
        if (brownOutFn)
            brownOutFn();
    }
}

void
FaultInjector::onNvCommitWord()
{
    if (!plan_.enabled)
        return;
    ++stats_.nvCommitWords;
    if (plan_.nvTearAtCommitWord != 0 &&
        ++nvCommitWordCount == plan_.nvTearAtCommitWord) {
        ++stats_.nvTears;
        ++stats_.brownOutsForced;
        if (brownOutFn)
            brownOutFn();
    }
}

bool
FaultInjector::onTornWord(std::uint32_t &word)
{
    if (!plan_.enabled || !rng.chance(plan_.nvTornCorruptProb))
        return false;
    ++stats_.nvTornWordsCorrupted;
    const int flips = static_cast<int>(rng.uniformInt(1, 4));
    for (int i = 0; i < flips; ++i)
        word ^= 1u << rng.uniformInt(0, 31);
    return true;
}

void
FaultInjector::saveState(SnapshotWriter &w) const
{
    w.section("fault");
    w.rng(rng);
    w.u64(instrCount);
    w.u64(nvCommitWordCount);
    w.u64(stats_.wireBytes);
    w.u64(stats_.corrupted);
    w.u64(stats_.dropped);
    w.u64(stats_.duplicated);
    w.u64(stats_.adcGlitches);
    w.u64(stats_.brownOutsForced);
    w.u64(stats_.nvCommitWords);
    w.u64(stats_.nvTears);
    w.u64(stats_.nvTornWordsCorrupted);
    // Only brown-outs still in the future are queue residue; fired
    // ones linger in armed_ but are history, not pending state.
    std::uint32_t live = 0;
    for (const auto &[id, when] : armed_) {
        if (when > now())
            ++live;
    }
    w.u32(live);
    for (const auto &[id, when] : armed_) {
        if (when > now())
            w.pendingEvent(id, when);
    }
}

void
FaultInjector::restoreState(SnapshotReader &r, EventRearmer &rearmer)
{
    r.section("fault");
    r.rng(rng);
    instrCount = r.u64();
    nvCommitWordCount = r.u64();
    stats_.wireBytes = r.u64();
    stats_.corrupted = r.u64();
    stats_.dropped = r.u64();
    stats_.duplicated = r.u64();
    stats_.adcGlitches = r.u64();
    stats_.brownOutsForced = r.u64();
    stats_.nvCommitWords = r.u64();
    stats_.nvTears = r.u64();
    stats_.nvTornWordsCorrupted = r.u64();
    for (const auto &[id, when] : armed_) {
        if (when > now())
            sim().cancel(id);
    }
    armed_.clear();
    std::uint32_t live = r.u32();
    for (std::uint32_t i = 0; i < live && r.ok(); ++i) {
        r.pendingEvent(
            rearmer, [this] { fireBrownOut(); },
            [this](EventId id, Tick due) {
                if (id != invalidEventId)
                    armed_.emplace_back(id, due);
            });
    }
}

} // namespace edb::sim
