#include "sim/fault.hh"

namespace edb::sim {

FaultInjector::FaultInjector(Simulator &simulator,
                             std::string component_name,
                             FaultPlan fault_plan)
    : Component(simulator, std::move(component_name)),
      plan_(std::move(fault_plan)),
      rng(plan_.seed)
{
}

FaultInjector::WireResult
FaultInjector::onWire(std::uint8_t byte)
{
    WireResult r;
    r.bytes[0] = byte;
    if (!plan_.enabled)
        return r;
    ++stats_.wireBytes;
    if (rng.chance(plan_.uartDropProb)) {
        ++stats_.dropped;
        r.count = 0;
        return r;
    }
    if (rng.chance(plan_.uartCorruptProb)) {
        ++stats_.corrupted;
        r.bytes[0] =
            byte ^ static_cast<std::uint8_t>(
                       1u << rng.uniformInt(0, 7));
    }
    if (rng.chance(plan_.uartDupProb)) {
        ++stats_.duplicated;
        r.bytes[1] = r.bytes[0];
        r.count = 2;
    }
    return r;
}

double
FaultInjector::onAdc(double volts)
{
    if (!plan_.enabled || !rng.chance(plan_.adcGlitchProb))
        return volts;
    ++stats_.adcGlitches;
    return volts + rng.uniform(-plan_.adcGlitchMagnitudeVolts,
                               plan_.adcGlitchMagnitudeVolts);
}

bool
FaultInjector::inFade(Tick when) const
{
    if (!plan_.enabled)
        return false;
    for (const auto &w : plan_.fades) {
        if (when >= w.start && when < w.start + w.length)
            return true;
    }
    return false;
}

bool
FaultInjector::inFadeSeconds(double seconds) const
{
    return inFade(ticksFromSeconds(seconds));
}

void
FaultInjector::armBrownOuts(std::function<void()> fire)
{
    brownOutFn = std::move(fire);
    if (!plan_.enabled)
        return;
    for (Tick at : plan_.brownOutAtTick) {
        if (at < now())
            continue;
        sim().schedule(at, [this] {
            ++stats_.brownOutsForced;
            if (brownOutFn)
                brownOutFn();
        });
    }
}

void
FaultInjector::onInstruction()
{
    if (!plan_.enabled || plan_.brownOutAtInstr == 0)
        return;
    if (++instrCount == plan_.brownOutAtInstr) {
        ++stats_.brownOutsForced;
        if (brownOutFn)
            brownOutFn();
    }
}

} // namespace edb::sim
