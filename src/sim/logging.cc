#include "sim/logging.hh"

namespace edb::sim {

namespace {
LogLevel globalLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (level > globalLevel && tag != "panic")
        return;
    std::fprintf(stderr, "[%s] %s\n", tag.c_str(), msg.c_str());
}

} // namespace detail

} // namespace edb::sim
