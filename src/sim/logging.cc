#include "sim/logging.hh"

namespace edb::sim {

namespace {

StderrSink &
defaultSink()
{
    static StderrSink sink;
    return sink;
}

} // namespace

Logger &
globalLogger()
{
    static Logger logger(LogLevel::Warn, &defaultSink());
    return logger;
}

LogLevel
logLevel()
{
    return globalLogger().level();
}

void
setLogLevel(LogLevel level)
{
    globalLogger().setLevel(level);
}

void
Logger::write(LogLevel level, const std::string &tag,
              const std::string &msg)
{
    LogSink *s = sink_;
    if (s == nullptr)
        s = &defaultSink();
    s->write(level, tag, msg);
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (level > globalLogger().level() && tag != "panic")
        return;
    globalLogger().write(level, tag, msg);
}

} // namespace detail

} // namespace edb::sim
