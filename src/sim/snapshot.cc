#include "sim/snapshot.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>

namespace edb::sim {

namespace {

const std::uint32_t *
crcTable()
{
    // Magic-static initialization: thread-safe under C++11 (fleet
    // worker threads snapshot worlds concurrently). The previous
    // lazily-flagged fill raced when two shards took their first
    // snapshot at once.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

constexpr std::uint8_t sectionMark = 0xA5;
constexpr std::size_t headerSize = 8 + 4 + 4 + 4;

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    const std::uint32_t *table = crcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
SnapshotWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
SnapshotWriter::bytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf.insert(buf.end(), p, p + len);
}

void
SnapshotWriter::blob(const void *data, std::size_t len)
{
    u64(len);
    bytes(data, len);
}

void
SnapshotWriter::section(const char *tag)
{
    std::size_t len = std::strlen(tag);
    u8(sectionMark);
    u8(static_cast<std::uint8_t>(len));
    bytes(tag, len);
}

void
SnapshotWriter::rng(const Rng &r)
{
    Mt64::State s = r.exportState();
    section("rng");
    for (std::uint64_t w : s.state)
        u64(w);
    for (std::uint64_t w : s.out)
        u64(w);
    u32(s.index);
}

void
SnapshotWriter::pendingEvent(EventId savedId, Tick when)
{
    boolean(savedId != invalidEventId);
    if (savedId != invalidEventId) {
        u64(savedId);
        tick(when);
    }
}

std::vector<std::uint8_t>
SnapshotWriter::finish() const
{
    std::vector<std::uint8_t> image;
    image.reserve(headerSize + buf.size());
    image.insert(image.end(), magic, magic + 8);
    auto push32 = [&image](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            image.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    push32(version);
    push32(static_cast<std::uint32_t>(buf.size()));
    push32(crc32(buf.data(), buf.size()));
    image.insert(image.end(), buf.begin(), buf.end());
    return image;
}

bool
SnapshotWriter::writeFile(const std::string &path) const
{
    std::vector<std::uint8_t> image = finish();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    return static_cast<bool>(out);
}

bool
SnapshotReader::load(std::vector<std::uint8_t> image)
{
    fail_ = true;
    payload.clear();
    pos = 0;
    if (image.size() < headerSize)
        return false;
    if (std::memcmp(image.data(), SnapshotWriter::magic, 8) != 0)
        return false;
    auto read32 = [&image](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(image[at + i]) << (8 * i);
        return v;
    };
    if (read32(8) != SnapshotWriter::version)
        return false;
    std::uint32_t len = read32(12);
    std::uint32_t crc = read32(16);
    if (image.size() != headerSize + len)
        return false;
    if (crc32(image.data() + headerSize, len) != crc)
        return false;
    payload.assign(image.begin() + headerSize, image.end());
    fail_ = false;
    return true;
}

bool
SnapshotReader::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return load(std::move(image));
}

bool
SnapshotReader::need(std::size_t n)
{
    if (fail_ || payload.size() - pos < n) {
        fail_ = true;
        return false;
    }
    return true;
}

std::uint8_t
SnapshotReader::u8()
{
    if (!need(1))
        return 0;
    return payload[pos++];
}

std::uint32_t
SnapshotReader::u32()
{
    if (!need(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(payload[pos + i]) << (8 * i);
    pos += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    if (!need(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(payload[pos + i]) << (8 * i);
    pos += 8;
    return v;
}

double
SnapshotReader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
SnapshotReader::bytes(void *out, std::size_t len)
{
    if (!need(len)) {
        std::memset(out, 0, len);
        return;
    }
    std::memcpy(out, payload.data() + pos, len);
    pos += len;
}

std::vector<std::uint8_t>
SnapshotReader::blob()
{
    std::uint64_t len = u64();
    std::vector<std::uint8_t> out;
    if (!need(len))
        return out;
    out.assign(payload.begin() + static_cast<std::ptrdiff_t>(pos),
               payload.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return out;
}

bool
SnapshotReader::section(const char *tag)
{
    std::size_t want = std::strlen(tag);
    if (u8() != sectionMark) {
        fail_ = true;
        return false;
    }
    std::size_t len = u8();
    if (len != want || !need(len)) {
        fail_ = true;
        return false;
    }
    if (std::memcmp(payload.data() + pos, tag, len) != 0) {
        fail_ = true;
        return false;
    }
    pos += len;
    return true;
}

void
SnapshotReader::rng(Rng &r)
{
    section("rng");
    Mt64::State s{};
    for (std::uint64_t &w : s.state)
        w = u64();
    for (std::uint64_t &w : s.out)
        w = u64();
    s.index = u32();
    if (ok())
        r.importState(s);
}

void
SnapshotReader::pendingEvent(EventRearmer &rearmer,
                             EventQueue::Callback cb,
                             std::function<void(EventId, Tick)> assign)
{
    if (!boolean()) {
        assign(invalidEventId, 0);
        return;
    }
    EventId savedId = u64();
    Tick when = tick();
    if (!ok()) {
        assign(invalidEventId, 0);
        return;
    }
    rearmer.add(savedId, when, std::move(cb), std::move(assign));
}

void
EventRearmer::flush()
{
    std::sort(pending.begin(), pending.end(),
              [](const Pending &a, const Pending &b) {
                  return a.savedId < b.savedId;
              });
    for (auto &p : pending) {
        EventId fresh = sim_.schedule(p.when, std::move(p.cb));
        if (p.assign)
            p.assign(fresh, p.when);
    }
    pending.clear();
}

} // namespace edb::sim
