/**
 * @file
 * Top-level simulation driver.
 *
 * A `Simulator` owns the event queue, the global clock and the
 * deterministic RNG. Components register themselves so the simulator
 * can enumerate them for diagnostics; ownership of components stays
 * with the caller (typically a device assembly such as `target::Wisp`
 * or `edbdbg::EdbBoard`).
 */

#ifndef EDB_SIM_SIMULATOR_HH
#define EDB_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace edb::sim {

class Component;

/**
 * Event-driven simulation kernel.
 *
 * Time only advances inside `run*` calls, driven by the event queue.
 * Long-running components (the MCU interpreter) run in bounded slices
 * and re-schedule themselves, so other events interleave correctly.
 */
class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1) : rngState(seed) {}

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Deterministic RNG shared by all stochastic models. */
    Rng &rng() { return rngState; }
    const Rng &rng() const { return rngState; }

    /**
     * World-owned logger. Defaults to the process-wide stderr sink
     * at Warn; a fleet supervisor re-points it at a shared
     * thread-safe aggregating sink so concurrently running worlds
     * never contend on (or interleave in) stderr.
     */
    Logger &logger() { return logger_; }
    const Logger &logger() const { return logger_; }

    /** Schedule a callback at an absolute time (must be >= now). */
    EventId
    schedule(Tick when, EventQueue::Callback cb)
    {
        return events.schedule(when < currentTick ? currentTick : when,
                               std::move(cb));
    }

    /** Schedule a callback `delay` ticks in the future. */
    EventId
    scheduleIn(Tick delay, EventQueue::Callback cb)
    {
        return schedule(currentTick + (delay < 0 ? 0 : delay),
                        std::move(cb));
    }

    /** Cancel a scheduled event. */
    bool cancel(EventId id) { return events.cancel(id); }

    /** Time of the next pending event (maxTick when idle). */
    Tick nextEventTime() { return events.nextTime(); }

    /**
     * Run until the event queue drains or `until` is reached,
     * whichever comes first. Events exactly at `until` do fire.
     * @return the simulated time after the run.
     */
    Tick
    runUntil(Tick until)
    {
        stopping = false;
        while (!stopping) {
            Tick next = events.nextTime();
            if (next > until) {
                if (until > currentTick)
                    currentTick = until;
                break;
            }
            EventQueue::Callback cb;
            Tick when = currentTick;
            if (!events.popNext(when, cb)) {
                if (until > currentTick)
                    currentTick = until;
                break;
            }
            // The clock advances before the callback runs, so
            // now() is exact inside event handlers.
            currentTick = when;
            cb();
        }
        return currentTick;
    }

    /** Run for a relative duration. */
    Tick runFor(Tick duration) { return runUntil(currentTick + duration); }

    /** Run until the event queue is exhausted. */
    Tick
    runToCompletion()
    {
        stopping = false;
        while (!stopping && !events.empty()) {
            EventQueue::Callback cb;
            Tick when = currentTick;
            if (!events.popNext(when, cb))
                break;
            currentTick = when;
            cb();
        }
        return currentTick;
    }

    /** Request that the current `run*` call return after this event. */
    void stop() { stopping = true; }

    /**
     * Force the event clock (snapshot restore only). Must not be
     * called while a `run*` call is in progress, and the caller is
     * responsible for rescheduling any pending events consistently.
     */
    void restoreClock(Tick t) { currentTick = t; }

    /** Register a component for enumeration (non-owning). */
    void addComponent(Component *component)
    {
        componentList.push_back(component);
    }

    /** All registered components (non-owning). */
    const std::vector<Component *> &components() const
    {
        return componentList;
    }

  private:
    EventQueue events;
    Tick currentTick = 0;
    bool stopping = false;
    Rng rngState;
    Logger logger_;
    std::vector<Component *> componentList;
};

/**
 * Base class for named simulation components.
 *
 * Provides the back-pointer to the owning simulator and a
 * hierarchical name used in logs and traces.
 */
class Component
{
  public:
    Component(Simulator &simulator, std::string component_name)
        : sim_(simulator), name_(std::move(component_name))
    {
        sim_.addComponent(this);
    }

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Component instance name. */
    const std::string &name() const { return name_; }

    /** Owning simulator. */
    Simulator &sim() { return sim_; }
    const Simulator &sim() const { return sim_; }

    /** Current simulated time (convenience). */
    Tick now() const { return sim_.now(); }

    /** World-owned logger (convenience). */
    Logger &logger() { return sim_.logger(); }

  private:
    Simulator &sim_;
    std::string name_;
};

} // namespace edb::sim

#endif // EDB_SIM_SIMULATOR_HH
