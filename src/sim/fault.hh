/**
 * @file
 * Deterministic fault injection.
 *
 * A `FaultInjector` perturbs a running simulation according to a
 * `FaultPlan`: corrupting, dropping or duplicating debug-UART bytes,
 * glitching EDB's ADC samples, blanking the harvester during RF fade
 * windows, and forcing target brown-outs at chosen ticks or
 * instruction counts. Each plan carries its own seed and the injector
 * owns a private `Rng`, so fault sequences are reproducible and,
 * crucially, an injector that is disabled (or absent) perturbs
 * nothing — not even the simulator's shared random stream.
 *
 * The injector is deliberately generic: it knows nothing about
 * energy, UARTs or MCUs. Subsystems opt in by routing values through
 * its hooks (`EdbBoard::injectFaults`, `energy::FadedHarvester`, an
 * MCU tracer calling `onInstruction`).
 */

#ifndef EDB_SIM_FAULT_HH
#define EDB_SIM_FAULT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"

namespace edb::sim {

class SnapshotWriter;
class SnapshotReader;
class EventRearmer;

/** A window during which the ambient energy source is gone. */
struct FadeWindow
{
    Tick start = 0;
    Tick length = 0;
};

/** Everything a fault scenario is allowed to do, plus its seed. */
struct FaultPlan
{
    /** Seeds the injector's private random stream. */
    std::uint64_t seed = 1;
    /** Master switch; a disabled plan injects nothing. */
    bool enabled = true;

    /// @name Debug-UART wire faults (per byte, either direction)
    /// @{
    double uartCorruptProb = 0.0; ///< Flip a random bit.
    double uartDropProb = 0.0;    ///< Byte never arrives.
    double uartDupProb = 0.0;     ///< Byte delivered twice.
    /// @}

    /// @name EDB ADC faults (per sample)
    /// @{
    double adcGlitchProb = 0.0;
    double adcGlitchMagnitudeVolts = 0.5; ///< Max |offset| injected.
    /// @}

    /** Harvester dropout windows (RF fades). */
    std::vector<FadeWindow> fades;

    /** Force a target brown-out at each of these ticks. */
    std::vector<Tick> brownOutAtTick;
    /** Force a brown-out at this retired-instruction count (0 = off). */
    std::uint64_t brownOutAtInstr = 0;

    /// @name Torn NV writes (multi-word commit bursts)
    /// @{
    /**
     * Force a brown-out at the Nth NV commit-burst word (1-based,
     * counted cumulatively across commits via `onNvCommitWord`;
     * 0 = off). The power fails while that word's write is in flight,
     * so the burst tears: the prefix is committed, the suffix keeps
     * its old contents, and the in-flight word is either unwritten or
     * — with `nvTornCorruptProb` — lands with corrupted bits.
     */
    std::uint64_t nvTearAtCommitWord = 0;
    /** Probability the in-flight word of a torn burst is written
     *  with random bits flipped (a partial cell write). */
    double nvTornCorruptProb = 0.0;
    /// @}
};

/**
 * Client-side wire faults for the debug server (DESIGN.md §13): how
 * an adversarial or unlucky frontend mangles the frames it puts on
 * its connection. Applied per *frame* (the unit a JSON-RPC client
 * emits), unlike the per-byte UART model above, so one plan can
 * express whole-frame pathologies — truncation, replay, duplication,
 * byte-soup preambles, slowloris trickling and mid-command
 * disconnects — that a byte-wise model cannot.
 */
struct ClientFaultPlan
{
    /** Seeds the private random stream. */
    std::uint64_t seed = 1;
    /** Master switch; a disabled plan perturbs nothing. */
    bool enabled = true;

    double corruptProb = 0.0;  ///< Flip one random bit in the frame.
    double dropProb = 0.0;     ///< Whole frame never sent.
    double truncateProb = 0.0; ///< Frame cut short mid-payload.
    double dupProb = 0.0;      ///< Frame sent twice back to back.
    double replayProb = 0.0;   ///< A previously sent frame re-sent.
    double garbageProb = 0.0;  ///< 1..16 random bytes injected first.

    /** Deliver at most this many bytes per server poll (0 = no
     *  limit): the slowloris client, whose frames never finish
     *  inside the parser's inter-byte window. */
    unsigned slowlorisBytesPerPoll = 0;
    /** Hard-disconnect after this many frames (0 = never) — the
     *  mid-command vanishing client. */
    std::uint32_t disconnectAfterFrames = 0;
};

/** Applies a ClientFaultPlan to a client's outbound frames. */
class ClientWireFaults
{
  public:
    struct Stats
    {
        std::uint64_t frames = 0;
        std::uint64_t corrupted = 0;
        std::uint64_t dropped = 0;
        std::uint64_t truncated = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t replayed = 0;
        std::uint64_t garbageBytes = 0;
        std::uint64_t disconnects = 0;
    };

    explicit ClientWireFaults(ClientFaultPlan plan)
        : plan_(plan), rng(plan.seed)
    {}

    /**
     * Mangle one outbound frame into the byte sequence actually put
     * on the wire (possibly empty). Deterministic per plan seed.
     */
    std::vector<std::uint8_t>
    onFrame(const std::vector<std::uint8_t> &frame);

    /** Slowloris byte budget per server poll (0 = unlimited). */
    unsigned
    byteBudgetPerPoll() const
    {
        return plan_.enabled ? plan_.slowlorisBytesPerPoll : 0;
    }

    /** True once `disconnectAfterFrames` frames have gone out (the
     *  trigger frame itself is still delivered). */
    bool
    wantsDisconnect() const
    {
        return plan_.enabled && plan_.disconnectAfterFrames != 0 &&
               stats_.frames >= plan_.disconnectAfterFrames;
    }

    const ClientFaultPlan &plan() const { return plan_; }
    const Stats &stats() const { return stats_; }

  private:
    ClientFaultPlan plan_;
    Rng rng;
    std::vector<std::uint8_t> lastFrame;
    Stats stats_;
};

/** Executes a FaultPlan against a simulation. */
class FaultInjector : public Component
{
  public:
    /** What became of one wire byte. */
    struct WireResult
    {
        std::uint8_t bytes[2] = {0, 0};
        int count = 1; ///< 0 dropped, 1 delivered, 2 duplicated.
    };

    struct Stats
    {
        std::uint64_t wireBytes = 0;
        std::uint64_t corrupted = 0;
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t adcGlitches = 0;
        std::uint64_t brownOutsForced = 0;
        std::uint64_t nvCommitWords = 0;
        std::uint64_t nvTears = 0;
        std::uint64_t nvTornWordsCorrupted = 0;
    };

    FaultInjector(Simulator &simulator, std::string component_name,
                  FaultPlan fault_plan = {});

    bool enabled() const { return plan_.enabled; }
    const FaultPlan &plan() const { return plan_; }

    /**
     * Pass one debug-UART byte through the wire-fault model.
     * Returns the byte(s) to actually deliver (possibly corrupted,
     * dropped or duplicated).
     */
    WireResult onWire(std::uint8_t byte);

    /** Pass one EDB ADC sample (volts) through the glitch model. */
    double onAdc(double volts);

    /** True while `when` falls inside a fade window. */
    bool inFade(Tick when) const;
    /** Fade check in the seconds domain (harvester models). */
    bool inFadeSeconds(double seconds) const;

    /**
     * Schedule the plan's tick-based brown-outs; `fire` runs at each
     * configured tick (typically dropping the target's capacitor
     * below the brown-out threshold).
     */
    void armBrownOuts(std::function<void()> fire);

    /**
     * Count one retired instruction; fires the armed brown-out
     * callback when the count reaches `plan.brownOutAtInstr`. Call
     * from an MCU tracer.
     */
    void onInstruction();

    /**
     * Count one NV commit-burst word; fires the armed brown-out
     * callback when the cumulative count reaches
     * `plan.nvTearAtCommitWord`, producing a torn write. Called by
     * the MCU's interruptible checkpoint commit before each word's
     * energy is drained, so the forced voltage drop lands exactly on
     * that word's drain step — deterministic under the plan.
     */
    void onNvCommitWord();

    /**
     * Disposition of the in-flight word of a torn burst: with
     * `plan.nvTornCorruptProb`, flips 1..4 random bits in `word` and
     * returns true (the caller writes the corrupted word); otherwise
     * returns false (the word is simply never written).
     */
    bool onTornWord(std::uint32_t &word);

    const Stats &stats() const { return stats_; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Restore rearms only brown-out events still in the future,
    /// using the callback from the live `armBrownOuts` call — the
    /// plan itself is construction config and must match.
    /// @{
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r, EventRearmer &rearmer);
    /// @}

  private:
    void fireBrownOut();

    FaultPlan plan_;
    /** Private stream: never the simulator's shared RNG, so an
     *  enabled-but-idle injector cannot perturb other models. */
    Rng rng;
    std::function<void()> brownOutFn;
    std::uint64_t instrCount = 0;
    std::uint64_t nvCommitWordCount = 0;
    /** Armed brown-out events: (id, due tick), snapshot residue. */
    std::vector<std::pair<EventId, Tick>> armed_;
    Stats stats_;
};

} // namespace edb::sim

#endif // EDB_SIM_FAULT_HH
