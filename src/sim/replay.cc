#include "sim/replay.hh"

#include <algorithm>

#include "sim/simulator.hh"
#include "sim/snapshot.hh"

namespace edb::sim {

void
ScheduleLog::truncateAfter(Tick at)
{
    log.erase(std::remove_if(log.begin(), log.end(),
                             [at](const ScheduleEntry &e) {
                                 return e.at > at;
                             }),
              log.end());
}

void
ScheduleLog::saveState(SnapshotWriter &w) const
{
    w.section("sched");
    w.u32(static_cast<std::uint32_t>(log.size()));
    for (const ScheduleEntry &e : log) {
        w.tick(e.at);
        w.u32(e.op);
        w.f64(e.arg);
    }
}

void
ScheduleLog::restoreState(SnapshotReader &r)
{
    r.section("sched");
    log.clear();
    std::uint32_t n = r.u32();
    log.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        ScheduleEntry e;
        e.at = r.tick();
        e.op = r.u32();
        e.arg = r.f64();
        log.push_back(e);
    }
}

void
SchedulePlayer::arm(const ScheduleLog &log, Tick from, ApplyFn apply)
{
    cancel();
    applyFn = std::move(apply);
    for (const ScheduleEntry &e : log.entries()) {
        if (e.at <= from)
            continue;
        // Copy the entry into the closure: the log may mutate (the
        // supervisor keeps recording) while the replay is armed.
        ScheduleEntry entry = e;
        EventId id = sim_.schedule(e.at, [this, entry] {
            ++firedCount;
            if (applyFn)
                applyFn(entry);
        });
        armed.push_back(id);
        ++armedCount;
    }
}

void
SchedulePlayer::cancel()
{
    for (EventId id : armed)
        sim_.cancel(id);
    armed.clear();
    armedCount = 0;
    firedCount = 0;
}

bool
ProgressMonitor::update(std::uint64_t reboots, std::uint64_t commits)
{
    if (!primed) {
        rebase(reboots, commits);
        return tripped_;
    }
    if (commits > lastCommits) {
        lastCommits = commits;
        lastReboots = reboots;
        sinceCommit = 0;
        tripped_ = false;
    } else if (reboots >= lastReboots) {
        sinceCommit = reboots - lastReboots;
    } else {
        // Counters went backwards without a rebase: treat as one.
        rebase(reboots, commits);
        return tripped_;
    }
    if (sinceCommit >= maxReboots)
        tripped_ = true;
    return tripped_;
}

void
ProgressMonitor::rebase(std::uint64_t reboots, std::uint64_t commits)
{
    lastReboots = reboots;
    lastCommits = commits;
    sinceCommit = 0;
    primed = true;
    tripped_ = false;
}

void
ProgressMonitor::saveState(SnapshotWriter &w) const
{
    w.section("pmon");
    w.u64(maxReboots);
    w.u64(lastReboots);
    w.u64(lastCommits);
    w.u64(sinceCommit);
    w.boolean(primed);
    w.boolean(tripped_);
}

void
ProgressMonitor::restoreState(SnapshotReader &r)
{
    if (!r.section("pmon"))
        return;
    maxReboots = r.u64();
    lastReboots = r.u64();
    lastCommits = r.u64();
    sinceCommit = r.u64();
    primed = r.boolean();
    tripped_ = r.boolean();
}

} // namespace edb::sim
