/**
 * @file
 * Discrete-event queue for the simulator.
 *
 * Events are closures scheduled at an absolute tick. Ties are broken by
 * insertion order so a run is deterministic. Scheduling returns an
 * `EventId` which may be used to cancel the event (cancellation is
 * lazy: the slot is marked dead and skipped when popped).
 */

#ifndef EDB_SIM_EVENT_HH
#define EDB_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace edb::sim {

/** Handle identifying a scheduled event for cancellation. */
using EventId = std::uint64_t;

/** Reserved id meaning "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Min-heap of timestamped closures. Deterministic: equal-tick events
 * fire in the order they were scheduled.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule `cb` to fire at absolute time `when`. */
    EventId
    schedule(Tick when, Callback cb)
    {
        EventId id = ++nextId;
        heap.push(Entry{when, id, std::move(cb)});
        ++liveCount;
        return id;
    }

    /**
     * Cancel a previously scheduled event. Safe to call with an id
     * that already fired (returns false in that case).
     */
    bool
    cancel(EventId id)
    {
        if (id == invalidEventId)
            return false;
        auto [it, inserted] = cancelled.insert(id);
        (void)it;
        if (inserted && liveCount > 0)
            --liveCount;
        return inserted;
    }

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of live events. */
    std::size_t size() const { return liveCount; }

    /**
     * Time of the earliest live event, or `maxTick` when empty.
     * Prunes cancelled entries from the top of the heap.
     */
    Tick
    nextTime()
    {
        prune();
        return heap.empty() ? maxTick : heap.top().when;
    }

    /**
     * Pop the earliest live event without running it, so the caller
     * can update its clock before invoking the callback.
     * @return false when the queue was empty.
     */
    bool
    popNext(Tick &when, Callback &cb)
    {
        prune();
        if (heap.empty())
            return false;
        // Move the callback out before any invocation: callbacks may
        // schedule events, mutating the heap.
        when = heap.top().when;
        cb = std::move(const_cast<Entry &>(heap.top()).cb);
        heap.pop();
        if (liveCount > 0)
            --liveCount;
        return true;
    }

    /**
     * Pop and run the earliest live event.
     * @param now Receives the event's timestamp (set before the
     *        callback runs).
     * @return false when the queue was empty.
     */
    bool
    runOne(Tick &now)
    {
        Callback cb;
        if (!popNext(now, cb))
            return false;
        cb();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    /** Discard cancelled entries sitting at the top of the heap. */
    void
    prune()
    {
        // nextTime() runs on the interpreter's slice path; skip the
        // hash probe entirely in the common no-cancellations state.
        if (cancelled.empty())
            return;
        while (!heap.empty() && cancelled.count(heap.top().id)) {
            cancelled.erase(heap.top().id);
            heap.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::unordered_set<EventId> cancelled;
    EventId nextId = invalidEventId;
    std::size_t liveCount = 0;
};

} // namespace edb::sim

#endif // EDB_SIM_EVENT_HH
