/**
 * @file
 * Deterministic random number generation for simulations.
 *
 * Every stochastic model in the simulator (ADC noise, RF channel
 * corruption, sensor traces) draws from one `Rng` owned by the
 * `Simulator`, so a run is fully reproducible from its seed.
 */

#ifndef EDB_SIM_RNG_HH
#define EDB_SIM_RNG_HH

#include <cmath>
#include <cstdint>
#include <random>

namespace edb::sim {

/**
 * splitmix64 finalizer: the standard 64-bit avalanche mix. Used to
 * derive statistically independent per-world seeds from one fleet
 * seed (`deriveSeed`) so neighbouring world indices do not produce
 * correlated Mersenne twister streams.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/**
 * Deterministic seed derivation: fleet seed × stream index → world
 * seed. Two rounds of splitmix64 over the (seed, stream) pair; never
 * returns 0 so the result is always a valid engine seed.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    std::uint64_t s = splitmix64(splitmix64(base) ^
                                 splitmix64(stream * 0xA24BAED4963EE407ULL));
    return s == 0 ? 0x9E3779B97F4A7C15ULL : s;
}

/**
 * Mersenne twister with the std::mt19937_64 parameter set.
 *
 * The C++ standard pins the output of
 * `mersenne_twister_engine<uint64_t, 64, 312, 156, ...>` exactly, so
 * this engine produces the same draw sequence as std::mt19937_64 for
 * the same seed (the unit tests assert it word for word). It exists
 * because the analog integration loop draws harvest noise once per
 * sub-step, and the library engine's per-draw bookkeeping dominated
 * that profile: here the twist *and* the tempering run in bulk every
 * 312 draws, so a draw is a buffered load.
 */
class Mt64
{
  public:
    using result_type = std::uint64_t;

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    explicit Mt64(result_type value = defaultSeed) { seed(value); }

    /** Standard seeding recurrence (identical to std::mt19937_64). */
    void
    seed(result_type value)
    {
        state[0] = value;
        for (unsigned i = 1; i < n; ++i)
            state[i] = 6364136223846793005ULL *
                           (state[i - 1] ^ (state[i - 1] >> 62)) +
                       i;
        index = n;
    }

    result_type
    operator()()
    {
        if (index >= n)
            refill();
        return out[index++];
    }

    static constexpr result_type defaultSeed = 5489;

    /**
     * Full engine state, exportable for snapshots: the 312-word
     * twist state, the tempered output buffer, and the read index.
     * Restoring a saved State resumes the draw stream exactly where
     * it left off, mid-block included (the output buffer is part of
     * the state precisely so a snapshot taken between refills does
     * not replay or skip draws).
     */
    struct State
    {
        result_type state[312];
        result_type out[312];
        std::uint32_t index;
    };

    State
    exportState() const
    {
        State s;
        for (unsigned i = 0; i < n; ++i) {
            s.state[i] = state[i];
            s.out[i] = out[i];
        }
        s.index = index;
        return s;
    }

    void
    importState(const State &s)
    {
        for (unsigned i = 0; i < n; ++i) {
            state[i] = s.state[i];
            out[i] = s.out[i];
        }
        // Clamp a corrupt index to "buffer exhausted": the next draw
        // refills instead of reading out[] out of bounds.
        index = s.index > n ? n : s.index;
    }

  private:
    static constexpr unsigned n = 312;
    static constexpr unsigned m = 156;
    static constexpr result_type upperMask = ~result_type{0} << 31;
    static constexpr result_type lowerMask = ~upperMask;
    static constexpr result_type matrixA = 0xB5026F5AA96619E9ULL;

    void
    refill()
    {
        // Twist (three segments avoid the modulo of the textbook
        // loop), then temper the whole block in one pass the
        // vectorizer likes. Branchless conditional xor of matrixA.
        unsigned i = 0;
        for (; i < n - m; ++i) {
            result_type x =
                (state[i] & upperMask) | (state[i + 1] & lowerMask);
            state[i] = state[i + m] ^ (x >> 1) ^ (-(x & 1) & matrixA);
        }
        for (; i < n - 1; ++i) {
            result_type x =
                (state[i] & upperMask) | (state[i + 1] & lowerMask);
            state[i] =
                state[i + m - n] ^ (x >> 1) ^ (-(x & 1) & matrixA);
        }
        result_type x =
            (state[n - 1] & upperMask) | (state[0] & lowerMask);
        state[n - 1] = state[m - 1] ^ (x >> 1) ^ (-(x & 1) & matrixA);

        for (unsigned k = 0; k < n; ++k) {
            result_type y = state[k];
            y ^= (y >> 29) & 0x5555555555555555ULL;
            y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
            y ^= (y << 37) & 0xFFF7EEE000000000ULL;
            y ^= y >> 43;
            out[k] = y;
        }
        index = 0;
    }

    result_type state[n];
    result_type out[n];
    unsigned index;
};

/**
 * Thin wrapper around a 64-bit Mersenne twister with convenience
 * samplers used throughout the analog and channel models.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine(seed) {}

    /** Re-seed the generator (resets the stream). */
    void seed(std::uint64_t s) { engine.seed(s); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine);
    }

    /**
     * Zero-mean Gaussian with the given standard deviation.
     *
     * Hand-inlined Marsaglia polar method, drawing uniforms through
     * canonical(). A freshly constructed std::normal_distribution is
     * stateless (no saved spare), so this consumes the same engine
     * draws and performs the same double arithmetic as
     * `std::normal_distribution<double>(0.0, sigma)(engine)` — the
     * stream is bit-identical, it just skips the library's generic
     * long-double uniform path (which re-derives log2(engine range)
     * per draw and dominated the analog integration profile).
     */
    double
    gaussian(double sigma)
    {
        if (sigma <= 0.0)
            return 0.0;
        double x, y, r2;
        do {
            x = 2.0 * canonical() - 1.0;
            y = 2.0 * canonical() - 1.0;
            r2 = x * x + y * y;
        } while (r2 > 1.0 || r2 == 0.0);
        const double mult = std::sqrt(-2 * std::log(r2) / r2);
        // Matches the library's `ret * stddev + mean` exactly,
        // including the +0.0 (not a no-op for signed zeros).
        return (y * mult) * sigma + 0.0;
    }

    /** Bernoulli trial: true with probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Uniform double in [0, 1) equal, bit for bit, to
     * `std::generate_canonical<double, 53>(raw())`: for a 64-bit
     * engine that specialization is a single draw scaled into [0, 1)
     * with a top-end guard (scaling by 2^-64 is exact, so multiply
     * and divide agree).
     */
    double
    canonical()
    {
        double r = static_cast<double>(engine()) * 0x1p-64;
        if (r >= 1.0) [[unlikely]]
            r = std::nextafter(1.0, 0.0);
        return r;
    }

    /** Access to the raw engine for std distributions. */
    Mt64 &raw() { return engine; }

    /** Export the complete engine state (for snapshots). */
    Mt64::State exportState() const { return engine.exportState(); }

    /** Restore a previously exported engine state. */
    void importState(const Mt64::State &s) { engine.importState(s); }

  private:
    Mt64 engine;
};

} // namespace edb::sim

#endif // EDB_SIM_RNG_HH
