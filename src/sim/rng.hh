/**
 * @file
 * Deterministic random number generation for simulations.
 *
 * Every stochastic model in the simulator (ADC noise, RF channel
 * corruption, sensor traces) draws from one `Rng` owned by the
 * `Simulator`, so a run is fully reproducible from its seed.
 */

#ifndef EDB_SIM_RNG_HH
#define EDB_SIM_RNG_HH

#include <cstdint>
#include <random>

namespace edb::sim {

/**
 * Thin wrapper around a 64-bit Mersenne twister with convenience
 * samplers used throughout the analog and channel models.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine(seed) {}

    /** Re-seed the generator (resets the stream). */
    void seed(std::uint64_t s) { engine.seed(s); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine);
    }

    /** Zero-mean Gaussian with the given standard deviation. */
    double
    gaussian(double sigma)
    {
        if (sigma <= 0.0)
            return 0.0;
        return std::normal_distribution<double>(0.0, sigma)(engine);
    }

    /** Bernoulli trial: true with probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Access to the raw engine for std distributions. */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace edb::sim

#endif // EDB_SIM_RNG_HH
