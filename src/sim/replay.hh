/**
 * @file
 * Deterministic schedule record/replay + forward-progress watchdog.
 *
 * A soak run drives the environment (harvester carrier gating, forced
 * brown-outs, tag movement) from random draws. To turn a failure deep
 * into a soak into a minimal deterministic repro, the supervisor logs
 * every environment action it applies as an opaque `(op, arg)` pair
 * with its absolute tick. After rewinding the simulation to an earlier
 * snapshot, `SchedulePlayer` re-arms exactly the suffix of the log
 * past the snapshot tick, so the replayed world is bit-identical to
 * the recorded one — same finding at the same tick, every time.
 *
 * The `sim` module knows nothing about harvesters or targets, so the
 * log stores opaque opcodes and the caller supplies the apply
 * callback; `ProgressMonitor` likewise consumes raw cumulative
 * counters (reboots, checkpoint commits) rather than an Mcu.
 */

#ifndef EDB_SIM_REPLAY_HH
#define EDB_SIM_REPLAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event.hh"
#include "sim/time.hh"

namespace edb::sim {

class Simulator;
class SnapshotWriter;
class SnapshotReader;

/** One recorded environment action, applied at absolute tick `at`. */
struct ScheduleEntry
{
    Tick at = 0;
    /** Caller-defined opcode (e.g. carrier-off, forced brown-out). */
    std::uint32_t op = 0;
    /** Caller-defined argument (distance, duty factor, ...). */
    double arg = 0.0;
};

/**
 * Append-only log of the environment actions applied during a run.
 * Serializable alongside a snapshot so a saved episode carries its
 * own replay schedule.
 */
class ScheduleLog
{
  public:
    void
    record(Tick at, std::uint32_t op, double arg = 0.0)
    {
        log.push_back(ScheduleEntry{at, op, arg});
    }

    const std::vector<ScheduleEntry> &entries() const { return log; }
    std::size_t size() const { return log.size(); }
    bool empty() const { return log.empty(); }
    void clear() { log.clear(); }

    /** Drop entries recorded after `at` (rewind truncation is NOT
     *  wanted for replay — keep the suffix — so this exists only for
     *  callers that restart recording from a snapshot). */
    void truncateAfter(Tick at);

    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    std::vector<ScheduleEntry> log;
};

/**
 * Arms a recorded schedule into a simulator's event queue.
 *
 * `arm` schedules every entry with `at > from` (entries at or before
 * the snapshot tick are already reflected in the restored state) and
 * invokes the apply callback at exactly the recorded tick. One player
 * drives at most one armed schedule; re-arming cancels the previous
 * one first.
 */
class SchedulePlayer
{
  public:
    using ApplyFn = std::function<void(const ScheduleEntry &)>;

    explicit SchedulePlayer(Simulator &simulator) : sim_(simulator) {}
    ~SchedulePlayer() { cancel(); }

    SchedulePlayer(const SchedulePlayer &) = delete;
    SchedulePlayer &operator=(const SchedulePlayer &) = delete;

    /** Arm the suffix of `log` past `from`; `apply` runs per entry. */
    void arm(const ScheduleLog &log, Tick from, ApplyFn apply);

    /** Cancel all armed-but-unfired entries. */
    void cancel();

    /** Entries armed and not yet fired. */
    std::size_t pending() const { return armedCount - firedCount; }

    /** Entries fired since the last arm. */
    std::size_t fired() const { return firedCount; }

  private:
    Simulator &sim_;
    ApplyFn applyFn;
    std::vector<EventId> armed;
    std::size_t armedCount = 0;
    std::size_t firedCount = 0;
};

/**
 * No-forward-progress detector for intermittent executions.
 *
 * Fed cumulative (reboot, checkpoint-commit) counters, it trips when
 * the target reboots `maxReboots` times without a single checkpoint
 * commit in between — the signature of a non-terminating reboot loop
 * (a task too energy-expensive to ever complete, or NV state
 * corrupted into a crash loop).
 */
class ProgressMonitor
{
  public:
    explicit ProgressMonitor(std::uint64_t max_reboots_without_commit)
        : maxReboots(max_reboots_without_commit)
    {
    }

    /**
     * Update with the target's cumulative counters.
     * @return true when the monitor is (now) tripped.
     */
    bool update(std::uint64_t reboots, std::uint64_t commits);

    bool tripped() const { return tripped_; }
    std::uint64_t rebootsSinceCommit() const { return sinceCommit; }
    std::uint64_t threshold() const { return maxReboots; }

    /** Re-baseline after a rewind (counters jump backwards). */
    void rebase(std::uint64_t reboots, std::uint64_t commits);

    /// @name Snapshot support
    /// Alternative to rebase(): restoring the monitor with the target
    /// keeps the partial reboots-since-commit window, so a replayed
    /// stall trips at exactly the recorded tick.
    /// @{
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);
    /// @}

  private:
    std::uint64_t maxReboots;
    std::uint64_t lastReboots = 0;
    std::uint64_t lastCommits = 0;
    std::uint64_t sinceCommit = 0;
    bool primed = false;
    bool tripped_ = false;
};

} // namespace edb::sim

#endif // EDB_SIM_REPLAY_HH
