/**
 * @file
 * Versioned, CRC-protected snapshots of complete simulator state.
 *
 * A snapshot captures everything a resumed run needs to be
 * bit-identical to the run it was taken from: the event clock, the
 * shared RNG engine (mid-block included), every component's
 * architectural and statistical state, and the *residue* of the event
 * queue — the set of pending events with their due times and original
 * scheduling order. Closures cannot be serialized, so each component
 * records (saved event id, due time) for its own pending events and
 * re-creates the callbacks on restore; the `EventRearmer` replays
 * them into the fresh queue sorted by saved id, which preserves the
 * queue's same-tick tie-break order exactly (rearmed events receive
 * the smallest new ids, in the saved relative order, and anything
 * scheduled after restore receives a larger id — just as anything
 * scheduled after the snapshot point did in the original run).
 *
 * Format (DESIGN.md section 8): an 8-byte magic "EDBSNAP1", a u32
 * format version, a u32 payload length and a u32 CRC-32 of the
 * payload, followed by the payload itself — typed little-endian
 * fields interleaved with length-tagged section markers that make
 * save/restore mismatches fail loudly instead of misparsing.
 */

#ifndef EDB_SIM_SNAPSHOT_HH
#define EDB_SIM_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"

namespace edb::sim {

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) of a byte range. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/**
 * Serializes typed fields into a snapshot payload and seals it with
 * the versioned, CRC-protected header.
 */
class SnapshotWriter
{
  public:
    /// @name Typed little-endian fields
    /// @{
    void u8(std::uint8_t v) { buf.push_back(v); }
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void tick(Tick t) { i64(t); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    /** Doubles travel as their exact bit pattern. */
    void f64(double v);
    /// @}

    /** Raw byte range (fixed length known to both sides). */
    void bytes(const void *data, std::size_t len);

    /** Length-prefixed byte range. */
    void blob(const void *data, std::size_t len);

    /**
     * Section marker. Readers verify the tag before parsing the
     * fields that follow, so a save/restore schema mismatch fails at
     * the section boundary instead of silently misparsing.
     */
    void section(const char *tag);

    /** Full RNG engine state (twist state, output buffer, index). */
    void rng(const Rng &r);

    /**
     * One pending event: its id in the saved run (relative order at
     * equal ticks) and its absolute due time. `savedId` must be
     * `invalidEventId` when the event is not pending; the reader's
     * matching `pendingEvent` then produces nothing to rearm.
     */
    void pendingEvent(EventId savedId, Tick when);

    /** Seal: header (magic, version, length, CRC) + payload. */
    std::vector<std::uint8_t> finish() const;

    /** Seal and write to a file. @return false on I/O error. */
    bool writeFile(const std::string &path) const;

    static constexpr char magic[9] = "EDBSNAP1";
    static constexpr std::uint32_t version = 1;

  private:
    std::vector<std::uint8_t> buf;
};

class EventRearmer;

/**
 * Parses a sealed snapshot. All accessors are total: a read past the
 * end, a CRC/magic/version mismatch or a section-tag mismatch sets a
 * sticky failure flag and returns zeroes, so restore code can run
 * straight through and check `ok()` once at the end.
 */
class SnapshotReader
{
  public:
    /** Adopt a sealed image; verifies magic, version and CRC. */
    bool load(std::vector<std::uint8_t> image);

    /** Read and verify a file. */
    bool loadFile(const std::string &path);

    /// @name Typed fields (mirror SnapshotWriter)
    /// @{
    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    Tick tick() { return i64(); }
    bool boolean() { return u8() != 0; }
    double f64();
    /// @}

    void bytes(void *out, std::size_t len);
    std::vector<std::uint8_t> blob();

    /** Verify a section marker; mismatch sets the failure flag. */
    bool section(const char *tag);

    /** Restore the full RNG engine state. */
    void rng(Rng &r);

    /**
     * Read a pending-event record and, when the event was pending at
     * save time, hand (savedId, when, cb, assign) to the rearmer.
     * `assign` receives the newly scheduled id and the due time (or
     * `invalidEventId`, 0 when nothing was pending — it is always
     * called, so components can clear stale handles).
     */
    void pendingEvent(EventRearmer &rearmer, EventQueue::Callback cb,
                      std::function<void(EventId, Tick)> assign);

    bool ok() const { return !fail_; }
    bool atEnd() const { return pos >= payload.size(); }

    /** Force the failure flag (restore-side consistency checks). */
    void invalidate() { fail_ = true; }

  private:
    bool need(std::size_t n);

    std::vector<std::uint8_t> payload;
    std::size_t pos = 0;
    bool fail_ = true;
};

/**
 * Replays the saved event-queue residue into a fresh simulator.
 *
 * Components register their pending events during restore in any
 * order; `flush()` sorts them by saved id and schedules them in that
 * order, reproducing the original queue's same-tick tie-break order
 * (see the file comment). Each component's `assign` closure receives
 * the new id so its cancellation handle stays valid.
 */
class EventRearmer
{
  public:
    explicit EventRearmer(Simulator &simulator) : sim_(simulator) {}

    void
    add(EventId savedId, Tick when, EventQueue::Callback cb,
        std::function<void(EventId, Tick)> assign)
    {
        pending.push_back(
            Pending{savedId, when, std::move(cb), std::move(assign)});
    }

    /** Schedule everything registered so far, in saved-id order. */
    void flush();

  private:
    struct Pending
    {
        EventId savedId;
        Tick when;
        EventQueue::Callback cb;
        std::function<void(EventId, Tick)> assign;
    };

    Simulator &sim_;
    std::vector<Pending> pending;
};

} // namespace edb::sim

#endif // EDB_SIM_SNAPSHOT_HH
