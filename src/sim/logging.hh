/**
 * @file
 * Leveled logging and fatal-error helpers for the simulator.
 *
 * Follows the gem5 convention: `panic` is for internal simulator bugs
 * (aborts), `fatal` is for user/configuration errors (throws so tests
 * can assert on it), `warn`/`inform` are advisory console output.
 *
 * Two layers:
 *
 *  - the free functions (`warn(...)`, `inform(...)`, ...) write
 *    through one process-wide `Logger`. Since PR 8 that logger is
 *    thread-safe (atomic level, mutexed sink), so stray diagnostics
 *    from fleet worker threads cannot interleave mid-line or race;
 *  - a `Logger` *instance* can be owned by a world (`sim::Simulator`
 *    holds one), giving every world of a fleet its own verbosity and
 *    its own sink with no shared mutable state on the hot path.
 *    Components log through `Component::logger()`.
 *
 * Sinks are pluggable. `AggregatingSink` is a thread-safe sink many
 * world loggers can share: it counts messages per level and retains
 * the most recent few for a fleet-level report, instead of letting a
 * thousand worlds write to stderr concurrently.
 */

#ifndef EDB_SIM_LOGGING_HH
#define EDB_SIM_LOGGING_HH

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace edb::sim {

/** Severity levels for simulation logging. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Global log verbosity. Defaults to Warn; tests may silence it. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Error thrown by `fatal` — a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Destination for log messages. Implementations must be safe to
 *  call from multiple threads when shared between world loggers. */
class LogSink
{
  public:
    virtual ~LogSink() = default;
    virtual void write(LogLevel level, const std::string &tag,
                       const std::string &msg) = 0;
};

/** Default sink: stderr, one line per message, mutexed so
 *  concurrent writers never interleave mid-line. */
class StderrSink : public LogSink
{
  public:
    void
    write(LogLevel, const std::string &tag,
          const std::string &msg) override
    {
        std::lock_guard<std::mutex> lock(mtx);
        std::fprintf(stderr, "[%s] %s\n", tag.c_str(), msg.c_str());
    }

  private:
    std::mutex mtx;
};

/**
 * Thread-safe aggregating sink for fleets: counts per level, retains
 * the most recent `keep` messages, and optionally forwards to
 * another sink. Attach one instance to every world logger and read
 * the totals after the run.
 */
class AggregatingSink : public LogSink
{
  public:
    explicit AggregatingSink(std::size_t keep_last = 16,
                             LogSink *forward_to = nullptr)
        : keep(keep_last), forward(forward_to)
    {}

    void
    write(LogLevel level, const std::string &tag,
          const std::string &msg) override
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            ++counts_[static_cast<std::size_t>(level)];
            recent_.push_back("[" + tag + "] " + msg);
            if (recent_.size() > keep)
                recent_.pop_front();
        }
        if (forward)
            forward->write(level, tag, msg);
    }

    /** Messages seen at `level`. */
    std::uint64_t
    count(LogLevel level) const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return counts_[static_cast<std::size_t>(level)];
    }

    /** Total messages seen. */
    std::uint64_t
    total() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        std::uint64_t t = 0;
        for (auto c : counts_)
            t += c;
        return t;
    }

    /** Copy of the retained tail, oldest first. */
    std::vector<std::string>
    recent() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return {recent_.begin(), recent_.end()};
    }

  private:
    std::size_t keep;
    LogSink *forward;
    mutable std::mutex mtx;
    std::array<std::uint64_t, 4> counts_{};
    std::deque<std::string> recent_;
};

namespace detail {

void emit(LogLevel level, const std::string &tag, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * An instance logger: per-world verbosity and sink. The sink is
 * non-owning and defaults to the process-wide stderr sink; the level
 * is atomic so a supervisor thread may retune a running world.
 */
class Logger
{
  public:
    explicit Logger(LogLevel level = LogLevel::Warn,
                    LogSink *sink = nullptr)
        : level_(level), sink_(sink)
    {}

    LogLevel level() const { return level_.load(std::memory_order_relaxed); }
    void
    setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }

    /** Replace the sink (non-owning; nullptr = process default). */
    void setSink(LogSink *sink) { sink_ = sink; }
    LogSink *sink() const { return sink_; }

    void write(LogLevel level, const std::string &tag,
               const std::string &msg);

    template <typename... Args>
    void
    warn(Args &&...args)
    {
        if (level() >= LogLevel::Warn)
            write(LogLevel::Warn, "warn",
                  detail::format(std::forward<Args>(args)...));
    }

    template <typename... Args>
    void
    inform(Args &&...args)
    {
        if (level() >= LogLevel::Inform)
            write(LogLevel::Inform, "info",
                  detail::format(std::forward<Args>(args)...));
    }

    template <typename... Args>
    void
    debug(Args &&...args)
    {
        if (level() >= LogLevel::Debug)
            write(LogLevel::Debug, "debug",
                  detail::format(std::forward<Args>(args)...));
    }

  private:
    std::atomic<LogLevel> level_;
    LogSink *sink_;
};

/** The process-wide logger behind the free functions. */
Logger &globalLogger();

/** Report a user/configuration error; throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::format(std::forward<Args>(args)...));
}

/** Report an internal simulator bug; aborts the process. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit(LogLevel::Silent, "panic",
                 detail::format(std::forward<Args>(args)...));
    std::abort();
}

/** Advisory warning (printed at LogLevel::Warn and above). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::format(std::forward<Args>(args)...));
}

/** Informational message (printed at LogLevel::Inform and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, "info",
                 detail::format(std::forward<Args>(args)...));
}

/** Debug-level message (printed at LogLevel::Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::format(std::forward<Args>(args)...));
}

} // namespace edb::sim

#endif // EDB_SIM_LOGGING_HH
