/**
 * @file
 * Leveled logging and fatal-error helpers for the simulator.
 *
 * Follows the gem5 convention: `panic` is for internal simulator bugs
 * (aborts), `fatal` is for user/configuration errors (throws so tests
 * can assert on it), `warn`/`inform` are advisory console output.
 */

#ifndef EDB_SIM_LOGGING_HH
#define EDB_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edb::sim {

/** Severity levels for simulation logging. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Global log verbosity. Defaults to Warn; tests may silence it. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Error thrown by `fatal` — a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail {

void emit(LogLevel level, const std::string &tag, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Report a user/configuration error; throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::format(std::forward<Args>(args)...));
}

/** Report an internal simulator bug; aborts the process. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit(LogLevel::Silent, "panic",
                 detail::format(std::forward<Args>(args)...));
    std::abort();
}

/** Advisory warning (printed at LogLevel::Warn and above). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::format(std::forward<Args>(args)...));
}

/** Informational message (printed at LogLevel::Inform and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, "info",
                 detail::format(std::forward<Args>(args)...));
}

/** Debug-level message (printed at LogLevel::Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::format(std::forward<Args>(args)...));
}

} // namespace edb::sim

#endif // EDB_SIM_LOGGING_HH
