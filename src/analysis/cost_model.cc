#include "analysis/cost_model.hh"

#include "mcu/mcu.hh"
#include "sim/time.hh"
#include "target/wisp.hh"

namespace edb::analysis {

namespace {

double
seconds(sim::Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim::oneSec);
}

} // namespace

CostModel
CostModel::fromWisp(const target::Wisp &wisp)
{
    const mcu::Mcu &core = wisp.mcu();
    const mcu::McuConfig &mc = core.config();
    const target::WispConfig &wc = wisp.config();
    const energy::PowerSystemConfig &pc = wisp.power().config();

    CostModel m;
    m.cyclePeriod = 1.0 / mc.clockHz;
    m.activeAmps = mc.activeAmps;
    m.haltAmps = mc.haltAmps;
    m.sleepAmps = mc.sleepAmps;
    m.ledAmps = wc.ledAmps;

    m.uartFrameSeconds =
        static_cast<double>(wc.uart.bitsPerByte) / wc.uart.baud;
    m.uartTxAmps = wc.uart.txActiveAmps;
    m.dbgUartFrameSeconds =
        static_cast<double>(wc.debug.uart.bitsPerByte) /
        wc.debug.uart.baud;
    m.dbgUartTxAmps = wc.debug.uart.txActiveAmps;
    m.nvWriteCharge = wc.nvTech.writeChargeCoulombs;

    m.checkpointing = mc.checkpointingEnabled;
    m.chkptBaseCycles = core.checkpointCostCyclesFor(0);
    m.chkptCyclesPerWord =
        core.checkpointCostCyclesFor(4) - m.chkptBaseCycles;
    m.chkptBaseWords = m.chkptCyclesPerWord > 0
                           ? m.chkptBaseCycles / m.chkptCyclesPerWord
                           : 0;
    m.chkptSlotBytes = mc.checkpointSlotSize;

    m.capacitanceF = pc.capacitanceF;
    m.turnOnVolts = pc.turnOnVolts;
    m.brownOutVolts = pc.brownOutVolts;
    m.bootSeconds = seconds(mc.bootDelay);

    m.sramBase = target::layout::sramBase;
    m.sramSize = target::layout::sramSize;
    m.framBase = target::layout::framBase;
    m.framSize = target::layout::framSize;
    m.mmioBase = target::layout::mmioBase;
    m.mmioSize = target::layout::mmioSize;
    m.stackTop = mc.stackTop;

    for (unsigned b = 0; b < 256; ++b) {
        std::uint32_t word = static_cast<std::uint32_t>(b) << 24;
        auto decoded = isa::decode(word);
        if (!decoded)
            continue;
        mcu::Mcu::CostQuote q = core.costQuote(decoded->op);
        Quote &out = m.quotes[b];
        out.cycles = q.cycles;
        out.framExtraCycles = q.framExtraCycles;
        out.stackDependent = q.stackDependent;
        out.valid = true;
    }
    return m;
}

} // namespace edb::analysis
