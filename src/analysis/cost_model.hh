/**
 * @file
 * Per-instruction energy/timing cost table for the static analyzer
 * (DESIGN.md §14), extracted from a *live* simulated device rather
 * than duplicated constants: `CostModel::fromWisp` interrogates the
 * Mcu's own cost-quote hooks (`mcu::Mcu::costQuote`,
 * `checkpointCostCyclesFor`), the power-system configuration, the
 * UART frame timing and the NV technology table of the given Wisp.
 * If a future change re-prices an instruction class, the analyzer
 * re-prices with it — the table cannot drift from the simulator.
 */

#ifndef EDB_ANALYSIS_COST_MODEL_HH
#define EDB_ANALYSIS_COST_MODEL_HH

#include <array>
#include <cstdint>

#include "isa/isa.hh"

namespace edb::target {
class Wisp;
}

namespace edb::analysis {

/** See file header. */
struct CostModel
{
    /** One opcode's static cost (mirrors mcu::Mcu::CostQuote). */
    struct Quote
    {
        /** Base + memory-access cycles. */
        unsigned cycles = 0;
        /** Extra wait states IF the effective address is NV. */
        unsigned framExtraCycles = 0;
        /** True for CHKPT: cost grows with live stack bytes. */
        bool stackDependent = false;
        /** Opcode decodes on this core. */
        bool valid = false;
    };

    /// @name Core timing and supply currents
    /// @{
    double cyclePeriod = 0.0; ///< Seconds per core cycle.
    double activeAmps = 0.0;
    double haltAmps = 0.0;
    double sleepAmps = 0.0;
    double ledAmps = 0.0;
    /// @}

    /// @name Peripheral energy
    /// @{
    /** Seconds one UART frame keeps the transmitter powered. */
    double uartFrameSeconds = 0.0;
    double uartTxAmps = 0.0;
    /** Debug-link UART (target-side shifter is a real load too). */
    double dbgUartFrameSeconds = 0.0;
    double dbgUartTxAmps = 0.0;
    /** Coulombs billed per NV store (0 for the passive model). */
    double nvWriteCharge = 0.0;
    /// @}

    /// @name Checkpoint unit
    /// @{
    bool checkpointing = false;
    /** Commit cycles at zero stack bytes (affine reconstruction of
     *  Mcu::checkpointCostCyclesFor; exactness is pinned by
     *  test_energy_analysis). */
    unsigned chkptBaseCycles = 0;
    unsigned chkptCyclesPerWord = 0;
    /** NV words in an empty-stack frame (header + regs + seal). */
    unsigned chkptBaseWords = 0;
    std::uint32_t chkptSlotBytes = 0;
    /// @}

    /// @name Capacitor / boot budget
    /// @{
    double capacitanceF = 0.0;
    double turnOnVolts = 0.0;
    double brownOutVolts = 0.0;
    /** Reset settle time before the first instruction, spent at
     *  activeAmps. */
    double bootSeconds = 0.0;
    /// @}

    /// @name Memory map (EA classification)
    /// @{
    std::uint32_t sramBase = 0, sramSize = 0;
    std::uint32_t framBase = 0, framSize = 0;
    std::uint32_t mmioBase = 0, mmioSize = 0;
    std::uint32_t stackTop = 0;
    /// @}

    std::array<Quote, 256> quotes{};

    /** Extract the model from a live device (see file header). */
    static CostModel fromWisp(const target::Wisp &wisp);

    const Quote &quote(isa::Opcode op) const
    {
        return quotes[static_cast<std::uint8_t>(op)];
    }

    /** Atomic-commit cycles for a given live stack size (the core
     *  prices whole words: bytes/4, floor — pinned by test). */
    unsigned chkptCycles(std::uint32_t stack_bytes) const
    {
        return chkptBaseCycles + chkptCyclesPerWord * (stack_bytes / 4);
    }
    /** NV words a commit writes (each bills nvWriteCharge). */
    unsigned chkptWords(std::uint32_t stack_bytes) const
    {
        return chkptBaseWords + stack_bytes / 4;
    }

    /** Charge guaranteed extractable per boot with zero inflow:
     *  C * (Von - Voff). */
    double usableBudget() const
    {
        return capacitanceF * (turnOnVolts - brownOutVolts);
    }
    /** Charge drained before the first instruction of a boot. */
    double bootCharge() const { return bootSeconds * activeAmps; }
    /** Charge of one transmitted UART frame. */
    double uartFrameCharge() const
    {
        return uartFrameSeconds * uartTxAmps;
    }
    /** Charge of one frame on the debug link. */
    double dbgUartFrameCharge() const
    {
        return dbgUartFrameSeconds * dbgUartTxAmps;
    }
    /** Upper bound on the charge a checkpoint *restore* drains
     *  before region code runs (frame read at active current; the
     *  commit cycle formula over-counts reads, which is the safe
     *  direction). */
    double restoreChargeMax() const
    {
        std::uint32_t cap_bytes =
            chkptSlotBytes > (chkptBaseWords + 1) * 4
                ? chkptSlotBytes - (chkptBaseWords + 1) * 4
                : 1024;
        return chkptCycles(cap_bytes) * cyclePeriod * activeAmps;
    }
};

} // namespace edb::analysis

#endif // EDB_ANALYSIS_COST_MODEL_HH
