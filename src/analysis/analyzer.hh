/**
 * @file
 * Static energy-timing analyzer for EH32 programs (DESIGN.md §14).
 *
 * ETAP-style: from the per-instruction cost table (`CostModel`,
 * extracted from a live simulated device) the analyzer enumerates
 * paths over the program's control-flow graph and computes, for
 * every checkpoint region, the worst-case charge a single boot may
 * drain before reaching a persist point. A region whose worst-case
 * demand exceeds the usable capacitor budget can starve: the device
 * browns out before it can bank progress, reboots, and repeats the
 * same doomed attempt — the paper's Fig 9 bug, found without
 * running the program.
 *
 * The headline guarantee is **soundness of the upper bound**: for
 * any execution the simulator can produce, the charge drained
 * between power-on and the first persist (checkpoint commit or
 * halt) never exceeds the region bound reported here. The fuzz
 * oracle `etap` (src/fuzz/oracle.cc) and bench/etap_validate check
 * exactly this against measured ground truth.
 */

#ifndef EDB_ANALYSIS_ANALYZER_HH
#define EDB_ANALYSIS_ANALYZER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.hh"
#include "isa/program.hh"

namespace edb::analysis {

/** Completion verdict for a whole program (worst over regions). */
enum class Verdict : std::uint8_t
{
    /** Every path is bounded, fits the per-boot budget, and ends in
     *  HALT. */
    Completes,
    /** Runs indefinitely (event-paced or productive loops) but every
     *  boot makes progress; never completes because it is not meant
     *  to. */
    RunsForever,
    /** Some worst-case path exceeds the per-boot budget, but a
     *  cheaper path (or generous harvesting) may still complete. */
    MayStarve,
    /** Cannot complete: some unavoidable demand exceeds what any
     *  boot can supply (Fig 9). */
    Starves,
    /** The program uses a construct the analyzer does not model
     *  (indirect calls, irreducible loops, runtime checkpoint
     *  control, ...). */
    Unknown,
};

const char *verdictName(Verdict v);

/** Classification of an unbounded (statically trip-unknown) loop. */
enum class LoopKind : std::uint8_t
{
    Bounded,    ///< All loops have inferred trip counts.
    IoBound,    ///< Paced by a peripheral status register.
    Productive, ///< Writes NV state every iteration.
    Barren,     ///< Neither: pure spin, the starvation signature.
    Irreducible ///< Multi-entry cycle; not analyzed.
};

/** Harvesting-environment bounds for the starvation arguments.
 *  All zero = unknown environment: the analyzer then only makes
 *  claims that hold for ANY inflow. */
struct AnalyzerOptions
{
    /** Hard ceiling on harvester inflow current (amps); 0 =
     *  unknown. Enables the must-starve arithmetic (S2). */
    double maxInflowAmps = 0.0;
    /** Typical inflow used for boots-to-completion prediction. */
    double expectedInflowAmps = 0.0;
    /** Harvester open-circuit voltage ceiling (volts); 0 = unknown.
     *  Caps the charge the capacitor can ever store. */
    double maxSourceVolts = 0.0;
    /** CFG-discovery node budget override (0 = default 2^17). Code
     *  beyond the budget degrades the verdict to Unknown rather
     *  than silently truncating the analyzed graph. */
    std::size_t maxNodes = 0;
};

/** Per-checkpoint-region result. */
struct RegionInfo
{
    std::uint32_t entryPc = 0;
    /** True when every path in the region has bounded cost. */
    bool bounded = false;
    /** Worst/best-case charge (coulombs) from region entry to the
     *  first persist point. Valid when `bounded`. */
    double chargeMax = 0.0;
    double chargeMin = 0.0;
    /** Worst/best-case active+sleep cycles. Valid when `bounded`. */
    double cyclesMax = 0.0;
    double cyclesMin = 0.0;
    /** Inflow-credited lower bound on net drain (coulombs); only
     *  meaningful when AnalyzerOptions gave a max inflow. */
    double netDrainMin = 0.0;
    /** Most severe unbounded-loop kind in the region. */
    LoopKind worstLoop = LoopKind::Bounded;
    /** A barren loop stands between entry and every persist. */
    bool unavoidableBarren = false;
    /** Worst single-iteration charge among unbounded loops with
     *  bounded bodies (forward-progress granularity). */
    double iterChargeMax = 0.0;
    /** Region verdict before aggregation. */
    Verdict verdict = Verdict::Unknown;
};

/** Whole-program analysis result. */
struct Report
{
    Verdict verdict = Verdict::Unknown;
    /** One-line human-readable justification. */
    std::string reason;

    std::vector<RegionInfo> regions;

    bool haltReachable = false;
    bool checkpointing = false;

    /** C * (Von - Voff): charge one boot can drain with no inflow. */
    double budget = 0.0;
    /** Charge burned by reset settle before the first instruction. */
    double bootCharge = 0.0;
    /** C * (Vmax - Voff) when the source ceiling is known, else 0. */
    double maxStorable = 0.0;

    /** Max over bounded regions of chargeMax (0 if none). */
    double worstRegionCharge = 0.0;

    /** Entry-to-halt totals with persists priced but not cutting
     *  paths; valid when `totalBounded`. */
    bool totalBounded = false;
    double totalChargeMax = 0.0;
    double totalChargeMin = 0.0;

    /** Predicted boots to completion (0 = not predicted: program
     *  does not complete or totals unbounded). */
    double predictedBoots = 0.0;
    /** Rough forward progress: instructions retired per boot. */
    double instrsPerBoot = 0.0;

    /** Distinct instructions decoded and priced. */
    unsigned analyzedInstructions = 0;
};

/** Analyze `program` against `model`. Never simulates: the only
 *  inputs are program bytes and the extracted cost table. */
Report analyze(const isa::Program &program, const CostModel &model,
               const AnalyzerOptions &options = {});

} // namespace edb::analysis

#endif // EDB_ANALYSIS_ANALYZER_HH
