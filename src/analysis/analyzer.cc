/**
 * @file
 * Implementation of the static energy-timing analyzer. See
 * analyzer.hh for the contract and DESIGN.md §14 for the soundness
 * argument and the catalogue of over-approximations.
 *
 * Pipeline, per analyze() call:
 *
 *   1. Decode the reachable code from the program entry (calls are
 *      stepped over; callee bodies are discovered on demand).
 *   2. Split the main flow into checkpoint regions: one region per
 *      persist-point successor; CHKPT and HALT terminate a region.
 *   3. Per region, run a constant-propagation + LED-state dataflow
 *      to resolve effective addresses, stored values, sleep
 *      durations and checkpoint stack depths.
 *   4. Price every node from the CostModel and collapse the region
 *      graph by Tarjan SCCs (innermost first), inferring trip
 *      counts for the two bounded-loop idioms (count-down,
 *      divide-down) and classifying unbounded loops as io-paced /
 *      productive / barren.
 *   5. A reverse-topological DP over the condensation yields
 *      worst/best-case charge to the first persist, plus an
 *      inflow-credited lower bound used by the must-starve rule.
 */

#include "analysis/analyzer.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "isa/isa.hh"
#include "mcu/mmio_map.hh"

namespace edb::analysis {

namespace {

namespace mmio = mcu::mmio;

constexpr double kInf = std::numeric_limits<double>::infinity();

const char *
hex(std::uint32_t v, char *buf)
{
    std::snprintf(buf, 16, "0x%X", v);
    return buf;
}

std::uint32_t
brTarget(std::uint32_t pc, const isa::Instr &i)
{
    return pc + 4 + static_cast<std::uint32_t>(i.imm);
}

bool
isCondBranch(isa::Opcode op)
{
    return op >= isa::Opcode::Beq && op <= isa::Opcode::Bgeu;
}

/** MMIO registers whose value is driven by the environment (or the
 *  passage of time): a loop exiting on one of these is paced by an
 *  external event, not spinning on its own state. */
bool
isEventRegister(std::uint32_t a)
{
    switch (a) {
      case mmio::gpioIn:
      case mmio::uart0Status:
      case mmio::uart0Rx:
      case mmio::i2cStatus:
      case mmio::i2cData:
      case mmio::adcStatus:
      case mmio::adcValue:
      case mmio::rfRxStatus:
      case mmio::rfRxLen:
      case mmio::rfRxByte:
      case mmio::rfTxStatus:
      case mmio::dbgReq:
      case mmio::dbgUartStatus:
      case mmio::dbgUartRx:
      case mmio::bkptMask:
      case mmio::cycleLo:
      case mmio::cycleHi:
        return true;
      default:
        return false;
    }
}

std::optional<std::uint32_t>
fetch32(const isa::Program &p, std::uint32_t addr)
{
    for (const auto &seg : p.segments) {
        if (addr < seg.base)
            continue;
        std::uint64_t off = addr - seg.base;
        if (off + 4 > seg.bytes.size())
            continue;
        return static_cast<std::uint32_t>(seg.bytes[off]) |
               static_cast<std::uint32_t>(seg.bytes[off + 1]) << 8 |
               static_cast<std::uint32_t>(seg.bytes[off + 2]) << 16 |
               static_cast<std::uint32_t>(seg.bytes[off + 3]) << 24;
    }
    return std::nullopt;
}

// ------------------------------------------------------------------
// Abstract state: constant propagation over the 16 registers plus a
// 3-valued LED lattice (Inherit is the callee-summary placeholder:
// "whatever the LED was at the callsite").

enum LedState : std::uint8_t
{
    ledOff = 0,
    ledOn = 1,
    ledUnk = 2,
    ledInherit = 3
};

struct AbsState
{
    bool live = false;
    std::uint16_t known = 0;
    std::uint32_t v[isa::numRegs] = {};
    std::uint8_t led = ledOff;

    bool
    knows(unsigned r) const
    {
        return (known >> r) & 1u;
    }
    void
    set(unsigned r, std::uint32_t val)
    {
        known |= 1u << r;
        v[r] = val;
    }
    void
    kill(unsigned r)
    {
        known &= ~(1u << r);
    }
};

/** Lattice meet: keep a register only when both sides agree. */
bool
meetInto(AbsState &a, const AbsState &b)
{
    if (!b.live)
        return false;
    if (!a.live) {
        a = b;
        return true;
    }
    bool changed = false;
    for (unsigned r = 0; r < isa::numRegs; ++r) {
        if (a.knows(r) && (!b.knows(r) || a.v[r] != b.v[r])) {
            a.kill(r);
            changed = true;
        }
    }
    if (a.led != b.led && a.led != ledUnk) {
        a.led = ledUnk;
        changed = true;
    }
    return changed;
}

struct Ea
{
    bool known = false;
    std::uint32_t addr = 0;
    /** sp-relative with unknown sp: assume the SRAM stack. */
    bool stackish = false;
};

Ea
resolveEa(const AbsState &s, const isa::Instr &i)
{
    Ea ea;
    if (s.knows(i.rs)) {
        ea.known = true;
        ea.addr = s.v[i.rs] + static_cast<std::uint32_t>(i.imm);
    } else if (i.rs == isa::regSp) {
        ea.stackish = true;
    }
    return ea;
}

// ------------------------------------------------------------------
// Path-cost vector. Cycles are bucketed by LED state so charge can
// be derived at the end; Inherit buckets belong to callee summaries
// and are folded into on/off at the callsite. "Max" fields track
// the costliest path, "Min" fields the cheapest; netOn/netOffMin
// are the inflow-credited signed drains minimized along paths
// (the must-starve rule S2 needs a true lower bound, and with
// negative per-node weights it cannot be derived from the other
// minima).

struct PathCost
{
    double onCycMax = 0, offCycMax = 0, inhCycMax = 0;
    double onCycMin = 0, offCycMin = 0, inhCycMin = 0;
    double onSlpMax = 0, offSlpMax = 0, inhSlpMax = 0;
    double onSlpMin = 0, offSlpMin = 0, inhSlpMin = 0;
    double fixMax = 0, fixMin = 0;
    double insMax = 0, insMin = 0;
    double netOnMin = 0, netOffMin = 0;
};

PathCost
addCost(const PathCost &a, const PathCost &b)
{
    PathCost r;
    r.onCycMax = a.onCycMax + b.onCycMax;
    r.offCycMax = a.offCycMax + b.offCycMax;
    r.inhCycMax = a.inhCycMax + b.inhCycMax;
    r.onCycMin = a.onCycMin + b.onCycMin;
    r.offCycMin = a.offCycMin + b.offCycMin;
    r.inhCycMin = a.inhCycMin + b.inhCycMin;
    r.onSlpMax = a.onSlpMax + b.onSlpMax;
    r.offSlpMax = a.offSlpMax + b.offSlpMax;
    r.inhSlpMax = a.inhSlpMax + b.inhSlpMax;
    r.onSlpMin = a.onSlpMin + b.onSlpMin;
    r.offSlpMin = a.offSlpMin + b.offSlpMin;
    r.inhSlpMin = a.inhSlpMin + b.inhSlpMin;
    r.fixMax = a.fixMax + b.fixMax;
    r.fixMin = a.fixMin + b.fixMin;
    r.insMax = a.insMax + b.insMax;
    r.insMin = a.insMin + b.insMin;
    r.netOnMin = a.netOnMin + b.netOnMin;
    r.netOffMin = a.netOffMin + b.netOffMin;
    return r;
}

/** Alternative paths: worst of the maxima, best of the minima. */
PathCost
mergeCost(const PathCost &a, const PathCost &b)
{
    PathCost r;
    r.onCycMax = std::max(a.onCycMax, b.onCycMax);
    r.offCycMax = std::max(a.offCycMax, b.offCycMax);
    r.inhCycMax = std::max(a.inhCycMax, b.inhCycMax);
    r.onCycMin = std::min(a.onCycMin, b.onCycMin);
    r.offCycMin = std::min(a.offCycMin, b.offCycMin);
    r.inhCycMin = std::min(a.inhCycMin, b.inhCycMin);
    r.onSlpMax = std::max(a.onSlpMax, b.onSlpMax);
    r.offSlpMax = std::max(a.offSlpMax, b.offSlpMax);
    r.inhSlpMax = std::max(a.inhSlpMax, b.inhSlpMax);
    r.onSlpMin = std::min(a.onSlpMin, b.onSlpMin);
    r.offSlpMin = std::min(a.offSlpMin, b.offSlpMin);
    r.inhSlpMin = std::min(a.inhSlpMin, b.inhSlpMin);
    r.fixMax = std::max(a.fixMax, b.fixMax);
    r.fixMin = std::min(a.fixMin, b.fixMin);
    r.insMax = std::max(a.insMax, b.insMax);
    r.insMin = std::min(a.insMin, b.insMin);
    r.netOnMin = std::min(a.netOnMin, b.netOnMin);
    r.netOffMin = std::min(a.netOffMin, b.netOffMin);
    return r;
}

/** Scale an iteration cost by a trip-count interval [lo, hi].
 *  hiBounded=false means the maxima are meaningless (the caller
 *  raises the unbounded flag); the minima still scale by lo, and
 *  the net minimum degrades to "no claim" (-inf) if an iteration
 *  can recharge. */
PathCost
scaleCost(const PathCost &it, double lo, double hi, bool hi_bounded)
{
    PathCost r;
    double h = hi_bounded ? hi : 0.0;
    r.onCycMax = it.onCycMax * h;
    r.offCycMax = it.offCycMax * h;
    r.inhCycMax = it.inhCycMax * h;
    r.onSlpMax = it.onSlpMax * h;
    r.offSlpMax = it.offSlpMax * h;
    r.inhSlpMax = it.inhSlpMax * h;
    r.fixMax = it.fixMax * h;
    r.insMax = it.insMax * h;
    r.onCycMin = it.onCycMin * lo;
    r.offCycMin = it.offCycMin * lo;
    r.inhCycMin = it.inhCycMin * lo;
    r.onSlpMin = it.onSlpMin * lo;
    r.offSlpMin = it.offSlpMin * lo;
    r.inhSlpMin = it.inhSlpMin * lo;
    r.fixMin = it.fixMin * lo;
    r.insMin = it.insMin * lo;
    auto net = [&](double n) {
        if (n >= 0)
            return n * lo;
        return hi_bounded ? n * hi : -kInf;
    };
    r.netOnMin = net(it.netOnMin);
    r.netOffMin = net(it.netOffMin);
    return r;
}

struct Flags
{
    bool unbounded = false;
    bool io = false;
    bool productive = false;
    bool barren = false;
    bool hasHalt = false;
    bool writesChkptCtl = false;
    bool unknown = false;
    std::string why;
    /** Worst charge of one bounded iteration of an unbounded loop. */
    double iterChargeMax = 0;

    void
    merge(const Flags &o)
    {
        unbounded |= o.unbounded;
        io |= o.io;
        productive |= o.productive;
        barren |= o.barren;
        hasHalt |= o.hasHalt;
        writesChkptCtl |= o.writesChkptCtl;
        if (o.unknown && !unknown)
            why = o.why;
        unknown |= o.unknown;
        iterChargeMax = std::max(iterChargeMax, o.iterChargeMax);
    }
    void
    setUnknown(const std::string &reason)
    {
        if (!unknown)
            why = reason;
        unknown = true;
    }
};

struct DPVal
{
    PathCost c;
    Flags fl;
};

struct NodeW
{
    PathCost c;
    Flags fl;
    bool statusLoad = false;
    bool nvStore = false;
    bool terminal = false;
    bool persist = false; ///< HALT or (region view) CHKPT.
};

/** Context-independent summary of one callee. */
struct FuncSum
{
    PathCost c;
    Flags fl;
    std::uint16_t clobbers = 0xFFFF; ///< Registers possibly written.
    bool statusLoad = false;
    bool nvStore = false;
    bool mayClobberLed = false;
};

/** One analyzed view: a checkpoint region, a function body, or the
 *  whole-program totals graph. */
struct Ctx
{
    std::map<std::uint32_t, isa::Instr> code;
    std::set<std::uint32_t> bad; ///< Reachable but undecodable.
    /** Reachable but never decoded: the discovery node budget ran
     *  out. Weighted as Unknown so no bound is reported from a
     *  partial CFG. */
    std::set<std::uint32_t> overflow;
    std::map<std::uint32_t, std::vector<std::uint32_t>> succ;
    std::map<std::uint32_t, std::vector<std::uint32_t>> pred;
    std::map<std::uint32_t, AbsState> in;
    std::map<std::uint32_t, NodeW> w;
    std::set<std::uint32_t> barren; ///< Barren loop / call nodes.
};

using Edge = std::pair<std::uint32_t, std::uint32_t>;

// ------------------------------------------------------------------

class Analyzer
{
  public:
    Analyzer(const isa::Program &program, const CostModel &model,
             const AnalyzerOptions &options)
        : prog(program), m(model), opt(options)
    {
        imax = opt.maxInflowAmps > 0 ? opt.maxInflowAmps : 0.0;
    }

    Report run();

  private:
    const isa::Program &prog;
    const CostModel &m;
    const AnalyzerOptions &opt;
    double imax = 0;

    std::map<std::uint32_t, FuncSum> funcs;
    std::set<std::uint32_t> funcStack;
    std::set<std::uint32_t> visitedPcs; ///< For the report count.

    enum class View
    {
        Region, ///< CHKPT and HALT terminate.
        Callee, ///< RET terminates; HALT/CHKPT are unmodelled.
        Totals  ///< Only HALT terminates; CHKPT priced inline.
    };

    bool isTerminal(const isa::Instr &i, View view) const;
    void discover(Ctx &ctx, std::uint32_t entry, View view,
                  const std::map<std::uint32_t, isa::Instr> *universe);
    void dataflow(Ctx &ctx, std::uint32_t entry, const AbsState &at_entry,
                  View view);
    AbsState transfer(std::uint32_t pc, const isa::Instr &i,
                      AbsState s);
    void buildWeights(Ctx &ctx, View view);
    FuncSum &funcSummary(std::uint32_t entry);

    DPVal solve(Ctx &ctx, const std::set<std::uint32_t> &nodes,
                std::uint32_t entry, const std::set<Edge> &cut,
                int depth);

    struct Trips
    {
        double lo = 1, hi = 0;
        bool bounded = false;
    };
    Trips inferTrips(Ctx &ctx, const std::set<std::uint32_t> &scc,
                     std::uint32_t header, const std::set<Edge> &cut);

    bool writesReg(const isa::Instr &i, unsigned r) const;

    double chargeMax(const PathCost &c) const;
    double chargeMin(const PathCost &c) const;
    double cyclesMax(const PathCost &c) const;
    double cyclesMin(const PathCost &c) const;

    void addActive(PathCost &c, std::uint8_t led, double cyc);
    void addSleep(PathCost &c, std::uint8_t led, double cyc);
    void addFix(PathCost &c, double max_q, double min_q);
    void addCallee(PathCost &c, const PathCost &f, std::uint8_t led);
};

bool
Analyzer::isTerminal(const isa::Instr &i, View view) const
{
    switch (i.op) {
      case isa::Opcode::Halt:
        return true;
      case isa::Opcode::Ret:
      case isa::Opcode::Reti:
        return true; // Exit in Callee view, unmodelled elsewhere.
      case isa::Opcode::Callr:
        return true; // Unknown flow; flagged at weight time.
      case isa::Opcode::Chkpt:
        return view == View::Region && m.checkpointing;
      default:
        return false;
    }
}

void
Analyzer::discover(Ctx &ctx, std::uint32_t entry, View view,
                   const std::map<std::uint32_t, isa::Instr> *universe)
{
    std::deque<std::uint32_t> work{entry};
    std::set<std::uint32_t> seen{entry};
    const std::size_t max_nodes =
        opt.maxNodes ? opt.maxNodes : (std::size_t{1} << 17);
    while (!work.empty()) {
        std::uint32_t pc = work.front();
        work.pop_front();
        if (ctx.code.size() + ctx.bad.size() > max_nodes) {
            // Budget exhausted: everything still queued (this pc
            // included) stays undecoded, but its predecessors'
            // succ edges already point here. Record the frontier so
            // paths reaching it degrade to Unknown instead of
            // silently ending with an under-counted cost.
            ctx.overflow.insert(pc);
            ctx.overflow.insert(work.begin(), work.end());
            break;
        }
        std::optional<isa::Instr> in;
        if (universe) {
            auto it = universe->find(pc);
            if (it != universe->end())
                in = it->second;
        } else if (auto word = fetch32(prog, pc)) {
            in = isa::decode(*word);
        }
        if (!in) {
            ctx.bad.insert(pc);
            continue;
        }
        ctx.code[pc] = *in;
        visitedPcs.insert(pc);
        if (isTerminal(*in, view))
            continue;
        std::vector<std::uint32_t> next;
        switch (in->op) {
          case isa::Opcode::Br:
            next.push_back(brTarget(pc, *in));
            break;
          case isa::Opcode::Beq:
          case isa::Opcode::Bne:
          case isa::Opcode::Blt:
          case isa::Opcode::Bge:
          case isa::Opcode::Bltu:
          case isa::Opcode::Bgeu:
            next.push_back(brTarget(pc, *in));
            next.push_back(pc + 4);
            break;
          default:
            next.push_back(pc + 4);
            break;
        }
        for (std::uint32_t s : next) {
            ctx.succ[pc].push_back(s);
            ctx.pred[s].push_back(pc);
            if (seen.insert(s).second)
                work.push_back(s);
        }
    }
}

bool
Analyzer::writesReg(const isa::Instr &i, unsigned r) const
{
    switch (i.op) {
      case isa::Opcode::Li:
      case isa::Opcode::Lui:
      case isa::Opcode::Mov:
      case isa::Opcode::Add:
      case isa::Opcode::Sub:
      case isa::Opcode::Mul:
      case isa::Opcode::Divu:
      case isa::Opcode::Remu:
      case isa::Opcode::And:
      case isa::Opcode::Or:
      case isa::Opcode::Xor:
      case isa::Opcode::Shl:
      case isa::Opcode::Shr:
      case isa::Opcode::Sar:
      case isa::Opcode::Addi:
      case isa::Opcode::Andi:
      case isa::Opcode::Ori:
      case isa::Opcode::Xori:
      case isa::Opcode::Shli:
      case isa::Opcode::Shri:
      case isa::Opcode::Ldw:
      case isa::Opcode::Ldb:
      case isa::Opcode::Pop:
        return i.rd == r;
      default:
        return false;
    }
}

AbsState
Analyzer::transfer(std::uint32_t pc, const isa::Instr &i, AbsState s)
{
    auto bin = [&](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
        switch (i.op) {
          case isa::Opcode::Add: return a + b;
          case isa::Opcode::Sub: return a - b;
          case isa::Opcode::Mul: return a * b;
          case isa::Opcode::Divu: return b == 0 ? 0xFFFFFFFFu : a / b;
          case isa::Opcode::Remu: return b == 0 ? a : a % b;
          case isa::Opcode::And: return a & b;
          case isa::Opcode::Or: return a | b;
          case isa::Opcode::Xor: return a ^ b;
          case isa::Opcode::Shl: return a << (b & 31u);
          case isa::Opcode::Shr: return a >> (b & 31u);
          case isa::Opcode::Sar:
            return static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) >>
                static_cast<std::int32_t>(b & 31u));
          default: return 0;
        }
    };
    std::uint32_t uimm = static_cast<std::uint32_t>(i.imm);
    std::uint32_t zimm = uimm & 0xFFFFu;
    switch (i.op) {
      case isa::Opcode::Li:
        s.set(i.rd, uimm);
        break;
      case isa::Opcode::Lui:
        s.set(i.rd, zimm << 16);
        break;
      case isa::Opcode::Mov:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs]);
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Add:
      case isa::Opcode::Sub:
      case isa::Opcode::Mul:
      case isa::Opcode::Divu:
      case isa::Opcode::Remu:
      case isa::Opcode::And:
      case isa::Opcode::Or:
      case isa::Opcode::Xor:
      case isa::Opcode::Shl:
      case isa::Opcode::Shr:
      case isa::Opcode::Sar:
        if (s.knows(i.rs) && s.knows(i.rt))
            s.set(i.rd, bin(s.v[i.rs], s.v[i.rt]));
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Addi:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs] + uimm);
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Andi:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs] & zimm);
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Ori:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs] | zimm);
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Xori:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs] ^ zimm);
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Shli:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs] << (zimm & 31u));
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Shri:
        if (s.knows(i.rs))
            s.set(i.rd, s.v[i.rs] >> (zimm & 31u));
        else
            s.kill(i.rd);
        break;
      case isa::Opcode::Ldw:
      case isa::Opcode::Ldb:
        s.kill(i.rd);
        break;
      case isa::Opcode::Stw:
      case isa::Opcode::Stb: {
        Ea ea = resolveEa(s, i);
        if (ea.known && ea.addr == mmio::led) {
            if (s.knows(i.rd))
                s.led = (s.v[i.rd] & 1u) ? ledOn : ledOff;
            else
                s.led = ledUnk;
        } else if (!ea.known && !ea.stackish) {
            // An unresolved store may hit the LED register.
            s.led = ledUnk;
        }
        break;
      }
      case isa::Opcode::Push:
        if (s.knows(isa::regSp))
            s.set(isa::regSp, s.v[isa::regSp] - 4);
        break;
      case isa::Opcode::Pop:
        s.kill(i.rd);
        if (s.knows(isa::regSp))
            s.set(isa::regSp, s.v[isa::regSp] + 4);
        break;
      case isa::Opcode::Call: {
        FuncSum &f = funcSummary(brTarget(pc, i));
        for (unsigned r = 0; r < isa::numRegs; ++r)
            if (r != isa::regSp && ((f.clobbers >> r) & 1u))
                s.kill(r);
        // Balanced-stack calling convention: sp is preserved.
        if (f.mayClobberLed)
            s.led = ledUnk;
        break;
      }
      case isa::Opcode::Callr:
        s.known = 0;
        s.led = ledUnk;
        break;
      default:
        break;
    }
    return s;
}

void
Analyzer::dataflow(Ctx &ctx, std::uint32_t entry,
                   const AbsState &at_entry, View view)
{
    ctx.in[entry] = at_entry;
    ctx.in[entry].live = true;
    std::deque<std::uint32_t> work{entry};
    std::set<std::uint32_t> queued{entry};
    while (!work.empty()) {
        std::uint32_t pc = work.front();
        work.pop_front();
        queued.erase(pc);
        auto it = ctx.code.find(pc);
        if (it == ctx.code.end())
            continue;
        if (isTerminal(it->second, view))
            continue;
        AbsState out = transfer(pc, it->second, ctx.in[pc]);
        auto si = ctx.succ.find(pc);
        if (si == ctx.succ.end())
            continue;
        for (std::uint32_t s : si->second) {
            if (meetInto(ctx.in[s], out) && queued.insert(s).second)
                work.push_back(s);
        }
    }
}

void
Analyzer::addActive(PathCost &c, std::uint8_t led, double cyc)
{
    // Max side: an uncertain LED may be on.
    if (led == ledOn || led == ledUnk)
        c.onCycMax += cyc;
    else if (led == ledInherit)
        c.inhCycMax += cyc;
    else
        c.offCycMax += cyc;
    // Min side: only a definitely-on LED adds current.
    if (led == ledOn)
        c.onCycMin += cyc;
    else if (led == ledInherit)
        c.inhCycMin += cyc;
    else
        c.offCycMin += cyc;
    double t = cyc * m.cyclePeriod;
    double on = t * (m.activeAmps + m.ledAmps - imax);
    double off = t * (m.activeAmps - imax);
    if (led == ledOn) {
        c.netOnMin += on;
        c.netOffMin += on;
    } else if (led == ledInherit) {
        c.netOnMin += on;
        c.netOffMin += off;
    } else {
        c.netOnMin += off;
        c.netOffMin += off;
    }
}

void
Analyzer::addSleep(PathCost &c, std::uint8_t led, double cyc)
{
    if (led == ledOn || led == ledUnk)
        c.onSlpMax += cyc;
    else if (led == ledInherit)
        c.inhSlpMax += cyc;
    else
        c.offSlpMax += cyc;
    if (led == ledOn)
        c.onSlpMin += cyc;
    else if (led == ledInherit)
        c.inhSlpMin += cyc;
    else
        c.offSlpMin += cyc;
    double t = cyc * m.cyclePeriod;
    double on = t * (m.sleepAmps + m.ledAmps - imax);
    double off = t * (m.sleepAmps - imax);
    if (led == ledOn) {
        c.netOnMin += on;
        c.netOffMin += on;
    } else if (led == ledInherit) {
        c.netOnMin += on;
        c.netOffMin += off;
    } else {
        c.netOnMin += off;
        c.netOffMin += off;
    }
}

void
Analyzer::addFix(PathCost &c, double max_q, double min_q)
{
    c.fixMax += max_q;
    c.fixMin += min_q;
    c.netOnMin += min_q;
    c.netOffMin += min_q;
}

void
Analyzer::addCallee(PathCost &c, const PathCost &f, std::uint8_t led)
{
    c.onCycMax += f.onCycMax;
    c.offCycMax += f.offCycMax;
    c.onCycMin += f.onCycMin;
    c.offCycMin += f.offCycMin;
    c.onSlpMax += f.onSlpMax;
    c.offSlpMax += f.offSlpMax;
    c.onSlpMin += f.onSlpMin;
    c.offSlpMin += f.offSlpMin;
    c.fixMax += f.fixMax;
    c.fixMin += f.fixMin;
    c.insMax += f.insMax;
    c.insMin += f.insMin;
    switch (led) {
      case ledOn:
        c.onCycMax += f.inhCycMax;
        c.onCycMin += f.inhCycMin;
        c.onSlpMax += f.inhSlpMax;
        c.onSlpMin += f.inhSlpMin;
        c.netOnMin += f.netOnMin;
        c.netOffMin += f.netOnMin;
        break;
      case ledOff:
        c.offCycMax += f.inhCycMax;
        c.offCycMin += f.inhCycMin;
        c.offSlpMax += f.inhSlpMax;
        c.offSlpMin += f.inhSlpMin;
        c.netOnMin += f.netOffMin;
        c.netOffMin += f.netOffMin;
        break;
      case ledUnk:
        // May-on for the maxima, must-off for the minima.
        c.onCycMax += f.inhCycMax;
        c.offCycMin += f.inhCycMin;
        c.onSlpMax += f.inhSlpMax;
        c.offSlpMin += f.inhSlpMin;
        c.netOnMin += f.netOffMin;
        c.netOffMin += f.netOffMin;
        break;
      default: // ledInherit: nested call inside a callee.
        c.inhCycMax += f.inhCycMax;
        c.inhCycMin += f.inhCycMin;
        c.inhSlpMax += f.inhSlpMax;
        c.inhSlpMin += f.inhSlpMin;
        c.netOnMin += f.netOnMin;
        c.netOffMin += f.netOffMin;
        break;
    }
}

double
Analyzer::chargeMax(const PathCost &c) const
{
    double cp = m.cyclePeriod;
    return (c.onCycMax + c.inhCycMax) * cp *
               (m.activeAmps + m.ledAmps) +
           c.offCycMax * cp * m.activeAmps +
           (c.onSlpMax + c.inhSlpMax) * cp *
               (m.sleepAmps + m.ledAmps) +
           c.offSlpMax * cp * m.sleepAmps + c.fixMax;
}

double
Analyzer::chargeMin(const PathCost &c) const
{
    double cp = m.cyclePeriod;
    return c.onCycMin * cp * (m.activeAmps + m.ledAmps) +
           (c.offCycMin + c.inhCycMin) * cp * m.activeAmps +
           c.onSlpMin * cp * (m.sleepAmps + m.ledAmps) +
           (c.offSlpMin + c.inhSlpMin) * cp * m.sleepAmps + c.fixMin;
}

double
Analyzer::cyclesMax(const PathCost &c) const
{
    return c.onCycMax + c.offCycMax + c.inhCycMax + c.onSlpMax +
           c.offSlpMax + c.inhSlpMax;
}

double
Analyzer::cyclesMin(const PathCost &c) const
{
    return c.onCycMin + c.offCycMin + c.inhCycMin + c.onSlpMin +
           c.offSlpMin + c.inhSlpMin;
}

void
Analyzer::buildWeights(Ctx &ctx, View view)
{
    char buf[16];
    for (auto &[pc, in] : ctx.code) {
        NodeW nw;
        const AbsState &st = ctx.in[pc];
        std::uint8_t led = st.live ? st.led
                                   : (view == View::Callee
                                          ? static_cast<std::uint8_t>(
                                                ledInherit)
                                          : static_cast<std::uint8_t>(
                                                ledUnk));
        const CostModel::Quote &q =
            m.quotes[static_cast<std::uint8_t>(in.op)];
        double cyc = q.cycles;
        nw.c.insMax = 1;
        nw.c.insMin = 1;
        nw.terminal = isTerminal(in, view);

        switch (in.op) {
          case isa::Opcode::Halt:
            nw.persist = true;
            if (view == View::Callee)
                nw.fl.setUnknown(std::string("halt inside callee at ") +
                                 hex(pc, buf));
            else
                nw.fl.hasHalt = true;
            addActive(nw.c, led, cyc);
            break;
          case isa::Opcode::Ret:
          case isa::Opcode::Reti:
            if (view != View::Callee)
                nw.fl.setUnknown(std::string("return outside a call "
                                             "context at ") +
                                 hex(pc, buf));
            addActive(nw.c, led, cyc);
            break;
          case isa::Opcode::Callr:
            nw.fl.setUnknown(std::string("indirect call at ") +
                             hex(pc, buf));
            addActive(nw.c, led, cyc);
            break;
          case isa::Opcode::Chkpt: {
            if (m.checkpointing) {
                if (view == View::Callee) {
                    nw.fl.setUnknown(
                        std::string("checkpoint inside callee at ") +
                        hex(pc, buf));
                    addActive(nw.c, led, cyc);
                    break;
                }
                nw.persist = view == View::Region;
                double max_bytes, min_bytes;
                if (st.live && st.knows(isa::regSp) &&
                    st.v[isa::regSp] <= m.stackTop) {
                    max_bytes = min_bytes =
                        m.stackTop - st.v[isa::regSp];
                } else {
                    double cap =
                        m.chkptSlotBytes >
                                (m.chkptBaseWords + 1) * 4.0
                            ? m.chkptSlotBytes -
                                  (m.chkptBaseWords + 1) * 4.0
                            : 1024.0;
                    max_bytes = std::min(
                        cap, static_cast<double>(m.sramSize));
                    min_bytes = 0;
                }
                addActive(nw.c, led,
                          m.chkptCycles(static_cast<std::uint32_t>(
                              max_bytes)));
                addFix(nw.c,
                       m.chkptWords(static_cast<std::uint32_t>(
                           max_bytes)) *
                           m.nvWriteCharge,
                       m.chkptWords(static_cast<std::uint32_t>(
                           min_bytes)) *
                           m.nvWriteCharge);
            } else {
                addActive(nw.c, led, cyc);
            }
            break;
          }
          case isa::Opcode::Ldw:
          case isa::Opcode::Ldb: {
            Ea ea = resolveEa(st.live ? st : AbsState{}, in);
            if (ea.known && isEventRegister(ea.addr))
                nw.statusLoad = true;
            addActive(nw.c, led, cyc);
            break;
          }
          case isa::Opcode::Stw:
          case isa::Opcode::Stb: {
            Ea ea = resolveEa(st.live ? st : AbsState{}, in);
            if (ea.known) {
                if (ea.addr >= m.framBase &&
                    ea.addr < m.framBase + m.framSize) {
                    nw.nvStore = true;
                    addActive(nw.c, led, cyc + q.framExtraCycles);
                    addFix(nw.c, m.nvWriteCharge, m.nvWriteCharge);
                } else if (ea.addr >= m.mmioBase &&
                           ea.addr < m.mmioBase + m.mmioSize) {
                    bool value_known =
                        st.live && st.knows(in.rd);
                    std::uint32_t value =
                        value_known ? st.v[in.rd] : 0;
                    if (ea.addr == mmio::sleep) {
                        if (!value_known) {
                            nw.fl.setUnknown(
                                std::string(
                                    "unresolved sleep duration "
                                    "at ") +
                                hex(pc, buf));
                            addActive(nw.c, led, cyc);
                        } else {
                            addActive(nw.c, led, cyc);
                            addSleep(nw.c, led,
                                     static_cast<double>(value));
                        }
                    } else if (ea.addr == mmio::chkptCtl) {
                        nw.fl.writesChkptCtl = true;
                        nw.fl.setUnknown(
                            std::string("runtime checkpoint "
                                        "control at ") +
                            hex(pc, buf));
                        addActive(nw.c, led, cyc);
                    } else if (ea.addr == mmio::uart0Tx) {
                        addActive(nw.c, led, cyc);
                        // A frame only transmits when not busy;
                        // the min path drops it.
                        addFix(nw.c, m.uartFrameCharge(), 0);
                    } else if (ea.addr == mmio::dbgUartTx) {
                        addActive(nw.c, led, cyc);
                        addFix(nw.c, m.dbgUartFrameCharge(), 0);
                    } else {
                        addActive(nw.c, led, cyc);
                    }
                } else if (ea.addr >= m.sramBase &&
                           ea.addr < m.sramBase + m.sramSize) {
                    addActive(nw.c, led, cyc);
                } else {
                    nw.fl.setUnknown(
                        std::string("store to unmapped address "
                                    "at ") +
                        hex(pc, buf));
                    addActive(nw.c, led, cyc);
                }
            } else if (ea.stackish) {
                addActive(nw.c, led, cyc);
            } else {
                // Unknown target: may be NV (wait states + write
                // charge) and may start a UART frame. Counts as
                // forward progress for loop classification.
                nw.nvStore = true;
                addActive(nw.c, led, cyc + q.framExtraCycles);
                addFix(nw.c,
                       m.nvWriteCharge +
                           std::max(m.uartFrameCharge(),
                                    m.dbgUartFrameCharge()),
                       0);
            }
            break;
          }
          case isa::Opcode::Call: {
            addActive(nw.c, led, cyc);
            FuncSum &f = funcSummary(brTarget(pc, in));
            addCallee(nw.c, f.c, led);
            nw.fl.merge(f.fl);
            nw.statusLoad |= f.statusLoad;
            nw.nvStore |= f.nvStore;
            if (f.fl.barren && f.fl.unbounded)
                ctx.barren.insert(pc);
            break;
          }
          default:
            addActive(nw.c, led, cyc);
            break;
        }
        ctx.w[pc] = nw;
    }
    for (std::uint32_t pc : ctx.bad) {
        NodeW nw;
        nw.terminal = true;
        char b2[16];
        nw.fl.setUnknown(std::string("undecodable instruction at ") +
                         hex(pc, b2));
        ctx.w[pc] = nw;
    }
    for (std::uint32_t pc : ctx.overflow) {
        NodeW nw;
        nw.terminal = true;
        char b2[16];
        nw.fl.setUnknown(
            std::string("analysis node budget exceeded at ") +
            hex(pc, b2));
        ctx.w[pc] = nw;
    }
}

FuncSum &
Analyzer::funcSummary(std::uint32_t entry)
{
    auto it = funcs.find(entry);
    if (it != funcs.end())
        return it->second;
    if (funcStack.count(entry)) {
        // Recursion: conservative summary, flagged unknown.
        FuncSum &f = funcs[entry];
        char buf[16];
        f.fl.setUnknown(std::string("recursive call at ") +
                        hex(entry, buf));
        f.mayClobberLed = true;
        return f;
    }
    funcStack.insert(entry);
    Ctx ctx;
    discover(ctx, entry, View::Callee, nullptr);
    AbsState at_entry;
    at_entry.live = true;
    at_entry.led = ledInherit;
    dataflow(ctx, entry, at_entry, View::Callee);
    buildWeights(ctx, View::Callee);

    FuncSum sum;
    sum.clobbers = 0;
    for (auto &[pc, in] : ctx.code) {
        for (unsigned r = 0; r < isa::numRegs; ++r)
            if (r != isa::regSp && writesReg(in, r))
                sum.clobbers |= 1u << r;
        if (in.op == isa::Opcode::Call) {
            FuncSum &f = funcSummary(brTarget(pc, in));
            sum.clobbers |= f.clobbers;
            sum.mayClobberLed |= f.mayClobberLed;
        }
        if ((in.op == isa::Opcode::Stw ||
             in.op == isa::Opcode::Stb)) {
            Ea ea = resolveEa(ctx.in[pc].live ? ctx.in[pc]
                                              : AbsState{},
                              in);
            if (ea.known && ea.addr == mmio::led)
                sum.mayClobberLed = true;
            else if (!ea.known && !ea.stackish)
                sum.mayClobberLed = true;
        }
        if (in.op == isa::Opcode::Callr) {
            sum.clobbers = 0xFFFF;
            sum.mayClobberLed = true;
        }
    }
    for (auto &[pc, nw] : ctx.w) {
        sum.statusLoad |= nw.statusLoad;
        sum.nvStore |= nw.nvStore;
    }
    if (!ctx.bad.empty() || !ctx.overflow.empty())
        sum.clobbers = 0xFFFF;

    std::set<std::uint32_t> nodes;
    for (auto &[pc, nw] : ctx.w)
        nodes.insert(pc);
    DPVal v = solve(ctx, nodes, entry, {}, 0);
    sum.c = v.c;
    sum.fl = v.fl;
    funcStack.erase(entry);
    FuncSum &slot = funcs[entry];
    slot = sum;
    return slot;
}

Analyzer::Trips
Analyzer::inferTrips(Ctx &ctx, const std::set<std::uint32_t> &scc,
                     std::uint32_t header, const std::set<Edge> &cut)
{
    Trips unknown;
    std::vector<std::uint32_t> back;
    for (std::uint32_t n : scc) {
        auto si = ctx.succ.find(n);
        if (si == ctx.succ.end())
            continue;
        for (std::uint32_t s : si->second)
            if (s == header && !cut.count({n, s}))
                back.push_back(n);
    }
    if (back.size() != 1)
        return unknown;
    std::uint32_t u = back[0];
    if (u == header)
        return unknown; // Back edge cannot double as the loop entry.
    auto at = [&](std::uint32_t pc) -> const isa::Instr * {
        auto it = ctx.code.find(pc);
        return it == ctx.code.end() ? nullptr : &it->second;
    };
    const isa::Instr *bi = at(u);
    if (!bi || bi->op != isa::Opcode::Bne || brTarget(u, *bi) != header)
        return unknown;
    const isa::Instr *cmp = at(u - 4);
    if (!cmp || cmp->op != isa::Opcode::Cmpi || cmp->imm != 0 ||
        !scc.count(u - 4))
        return unknown;
    unsigned rc = cmp->rs;
    if (rc == isa::regSp)
        return unknown;

    auto predsOf = [&](std::uint32_t n) {
        std::set<std::uint32_t> out;
        auto it = ctx.pred.find(n);
        if (it != ctx.pred.end())
            out.insert(it->second.begin(), it->second.end());
        return out;
    };
    // The test must run on fresh flags every trip: the only way onto
    // the back edge is through the cmp. A branch from the body
    // straight to the bne would take it on stale flags (and, for the
    // count-down idiom, skip the decrement), voiding the bound.
    // Branches *into* the decrement are fine — the counter still
    // moves every trip (libedb's crc8 skip does exactly that).
    if (predsOf(u) != std::set<std::uint32_t>{u - 4})
        return unknown;

    /** True when some body path can leave the loop without reaching
     *  the bne: the trip count then only has an upper bound. */
    auto hasEarlyExit = [&] {
        for (std::uint32_t n : scc) {
            if (n == u)
                continue;
            auto wi = ctx.w.find(n);
            if (wi != ctx.w.end() && wi->second.terminal)
                return true;
            auto si = ctx.succ.find(n);
            if (si == ctx.succ.end())
                continue;
            for (std::uint32_t s : si->second)
                if (!scc.count(s))
                    return true;
        }
        return false;
    };

    // Reject if anything else in the loop can write the counter.
    auto counterClobbered = [&](std::uint32_t skip_pc) {
        for (std::uint32_t n : scc) {
            if (n == skip_pc)
                continue;
            const isa::Instr *in = at(n);
            if (!in)
                return true;
            if (writesReg(*in, rc))
                return true;
            if (in->op == isa::Opcode::Call) {
                FuncSum &f = funcSummary(brTarget(n, *in));
                if ((f.clobbers >> rc) & 1u)
                    return true;
            }
            if (in->op == isa::Opcode::Callr)
                return true;
        }
        return false;
    };

    // Idiom 1, count-down: addi rc, rc, -1 / cmpi rc, 0 / bne hdr
    // with a dominating li rc, N immediately above the header. The
    // cmp may only be entered through the decrement — otherwise a
    // body branch targeting the cmp directly yields a trip that
    // tests without decrementing, and the real count exceeds N.
    const isa::Instr *dec = at(u - 8);
    if (dec && dec->op == isa::Opcode::Addi && dec->rd == rc &&
        dec->rs == rc && dec->imm == -1 && scc.count(u - 8) &&
        predsOf(u - 4) == std::set<std::uint32_t>{u - 8} &&
        !counterClobbered(u - 8)) {
        // Walk up from the header through its unique straight-line
        // predecessor chain looking for the initializer.
        auto preds = [&](std::uint32_t n) {
            auto it = ctx.pred.find(n);
            return it == ctx.pred.end() ? std::vector<std::uint32_t>{}
                                        : it->second;
        };
        {
            auto hp = preds(header);
            std::set<std::uint32_t> hs(hp.begin(), hp.end());
            std::set<std::uint32_t> want(back.begin(), back.end());
            want.insert(header - 4);
            if (hs != want)
                return unknown;
        }
        std::uint32_t p = header - 4;
        for (int steps = 0; steps < 16; ++steps) {
            const isa::Instr *in = at(p);
            if (!in || scc.count(p))
                return unknown;
            if (in->op == isa::Opcode::Li && in->rd == rc) {
                std::int32_t n = in->imm;
                if (n < 1)
                    return unknown;
                Trips t;
                t.hi = static_cast<double>(n);
                // Exactly N trips only when the bne is the sole way
                // out; a side exit (or halt) in the body caps just
                // the maximum.
                t.lo = hasEarlyExit() ? 1.0 : t.hi;
                t.bounded = true;
                return t;
            }
            if (writesReg(*in, rc) || in->op == isa::Opcode::Call ||
                in->op == isa::Opcode::Callr ||
                in->op == isa::Opcode::Br || isCondBranch(in->op) ||
                isTerminal(*in, View::Region))
                return unknown;
            auto pp = preds(p);
            if (pp.size() != 1 || pp[0] != p - 4)
                return unknown;
            p -= 4;
        }
        return unknown;
    }

    // Idiom 2, divide-down: a single divu rc, rc, rk with known
    // divisor >= 2 bounds the trip count by 32 halvings (+1 for
    // the final zero test).
    std::uint32_t div_pc = 0;
    unsigned found = 0;
    for (std::uint32_t n : scc) {
        const isa::Instr *in = at(n);
        if (in && in->op == isa::Opcode::Divu && in->rd == rc &&
            in->rs == rc) {
            div_pc = n;
            ++found;
        }
    }
    if (found == 1 && !counterClobbered(div_pc)) {
        // The 33-halving cap needs the divide on EVERY trip: reject
        // if the back edge is reachable from the header without
        // passing the divu (edges re-entering the header are a
        // completed trip, not a bypass).
        bool skippable = false;
        if (div_pc != header) {
            std::set<std::uint32_t> seen{header};
            std::deque<std::uint32_t> bfs{header};
            while (!bfs.empty() && !skippable) {
                std::uint32_t n = bfs.front();
                bfs.pop_front();
                auto si = ctx.succ.find(n);
                if (si == ctx.succ.end())
                    continue;
                for (std::uint32_t s : si->second) {
                    if (s == header || s == div_pc || !scc.count(s))
                        continue;
                    if (s == u) {
                        skippable = true;
                        break;
                    }
                    if (seen.insert(s).second)
                        bfs.push_back(s);
                }
            }
        }
        const isa::Instr *dv = at(div_pc);
        const AbsState &st = ctx.in[div_pc];
        if (!skippable && st.live && st.knows(dv->rt) &&
            st.v[dv->rt] >= 2) {
            Trips t;
            t.lo = 1;
            t.hi = 33;
            t.bounded = true;
            return t;
        }
    }
    return unknown;
}

DPVal
Analyzer::solve(Ctx &ctx, const std::set<std::uint32_t> &nodes,
                std::uint32_t entry, const std::set<Edge> &cut,
                int depth)
{
    char buf[16];
    DPVal fallback;
    if (depth > 64 || !nodes.count(entry)) {
        fallback.fl.setUnknown("analysis depth exceeded");
        return fallback;
    }

    auto succsOf = [&](std::uint32_t n) {
        std::vector<std::uint32_t> out;
        auto wi = ctx.w.find(n);
        if (wi != ctx.w.end() && wi->second.terminal)
            return out;
        auto it = ctx.succ.find(n);
        if (it == ctx.succ.end())
            return out;
        for (std::uint32_t s : it->second)
            if (nodes.count(s) && !cut.count({n, s}))
                out.push_back(s);
        return out;
    };

    // Iterative Tarjan; SCCs are emitted in reverse topological
    // order (all successors of an SCC are emitted before it).
    std::map<std::uint32_t, int> index, low;
    std::map<std::uint32_t, bool> onStack;
    std::vector<std::uint32_t> stack;
    std::vector<std::vector<std::uint32_t>> sccs;
    int next_index = 0;
    struct Frame
    {
        std::uint32_t node;
        std::vector<std::uint32_t> succs;
        std::size_t child = 0;
    };
    for (std::uint32_t root : nodes) {
        if (index.count(root))
            continue;
        std::vector<Frame> call;
        call.push_back({root, succsOf(root), 0});
        index[root] = low[root] = next_index++;
        stack.push_back(root);
        onStack[root] = true;
        while (!call.empty()) {
            Frame &f = call.back();
            if (f.child < f.succs.size()) {
                std::uint32_t s = f.succs[f.child++];
                if (!index.count(s)) {
                    call.push_back({s, succsOf(s), 0});
                    index[s] = low[s] = next_index++;
                    stack.push_back(s);
                    onStack[s] = true;
                } else if (onStack[s]) {
                    low[f.node] = std::min(low[f.node], index[s]);
                }
            } else {
                if (low[f.node] == index[f.node]) {
                    std::vector<std::uint32_t> scc;
                    while (true) {
                        std::uint32_t v = stack.back();
                        stack.pop_back();
                        onStack[v] = false;
                        scc.push_back(v);
                        if (v == f.node)
                            break;
                    }
                    sccs.push_back(std::move(scc));
                }
                std::uint32_t done = f.node;
                call.pop_back();
                if (!call.empty())
                    low[call.back().node] =
                        std::min(low[call.back().node], low[done]);
            }
        }
    }

    std::map<std::uint32_t, DPVal> vals;
    auto mergeSuccVals = [&](const std::vector<std::uint32_t> &targets,
                             bool &any) -> DPVal {
        DPVal mv;
        any = false;
        for (std::uint32_t s : targets) {
            auto it = vals.find(s);
            if (it == vals.end())
                continue;
            if (!any) {
                mv = it->second;
                any = true;
            } else {
                mv.c = mergeCost(mv.c, it->second.c);
                mv.fl.merge(it->second.fl);
            }
        }
        return mv;
    };

    for (const auto &scc : sccs) {
        std::set<std::uint32_t> members(scc.begin(), scc.end());
        bool is_loop = scc.size() > 1;
        if (!is_loop) {
            auto ss = succsOf(scc[0]);
            for (std::uint32_t s : ss)
                if (s == scc[0])
                    is_loop = true;
        }
        if (!is_loop) {
            std::uint32_t n = scc[0];
            const NodeW &w = ctx.w[n];
            DPVal v;
            v.c = w.c;
            v.fl = w.fl;
            auto ss = succsOf(n);
            if (!ss.empty()) {
                bool any = false;
                DPVal mv = mergeSuccVals(ss, any);
                if (any) {
                    v.c = addCost(w.c, mv.c);
                    v.fl.merge(mv.fl);
                }
            } else if (!w.terminal) {
                // Distinguish a genuine dead end (discover recorded
                // no successors at all — e.g. the node-budget break)
                // from a sub-CFG leaf whose outgoing edges were all
                // cut (normal for loop bodies: the back edge into
                // the header is removed before the body is solved)
                // or lead outside `nodes` (region exits). The former
                // is unknown; the latter just ends the path here.
                auto it = ctx.succ.find(n);
                if (it == ctx.succ.end() || it->second.empty())
                    v.fl.setUnknown(std::string("control falls off "
                                                "analyzed code at ") +
                                    hex(n, buf));
            }
            vals[n] = v;
            continue;
        }

        // Loop SCC. Find the unique header.
        std::set<std::uint32_t> headers;
        if (members.count(entry))
            headers.insert(entry);
        for (std::uint32_t n : nodes) {
            if (members.count(n))
                continue;
            for (std::uint32_t s : succsOf(n))
                if (members.count(s))
                    headers.insert(s);
        }
        DPVal v;
        if (headers.size() != 1) {
            v.fl.setUnknown(std::string("irreducible loop near ") +
                            hex(scc[0], buf));
            v.fl.unbounded = true;
            for (std::uint32_t n : scc)
                vals[n] = v;
            continue;
        }
        std::uint32_t header = *headers.begin();

        std::set<Edge> inner_cut = cut;
        for (std::uint32_t n : members) {
            for (std::uint32_t s : succsOf(n))
                if (s == header)
                    inner_cut.insert({n, s});
        }
        DPVal iter = solve(ctx, members, header, inner_cut,
                           depth + 1);
        bool iter_bounded = !iter.fl.unbounded && !iter.fl.unknown;

        Trips trips = inferTrips(ctx, members, header, cut);

        if (trips.bounded && iter_bounded) {
            v.c = scaleCost(iter.c, trips.lo, trips.hi, true);
            v.fl = iter.fl;
        } else if (trips.bounded) {
            v.c = scaleCost(iter.c, trips.lo, 0, false);
            v.fl = iter.fl; // Inner unbounded/unknown propagates.
        } else {
            v.c = scaleCost(iter.c, 1, 0, false);
            v.fl = iter.fl;
            v.fl.unbounded = true;
            bool io = false, productive = false;
            for (std::uint32_t n : members) {
                const NodeW &w = ctx.w[n];
                io |= w.statusLoad;
                productive |= w.nvStore;
            }
            if (io)
                v.fl.io = true;
            else if (productive)
                v.fl.productive = true;
            else {
                v.fl.barren = true;
                for (std::uint32_t n : members)
                    ctx.barren.insert(n);
            }
            if (iter_bounded && !io)
                v.fl.iterChargeMax = std::max(v.fl.iterChargeMax,
                                              chargeMax(iter.c));
        }

        // Exits: paths leaving the SCC continue into already-solved
        // successors.
        std::vector<std::uint32_t> exits;
        for (std::uint32_t n : members)
            for (std::uint32_t s : succsOf(n))
                if (!members.count(s))
                    exits.push_back(s);
        if (!exits.empty()) {
            bool any = false;
            DPVal mv = mergeSuccVals(exits, any);
            if (any) {
                v.c = addCost(v.c, mv.c);
                v.fl.merge(mv.fl);
            }
        } else if (!v.fl.unbounded) {
            // A "bounded" loop with no way out cannot actually be
            // bounded; degrade honestly.
            v.fl.unbounded = true;
            v.fl.barren = true;
            for (std::uint32_t n : members)
                ctx.barren.insert(n);
        }
        for (std::uint32_t n : scc)
            vals[n] = v;
    }

    auto it = vals.find(entry);
    if (it == vals.end()) {
        fallback.fl.setUnknown("entry not reached by solver");
        return fallback;
    }
    return it->second;
}

Report
Analyzer::run()
{
    Report rep;
    rep.checkpointing = m.checkpointing;
    rep.budget = m.usableBudget();
    rep.bootCharge = m.bootCharge();
    if (opt.maxSourceVolts > m.brownOutVolts)
        rep.maxStorable =
            m.capacitanceF * (opt.maxSourceVolts - m.brownOutVolts);

    // Main flow, full view (checkpoints priced inline).
    Ctx main;
    discover(main, static_cast<std::uint32_t>(prog.entry),
             View::Totals, nullptr);

    // Region entries: program entry + every post-checkpoint pc.
    std::vector<std::uint32_t> entries{
        static_cast<std::uint32_t>(prog.entry)};
    if (m.checkpointing) {
        for (auto &[pc, in] : main.code)
            if (in.op == isa::Opcode::Chkpt)
                entries.push_back(pc + 4);
    }
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()),
                  entries.end());

    double avail = rep.budget - rep.bootCharge;
    char buf[16];

    bool any_unbounded_clean = false;
    for (std::uint32_t e : entries) {
        if (!main.code.count(e) && !main.bad.count(e) &&
            !main.overflow.count(e))
            continue;
        // Every reboot into a post-checkpoint region replays the
        // restore before the first region instruction; its drain
        // comes out of the same power-on→first-persist window the
        // oracle measures, so the region must fit what is left.
        double region_avail = avail;
        if (m.checkpointing &&
            e != static_cast<std::uint32_t>(prog.entry))
            region_avail -= m.restoreChargeMax();
        Ctx rc;
        discover(rc, e, View::Region, &main.code);
        AbsState at_entry;
        at_entry.live = true;
        if (e == static_cast<std::uint32_t>(prog.entry)) {
            // Reset state: registers cleared, sp at the stack top.
            for (unsigned r = 0; r < isa::numRegs; ++r)
                at_entry.set(r, 0);
            at_entry.set(isa::regSp, m.stackTop);
        }
        at_entry.led = ledOff; // The LED load drops on power loss.
        dataflow(rc, e, at_entry, View::Region);
        buildWeights(rc, View::Region);

        std::set<std::uint32_t> nodes;
        for (auto &[pc, nw] : rc.w)
            nodes.insert(pc);
        DPVal v = solve(rc, nodes, e, {}, 0);

        RegionInfo info;
        info.entryPc = e;
        info.bounded = !v.fl.unbounded && !v.fl.unknown;
        if (info.bounded) {
            info.chargeMax = chargeMax(v.c);
            info.chargeMin = chargeMin(v.c);
            info.cyclesMax = cyclesMax(v.c);
            info.cyclesMin = cyclesMin(v.c);
            info.netDrainMin = v.c.netOffMin;
            rep.worstRegionCharge =
                std::max(rep.worstRegionCharge, info.chargeMax);
        }
        info.iterChargeMax = v.fl.iterChargeMax;
        if (v.fl.barren)
            info.worstLoop = LoopKind::Barren;
        else if (v.fl.productive)
            info.worstLoop = LoopKind::Productive;
        else if (v.fl.io)
            info.worstLoop = LoopKind::IoBound;
        rep.haltReachable |= v.fl.hasHalt;

        // Verdict for this region.
        if (v.fl.unknown) {
            info.verdict = Verdict::Unknown;
            if (rep.reason.empty())
                rep.reason = v.fl.why;
        } else if (v.fl.barren) {
            // S1: is every persist point cut off by barren loops?
            std::set<std::uint32_t> live;
            std::deque<std::uint32_t> work;
            if (!rc.barren.count(e)) {
                work.push_back(e);
                live.insert(e);
            }
            bool persist_ok = false;
            while (!work.empty()) {
                std::uint32_t n = work.front();
                work.pop_front();
                const NodeW &w = rc.w[n];
                if (w.persist && !w.fl.unknown) {
                    persist_ok = true;
                    break;
                }
                if (w.terminal)
                    continue;
                auto it = rc.succ.find(n);
                if (it == rc.succ.end())
                    continue;
                for (std::uint32_t s : it->second) {
                    if (rc.barren.count(s) || !nodes.count(s))
                        continue;
                    if (live.insert(s).second)
                        work.push_back(s);
                }
            }
            info.unavoidableBarren = !persist_ok;
            info.verdict = persist_ok ? Verdict::MayStarve
                                      : Verdict::Starves;
            if (info.verdict == Verdict::Starves &&
                rep.reason.empty())
                rep.reason =
                    std::string("barren loop stands between region ") +
                    hex(e, buf) + " and every persist point";
        } else if (v.fl.unbounded) {
            if (info.iterChargeMax > 0 &&
                info.iterChargeMax > region_avail) {
                info.verdict = Verdict::MayStarve;
                if (rep.reason.empty())
                    rep.reason = std::string("one loop iteration in "
                                             "region ") +
                                 hex(e, buf) +
                                 " may exceed the per-boot budget";
            } else {
                info.verdict = Verdict::RunsForever;
                any_unbounded_clean = true;
            }
        } else if (info.chargeMax <= region_avail) {
            info.verdict = Verdict::Completes;
        } else {
            // S2 (must-starve arithmetic): even from a full
            // capacitor at the source ceiling, with the inflow
            // ceiling credited for the whole crossing, the region
            // cannot be crossed.
            double boot_net =
                m.bootSeconds * (m.activeAmps - imax);
            bool must = imax > 0 && rep.maxStorable > 0 &&
                        info.netDrainMin + boot_net >
                            rep.maxStorable;
            info.verdict =
                must ? Verdict::Starves : Verdict::MayStarve;
            if (rep.reason.empty())
                rep.reason =
                    must ? std::string("region ") + hex(e, buf) +
                               " demands more charge than the "
                               "capacitor can ever store"
                         : std::string("worst-case path in region ") +
                               hex(e, buf) +
                               " exceeds the per-boot budget";
        }
        rep.regions.push_back(info);
    }

    // Aggregate: Unknown > Starves > MayStarve > clean.
    bool has_unknown = false, has_starves = false, has_may = false;
    for (const auto &r : rep.regions) {
        has_unknown |= r.verdict == Verdict::Unknown;
        has_starves |= r.verdict == Verdict::Starves;
        has_may |= r.verdict == Verdict::MayStarve;
    }
    if (has_unknown)
        rep.verdict = Verdict::Unknown;
    else if (has_starves)
        rep.verdict = Verdict::Starves;
    else if (has_may)
        rep.verdict = Verdict::MayStarve;
    else if (any_unbounded_clean || !rep.haltReachable)
        rep.verdict = Verdict::RunsForever;
    else
        rep.verdict = Verdict::Completes;
    if (rep.reason.empty()) {
        switch (rep.verdict) {
          case Verdict::Completes:
            rep.reason = "all regions fit the per-boot budget and "
                         "halt is reachable";
            break;
          case Verdict::RunsForever:
            rep.reason = rep.haltReachable
                             ? "program loops but every boot makes "
                               "progress"
                             : "program never halts but every boot "
                               "makes progress";
            break;
          default:
            break;
        }
    }

    // Whole-program totals (persists priced but not cutting paths)
    // for the boots-to-completion prediction.
    if (rep.verdict == Verdict::Completes ||
        rep.verdict == Verdict::MayStarve) {
        AbsState at_entry;
        at_entry.live = true;
        for (unsigned r = 0; r < isa::numRegs; ++r)
            at_entry.set(r, 0);
        at_entry.set(isa::regSp, m.stackTop);
        at_entry.led = ledOff;
        dataflow(main, static_cast<std::uint32_t>(prog.entry),
                 at_entry, View::Totals);
        buildWeights(main, View::Totals);
        std::set<std::uint32_t> nodes;
        for (auto &[pc, nw] : main.w)
            nodes.insert(pc);
        DPVal tv = solve(main, nodes,
                         static_cast<std::uint32_t>(prog.entry), {},
                         0);
        if (!tv.fl.unbounded && !tv.fl.unknown) {
            rep.totalBounded = true;
            rep.totalChargeMax = chargeMax(tv.c);
            rep.totalChargeMin = chargeMin(tv.c);
            if (rep.haltReachable && avail > 0) {
                double demand =
                    0.5 * (rep.totalChargeMax + rep.totalChargeMin);
                double per_boot = avail;
                double ie = opt.expectedInflowAmps;
                if (ie > 0 && ie < m.activeAmps)
                    per_boot =
                        avail * m.activeAmps / (m.activeAmps - ie);
                if (ie >= m.activeAmps && ie > 0) {
                    rep.predictedBoots = 1;
                } else if (m.checkpointing && rep.regions.size() > 1) {
                    rep.predictedBoots = std::max(
                        1.0, std::ceil(demand / per_boot));
                } else {
                    rep.predictedBoots =
                        rep.totalChargeMax <= per_boot ? 1 : 0;
                }
                double ins_mid =
                    0.5 * (tv.c.insMax + tv.c.insMin);
                if (demand > 0)
                    rep.instrsPerBoot =
                        per_boot * ins_mid / demand;
            }
        }
    }
    rep.analyzedInstructions =
        static_cast<unsigned>(visitedPcs.size());
    return rep;
}

} // namespace

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Completes: return "completes";
      case Verdict::RunsForever: return "runs-forever";
      case Verdict::MayStarve: return "may-starve";
      case Verdict::Starves: return "starves";
      case Verdict::Unknown: return "unknown";
    }
    return "?";
}

Report
analyze(const isa::Program &program, const CostModel &model,
        const AnalyzerOptions &options)
{
    Analyzer a(program, model, options);
    return a.run();
}

} // namespace edb::analysis
