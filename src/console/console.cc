#include "console/console.hh"

#include <cstdint>
#include <iomanip>
#include <optional>
#include <sstream>

namespace edb::console {

namespace {

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream iss(line);
    std::string tok;
    while (iss >> tok)
        tokens.push_back(tok);
    return tokens;
}

std::optional<std::uint32_t>
parseU32(const std::string &tok)
{
    try {
        std::size_t pos = 0;
        unsigned long long v = std::stoull(tok, &pos, 0);
        if (pos != tok.size() || v > 0xFFFFFFFFull)
            return std::nullopt;
        return static_cast<std::uint32_t>(v);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

std::optional<double>
parseVolts(const std::string &tok)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(tok, &pos);
        if (pos != tok.size() || v < 0.0 || v > 10.0)
            return std::nullopt;
        return v;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

} // namespace

Console::Console(edbdbg::EdbBoard &board) : edb(board) {}

std::string
Console::execute(const std::string &line)
{
    auto tokens = tokenize(line);
    if (tokens.empty())
        return "";
    const std::string &cmd = tokens[0];
    std::vector<std::string> args(tokens.begin() + 1, tokens.end());

    if (cmd == "help")
        return cmdHelp();
    if (cmd == "status")
        return cmdStatus();
    if (cmd == "vcap") {
        std::ostringstream oss;
        oss << "Vcap = " << std::fixed << std::setprecision(3)
            << edb.target().power().voltage() << " V";
        return oss.str();
    }
    if (cmd == "charge")
        return cmdCharge(args, true);
    if (cmd == "discharge")
        return cmdCharge(args, false);
    if (cmd == "break")
        return cmdBreak(args);
    if (cmd == "watch")
        return cmdWatch(args);
    if (cmd == "trace")
        return cmdTrace(args);
    if (cmd == "read")
        return cmdRead(args);
    if (cmd == "write")
        return cmdWrite(args);
    if (cmd == "resume")
        return cmdResume();
    if (cmd == "break-in")
        return cmdBreakIn();
    return "error: unknown command '" + cmd + "' (try 'help')";
}

std::string
Console::cmdHelp() const
{
    return "commands:\n"
           "  charge <volts> | discharge <volts>\n"
           "  break en <id> [<volts>] | break dis <id>\n"
           "  break en energy <volts> | break dis energy\n"
           "  watch en <id> | watch dis <id>\n"
           "  trace <energy|iobus|rfid|watchpoints> [on|off]\n"
           "  read <addr> <len>\n"
           "  write <addr> <value>\n"
           "  resume | break-in | status | vcap | help";
}

std::string
Console::cmdStatus()
{
    std::ostringstream oss;
    oss << "target: "
        << mcu::mcuStateName(edb.target().state()) << ", Vcap "
        << std::fixed << std::setprecision(3)
        << edb.target().power().voltage() << " V"
        << (edb.tethered() ? ", tethered" : "");
    auto *session = edb.session();
    if (session && session->open()) {
        oss << "\nsession: "
            << edbdbg::sessionReasonName(session->reason()) << " id "
            << session->id() << " (saved " << std::setprecision(3)
            << session->savedVolts() << " V)";
    }
    return oss.str();
}

std::string
Console::cmdCharge(const std::vector<std::string> &args, bool charge)
{
    if (args.size() != 1)
        return "usage: charge|discharge <volts>";
    auto volts = parseVolts(args[0]);
    if (!volts)
        return "error: bad voltage";
    bool ok = charge ? edb.chargeTo(*volts) : edb.dischargeTo(*volts);
    if (!ok)
        return "error: level not reached (timeout)";
    std::ostringstream oss;
    oss << "ok, Vcap = " << std::fixed << std::setprecision(3)
        << edb.target().power().voltage() << " V";
    return oss.str();
}

std::string
Console::cmdBreak(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return "usage: break en|dis <id|energy> [<volts>]";
    bool enable = args[0] == "en";
    if (!enable && args[0] != "dis")
        return "usage: break en|dis <id|energy> [<volts>]";
    if (args[1] == "energy") {
        if (!enable) {
            edb.disableEnergyBreakpoint();
            return "energy breakpoint disabled";
        }
        if (args.size() != 3)
            return "usage: break en energy <volts>";
        auto volts = parseVolts(args[2]);
        if (!volts)
            return "error: bad voltage";
        edb.enableEnergyBreakpoint(*volts);
        std::ostringstream oss;
        oss << "energy breakpoint at " << *volts << " V";
        return oss.str();
    }
    auto id = parseU32(args[1]);
    if (!id || *id > 31)
        return "error: bad breakpoint id";
    if (!enable) {
        edb.disableCodeBreakpoint(*id);
        return "breakpoint " + args[1] + " disabled";
    }
    std::optional<double> threshold;
    if (args.size() == 3) {
        threshold = parseVolts(args[2]);
        if (!threshold)
            return "error: bad voltage";
    }
    edb.enableCodeBreakpoint(*id, threshold);
    return threshold ? "combined breakpoint " + args[1] + " enabled"
                     : "code breakpoint " + args[1] + " enabled";
}

std::string
Console::cmdWatch(const std::vector<std::string> &args)
{
    if (args.size() != 2 || (args[0] != "en" && args[0] != "dis"))
        return "usage: watch en|dis <id>";
    auto id = parseU32(args[1]);
    if (!id)
        return "error: bad watchpoint id";
    if (args[0] == "en")
        edb.enableWatchpoint(*id);
    else
        edb.disableWatchpoint(*id);
    return "watchpoint " + args[1] +
           (args[0] == "en" ? " enabled" : " disabled");
}

std::string
Console::cmdTrace(const std::vector<std::string> &args)
{
    if (args.empty() || args.size() > 2)
        return "usage: trace <energy|iobus|rfid|watchpoints> [on|off]";
    bool on = args.size() < 2 || args[1] == "on";
    if (args.size() == 2 && args[1] != "on" && args[1] != "off")
        return "usage: trace <stream> [on|off]";
    if (!edb.setStream(args[0], on))
        return "error: unknown stream '" + args[0] + "'";
    return "trace " + args[0] + (on ? " on" : " off");
}

std::string
Console::cmdRead(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return "usage: read <addr> <len>";
    auto addr = parseU32(args[0]);
    auto len = parseU32(args[1]);
    if (!addr || !len || *len == 0 || *len > 256)
        return "error: bad address or length";
    auto *session = edb.session();
    if (!session || !session->open())
        return "error: no open debug session";
    auto bytes = session->readBytes(*addr,
                                    static_cast<std::uint16_t>(*len));
    if (!bytes)
        return "error: read failed";
    std::ostringstream oss;
    oss << std::hex << std::setfill('0');
    for (std::size_t i = 0; i < bytes->size(); ++i) {
        if (i % 16 == 0) {
            if (i)
                oss << '\n';
            oss << "0x" << std::setw(4) << (*addr + i) << ':';
        }
        oss << ' ' << std::setw(2) << unsigned((*bytes)[i]);
    }
    return oss.str();
}

std::string
Console::cmdWrite(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return "usage: write <addr> <value>";
    auto addr = parseU32(args[0]);
    auto value = parseU32(args[1]);
    if (!addr || !value)
        return "error: bad address or value";
    auto *session = edb.session();
    if (!session || !session->open())
        return "error: no open debug session";
    if (!session->write32(*addr, *value))
        return "error: write failed";
    return "ok";
}

std::string
Console::cmdResume()
{
    auto *session = edb.session();
    if (!session || !session->open())
        return "error: no open debug session";
    session->resume();
    return "resumed";
}

std::string
Console::cmdBreakIn()
{
    if (!edb.breakIn())
        return "error: target not running or busy";
    return cmdStatus();
}

} // namespace edb::console
