/**
 * @file
 * The EDB debug console (paper Section 4.2, Table 1).
 *
 * A command-line interface for interacting directly with EDB and
 * indirectly with the target. Grammar (after Table 1):
 *
 *     charge <volts>            discharge <volts>
 *     break en <id> [<volts>]   break dis <id>
 *     break en energy <volts>   break dis energy
 *     watch en <id>             watch dis <id>
 *     trace <energy|iobus|rfid|watchpoints> [on|off]
 *     read <addr> <len>
 *     write <addr> <value>
 *     resume
 *     break-in
 *     status | vcap | help
 *
 * Commands that need a session (read/write/resume) report an error
 * when none is open. Numeric arguments accept 0x-prefixed hex.
 */

#ifndef EDB_CONSOLE_CONSOLE_HH
#define EDB_CONSOLE_CONSOLE_HH

#include <string>
#include <vector>

#include "edb/board.hh"

namespace edb::console {

/** Interactive command interpreter over an EDB board. */
class Console
{
  public:
    explicit Console(edbdbg::EdbBoard &board);

    /**
     * Execute one command line.
     * @return Output text (possibly multi-line, no trailing NL).
     */
    std::string execute(const std::string &line);

    /** The underlying board. */
    edbdbg::EdbBoard &board() { return edb; }

  private:
    std::string cmdHelp() const;
    std::string cmdStatus();
    std::string cmdCharge(const std::vector<std::string> &args,
                          bool charge);
    std::string cmdBreak(const std::vector<std::string> &args);
    std::string cmdWatch(const std::vector<std::string> &args);
    std::string cmdTrace(const std::vector<std::string> &args);
    std::string cmdRead(const std::vector<std::string> &args);
    std::string cmdWrite(const std::vector<std::string> &args);
    std::string cmdResume();
    std::string cmdBreakIn();

    edbdbg::EdbBoard &edb;
};

} // namespace edb::console

#endif // EDB_CONSOLE_CONSOLE_HH
