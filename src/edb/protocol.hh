/**
 * @file
 * Debugger-side parser for the target<->EDB wire protocol.
 *
 * Consumes the byte stream arriving on the debug UART, deframes it
 * (sync byte + length + CRC-8, see runtime/protocol_defs.hh) and
 * raises typed events (assert, breakpoint, energy-guard begin/end,
 * printf, read replies, write acks). The printf formatter lives here
 * too: the target ships the format string and raw argument words;
 * the host renders the text, keeping the target-side cost to a byte
 * loop.
 *
 * Robustness: a corrupted byte fails the CRC and the parser re-hunts
 * for the next sync byte; a dropped byte leaves a partial frame that
 * the inter-byte timeout expires, so the engine always returns to
 * hunting — it can never desync permanently or emit an event from a
 * damaged frame.
 */

#ifndef EDB_EDB_PROTOCOL_HH
#define EDB_EDB_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
} // namespace edb::sim

namespace edb::edbdbg {

/** Build one wire frame (sync + len + payload + CRC) around a
 *  payload. Payloads longer than proto::maxPayload are truncated
 *  (callers never send any that long). */
std::vector<std::uint8_t>
buildFrame(const std::vector<std::uint8_t> &payload);

/** Framed byte-stream parser for target->debugger messages. */
class ProtocolEngine
{
  public:
    struct Handlers
    {
        /**
         * First-shot hook for CRC-valid frames: higher protocols
         * (the debug server's JSON-RPC layer) see the raw payload
         * before the target-protocol decoder. Return true to consume
         * the frame; false falls through to the typed handlers.
         */
        std::function<bool(const std::vector<std::uint8_t> &)>
            rawFrame;
        std::function<void(std::uint16_t)> assertFail;
        std::function<void(std::uint16_t)> bkptHit;
        std::function<void()> guardBegin;
        std::function<void()> guardEnd;
        std::function<void(const std::string &)> printfText;
        /** Memory-read reply chunk (session reads). */
        std::function<void(const std::vector<std::uint8_t> &)>
            readReply;
        /** Memory-write acknowledgement. */
        std::function<void()> writeAck;
        /** Target is stuck waiting for ackRestored (its event frame
         *  was lost); the host should restore and release it. */
        std::function<void()> waitRestore;
    };

    /** Link-health counters. */
    struct Stats
    {
        std::uint64_t framesOk = 0;   ///< CRC-valid frames dispatched.
        std::uint64_t crcErrors = 0;  ///< Frames dropped on bad CRC.
        std::uint64_t resyncs = 0;    ///< Partial frames expired.
        std::uint64_t strayBytes = 0; ///< Non-sync bytes while hunting.
        std::uint64_t malformed = 0;  ///< Valid CRC, bogus payload.
    };

    Handlers handlers;

    /** Drop any partial frame (new active-mode episode). */
    void reset();

    /**
     * Feed one byte from the debug UART.
     * @param when Arrival time; a gap longer than the inter-byte
     *        timeout while mid-frame drops the stale partial frame
     *        before this byte is processed.
     */
    void onByte(std::uint8_t byte, sim::Tick when);

    /** Feed a byte without timestamp bookkeeping (tests). */
    void onByte(std::uint8_t byte) { onByte(byte, lastByteAt); }

    /** True while mid-frame. */
    bool midFrame() const { return state != State::Hunt; }

    /** Inter-byte resync timeout (0 disables). */
    void setInterByteTimeout(sim::Tick t) { interByteTimeout = t; }

    const Stats &stats() const { return stats_; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Parser state, partial frame and link-health counters — a
    /// restored board resumes mid-frame instead of silently starting
    /// a fresh hunt with zeroed supervision history.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
    /// @}

  private:
    enum class State
    {
        Hunt,    ///< Searching for the sync byte.
        Len,     ///< Expecting the length byte.
        Payload, ///< Accumulating payload bytes.
        Crc,     ///< Expecting the CRC byte.
    };

    void dispatch();

    State state = State::Hunt;
    std::vector<std::uint8_t> payload;
    std::size_t expected = 0;
    std::uint8_t runningCrc = 0;
    sim::Tick lastByteAt = 0;
    sim::Tick interByteTimeout = 2 * sim::oneMs;
    Stats stats_;
};

/**
 * Render a printf format string against argument words. Supports
 * %d, %u, %x, %c and %%; unknown specifiers are copied through.
 */
std::string formatPrintf(const std::string &fmt,
                         const std::vector<std::uint32_t> &args);

} // namespace edb::edbdbg

#endif // EDB_EDB_PROTOCOL_HH
