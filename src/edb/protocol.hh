/**
 * @file
 * Debugger-side parser for the target<->EDB wire protocol.
 *
 * Consumes the byte stream arriving on the debug UART and raises
 * typed events (assert, breakpoint, energy-guard begin/end, printf).
 * The printf formatter lives here too: the target ships the format
 * string and raw argument words; the host renders the text, keeping
 * the target-side cost to a byte loop.
 */

#ifndef EDB_EDB_PROTOCOL_HH
#define EDB_EDB_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace edb::edbdbg {

/** Byte-stream parser for target->debugger frames. */
class ProtocolEngine
{
  public:
    struct Handlers
    {
        std::function<void(std::uint16_t)> assertFail;
        std::function<void(std::uint16_t)> bkptHit;
        std::function<void()> guardBegin;
        std::function<void()> guardEnd;
        std::function<void(const std::string &)> printfText;
    };

    Handlers handlers;

    /** Drop any partial frame (new active-mode episode). */
    void reset();

    /** Feed one byte from the debug UART. */
    void onByte(std::uint8_t byte);

    /** True while mid-frame. */
    bool midFrame() const { return state != State::Idle; }

  private:
    enum class State
    {
        Idle,
        AssertIdLo,
        AssertIdHi,
        BkptIdLo,
        BkptIdHi,
        PrintfNargs,
        PrintfArgs,
        PrintfFmt,
    };

    State state = State::Idle;
    bool isAssert = false;
    std::uint16_t id = 0;
    unsigned argsExpected = 0;
    unsigned argBytes = 0;
    std::uint32_t curArg = 0;
    std::vector<std::uint32_t> args;
    std::string fmt;
};

/**
 * Render a printf format string against argument words. Supports
 * %d, %u, %x, %c and %%; unknown specifiers are copied through.
 */
std::string formatPrintf(const std::string &fmt,
                         const std::vector<std::uint32_t> &args);

} // namespace edb::edbdbg

#endif // EDB_EDB_PROTOCOL_HH
