/**
 * @file
 * Interactive debug session (paper Section 3.3.4).
 *
 * Opened automatically when a keep-alive assertion fails, a
 * breakpoint is hit, or on demand. While a session is open the
 * target runs its libEDB service loop on tethered power and the host
 * has "full access to view and modify the target's memory" through
 * the READ/WRITE protocol commands.
 *
 * The synchronous helpers pump the simulator: they model the human
 * (or script) at the console, so they must only be called from
 * outside event context.
 */

#ifndef EDB_EDB_SESSION_HH
#define EDB_EDB_SESSION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/nv_audit.hh"
#include "sim/time.hh"

namespace edb::edbdbg {

class EdbBoard;

/** Why a session opened. */
enum class SessionReason : std::uint8_t
{
    AssertFail,
    CodeBreakpoint,
    EnergyBreakpoint,
    Manual,
    /** The NV consistency auditor flagged a WAR violation. */
    ConsistencyViolation,
};

/** Human-readable reason name. */
const char *sessionReasonName(SessionReason reason);

/** An open interactive debugging session. */
class DebugSession
{
  public:
    DebugSession(EdbBoard &board, SessionReason reason,
                 std::uint16_t id, double saved_volts);

    /** Why the session opened. */
    SessionReason reason() const { return reason_; }

    /** Assert/breakpoint id (energy breakpoints report 0xFFFF). */
    std::uint16_t id() const { return id_; }

    /** Vcap recorded when the debugger took over. */
    double savedVolts() const { return savedVolts_; }

    /** True until resume() completes or the episode is torn down. */
    bool open() const { return open_; }

    /** True when the episode ended without a completed resume()
     *  (target death, link declared dead, forced close). */
    bool aborted() const { return aborted_; }

    /** Why the session aborted ("" when it completed normally). */
    const std::string &abortReason() const { return abortReason_; }

    /// @name Target access (synchronous; pumps the simulator)
    /// @{
    /** Read `len` bytes of target memory. */
    std::optional<std::vector<std::uint8_t>>
    readBytes(std::uint32_t addr, std::uint16_t len,
              sim::Tick timeout = 200 * sim::oneMs);

    /** Read a 32-bit word. */
    std::optional<std::uint32_t>
    read32(std::uint32_t addr, sim::Tick timeout = 200 * sim::oneMs);

    /** Write a 32-bit word. */
    bool write32(std::uint32_t addr, std::uint32_t value,
                 sim::Tick timeout = 200 * sim::oneMs);

    /** Resume the target (restores its energy state afterwards). */
    void resume();
    /// @}

    /**
     * NV consistency findings accumulated by the attached auditor
     * (empty when no auditor is attached). Available for any session
     * reason: a session opened by an assert can still inspect the
     * WAR history that led up to it.
     */
    std::vector<mem::NvFinding> findings() const;

  private:
    friend class EdbBoard;

    EdbBoard &board;
    SessionReason reason_;
    std::uint16_t id_;
    double savedVolts_;
    bool open_ = true;
    bool resumed_ = false;
    bool aborted_ = false;
    std::string abortReason_;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_SESSION_HH
