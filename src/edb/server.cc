#include "edb/server.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "analysis/analyzer.hh"
#include "analysis/cost_model.hh"
#include "energy/power_system.hh"
#include "fleet/fleet.hh"
#include "mcu/mcu.hh"
#include "runtime/protocol_defs.hh"
#include "target/wisp.hh"

namespace edb::edbdbg {

namespace proto = runtime::proto;

// --------------------------------------------------------------------
// JsonValue

/** Named (not anonymous-namespace) so JsonValue can befriend it. */
class JsonBuilder
{
  public:
    static JsonValue
    null()
    {
        return JsonValue{};
    }
    static JsonValue
    boolean(bool b)
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = b;
        return v;
    }
    static JsonValue
    number(double d)
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Num;
        v.num_ = d;
        return v;
    }
    static JsonValue
    string(std::string s)
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Str;
        v.str_ = std::move(s);
        return v;
    }
    static JsonValue
    array(std::vector<JsonValue> a)
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Arr;
        v.arr_ = std::move(a);
        return v;
    }
    static JsonValue
    object(std::vector<std::pair<std::string, JsonValue>> o)
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Obj;
        v.obj_ = std::move(o);
        return v;
    }
};

namespace {

/** Crash-proof, depth-capped JSON reader over a bounded buffer. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::size_t max_depth)
        : s(text), maxDepth(max_depth)
    {}

    std::optional<JsonValue>
    run()
    {
        auto v = value(maxDepth);
        if (!v)
            return std::nullopt;
        ws();
        if (pos != s.size())
            return std::nullopt;
        return v;
    }

  private:
    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    lit(const char *t)
    {
        std::size_t n = 0;
        while (t[n] != '\0')
            ++n;
        if (s.compare(pos, n, t) != 0)
            return false;
        pos += n;
        return true;
    }

    std::optional<std::string>
    string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return std::nullopt;
        ++pos;
        std::string out;
        while (pos < s.size()) {
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= s.size())
                return std::nullopt;
            char e = s[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u':
                // Enough for symbol names and hex addresses: skip
                // the four hex digits, substitute '?'.
                if (pos + 4 > s.size())
                    return std::nullopt;
                pos += 4;
                out.push_back('?');
                break;
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue> value(std::size_t depth);

    const std::string &s;
    std::size_t pos = 0;
    std::size_t maxDepth;

    using Build = JsonBuilder;
};

std::optional<JsonValue>
JsonParser::value(std::size_t depth)
{
    ws();
    if (pos >= s.size())
        return std::nullopt;
    char c = s[pos];
    if (c == 'n')
        return lit("null") ? std::optional<JsonValue>(Build::null())
                           : std::nullopt;
    if (c == 't')
        return lit("true")
                   ? std::optional<JsonValue>(Build::boolean(true))
                   : std::nullopt;
    if (c == 'f')
        return lit("false")
                   ? std::optional<JsonValue>(Build::boolean(false))
                   : std::nullopt;
    if (c == '"') {
        auto str = string();
        if (!str)
            return std::nullopt;
        return Build::string(std::move(*str));
    }
    if (c == '[') {
        if (depth == 0)
            return std::nullopt;
        ++pos;
        std::vector<JsonValue> items;
        ws();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return Build::array(std::move(items));
        }
        while (true) {
            auto v = value(depth - 1);
            if (!v)
                return std::nullopt;
            items.push_back(std::move(*v));
            ws();
            if (pos >= s.size())
                return std::nullopt;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return Build::array(std::move(items));
            }
            return std::nullopt;
        }
    }
    if (c == '{') {
        if (depth == 0)
            return std::nullopt;
        ++pos;
        std::vector<std::pair<std::string, JsonValue>> members;
        ws();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return Build::object(std::move(members));
        }
        while (true) {
            ws();
            auto key = string();
            if (!key)
                return std::nullopt;
            ws();
            if (pos >= s.size() || s[pos] != ':')
                return std::nullopt;
            ++pos;
            auto v = value(depth - 1);
            if (!v)
                return std::nullopt;
            members.emplace_back(std::move(*key), std::move(*v));
            ws();
            if (pos >= s.size())
                return std::nullopt;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return Build::object(std::move(members));
            }
            return std::nullopt;
        }
    }
    // Number.
    const char *start = s.c_str() + pos;
    char *end = nullptr;
    double d = std::strtod(start, &end);
    if (end == start)
        return std::nullopt;
    pos += static_cast<std::size_t>(end - start);
    return Build::number(d);
}

} // namespace

std::optional<JsonValue>
JsonValue::parse(const std::string &text, std::size_t max_depth)
{
    JsonParser p(text, max_depth);
    return p.run();
}

std::optional<JsonValue>
JsonValue::parse(const std::vector<std::uint8_t> &bytes,
                 std::size_t max_depth)
{
    return parse(std::string(bytes.begin(), bytes.end()), max_depth);
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (type_ != Type::Obj)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::num(double fallback) const
{
    return type_ == Type::Num ? num_ : fallback;
}

bool
JsonValue::boolean(bool fallback) const
{
    return type_ == Type::Bool ? bool_ : fallback;
}

std::optional<std::uint64_t>
JsonValue::getUint(const std::string &key) const
{
    const JsonValue *v = get(key);
    if (!v)
        return std::nullopt;
    if (v->type_ == Type::Num) {
        if (v->num_ < 0 || v->num_ > 1.8e19)
            return std::nullopt;
        return static_cast<std::uint64_t>(v->num_);
    }
    if (v->type_ == Type::Str && !v->str_.empty()) {
        const char *start = v->str_.c_str();
        char *end = nullptr;
        unsigned long long u = std::strtoull(start, &end, 0);
        if (end == start || *end != '\0')
            return std::nullopt;
        return static_cast<std::uint64_t>(u);
    }
    return std::nullopt;
}

std::optional<std::string>
JsonValue::getStr(const std::string &key) const
{
    const JsonValue *v = get(key);
    if (!v || v->type_ != Type::Str)
        return std::nullopt;
    return v->str_;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += '?';
            else
                out.push_back(c);
        }
    }
    return out;
}

// --------------------------------------------------------------------
// ClientWire

bool
ClientWire::toServer(const std::vector<std::uint8_t> &bytes)
{
    if (!connected_ || c2s.size() + bytes.size() > cap)
        return false;
    c2s.insert(c2s.end(), bytes.begin(), bytes.end());
    return true;
}

std::vector<std::uint8_t>
ClientWire::fromServer()
{
    std::vector<std::uint8_t> out(s2c.begin(), s2c.end());
    s2c.clear();
    return out;
}

std::vector<std::uint8_t>
ClientWire::serverDrain(std::size_t max_bytes)
{
    std::size_t n = c2s.size();
    if (max_bytes != 0 && max_bytes < n)
        n = max_bytes;
    std::vector<std::uint8_t> out(c2s.begin(), c2s.begin() + n);
    c2s.erase(c2s.begin(), c2s.begin() + n);
    return out;
}

bool
ClientWire::toClient(const std::vector<std::uint8_t> &bytes)
{
    if (!connected_ || s2c.size() + bytes.size() > cap)
        return false;
    s2c.insert(s2c.end(), bytes.begin(), bytes.end());
    return true;
}

// --------------------------------------------------------------------
// DebugServer

const char *
sessionOutcomeName(SessionOutcome o)
{
    switch (o) {
      case SessionOutcome::Active: return "active";
      case SessionOutcome::Completed: return "completed";
      case SessionOutcome::Shed: return "shed";
      case SessionOutcome::Aborted: return "aborted";
      case SessionOutcome::Disconnected: return "disconnected";
    }
    return "?";
}

struct DebugServer::Session
{
    std::uint32_t id = 0;
    std::string name;
    SessionOutcome outcome = SessionOutcome::Active;
    std::string reason;
    bool attached = false;
    bool degraded = false;
    std::size_t world = SIZE_MAX;
    bool rw = false;
    std::size_t breakCount = 0;

    std::unique_ptr<ClientWire> wire;
    ProtocolEngine parser;

    struct Cmd
    {
        JsonValue req;
        sim::Tick at = 0;
    };
    std::deque<Cmd> cmds;
    std::deque<std::vector<std::uint8_t>> outbox;

    unsigned deliveryRetries = 0;
    sim::Tick nextDeliveryAt = 0;
    sim::Tick lastFrameAt = 0;
    unsigned probesSent = 0;
    sim::Tick nextProbeAt = 0;
    std::uint64_t evalsSeen = 0;
    /** Static-analysis work (priced instructions) not yet charged
     *  against the eval budget. */
    std::uint64_t analysisEvals = 0;

    SessionReport rpt;

    bool terminal() const { return outcome != SessionOutcome::Active; }
};

DebugServer::DebugServer(fleet::Fleet &fleet, ServerConfig config)
    : fleet_(fleet), cfg(config)
{}

DebugServer::~DebugServer()
{
    // Tracers installed on fleet worlds capture probe objects this
    // server owns; unwind them (restoring any world-owned tracer
    // they chained under) so the fleet can keep running.
    for (auto &[w, probe] : probes) {
        if (w < fleet_.size())
            probe.uninstall(fleet_.world(w).wisp());
    }
}

void
DebugServer::setSymbols(isa::SymbolTable table)
{
    symbols_ = std::move(table);
}

ClientWire *
DebugServer::connect(const std::string &client_name)
{
    std::size_t live = 0;
    for (const auto &s : sessions) {
        if (!s->terminal())
            ++live;
    }
    if (live >= cfg.maxClients)
        return nullptr;
    auto s = std::make_unique<Session>();
    s->id = nextSessionId++;
    s->name = client_name;
    s->wire = std::make_unique<ClientWire>(cfg.maxQueuedBytes);
    s->parser.setInterByteTimeout(cfg.interByteTimeout);
    s->lastFrameAt = fleet_.now();
    s->rpt.sessionId = s->id;
    s->rpt.client = client_name;
    Session *raw = s.get();
    s->parser.handlers.rawFrame =
        [this, raw](const std::vector<std::uint8_t> &pl) {
            onFrame(*raw, pl);
            return true; // every client frame belongs to this layer
        };
    sessions.push_back(std::move(s));
    return raw->wire.get();
}

void
DebugServer::installProbes()
{
    std::vector<std::size_t> doomed;
    for (auto &[w, probe] : probes) {
        if (w >= fleet_.size())
            continue;
        if (probe.empty()) {
            // Last breakpoint on this world is gone: release the
            // tracer so the superblock tier can resume. Fold any
            // still-unaccounted buffer overflow into stats first,
            // and retire the drop watermark with the probe — a
            // stale watermark would silently swallow the drops of a
            // future probe on the same world.
            probe.uninstall(fleet_.world(w).wisp());
            const std::uint64_t d = probe.droppedHits();
            const auto seen = probeDropsSeen.find(w);
            const std::uint64_t folded =
                seen == probeDropsSeen.end() ? 0 : seen->second;
            if (d > folded)
                stats_.hitsDropped += d - folded;
            if (seen != probeDropsSeen.end())
                probeDropsSeen.erase(seen);
            doomed.push_back(w);
            continue;
        }
        // Rebalance migrations build fresh worlds (fresh tracers),
        // so installation is repeated every epoch.
        probe.install(fleet_.world(w).wisp());
    }
    for (std::size_t w : doomed)
        probes.erase(w);
}

void
DebugServer::runEpoch()
{
    installProbes();
    fleet_.runEpochs(1);
    poll();
}

void
DebugServer::runEpochs(unsigned epochs)
{
    for (unsigned e = 0; e < epochs; ++e)
        runEpoch();
}

void
DebugServer::poll()
{
    ++stats_.polls;
    drainWires();
    reapDisconnected();
    serveCommands();
    deliverHits();
    shedOverBudget();
    superviseSessions();
    flushOutboxes();
}

void
DebugServer::drainWires()
{
    const sim::Tick now = fleet_.now();
    for (auto &s : sessions) {
        if (s->terminal() || !s->wire->connected())
            continue;
        for (std::uint8_t b : s->wire->serverDrain(0))
            s->parser.onByte(b, now);
    }
}

void
DebugServer::reapDisconnected()
{
    for (auto &s : sessions) {
        if (!s->terminal() && !s->wire->connected())
            terminate(*s, SessionOutcome::Disconnected, "disconnect");
    }
}

void
DebugServer::onFrame(Session &s, const std::vector<std::uint8_t> &pl)
{
    ++stats_.framesIn;
    s.lastFrameAt = fleet_.now();
    s.probesSent = 0; // any valid frame proves liveness
    auto req = JsonValue::parse(pl);
    if (!req || !req->isObj()) {
        ++stats_.malformedJson;
        return;
    }
    if (req->get("ev"))
        return; // client-side event (pong); liveness already noted
    auto id = req->getUint("id");
    if (!id) {
        ++stats_.malformedJson;
        return;
    }
    if (s.cmds.size() >= cfg.maxPendingCmds) {
        // Explicit backpressure, not silent loss.
        ++stats_.commandsBackpressured;
        ++s.rpt.commandsBackpressured;
        s.degraded = true;
        std::ostringstream o;
        o << "{\"id\":" << *id << ",\"ok\":false,\"err\":\"busy\"}";
        enqueueReply(s, o.str());
        return;
    }
    s.cmds.push_back({std::move(*req), fleet_.now()});
}

void
DebugServer::serveCommands()
{
    const sim::Tick now = fleet_.now();
    const std::size_t n = sessions.size();
    if (n == 0)
        return;
    for (std::size_t k = 0; k < n; ++k) {
        Session &s = *sessions[(rrNext + k) % n];
        if (s.terminal())
            continue;
        for (unsigned q = 0;
             q < cfg.commandsPerPoll && !s.cmds.empty(); ++q) {
            Session::Cmd cmd = std::move(s.cmds.front());
            s.cmds.pop_front();
            auto id = cmd.req.getUint("id");
            if (cfg.commandDeadline > 0 &&
                now - cmd.at > cfg.commandDeadline) {
                // Too stale to execute safely; fail loudly.
                ++stats_.commandsDeadlined;
                ++s.rpt.commandsDeadlined;
                s.degraded = true;
                std::ostringstream o;
                o << "{\"id\":" << (id ? *id : 0)
                  << ",\"ok\":false,\"err\":\"deadline\"}";
                enqueueReply(s, o.str());
                continue;
            }
            execute(s, cmd.req);
            ++stats_.commandsServed;
            ++s.rpt.commandsServed;
            if (s.terminal())
                break; // detach mid-quantum
        }
    }
    rrNext = (rrNext + 1) % n; // rotate who goes first
}

namespace {

std::string
hexAddr(std::uint64_t v)
{
    std::ostringstream o;
    o << "\"0x" << std::hex << v << "\"";
    return o.str();
}

} // namespace

void
DebugServer::execute(Session &s, const JsonValue &req)
{
    // The charge/restore discipline, virtual edition: a read-only
    // command may not move the capacitor at all. Sampled before and
    // after the handler; a nonzero delta is an interference bug.
    double v0 = 0.0;
    bool checkV = s.attached && s.world < fleet_.size() && !s.rw;
    if (checkV) {
        v0 = fleet_.world(s.world)
                 .wisp()
                 .power()
                 .voltageNoAdvance();
    }
    dispatchCmd(s, req);
    if (checkV && s.world < fleet_.size()) {
        double v1 = fleet_.world(s.world)
                        .wisp()
                        .power()
                        .voltageNoAdvance();
        if (v1 != v0)
            ++stats_.interferenceViolations;
    }
}

void
DebugServer::dispatchCmd(Session &s, const JsonValue &req)
{
    const std::uint64_t id = req.getUint("id").value_or(0);
    auto method = req.getStr("m");
    std::ostringstream o;
    o << "{\"id\":" << id << ",";
    auto err = [&](const char *what) {
        o << "\"ok\":false,\"err\":\"" << what << "\"}";
    };

    if (!method) {
        err("method");
        enqueueReply(s, o.str());
        return;
    }
    const std::string &m = *method;

    if (m == "attach") {
        auto world = req.getUint("world");
        if (s.attached) {
            err("attached");
        } else if (!world || *world >= fleet_.size()) {
            err("world");
        } else {
            s.attached = true;
            s.world = static_cast<std::size_t>(*world);
            s.rw = req.getStr("mode").value_or("ro") == "rw";
            s.rpt.world = s.world;
            o << "\"ok\":true,\"sess\":" << s.id << ",\"world\":"
              << s.world << ",\"rw\":" << (s.rw ? "true" : "false")
              << "}";
        }
        enqueueReply(s, o.str());
        return;
    }
    if (m == "ping") {
        o << "\"ok\":true,\"t\":" << fleet_.now() << "}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "symbols") {
        std::size_t off = static_cast<std::size_t>(
            req.getUint("off").value_or(0));
        const auto &all = symbols_.symbols();
        o << "\"ok\":true,\"total\":" << all.size() << ",\"off\":"
          << off << ",\"syms\":[";
        std::size_t i = 0, emitted = 0;
        for (const auto &[name, value] : all) {
            if (i++ < off)
                continue;
            if (emitted >= cfg.symbolsPerPage)
                break;
            if (emitted)
                o << ",";
            o << "[\"" << jsonEscape(name) << "\","
              << hexAddr(value) << "]";
            ++emitted;
        }
        o << "]}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "lookup") {
        if (auto name = req.getStr("sym")) {
            auto v = symbols_.lookup(*name);
            if (!v) {
                err("sym");
            } else {
                o << "\"ok\":true,\"v\":" << hexAddr(*v)
                  << ",\"line\":" << symbols_.lineOf(*v) << "}";
            }
        } else if (auto addr = req.getUint("addr")) {
            o << "\"ok\":true,\"sym\":\""
              << jsonEscape(symbols_.symbolize(
                     static_cast<std::uint32_t>(*addr)))
              << "\",\"line\":"
              << symbols_.lineOf(
                     static_cast<std::uint32_t>(*addr))
              << "}";
        } else {
            err("args");
        }
        enqueueReply(s, o.str());
        return;
    }

    // Everything below needs an attached world.
    if (!s.attached || s.world >= fleet_.size()) {
        err("detached");
        enqueueReply(s, o.str());
        return;
    }
    target::Wisp &wisp = fleet_.world(s.world).wisp();

    if (m == "setbreak") {
        std::optional<std::uint64_t> addr = req.getUint("addr");
        if (!addr) {
            if (auto sym = req.getStr("sym"))
                if (auto v = symbols_.lookup(*sym))
                    addr = *v;
        }
        if (!addr) {
            err("addr");
        } else if (s.breakCount >= cfg.maxBreakpointsPerSession) {
            err("quota");
        } else {
            std::string cond_text =
                req.getStr("cond").value_or("");
            std::string why;
            auto cond = VBreakCondition::parse(cond_text, &why);
            if (!cond) {
                err("cond");
            } else {
                auto [it, fresh] = probes.try_emplace(
                    s.world, WorldProbe(cfg.maxHitsPerWorld));
                (void)fresh;
                VirtualBreakpoint bp;
                bp.id = nextBreakId++;
                bp.sessionId = s.id;
                bp.addr = static_cast<mem::Addr>(*addr);
                bp.cond = std::move(*cond);
                it->second.put(bp);
                ++s.breakCount;
                o << "\"ok\":true,\"bk\":" << bp.id << "}";
            }
        }
        enqueueReply(s, o.str());
        return;
    }
    if (m == "clearbreak") {
        auto bk = req.getUint("bk");
        auto it = probes.find(s.world);
        const VirtualBreakpoint *bp =
            (bk && it != probes.end())
                ? it->second.find(
                      static_cast<std::uint32_t>(*bk))
                : nullptr;
        if (!bp || bp->sessionId != s.id) {
            err("bk");
        } else {
            it->second.erase(static_cast<std::uint32_t>(*bk));
            --s.breakCount;
            o << "\"ok\":true}";
        }
        enqueueReply(s, o.str());
        return;
    }
    if (m == "breaks") {
        auto it = probes.find(s.world);
        o << "\"ok\":true,\"n\":" << s.breakCount << ",\"bks\":[";
        std::size_t emitted = 0;
        if (it != probes.end()) {
            for (const auto &[bid, bp] : it->second.breakpoints()) {
                if (bp.sessionId != s.id)
                    continue;
                if (emitted >= 4)
                    break;
                if (emitted)
                    o << ",";
                o << "[" << bid << "," << hexAddr(bp.addr) << ","
                  << bp.hits << "]";
                ++emitted;
            }
        }
        o << "]}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "regs") {
        const mcu::Mcu &core = wisp.mcu();
        o << "\"ok\":true,\"pc\":" << hexAddr(core.pc())
          << ",\"r\":\"" << std::hex;
        for (unsigned i = 0; i < isa::numRegs; ++i)
            o << (i ? "," : "") << core.reg(i);
        o << std::dec << "\"}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "read") {
        auto addr = req.getUint("addr");
        std::size_t len = static_cast<std::size_t>(
            req.getUint("len").value_or(4));
        if (len > cfg.readChunkMax)
            len = cfg.readChunkMax;
        const std::uint8_t *base = nullptr;
        if (addr) {
            mem::Addr a = static_cast<mem::Addr>(*addr);
            namespace lay = target::layout;
            // Raw region arrays only: routing through the memory
            // map could touch MMIO and perturb the target.
            if (a >= lay::sramBase &&
                a + len <= lay::sramBase + lay::sramSize) {
                base = wisp.sramRegion().data() +
                       (a - lay::sramBase);
            } else if (a >= lay::framBase &&
                       a + len <= lay::framBase + lay::framSize) {
                base = wisp.framRegion().data() +
                       (a - lay::framBase);
            }
        }
        if (!base) {
            err("range");
        } else {
            static const char *digits = "0123456789abcdef";
            o << "\"ok\":true,\"d\":\"";
            for (std::size_t i = 0; i < len; ++i) {
                o << digits[base[i] >> 4] << digits[base[i] & 0xF];
            }
            o << "\"}";
        }
        enqueueReply(s, o.str());
        return;
    }
    if (m == "vcap") {
        o << "\"ok\":true,\"v\":"
          << wisp.power().voltageNoAdvance() << "}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "info") {
        const fleet::World &world = fleet_.world(s.world);
        o << "\"ok\":true,\"world\":" << s.world << ",\"i\":"
          << world.wisp().mcu().instrCount() << ",\"rb\":"
          << world.wisp().mcu().rebootCount() << ",\"t\":"
          << fleet_.now() << "}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "analyze" || m == "willComplete") {
        // Static energy-timing analysis of the attached world's
        // firmware (DESIGN.md §14): strictly read-only — the cost
        // table is extracted from configuration and the CFG walk
        // runs over the shared assembled image; the target itself
        // is never advanced (the capacitor-delta check in execute()
        // holds bitwise). The walk is real server compute, so its
        // priced instructions are charged against the same eval
        // budget as breakpoint condition evaluations.
        analysis::CostModel model =
            analysis::CostModel::fromWisp(wisp);
        analysis::AnalyzerOptions aopt;
        // Harvesting envelope, integer wire units: nA in, mV cap.
        if (auto imax = req.getUint("imaxNa"))
            aopt.maxInflowAmps = static_cast<double>(*imax) * 1e-9;
        if (auto iexp = req.getUint("iexpNa"))
            aopt.expectedInflowAmps =
                static_cast<double>(*iexp) * 1e-9;
        if (auto vmax = req.getUint("vmaxMv"))
            aopt.maxSourceVolts = static_cast<double>(*vmax) * 1e-3;
        analysis::Report rep = analysis::analyze(
            fleet_.worldProgram(s.world), model, aopt);
        s.analysisEvals += rep.analyzedInstructions;

        // Charges travel as integer nanocoulombs to keep replies
        // compact and the wire format float-free.
        auto nc = [](double coulombs) -> long long {
            return std::llround(coulombs * 1e9);
        };
        if (m == "willComplete") {
            const char *will = "unknown";
            switch (rep.verdict) {
              case analysis::Verdict::Completes: will = "yes"; break;
              case analysis::Verdict::Starves: will = "no"; break;
              case analysis::Verdict::MayStarve:
                will = "maybe";
                break;
              case analysis::Verdict::RunsForever:
                will = "never";
                break;
              case analysis::Verdict::Unknown: break;
            }
            o << "\"ok\":true,\"will\":\"" << will
              << "\",\"verdict\":\""
              << analysis::verdictName(rep.verdict) << "\"";
            if (rep.predictedBoots > 0.0)
                o << ",\"boots\":"
                  << static_cast<std::uint64_t>(
                         std::ceil(rep.predictedBoots));
            o << "}";
            enqueueReply(s, o.str());
            return;
        }
        bool bounded = !rep.regions.empty();
        for (const analysis::RegionInfo &r : rep.regions)
            bounded = bounded && r.bounded;
        o << "\"ok\":true,\"verdict\":\""
          << analysis::verdictName(rep.verdict) << "\",\"reason\":\""
          << jsonEscape(rep.reason) << "\",\"bounded\":"
          << (bounded ? "true" : "false") << ",\"budgetNc\":"
          << nc(rep.budget) << ",\"bootNc\":" << nc(rep.bootCharge)
          << ",\"worstNc\":" << nc(rep.worstRegionCharge)
          << ",\"instrs\":" << rep.analyzedInstructions
          << ",\"rg\":[";
        std::size_t emitted = 0;
        for (const analysis::RegionInfo &r : rep.regions) {
            if (emitted >= 4)
                break; // paginate like "breaks": bounded reply size
            if (emitted)
                o << ",";
            o << "[" << hexAddr(r.entryPc) << ","
              << (r.bounded ? nc(r.chargeMax) : -1) << "]";
            ++emitted;
        }
        o << "],\"nrg\":" << rep.regions.size() << "}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "write") {
        if (!s.rw) {
            // Read-only sessions may not touch the target; "rw" is
            // an explicit opt-in to interference at attach.
            err("ro");
            enqueueReply(s, o.str());
            return;
        }
        auto addr = req.getUint("addr");
        auto data = req.getStr("d");
        if (!addr || !data || data->empty() ||
            data->size() % 2 != 0 ||
            data->size() / 2 > cfg.readChunkMax) {
            err("args");
            enqueueReply(s, o.str());
            return;
        }
        auto nyb = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'a' && c <= 'f')
                return c - 'a' + 10;
            if (c >= 'A' && c <= 'F')
                return c - 'A' + 10;
            return -1;
        };
        bool ok = true;
        std::size_t wrote = 0;
        for (std::size_t i = 0; ok && i < data->size(); i += 2) {
            int hi = nyb((*data)[i]), lo = nyb((*data)[i + 1]);
            if (hi < 0 || lo < 0) {
                ok = false;
                break;
            }
            // Routed through the memory map on purpose: rw writes
            // are honest interference (wear, NV energy, MMIO).
            auto res = wisp.memoryMap().write8(
                static_cast<mem::Addr>(*addr + wrote),
                static_cast<std::uint8_t>((hi << 4) | lo));
            ok = res == mem::AccessResult::Ok;
            if (ok)
                ++wrote;
        }
        if (!ok)
            err("range");
        else
            o << "\"ok\":true,\"n\":" << wrote << "}";
        enqueueReply(s, o.str());
        return;
    }
    if (m == "detach") {
        o << "\"ok\":true}";
        enqueueReply(s, o.str());
        terminate(s, SessionOutcome::Completed, "detach");
        return;
    }
    err("method");
    enqueueReply(s, o.str());
}

bool
DebugServer::enqueueReply(Session &s, const std::string &json,
                          bool hit_event)
{
    std::string body = json;
    if (body.size() > proto::maxPayload) {
        // Should be unreachable: every handler paginates/chunks to
        // fit. Count it and degrade to a well-formed error.
        ++stats_.oversizeReplies;
        body = "{\"ok\":false,\"err\":\"oversize\"}";
    }
    std::vector<std::uint8_t> payload(body.begin(), body.end());
    if (s.outbox.size() >= 4 * cfg.maxPendingCmds) {
        // Outbox cap: a client that never drains cannot grow
        // unbounded server state; the delivery retry path will shed
        // it shortly anyway. Shed breakpoint hits and shed command
        // replies are distinct metrics — the soak gates reason
        // about hit loss, so RPC responses must not inflate it.
        if (hit_event) {
            ++stats_.hitsDropped;
            ++s.rpt.hitsDropped;
        } else {
            ++stats_.repliesDropped;
            ++s.rpt.repliesDropped;
        }
        return false;
    }
    s.outbox.push_back(buildFrame(payload));
    ++stats_.framesOut;
    return true;
}

void
DebugServer::deliverHits()
{
    for (auto &[w, probe] : probes) {
        for (const VBreakHit &h : probe.drainHits()) {
            Session *owner = nullptr;
            for (auto &s : sessions) {
                if (s->id == h.sessionId && !s->terminal()) {
                    owner = s.get();
                    break;
                }
            }
            if (!owner) {
                ++stats_.hitsDropped;
                continue;
            }
            std::ostringstream o;
            o << "{\"ev\":\"hit\",\"bk\":" << h.bkptId << ",\"pc\":"
              << hexAddr(h.pc) << ",\"t\":" << h.when << ",\"i\":"
              << h.instrs << ",\"v\":" << h.vcap << ",\"r0\":"
              << h.r0 << "}";
            if (enqueueReply(*owner, o.str(), /*hit_event=*/true)) {
                ++stats_.hitsDelivered;
                ++owner->rpt.hitsDelivered;
            }
        }
        // Overflow inside the probe's bounded buffer (hot-loop
        // breakpoints) is also accounted, not silently eaten.
        std::uint64_t d = probe.droppedHits();
        std::uint64_t seen = probeDropsSeen[w];
        if (d > seen) {
            stats_.hitsDropped += d - seen;
            probeDropsSeen[w] = d;
        }
    }
}

void
DebugServer::flushOutboxes()
{
    const sim::Tick now = fleet_.now();
    for (auto &sp : sessions) {
        Session &s = *sp;
        if (s.terminal())
            continue;
        if (s.outbox.empty()) {
            s.deliveryRetries = 0;
            continue;
        }
        if (now < s.nextDeliveryAt)
            continue;
        bool progress = false;
        while (!s.outbox.empty() &&
               s.wire->toClient(s.outbox.front())) {
            s.outbox.pop_front();
            progress = true;
        }
        if (progress) {
            s.deliveryRetries = 0;
            s.nextDeliveryAt = 0;
        }
        if (!s.outbox.empty()) {
            // Receive queue full: the client stopped draining.
            // Bounded retries with exponential backoff, then shed.
            ++s.deliveryRetries;
            ++s.rpt.deliveryRetries;
            if (s.deliveryRetries > cfg.deliveryRetryMax) {
                terminate(s, SessionOutcome::Shed, "backpressure");
            } else {
                s.nextDeliveryAt =
                    now + (cfg.deliveryBackoffBase
                           << (s.deliveryRetries - 1));
            }
        }
    }
}

void
DebugServer::superviseSessions()
{
    const sim::Tick now = fleet_.now();
    for (auto &sp : sessions) {
        Session &s = *sp;
        if (s.terminal())
            continue;
        if (now - s.lastFrameAt <= cfg.idleTimeout)
            continue;
        if (s.probesSent >= cfg.maxProbes) {
            terminate(s, SessionOutcome::Aborted, "idle");
            continue;
        }
        if (now >= s.nextProbeAt) {
            std::ostringstream o;
            o << "{\"ev\":\"ping\",\"n\":" << s.probesSent << "}";
            enqueueReply(s, o.str());
            ++s.probesSent;
            ++stats_.probesSent;
            s.nextProbeAt = now + cfg.idleTimeout;
        }
    }
}

void
DebugServer::shedOverBudget()
{
    if (cfg.evalBudgetPerPoll == 0)
        return;
    // Charge each session for the condition evaluations its
    // breakpoints consumed this poll.
    std::map<std::uint32_t, std::uint64_t> evalsNow;
    for (const auto &[w, probe] : probes) {
        for (const auto &[bid, bp] : probe.breakpoints())
            evalsNow[bp.sessionId] += bp.evals;
    }
    std::uint64_t total = 0;
    std::vector<std::pair<std::uint64_t, Session *>> charged;
    for (auto &sp : sessions) {
        Session &s = *sp;
        if (s.terminal())
            continue;
        std::uint64_t cum = evalsNow.count(s.id) ? evalsNow[s.id] : 0;
        // cum can shrink when breakpoints are cleared mid-flight;
        // never charge a negative (underflowed) delta.
        std::uint64_t delta =
            cum > s.evalsSeen ? cum - s.evalsSeen : 0;
        s.evalsSeen = cum;
        // Static-analysis RPCs consume the same budget: an
        // "analyze"-spamming client is shed exactly like a
        // breakpoint-spamming one.
        delta += s.analysisEvals;
        s.analysisEvals = 0;
        total += delta;
        if (delta > 0)
            charged.emplace_back(delta, &s);
    }
    stats_.evalsCharged += total;
    if (total <= cfg.evalBudgetPerPoll)
        return;
    // Over budget: shed heaviest first until back under.
    std::sort(charged.begin(), charged.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    for (auto &[delta, s] : charged) {
        if (total <= cfg.evalBudgetPerPoll)
            break;
        terminate(*s, SessionOutcome::Shed, "eval-budget");
        total -= delta;
    }
}

void
DebugServer::terminate(Session &s, SessionOutcome outcome,
                       const std::string &reason)
{
    if (s.terminal())
        return;
    s.outcome = outcome;
    s.reason = reason;
    // Its breakpoints die with it (and the tracer, if it held the
    // last ones on that world, is released next installProbes).
    if (s.world < fleet_.size()) {
        auto it = probes.find(s.world);
        if (it != probes.end())
            s.breakCount -= it->second.eraseSession(s.id);
    }
    // Best-effort farewell + pending replies; one attempt each, a
    // dead wire gets no retries.
    while (!s.outbox.empty()) {
        if (!s.wire->toClient(s.outbox.front()))
            break;
        s.outbox.pop_front();
    }
    s.outbox.clear();
    std::string bye = "{\"ev\":\"bye\",\"reason\":\"" +
                      jsonEscape(reason) + "\",\"outcome\":\"" +
                      sessionOutcomeName(outcome) + "\"}";
    s.wire->toClient(
        buildFrame(std::vector<std::uint8_t>(bye.begin(), bye.end())));
    s.cmds.clear();

    s.rpt.outcome = outcome;
    s.rpt.reason = reason;
    s.rpt.degraded = s.degraded;
    s.rpt.world = s.world;
    reports_.push_back(s.rpt);
    if (outcome == SessionOutcome::Shed)
        ++stats_.sessionsShed;
    if (outcome == SessionOutcome::Aborted)
        ++stats_.sessionsAborted;
}

std::size_t
DebugServer::activeSessions() const
{
    std::size_t n = 0;
    for (const auto &s : sessions) {
        if (!s->terminal())
            ++n;
    }
    return n;
}

std::size_t
DebugServer::stuckSessions() const
{
    // A session is stuck when it is neither terminal nor healthy:
    // it holds queued commands, undelivered replies or a partial
    // frame it can no longer make progress on.
    std::size_t n = 0;
    for (const auto &s : sessions) {
        if (s->terminal())
            continue;
        if (!s->cmds.empty() || !s->outbox.empty() ||
            s->parser.midFrame() || !s->wire->connected())
            ++n;
    }
    return n;
}

// --------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(DebugServer &server, std::string client_name,
                     sim::ClientFaultPlan faults)
    : server_(server), name_(std::move(client_name)),
      wire_(server.connect(name_)), faults_(faults)
{
    parser.setInterByteTimeout(0);
    parser.handlers.rawFrame =
        [this](const std::vector<std::uint8_t> &pl) {
            auto v = JsonValue::parse(pl);
            if (v && v->isObj()) {
                if (v->get("ev"))
                    events.push_back(std::move(*v));
                else
                    responses.push_back(std::move(*v));
            }
            return true;
        };
}

std::uint64_t
RpcClient::request(const std::string &body)
{
    if (!connected())
        return 0;
    std::uint64_t id = nextId++;
    std::ostringstream o;
    o << "{\"id\":" << id << "," << body << "}";
    std::string json = o.str();
    auto frame = buildFrame(
        std::vector<std::uint8_t>(json.begin(), json.end()));
    auto bytes = faults_.onFrame(frame);
    staged.insert(staged.end(), bytes.begin(), bytes.end());
    if (faults_.wantsDisconnect())
        wire_->disconnect(); // mid-command vanishing act
    return id;
}

void
RpcClient::pump()
{
    if (!wire_ || !wire_->connected())
        return;
    unsigned budget = faults_.byteBudgetPerPoll();
    std::size_t n = staged.size();
    if (budget != 0 && budget < n)
        n = budget;
    if (n != 0) {
        std::vector<std::uint8_t> chunk(staged.begin(),
                                        staged.begin() + n);
        if (wire_->toServer(chunk))
            staged.erase(staged.begin(), staged.begin() + n);
        // else: wire full — client-side backpressure, retry later.
    }
    for (std::uint8_t b : wire_->fromServer())
        parser.onByte(b);
}

std::vector<JsonValue>
RpcClient::takeResponses()
{
    std::vector<JsonValue> out;
    out.swap(responses);
    return out;
}

std::vector<JsonValue>
RpcClient::takeEvents()
{
    std::vector<JsonValue> out;
    out.swap(events);
    return out;
}

std::optional<JsonValue>
RpcClient::await(std::uint64_t id, unsigned epochs)
{
    auto scan = [&]() -> std::optional<JsonValue> {
        for (std::size_t i = 0; i < responses.size(); ++i) {
            if (responses[i].getUint("id").value_or(0) == id) {
                JsonValue v = std::move(responses[i]);
                responses.erase(responses.begin() +
                                static_cast<std::ptrdiff_t>(i));
                return v;
            }
        }
        return std::nullopt;
    };
    for (unsigned e = 0; e < epochs; ++e) {
        pump();
        if (auto v = scan())
            return v;
        server_.runEpoch();
        pump();
        if (auto v = scan())
            return v;
    }
    return std::nullopt;
}

void
RpcClient::disconnect()
{
    if (wire_)
        wire_->disconnect();
}

} // namespace edb::edbdbg
