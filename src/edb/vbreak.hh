/**
 * @file
 * Virtual breakpoints: zero-energy conditional breakpoints evaluated
 * inside the simulator (DESIGN.md §13).
 *
 * The paper's target-side breakpoints (internal, external, combined)
 * each cost the target something — code bytes, a GPIO poll, or a
 * wake from the debugger. A *virtual* breakpoint costs the target
 * nothing at all: the host evaluates the location and an optional
 * trigger condition over registers, non-volatile words and the
 * capacitor voltage from outside the device, during the MCU tracer
 * callback. The target never executes an extra instruction and never
 * drains an extra nanojoule, so the architectural digest of a traced
 * run is bit-identical to an untraced one (the PR 7 superblock-parity
 * guarantee makes the tracer itself free).
 *
 * Conditions are parsed once into a small expression tree; evaluation
 * is strictly read-only — registers via `Mcu::reg`, NV/SRAM words via
 * the raw region arrays (never the memory map, which would trip MMIO
 * side effects), and the capacitor via `voltageNoAdvance()` (never
 * `voltage()`, which advances the analog integrator).
 *
 * Grammar (no precedence surprises, `&&` binds tighter than `||`):
 *
 *     expr    := and ('||' and)*
 *     and     := cmp ('&&' cmp)*
 *     cmp     := '(' expr ')' | operand relop operand
 *     relop   := '==' | '!=' | '<=' | '>=' | '<' | '>'
 *     operand := rN | pc | vcap | instrs | cycles
 *              | nv[ADDR] | sram[ADDR] | NUMBER
 *
 * `nv[a]` reads the 32-bit little-endian FRAM word at absolute
 * address `a`; `sram[a]` likewise for SRAM. Out-of-range addresses
 * evaluate to 0 (a condition can never fault the host). Numbers may
 * be decimal, 0x-hex, or floating point (for `vcap` thresholds).
 *
 * Condition text arrives off the wire, so hostile input is bounded
 * at parse time: text over 4096 bytes and parenthesis nesting past
 * 32 levels are rejected (the parser recurses per '(').
 */

#ifndef EDB_EDB_VBREAK_HH
#define EDB_EDB_VBREAK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory.hh"
#include "sim/time.hh"

namespace edb::target {
class Wisp;
}

namespace edb::isa {
struct Instr;
}

namespace edb::edbdbg {

/** A parsed, side-effect-free trigger condition. */
class VBreakCondition
{
  public:
    /** An empty condition is always true (unconditional break). */
    VBreakCondition() = default;

    /**
     * Parse `text` into a condition. On failure returns nullopt and,
     * when `error` is non-null, stores a human-readable reason.
     */
    static std::optional<VBreakCondition>
    parse(const std::string &text, std::string *error = nullptr);

    /**
     * Evaluate against a target. Strictly read-only: no memory-map
     * access, no analog advance, no RNG draw — the run with the
     * condition evaluated is bit-identical to the run without.
     */
    bool eval(const target::Wisp &wisp) const;

    /** Original source text ("" for the unconditional default). */
    const std::string &text() const { return text_; }

    /** True for the always-true default. */
    bool unconditional() const { return root == nullptr; }

    struct Node; // expression tree (internal)

  private:
    std::shared_ptr<const Node> root;
    std::string text_;
};

/** One virtual breakpoint owned by a session. */
struct VirtualBreakpoint
{
    std::uint32_t id = 0;        ///< Server-assigned, unique per world.
    std::uint32_t sessionId = 0; ///< Owning session.
    mem::Addr addr = 0;          ///< Instruction address to match.
    VBreakCondition cond;        ///< Trigger condition (may be empty).
    bool enabled = true;
    std::uint64_t hits = 0;      ///< Times the condition fired.
    std::uint64_t evals = 0;     ///< Times the address matched.
};

/** One recorded trigger, queued for delivery to the owning client. */
struct VBreakHit
{
    std::uint32_t bkptId = 0;
    std::uint32_t sessionId = 0;
    mem::Addr pc = 0;
    sim::Tick when = 0;
    std::uint64_t instrs = 0;
    double vcap = 0.0;
    std::uint32_t r0 = 0; ///< First argument register, for context.
};

/**
 * The per-world breakpoint set plus its bounded hit buffer. The
 * debug server installs one probe per attached world as an MCU
 * tracer. Mutation of the breakpoint map happens only in the fleet's
 * sequential barrier phases; during the parallel advance phase the
 * tracer (run by the single worker that owns the world) only reads
 * the map and appends to this probe's own buffer, so no locking is
 * needed anywhere.
 *
 * The hit buffer is bounded (`maxPendingHits`): a breakpoint in a
 * hot loop cannot take the server's memory down; overflow is counted
 * in `droppedHits` and surfaced to the owning session as a degraded
 * delivery.
 */
class WorldProbe
{
  public:
    explicit WorldProbe(std::size_t max_pending_hits = 256)
        : maxPendingHits(max_pending_hits)
    {}

    /**
     * Install (or re-install) this probe's tracer on `wisp`. The
     * fleet's rebalance step migrates worlds into fresh objects, so
     * the server calls this at every barrier poll; installing on the
     * same device twice is harmless (the second call is a no-op).
     * A tracer the world already owns — e.g. the WAR-gadget watch on
     * auditor-completeness worlds — is chained under this probe's
     * hook, not clobbered, and keeps firing for every instruction.
     */
    void install(target::Wisp &wisp);

    /**
     * Remove the tracer (last session on the world detached),
     * restoring whatever tracer the world owned before install().
     * A no-op on a device this probe's hook is not installed on
     * (e.g. a rebalance-migrated world rebuilt with its own tracer).
     */
    void uninstall(target::Wisp &wisp);

    /** Add or replace a breakpoint. */
    void put(const VirtualBreakpoint &bp);
    /** Remove breakpoint `id`; returns false when unknown. */
    bool erase(std::uint32_t id);
    /** Remove every breakpoint owned by `session_id`. */
    std::size_t eraseSession(std::uint32_t session_id);
    /** Look up by id (nullptr when unknown). */
    const VirtualBreakpoint *find(std::uint32_t id) const;

    /** Drain the pending hit buffer (barrier phase only). */
    std::vector<VBreakHit> drainHits();

    bool empty() const { return byId.empty(); }
    std::size_t count() const { return byId.size(); }
    std::uint64_t droppedHits() const { return dropped; }
    std::uint64_t evals() const { return evals_; }

    /** All breakpoints, id-ordered (status reporting). */
    const std::map<std::uint32_t, VirtualBreakpoint> &
    breakpoints() const
    {
        return byId;
    }

  private:
    void onInstruction(const target::Wisp &wisp, mem::Addr pc);

    std::size_t maxPendingHits;
    /** The tracer the device owned before install() chained under
     *  it; invoked from our hook and restored by uninstall(). */
    std::function<void(mem::Addr, const isa::Instr &)> chained;
    std::map<std::uint32_t, VirtualBreakpoint> byId;
    /** addr -> breakpoint ids (the tracer's fast path). */
    std::multimap<mem::Addr, std::uint32_t> byAddr;
    std::vector<VBreakHit> hits;
    std::uint64_t dropped = 0;
    std::uint64_t evals_ = 0;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_VBREAK_HH
