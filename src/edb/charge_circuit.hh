/**
 * @file
 * EDB's charge/discharge circuit and its software control loop.
 *
 * Paper Section 4.1.1: "a custom circuit consisting of a low pass
 * filter, keeper diode, and GPIO pins that can charge and discharge
 * the target's energy storage capacitor... A basic iterative control
 * loop in EDB's software ensures that the voltage converges to the
 * desired level."
 *
 * The finite loop period, the ADC's quantization/noise and the
 * conservative stop margin are what give the save-restore operation
 * its measurable discrepancy (Table 3) — the paper attributes its
 * 54 mV mean to exactly this software, expecting "further software
 * optimization will leave a discrepancy closer to the accuracy limit
 * imposed by EDB's ADC".
 */

#ifndef EDB_EDB_CHARGE_CIRCUIT_HH
#define EDB_EDB_CHARGE_CIRCUIT_HH

#include <functional>
#include <string>

#include "edb/edb_adc.hh"
#include "energy/power_system.hh"
#include "sim/simulator.hh"

namespace edb::edbdbg {

/** Circuit and control-loop parameters. */
struct ChargeCircuitConfig
{
    /** Rail driven through the low-pass filter when charging. */
    double chargeVolts = 3.4;
    /** Series resistance of the charge path. */
    double chargeOhms = 1.0e3;
    /** Resistive load used to discharge. */
    double dischargeOhms = 680.0;
    /** Software control-loop iteration period. */
    sim::Tick loopPeriod = 200 * sim::oneUs;
    /**
     * Restore stop margin: the control loop stops discharging once
     * the reading is within this much *above* the saved level
     * (conservative: never under-restore). This is the dominant term
     * of the Table 3 discrepancy.
     */
    double restoreStopMargin = 0.062;
    /**
     * Give up on a ramp after this long. With a faulted supply (RF
     * fade, leak) the target level can be unreachable; an unbounded
     * loop would spin the debugger forever (the hang this replaces).
     */
    sim::Tick rampDeadline = 1 * sim::oneSec;
    /** Secondary bound on control-loop iterations. */
    std::uint64_t maxIterations = 20'000;
};

/** How a ramp ended. */
enum class RampResult
{
    Converged,        ///< Reached the requested level.
    DeadlineExceeded, ///< Gave up (deadline or iteration cap).
};

/** GPIO-driven charge/discharge circuit with iterative control. */
class ChargeCircuit : public sim::Component
{
  public:
    using DoneFn = std::function<void(RampResult)>;

    ChargeCircuit(sim::Simulator &simulator, std::string component_name,
                  energy::PowerSystem &target_power, EdbAdc &adc,
                  ChargeCircuitConfig config = {});

    /**
     * Drive the capacitor to `volts` and invoke `done`.
     * @param volts Target level.
     * @param stop_margin Accept readings within [volts, volts +
     *        margin] when approaching from above (0 for symmetric
     *        convergence).
     */
    void rampTo(double volts, double stop_margin, DoneFn done);

    /** Restore semantics: ramp with the configured stop margin. */
    void
    restoreTo(double volts, DoneFn done)
    {
        rampTo(volts, cfg.restoreStopMargin, std::move(done));
    }

    /** True while the control loop is running. */
    bool active() const { return mode != Mode::Off; }

    /** Abort any ramp without invoking the callback. */
    void abort();

    const ChargeCircuitConfig &config() const { return cfg; }

    /** Ramps abandoned on the deadline/iteration guard. */
    std::uint64_t deadlineAborts() const { return deadlineAborts_; }

  private:
    enum class Mode { Off, Charging, Discharging };

    void controlStep();
    void finish(RampResult result);

    energy::PowerSystem &power;
    EdbAdc &adc;
    ChargeCircuitConfig cfg;
    Mode mode = Mode::Off;
    double target = 0.0;
    double margin = 0.0;
    DoneFn doneFn;
    sim::EventId loopEvent = sim::invalidEventId;
    sim::Tick rampStart = 0;
    std::uint64_t iterations = 0;
    std::uint64_t deadlineAborts_ = 0;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_CHARGE_CIRCUIT_HH
