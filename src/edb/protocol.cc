#include "edb/protocol.hh"

#include <sstream>

#include "runtime/protocol_defs.hh"

namespace edb::edbdbg {

namespace proto = runtime::proto;

void
ProtocolEngine::reset()
{
    state = State::Idle;
    args.clear();
    fmt.clear();
}

void
ProtocolEngine::onByte(std::uint8_t byte)
{
    switch (state) {
      case State::Idle:
        switch (byte) {
          case proto::msgAssertFail:
            isAssert = true;
            state = State::AssertIdLo;
            break;
          case proto::msgBkptHit:
            isAssert = false;
            state = State::AssertIdLo;
            break;
          case proto::msgGuardBegin:
            if (handlers.guardBegin)
                handlers.guardBegin();
            break;
          case proto::msgGuardEnd:
            if (handlers.guardEnd)
                handlers.guardEnd();
            break;
          case proto::msgPrintf:
            args.clear();
            fmt.clear();
            state = State::PrintfNargs;
            break;
          default:
            // Stray byte (e.g. noise before sync); ignore.
            break;
        }
        break;

      case State::AssertIdLo:
        id = byte;
        state = State::AssertIdHi;
        break;
      case State::AssertIdHi:
        id |= static_cast<std::uint16_t>(byte) << 8;
        state = State::Idle;
        if (isAssert) {
            if (handlers.assertFail)
                handlers.assertFail(id);
        } else if (handlers.bkptHit) {
            handlers.bkptHit(id);
        }
        break;

      case State::BkptIdLo:
      case State::BkptIdHi:
        // Unused (merged into AssertIdLo/Hi); kept for clarity.
        state = State::Idle;
        break;

      case State::PrintfNargs:
        argsExpected = byte;
        argBytes = 0;
        curArg = 0;
        state = argsExpected > 0 ? State::PrintfArgs
                                 : State::PrintfFmt;
        break;
      case State::PrintfArgs:
        curArg |= static_cast<std::uint32_t>(byte) << (8 * argBytes);
        if (++argBytes == 4) {
            args.push_back(curArg);
            curArg = 0;
            argBytes = 0;
            if (args.size() == argsExpected)
                state = State::PrintfFmt;
        }
        break;
      case State::PrintfFmt:
        if (byte == 0) {
            state = State::Idle;
            if (handlers.printfText)
                handlers.printfText(formatPrintf(fmt, args));
        } else {
            fmt.push_back(static_cast<char>(byte));
        }
        break;
    }
}

std::string
formatPrintf(const std::string &fmt,
             const std::vector<std::uint32_t> &args)
{
    std::ostringstream out;
    std::size_t arg_index = 0;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        char c = fmt[i];
        if (c != '%' || i + 1 >= fmt.size()) {
            out << c;
            continue;
        }
        char spec = fmt[++i];
        std::uint32_t value =
            arg_index < args.size() ? args[arg_index] : 0;
        switch (spec) {
          case 'd':
            out << static_cast<std::int32_t>(value);
            ++arg_index;
            break;
          case 'u':
            out << value;
            ++arg_index;
            break;
          case 'x':
            out << std::hex << value << std::dec;
            ++arg_index;
            break;
          case 'c':
            out << static_cast<char>(value);
            ++arg_index;
            break;
          case '%':
            out << '%';
            break;
          default:
            out << '%' << spec;
            break;
        }
    }
    return out.str();
}

} // namespace edb::edbdbg
