#include "edb/protocol.hh"

#include <sstream>

#include "runtime/protocol_defs.hh"
#include "sim/snapshot.hh"

namespace edb::edbdbg {

namespace proto = runtime::proto;

std::vector<std::uint8_t>
buildFrame(const std::vector<std::uint8_t> &payload)
{
    std::size_t len = payload.size();
    if (len > proto::maxPayload)
        len = proto::maxPayload;
    std::vector<std::uint8_t> frame;
    frame.reserve(len + 3);
    frame.push_back(proto::syncByte);
    frame.push_back(static_cast<std::uint8_t>(len));
    std::uint8_t crc =
        proto::crc8Step(0, static_cast<std::uint8_t>(len));
    for (std::size_t i = 0; i < len; ++i) {
        frame.push_back(payload[i]);
        crc = proto::crc8Step(crc, payload[i]);
    }
    frame.push_back(crc);
    return frame;
}

void
ProtocolEngine::reset()
{
    state = State::Hunt;
    payload.clear();
    expected = 0;
    runningCrc = 0;
}

void
ProtocolEngine::onByte(std::uint8_t byte, sim::Tick when)
{
    // A stale partial frame (dropped byte, interrupted sender) must
    // not swallow the next frame: expire it on inter-byte gaps.
    if (state != State::Hunt && interByteTimeout > 0 &&
        when - lastByteAt > interByteTimeout) {
        ++stats_.resyncs;
        reset();
    }
    lastByteAt = when;

    switch (state) {
      case State::Hunt:
        if (byte == proto::syncByte) {
            state = State::Len;
        } else {
            ++stats_.strayBytes;
        }
        break;

      case State::Len:
        if (byte == proto::syncByte) {
            // Repeated SYNC (idle fill or a false sync right before
            // a real one): stay here, the next byte is the length.
            ++stats_.strayBytes;
            break;
        }
        if (byte == 0 || byte > proto::maxPayload) {
            // Implausible length: treat as a false sync.
            ++stats_.strayBytes;
            state = State::Hunt;
            break;
        }
        expected = byte;
        payload.clear();
        runningCrc = proto::crc8Step(0, byte);
        state = State::Payload;
        break;

      case State::Payload:
        payload.push_back(byte);
        runningCrc = proto::crc8Step(runningCrc, byte);
        if (payload.size() >= expected)
            state = State::Crc;
        break;

      case State::Crc:
        state = State::Hunt;
        if (byte != runningCrc) {
            ++stats_.crcErrors;
            if (byte == proto::syncByte) {
                // A dropped byte upstream slid the next frame's SYNC
                // into this frame's CRC slot. Resume at its length
                // byte so one lost byte can't destroy two frames.
                ++stats_.resyncs;
                state = State::Len;
            }
            break;
        }
        ++stats_.framesOk;
        dispatch();
        break;
    }
}

void
ProtocolEngine::dispatch()
{
    // The payload passed its CRC; parse it as one complete message.
    // A structurally bogus payload (truncated id, inconsistent
    // printf argument count) is counted and dropped — handlers only
    // ever see well-formed events.
    if (payload.empty())
        return;
    if (handlers.rawFrame && handlers.rawFrame(payload))
        return;
    std::uint8_t type = payload[0];
    switch (type) {
      case proto::msgAssertFail:
      case proto::msgBkptHit: {
        if (payload.size() != 3) {
            ++stats_.malformed;
            return;
        }
        std::uint16_t id = static_cast<std::uint16_t>(
            payload[1] | (std::uint16_t(payload[2]) << 8));
        if (type == proto::msgAssertFail) {
            if (handlers.assertFail)
                handlers.assertFail(id);
        } else if (handlers.bkptHit) {
            handlers.bkptHit(id);
        }
        break;
      }

      case proto::msgGuardBegin:
        if (payload.size() != 1) {
            ++stats_.malformed;
            return;
        }
        if (handlers.guardBegin)
            handlers.guardBegin();
        break;

      case proto::msgGuardEnd:
        if (payload.size() != 1) {
            ++stats_.malformed;
            return;
        }
        if (handlers.guardEnd)
            handlers.guardEnd();
        break;

      case proto::msgPrintf: {
        // [type, nargs, args (4 LE each), fmt ..., NUL]
        if (payload.size() < 3) {
            ++stats_.malformed;
            return;
        }
        std::size_t nargs = payload[1];
        std::size_t fmt_at = 2 + 4 * nargs;
        if (payload.size() < fmt_at + 1 ||
            payload.back() != 0) {
            ++stats_.malformed;
            return;
        }
        std::vector<std::uint32_t> args;
        args.reserve(nargs);
        for (std::size_t a = 0; a < nargs; ++a) {
            std::uint32_t v = 0;
            for (int b = 0; b < 4; ++b) {
                v |= std::uint32_t(payload[2 + 4 * a + b])
                     << (8 * b);
            }
            args.push_back(v);
        }
        std::string fmt(payload.begin() + fmt_at,
                        payload.end() - 1);
        if (handlers.printfText)
            handlers.printfText(formatPrintf(fmt, args));
        break;
      }

      case proto::msgReadReply: {
        std::vector<std::uint8_t> data(payload.begin() + 1,
                                       payload.end());
        if (handlers.readReply)
            handlers.readReply(data);
        break;
      }

      case proto::msgWriteAck:
        if (payload.size() != 1) {
            ++stats_.malformed;
            return;
        }
        if (handlers.writeAck)
            handlers.writeAck();
        break;

      case proto::msgWaitRestore:
        if (payload.size() != 1) {
            ++stats_.malformed;
            return;
        }
        if (handlers.waitRestore)
            handlers.waitRestore();
        break;

      default:
        // Unknown type with a valid CRC: forward-compat, drop.
        ++stats_.malformed;
        break;
    }
}

std::string
formatPrintf(const std::string &fmt,
             const std::vector<std::uint32_t> &args)
{
    std::ostringstream out;
    std::size_t arg_index = 0;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        char c = fmt[i];
        if (c != '%' || i + 1 >= fmt.size()) {
            out << c;
            continue;
        }
        char spec = fmt[++i];
        std::uint32_t value =
            arg_index < args.size() ? args[arg_index] : 0;
        switch (spec) {
          case 'd':
            out << static_cast<std::int32_t>(value);
            ++arg_index;
            break;
          case 'u':
            out << value;
            ++arg_index;
            break;
          case 'x':
            out << std::hex << value << std::dec;
            ++arg_index;
            break;
          case 'c':
            out << static_cast<char>(value);
            ++arg_index;
            break;
          case '%':
            out << '%';
            break;
          default:
            out << '%' << spec;
            break;
        }
    }
    return out.str();
}

void
ProtocolEngine::saveState(sim::SnapshotWriter &w) const
{
    w.section("protoeng");
    w.u8(static_cast<std::uint8_t>(state));
    w.blob(payload.data(), payload.size());
    w.u64(expected);
    w.u8(runningCrc);
    w.tick(lastByteAt);
    w.tick(interByteTimeout);
    w.u64(stats_.framesOk);
    w.u64(stats_.crcErrors);
    w.u64(stats_.resyncs);
    w.u64(stats_.strayBytes);
    w.u64(stats_.malformed);
}

void
ProtocolEngine::restoreState(sim::SnapshotReader &r)
{
    r.section("protoeng");
    state = static_cast<State>(r.u8());
    payload = r.blob();
    expected = r.u64();
    runningCrc = r.u8();
    lastByteAt = r.tick();
    interByteTimeout = r.tick();
    stats_.framesOk = r.u64();
    stats_.crcErrors = r.u64();
    stats_.resyncs = r.u64();
    stats_.strayBytes = r.u64();
    stats_.malformed = r.u64();
}

} // namespace edb::edbdbg
