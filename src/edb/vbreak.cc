#include "edb/vbreak.hh"

#include <cctype>
#include <cstdlib>

#include "energy/power_system.hh"
#include "isa/isa.hh"
#include "mcu/mcu.hh"
#include "sim/simulator.hh"
#include "target/wisp.hh"

namespace edb::edbdbg {

namespace {

enum class OperandKind
{
    Literal,
    Reg,
    Pc,
    Vcap,
    Instrs,
    Cycles,
    NvWord,
    SramWord,
};

struct Operand
{
    OperandKind kind = OperandKind::Literal;
    double literal = 0.0;
    unsigned reg = 0;
    mem::Addr addr = 0;
};

enum class RelOp
{
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** Read a 32-bit LE word from a raw region array; 0 out of range. */
double
regionWord(const mem::Ram &region, mem::Addr base, mem::Addr addr)
{
    // Overflow-proof bounds check: `addr + 4` wraps for addresses
    // near the top of the 32-bit space, which would let a condition
    // like nv[0xfffffffe] read far past the region buffer.
    if (addr < base)
        return 0.0;
    const mem::Addr off = addr - base;
    if (off > region.size() || region.size() - off < 4)
        return 0.0;
    const std::uint8_t *p = region.data() + off;
    std::uint32_t w = 0;
    for (int b = 0; b < 4; ++b)
        w |= std::uint32_t(p[b]) << (8 * b);
    return static_cast<double>(w);
}

double
operandValue(const Operand &op, const target::Wisp &wisp)
{
    switch (op.kind) {
      case OperandKind::Literal:
        return op.literal;
      case OperandKind::Reg:
        return static_cast<double>(wisp.mcu().reg(op.reg));
      case OperandKind::Pc:
        return static_cast<double>(wisp.mcu().pc());
      case OperandKind::Vcap:
        // voltageNoAdvance: a pure read of the integrator state. The
        // plain voltage() accessor advances the analog model and
        // would perturb the trajectory — exactly the interference
        // this debugger exists to avoid.
        return wisp.power().voltageNoAdvance();
      case OperandKind::Instrs:
        return static_cast<double>(wisp.mcu().instrCount());
      case OperandKind::Cycles:
        return static_cast<double>(wisp.mcu().cycleCount());
      case OperandKind::NvWord:
        return regionWord(wisp.framRegion(),
                          target::layout::framBase, op.addr);
      case OperandKind::SramWord:
        return regionWord(wisp.sramRegion(),
                          target::layout::sramBase, op.addr);
    }
    return 0.0;
}

} // namespace

struct VBreakCondition::Node
{
    enum class Kind
    {
        Or,
        And,
        Cmp,
    } kind = Kind::Cmp;
    std::vector<std::shared_ptr<const Node>> kids; // Or / And
    Operand lhs, rhs;                              // Cmp
    RelOp op = RelOp::Eq;                          // Cmp

    bool
    eval(const target::Wisp &wisp) const
    {
        switch (kind) {
          case Kind::Or:
            for (const auto &k : kids) {
                if (k->eval(wisp))
                    return true;
            }
            return false;
          case Kind::And:
            for (const auto &k : kids) {
                if (!k->eval(wisp))
                    return false;
            }
            return true;
          case Kind::Cmp: {
            double a = operandValue(lhs, wisp);
            double b = operandValue(rhs, wisp);
            switch (op) {
              case RelOp::Eq: return a == b;
              case RelOp::Ne: return a != b;
              case RelOp::Lt: return a < b;
              case RelOp::Le: return a <= b;
              case RelOp::Gt: return a > b;
              case RelOp::Ge: return a >= b;
            }
            return false;
          }
        }
        return false;
    }
};

namespace {

/** Recursive-descent parser over the grammar in the header. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    std::shared_ptr<const VBreakCondition::Node>
    parse(std::string *error)
    {
        auto node = parseOr();
        skipWs();
        if (node && pos != s.size()) {
            fail("trailing characters after expression");
            node = nullptr;
        }
        if (!node && error)
            *error = err.empty() ? "parse error" : err;
        return node;
    }

  private:
    using NodePtr = std::shared_ptr<const VBreakCondition::Node>;

    void
    fail(const std::string &why)
    {
        if (err.empty())
            err = why;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    eat(const char *tok)
    {
        skipWs();
        std::size_t n = 0;
        while (tok[n] != '\0')
            ++n;
        if (s.compare(pos, n, tok) != 0)
            return false;
        pos += n;
        return true;
    }

    NodePtr
    parseOr()
    {
        auto first = parseAnd();
        if (!first)
            return nullptr;
        std::vector<NodePtr> kids{first};
        while (eat("||")) {
            auto next = parseAnd();
            if (!next)
                return nullptr;
            kids.push_back(next);
        }
        if (kids.size() == 1)
            return first;
        auto n = std::make_shared<VBreakCondition::Node>();
        n->kind = VBreakCondition::Node::Kind::Or;
        n->kids = std::move(kids);
        return n;
    }

    NodePtr
    parseAnd()
    {
        auto first = parseCmp();
        if (!first)
            return nullptr;
        std::vector<NodePtr> kids{first};
        while (eat("&&")) {
            auto next = parseCmp();
            if (!next)
                return nullptr;
            kids.push_back(next);
        }
        if (kids.size() == 1)
            return first;
        auto n = std::make_shared<VBreakCondition::Node>();
        n->kind = VBreakCondition::Node::Kind::And;
        n->kids = std::move(kids);
        return n;
    }

    NodePtr
    parseCmp()
    {
        skipWs();
        if (eat("(")) {
            // Depth cap: condition text arrives off the wire, and
            // the parser recurses per '(' — without a cap a
            // "((((..." payload walks the host off its stack.
            if (++depth > maxDepth) {
                fail("expression nested too deeply");
                return nullptr;
            }
            auto inner = parseOr();
            --depth;
            if (!inner)
                return nullptr;
            if (!eat(")")) {
                fail("expected ')'");
                return nullptr;
            }
            return inner;
        }
        Operand lhs;
        if (!parseOperand(lhs))
            return nullptr;
        skipWs();
        RelOp op;
        if (eat("==")) {
            op = RelOp::Eq;
        } else if (eat("!=")) {
            op = RelOp::Ne;
        } else if (eat("<=")) {
            op = RelOp::Le;
        } else if (eat(">=")) {
            op = RelOp::Ge;
        } else if (eat("<")) {
            op = RelOp::Lt;
        } else if (eat(">")) {
            op = RelOp::Gt;
        } else {
            fail("expected comparison operator");
            return nullptr;
        }
        Operand rhs;
        if (!parseOperand(rhs))
            return nullptr;
        auto n = std::make_shared<VBreakCondition::Node>();
        n->kind = VBreakCondition::Node::Kind::Cmp;
        n->lhs = lhs;
        n->rhs = rhs;
        n->op = op;
        return n;
    }

    bool
    parseNumber(double &out)
    {
        skipWs();
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        // strtod accepts 0x-hex, decimals and floats alike.
        double v = std::strtod(start, &end);
        if (end == start) {
            fail("expected a number");
            return false;
        }
        pos += static_cast<std::size_t>(end - start);
        out = v;
        return true;
    }

    bool
    parseIndexed(Operand &op, OperandKind kind)
    {
        if (!eat("[")) {
            fail("expected '['");
            return false;
        }
        double addr = 0.0;
        if (!parseNumber(addr))
            return false;
        if (!eat("]")) {
            fail("expected ']'");
            return false;
        }
        op.kind = kind;
        op.addr = static_cast<mem::Addr>(addr);
        return true;
    }

    bool
    parseOperand(Operand &op)
    {
        skipWs();
        if (eat("pc")) {
            op.kind = OperandKind::Pc;
            return true;
        }
        if (eat("vcap")) {
            op.kind = OperandKind::Vcap;
            return true;
        }
        if (eat("instrs")) {
            op.kind = OperandKind::Instrs;
            return true;
        }
        if (eat("cycles")) {
            op.kind = OperandKind::Cycles;
            return true;
        }
        if (eat("nv"))
            return parseIndexed(op, OperandKind::NvWord);
        if (eat("sram"))
            return parseIndexed(op, OperandKind::SramWord);
        if (pos < s.size() && s[pos] == 'r' && pos + 1 < s.size() &&
            std::isdigit(static_cast<unsigned char>(s[pos + 1]))) {
            ++pos;
            unsigned n = 0;
            while (pos < s.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(s[pos]))) {
                n = n * 10 + static_cast<unsigned>(s[pos] - '0');
                ++pos;
            }
            if (n >= isa::numRegs) {
                fail("register index out of range");
                return false;
            }
            op.kind = OperandKind::Reg;
            op.reg = n;
            return true;
        }
        op.kind = OperandKind::Literal;
        return parseNumber(op.literal);
    }

    static constexpr unsigned maxDepth = 32;

    const std::string &s;
    std::size_t pos = 0;
    std::string err;
    unsigned depth = 0;
};

} // namespace

std::optional<VBreakCondition>
VBreakCondition::parse(const std::string &text, std::string *error)
{
    VBreakCondition c;
    // Length cap before anything else: condition text arrives off
    // the wire, and every byte is re-walked on parse failure paths.
    if (text.size() > 4096) {
        if (error)
            *error = "expression too long";
        return std::nullopt;
    }
    c.text_ = text;
    // All-whitespace text is the unconditional default.
    bool blank = true;
    for (char ch : text) {
        if (!std::isspace(static_cast<unsigned char>(ch)))
            blank = false;
    }
    if (blank)
        return c;
    Parser p(text);
    c.root = p.parse(error);
    if (!c.root)
        return std::nullopt;
    return c;
}

bool
VBreakCondition::eval(const target::Wisp &wisp) const
{
    return root == nullptr || root->eval(wisp);
}

void
WorldProbe::install(target::Wisp &wisp)
{
    auto &m = wisp.mcu();
    if (m.tracerOwner() == this)
        return; // our chain is already on this core
    // A world may own a tracer of its own (the WAR-gadget watch on
    // auditor-completeness worlds). Chain under it so attaching a
    // breakpoint never disables the world's probe; it is restored
    // verbatim by uninstall().
    chained = m.tracerHook();
    target::Wisp *device = &wisp;
    m.setTracer(
        [this, device](mem::Addr pc, const isa::Instr &in) {
            if (chained)
                chained(pc, in);
            onInstruction(*device, pc);
        },
        this);
}

void
WorldProbe::uninstall(target::Wisp &wisp)
{
    auto &m = wisp.mcu();
    // A rebalance-migrated world was rebuilt with a fresh core and
    // its own tracer; only unwind a hook we actually installed —
    // restoring a stale `chained` there would resurrect a lambda
    // bound to the old, destroyed world.
    if (m.tracerOwner() == this)
        m.setTracer(std::move(chained));
    chained = {};
}

void
WorldProbe::put(const VirtualBreakpoint &bp)
{
    erase(bp.id);
    byId.emplace(bp.id, bp);
    byAddr.emplace(bp.addr, bp.id);
}

bool
WorldProbe::erase(std::uint32_t id)
{
    auto it = byId.find(id);
    if (it == byId.end())
        return false;
    auto range = byAddr.equal_range(it->second.addr);
    for (auto a = range.first; a != range.second; ++a) {
        if (a->second == id) {
            byAddr.erase(a);
            break;
        }
    }
    byId.erase(it);
    return true;
}

std::size_t
WorldProbe::eraseSession(std::uint32_t session_id)
{
    std::vector<std::uint32_t> doomed;
    for (const auto &[id, bp] : byId) {
        if (bp.sessionId == session_id)
            doomed.push_back(id);
    }
    for (std::uint32_t id : doomed)
        erase(id);
    return doomed.size();
}

const VirtualBreakpoint *
WorldProbe::find(std::uint32_t id) const
{
    auto it = byId.find(id);
    return it == byId.end() ? nullptr : &it->second;
}

std::vector<VBreakHit>
WorldProbe::drainHits()
{
    std::vector<VBreakHit> out;
    out.swap(hits);
    return out;
}

void
WorldProbe::onInstruction(const target::Wisp &wisp, mem::Addr pc)
{
    auto range = byAddr.equal_range(pc);
    for (auto it = range.first; it != range.second; ++it) {
        auto bi = byId.find(it->second);
        if (bi == byId.end())
            continue;
        VirtualBreakpoint &bp = bi->second;
        if (!bp.enabled)
            continue;
        ++bp.evals;
        ++evals_;
        if (!bp.cond.eval(wisp))
            continue;
        ++bp.hits;
        if (hits.size() >= maxPendingHits) {
            ++dropped;
            continue;
        }
        VBreakHit h;
        h.bkptId = bp.id;
        h.sessionId = bp.sessionId;
        h.pc = pc;
        h.when = wisp.sim().now();
        h.instrs = wisp.mcu().instrCount();
        h.vcap = wisp.power().voltageNoAdvance();
        h.r0 = wisp.mcu().reg(0);
        hits.push_back(h);
    }
}

} // namespace edb::edbdbg
