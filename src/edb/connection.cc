#include "edb/connection.hh"

#include <algorithm>
#include <cmath>

namespace edb::edbdbg {

namespace {
constexpr double nano = 1e-9;
}

Connection::Connection(std::string connection_name, ConnectionType type,
                       sim::Rng &rng, LineState idle_state)
    : name_(std::move(connection_name)), type_(type), state_(idle_state)
{
    switch (type_) {
      case ConnectionType::AnalogSense:
        // Instrumentation-amp input: sub-nA bias current with small
        // device-to-device spread; slightly negative offset (input
        // bias flows into the target).
        analogSlope = (0.35 + rng.gaussian(0.10)) * nano;
        analogOffset = (-0.70 + rng.gaussian(0.60)) * nano;
        break;
      case ConnectionType::DebuggerToTarget:
        // Target side is a high-impedance input; only protection
        // diode leakage of a few tens of pA either way.
        highSlope = 0.0;
        highOffset = rng.gaussian(0.01) * nano;
        lowLeak = (-0.02 + rng.gaussian(0.005)) * nano;
        break;
      case ConnectionType::TargetToDebugger:
        // The target drives into EDB's ultra-low-leakage buffer:
        // input leakage grows with the driven voltage (~27 nA/V),
        // i.e. ~65 nA at 2.4 V as in Table 2; near -2 nA flows back
        // when the line is low.
        highSlope = (27.0 + rng.gaussian(3.0)) * nano;
        highOffset = rng.gaussian(0.02) * nano;
        lowLeak = (-2.0 + rng.gaussian(0.25)) * nano;
        break;
      case ConnectionType::I2cOpenDrain:
        // Passive tap on an open-drain bus: tens of pA high, a few
        // hundred pA low.
        highSlope = (0.015 + rng.gaussian(0.005)) * nano;
        highOffset = 0.0;
        lowLeak = (-0.18 + rng.gaussian(0.04)) * nano;
        break;
    }
}

double
Connection::current(LineState state, double volts) const
{
    if (type_ == ConnectionType::AnalogSense)
        return analogSlope * volts + analogOffset;
    switch (state) {
      case LineState::High:
        return highSlope * volts + highOffset;
      case LineState::Low:
        return lowLeak;
      case LineState::Analog:
        return analogSlope * volts + analogOffset;
    }
    return 0.0;
}

double
Connection::worstCaseAbs(double max_volts) const
{
    double hi = std::abs(current(LineState::High, max_volts));
    double lo = std::abs(current(LineState::Low, max_volts));
    double an = std::abs(current(LineState::Analog, max_volts));
    if (type_ == ConnectionType::AnalogSense)
        return std::max(an, std::abs(current(LineState::Analog, 0.0)));
    return std::max(hi, lo);
}

ConnectionSet::ConnectionSet(sim::Rng &rng)
{
    using CT = ConnectionType;
    using LS = LineState;
    // One row per wire in paper Fig 5 / Table 2. Idle states: UART
    // lines idle high, marker and comm lines idle low, I2C pulled
    // high.
    connections.emplace_back("Capacitor sense, manipulate",
                             CT::AnalogSense, rng, LS::Analog);
    connections.emplace_back("Regulator sense, level reference",
                             CT::AnalogSense, rng, LS::Analog);
    connections.emplace_back("Debugger->Target comm.",
                             CT::DebuggerToTarget, rng, LS::Low);
    connections.emplace_back("Target->Debugger comm.",
                             CT::TargetToDebugger, rng, LS::Low);
    connections.emplace_back("Code marker 0", CT::TargetToDebugger,
                             rng, LS::Low);
    connections.emplace_back("Code marker 1", CT::TargetToDebugger,
                             rng, LS::Low);
    connections.emplace_back("UART RX", CT::TargetToDebugger, rng,
                             LS::High);
    connections.emplace_back("UART TX", CT::TargetToDebugger, rng,
                             LS::High);
    connections.emplace_back("RF RX", CT::TargetToDebugger, rng,
                             LS::Low);
    connections.emplace_back("RF TX", CT::TargetToDebugger, rng,
                             LS::Low);
    connections.emplace_back("I2C SCL", CT::I2cOpenDrain, rng,
                             LS::High);
    connections.emplace_back("I2C SDA", CT::I2cOpenDrain, rng,
                             LS::High);
}

Connection *
ConnectionSet::find(const std::string &connection_name)
{
    for (auto &c : connections) {
        if (c.name() == connection_name)
            return &c;
    }
    return nullptr;
}

double
ConnectionSet::totalDrain(double volts) const
{
    double total = 0.0;
    for (const auto &c : connections)
        total += c.currentNow(volts);
    return total;
}

double
ConnectionSet::worstCaseTotal(double max_volts) const
{
    double total = 0.0;
    for (const auto &c : connections)
        total += c.worstCaseAbs(max_volts);
    return total;
}

} // namespace edb::edbdbg
