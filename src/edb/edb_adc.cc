#include "edb/edb_adc.hh"

#include <cmath>

namespace edb::edbdbg {

EdbAdc::EdbAdc(sim::Rng &rng_in, EdbAdcConfig config)
    : rng(rng_in), cfg(config)
{}

double
EdbAdc::lsbVolts() const
{
    return cfg.vrefVolts / static_cast<double>((1u << cfg.bits) - 1);
}

std::uint32_t
EdbAdc::codeFor(double volts) const
{
    if (volts <= 0.0)
        return 0;
    auto full = (1u << cfg.bits) - 1;
    auto code = static_cast<std::uint32_t>(
        std::lround(volts / cfg.vrefVolts * full));
    return code > full ? full : code;
}

double
EdbAdc::voltsFor(std::uint32_t code) const
{
    return static_cast<double>(code) * lsbVolts();
}

std::uint32_t
EdbAdc::sampleCode(double volts)
{
    if (faultHook)
        volts = faultHook(volts);
    return codeFor(volts + rng.gaussian(cfg.noiseSigmaVolts));
}

double
EdbAdc::sampleVolts(double volts)
{
    return voltsFor(sampleCode(volts));
}

} // namespace edb::edbdbg
