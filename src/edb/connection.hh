/**
 * @file
 * Electrical connection model between EDB and the target.
 *
 * Every wire in paper Fig 5 (Vcap, Vreg, comm lines, code markers,
 * UART, RF data, I2C) is a `Connection` with a per-logic-state DC
 * leakage characteristic. The sum of these leakages is the passive
 * energy interference of the debugger — the quantity Table 2 bounds
 * at 0.85 uA worst case, "0.2% of the typical active mode current".
 *
 * Leakage magnitudes are seeded from the component classes of the
 * real design: instrumentation-amplifier inputs for analog senses,
 * ultra-low-leakage digital buffers for monitored lines (with the
 * buffer input leaking tens of nA when driven high), and open-drain
 * I2C taps.
 */

#ifndef EDB_EDB_CONNECTION_HH
#define EDB_EDB_CONNECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace edb::edbdbg {

/** Logic state of a connection's driving endpoint. */
enum class LineState : std::uint8_t { Low, High, Analog };

/** Which side drives the line. */
enum class LineDriver : std::uint8_t { Target, Debugger };

/** Electrical class of a connection. */
enum class ConnectionType : std::uint8_t
{
    AnalogSense,      ///< Vcap / Vreg instrumentation-amp inputs.
    DebuggerToTarget, ///< Debugger-driven comm (target-side hi-Z).
    TargetToDebugger, ///< Target-driven line into the EDB buffer.
    I2cOpenDrain,     ///< Passive open-drain tap.
};

/**
 * One physical wire between EDB and the target.
 *
 * `current(state, volts)` returns the signed DC current flowing
 * from the *target* into the debugger (positive drains the target).
 * Characteristics carry a small per-device variation so measured
 * min/avg/max spread across instances as in Table 2.
 */
class Connection
{
  public:
    /**
     * @param connection_name Table 2 row label.
     * @param type Electrical class.
     * @param rng Per-device parameter variation source.
     * @param idle_state Logic state when the line is quiescent.
     */
    Connection(std::string connection_name, ConnectionType type,
               sim::Rng &rng, LineState idle_state);

    const std::string &name() const { return name_; }
    ConnectionType type() const { return type_; }

    /**
     * Signed DC current (amps) out of the target at the given
     * driving-endpoint state and voltage.
     */
    double current(LineState state, double volts) const;

    /** Present logic state (updated by traffic on the wire). */
    LineState state() const { return state_; }
    void setState(LineState s) { state_ = s; }

    /** Current at the present state and voltage. */
    double
    currentNow(double volts) const
    {
        return current(state_, volts);
    }

    /**
     * Worst-case |current| over both logic states at the worst-case
     * voltage (the Table 2 "Worst-Case Total" contribution).
     */
    double worstCaseAbs(double max_volts) const;

  private:
    std::string name_;
    ConnectionType type_;
    LineState state_;
    /** Conductance seen when the line is driven high (A/V). */
    double highSlope = 0.0;
    /** Offset current when driven high (A). */
    double highOffset = 0.0;
    /** Constant leakage when the line is low (A, signed). */
    double lowLeak = 0.0;
    /** Analog-sense input conductance (A/V, signed contributions). */
    double analogSlope = 0.0;
    double analogOffset = 0.0;
};

/** The standard EDB<->target harness: one entry per Fig 5 wire. */
class ConnectionSet
{
  public:
    explicit ConnectionSet(sim::Rng &rng);

    /** All connections. */
    std::vector<Connection> &all() { return connections; }
    const std::vector<Connection> &all() const { return connections; }

    /** Find by name (nullptr when missing). */
    Connection *find(const std::string &connection_name);

    /** Net target-drain current at voltage `volts`, present states. */
    double totalDrain(double volts) const;

    /** Sum of per-connection worst cases (Table 2 bottom line). */
    double worstCaseTotal(double max_volts) const;

  private:
    std::vector<Connection> connections;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_CONNECTION_HH
