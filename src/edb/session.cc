#include "edb/session.hh"

#include "edb/board.hh"

namespace edb::edbdbg {

const char *
sessionReasonName(SessionReason reason)
{
    switch (reason) {
      case SessionReason::AssertFail: return "assert";
      case SessionReason::CodeBreakpoint: return "code-breakpoint";
      case SessionReason::EnergyBreakpoint: return "energy-breakpoint";
      case SessionReason::Manual: return "manual";
      case SessionReason::ConsistencyViolation:
        return "consistency-violation";
    }
    return "unknown";
}

DebugSession::DebugSession(EdbBoard &owning_board, SessionReason reason,
                           std::uint16_t session_id, double saved_volts)
    : board(owning_board),
      reason_(reason),
      id_(session_id),
      savedVolts_(saved_volts)
{}

std::optional<std::vector<std::uint8_t>>
DebugSession::readBytes(std::uint32_t addr, std::uint16_t len,
                        sim::Tick timeout)
{
    if (!open_)
        return std::nullopt;
    return board.sessionRead(addr, len, timeout);
}

std::optional<std::uint32_t>
DebugSession::read32(std::uint32_t addr, sim::Tick timeout)
{
    auto bytes = readBytes(addr, 4, timeout);
    if (!bytes || bytes->size() != 4)
        return std::nullopt;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>((*bytes)[i]) << (8 * i);
    return value;
}

bool
DebugSession::write32(std::uint32_t addr, std::uint32_t value,
                      sim::Tick timeout)
{
    if (!open_)
        return false;
    return board.sessionWrite(addr, value, timeout);
}

std::vector<mem::NvFinding>
DebugSession::findings() const
{
    if (!board.auditor())
        return {};
    return board.auditor()->findings();
}

void
DebugSession::resume()
{
    if (!open_)
        return;
    resumed_ = true;
    board.sessionResume();
}

} // namespace edb::edbdbg
