#include "edb/charge_circuit.hh"

namespace edb::edbdbg {

ChargeCircuit::ChargeCircuit(sim::Simulator &simulator,
                             std::string component_name,
                             energy::PowerSystem &target_power,
                             EdbAdc &adc_in, ChargeCircuitConfig config)
    : sim::Component(simulator, std::move(component_name)),
      power(target_power),
      adc(adc_in),
      cfg(config)
{
    // The circuit is high-impedance while inactive: it neither loads
    // nor trickle-charges the target (paper Section 4.1.1). Worst
    // draw for the block-drain pre-check: a full-voltage discharge.
    power.addSource(
        name(),
        [this](double v, double) {
            switch (mode) {
              case Mode::Off:
                return 0.0;
              case Mode::Charging: {
                double i = (cfg.chargeVolts - v) / cfg.chargeOhms;
                return i > 0.0 ? i : 0.0;
              }
              case Mode::Discharging:
                return -(v / cfg.dischargeOhms);
            }
            return 0.0;
        },
        power.config().maxVolts / cfg.dischargeOhms);
}

void
ChargeCircuit::rampTo(double volts, double stop_margin, DoneFn done)
{
    abort();
    target = volts;
    margin = stop_margin;
    doneFn = std::move(done);
    rampStart = now();
    iterations = 0;
    double reading = adc.sampleVolts(power.voltage());
    if (reading > target + margin) {
        mode = Mode::Discharging;
    } else if (reading < target) {
        mode = Mode::Charging;
    } else {
        finish(RampResult::Converged);
        return;
    }
    loopEvent =
        sim().scheduleIn(cfg.loopPeriod, [this] { controlStep(); });
}

void
ChargeCircuit::controlStep()
{
    loopEvent = sim::invalidEventId;
    if (mode == Mode::Off)
        return;
    double reading = adc.sampleVolts(power.voltage());
    bool converged = mode == Mode::Discharging
                         ? reading <= target + margin
                         : reading >= target;
    if (converged) {
        finish(RampResult::Converged);
        return;
    }
    // With a faulted supply the level may be unreachable; give up
    // rather than spin the control loop forever.
    ++iterations;
    if (now() - rampStart >= cfg.rampDeadline ||
        iterations >= cfg.maxIterations) {
        ++deadlineAborts_;
        finish(RampResult::DeadlineExceeded);
        return;
    }
    loopEvent =
        sim().scheduleIn(cfg.loopPeriod, [this] { controlStep(); });
}

void
ChargeCircuit::finish(RampResult result)
{
    mode = Mode::Off;
    if (doneFn) {
        DoneFn fn = std::move(doneFn);
        doneFn = nullptr;
        fn(result);
    }
}

void
ChargeCircuit::abort()
{
    if (loopEvent != sim::invalidEventId) {
        sim().cancel(loopEvent);
        loopEvent = sim::invalidEventId;
    }
    mode = Mode::Off;
    doneFn = nullptr;
}

} // namespace edb::edbdbg
