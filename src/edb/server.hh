/**
 * @file
 * Multi-client virtual-breakpoint debug server (DESIGN.md §13).
 *
 * The server multiplexes many debugger frontends over one fleet:
 * each client attaches a supervised session to a tag world, sets
 * virtual breakpoints (edb/vbreak.hh) with conditions over
 * registers, NV words and the capacitor voltage, and reads target
 * state — all evaluated host-side at the fleet's epoch barriers with
 * *zero* target energy cost. The energy-interference-freedom claim
 * is not aspirational: read-only sessions never touch the memory
 * map, never advance the analog model and never draw from a world's
 * RNG, so per-world digests are bit-identical with and without
 * clients attached (the chaos soak pins this), and every command
 * handler additionally asserts a zero capacitor-voltage delta — the
 * charge/restore discipline of the paper's active mode, degenerated
 * to "you may not move the needle at all".
 *
 * Wire format: each direction carries the CRC-framed byte protocol
 * of runtime/protocol_defs.hh (sync + len + payload + CRC-8), with
 * JSON-RPC-flavoured payloads layered on top via ProtocolEngine's
 * `rawFrame` hook. Requests are objects like
 *
 *     {"id":7,"m":"setbreak","addr":"0x4010","cond":"r2>=5"}
 *
 * and responses echo the id: `{"id":7,"ok":true,"bk":1}`. Server
 * events (breakpoint hits, pings, shed notices) are id-less objects
 * with an "ev" key. Every frame the server emits fits the 255-byte
 * payload limit by construction (reads are chunked, symbol listings
 * paginated).
 *
 * Supervision (per session): idle timeouts answered with bounded
 * ping probes then abort; per-command deadlines (stale queued
 * commands fail loudly instead of executing late); bounded delivery
 * retries with exponential backoff against clients that stop
 * draining their receive queue; bounded command queues with explicit
 * `busy` backpressure; an eval-budget shedder that drops the
 * heaviest sessions when breakpoint evaluation exceeds the per-poll
 * budget. Every terminal session leaves a SessionReport — nothing is
 * shed or aborted silently. Malformed, truncated, duplicated,
 * replayed and trickled (slowloris) frames are survived by the same
 * ProtocolEngine resync machinery the EDB board uses on the target
 * UART, with a per-poll inter-byte timeout expiring frames that
 * never finish.
 */

#ifndef EDB_EDB_SERVER_HH
#define EDB_EDB_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "edb/protocol.hh"
#include "edb/vbreak.hh"
#include "isa/listing.hh"
#include "sim/fault.hh"
#include "sim/time.hh"

namespace edb::fleet {
class Fleet;
}

namespace edb::edbdbg {

/**
 * Minimal JSON value for the RPC layer: null / bool / number /
 * string / array / object. The parser is depth-capped and never
 * throws — adversarial nesting or byte soup yields nullopt, not a
 * crash or unbounded recursion.
 */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj,
    };

    JsonValue() = default;

    static std::optional<JsonValue>
    parse(const std::string &text, std::size_t max_depth = 8);
    static std::optional<JsonValue>
    parse(const std::vector<std::uint8_t> &bytes,
          std::size_t max_depth = 8);

    Type type() const { return type_; }
    bool isObj() const { return type_ == Type::Obj; }

    /** Object member (nullptr when absent or not an object). */
    const JsonValue *get(const std::string &key) const;

    /** Typed reads with defaults (never throw). */
    double num(double fallback = 0.0) const;
    bool boolean(bool fallback = false) const;
    const std::string &str() const { return str_; }
    const std::vector<JsonValue> &arr() const { return arr_; }

    /**
     * Read a member as an integer, accepting both JSON numbers and
     * "0x..." hex strings (addresses travel as hex text).
     */
    std::optional<std::uint64_t>
    getUint(const std::string &key) const;
    std::optional<std::string>
    getStr(const std::string &key) const;

  private:
    friend class JsonBuilder;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

/**
 * One in-memory duplex connection between a client and the server.
 * Both directions are bounded byte queues; a full queue rejects
 * writes (that is the backpressure signal, not silent loss). The
 * server owns the wire; the client keeps a handle.
 */
class ClientWire
{
  public:
    explicit ClientWire(std::size_t max_queued_bytes)
        : cap(max_queued_bytes)
    {}

    /// @name Client side
    /// @{
    /** Queue bytes toward the server; false when over capacity. */
    bool toServer(const std::vector<std::uint8_t> &bytes);
    /** Drain everything the server has queued for this client. */
    std::vector<std::uint8_t> fromServer();
    /** Hard-close (mid-command disconnects included). */
    void disconnect() { connected_ = false; }
    bool connected() const { return connected_; }
    /// @}

    /// @name Server side
    /// @{
    /** Drain up to `max_bytes` inbound bytes (0 = all). */
    std::vector<std::uint8_t> serverDrain(std::size_t max_bytes);
    /** Queue bytes toward the client; false when over capacity. */
    bool toClient(const std::vector<std::uint8_t> &bytes);
    std::size_t clientBacklog() const { return s2c.size(); }
    /// @}

  private:
    std::size_t cap;
    bool connected_ = true;
    std::deque<std::uint8_t> c2s;
    std::deque<std::uint8_t> s2c;
};

/** Supervision and resource knobs. */
struct ServerConfig
{
    std::size_t maxClients = 32;
    /** Per-direction wire queue capacity (bytes). */
    std::size_t maxQueuedBytes = 2048;
    /** Parsed commands queued per session; overflow answers
     *  `{"ok":false,"err":"busy"}` instead of queueing. */
    std::size_t maxPendingCmds = 8;
    /** Round-robin quantum: commands served per session per poll. */
    unsigned commandsPerPoll = 4;
    /** Queued commands older than this fail with "deadline". */
    sim::Tick commandDeadline = 50 * sim::oneMs;
    /** No valid inbound frame for this long: start probing. */
    sim::Tick idleTimeout = 200 * sim::oneMs;
    /** Unanswered ping probes before the session is aborted. */
    unsigned maxProbes = 3;
    /** Outbound delivery retries before a non-draining client is
     *  shed (each retry backs off exponentially). */
    unsigned deliveryRetryMax = 4;
    /** First retry delay; doubles per attempt. */
    sim::Tick deliveryBackoffBase = 5 * sim::oneMs;
    /** Inter-byte resync timeout on each client parser (slowloris
     *  defense; must be shorter than the fleet epoch). */
    sim::Tick interByteTimeout = 2 * sim::oneMs;
    /** Breakpoint-evaluation budget per poll (0 = unlimited); when
     *  exceeded the heaviest sessions are shed. */
    std::uint64_t evalBudgetPerPoll = 0;
    std::size_t maxBreakpointsPerSession = 16;
    /** Pending-hit buffer per world (overflow counts, never grows). */
    std::size_t maxHitsPerWorld = 256;
    /** Max bytes per `read` command reply chunk. */
    std::size_t readChunkMax = 64;
    /** Symbols returned per `symbols` page. */
    std::size_t symbolsPerPage = 4;
};

/** Why a session ended (or was degraded). */
enum class SessionOutcome
{
    Active,       ///< Still attached (not a terminal outcome).
    Completed,    ///< Clean detach.
    Shed,         ///< Server dropped it (backpressure/eval budget).
    Aborted,      ///< Supervision gave up (idle, probes exhausted).
    Disconnected, ///< Client vanished mid-session.
};

const char *sessionOutcomeName(SessionOutcome o);

/** Terminal record: every shed/aborted session leaves exactly one. */
struct SessionReport
{
    std::uint32_t sessionId = 0;
    std::string client;
    std::size_t world = SIZE_MAX;
    SessionOutcome outcome = SessionOutcome::Active;
    std::string reason;
    bool degraded = false;
    std::uint64_t commandsServed = 0;
    std::uint64_t commandsDeadlined = 0;
    std::uint64_t commandsBackpressured = 0;
    std::uint64_t hitsDelivered = 0;
    std::uint64_t hitsDropped = 0;
    /** Command replies shed at the outbox cap (client not draining);
     *  distinct from hitsDropped, which counts breakpoint hits. */
    std::uint64_t repliesDropped = 0;
    std::uint64_t deliveryRetries = 0;
};

/** See file header. */
class DebugServer
{
  public:
    struct Stats
    {
        std::uint64_t polls = 0;
        std::uint64_t framesIn = 0;
        std::uint64_t framesOut = 0;
        std::uint64_t malformedJson = 0;
        std::uint64_t commandsServed = 0;
        std::uint64_t commandsDeadlined = 0;
        std::uint64_t commandsBackpressured = 0;
        std::uint64_t probesSent = 0;
        std::uint64_t sessionsShed = 0;
        std::uint64_t sessionsAborted = 0;
        std::uint64_t hitsDelivered = 0;
        std::uint64_t hitsDropped = 0;
        /** Command replies shed at the outbox cap. */
        std::uint64_t repliesDropped = 0;
        std::uint64_t evalsCharged = 0;
        /** Per-command capacitor-voltage deltas observed != 0 —
         *  must stay 0 for read-only sessions (interference). */
        std::uint64_t interferenceViolations = 0;
        std::uint64_t oversizeReplies = 0;
    };

    DebugServer(fleet::Fleet &fleet, ServerConfig config = {});
    ~DebugServer();

    /** Symbol table served to every world (default firmware). */
    void setSymbols(isa::SymbolTable table);

    /**
     * Accept a new client connection. Returns the wire handle the
     * client talks through, or nullptr when `maxClients` connections
     * already exist (connection-level backpressure).
     */
    ClientWire *connect(const std::string &client_name);

    /**
     * Drive the fleet one epoch and service clients at the barrier.
     * Breakpoint probes are (re-)installed on every attached world
     * before the epoch runs — rebalance migrations build fresh
     * worlds, losing tracers, so installation must repeat.
     */
    void runEpoch();
    /** `runEpoch` n times. */
    void runEpochs(unsigned epochs);

    /**
     * Service wires without advancing the fleet: drain inbound
     * bytes, execute due commands, deliver hits and responses, run
     * supervision. Called from runEpoch; callable alone to quiesce.
     */
    void poll();

    /// @name Inspection
    /// @{
    const Stats &stats() const { return stats_; }
    /** Terminal-session records (every shed/abort appears here). */
    const std::vector<SessionReport> &reports() const
    {
        return reports_;
    }
    /** Sessions neither healthy-idle nor terminal after a quiesce:
     *  mid-command or mid-frame with no way to make progress. The
     *  chaos soak requires this to be zero. */
    std::size_t stuckSessions() const;
    /** Live (non-terminal) session count. */
    std::size_t activeSessions() const;
    const ServerConfig &config() const { return cfg; }
    /// @}

  private:
    struct Session;

    void installProbes();
    void drainWires();
    void serveCommands();
    void deliverHits();
    void flushOutboxes();
    void superviseSessions();
    void shedOverBudget();
    void reapDisconnected();

    void onFrame(Session &s, const std::vector<std::uint8_t> &pl);
    void execute(Session &s, const JsonValue &req);
    void dispatchCmd(Session &s, const JsonValue &req);
    /**
     * Frame `json` into the session outbox; false when shed at the
     * outbox cap. `hit_event` classifies a shed frame as a dropped
     * breakpoint hit rather than a dropped command reply.
     */
    bool enqueueReply(Session &s, const std::string &json,
                      bool hit_event = false);
    void terminate(Session &s, SessionOutcome outcome,
                   const std::string &reason);

    fleet::Fleet &fleet_;
    ServerConfig cfg;
    isa::SymbolTable symbols_;
    std::vector<std::unique_ptr<Session>> sessions;
    /** Probes by world index; installed as tracers each epoch. */
    std::map<std::size_t, WorldProbe> probes;
    /** Probe-buffer drops already folded into stats_. */
    std::map<std::size_t, std::uint64_t> probeDropsSeen;
    std::vector<SessionReport> reports_;
    Stats stats_;
    std::uint32_t nextSessionId = 1;
    std::uint32_t nextBreakId = 1;
    std::size_t rrNext = 0; ///< Round-robin start cursor.
};

/**
 * Test/soak-side client: frames JSON requests, optionally mangles
 * them through a ClientFaultPlan (including slowloris trickling and
 * scripted disconnects), and parses server frames back into
 * JsonValue responses and events.
 */
class RpcClient
{
  public:
    RpcClient(DebugServer &server, std::string client_name,
              sim::ClientFaultPlan faults = disabledFaults());

    /** True when the server accepted the connection. */
    bool connected() const { return wire_ && wire_->connected(); }

    /**
     * Frame and stage one request; `body` is the JSON text minus
     * the id, e.g. `"m":"attach","world":0`. Returns the request id
     * (0 when the connection is gone).
     */
    std::uint64_t request(const std::string &body);

    /**
     * Move staged bytes onto the wire (respecting any slowloris
     * budget) and drain/parse server frames. Call once per epoch.
     */
    void pump();

    /** Responses received so far (id-bearing objects), oldest
     *  first; caller takes them. */
    std::vector<JsonValue> takeResponses();
    /** Server events ("ev" objects: hits, pings, bye). */
    std::vector<JsonValue> takeEvents();

    /** Wait helper for tests: pump up to `epochs` fleet epochs (via
     *  the server) until a response with `id` arrives. */
    std::optional<JsonValue> await(std::uint64_t id,
                                   unsigned epochs = 50);

    void disconnect();

    const sim::ClientWireFaults &faults() const { return faults_; }

    static sim::ClientFaultPlan
    disabledFaults()
    {
        sim::ClientFaultPlan p;
        p.enabled = false;
        return p;
    }

  private:
    DebugServer &server_;
    std::string name_;
    ClientWire *wire_;
    sim::ClientWireFaults faults_;
    ProtocolEngine parser;
    std::deque<std::uint8_t> staged;
    std::vector<JsonValue> responses;
    std::vector<JsonValue> events;
    std::uint64_t nextId = 1;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_SERVER_HH
