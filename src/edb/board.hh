/**
 * @file
 * The EDB board: the paper's primary contribution, in simulation.
 *
 * Wires onto a `target::Wisp` through the `ConnectionSet` harness
 * and provides:
 *
 *  Passive mode (Section 3.1) — concurrent, timestamped streams of
 *  energy samples, program events (code markers), wired-bus I/O and
 *  RFID messages, all gathered without supplying energy to the
 *  target beyond the sub-uA pin leakages of Table 2.
 *
 *  Active mode (Section 3.2) — energy save / tether / restore around
 *  debugging tasks of arbitrary cost.
 *
 *  Debugging primitives (Section 3.3) — code / energy / combined
 *  breakpoints, keep-alive assertions, energy guards,
 *  energy-interference-free printf, and interactive sessions.
 */

#ifndef EDB_EDB_BOARD_HH
#define EDB_EDB_BOARD_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "edb/charge_circuit.hh"
#include "edb/connection.hh"
#include "edb/edb_adc.hh"
#include "edb/protocol.hh"
#include "edb/session.hh"
#include "energy/supply.hh"
#include "rfid/channel.hh"
#include "sim/fault.hh"
#include "target/wisp.hh"
#include "trace/trace.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::edbdbg {

/** EDB board configuration. */
struct EdbConfig
{
    /** Passive energy-trace sampling period. */
    sim::Tick energySamplePeriod = 1 * sim::oneMs;
    /** Firmware latency from request-line edge to active-mode entry. */
    sim::Tick reqLatency = 50 * sim::oneUs;
    /** Tethered ("keep-alive") supply parameters. */
    double tetherVolts = 3.0;
    double tetherOhms = 50.0;
    /** Rearm hysteresis for energy breakpoints. */
    double energyBkptHysteresis = 0.05;
    EdbAdcConfig adc = {};
    ChargeCircuitConfig charge = {};
    /** Model the passive pin leakages on the target supply. */
    bool attachPassiveLeakage = true;

    /// @name Link-robustness knobs
    /// @{
    /** Episode watchdog period: how long the board waits for frame
     *  progress before probing the target with cmdStatus. */
    sim::Tick linkProbeTimeout = 20 * sim::oneMs;
    /** Fruitless probes while awaiting an event frame before the
     *  episode is abandoned as link-dead. */
    unsigned linkProbeMax = 5;
    /** Probe budget inside an energy guard (guard bodies legitimately
     *  run for a long time without traffic, so this is a backstop
     *  against true deadlock, not a responsiveness bound). */
    unsigned guardProbeMax = 500;
    /** ackRestored retransmissions before the episode is forced
     *  closed (the request line never fell). */
    unsigned ackRetryMax = 5;
    /** Per-command retry budgets for session reads/writes/resume. */
    unsigned readRetryMax = 4;
    unsigned writeRetryMax = 4;
    unsigned resumeRetryMax = 4;
    /** Largest single memory-read request (reply must fit one
    frame). */
    std::uint16_t readChunk = 48;
    /** Host parser inter-byte resync timeout. */
    sim::Tick interByteTimeout = 2 * sim::oneMs;
    /// @}
};

/** Link-health counters for one board (see also ProtocolEngine
 *  stats for parse-level counters). */
struct LinkStats
{
    std::uint64_t probes = 0;          ///< cmdStatus probes sent.
    std::uint64_t ackRetransmits = 0;  ///< ackRestored resends.
    std::uint64_t readRetries = 0;
    std::uint64_t writeRetries = 0;
    std::uint64_t resumeRetries = 0;
    /** Episodes completed via a recovery path (event frame lost,
     *  restore deadline, ...) rather than the happy path. */
    std::uint64_t degradedEpisodes = 0;
    /** Episodes abandoned outright (link dead, ack lost). */
    std::uint64_t abortedEpisodes = 0;
};

/** Which passive streams are being recorded (Table 1 `trace ...`). */
struct TraceStreams
{
    bool energy = false;
    bool iobus = false;
    bool rfid = false;
    bool watchpoints = false;
};

/** The Energy-interference-free Debugger board. */
class EdbBoard : public sim::Component
{
  public:
    /** Printf output sink (console display). */
    using PrintfSink = std::function<void(const std::string &)>;
    /** Session-opened notification. */
    using SessionHook = std::function<void(DebugSession &)>;

    /**
     * Attach EDB to a target.
     * @param channel Optional RFID air interface to monitor.
     */
    EdbBoard(sim::Simulator &simulator, std::string component_name,
             target::Wisp &target_device,
             rfid::RfChannel *channel = nullptr, EdbConfig config = {});

    /// @name Passive monitoring
    /// @{
    trace::TraceBuffer &traceBuffer() { return traceBuf; }
    TraceStreams &streams() { return streams_; }
    /** Enable/disable a stream by name ("energy", "iobus", "rfid",
     *  "watchpoints"); returns false for an unknown name. */
    bool setStream(const std::string &stream_name, bool on);
    /** Latest ADC reading of the target's Vcap. */
    double lastVcap() const { return lastVcapVolts; }
    /// @}

    /// @name Watchpoints
    /// @{
    void enableWatchpoint(unsigned id);
    void disableWatchpoint(unsigned id);
    bool watchpointEnabled(unsigned id) const;
    /// @}

    /// @name Breakpoints (code / energy / combined, Section 3.3.1)
    /// @{
    /** Enable a code breakpoint; with `energy_threshold` it becomes
     *  a combined breakpoint that only fires at or below it. */
    void enableCodeBreakpoint(unsigned id,
                              std::optional<double> energy_threshold =
                                  std::nullopt);
    void disableCodeBreakpoint(unsigned id);
    /** Enable the energy breakpoint at the given level. */
    void enableEnergyBreakpoint(double volts);
    void disableEnergyBreakpoint();
    /// @}

    /// @name Sessions (synchronous host side; pumps the simulator)
    /// @{
    /** Currently open session (nullptr when none). */
    DebugSession *session() { return activeSession.get(); }
    /** Pump until a session opens. */
    bool waitForSession(sim::Tick timeout);
    /** Pump until the board returns to passive mode. */
    bool waitPassive(sim::Tick timeout);
    /** Break into the running target on demand. */
    bool breakIn(sim::Tick timeout = 200 * sim::oneMs);
    /// @}

    /// @name Manual energy manipulation (Table 1 charge/discharge)
    /// @{
    bool chargeTo(double volts, sim::Tick timeout = sim::oneSec);
    bool dischargeTo(double volts, sim::Tick timeout = sim::oneSec);
    /// @}

    /** Printf output hook. */
    void setPrintfSink(PrintfSink sink) { printfSink = std::move(sink); }
    /** Session-open hook. */
    void setSessionHook(SessionHook hook)
    {
        sessionHook = std::move(hook);
    }

    /**
     * Route both debug-UART directions and the board ADC through a
     * fault injector (nullptr detaches). With no injector — or a
     * disabled plan — behaviour is bit-identical to an unfaulted
     * board.
     */
    void injectFaults(sim::FaultInjector *fault_injector);

    /**
     * Attach the NV consistency auditor (nullptr detaches): wires it
     * into the target's interpreter and memory map, and makes the
     * board break the target in — opening a ConsistencyViolation
     * session — whenever fresh WAR findings appear. Findings are
     * produced at power loss, when nothing can run, so the break-in
     * happens from the passive sampling loop once the target is back
     * up. The auditor outlives the attachment (caller-owned).
     */
    void attachAuditor(mem::NvAuditor *auditor);
    mem::NvAuditor *auditor() const { return audit_; }

    /// @name Introspection
    /// @{
    target::Wisp &target() { return wisp; }
    ConnectionSet &connections() { return pins; }
    EdbAdc &adc() { return adc_; }
    ChargeCircuit &chargeCircuit() { return charger; }
    const EdbConfig &config() const { return cfg; }
    bool tethered() const { return tether.enabled(); }
    bool passive() const { return mode == Mode::Passive; }
    std::uint64_t printfCount() const { return printfs; }
    std::uint64_t guardCount() const { return guards; }
    std::uint64_t assertCount() const { return asserts; }
    std::uint64_t breakpointCount() const { return bkpts; }
    double lastSavedVolts() const { return savedVolts; }
    double lastRestoredVolts() const { return restoredVolts; }
    /** True (oscilloscope-grade) voltages at the save/restore
     *  instants, for Table 3's independent measurement column. */
    double trueSavedVolts() const { return lastSavedTrue; }
    double trueRestoredVolts() const { return lastRestoredTrue; }
    /** Link-health counters. */
    const LinkStats &linkStats() const { return linkStats_; }
    /** Why the last degraded/aborted episode ended ("" = none). */
    const std::string &lastAbortReason() const
    {
        return lastAbortReason_;
    }
    /** Host-side frame parser (stats inspection). */
    const ProtocolEngine &protocolEngine() const { return protocol; }
    /// @}

    /** Pump the simulator for a fixed duration. */
    void pumpFor(sim::Tick duration);

    /** Pump the simulator until `cond` holds or `timeout` elapses. */
    bool pumpUntil(const std::function<bool()> &cond, sim::Tick timeout);

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Covers the supervision state machine — mode, retry/probe
    /// counters, watchdog & sampling events, the host parser and the
    /// debugger->target UART queue — plus a fingerprint of every
    /// retry/backoff config knob. Restoring against a board built
    /// with different supervision parameters invalidates the reader
    /// instead of silently resetting budgets mid-episode. The
    /// host-side DebugSession object and the passive trace buffer do
    /// not travel (observability, not behaviour); a snapshot taken
    /// mid-charge-ramp restarts the ramp from the restored capacitor
    /// level (bounded by the charger's own deadline).
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    friend class DebugSession;

    enum class Mode
    {
        Passive,    ///< Monitoring only.
        AwaitFrame, ///< Tethered; waiting for the frame type.
        GuardActive,///< Inside an energy guard.
        InSession,  ///< Interactive session open.
        Restoring,  ///< Discharging/charging back to the saved level.
    };

    void sampleEnergy();
    void onReqChange(bool level, sim::Tick when);
    void enterActive();
    void onDebugByte(std::uint8_t byte, sim::Tick when);
    void onMarker(std::uint32_t id, sim::Tick when);
    void sendToTarget(std::uint8_t byte);
    void sendFrame(const std::vector<std::uint8_t> &payload);
    void pumpTxQueue();
    void deliverTxByte();
    void beginRestore(bool ack_after);
    void armRestoreRamp();
    void closeEpisode();
    void openSession(SessionReason reason, std::uint16_t id);
    void episodeWatchdog();
    void cancelWatchdog();

    // Session support (invoked by DebugSession).
    std::optional<std::vector<std::uint8_t>>
    sessionRead(std::uint32_t addr, std::uint16_t len,
                sim::Tick timeout);
    bool sessionWrite(std::uint32_t addr, std::uint32_t value,
                      sim::Tick timeout);
    void sessionResume();

    target::Wisp &wisp;
    rfid::RfChannel *rfChannel;
    EdbConfig cfg;
    ConnectionSet pins;
    EdbAdc adc_;
    ChargeCircuit charger;
    energy::VoltageSupply tether;
    ProtocolEngine protocol;
    trace::TraceBuffer traceBuf;
    TraceStreams streams_;

    Mode mode = Mode::Passive;
    SessionReason pendingIrqReason = SessionReason::Manual;
    double savedVolts = 0.0;
    double restoredVolts = 0.0;
    double lastSavedTrue = 0.0;
    double lastRestoredTrue = 0.0;
    double lastVcapVolts = 0.0;
    bool reqHigh = false;
    sim::EventId reqHandlerEvent = sim::invalidEventId;
    sim::Tick reqHandlerDue = 0;

    // Passive energy-sampling event (self-rescheduling).
    sim::EventId sampleEvent = sim::invalidEventId;
    sim::Tick sampleDue = 0;

    // Watchpoint filter: empty set + watchAll => log everything.
    bool watchAll = true;
    std::map<unsigned, bool> watchpoints;

    // Code/combined breakpoints: id -> optional energy threshold.
    std::map<unsigned, std::optional<double>> codeBkpts;
    std::optional<double> energyBkptVolts;
    bool energyBkptArmed = true;

    std::unique_ptr<DebugSession> activeSession;
    PrintfSink printfSink;
    SessionHook sessionHook;

    // Debugger->target UART pacing. One byte is in flight at a time
    // (txBusy); its value and delivery event are tracked so snapshots
    // can rearm a mid-byte transmission exactly.
    std::deque<std::uint8_t> txQueue;
    bool txBusy = false;
    sim::EventId txEvent = sim::invalidEventId;
    sim::Tick txDue = 0;
    std::uint8_t txInFlight = 0;

    // Whether the in-progress restore ramp should send ackRestored
    // when it converges (beginRestore's ack_after, persisted so a
    // snapshot can restart the ramp with the same completion).
    bool restoreAckAfter = false;

    // Session read/write reply collection (one complete frame each).
    std::vector<std::uint8_t> lastReadReply;
    bool writeAcked = false;

    // Episode watchdog (probing / ack retransmission).
    sim::EventId watchdogEvent = sim::invalidEventId;
    sim::Tick watchdogDue = 0;
    unsigned probesSent = 0;
    unsigned ackRetries = 0;
    std::uint64_t framesOkAtLastCheck = 0;

    sim::FaultInjector *injector = nullptr;
    LinkStats linkStats_;
    std::string lastAbortReason_;

    mem::NvAuditor *audit_ = nullptr;
    /** Violation count already surfaced through a session. */
    std::uint64_t auditSeen = 0;

    std::uint64_t printfs = 0;
    std::uint64_t guards = 0;
    std::uint64_t asserts = 0;
    std::uint64_t bkpts = 0;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_BOARD_HH
