#include "edb/board.hh"

#include <algorithm>
#include <cmath>

#include "runtime/protocol_defs.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::edbdbg {

namespace proto = runtime::proto;

EdbBoard::EdbBoard(sim::Simulator &simulator,
                   std::string component_name,
                   target::Wisp &target_device,
                   rfid::RfChannel *channel, EdbConfig config)
    : sim::Component(simulator, std::move(component_name)),
      wisp(target_device),
      rfChannel(channel),
      cfg(config),
      pins(simulator.rng()),
      adc_(simulator.rng(), config.adc),
      charger(simulator, name() + ".charge", target_device.power(),
              adc_, config.charge),
      tether(config.tetherVolts, config.tetherOhms)
{
    auto &power = wisp.power();

    // Tethered supply and passive pin leakage inject through the
    // target's power integrator: interference is *measured*. Each
    // source declares its worst-case draw so the MCU's block-batched
    // drain keeps running with the debugger attached: the tether can
    // sink at most (Vmax - 0) / Rseries, the pins at most the
    // Table 2 worst-case leakage total.
    const double max_volts = power.config().maxVolts;
    power.addSource(
        name() + ".tether",
        [this](double v, double) { return tether.currentInto(v); },
        max_volts / cfg.tetherOhms);
    if (cfg.attachPassiveLeakage) {
        power.addSource(
            name() + ".pin_leakage",
            [this](double v, double) { return -pins.totalDrain(v); },
            pins.worstCaseTotal(max_volts));
    }

    // Debug-port wiring.
    wisp.debugPort().addReqListener(
        [this](bool level, sim::Tick when) {
            onReqChange(level, when);
        });
    wisp.debugPort().uart().addTxListener(
        [this](std::uint8_t byte, sim::Tick when) {
            onDebugByte(byte, when);
        });
    wisp.debugPort().addMarkerListener(
        [this](std::uint32_t id, sim::Tick when) {
            onMarker(id, when);
        });

    // Passive I/O monitors.
    wisp.uart().addTxListener([this](std::uint8_t byte,
                                     sim::Tick when) {
        if (streams_.iobus) {
            traceBuf.push(when, trace::Kind::IoByte, byte, 0.0, byte,
                          "uart0");
        }
    });
    wisp.i2c().addSniffer([this](std::uint8_t addr, std::uint8_t reg,
                                 std::uint8_t value, bool is_read,
                                 sim::Tick when) {
        if (streams_.iobus) {
            traceBuf.push(when, trace::Kind::IoByte, value,
                          is_read ? 1.0 : 0.0,
                          (std::uint32_t(addr) << 8) | reg, "i2c");
        }
    });
    if (rfChannel) {
        rfChannel->addTap([this](rfid::Direction dir,
                                 const rfid::Frame &frame,
                                 sim::Tick when) {
            if (!streams_.rfid)
                return;
            traceBuf.push(when, trace::Kind::RfidMessage,
                          frame.corrupted ? 1.0 : 0.0,
                          dir == rfid::Direction::ReaderToTag ? 0.0
                                                              : 1.0,
                          static_cast<std::uint32_t>(frame.type),
                          rfid::msgTypeName(frame.type));
        });
    }

    // Power-state transitions are always recorded: correlating them
    // with program events is the point of the tool.
    power.addPowerListener([this](bool on) {
        traceBuf.push(now(), trace::Kind::PowerEvent,
                      wisp.power().voltageNoAdvance(), 0.0, on ? 1 : 0,
                      on ? "turn-on" : "brown-out");
    });

    // Protocol event handlers. Each is gated to the modes where the
    // event is meaningful: duplicated frames (wire faults, probe
    // replays crossing the original) must not double-trigger.
    protocol.setInterByteTimeout(cfg.interByteTimeout);
    protocol.handlers.assertFail = [this](std::uint16_t id) {
        if (mode != Mode::AwaitFrame)
            return;
        ++asserts;
        traceBuf.push(now(), trace::Kind::AssertFail, savedVolts, 0.0,
                      id, "assert-fail");
        openSession(SessionReason::AssertFail, id);
    };
    protocol.handlers.bkptHit = [this](std::uint16_t id) {
        if (mode != Mode::AwaitFrame)
            return;
        auto it = codeBkpts.find(id);
        if (it != codeBkpts.end() && it->second &&
            savedVolts > *it->second) {
            // Combined breakpoint whose energy condition is not met:
            // resume immediately without opening a session.
            sendFrame({proto::cmdResume});
            return;
        }
        SessionReason reason = SessionReason::CodeBreakpoint;
        if (id == proto::energyBkptId)
            reason = pendingIrqReason;
        ++bkpts;
        traceBuf.push(now(), trace::Kind::Breakpoint, savedVolts, 0.0,
                      id, sessionReasonName(reason));
        openSession(reason, id);
    };
    protocol.handlers.guardBegin = [this] {
        if (mode != Mode::AwaitFrame)
            return;
        ++guards;
        mode = Mode::GuardActive;
        traceBuf.push(now(), trace::Kind::EnergyGuard, savedVolts, 0.0,
                      1, "guard-begin");
    };
    protocol.handlers.guardEnd = [this] {
        // Accepted from AwaitFrame too: if the guard-begin frame was
        // lost the guard still has to end with a restore.
        if (mode != Mode::GuardActive && mode != Mode::AwaitFrame)
            return;
        traceBuf.push(now(), trace::Kind::EnergyGuard, savedVolts, 0.0,
                      0, "guard-end");
        beginRestore(true);
    };
    protocol.handlers.printfText = [this](const std::string &text) {
        if (mode != Mode::AwaitFrame && mode != Mode::GuardActive)
            return;
        ++printfs;
        traceBuf.push(now(), trace::Kind::Printf, savedVolts, 0.0, 0,
                      text);
        if (printfSink)
            printfSink(text);
        beginRestore(true);
    };
    protocol.handlers.readReply =
        [this](const std::vector<std::uint8_t> &data) {
            if (mode == Mode::InSession)
                lastReadReply = data;
        };
    protocol.handlers.writeAck = [this] {
        if (mode == Mode::InSession)
            writeAcked = true;
    };
    protocol.handlers.waitRestore = [this] {
        // The target is stuck waiting for ackRestored: its event
        // frame (guard-end / printf) was lost. Restore and release
        // it; the episode completes degraded instead of deadlocking.
        if (mode != Mode::AwaitFrame && mode != Mode::GuardActive)
            return;
        ++linkStats_.degradedEpisodes;
        lastAbortReason_ = "event-frame-lost";
        traceBuf.push(now(), trace::Kind::Generic, savedVolts, 0.0, 0,
                      "recover-wait-restore");
        beginRestore(true);
    };

    // Continuous energy sampling (passive mode backbone).
    sampleDue = now() + cfg.energySamplePeriod;
    sampleEvent = sim().schedule(sampleDue, [this] { sampleEnergy(); });
}

void
EdbBoard::injectFaults(sim::FaultInjector *fault_injector)
{
    injector = fault_injector;
    if (injector) {
        adc_.setFaultHook(
            [inj = injector](double v) { return inj->onAdc(v); });
    } else {
        adc_.setFaultHook(nullptr);
    }
}

void
EdbBoard::attachAuditor(mem::NvAuditor *auditor)
{
    audit_ = auditor;
    wisp.mcu().setAuditor(auditor);
    if (auditor) {
        wisp.memoryMap().setWriteHook(&mem::NvAuditor::rawWriteHook,
                                      auditor);
        auditSeen = auditor->violationCount();
    } else {
        wisp.memoryMap().clearWriteHook();
        auditSeen = 0;
    }
}

bool
EdbBoard::setStream(const std::string &stream_name, bool on)
{
    if (stream_name == "energy")
        streams_.energy = on;
    else if (stream_name == "iobus")
        streams_.iobus = on;
    else if (stream_name == "rfid")
        streams_.rfid = on;
    else if (stream_name == "watchpoints")
        streams_.watchpoints = on;
    else
        return false;
    return true;
}

void
EdbBoard::sampleEnergy()
{
    sampleEvent = sim::invalidEventId;
    double vcap = wisp.power().voltage();
    double reading = adc_.sampleVolts(vcap);
    lastVcapVolts = reading;
    if (streams_.energy) {
        double vreg = adc_.sampleVolts(wisp.power().regulatedVoltage());
        traceBuf.push(now(), trace::Kind::EnergySample, reading, vreg);
    }

    // Energy breakpoint: interrupt the target when the level falls
    // to the threshold (paper Section 3.3.1).
    if (energyBkptVolts && mode == Mode::Passive) {
        if (energyBkptArmed &&
            wisp.state() == mcu::McuState::Running &&
            reading <= *energyBkptVolts) {
            energyBkptArmed = false;
            pendingIrqReason = SessionReason::EnergyBreakpoint;
            wisp.mcu().raiseDebugIrq();
        } else if (!energyBkptArmed &&
                   reading >
                       *energyBkptVolts + cfg.energyBkptHysteresis) {
            energyBkptArmed = true;
        }
    }

    // NV consistency auditor: findings materialize at power loss,
    // when the target cannot run. Surface them by breaking in the
    // next time the target is up, through the same interrupt path
    // as an energy breakpoint.
    if (audit_ && mode == Mode::Passive &&
        audit_->violationCount() > auditSeen &&
        wisp.state() == mcu::McuState::Running) {
        auditSeen = audit_->violationCount();
        traceBuf.push(now(), trace::Kind::Generic, lastVcapVolts, 0.0,
                      static_cast<std::uint32_t>(
                          audit_->findings().size()),
                      "nv-consistency-violation");
        pendingIrqReason = SessionReason::ConsistencyViolation;
        wisp.mcu().raiseDebugIrq();
    }
    sampleDue = now() + cfg.energySamplePeriod;
    sampleEvent = sim().schedule(sampleDue, [this] { sampleEnergy(); });
}

void
EdbBoard::enableWatchpoint(unsigned id)
{
    watchpoints[id] = true;
}

void
EdbBoard::disableWatchpoint(unsigned id)
{
    watchpoints[id] = false;
}

bool
EdbBoard::watchpointEnabled(unsigned id) const
{
    auto it = watchpoints.find(id);
    return it != watchpoints.end() ? it->second : watchAll;
}

void
EdbBoard::onMarker(std::uint32_t id, sim::Tick when)
{
    if (!watchpointEnabled(id) || !streams_.watchpoints)
        return;
    // Each program event is paired with a concurrent energy reading:
    // the "multifaceted profile" of Section 4.1.3.
    double reading = adc_.sampleVolts(wisp.power().voltage());
    traceBuf.push(when, trace::Kind::Watchpoint, reading, 0.0, id);
}

void
EdbBoard::enableCodeBreakpoint(unsigned id,
                               std::optional<double> energy_threshold)
{
    codeBkpts[id] = energy_threshold;
    std::uint32_t mask = wisp.debugPort().breakpointMask();
    wisp.debugPort().setBreakpointMask(mask | (1u << id));
}

void
EdbBoard::disableCodeBreakpoint(unsigned id)
{
    codeBkpts.erase(id);
    std::uint32_t mask = wisp.debugPort().breakpointMask();
    wisp.debugPort().setBreakpointMask(mask & ~(1u << id));
}

void
EdbBoard::enableEnergyBreakpoint(double volts)
{
    energyBkptVolts = volts;
    energyBkptArmed = true;
}

void
EdbBoard::disableEnergyBreakpoint()
{
    energyBkptVolts.reset();
}

void
EdbBoard::onReqChange(bool level, sim::Tick when)
{
    reqHigh = level;
    if (level) {
        if (mode != Mode::Passive)
            return;
        // Firmware edge-interrupt latency before active-mode entry.
        reqHandlerDue = when + cfg.reqLatency;
        reqHandlerEvent =
            sim().schedule(reqHandlerDue, [this] { enterActive(); });
        return;
    }
    // Falling edge: resume completed, or the target died first.
    if (reqHandlerEvent != sim::invalidEventId) {
        sim().cancel(reqHandlerEvent);
        reqHandlerEvent = sim::invalidEventId;
    }
    switch (mode) {
      case Mode::Passive:
        break;
      case Mode::AwaitFrame:
      case Mode::GuardActive:
      case Mode::InSession:
        // Fall-gated restore path (session resume / target death).
        beginRestore(false);
        break;
      case Mode::Restoring:
        if (!charger.active())
            closeEpisode();
        break;
    }
}

void
EdbBoard::enterActive()
{
    reqHandlerEvent = sim::invalidEventId;
    if (!reqHigh || mode != Mode::Passive)
        return;
    // Save the energy level, then tether: "before performing an
    // active task the energy on the target device is measured and
    // recorded. While the active task executes, the target is
    // continuously powered." (Section 3.2)
    lastSavedTrue = wisp.power().voltage();
    savedVolts = adc_.sampleVolts(lastSavedTrue);
    restoredVolts = 0.0;
    lastRestoredTrue = 0.0;
    tether.setEnabled(true);
    protocol.reset();
    mode = Mode::AwaitFrame;
    lastAbortReason_.clear();
    probesSent = 0;
    ackRetries = 0;
    framesOkAtLastCheck = protocol.stats().framesOk;
    cancelWatchdog();
    watchdogDue = now() + cfg.linkProbeTimeout;
    watchdogEvent = sim().schedule(watchdogDue,
                                   [this] { episodeWatchdog(); });
    sendFrame({proto::ackActive});
}

void
EdbBoard::episodeWatchdog()
{
    watchdogEvent = sim::invalidEventId;
    switch (mode) {
      case Mode::Passive:
        return; // Episode already closed; stay disarmed.
      case Mode::InSession:
        // Session commands carry their own timeouts and retries. The
        // exception is a restored mid-session snapshot: the host-side
        // DebugSession object holds live references and cannot
        // travel, so with no one left to drive commands the episode
        // is abandoned rather than parked forever.
        if (!activeSession) {
            lastAbortReason_ = "session-lost";
            ++linkStats_.abortedEpisodes;
            traceBuf.push(now(), trace::Kind::Generic, savedVolts,
                          0.0, 0, "abort-session-lost");
            beginRestore(false);
        }
        break;
      case Mode::AwaitFrame:
      case Mode::GuardActive: {
        std::uint64_t ok = protocol.stats().framesOk;
        if (ok != framesOkAtLastCheck) {
            framesOkAtLastCheck = ok;
            probesSent = 0;
        } else {
            unsigned budget = mode == Mode::GuardActive
                                  ? cfg.guardProbeMax
                                  : cfg.linkProbeMax;
            if (probesSent >= budget) {
                // No frame ever survived: abandon the episode,
                // restore whatever energy state we can, and re-arm.
                lastAbortReason_ = "link-dead";
                ++linkStats_.abortedEpisodes;
                traceBuf.push(now(), trace::Kind::Generic, savedVolts,
                              0.0, 0, "abort-link-dead");
                beginRestore(false);
                break;
            }
            ++probesSent;
            ++linkStats_.probes;
            sendFrame({proto::cmdStatus});
        }
        break;
      }
      case Mode::Restoring:
        // Restore finished but the request line never fell: the
        // ackRestored frame was lost. Resend it a bounded number of
        // times, then force the episode closed.
        if (!charger.active() && reqHigh) {
            if (ackRetries >= cfg.ackRetryMax) {
                lastAbortReason_ = "ack-restored-lost";
                ++linkStats_.abortedEpisodes;
                closeEpisode();
                return;
            }
            ++ackRetries;
            ++linkStats_.ackRetransmits;
            sendFrame({proto::ackRestored});
        }
        break;
    }
    if (mode != Mode::Passive) {
        watchdogDue = now() + cfg.linkProbeTimeout;
        watchdogEvent = sim().schedule(watchdogDue,
                                       [this] { episodeWatchdog(); });
    }
}

void
EdbBoard::cancelWatchdog()
{
    if (watchdogEvent != sim::invalidEventId) {
        sim().cancel(watchdogEvent);
        watchdogEvent = sim::invalidEventId;
    }
}

void
EdbBoard::onDebugByte(std::uint8_t byte, sim::Tick when)
{
    if (injector) {
        auto r = injector->onWire(byte);
        for (int i = 0; i < r.count; ++i)
            protocol.onByte(r.bytes[i], when);
        return;
    }
    protocol.onByte(byte, when);
}

void
EdbBoard::sendToTarget(std::uint8_t byte)
{
    txQueue.push_back(byte);
    pumpTxQueue();
}

void
EdbBoard::sendFrame(const std::vector<std::uint8_t> &payload)
{
    for (std::uint8_t byte : buildFrame(payload))
        sendToTarget(byte);
}

void
EdbBoard::pumpTxQueue()
{
    if (txBusy || txQueue.empty())
        return;
    txBusy = true;
    txInFlight = txQueue.front();
    txQueue.pop_front();
    txDue = now() + wisp.debugPort().uart().byteTime();
    txEvent = sim().schedule(txDue, [this] { deliverTxByte(); });
}

void
EdbBoard::deliverTxByte()
{
    txEvent = sim::invalidEventId;
    std::uint8_t byte = txInFlight;
    // The wire-fault model applies at delivery: this direction
    // feeds the target's deframer, which hunts past damage.
    if (injector) {
        auto r = injector->onWire(byte);
        for (int i = 0; i < r.count; ++i)
            wisp.debugPort().uart().receiveByte(r.bytes[i]);
    } else {
        wisp.debugPort().uart().receiveByte(byte);
    }
    txBusy = false;
    pumpTxQueue();
}

void
EdbBoard::beginRestore(bool ack_after)
{
    tether.setEnabled(false);
    mode = Mode::Restoring;
    restoreAckAfter = ack_after;
    if (!wisp.power().poweredOn()) {
        // The target died before/inside the episode; nothing to
        // restore onto.
        closeEpisode();
        return;
    }
    armRestoreRamp();
}

void
EdbBoard::armRestoreRamp()
{
    bool ack_after = restoreAckAfter;
    charger.restoreTo(savedVolts, [this, ack_after](RampResult result) {
        if (result == RampResult::DeadlineExceeded) {
            // Supply faulted mid-restore (fade, glitch): report the
            // episode degraded but still release the target rather
            // than spinning the control loop forever.
            lastAbortReason_ = "restore-deadline";
            ++linkStats_.degradedEpisodes;
        }
        lastRestoredTrue = wisp.power().voltage();
        restoredVolts = adc_.sampleVolts(lastRestoredTrue);
        // Record the episode's compensation so analyses can separate
        // target-side cost from debugger-injected energy.
        traceBuf.push(now(), trace::Kind::Generic, lastSavedTrue,
                      lastRestoredTrue, 0, "restore");
        if (ack_after) {
            sendFrame({proto::ackRestored});
            if (!reqHigh)
                closeEpisode();
            // else: the req falling edge closes the episode; the
            // watchdog retransmits ackRestored if it was lost.
        } else {
            closeEpisode();
        }
    });
}

void
EdbBoard::closeEpisode()
{
    mode = Mode::Passive;
    tether.setEnabled(false);
    charger.abort();
    protocol.reset();
    cancelWatchdog();
    lastReadReply.clear();
    writeAcked = false;
    if (activeSession && activeSession->open_) {
        activeSession->open_ = false;
        if (!activeSession->resumed_) {
            activeSession->aborted_ = true;
            activeSession->abortReason_ = lastAbortReason_.empty()
                                              ? "episode-closed"
                                              : lastAbortReason_;
        }
    }
    wisp.mcu().clearDebugIrq();
    // A new debug request may have been raised while this episode
    // was still restoring (e.g. back-to-back printfs); service it.
    if (reqHigh) {
        reqHandlerDue = now() + cfg.reqLatency;
        reqHandlerEvent =
            sim().schedule(reqHandlerDue, [this] { enterActive(); });
    }
}

void
EdbBoard::openSession(SessionReason reason, std::uint16_t id)
{
    mode = Mode::InSession;
    wisp.mcu().clearDebugIrq();
    activeSession = std::make_unique<DebugSession>(*this, reason, id,
                                                   savedVolts);
    if (sessionHook)
        sessionHook(*activeSession);
}

bool
EdbBoard::pumpUntil(const std::function<bool()> &cond,
                    sim::Tick timeout)
{
    sim::Tick deadline = sim().now() + timeout;
    while (!cond()) {
        if (sim().now() >= deadline)
            return false;
        sim().runFor(
            std::min<sim::Tick>(100 * sim::oneUs,
                                deadline - sim().now()));
    }
    return true;
}

bool
EdbBoard::waitForSession(sim::Tick timeout)
{
    return pumpUntil(
        [this] { return activeSession && activeSession->open(); },
        timeout);
}

bool
EdbBoard::waitPassive(sim::Tick timeout)
{
    return pumpUntil([this] { return mode == Mode::Passive; },
                     timeout);
}

bool
EdbBoard::breakIn(sim::Tick timeout)
{
    if (mode != Mode::Passive ||
        wisp.state() != mcu::McuState::Running) {
        return false;
    }
    // The break-in IRQ can be swallowed by a lost episode (ackActive
    // never arriving, event frame dead). Each failed episode clears
    // the IRQ on close, so re-raise and try again until the deadline.
    sim::Tick deadline = sim().now() + timeout;
    pendingIrqReason = SessionReason::Manual;
    wisp.mcu().raiseDebugIrq();
    while (sim().now() < deadline) {
        sim::Tick slice = std::min<sim::Tick>(
            50 * sim::oneMs, deadline - sim().now());
        if (waitForSession(slice))
            return true;
        if (mode == Mode::Passive &&
            wisp.state() == mcu::McuState::Running) {
            pendingIrqReason = SessionReason::Manual;
            wisp.mcu().raiseDebugIrq();
        }
    }
    return false;
}

bool
EdbBoard::chargeTo(double volts, sim::Tick timeout)
{
    bool finished = false;
    bool converged = false;
    charger.rampTo(volts, 0.0, [&](RampResult result) {
        finished = true;
        converged = result == RampResult::Converged;
    });
    bool ok = pumpUntil([&finished] { return finished; }, timeout);
    if (!ok) {
        charger.abort();
        return false;
    }
    return converged;
}

bool
EdbBoard::dischargeTo(double volts, sim::Tick timeout)
{
    return chargeTo(volts, timeout);
}

std::optional<std::vector<std::uint8_t>>
EdbBoard::sessionRead(std::uint32_t addr, std::uint16_t len,
                      sim::Tick timeout)
{
    if (mode != Mode::InSession || len == 0)
        return std::nullopt;
    sim::Tick per_attempt = std::max<sim::Tick>(
        10 * sim::oneMs,
        timeout / static_cast<sim::Tick>(cfg.readRetryMax + 1));
    std::vector<std::uint8_t> out;
    out.reserve(len);
    while (out.size() < len) {
        auto chunk = static_cast<std::uint16_t>(
            std::min<std::size_t>(cfg.readChunk, len - out.size()));
        std::uint32_t at =
            addr + static_cast<std::uint32_t>(out.size());
        bool got = false;
        for (unsigned attempt = 0; attempt <= cfg.readRetryMax;
             ++attempt) {
            if (attempt > 0)
                ++linkStats_.readRetries;
            lastReadReply.clear();
            std::vector<std::uint8_t> p;
            p.push_back(proto::cmdRead);
            for (int i = 0; i < 4; ++i)
                p.push_back(
                    static_cast<std::uint8_t>(at >> (8 * i)));
            p.push_back(static_cast<std::uint8_t>(chunk & 0xFF));
            p.push_back(static_cast<std::uint8_t>(chunk >> 8));
            sendFrame(p);
            bool done = pumpUntil(
                [this, chunk] {
                    return lastReadReply.size() == chunk ||
                           mode != Mode::InSession;
                },
                per_attempt);
            if (mode != Mode::InSession)
                return std::nullopt;
            if (done && lastReadReply.size() == chunk) {
                got = true;
                break;
            }
        }
        if (!got)
            return std::nullopt;
        out.insert(out.end(), lastReadReply.begin(),
                   lastReadReply.end());
    }
    return out;
}

bool
EdbBoard::sessionWrite(std::uint32_t addr, std::uint32_t value,
                       sim::Tick timeout)
{
    if (mode != Mode::InSession)
        return false;
    sim::Tick per_attempt = std::max<sim::Tick>(
        10 * sim::oneMs,
        timeout / static_cast<sim::Tick>(cfg.writeRetryMax + 1));
    // Writes are idempotent (absolute address and value), so a lost
    // command or lost ack is safely retried.
    for (unsigned attempt = 0; attempt <= cfg.writeRetryMax;
         ++attempt) {
        if (attempt > 0)
            ++linkStats_.writeRetries;
        writeAcked = false;
        std::vector<std::uint8_t> p;
        p.push_back(proto::cmdWrite);
        for (int i = 0; i < 4; ++i)
            p.push_back(static_cast<std::uint8_t>(addr >> (8 * i)));
        for (int i = 0; i < 4; ++i)
            p.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
        sendFrame(p);
        bool done = pumpUntil(
            [this] {
                return writeAcked || mode != Mode::InSession;
            },
            per_attempt);
        if (mode != Mode::InSession)
            return false;
        if (done && writeAcked)
            return true;
    }
    return false;
}

void
EdbBoard::pumpFor(sim::Tick duration)
{
    sim().runFor(duration);
}

void
EdbBoard::sessionResume()
{
    // A corrupted cmdResume leaves the target in its service loop
    // (mode stays InSession): resend a bounded number of times. A
    // duplicate resume is harmless — the stale frame is drained by
    // the target's next ackActive wait.
    for (unsigned attempt = 0; attempt <= cfg.resumeRetryMax;
         ++attempt) {
        if (attempt > 0)
            ++linkStats_.resumeRetries;
        sendFrame({proto::cmdResume});
        if (pumpUntil([this] { return mode != Mode::InSession; },
                      100 * sim::oneMs)) {
            break;
        }
    }
    if (mode == Mode::InSession) {
        // Every resend died on the wire: declare the episode lost
        // rather than leaving the session open forever. Restore the
        // saved energy level, drop the tether and close; the target
        // is still parked in its service loop with REQ high, so the
        // re-arm in closeEpisode starts a fresh handshake (a status
        // probe makes it resend its event frame) and the next
        // session gets a full retry budget.
        lastAbortReason_ = "resume-lost";
        ++linkStats_.abortedEpisodes;
        traceBuf.push(now(), trace::Kind::Generic, savedVolts, 0.0, 0,
                      "abort-resume-lost");
        if (activeSession)
            activeSession->resumed_ = false;
        beginRestore(false);
    }
    waitPassive(2 * sim::oneSec);
}

void
EdbBoard::saveState(sim::SnapshotWriter &w) const
{
    w.section("edbboard");
    // Supervision-parameter fingerprint. A restore verifies these
    // against its own config and rejects the snapshot on mismatch:
    // retry budgets and timeouts must never be silently swapped
    // under a mid-episode state machine.
    w.tick(cfg.energySamplePeriod);
    w.tick(cfg.reqLatency);
    w.tick(cfg.linkProbeTimeout);
    w.u32(cfg.linkProbeMax);
    w.u32(cfg.guardProbeMax);
    w.u32(cfg.ackRetryMax);
    w.u32(cfg.readRetryMax);
    w.u32(cfg.writeRetryMax);
    w.u32(cfg.resumeRetryMax);
    w.u32(cfg.readChunk);
    w.tick(cfg.interByteTimeout);

    // Episode state machine.
    w.u8(static_cast<std::uint8_t>(mode));
    w.u8(static_cast<std::uint8_t>(pendingIrqReason));
    w.f64(savedVolts);
    w.f64(restoredVolts);
    w.f64(lastSavedTrue);
    w.f64(lastRestoredTrue);
    w.f64(lastVcapVolts);
    w.boolean(reqHigh);
    w.boolean(tether.enabled());
    w.boolean(restoreAckAfter);
    w.boolean(charger.active());

    // Stream selection, watchpoint filter, breakpoint config.
    w.boolean(streams_.energy);
    w.boolean(streams_.iobus);
    w.boolean(streams_.rfid);
    w.boolean(streams_.watchpoints);
    w.boolean(watchAll);
    w.u32(static_cast<std::uint32_t>(watchpoints.size()));
    for (const auto &[id, on] : watchpoints) {
        w.u32(id);
        w.boolean(on);
    }
    w.u32(static_cast<std::uint32_t>(codeBkpts.size()));
    for (const auto &[id, thresh] : codeBkpts) {
        w.u32(id);
        w.boolean(thresh.has_value());
        w.f64(thresh.value_or(0.0));
    }
    w.boolean(energyBkptVolts.has_value());
    w.f64(energyBkptVolts.value_or(0.0));
    w.boolean(energyBkptArmed);

    // Supervision counters: probe/retry budgets already consumed in
    // the current episode plus the lifetime link-health statistics.
    w.u32(probesSent);
    w.u32(ackRetries);
    w.u64(framesOkAtLastCheck);
    w.u64(linkStats_.probes);
    w.u64(linkStats_.ackRetransmits);
    w.u64(linkStats_.readRetries);
    w.u64(linkStats_.writeRetries);
    w.u64(linkStats_.resumeRetries);
    w.u64(linkStats_.degradedEpisodes);
    w.u64(linkStats_.abortedEpisodes);
    w.blob(lastAbortReason_.data(), lastAbortReason_.size());
    w.u64(auditSeen);
    w.u64(printfs);
    w.u64(guards);
    w.u64(asserts);
    w.u64(bkpts);

    // Session command plumbing.
    w.blob(lastReadReply.data(), lastReadReply.size());
    w.boolean(writeAcked);

    // Debugger->target UART queue and the byte in flight.
    w.u32(static_cast<std::uint32_t>(txQueue.size()));
    for (std::uint8_t b : txQueue)
        w.u8(b);
    w.boolean(txBusy);
    w.u8(txInFlight);

    // Host-side frame parser (mid-frame state + parse stats).
    protocol.saveState(w);

    // Pending events (rearmed in this order on restore).
    w.pendingEvent(sampleEvent, sampleDue);
    w.pendingEvent(reqHandlerEvent, reqHandlerDue);
    w.pendingEvent(watchdogEvent, watchdogDue);
    w.pendingEvent(txEvent, txDue);
}

void
EdbBoard::restoreState(sim::SnapshotReader &r,
                       sim::EventRearmer &rearmer)
{
    r.section("edbboard");
    // Reject a snapshot whose supervision parameters differ from
    // this board's: restoring mid-episode retry counters against
    // different budgets would corrupt the episode state machine.
    bool same = true;
    same &= r.tick() == cfg.energySamplePeriod;
    same &= r.tick() == cfg.reqLatency;
    same &= r.tick() == cfg.linkProbeTimeout;
    same &= r.u32() == cfg.linkProbeMax;
    same &= r.u32() == cfg.guardProbeMax;
    same &= r.u32() == cfg.ackRetryMax;
    same &= r.u32() == cfg.readRetryMax;
    same &= r.u32() == cfg.writeRetryMax;
    same &= r.u32() == cfg.resumeRetryMax;
    same &= r.u32() == cfg.readChunk;
    same &= r.tick() == cfg.interByteTimeout;
    if (!same) {
        r.invalidate();
        return;
    }

    mode = static_cast<Mode>(r.u8());
    pendingIrqReason = static_cast<SessionReason>(r.u8());
    savedVolts = r.f64();
    restoredVolts = r.f64();
    lastSavedTrue = r.f64();
    lastRestoredTrue = r.f64();
    lastVcapVolts = r.f64();
    reqHigh = r.boolean();
    tether.setEnabled(r.boolean());
    restoreAckAfter = r.boolean();
    bool chargerWasActive = r.boolean();

    streams_.energy = r.boolean();
    streams_.iobus = r.boolean();
    streams_.rfid = r.boolean();
    streams_.watchpoints = r.boolean();
    watchAll = r.boolean();
    watchpoints.clear();
    std::uint32_t nwatch = r.u32();
    for (std::uint32_t i = 0; i < nwatch && r.ok(); ++i) {
        unsigned id = r.u32();
        watchpoints[id] = r.boolean();
    }
    codeBkpts.clear();
    std::uint32_t nbkpt = r.u32();
    for (std::uint32_t i = 0; i < nbkpt && r.ok(); ++i) {
        unsigned id = r.u32();
        bool has = r.boolean();
        double thresh = r.f64();
        codeBkpts[id] =
            has ? std::optional<double>(thresh) : std::nullopt;
    }
    bool hasEnergyBkpt = r.boolean();
    double energyVolts = r.f64();
    energyBkptVolts = hasEnergyBkpt
                          ? std::optional<double>(energyVolts)
                          : std::nullopt;
    energyBkptArmed = r.boolean();

    probesSent = r.u32();
    ackRetries = r.u32();
    framesOkAtLastCheck = r.u64();
    linkStats_.probes = r.u64();
    linkStats_.ackRetransmits = r.u64();
    linkStats_.readRetries = r.u64();
    linkStats_.writeRetries = r.u64();
    linkStats_.resumeRetries = r.u64();
    linkStats_.degradedEpisodes = r.u64();
    linkStats_.abortedEpisodes = r.u64();
    {
        auto b = r.blob();
        lastAbortReason_.assign(b.begin(), b.end());
    }
    auditSeen = r.u64();
    printfs = r.u64();
    guards = r.u64();
    asserts = r.u64();
    bkpts = r.u64();

    lastReadReply = r.blob();
    writeAcked = r.boolean();

    txQueue.clear();
    std::uint32_t ntx = r.u32();
    for (std::uint32_t i = 0; i < ntx && r.ok(); ++i)
        txQueue.push_back(r.u8());
    txBusy = r.boolean();
    txInFlight = r.u8();

    protocol.restoreState(r);

    // Cancel whatever this (fresh or rewound) board has pending —
    // the constructor's first energy sample in particular — before
    // rearming the saved residue.
    if (sampleEvent != sim::invalidEventId) {
        sim().cancel(sampleEvent);
        sampleEvent = sim::invalidEventId;
    }
    if (reqHandlerEvent != sim::invalidEventId) {
        sim().cancel(reqHandlerEvent);
        reqHandlerEvent = sim::invalidEventId;
    }
    cancelWatchdog();
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    charger.abort();
    r.pendingEvent(
        rearmer, [this] { sampleEnergy(); },
        [this](sim::EventId id, sim::Tick due) {
            sampleEvent = id;
            sampleDue = due;
        });
    r.pendingEvent(
        rearmer, [this] { enterActive(); },
        [this](sim::EventId id, sim::Tick due) {
            reqHandlerEvent = id;
            reqHandlerDue = due;
        });
    r.pendingEvent(
        rearmer, [this] { episodeWatchdog(); },
        [this](sim::EventId id, sim::Tick due) {
            watchdogEvent = id;
            watchdogDue = due;
        });
    r.pendingEvent(
        rearmer, [this] { deliverTxByte(); },
        [this](sim::EventId id, sim::Tick due) {
            txEvent = id;
            txDue = due;
        });

    // The charge circuit's ramp-control callback cannot be
    // serialized. A snapshot taken mid-ramp restarts the restore
    // ramp from the (restored) capacitor level: same destination
    // and completion semantics, progress bounded by the charger's
    // own deadline. Fleet boards are passive, so this path only
    // fires for snapshots taken inside an active episode.
    if (chargerWasActive && mode == Mode::Restoring && r.ok())
        armRestoreRamp();
}

} // namespace edb::edbdbg
