#include "edb/board.hh"

#include <cmath>

#include "runtime/protocol_defs.hh"
#include "sim/logging.hh"

namespace edb::edbdbg {

namespace proto = runtime::proto;

EdbBoard::EdbBoard(sim::Simulator &simulator,
                   std::string component_name,
                   target::Wisp &target_device,
                   rfid::RfChannel *channel, EdbConfig config)
    : sim::Component(simulator, std::move(component_name)),
      wisp(target_device),
      rfChannel(channel),
      cfg(config),
      pins(simulator.rng()),
      adc_(simulator.rng(), config.adc),
      charger(simulator, name() + ".charge", target_device.power(),
              adc_, config.charge),
      tether(config.tetherVolts, config.tetherOhms)
{
    auto &power = wisp.power();

    // Tethered supply and passive pin leakage inject through the
    // target's power integrator: interference is *measured*.
    power.addSource(name() + ".tether", [this](double v, double) {
        return tether.currentInto(v);
    });
    if (cfg.attachPassiveLeakage) {
        power.addSource(name() + ".pin_leakage",
                        [this](double v, double) {
                            return -pins.totalDrain(v);
                        });
    }

    // Debug-port wiring.
    wisp.debugPort().addReqListener(
        [this](bool level, sim::Tick when) {
            onReqChange(level, when);
        });
    wisp.debugPort().uart().addTxListener(
        [this](std::uint8_t byte, sim::Tick when) {
            onDebugByte(byte, when);
        });
    wisp.debugPort().addMarkerListener(
        [this](std::uint32_t id, sim::Tick when) {
            onMarker(id, when);
        });

    // Passive I/O monitors.
    wisp.uart().addTxListener([this](std::uint8_t byte,
                                     sim::Tick when) {
        if (streams_.iobus) {
            traceBuf.push(when, trace::Kind::IoByte, byte, 0.0, byte,
                          "uart0");
        }
    });
    wisp.i2c().addSniffer([this](std::uint8_t addr, std::uint8_t reg,
                                 std::uint8_t value, bool is_read,
                                 sim::Tick when) {
        if (streams_.iobus) {
            traceBuf.push(when, trace::Kind::IoByte, value,
                          is_read ? 1.0 : 0.0,
                          (std::uint32_t(addr) << 8) | reg, "i2c");
        }
    });
    if (rfChannel) {
        rfChannel->addTap([this](rfid::Direction dir,
                                 const rfid::Frame &frame,
                                 sim::Tick when) {
            if (!streams_.rfid)
                return;
            traceBuf.push(when, trace::Kind::RfidMessage,
                          frame.corrupted ? 1.0 : 0.0,
                          dir == rfid::Direction::ReaderToTag ? 0.0
                                                              : 1.0,
                          static_cast<std::uint32_t>(frame.type),
                          rfid::msgTypeName(frame.type));
        });
    }

    // Power-state transitions are always recorded: correlating them
    // with program events is the point of the tool.
    power.addPowerListener([this](bool on) {
        traceBuf.push(now(), trace::Kind::PowerEvent,
                      wisp.power().voltageNoAdvance(), 0.0, on ? 1 : 0,
                      on ? "turn-on" : "brown-out");
    });

    // Protocol event handlers.
    protocol.handlers.assertFail = [this](std::uint16_t id) {
        ++asserts;
        traceBuf.push(now(), trace::Kind::AssertFail, savedVolts, 0.0,
                      id, "assert-fail");
        openSession(SessionReason::AssertFail, id);
    };
    protocol.handlers.bkptHit = [this](std::uint16_t id) {
        auto it = codeBkpts.find(id);
        if (it != codeBkpts.end() && it->second &&
            savedVolts > *it->second) {
            // Combined breakpoint whose energy condition is not met:
            // resume immediately without opening a session.
            sendToTarget(proto::cmdResume);
            return;
        }
        SessionReason reason = SessionReason::CodeBreakpoint;
        if (id == proto::energyBkptId)
            reason = pendingIrqReason;
        ++bkpts;
        traceBuf.push(now(), trace::Kind::Breakpoint, savedVolts, 0.0,
                      id, sessionReasonName(reason));
        openSession(reason, id);
    };
    protocol.handlers.guardBegin = [this] {
        ++guards;
        mode = Mode::GuardActive;
        traceBuf.push(now(), trace::Kind::EnergyGuard, savedVolts, 0.0,
                      1, "guard-begin");
    };
    protocol.handlers.guardEnd = [this] {
        traceBuf.push(now(), trace::Kind::EnergyGuard, savedVolts, 0.0,
                      0, "guard-end");
        beginRestore(true);
    };
    protocol.handlers.printfText = [this](const std::string &text) {
        ++printfs;
        traceBuf.push(now(), trace::Kind::Printf, savedVolts, 0.0, 0,
                      text);
        if (printfSink)
            printfSink(text);
        beginRestore(true);
    };

    // Continuous energy sampling (passive mode backbone).
    sim().scheduleIn(cfg.energySamplePeriod, [this] { sampleEnergy(); });
}

bool
EdbBoard::setStream(const std::string &stream_name, bool on)
{
    if (stream_name == "energy")
        streams_.energy = on;
    else if (stream_name == "iobus")
        streams_.iobus = on;
    else if (stream_name == "rfid")
        streams_.rfid = on;
    else if (stream_name == "watchpoints")
        streams_.watchpoints = on;
    else
        return false;
    return true;
}

void
EdbBoard::sampleEnergy()
{
    double vcap = wisp.power().voltage();
    double reading = adc_.sampleVolts(vcap);
    lastVcapVolts = reading;
    if (streams_.energy) {
        double vreg = adc_.sampleVolts(wisp.power().regulatedVoltage());
        traceBuf.push(now(), trace::Kind::EnergySample, reading, vreg);
    }

    // Energy breakpoint: interrupt the target when the level falls
    // to the threshold (paper Section 3.3.1).
    if (energyBkptVolts && mode == Mode::Passive) {
        if (energyBkptArmed &&
            wisp.state() == mcu::McuState::Running &&
            reading <= *energyBkptVolts) {
            energyBkptArmed = false;
            pendingIrqReason = SessionReason::EnergyBreakpoint;
            wisp.mcu().raiseDebugIrq();
        } else if (!energyBkptArmed &&
                   reading >
                       *energyBkptVolts + cfg.energyBkptHysteresis) {
            energyBkptArmed = true;
        }
    }
    sim().scheduleIn(cfg.energySamplePeriod, [this] { sampleEnergy(); });
}

void
EdbBoard::enableWatchpoint(unsigned id)
{
    watchpoints[id] = true;
}

void
EdbBoard::disableWatchpoint(unsigned id)
{
    watchpoints[id] = false;
}

bool
EdbBoard::watchpointEnabled(unsigned id) const
{
    auto it = watchpoints.find(id);
    return it != watchpoints.end() ? it->second : watchAll;
}

void
EdbBoard::onMarker(std::uint32_t id, sim::Tick when)
{
    if (!watchpointEnabled(id) || !streams_.watchpoints)
        return;
    // Each program event is paired with a concurrent energy reading:
    // the "multifaceted profile" of Section 4.1.3.
    double reading = adc_.sampleVolts(wisp.power().voltage());
    traceBuf.push(when, trace::Kind::Watchpoint, reading, 0.0, id);
}

void
EdbBoard::enableCodeBreakpoint(unsigned id,
                               std::optional<double> energy_threshold)
{
    codeBkpts[id] = energy_threshold;
    std::uint32_t mask = wisp.debugPort().breakpointMask();
    wisp.debugPort().setBreakpointMask(mask | (1u << id));
}

void
EdbBoard::disableCodeBreakpoint(unsigned id)
{
    codeBkpts.erase(id);
    std::uint32_t mask = wisp.debugPort().breakpointMask();
    wisp.debugPort().setBreakpointMask(mask & ~(1u << id));
}

void
EdbBoard::enableEnergyBreakpoint(double volts)
{
    energyBkptVolts = volts;
    energyBkptArmed = true;
}

void
EdbBoard::disableEnergyBreakpoint()
{
    energyBkptVolts.reset();
}

void
EdbBoard::onReqChange(bool level, sim::Tick when)
{
    reqHigh = level;
    if (level) {
        if (mode != Mode::Passive)
            return;
        // Firmware edge-interrupt latency before active-mode entry.
        reqHandlerEvent = sim().schedule(
            when + cfg.reqLatency, [this] { enterActive(); });
        return;
    }
    // Falling edge: resume completed, or the target died first.
    if (reqHandlerEvent != sim::invalidEventId) {
        sim().cancel(reqHandlerEvent);
        reqHandlerEvent = sim::invalidEventId;
    }
    switch (mode) {
      case Mode::Passive:
        break;
      case Mode::AwaitFrame:
      case Mode::GuardActive:
      case Mode::InSession:
        // Fall-gated restore path (session resume / target death).
        beginRestore(false);
        break;
      case Mode::Restoring:
        if (!charger.active())
            closeEpisode();
        break;
    }
}

void
EdbBoard::enterActive()
{
    reqHandlerEvent = sim::invalidEventId;
    if (!reqHigh || mode != Mode::Passive)
        return;
    // Save the energy level, then tether: "before performing an
    // active task the energy on the target device is measured and
    // recorded. While the active task executes, the target is
    // continuously powered." (Section 3.2)
    lastSavedTrue = wisp.power().voltage();
    savedVolts = adc_.sampleVolts(lastSavedTrue);
    restoredVolts = 0.0;
    lastRestoredTrue = 0.0;
    tether.setEnabled(true);
    protocol.reset();
    mode = Mode::AwaitFrame;
    sendToTarget(proto::ackActive);
}

void
EdbBoard::onDebugByte(std::uint8_t byte, sim::Tick when)
{
    (void)when;
    if (mode == Mode::InSession && rxExpected > 0) {
        rxReply.push_back(byte);
        if (rxReply.size() >= rxExpected)
            rxExpected = 0;
        return;
    }
    protocol.onByte(byte);
}

void
EdbBoard::sendToTarget(std::uint8_t byte)
{
    txQueue.push_back(byte);
    pumpTxQueue();
}

void
EdbBoard::pumpTxQueue()
{
    if (txBusy || txQueue.empty())
        return;
    txBusy = true;
    std::uint8_t byte = txQueue.front();
    txQueue.pop_front();
    sim::Tick bt = wisp.debugPort().uart().byteTime();
    sim().scheduleIn(bt, [this, byte] {
        wisp.debugPort().uart().receiveByte(byte);
        txBusy = false;
        pumpTxQueue();
    });
}

void
EdbBoard::beginRestore(bool ack_after)
{
    tether.setEnabled(false);
    mode = Mode::Restoring;
    if (!wisp.power().poweredOn()) {
        // The target died before/inside the episode; nothing to
        // restore onto.
        closeEpisode();
        return;
    }
    charger.restoreTo(savedVolts, [this, ack_after] {
        lastRestoredTrue = wisp.power().voltage();
        restoredVolts = adc_.sampleVolts(lastRestoredTrue);
        // Record the episode's compensation so analyses can separate
        // target-side cost from debugger-injected energy.
        traceBuf.push(now(), trace::Kind::Generic, lastSavedTrue,
                      lastRestoredTrue, 0, "restore");
        if (ack_after) {
            sendToTarget(proto::ackRestored);
            if (!reqHigh)
                closeEpisode();
            // else: the req falling edge closes the episode.
        } else {
            closeEpisode();
        }
    });
}

void
EdbBoard::closeEpisode()
{
    mode = Mode::Passive;
    tether.setEnabled(false);
    charger.abort();
    protocol.reset();
    rxExpected = 0;
    if (activeSession)
        activeSession->open_ = false;
    wisp.mcu().clearDebugIrq();
    // A new debug request may have been raised while this episode
    // was still restoring (e.g. back-to-back printfs); service it.
    if (reqHigh) {
        reqHandlerEvent = sim().schedule(now() + cfg.reqLatency,
                                         [this] { enterActive(); });
    }
}

void
EdbBoard::openSession(SessionReason reason, std::uint16_t id)
{
    mode = Mode::InSession;
    wisp.mcu().clearDebugIrq();
    activeSession = std::make_unique<DebugSession>(*this, reason, id,
                                                   savedVolts);
    if (sessionHook)
        sessionHook(*activeSession);
}

bool
EdbBoard::pumpUntil(const std::function<bool()> &cond,
                    sim::Tick timeout)
{
    sim::Tick deadline = sim().now() + timeout;
    while (!cond()) {
        if (sim().now() >= deadline)
            return false;
        sim().runFor(
            std::min<sim::Tick>(100 * sim::oneUs,
                                deadline - sim().now()));
    }
    return true;
}

bool
EdbBoard::waitForSession(sim::Tick timeout)
{
    return pumpUntil(
        [this] { return activeSession && activeSession->open(); },
        timeout);
}

bool
EdbBoard::waitPassive(sim::Tick timeout)
{
    return pumpUntil([this] { return mode == Mode::Passive; },
                     timeout);
}

bool
EdbBoard::breakIn(sim::Tick timeout)
{
    if (mode != Mode::Passive ||
        wisp.state() != mcu::McuState::Running) {
        return false;
    }
    pendingIrqReason = SessionReason::Manual;
    wisp.mcu().raiseDebugIrq();
    return waitForSession(timeout);
}

bool
EdbBoard::chargeTo(double volts, sim::Tick timeout)
{
    bool done = false;
    charger.rampTo(volts, 0.0, [&done] { done = true; });
    bool ok = pumpUntil([&done] { return done; }, timeout);
    if (!ok)
        charger.abort();
    return ok;
}

bool
EdbBoard::dischargeTo(double volts, sim::Tick timeout)
{
    return chargeTo(volts, timeout);
}

std::optional<std::vector<std::uint8_t>>
EdbBoard::sessionRead(std::uint32_t addr, std::uint16_t len,
                      sim::Tick timeout)
{
    if (mode != Mode::InSession || len == 0)
        return std::nullopt;
    rxReply.clear();
    rxExpected = len;
    sendToTarget(proto::cmdRead);
    for (int i = 0; i < 4; ++i)
        sendToTarget(static_cast<std::uint8_t>(addr >> (8 * i)));
    sendToTarget(static_cast<std::uint8_t>(len & 0xFF));
    sendToTarget(static_cast<std::uint8_t>(len >> 8));
    bool ok = pumpUntil(
        [this, len] { return rxReply.size() >= len; }, timeout);
    rxExpected = 0;
    if (!ok)
        return std::nullopt;
    return rxReply;
}

bool
EdbBoard::sessionWrite(std::uint32_t addr, std::uint32_t value,
                       sim::Tick timeout)
{
    if (mode != Mode::InSession)
        return false;
    sendToTarget(proto::cmdWrite);
    for (int i = 0; i < 4; ++i)
        sendToTarget(static_cast<std::uint8_t>(addr >> (8 * i)));
    for (int i = 0; i < 4; ++i)
        sendToTarget(static_cast<std::uint8_t>(value >> (8 * i)));
    // No explicit ack: wait for the bytes to drain plus slack for
    // the service loop to execute the store.
    if (!pumpUntil([this] { return txQueue.empty() && !txBusy; },
                   timeout)) {
        return false;
    }
    pumpFor(2 * wisp.debugPort().uart().byteTime());
    return true;
}

void
EdbBoard::pumpFor(sim::Tick duration)
{
    sim().runFor(duration);
}

void
EdbBoard::sessionResume()
{
    sendToTarget(proto::cmdResume);
    waitPassive(2 * sim::oneSec);
}

} // namespace edb::edbdbg
