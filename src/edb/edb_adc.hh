/**
 * @file
 * EDB's on-board 12-bit ADC.
 *
 * Digitizes the buffered Vcap / Vreg senses (paper Section 4.1).
 * "A 12-bit ADC with effective resolution of approximately 1 mV
 * imposes a theoretical lower bound on dE of 0.08%" — the
 * quantization and input-referred noise modelled here are exactly
 * what the `ablation_adc_resolution` bench sweeps.
 */

#ifndef EDB_EDB_EDB_ADC_HH
#define EDB_EDB_EDB_ADC_HH

#include <cstdint>
#include <functional>

#include "sim/rng.hh"

namespace edb::edbdbg {

/** ADC configuration. */
struct EdbAdcConfig
{
    unsigned bits = 12;
    /** Full-scale reference (4.096 V gives ~1 mV codes). */
    double vrefVolts = 4.096;
    /** Input-referred gaussian noise sigma. */
    double noiseSigmaVolts = 1.5e-3;
};

/** Sampling ADC with quantization and input noise. */
class EdbAdc
{
  public:
    EdbAdc(sim::Rng &rng, EdbAdcConfig config = {});

    /** Digitize a voltage: returns the code. */
    std::uint32_t sampleCode(double volts);

    /** Digitize and convert back to volts (code * LSB). */
    double sampleVolts(double volts);

    /** Volts per code. */
    double lsbVolts() const;

    /** Code for a voltage without noise (threshold computations). */
    std::uint32_t codeFor(double volts) const;

    /** Voltage for a code. */
    double voltsFor(std::uint32_t code) const;

    const EdbAdcConfig &config() const { return cfg; }

    /**
     * Install a fault hook applied to the analog input before
     * noise/quantization (fault injection: supply glitches, sense
     * line disturbance). Pass nullptr to remove.
     */
    void setFaultHook(std::function<double(double)> hook)
    {
        faultHook = std::move(hook);
    }

  private:
    sim::Rng &rng;
    EdbAdcConfig cfg;
    std::function<double(double)> faultHook;
};

} // namespace edb::edbdbg

#endif // EDB_EDB_EDB_ADC_HH
