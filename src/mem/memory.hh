/**
 * @file
 * Target memory system: volatile SRAM, non-volatile FRAM and the
 * memory map that routes accesses.
 *
 * The volatile / non-volatile split is the crux of the intermittent
 * execution model: "a reboot clears volatile state (e.g., register
 * file, SRAM) [and] retains non-volatile state (e.g., FRAM)"
 * (paper Section 1). Intermittence bugs are, at bottom, consistency
 * violations in the FRAM image across reboots.
 */

#ifndef EDB_MEM_MEMORY_HH
#define EDB_MEM_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
} // namespace edb::sim

namespace edb::mem {

/** Target address. The EH32 address space is 64 KiB. */
using Addr = std::uint32_t;

/** Classification used by the MCU to cost accesses. */
enum class RegionKind : std::uint8_t { Sram, Fram, Mmio };

/**
 * Abstract address-space region.
 */
class Region
{
  public:
    Region(std::string region_name, Addr base_addr, Addr size_bytes,
           RegionKind region_kind)
        : name_(std::move(region_name)), base_(base_addr),
          size_(size_bytes), kind_(region_kind)
    {}

    virtual ~Region() = default;

    const std::string &name() const { return name_; }
    Addr base() const { return base_; }
    Addr size() const { return size_; }
    RegionKind kind() const { return kind_; }

    /** True when `addr` falls inside this region. */
    bool
    contains(Addr addr) const
    {
        return addr >= base_ && addr < base_ + size_;
    }

    /** Byte read at an absolute address (must be contained). */
    virtual std::uint8_t read8(Addr addr) = 0;
    /** Byte write at an absolute address (must be contained). */
    virtual void write8(Addr addr, std::uint8_t value) = 0;

    /** Aligned 32-bit read; default composes byte reads (LE). */
    virtual std::uint32_t read32(Addr addr);
    /** Aligned 32-bit write; default composes byte writes (LE). */
    virtual void write32(Addr addr, std::uint32_t value);

    /**
     * Flat backing store for side-effect-free regions, or nullptr
     * when accesses must go through the virtual interface (MMIO).
     * Ram publishes its store so the memory map's routed *reads* can
     * skip the virtual dispatch; writes still dispatch, because Ram
     * keeps wear statistics.
     */
    const std::uint8_t *directStore() const { return direct_; }

  protected:
    /** Set by subclasses whose storage is a plain byte array.
     *  Only Ram may publish a direct store: the memory map relies on
     *  `directStore() != nullptr implies the region is a Ram` to
     *  devirtualize its routed write dispatch. */
    void setDirectStore(const std::uint8_t *store) { direct_ = store; }

  private:
    std::string name_;
    Addr base_;
    Addr size_;
    RegionKind kind_;
    const std::uint8_t *direct_ = nullptr;
};

/**
 * Flat byte-array region used for both SRAM (volatile) and FRAM
 * (non-volatile). "Volatile" here controls what `Ram::powerLoss`
 * does, which the MCU invokes on every reboot.
 */
class Ram : public Region
{
  public:
    Ram(std::string region_name, Addr base_addr, Addr size_bytes,
        RegionKind region_kind);

    std::uint8_t read8(Addr addr) override;
    void write8(Addr addr, std::uint8_t value) override;

    /** Word-native access to the backing store (LE). A `write32`
     *  counts as one logical write in the wear statistics, not
     *  four. */
    std::uint32_t read32(Addr addr) override;
    void write32(Addr addr, std::uint32_t value) override;

    /**
     * React to a power loss: volatile regions are filled with a
     * poison pattern (0xCD) so that software reading uninitialized
     * SRAM after reboot misbehaves loudly, as real SRAM decay does
     * unpredictably; non-volatile regions are untouched.
     */
    void powerLoss();

    /** Fill with zero (flash-programming, test setup). */
    void clear();

    /** Bulk load starting at an absolute address. Does not count
     *  toward the wear statistics (it models flash programming, not
     *  program stores). */
    void load(Addr addr, const std::vector<std::uint8_t> &bytes);
    void load(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Direct backing-store access for instruments/tests. */
    std::vector<std::uint8_t> &bytes() { return store; }
    const std::uint8_t *data() const { return store.data(); }

    /** Number of writes since construction (wear statistics). */
    std::uint64_t writeCount() const { return writes; }

    /** Serialize contents + wear counter. */
    void saveState(sim::SnapshotWriter &w) const;
    /** Restore contents + wear counter (sizes must match). */
    void restoreState(sim::SnapshotReader &r);

  private:
    std::vector<std::uint8_t> store;
    std::uint64_t writes = 0;
};

/**
 * Memory-mapped I/O region: 32-bit registers at word-aligned
 * addresses, each with read/write handlers installed by peripherals.
 */
class MmioRegion : public Region
{
  public:
    using ReadFn = std::function<std::uint32_t()>;
    using WriteFn = std::function<void(std::uint32_t)>;

    MmioRegion(std::string region_name, Addr base_addr, Addr size_bytes);

    /**
     * Install a register. Either handler may be null (reads of a
     * write-only register return 0; writes to a read-only register
     * are ignored).
     */
    void addRegister(Addr addr, std::string reg_name, ReadFn read_fn,
                     WriteFn write_fn);

    /** True when a register exists at `addr`. */
    bool hasRegister(Addr addr) const;

    std::uint8_t read8(Addr addr) override;
    void write8(Addr addr, std::uint8_t value) override;
    std::uint32_t read32(Addr addr) override;
    void write32(Addr addr, std::uint32_t value) override;

  private:
    struct Reg
    {
        std::string name;
        ReadFn read;
        WriteFn write;
    };

    std::map<Addr, Reg> regs;
};

/** Outcome of a routed access. */
enum class AccessResult : std::uint8_t
{
    Ok,
    Unmapped,    ///< No region claims the address.
    Misaligned,  ///< Word access not 4-byte aligned.
};

/**
 * Routes target addresses to regions. Faulting accesses are reported
 * to the caller (the MCU raises a fault, modelling the "undefined
 * behavior" of a wild pointer write in paper Fig 3).
 */
class MemoryMap
{
  public:
    /** Attach a region (non-owning); regions must not overlap. */
    void addRegion(Region *region);

    /** Region containing `addr`, or nullptr. */
    Region *find(Addr addr) const;

    /// @name Routed accesses
    /// @{
    AccessResult read8(Addr addr, std::uint8_t &value) const;
    AccessResult write8(Addr addr, std::uint8_t value) const;
    AccessResult read32(Addr addr, std::uint32_t &value) const;
    AccessResult write32(Addr addr, std::uint32_t value) const;
    /// @}

    /** All attached regions. */
    const std::vector<Region *> &regions() const { return list; }

    /**
     * Enable/disable the last-hit region cache consulted by find().
     * Purely a lookup accelerator: the region returned is identical
     * either way (regions never overlap).
     */
    void
    setFindCacheEnabled(bool on)
    {
        findCacheEnabled = on;
        hot = nullptr;
    }

    /**
     * Watch routed writes into [lo, hi): each one clears the byte
     * `valid[(addr - lo) / 4]` in the caller-owned array, which must
     * cover `(hi - lo) / 4` entries and outlive the watch. At most
     * one watch exists; the MCU uses it to invalidate predecoded
     * instructions when anything stores into the code address range.
     * The raw-pointer protocol (rather than a callback) keeps the
     * per-store cost to one compare — the watch sits on the
     * interpreter's store path. Writes that bypass the map
     * (Ram::load, Ram::powerLoss, direct backing-store access) are
     * NOT observed — callers of those invalidate explicitly.
     *
     * When `epoch` is non-null it is incremented every time a write
     * lands on a word whose valid byte was still set — i.e. exactly
     * when live predecoded state got invalidated. Coarser consumers
     * (the MCU's superblock cache) key off the counter instead of
     * per-word bytes; data stores into never-decoded words cost
     * nothing extra because their valid byte is already clear.
     */
    void setWriteWatch(Addr lo, Addr hi, std::uint8_t *valid,
                       std::uint64_t *epoch = nullptr);
    void clearWriteWatch();

    /**
     * Observer of every *routed* write (program stores, checkpoint
     * unit, debugger pokes), called after the write commits with the
     * address and width in bytes. One observer at most; used by the
     * non-volatile consistency auditor. A plain function pointer +
     * context keeps the disabled case to one null check on the store
     * path. Writes that bypass the map (Ram::load, Ram::powerLoss)
     * are NOT observed, mirroring the write watch above.
     */
    using WriteHookFn = void (*)(void *ctx, Addr addr, unsigned width);
    void
    setWriteHook(WriteHookFn fn, void *ctx)
    {
        writeHookFn = fn;
        writeHookCtx = ctx;
    }
    void clearWriteHook() { writeHookFn = nullptr; }

    /**
     * Sticky flag: set whenever a routed access lands in an MMIO
     * region (the only accesses that can schedule simulator events
     * or change power loads). The MCU's batched slice loop clears it
     * per segment and resynchronizes with the event queue when set.
     */
    bool mmioTouched() const { return mmioHit; }
    void clearMmioTouched() { mmioHit = false; }

  private:
    void
    noteWrite(Addr addr, unsigned width) const
    {
        // Single unsigned compare: watchSpan is 0 when no watch is
        // installed, so the branch is never taken then.
        if (addr - watchLo < watchSpan) {
            std::uint8_t &valid = watchValid[(addr - watchLo) >> 2];
            if (valid) {
                valid = 0;
                if (watchEpoch)
                    ++*watchEpoch;
            }
        }
        if (writeHookFn)
            writeHookFn(writeHookCtx, addr, width);
    }

    std::vector<Region *> list;
    /** Last region hit by find(); a 1-entry cache. */
    mutable Region *hot = nullptr;
    bool findCacheEnabled = true;
    mutable bool mmioHit = false;
    Addr watchLo = 0;
    Addr watchSpan = 0;
    std::uint8_t *watchValid = nullptr;
    std::uint64_t *watchEpoch = nullptr;
    WriteHookFn writeHookFn = nullptr;
    void *writeHookCtx = nullptr;
};

} // namespace edb::mem

#endif // EDB_MEM_MEMORY_HH
