#include "mem/memory.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::mem {

std::uint32_t
Region::read32(Addr addr)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(read8(addr + i)) << (8 * i);
    return v;
}

void
Region::write32(Addr addr, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

Ram::Ram(std::string region_name, Addr base_addr, Addr size_bytes,
         RegionKind region_kind)
    : Region(std::move(region_name), base_addr, size_bytes, region_kind),
      store(size_bytes, 0)
{
    if (region_kind == RegionKind::Mmio)
        sim::fatal("Ram: cannot be an MMIO region");
    setDirectStore(store.data());
}

std::uint8_t
Ram::read8(Addr addr)
{
    return store[addr - base()];
}

void
Ram::write8(Addr addr, std::uint8_t value)
{
    store[addr - base()] = value;
    ++writes;
}

std::uint32_t
Ram::read32(Addr addr)
{
    // Word-native: the compiler folds the explicit little-endian
    // compose into a single load on LE hosts.
    const std::uint8_t *p = store.data() + (addr - base());
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void
Ram::write32(Addr addr, std::uint32_t value)
{
    std::uint8_t *p = store.data() + (addr - base());
    p[0] = static_cast<std::uint8_t>(value);
    p[1] = static_cast<std::uint8_t>(value >> 8);
    p[2] = static_cast<std::uint8_t>(value >> 16);
    p[3] = static_cast<std::uint8_t>(value >> 24);
    ++writes; // one logical write, not four
}

void
Ram::powerLoss()
{
    if (kind() == RegionKind::Sram)
        std::fill(store.begin(), store.end(), std::uint8_t{0xCD});
}

void
Ram::clear()
{
    std::fill(store.begin(), store.end(), std::uint8_t{0});
}

void
Ram::load(Addr addr, const std::vector<std::uint8_t> &bytes_in)
{
    load(addr, bytes_in.data(), bytes_in.size());
}

void
Ram::load(Addr addr, const std::uint8_t *data, std::size_t len)
{
    if (addr < base() || addr + len > base() + size())
        sim::fatal("Ram::load: image does not fit region ", name());
    std::copy(data, data + len, store.begin() + (addr - base()));
}

void
Ram::saveState(sim::SnapshotWriter &w) const
{
    w.section("ram");
    w.blob(store.data(), store.size());
    w.u64(writes);
}

void
Ram::restoreState(sim::SnapshotReader &r)
{
    r.section("ram");
    std::vector<std::uint8_t> contents = r.blob();
    if (contents.size() != store.size()) {
        // Size mismatch means the snapshot was taken on a different
        // memory layout; leave contents alone and let the caller's
        // ok() check reject the restore.
        r.invalidate();
        return;
    }
    // Copy in place: the backing buffer must not move, other parts
    // of the system (direct-store readers) hold pointers into it.
    std::copy(contents.begin(), contents.end(), store.begin());
    writes = r.u64();
}

MmioRegion::MmioRegion(std::string region_name, Addr base_addr,
                       Addr size_bytes)
    : Region(std::move(region_name), base_addr, size_bytes,
             RegionKind::Mmio)
{}

void
MmioRegion::addRegister(Addr addr, std::string reg_name, ReadFn read_fn,
                        WriteFn write_fn)
{
    if (!contains(addr) || (addr & 3u))
        sim::fatal("MmioRegion: bad register address for ", reg_name);
    if (regs.count(addr))
        sim::fatal("MmioRegion: register already present at address ",
                   addr);
    regs.emplace(addr,
                 Reg{std::move(reg_name), std::move(read_fn),
                     std::move(write_fn)});
}

bool
MmioRegion::hasRegister(Addr addr) const
{
    return regs.count(addr) != 0;
}

std::uint32_t
MmioRegion::read32(Addr addr)
{
    auto it = regs.find(addr);
    if (it == regs.end() || !it->second.read)
        return 0;
    return it->second.read();
}

void
MmioRegion::write32(Addr addr, std::uint32_t value)
{
    auto it = regs.find(addr);
    if (it == regs.end() || !it->second.write)
        return;
    it->second.write(value);
}

std::uint8_t
MmioRegion::read8(Addr addr)
{
    Addr word = addr & ~Addr{3};
    return static_cast<std::uint8_t>(read32(word) >> (8 * (addr & 3u)));
}

void
MmioRegion::write8(Addr addr, std::uint8_t value)
{
    // Byte writes to MMIO replicate the byte into the low lane; real
    // hardware typically doesn't support sub-word peripheral writes
    // either. Documented, deterministic behaviour for stray stores.
    Addr word = addr & ~Addr{3};
    write32(word, value);
}

void
MemoryMap::addRegion(Region *region)
{
    if (!region)
        sim::fatal("MemoryMap: null region");
    for (const auto *existing : list) {
        bool disjoint = region->base() + region->size() <=
                            existing->base() ||
                        existing->base() + existing->size() <=
                            region->base();
        if (!disjoint)
            sim::fatal("MemoryMap: region ", region->name(),
                       " overlaps ", existing->name());
    }
    list.push_back(region);
}

Region *
MemoryMap::find(Addr addr) const
{
    Region *cached = hot;
    if (cached && cached->contains(addr))
        return cached;
    for (auto *region : list) {
        if (region->contains(addr)) {
            if (findCacheEnabled)
                hot = region;
            return region;
        }
    }
    return nullptr;
}

void
MemoryMap::setWriteWatch(Addr lo, Addr hi, std::uint8_t *valid,
                         std::uint64_t *epoch)
{
    if (hi < lo)
        sim::fatal("MemoryMap::setWriteWatch: inverted range");
    watchLo = lo;
    watchSpan = valid ? hi - lo : 0;
    watchValid = valid;
    watchEpoch = valid ? epoch : nullptr;
}

void
MemoryMap::clearWriteWatch()
{
    watchSpan = 0;
    watchValid = nullptr;
    watchEpoch = nullptr;
}

AccessResult
MemoryMap::read8(Addr addr, std::uint8_t &value) const
{
    Region *r = find(addr);
    if (!r)
        return AccessResult::Unmapped;
    if (const std::uint8_t *p = r->directStore()) {
        value = p[addr - r->base()];
        return AccessResult::Ok;
    }
    if (r->kind() == RegionKind::Mmio)
        mmioHit = true;
    value = r->read8(addr);
    return AccessResult::Ok;
}

AccessResult
MemoryMap::write8(Addr addr, std::uint8_t value) const
{
    Region *r = find(addr);
    if (!r)
        return AccessResult::Unmapped;
    if (r->directStore()) {
        // directStore() implies Ram (see setDirectStore): call it
        // non-virtually so the interpreter's store path stays flat.
        static_cast<Ram *>(r)->Ram::write8(addr, value);
        noteWrite(addr, 1);
        return AccessResult::Ok;
    }
    if (r->kind() == RegionKind::Mmio)
        mmioHit = true;
    r->write8(addr, value);
    noteWrite(addr, 1);
    return AccessResult::Ok;
}

AccessResult
MemoryMap::read32(Addr addr, std::uint32_t &value) const
{
    if (addr & 3u)
        return AccessResult::Misaligned;
    Region *r = find(addr);
    if (!r || !r->contains(addr + 3))
        return AccessResult::Unmapped;
    if (const std::uint8_t *d = r->directStore()) {
        const std::uint8_t *p = d + (addr - r->base());
        value = static_cast<std::uint32_t>(p[0]) |
                static_cast<std::uint32_t>(p[1]) << 8 |
                static_cast<std::uint32_t>(p[2]) << 16 |
                static_cast<std::uint32_t>(p[3]) << 24;
        return AccessResult::Ok;
    }
    if (r->kind() == RegionKind::Mmio)
        mmioHit = true;
    value = r->read32(addr);
    return AccessResult::Ok;
}

AccessResult
MemoryMap::write32(Addr addr, std::uint32_t value) const
{
    if (addr & 3u)
        return AccessResult::Misaligned;
    Region *r = find(addr);
    if (!r || !r->contains(addr + 3))
        return AccessResult::Unmapped;
    if (r->directStore()) {
        // directStore() implies Ram (see setDirectStore).
        static_cast<Ram *>(r)->Ram::write32(addr, value);
        noteWrite(addr, 4);
        return AccessResult::Ok;
    }
    if (r->kind() == RegionKind::Mmio)
        mmioHit = true;
    r->write32(addr, value);
    noteWrite(addr, 4);
    return AccessResult::Ok;
}

} // namespace edb::mem
