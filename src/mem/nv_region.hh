/**
 * @file
 * Parameterized non-volatile memory backend.
 *
 * The seed simulator's FRAM was an idealized byte array: every store
 * atomic, free and indestructible. Real NV technologies differ
 * materially in write latency, energy-per-write and endurance (NORM,
 * PAPERS.md), and those differences are exactly what makes checkpoint
 * commit integrity a hardware-software co-design problem (DiCA).
 * NvRegion keeps the flat Ram storage model but adds a per-technology
 * parameter table:
 *
 *  - write latency, surfaced as extra cycles per FRAM store (wired
 *    into McuConfig::framWriteExtraCycles by the target);
 *  - energy per write, drawn out of the storage capacitor through a
 *    caller-supplied sink (PowerSystem::drawCharge), so NV-heavy
 *    programs measurably shorten their own on-periods;
 *  - endurance: a per-word wear table, and once a word's write count
 *    exceeds the endurance budget a deterministic subset of its bits
 *    becomes stuck-at (retains the old value), seeded per region.
 *
 * A default-constructed NvTechConfig is *passive*: no wear table, no
 * energy, no latency override. A passive NvRegion keeps its direct
 * store published and is bit-identical to the plain Ram it replaces —
 * the routed fast path devirtualizes straight into the byte array and
 * none of the overrides below ever run. An *active* config unpublishes
 * the direct store so every routed write dispatches virtually through
 * the wear/energy model (reads stay side-effect-free either way).
 * Unpublishing also keeps the superblock tier honest for free: code
 * lives in FRAM and superblocks require a direct store on the code
 * region, so an active NV backend automatically falls back to the
 * per-instruction path whose drain accounting the energy model hooks.
 *
 * The region also carries the commit-burst latch the MCU's
 * interruptible checkpoint commit drives (DESIGN.md §11): which slot
 * is being committed, how many words of the burst have retired, and
 * how many bursts ended torn. That state is part of the world and is
 * snapshotted with it.
 */

#ifndef EDB_MEM_NV_REGION_HH
#define EDB_MEM_NV_REGION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/memory.hh"

namespace edb::mem {

/** Per-technology NV parameter table (NORM-flavoured magnitudes). */
struct NvTechConfig
{
    /** Technology tag, reported in bench JSON. */
    std::string name = "ideal";
    /**
     * Extra MCU cycles per FRAM store. 0 means "keep the McuConfig
     * default"; the target applies a nonzero value to
     * `McuConfig::framWriteExtraCycles` when assembling the device.
     */
    unsigned writeExtraCycles = 0;
    /** Charge drawn from the capacitor per NV write (coulombs). */
    double writeChargeCoulombs = 0.0;
    /** Writes per word before wear-out; 0 = unlimited endurance. */
    std::uint64_t enduranceWrites = 0;
    /** Track the per-word wear table even without an endurance
     *  limit (reporting-only mode). */
    bool trackWear = false;
    /** Seed of the deterministic stuck-at bit pattern. */
    std::uint64_t wearSeed = 0x57454152u; // "WEAR"

    /** Active = any behaviour beyond a plain Ram. */
    bool
    active() const
    {
        return writeChargeCoulombs > 0.0 || enduranceWrites != 0 ||
               trackWear;
    }
};

/** FRAM: near-SRAM latency, cheap writes, effectively unlimited
 *  endurance at simulation scale (~1e14 cycles). */
NvTechConfig framTech();
/** Flash: slow, expensive, low-endurance writes (~1e5 cycles). */
NvTechConfig flashTech();
/** STT-MRAM: moderate latency/energy, high endurance. */
NvTechConfig sttMramTech();

/**
 * Flat non-volatile region with technology-dependent write behaviour.
 * See the file comment for the passive/active split.
 */
class NvRegion : public Ram
{
  public:
    /** Charge sink, called with coulombs per modelled NV write. */
    using EnergySink = std::function<void(double)>;

    NvRegion(std::string region_name, Addr base_addr, Addr size_bytes,
             RegionKind region_kind, NvTechConfig tech = {});

    const NvTechConfig &tech() const { return tech_; }
    bool active() const { return active_; }

    /** Wire the energy-per-write drain (typically into
     *  PowerSystem::drawCharge, gated on the rail being up). */
    void setEnergySink(EnergySink sink) { sink_ = std::move(sink); }

    void write8(Addr addr, std::uint8_t value) override;
    void write32(Addr addr, std::uint32_t value) override;

    /// @name Wear statistics (active regions with wear tracking)
    /// @{
    /** Write count of the word containing `addr` (0 when the wear
     *  table is off). */
    std::uint64_t wearAt(Addr addr) const;
    /** Highest per-word write count. */
    std::uint64_t maxWear() const;
    /** Sum of all per-word write counts. */
    std::uint64_t totalWear() const;
    /** Words whose wear exceeds the endurance budget. */
    std::uint64_t wornWords() const;
    /** Deterministic stuck-at mask of a worn word (~1/8 of bits). */
    std::uint32_t stuckMask(std::size_t word_index) const;
    /// @}

    /// @name Commit-burst latch (driven by the MCU checkpoint unit)
    /// @{
    void
    beginBurst(Addr addr)
    {
        burstOpen_ = true;
        burstAddr_ = addr;
        burstWords_ = 0;
    }
    void noteBurstWord() { ++burstWords_; }
    /** Close the burst; a torn close bumps the torn-write counter. */
    void
    endBurst(bool torn)
    {
        if (torn && burstOpen_)
            ++tornWrites_;
        burstOpen_ = false;
    }
    bool burstOpen() const { return burstOpen_; }
    Addr burstAddr() const { return burstAddr_; }
    std::uint32_t burstWords() const { return burstWords_; }
    /** Bursts that ended mid-flight (prefix committed, suffix old). */
    std::uint64_t tornWrites() const { return tornWrites_; }
    /** Commit-buffer selector: slot of the last opened commit. */
    void setCommitSlot(int slot) { commitSlot_ = slot; }
    int commitSlot() const { return commitSlot_; }
    /// @}

    /** Serialize Ram contents + NV backend state (wear table,
     *  in-flight burst latch, commit-buffer selector). */
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);

  private:
    /** Apply wear accounting + stuck-at masking for one word write;
     *  returns the value that actually lands in the cells. */
    std::uint32_t wornValue(std::size_t word_index,
                            std::uint32_t old_value,
                            std::uint32_t new_value);

    NvTechConfig tech_;
    bool active_ = false;
    bool wearTracked_ = false;
    EnergySink sink_;
    /** Per-word write counts; empty when wear tracking is off. */
    std::vector<std::uint64_t> wear_;
    bool burstOpen_ = false;
    Addr burstAddr_ = 0;
    std::uint32_t burstWords_ = 0;
    std::uint64_t tornWrites_ = 0;
    int commitSlot_ = -1;
};

} // namespace edb::mem

#endif // EDB_MEM_NV_REGION_HH
