#include "mem/nv_region.hh"

#include "sim/snapshot.hh"

namespace edb::mem {

namespace {

/** splitmix64 finalizer — the deterministic per-word hash behind the
 *  stuck-at patterns (no dependence on any run-time RNG stream). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

NvTechConfig
framTech()
{
    NvTechConfig t;
    t.name = "fram";
    t.writeExtraCycles = 2;     // near-SRAM write latency
    t.writeChargeCoulombs = 2e-10;
    t.enduranceWrites = 0;      // ~1e14 cycles: unlimited at sim scale
    t.trackWear = true;
    return t;
}

NvTechConfig
flashTech()
{
    NvTechConfig t;
    t.name = "flash";
    t.writeExtraCycles = 64;    // program/erase dominated
    t.writeChargeCoulombs = 5e-9;
    t.enduranceWrites = 100000; // ~1e5 program/erase cycles
    t.trackWear = true;
    return t;
}

NvTechConfig
sttMramTech()
{
    NvTechConfig t;
    t.name = "sttmram";
    t.writeExtraCycles = 6;
    t.writeChargeCoulombs = 8e-10;
    t.enduranceWrites = 0;      // >1e12: unlimited at sim scale
    t.trackWear = true;
    return t;
}

NvRegion::NvRegion(std::string region_name, Addr base_addr,
                   Addr size_bytes, RegionKind region_kind,
                   NvTechConfig tech)
    : Ram(std::move(region_name), base_addr, size_bytes, region_kind),
      tech_(std::move(tech)), active_(tech_.active()),
      wearTracked_(tech_.trackWear || tech_.enduranceWrites != 0)
{
    if (active_) {
        // Force routed accesses through the virtual overrides below.
        // This also (deliberately) disqualifies the region from the
        // superblock tier's direct-store requirement, so batched
        // execution never skips the per-write energy drain.
        setDirectStore(nullptr);
        if (wearTracked_)
            wear_.assign((size_bytes + 3) / 4, 0);
    }
}

std::uint32_t
NvRegion::stuckMask(std::size_t word_index) const
{
    // ~1/8 bit density: AND of three independent hash draws.
    const std::uint64_t h0 = mix64(tech_.wearSeed ^ word_index);
    const std::uint64_t h1 = mix64(h0 + 1);
    const std::uint64_t h2 = mix64(h0 + 2);
    std::uint32_t mask = static_cast<std::uint32_t>(h0 & h1 & h2);
    if (mask == 0) // a worn word always has at least one dead bit
        mask = 1u << (h1 & 31);
    return mask;
}

std::uint32_t
NvRegion::wornValue(std::size_t word_index, std::uint32_t old_value,
                    std::uint32_t new_value)
{
    if (!wearTracked_)
        return new_value;
    std::uint64_t &count = wear_[word_index];
    ++count;
    if (tech_.enduranceWrites == 0 || count <= tech_.enduranceWrites)
        return new_value;
    const std::uint32_t mask = stuckMask(word_index);
    return (new_value & ~mask) | (old_value & mask);
}

void
NvRegion::write8(Addr addr, std::uint8_t value)
{
    if (active_) {
        const std::size_t word = (addr - base()) >> 2;
        const unsigned shift = 8u * (addr & 3u);
        const std::uint32_t old_byte = Ram::read8(addr);
        const std::uint32_t stored =
            wornValue(word, old_byte << shift,
                      static_cast<std::uint32_t>(value) << shift);
        value = static_cast<std::uint8_t>(stored >> shift);
        Ram::write8(addr, value);
        if (sink_ && tech_.writeChargeCoulombs > 0.0)
            sink_(tech_.writeChargeCoulombs);
        return;
    }
    Ram::write8(addr, value);
}

void
NvRegion::write32(Addr addr, std::uint32_t value)
{
    if (active_) {
        const std::size_t word = (addr - base()) >> 2;
        value = wornValue(word, Ram::read32(addr), value);
        Ram::write32(addr, value);
        if (sink_ && tech_.writeChargeCoulombs > 0.0)
            sink_(tech_.writeChargeCoulombs);
        return;
    }
    Ram::write32(addr, value);
}

std::uint64_t
NvRegion::wearAt(Addr addr) const
{
    if (!wearTracked_ || !contains(addr))
        return 0;
    return wear_[(addr - base()) >> 2];
}

std::uint64_t
NvRegion::maxWear() const
{
    std::uint64_t most = 0;
    for (std::uint64_t w : wear_)
        most = w > most ? w : most;
    return most;
}

std::uint64_t
NvRegion::totalWear() const
{
    std::uint64_t total = 0;
    for (std::uint64_t w : wear_)
        total += w;
    return total;
}

std::uint64_t
NvRegion::wornWords() const
{
    if (tech_.enduranceWrites == 0)
        return 0;
    std::uint64_t worn = 0;
    for (std::uint64_t w : wear_)
        worn += w > tech_.enduranceWrites ? 1 : 0;
    return worn;
}

void
NvRegion::saveState(sim::SnapshotWriter &w) const
{
    Ram::saveState(w);
    w.section("nvrg");
    w.u64(wear_.size());
    for (std::uint64_t count : wear_)
        w.u64(count);
    w.boolean(burstOpen_);
    w.u32(burstAddr_);
    w.u32(burstWords_);
    w.u64(tornWrites_);
    w.u32(static_cast<std::uint32_t>(commitSlot_));
}

void
NvRegion::restoreState(sim::SnapshotReader &r)
{
    Ram::restoreState(r);
    if (!r.section("nvrg"))
        return;
    const std::uint64_t words = r.u64();
    if (words == wear_.size()) {
        for (std::uint64_t &count : wear_)
            count = r.u64();
    } else {
        for (std::uint64_t i = 0; i < words; ++i)
            (void)r.u64();
    }
    burstOpen_ = r.boolean();
    burstAddr_ = r.u32();
    burstWords_ = r.u32();
    tornWrites_ = r.u64();
    commitSlot_ = static_cast<int>(r.u32());
}

} // namespace edb::mem
