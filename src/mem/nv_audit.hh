/**
 * @file
 * Non-volatile consistency auditor for intermittent executions.
 *
 * Checks the correctness condition from the formal foundation of
 * intermittent computing (Surbatovich et al.): non-volatile state
 * must not "time-travel" across reboots. Concretely, if a reboot
 * interval *reads* a non-volatile location and then *writes*
 * non-volatile state through the value it read, and power fails
 * before a checkpoint commits the interval, the next interval
 * re-executes against the half-updated image — the read observes
 * state from its own aborted future. The broken linked list of the
 * paper's Section 2 case study is exactly this shape: `list_remove`
 * writes `e->prev->next` through pointers loaded from FRAM, power
 * fails between the unlink stores, and the next boot walks a list
 * that is neither the old one nor the new one.
 *
 * The auditor is a register-taint machine driven by the interpreter
 * (DiCA-style, at checkpoint-commit granularity):
 *
 *  - a load from audited non-volatile data taints the destination
 *    register with the load address (its "guide");
 *  - Mov/Add/Addi/Sub propagate the guide (pointer arithmetic);
 *    every other register write clears it;
 *  - a store *through a tainted base register* whose target is also
 *    audited non-volatile data opens a WAR record
 *    (guide, store address, pc, interval);
 *  - any non-volatile write over the guide address closes its
 *    records — the read's source was itself updated this interval,
 *    so replaying the interval re-derives the pointer (the benign
 *    read-modify-write shape: `COUNTER = COUNTER + 1`);
 *  - a checkpoint commit closes all records (the interval's NV image
 *    is now the recovery point) and commits the shadow FRAM;
 *  - a power loss converts every record still open into a finding.
 *
 * The shadow FRAM — a byte copy of the audited range taken at each
 * checkpoint commit — is diagnostic state for replay divergence
 * checks (`shadowDiff`), not a findings source; programs that never
 * checkpoint simply keep shadowValid() false.
 *
 * Checkpoint slots themselves are excluded from auditing: the
 * checkpoint unit's own double-buffered writes are the recovery
 * protocol, not application data.
 */

#ifndef EDB_MEM_NV_AUDIT_HH
#define EDB_MEM_NV_AUDIT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory.hh"
#include "sim/time.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
} // namespace edb::sim

namespace edb::mem {

/** Which addresses the auditor watches. */
struct NvAuditConfig
{
    /** Audited non-volatile data range (typically all of FRAM). */
    Addr nvBase = 0;
    Addr nvSize = 0;
    /** Excluded sub-range: the checkpoint slots. */
    Addr checkpointBase = 0;
    Addr checkpointSpan = 0;
    /** Findings cap; further violations only bump the counters. */
    std::size_t maxFindings = 64;
};

/** One write-after-read violation, attributed for the report. */
struct NvFinding
{
    /** NV address the guiding value was loaded from. */
    Addr guideAddr = 0;
    /** NV address written through the stale value. */
    Addr storeAddr = 0;
    /** PC of the offending store. */
    Addr storePc = 0;
    /** Reboot interval (boot count) the store executed in. */
    std::uint64_t interval = 0;
    /** Power-loss tick that exposed the violation. */
    sim::Tick lossTick = 0;
};

/** Render a finding the way session reports do. */
std::string nvFindingText(const NvFinding &finding);

/**
 * The auditor. Wiring is done by the owner (test, bench or
 * `edbdbg::EdbBoard::attachAuditor`): the MCU drives the taint
 * machine and lifecycle hooks via `Mcu::setAuditor`, and the memory
 * map reports every routed write through `rawWriteHook` +
 * `MemoryMap::setWriteHook`.
 */
class NvAuditor
{
  public:
    static constexpr unsigned numRegs = 16;

    NvAuditor(NvAuditConfig config, Ram &nv_region);

    /// @name Interpreter hooks (register-taint machine)
    /// @{
    /** `rd` was loaded from `ea`. Taints or clears. */
    void onLoad(unsigned rd, Addr ea, unsigned width);
    /** `rd` receives a value derived from `rs` (guide propagates). */
    void onRegDerive(unsigned rd, unsigned rs);
    /** `rd` receives a value derived from `rs` or `rt` (first
     *  tainted operand wins). */
    void onRegCombine(unsigned rd, unsigned rs, unsigned rt);
    /** `rd` was overwritten from scratch (guide cleared). */
    void onRegWrite(unsigned rd);
    /** A store through base register `base` targeting `ea`. */
    void onStore(unsigned base, Addr ea, Addr pc, unsigned width);
    /// @}

    /// @name Lifecycle hooks
    /// @{
    void onBoot(sim::Tick now);
    void onPowerLoss(sim::Tick now);
    /**
     * A checkpoint committed into `slot` with payload CRC
     * `frame_crc` (runtime::ckfmt::frameCrc). Slot/CRC are optional:
     * callers that don't track the frame format pass the defaults
     * and the seal audit simply stays inert for that slot.
     */
    void onCheckpointCommit(sim::Tick now, int slot = -1,
                            std::uint32_t frame_crc = 0);
    /**
     * A restore replayed the frame in `slot` whose payload now
     * hashes to `frame_crc`. If the slot has no recorded commit CRC,
     * or the CRCs disagree, the restored frame was never sealed by a
     * completed commit -- the restore resurrected a torn frame, and
     * `unsealedRestoreCount()` ticks. This is the crash-anywhere
     * oracle's hybrid-state detector.
     */
    void onCheckpointRestore(sim::Tick now, int slot = -1,
                             std::uint32_t frame_crc = 0);
    /** Program reload: drop all state. */
    void reset();
    /// @}

    /** MemoryMap write-hook trampoline (`ctx` is the NvAuditor). */
    static void rawWriteHook(void *ctx, Addr addr, unsigned width);

    /// @name Findings
    /// @{
    const std::vector<NvFinding> &findings() const { return findings_; }
    /** Drain findings (session reporting). */
    std::vector<NvFinding> takeFindings();
    /** Total violations observed, including beyond the cap. */
    std::uint64_t violationCount() const { return violations; }
    /** Restores whose frame CRC did not match a recorded commit. */
    std::uint64_t unsealedRestoreCount() const
    {
        return unsealedRestores_;
    }
    /// @}

    /// @name Interval statistics / diagnostics
    /// @{
    /** Reboot interval index (increments at each boot). */
    std::uint64_t intervalIndex() const { return interval; }
    /** NV data reads observed in the current interval. */
    std::uint64_t intervalReads() const { return readsThisInterval; }
    /** NV data writes observed in the current interval. */
    std::uint64_t intervalWrites() const { return writesThisInterval; }
    /** Open (uncommitted) WAR records right now. */
    std::size_t openRecords() const { return records.size(); }
    /// @}

    /// @name Shadow FRAM (committed at checkpoint commits)
    /// @{
    bool shadowValid() const { return shadowValid_; }
    /** Tick of the last shadow commit. */
    sim::Tick shadowTick() const { return shadowTick_; }
    /**
     * Addresses (audited range, checkpoint slots excluded) where the
     * live NV image differs from the last committed shadow. Capped
     * at `limit` entries.
     */
    std::vector<Addr> shadowDiff(std::size_t limit = 16) const;
    /// @}

    const NvAuditConfig &config() const { return cfg; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// The auditor is passive (no pending events), so restore needs
    /// no rearmer. Soak supervisors snapshot it alongside the target
    /// so a rewind replays the taint machine bit-identically.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
    /// @}

  private:
    struct Record
    {
        Addr guideAddr;
        Addr storeAddr;
        Addr storePc;
        std::uint64_t interval;
    };

    /** In the audited NV data range (checkpoint slots excluded)? */
    bool
    audited(Addr addr) const
    {
        if (addr - cfg.nvBase >= cfg.nvSize)
            return false;
        return addr - cfg.checkpointBase >= cfg.checkpointSpan;
    }

    void onNvWrite(Addr addr, unsigned width);

    NvAuditConfig cfg;
    Ram &nv;

    /** Per-register guide addresses; guide is valid when set. */
    std::array<bool, numRegs> tainted{};
    std::array<Addr, numRegs> guide{};

    std::vector<Record> records;
    std::vector<NvFinding> findings_;
    std::uint64_t violations = 0;

    std::uint64_t interval = 0;
    std::uint64_t readsThisInterval = 0;
    std::uint64_t writesThisInterval = 0;

    std::vector<std::uint8_t> shadow;
    bool shadowValid_ = false;
    sim::Tick shadowTick_ = 0;

    /** Per-slot payload CRC recorded at commit (torn commits never
     *  record one). */
    std::array<bool, 2> commitCrcValid_{};
    std::array<std::uint32_t, 2> commitCrc_{};
    std::uint64_t unsealedRestores_ = 0;
};

} // namespace edb::mem

#endif // EDB_MEM_NV_AUDIT_HH
