#include "mem/nv_audit.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::mem {

std::string
nvFindingText(const NvFinding &finding)
{
    std::ostringstream os;
    os << "WAR violation: store at pc=0x" << std::hex << finding.storePc
       << " wrote NV 0x" << finding.storeAddr
       << " through a value loaded from NV 0x" << finding.guideAddr
       << std::dec << " in reboot interval " << finding.interval
       << "; power failed at tick " << finding.lossTick
       << " before a checkpoint committed the interval";
    return os.str();
}

NvAuditor::NvAuditor(NvAuditConfig config, Ram &nv_region)
    : cfg(config), nv(nv_region)
{
    if (cfg.nvSize == 0) {
        cfg.nvBase = nv.base();
        cfg.nvSize = nv.size();
    }
    if (cfg.nvBase < nv.base() ||
        cfg.nvBase + cfg.nvSize > nv.base() + nv.size())
        sim::fatal("NvAuditor: audited range outside region ", nv.name());
}

void
NvAuditor::onLoad(unsigned rd, Addr ea, unsigned width)
{
    (void)width;
    if (rd >= numRegs)
        return;
    if (audited(ea)) {
        tainted[rd] = true;
        guide[rd] = ea;
        ++readsThisInterval;
    } else {
        tainted[rd] = false;
    }
}

void
NvAuditor::onRegDerive(unsigned rd, unsigned rs)
{
    if (rd >= numRegs || rs >= numRegs)
        return;
    tainted[rd] = tainted[rs];
    guide[rd] = guide[rs];
}

void
NvAuditor::onRegCombine(unsigned rd, unsigned rs, unsigned rt)
{
    if (rd >= numRegs || rs >= numRegs || rt >= numRegs)
        return;
    if (tainted[rs]) {
        tainted[rd] = true;
        guide[rd] = guide[rs];
    } else if (tainted[rt]) {
        tainted[rd] = true;
        guide[rd] = guide[rt];
    } else {
        tainted[rd] = false;
    }
}

void
NvAuditor::onRegWrite(unsigned rd)
{
    if (rd < numRegs)
        tainted[rd] = false;
}

void
NvAuditor::onStore(unsigned base, Addr ea, Addr pc, unsigned width)
{
    (void)width;
    if (base >= numRegs || !tainted[base])
        return;
    if (!audited(ea))
        return;
    records.push_back(Record{guide[base], ea, pc, interval});
}

void
NvAuditor::onNvWrite(Addr addr, unsigned width)
{
    ++writesThisInterval;
    // A write over a guide address closes the records it guides: the
    // interval updated the read's source itself, so a replay of the
    // interval re-derives the value (benign read-modify-write).
    for (std::size_t i = 0; i < records.size();) {
        Addr g = records[i].guideAddr;
        if (g - addr < width) {
            records[i] = records.back();
            records.pop_back();
        } else {
            ++i;
        }
    }
}

void
NvAuditor::rawWriteHook(void *ctx, Addr addr, unsigned width)
{
    auto *self = static_cast<NvAuditor *>(ctx);
    if (self->audited(addr))
        self->onNvWrite(addr, width);
}

void
NvAuditor::onBoot(sim::Tick now)
{
    (void)now;
    ++interval;
    readsThisInterval = 0;
    writesThisInterval = 0;
    tainted.fill(false);
    records.clear();
}

void
NvAuditor::onPowerLoss(sim::Tick now)
{
    for (const Record &rec : records) {
        ++violations;
        if (findings_.size() < cfg.maxFindings)
            findings_.push_back(NvFinding{rec.guideAddr, rec.storeAddr,
                                          rec.storePc, rec.interval,
                                          now});
    }
    records.clear();
    tainted.fill(false);
}

void
NvAuditor::onCheckpointCommit(sim::Tick now, int slot,
                              std::uint32_t frame_crc)
{
    // The interval's NV image is now the recovery point; open records
    // are committed, not time-travelling.
    records.clear();
    Addr off = cfg.nvBase - nv.base();
    shadow.assign(nv.data() + off, nv.data() + off + cfg.nvSize);
    shadowValid_ = true;
    shadowTick_ = now;
    if (slot == 0 || slot == 1) {
        commitCrcValid_[slot] = true;
        commitCrc_[slot] = frame_crc;
    }
}

void
NvAuditor::onCheckpointRestore(sim::Tick now, int slot,
                               std::uint32_t frame_crc)
{
    (void)now;
    // Execution resumes from committed state: anything tracked in the
    // aborted tail is irrelevant to the replayed interval.
    records.clear();
    tainted.fill(false);
    if (slot == 0 || slot == 1) {
        // A restore from a frame no completed commit sealed: either
        // the slot was never committed under audit, or its payload
        // hash drifted from the committed one (torn or corrupted
        // frame). Both mean the recovery protocol resurrected state
        // the commit never vouched for.
        if (!commitCrcValid_[slot] || commitCrc_[slot] != frame_crc)
            ++unsealedRestores_;
    }
}

void
NvAuditor::reset()
{
    tainted.fill(false);
    records.clear();
    findings_.clear();
    violations = 0;
    interval = 0;
    readsThisInterval = 0;
    writesThisInterval = 0;
    shadow.clear();
    shadowValid_ = false;
    shadowTick_ = 0;
    commitCrcValid_.fill(false);
    commitCrc_.fill(0);
    unsealedRestores_ = 0;
}

std::vector<NvFinding>
NvAuditor::takeFindings()
{
    std::vector<NvFinding> out;
    out.swap(findings_);
    return out;
}

void
NvAuditor::saveState(sim::SnapshotWriter &w) const
{
    w.section("nvau");
    for (unsigned r = 0; r < numRegs; ++r) {
        w.boolean(tainted[r]);
        w.u32(guide[r]);
    }
    w.u32(static_cast<std::uint32_t>(records.size()));
    for (const Record &rec : records) {
        w.u32(rec.guideAddr);
        w.u32(rec.storeAddr);
        w.u32(rec.storePc);
        w.u64(rec.interval);
    }
    w.u32(static_cast<std::uint32_t>(findings_.size()));
    for (const NvFinding &f : findings_) {
        w.u32(f.guideAddr);
        w.u32(f.storeAddr);
        w.u32(f.storePc);
        w.u64(f.interval);
        w.tick(f.lossTick);
    }
    w.u64(violations);
    w.u64(interval);
    w.u64(readsThisInterval);
    w.u64(writesThisInterval);
    w.boolean(shadowValid_);
    w.tick(shadowTick_);
    w.blob(shadow.data(), shadow.size());
    for (int slot = 0; slot < 2; ++slot) {
        w.boolean(commitCrcValid_[slot]);
        w.u32(commitCrc_[slot]);
    }
    w.u64(unsealedRestores_);
}

void
NvAuditor::restoreState(sim::SnapshotReader &r)
{
    if (!r.section("nvau"))
        return;
    for (unsigned i = 0; i < numRegs; ++i) {
        tainted[i] = r.boolean();
        guide[i] = r.u32();
    }
    records.resize(r.u32());
    for (Record &rec : records) {
        rec.guideAddr = r.u32();
        rec.storeAddr = r.u32();
        rec.storePc = r.u32();
        rec.interval = r.u64();
    }
    findings_.resize(r.u32());
    for (NvFinding &f : findings_) {
        f.guideAddr = r.u32();
        f.storeAddr = r.u32();
        f.storePc = r.u32();
        f.interval = r.u64();
        f.lossTick = r.tick();
    }
    violations = r.u64();
    interval = r.u64();
    readsThisInterval = r.u64();
    writesThisInterval = r.u64();
    shadowValid_ = r.boolean();
    shadowTick_ = r.tick();
    shadow = r.blob();
    for (int slot = 0; slot < 2; ++slot) {
        commitCrcValid_[slot] = r.boolean();
        commitCrc_[slot] = r.u32();
    }
    unsealedRestores_ = r.u64();
}

std::vector<Addr>
NvAuditor::shadowDiff(std::size_t limit) const
{
    std::vector<Addr> diffs;
    if (!shadowValid_)
        return diffs;
    Addr off = cfg.nvBase - nv.base();
    const std::uint8_t *live = nv.data() + off;
    for (Addr i = 0; i < cfg.nvSize && diffs.size() < limit; ++i) {
        Addr addr = cfg.nvBase + i;
        if (addr - cfg.checkpointBase < cfg.checkpointSpan)
            continue;
        if (live[i] != shadow[i])
            diffs.push_back(addr);
    }
    return diffs;
}

} // namespace edb::mem
