#include "energy/harvester.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace edb::energy {

TheveninHarvester::TheveninHarvester(double voc_volts, double rsrc_ohms)
    : voc_(voc_volts), rsrc_(rsrc_ohms)
{
    if (rsrc_ohms <= 0.0)
        sim::fatal("TheveninHarvester: source resistance must be > 0");
}

double
TheveninHarvester::currentInto(double cap_volts, double) const
{
    double i = (voc_ - cap_volts) / rsrc_;
    return i > 0.0 ? i : 0.0;
}

double
TheveninHarvester::openCircuitVoltage(double) const
{
    return voc_;
}

RfHarvester::RfHarvester(double tx_power_dbm, double distance_m)
    : txPowerDbm(tx_power_dbm), distanceM(distance_m)
{
    if (distance_m <= 0.0)
        sim::fatal("RfHarvester: distance must be > 0");
    recompute();
}

void
RfHarvester::recompute()
{
    // Short-circuit current scales with received power, which falls
    // off as 1/d^2. Calibration: a 30 dBm (1 W) reader at 1 m drives
    // roughly 0.8 mA short-circuit into the rectifier -- this yields
    // WISP-like charge/discharge periods with the 47 uF capacitor.
    constexpr double isc_per_watt_at_1m = 0.8e-3;
    double tx_watts = std::pow(10.0, txPowerDbm / 10.0) * 1e-3;
    double isc = isc_per_watt_at_1m * tx_watts / (distanceM * distanceM);
    rsrc = rectifierVoc / isc;
}

void
RfHarvester::setDistance(double distance_m)
{
    if (distance_m <= 0.0)
        sim::fatal("RfHarvester: distance must be > 0");
    distanceM = distance_m;
    recompute();
}

double
RfHarvester::currentInto(double cap_volts, double) const
{
    if (!carrierOn)
        return 0.0;
    double i = (rectifierVoc - cap_volts) / rsrc;
    return i > 0.0 ? i : 0.0;
}

double
RfHarvester::openCircuitVoltage(double) const
{
    return carrierOn ? rectifierVoc : 0.0;
}

ProfileHarvester::ProfileHarvester(std::vector<Point> points)
    : profile(std::move(points))
{
    if (profile.empty())
        sim::fatal("ProfileHarvester: profile must not be empty");
    for (const auto &p : profile) {
        if (p.rsrc <= 0.0)
            sim::fatal("ProfileHarvester: rsrc must be > 0");
    }
}

ProfileHarvester::Point
ProfileHarvester::at(double seconds) const
{
    if (seconds <= profile.front().seconds)
        return profile.front();
    if (seconds >= profile.back().seconds)
        return profile.back();
    auto hi = std::lower_bound(
        profile.begin(), profile.end(), seconds,
        [](const Point &p, double t) { return p.seconds < t; });
    auto lo = hi - 1;
    double span = hi->seconds - lo->seconds;
    double frac = span > 0.0 ? (seconds - lo->seconds) / span : 0.0;
    Point out;
    out.seconds = seconds;
    out.voc = lo->voc + frac * (hi->voc - lo->voc);
    out.rsrc = lo->rsrc + frac * (hi->rsrc - lo->rsrc);
    return out;
}

double
ProfileHarvester::currentInto(double cap_volts, double seconds) const
{
    Point p = at(seconds);
    double i = (p.voc - cap_volts) / p.rsrc;
    return i > 0.0 ? i : 0.0;
}

double
ProfileHarvester::openCircuitVoltage(double seconds) const
{
    return at(seconds).voc;
}

} // namespace edb::energy
