/**
 * @file
 * Ekho-style energy-environment recording and replay.
 *
 * The paper's related work (Section 6.1) describes Ekho [9]: "a
 * device that records the amount of energy harvested by a harvesting
 * circuit and reproduces the trace as power input into an
 * application device. Ekho can reproduce problematic program
 * behavior, but it cannot offer insight into this behavior" — which
 * is why it composes with EDB rather than replacing it.
 *
 * `HarvestRecorder` samples the surface current actually delivered
 * by a live harvester into a time-indexed I-V trace;
 * `RecordedHarvester` replays such a trace (optionally looped) as a
 * drop-in `Harvester`, so a problematic energy environment can be
 * captured once and replayed deterministically while debugging with
 * EDB.
 */

#ifndef EDB_ENERGY_EKHO_HH
#define EDB_ENERGY_EKHO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "energy/harvester.hh"
#include "sim/simulator.hh"

namespace edb::energy {

/**
 * One I-V surface sample: at time `seconds`, the source behaves as
 * a Thevenin equivalent (voc, rsrc). Recording the pair rather than
 * a bare current value preserves the load-dependence of the source,
 * which is Ekho's key fidelity argument.
 */
struct HarvestSample
{
    double seconds = 0.0;
    double voc = 0.0;
    double rsrc = 1.0;
};

/** A recorded harvesting trace. */
class HarvestTrace
{
  public:
    /** Append a sample (times must be non-decreasing). */
    void add(HarvestSample sample);

    /** Number of samples. */
    std::size_t size() const { return samples.size(); }
    bool empty() const { return samples.empty(); }

    /** Duration covered by the trace. */
    double durationSeconds() const;

    /** Interpolated Thevenin parameters at `seconds`. */
    HarvestSample at(double seconds) const;

    /** Serialize as CSV: seconds,voc,rsrc. */
    void writeCsv(std::ostream &os) const;

    /** Parse the CSV produced by writeCsv. */
    static HarvestTrace readCsv(std::istream &is);

    const std::vector<HarvestSample> &all() const { return samples; }

  private:
    std::vector<HarvestSample> samples;
};

/**
 * Samples the Thevenin surface presented by a live harvester into a
 * trace at a fixed period (Ekho's "record" mode).
 */
class HarvestRecorder : public sim::Component
{
  public:
    HarvestRecorder(sim::Simulator &simulator,
                    std::string component_name,
                    const Harvester &source,
                    sim::Tick sample_period = 5 * sim::oneMs);

    /** Begin recording. */
    void start();

    /** Stop recording (trace retained). */
    void stop();

    /** The recorded trace so far. */
    const HarvestTrace &trace() const { return recorded; }

  private:
    void sample();

    const Harvester &source;
    sim::Tick period;
    bool running = false;
    HarvestTrace recorded;
    sim::EventId sampleEvent = sim::invalidEventId;
};

/**
 * Replays a recorded trace as a harvester (Ekho's "replay" mode).
 */
class RecordedHarvester : public Harvester
{
  public:
    /**
     * @param trace The trace to replay (copied).
     * @param loop Wrap around at the end (otherwise hold the last
     *        sample).
     */
    explicit RecordedHarvester(HarvestTrace trace, bool loop = false);

    double currentInto(double cap_volts, double seconds) const override;
    double openCircuitVoltage(double seconds) const override;

  private:
    double mapTime(double seconds) const;

    HarvestTrace trace_;
    bool loop_;
};

} // namespace edb::energy

#endif // EDB_ENERGY_EKHO_HH
