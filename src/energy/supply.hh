/**
 * @file
 * Regulated bench-style voltage supply model.
 *
 * Used for EDB's "tethered power" (keep-alive assertions, energy
 * guards, active-mode debugging) and for the JTAG-debugger baseline
 * that continuously powers the target and thereby masks intermittence
 * (paper Section 2.2).
 */

#ifndef EDB_ENERGY_SUPPLY_HH
#define EDB_ENERGY_SUPPLY_HH

namespace edb::energy {

/**
 * Ideal voltage source behind a small series resistance. When
 * enabled it drives the storage capacitor toward its set-point;
 * current is signed, so it can also absorb charge if the capacitor
 * sits above the set-point (a lab supply with sink capability).
 */
class VoltageSupply
{
  public:
    /**
     * @param volts Set-point voltage.
     * @param series_ohms Output resistance (drives the RC time
     *        constant of the tether ramp visible in paper Fig 7).
     */
    VoltageSupply(double volts, double series_ohms)
        : setpoint(volts), seriesOhms(series_ohms)
    {}

    /** Current delivered into a node at `node_volts` (amps). */
    double
    currentInto(double node_volts) const
    {
        if (!on)
            return 0.0;
        return (setpoint - node_volts) / seriesOhms;
    }

    /** Enable / disable the output. */
    void setEnabled(bool enabled) { on = enabled; }
    bool enabled() const { return on; }

    /** Adjust the set-point. */
    void setVoltage(double volts) { setpoint = volts; }
    double voltage() const { return setpoint; }

  private:
    double setpoint;
    double seriesOhms;
    bool on = false;
};

} // namespace edb::energy

#endif // EDB_ENERGY_SUPPLY_HH
