#include "energy/ekho.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace edb::energy {

void
HarvestTrace::add(HarvestSample sample)
{
    if (!samples.empty() && sample.seconds < samples.back().seconds)
        sim::fatal("HarvestTrace: samples must be time-ordered");
    if (sample.rsrc <= 0.0)
        sim::fatal("HarvestTrace: rsrc must be > 0");
    samples.push_back(sample);
}

double
HarvestTrace::durationSeconds() const
{
    if (samples.empty())
        return 0.0;
    return samples.back().seconds - samples.front().seconds;
}

HarvestSample
HarvestTrace::at(double seconds) const
{
    if (samples.empty())
        sim::fatal("HarvestTrace: empty trace");
    if (seconds <= samples.front().seconds)
        return samples.front();
    if (seconds >= samples.back().seconds)
        return samples.back();
    auto hi = std::lower_bound(
        samples.begin(), samples.end(), seconds,
        [](const HarvestSample &s, double t) {
            return s.seconds < t;
        });
    auto lo = hi - 1;
    double span = hi->seconds - lo->seconds;
    double frac = span > 0.0 ? (seconds - lo->seconds) / span : 0.0;
    HarvestSample out;
    out.seconds = seconds;
    out.voc = lo->voc + frac * (hi->voc - lo->voc);
    out.rsrc = lo->rsrc + frac * (hi->rsrc - lo->rsrc);
    return out;
}

void
HarvestTrace::writeCsv(std::ostream &os) const
{
    os << "seconds,voc,rsrc\n";
    for (const auto &s : samples)
        os << s.seconds << ',' << s.voc << ',' << s.rsrc << '\n';
}

HarvestTrace
HarvestTrace::readCsv(std::istream &is)
{
    HarvestTrace trace;
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (first) {
            first = false; // header
            continue;
        }
        if (line.empty())
            continue;
        std::istringstream row(line);
        HarvestSample sample;
        char comma;
        if (row >> sample.seconds >> comma >> sample.voc >> comma >>
            sample.rsrc) {
            trace.add(sample);
        }
    }
    return trace;
}

HarvestRecorder::HarvestRecorder(sim::Simulator &simulator,
                                 std::string component_name,
                                 const Harvester &source_in,
                                 sim::Tick sample_period)
    : sim::Component(simulator, std::move(component_name)),
      source(source_in),
      period(sample_period)
{}

void
HarvestRecorder::start()
{
    if (running)
        return;
    running = true;
    sample();
}

void
HarvestRecorder::stop()
{
    running = false;
    if (sampleEvent != sim::invalidEventId) {
        sim().cancel(sampleEvent);
        sampleEvent = sim::invalidEventId;
    }
}

void
HarvestRecorder::sample()
{
    sampleEvent = sim::invalidEventId;
    if (!running)
        return;
    double t = sim::secondsFromTicks(now());
    // Characterize the Thevenin surface by two operating points:
    // open-circuit (0 A) and a probe point. voc is directly
    // observable; rsrc follows from the probe current.
    double voc = source.openCircuitVoltage(t);
    HarvestSample sample_out;
    sample_out.seconds = t;
    sample_out.voc = voc;
    double probe_v = voc * 0.5;
    double probe_i = source.currentInto(probe_v, t);
    sample_out.rsrc = probe_i > 1e-12 ? (voc - probe_v) / probe_i
                                      : 1e12; // effectively dead
    recorded.add(sample_out);
    sampleEvent = sim().scheduleIn(period, [this] { sample(); });
}

RecordedHarvester::RecordedHarvester(HarvestTrace trace, bool loop)
    : trace_(std::move(trace)), loop_(loop)
{
    if (trace_.empty())
        sim::fatal("RecordedHarvester: empty trace");
}

double
RecordedHarvester::mapTime(double seconds) const
{
    if (!loop_)
        return seconds;
    double t0 = trace_.all().front().seconds;
    double duration = trace_.durationSeconds();
    if (duration <= 0.0)
        return t0;
    return t0 + std::fmod(seconds - t0, duration);
}

double
RecordedHarvester::currentInto(double cap_volts, double seconds) const
{
    HarvestSample s = trace_.at(mapTime(seconds));
    double i = (s.voc - cap_volts) / s.rsrc;
    return i > 0.0 ? i : 0.0;
}

double
RecordedHarvester::openCircuitVoltage(double seconds) const
{
    return trace_.at(mapTime(seconds)).voc;
}

} // namespace edb::energy
