/**
 * @file
 * Target power system: storage capacitor + harvester + loads +
 * comparators.
 *
 * This is the analog core of the intermittent execution model
 * (paper Fig 2): the harvester charges the capacitor through its
 * source resistance; when the voltage reaches the turn-on threshold
 * the device boots and its load discharges the capacitor; when the
 * voltage falls below the brown-out threshold the device powers off
 * and the cycle repeats.
 *
 * Loads are piecewise-constant current sinks owned by device
 * components (MCU core, peripherals, LEDs). Sources are signed
 * current functions of (voltage, time) — the harvester, EDB's
 * charge/discharge circuit, tethered supplies and per-pin leakage all
 * inject through this interface, which is what makes
 * energy-interference a *measured* quantity in this reproduction.
 */

#ifndef EDB_ENERGY_POWER_SYSTEM_HH
#define EDB_ENERGY_POWER_SYSTEM_HH

#include <functional>
#include <string>
#include <vector>

#include "energy/capacitor.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::energy {

/** Static electrical parameters of a target power system. */
struct PowerSystemConfig
{
    /** Storage capacitance (WISP 5: 47 uF). */
    double capacitanceF = 47e-6;
    /** Comparator turn-on threshold (WISP 5: 2.4 V). */
    double turnOnVolts = 2.4;
    /** Comparator brown-out threshold (WISP 5: 1.8 V). */
    double brownOutVolts = 1.8;
    /** Board leakage while powered off. */
    double offLeakageAmps = 1.0e-6;
    /** Regulator nominal output. */
    double regulatorVolts = 2.0;
    /** Protection clamp on the capacitor voltage. */
    double maxVolts = 5.0;
    /** Initial capacitor voltage. */
    double initialVolts = 0.0;
    /**
     * Relative sigma of multiplicative harvester noise, resampled
     * each integration step. Ambient RF power fluctuates with
     * fading, reader frequency hopping and antenna motion; this
     * keeps charge-discharge cycles from phase-locking to the
     * program loop the way an ideal constant source would.
     */
    double harvestNoiseSigma = 0.05;
    /** Integration sub-step ceiling. */
    sim::Tick maxStep = 5 * sim::oneUs;
    /** Self-tick period that keeps the model advancing while idle. */
    sim::Tick idleTickPeriod = 20 * sim::oneUs;
    /**
     * Amortized-integration fast path: cache the enabled-load sum
     * behind a dirty flag, hoist the ticks->seconds conversion of
     * full-size sub-steps out of the integration loop, and skip the
     * harvest-noise branch when sigma is zero. Bit-identical to the
     * reference path (same sub-step sequence, same RNG draws, same
     * double arithmetic); the flag exists so the determinism suite
     * can diff the two.
     */
    bool fastIntegration = true;
};

/**
 * Integrates the capacitor voltage under harvester + load currents
 * and drives the power-good comparator with hysteresis.
 */
class PowerSystem : public sim::Component
{
  public:
    using LoadHandle = std::size_t;
    using SourceHandle = std::size_t;
    /** Signed current into the capacitor, amps, as f(volts, seconds). */
    using SourceFn = std::function<double(double, double)>;
    /** Power-state listener: called with true on turn-on, false on
     *  brown-out. */
    using PowerListener = std::function<void(bool)>;

    PowerSystem(sim::Simulator &simulator, std::string component_name,
                PowerSystemConfig config, const Harvester *harvester);

    /** Begin self-ticking; call once after wiring up the device. */
    void start();

    /// @name Loads (piecewise-constant current sinks)
    /// @{
    LoadHandle addLoad(std::string load_name, double amps = 0.0,
                       bool enabled = true);
    void setLoadCurrent(LoadHandle handle, double amps);
    void setLoadEnabled(LoadHandle handle, bool enabled);
    double loadCurrent(LoadHandle handle) const;
    bool loadEnabled(LoadHandle handle) const;
    /** Sum of all enabled load currents right now. */
    double
    totalLoadAmps() const
    {
        if (loadSumValid)
            return loadSum;
        double total = 0.0;
        for (const auto &load : loads) {
            if (load.enabled)
                total += load.amps;
        }
        // Same summation order as always, so the cached value is
        // bit-identical to a fresh recomputation.
        if (cfg.fastIntegration) {
            loadSum = total;
            loadSumValid = true;
        }
        return total;
    }
    /// @}

    /// @name Sources (signed current injections, f(volts, seconds))
    /// @{
    SourceHandle addSource(std::string source_name, SourceFn fn);
    void setSourceEnabled(SourceHandle handle, bool enabled);
    /// @}

    /** Integrate the analog state up to `when` (idempotent). */
    void advanceTo(sim::Tick when);

    /**
     * Single-sub-step drain used by the MCU's per-instruction fast
     * path: exactly equivalent to `advanceTo(lastUpdateTick() + dt)`
     * for `0 < dt <= maxStep` (one integration sub-step, then the
     * comparator), but the caller supplies the precomputed
     * ticks->seconds conversion of `dt`, which the MCU caches per
     * decoded instruction. `dtSeconds` must equal
     * `sim::secondsFromTicks(dt)`. Falls back to advanceTo when
     * `dt > maxStep`. Defined inline below so the interpreter's
     * per-instruction call flattens into one leaf.
     */
    void
    drainStep(sim::Tick dt, double dtSeconds)
    {
        if (integrating || dt <= 0)
            return;
        if (dt > cfg.maxStep) {
            advanceTo(lastUpdate + dt);
            return;
        }
        // One sub-step, exactly as advanceTo(lastUpdate + dt) would.
        integrating = true;
        integrateStep(dtSeconds, sim::secondsFromTicks(lastUpdate));
        lastUpdate += dt;
        updateComparator();
        integrating = false;
    }

    /** Time the analog state has been integrated up to. */
    sim::Tick lastUpdateTick() const { return lastUpdate; }

    /** Capacitor voltage after advancing to the present time. */
    double voltage();

    /** Capacitor voltage without advancing (for use in listeners). */
    double voltageNoAdvance() const { return cap.voltage(); }

    /** Regulated rail: min(Vcap, regulator nominal). Drops with Vcap
     *  during power failure, as the paper notes in Section 4.1.2. */
    double regulatedVoltage();

    /** Comparator output: true between turn-on and brown-out. */
    bool poweredOn() const { return powered; }

    /** Register a power-state listener. */
    void addPowerListener(PowerListener listener);

    /** Stored energy in joules at present voltage. */
    double storedEnergy() { return cap.energyAt(voltage()); }

    /** Max storable energy (at turn-on voltage), the paper's "%* of
     *  storage capacity" denominator. */
    double
    maxEnergy() const
    {
        return cap.energyAt(cfg.turnOnVolts);
    }

    /** Direct capacitor access for instruments and tests. */
    Capacitor &capacitor() { return cap; }
    const PowerSystemConfig &config() const { return cfg; }

    /** Swap the harvester model (non-owning). */
    void
    setHarvester(const Harvester *h)
    {
        harvester = h;
        refreshFlatSource();
    }

    /// @name Charge accounting (for conservation checks)
    /// @{
    double cumulativeChargeIn() const { return chargeIn; }
    double cumulativeChargeOut() const { return chargeOut; }
    /// @}

    /** Number of turn-on events since construction. */
    std::uint64_t bootCount() const { return boots; }
    /** Number of brown-out events since construction. */
    std::uint64_t brownOutCount() const { return brownOuts; }

    /**
     * Serialize the full analog + comparator state: capacitor
     * voltage, integrator bookkeeping, charge accounting, comparator
     * counters, per-load/per-source switch state and the pending
     * self-tick event. Loads and sources are saved positionally, so
     * save and restore sides must be wired identically (same device
     * assembly, same construction order).
     */
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer);

  private:
    struct Load
    {
        std::string name;
        double amps;
        bool enabled;
    };

    struct Source
    {
        std::string name;
        SourceFn fn;
        bool enabled;
    };

    /** One forward-Euler sub-step (defined inline, it is the single
     *  hottest function in the simulator). */
    void
    integrateStep(double dt_seconds, double t_seconds)
    {
        double v = cap.voltage();
        double in_amps;
        if (flatSource) {
            // Inlined TheveninHarvester::currentInto — identical
            // expression, including the ternary's signed-zero
            // behaviour.
            double i = (flatVoc - v) / flatRsrc;
            in_amps = i > 0.0 ? i : 0.0;
        } else {
            in_amps = harvester->currentInto(v, t_seconds);
        }
        if (noiseEnabled && in_amps > 0.0) {
            double n = 1.0 + sim().rng().gaussian(cfg.harvestNoiseSigma);
            in_amps *= n < 0.0 ? 0.0 : n;
        }
        for (const auto &src : sources) {
            if (src.enabled)
                in_amps += src.fn(v, t_seconds);
        }
        double out_amps = powered ? totalLoadAmps() : cfg.offLeakageAmps;
        double dq_in = in_amps * dt_seconds;
        double dq_out = out_amps * dt_seconds;
        chargeIn += dq_in;
        chargeOut += dq_out;
        cap.addCharge(dq_in - dq_out);
        if (cap.voltage() > cfg.maxVolts)
            cap.setVoltage(cfg.maxVolts);
    }

    void
    updateComparator()
    {
        bool next = powered;
        if (powered && cap.voltage() < cfg.brownOutVolts) {
            next = false;
            ++brownOuts;
        } else if (!powered && cap.voltage() >= cfg.turnOnVolts) {
            next = true;
            ++boots;
        }
        if (next == powered)
            return;
        powered = next;
        for (const auto &listener : listeners)
            listener(powered);
    }

    void tick();
    void invalidateLoadSum() { loadSumValid = false; }

    /** Re-probe the harvester for the inlineable constant-Thevenin
     *  form (fastIntegration only; the arithmetic is identical). */
    void
    refreshFlatSource()
    {
        flatSource = cfg.fastIntegration && harvester &&
                     harvester->theveninParams(flatVoc, flatRsrc);
    }

    PowerSystemConfig cfg;
    const Harvester *harvester;
    Capacitor cap;
    std::vector<Load> loads;
    std::vector<Source> sources;
    std::vector<PowerListener> listeners;
    sim::Tick lastUpdate = 0;
    bool powered = false;
    bool integrating = false;
    bool started = false;
    /** Cached sum of enabled load currents (fastIntegration). */
    mutable double loadSum = 0.0;
    mutable bool loadSumValid = false;
    /** secondsFromTicks(cfg.maxStep), hoisted out of advanceTo. */
    double maxStepSeconds = 0.0;
    bool noiseEnabled = false;
    /** Harvester devirtualization (see refreshFlatSource). */
    bool flatSource = false;
    double flatVoc = 0.0;
    double flatRsrc = 1.0;
    double chargeIn = 0.0;
    double chargeOut = 0.0;
    std::uint64_t boots = 0;
    std::uint64_t brownOuts = 0;
    /** Pending self-tick (id + absolute due time, for snapshots). */
    sim::EventId tickEvent = sim::invalidEventId;
    sim::Tick tickDueAt = 0;
};

} // namespace edb::energy

#endif // EDB_ENERGY_POWER_SYSTEM_HH
